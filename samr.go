// Package samr is the public facade of the SAMR partitioning trade-off
// library: a from-scratch reproduction of Steensland & Ray, "A
// Partitioner-Centric Model for SAMR Partitioning Trade-off
// Optimization: Part II" (SAND2003-8725 / ICPP 2004).
//
// The library has three layers:
//
//   - A structured-AMR substrate: integer box algebra, grid hierarchies,
//     Berger–Rigoutsos clustering, a subcycled Berger–Colella driver
//     with four application kernels, and partition-independent traces.
//   - A partitioner suite: domain-based space-filling-curve, patch-based
//     and hybrid (Nature+Fable-style) partitioners, plus a trace-driven
//     execution simulator measuring load imbalance, communication and
//     data migration.
//   - The paper's model: ab-initio penalties (beta_l, beta_c, beta_m),
//     the continuous partitioner-centric classification space, and the
//     meta-partitioner that selects and configures partitioners from
//     application state at run time.
//
// This facade re-exports the names most programs need; the full API
// lives in the internal packages (importable within this module), one
// per subsystem. Every execution entry point (partitioning, evaluation,
// trace simulation) takes a context.Context: partitioners poll it at
// box-batch granularity, so a cancelled or over-deadline call aborts
// promptly with the context's error and never returns a partial
// result. Typical use:
//
//	ctx := context.Background()
//	tr, _ := samr.GenerateTrace(ctx, "BL2D", samr.PaperConfig(), 100)
//	meta := samr.NewMetaPartitioner(2e-4)
//	for _, snap := range tr.Snapshots {
//	    p := meta.Select(snap.H, 0.01)
//	    a, err := p.Partition(ctx, snap.H, 16)
//	    _, _ = a, err
//	}
package samr

import (
	"context"

	"samr/internal/amr"
	"samr/internal/apps"
	"samr/internal/core"
	"samr/internal/experiments"
	"samr/internal/geom"
	"samr/internal/grid"
	"samr/internal/partition"
	"samr/internal/sim"
	"samr/internal/solver"
	"samr/internal/trace"
)

// Re-exported substrate types.
type (
	// Box is an axis-aligned integer box of grid cells.
	Box = geom.Box
	// BoxList is a collection of boxes forming one level's patches.
	BoxList = geom.BoxList
	// Hierarchy is a snapshot of an adaptive grid hierarchy.
	Hierarchy = grid.Hierarchy
	// Trace is a partition-independent sequence of hierarchy snapshots.
	Trace = trace.Trace
	// Config configures the Berger–Colella AMR driver.
	Config = amr.Config
	// Kernel is an application's numerics on one patch.
	Kernel = solver.Kernel
)

// Re-exported partitioning and simulation types.
type (
	// Partitioner decomposes a hierarchy across processors.
	Partitioner = partition.Partitioner
	// Assignment is a complete distribution of a hierarchy.
	Assignment = partition.Assignment
	// Machine is the analytic machine model.
	Machine = sim.Machine
	// StepMetrics is the simulator output for one coarse step.
	StepMetrics = sim.StepMetrics
)

// Re-exported model types (the paper's contribution).
type (
	// Classifier maps hierarchy snapshots onto the classification space.
	Classifier = core.Classifier
	// Sample is one classification outcome.
	Sample = core.Sample
	// MetaPartitioner selects a partitioner from application state.
	MetaPartitioner = core.MetaPartitioner
)

// NewBox2 returns the 2-D box [x0,x1) x [y0,y1).
func NewBox2(x0, y0, x1, y1 int) Box { return geom.NewBox2(x0, y0, x1, y1) }

// NewHierarchy returns a hierarchy whose base level covers domain.
func NewHierarchy(domain Box, refRatio int) *Hierarchy {
	return grid.NewHierarchy(domain, refRatio)
}

// PaperConfig is the paper's experimental driver configuration: 5
// levels of factor-2 refinement, regrid every 4 steps, granularity 2.
func PaperConfig() Config { return apps.PaperConfig() }

// GenerateTrace runs the named application (RM2D, BL2D, SC2D, TP2D) for
// the given number of coarse steps and returns its trace. The AMR run
// fans per-patch work over the worker pool and honours ctx: a
// cancelled generation returns a nil trace and the context's error.
func GenerateTrace(ctx context.Context, app string, cfg Config, steps int) (*Trace, error) {
	return apps.Generate(ctx, app, cfg, steps)
}

// MigrationPenalty is beta_m: the paper's ab-initio data-migration
// model (dimension III).
func MigrationPenalty(prev, cur *Hierarchy) float64 { return core.MigrationPenalty(prev, cur) }

// CommunicationPenalty is beta_c: the worst-case communication
// pressure of the hierarchy.
func CommunicationPenalty(h *Hierarchy) float64 { return core.CommunicationPenalty(h) }

// LoadPenalty is beta_l: the load-concentration pressure of the
// hierarchy.
func LoadPenalty(h *Hierarchy) float64 { return core.LoadPenalty(h) }

// NewClassifier returns a classification-space classifier;
// partitionCost is the estimated seconds per repartitioning.
func NewClassifier(partitionCost float64) *Classifier { return core.NewClassifier(partitionCost) }

// NewMetaPartitioner returns the meta-partitioner with its default
// stable and thresholds.
func NewMetaPartitioner(partitionCost float64) *MetaPartitioner {
	return core.NewMetaPartitioner(partitionCost)
}

// NewDomainSFC returns the Hilbert domain-based partitioner.
func NewDomainSFC() Partitioner { return partition.NewDomainSFC() }

// NewPatchBased returns the per-level LPT patch-based partitioner.
func NewPatchBased() Partitioner { return partition.NewPatchBased() }

// NewNatureFable returns the hybrid partitioner in the paper's static
// default configuration.
func NewNatureFable() Partitioner { return partition.NewNatureFable() }

// NewPostMapped wraps a partitioner with the post-mapping label remap:
// the dimension-III migration remedy (identical decomposition, labels
// permuted to maximize overlap with the previous assignment).
func NewPostMapped(inner Partitioner) Partitioner { return partition.NewPostMapped(inner) }

// MeasurePartitionCost times one partitioner invocation, the measured
// input to the dimension-II (speed vs. quality) model.
func MeasurePartitionCost(ctx context.Context, p Partitioner, h *Hierarchy, nprocs, reps int) (float64, error) {
	return core.MeasurePartitionCost(ctx, p, h, nprocs, reps)
}

// DefaultMachine returns the commodity-cluster machine model.
func DefaultMachine() Machine { return sim.DefaultMachine() }

// Evaluate computes partition-quality metrics of one assignment. A
// cancelled ctx aborts the scan and returns the context's error.
func Evaluate(ctx context.Context, h *Hierarchy, a *Assignment, m Machine) (StepMetrics, error) {
	return sim.Evaluate(ctx, h, a, m)
}

// SimulateTrace partitions every trace snapshot with p and evaluates
// each step, chaining assignments for the migration metric. The run is
// bounded by ctx: cancellation aborts mid-trace with no partial result.
func SimulateTrace(ctx context.Context, tr *Trace, p Partitioner, nprocs int, m Machine) (*sim.Result, error) {
	return sim.SimulateTrace(ctx, tr, p, nprocs, m)
}

// DefaultProcs is the processor count of the paper-style validation
// experiments.
const DefaultProcs = experiments.DefaultProcs
