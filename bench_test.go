// Benchmarks regenerating every table and figure of the paper's
// evaluation (DESIGN.md, per-experiment index). Each benchmark runs the
// complete experiment pipeline — ab-initio model, partitioning,
// execution simulation, agreement statistics — on the paper-scale
// trace of its application (generated once per process and cached).
//
//	go test -bench=. -benchmem                    # everything
//	go test -bench=BenchmarkFig5BL2D -benchmem    # one figure
//
// The companion experiment binary (cmd/samrbench) prints the same
// series these benchmarks compute.
package samr_test

import (
	"context"
	"math/rand"
	"testing"

	"samr/internal/apps"
	"samr/internal/experiments"
	"samr/internal/geom"
	"samr/internal/partition"
	"samr/internal/sim"
	"samr/internal/trace"
)

// paperTrace fetches (and on first use generates) the cached
// paper-scale trace outside the timed region.
func paperTrace(b *testing.B, app string) *trace.Trace {
	b.Helper()
	tr, err := apps.PaperTrace(context.Background(), app)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkFig1BL2DDynamicBehavior regenerates Figure 1: BL2D load
// imbalance and communication over time under one static partitioner.
func BenchmarkFig1BL2DDynamicBehavior(b *testing.B) {
	tr := paperTrace(b, "BL2D")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig1(context.Background(), tr, experiments.DefaultProcs)
		if err != nil {
			b.Fatal(err)
		}
		if len(f.Steps) != tr.Len() {
			b.Fatal("figure truncated")
		}
	}
}

// benchModelVsActual is the shared body of the Figures 4-7 benchmarks.
func benchModelVsActual(b *testing.B, app string) {
	tr := paperTrace(b, app)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := experiments.FigModelVsActual(context.Background(), tr, experiments.DefaultProcs)
		if err != nil {
			b.Fatal(err)
		}
		if v.Mig == nil || v.Comm == nil {
			b.Fatal("missing panels")
		}
	}
}

// BenchmarkFig4RM2D regenerates Figure 4 (RM2D model vs measured).
func BenchmarkFig4RM2D(b *testing.B) { benchModelVsActual(b, "RM2D") }

// BenchmarkFig5BL2D regenerates Figure 5 (BL2D model vs measured).
func BenchmarkFig5BL2D(b *testing.B) { benchModelVsActual(b, "BL2D") }

// BenchmarkFig6SC2D regenerates Figure 6 (SC2D model vs measured).
func BenchmarkFig6SC2D(b *testing.B) { benchModelVsActual(b, "SC2D") }

// BenchmarkFig7TP2D regenerates Figure 7 (TP2D model vs measured).
func BenchmarkFig7TP2D(b *testing.B) { benchModelVsActual(b, "TP2D") }

// BenchmarkClassificationTrajectory regenerates the Figure 3 (right)
// demonstration: the continuous classification-space locus.
func BenchmarkClassificationTrajectory(b *testing.B) {
	tr := paperTrace(b, "BL2D")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := experiments.ClassificationTrajectory(context.Background(), tr, experiments.DefaultProcs)
		if err != nil {
			b.Fatal(err)
		}
		if len(f.Data) != 4 {
			b.Fatal("bad trajectory")
		}
	}
}

// BenchmarkAblationMigrationDenominator regenerates Ablation A: the
// beta_m denominator comparison over all four applications.
func BenchmarkAblationMigrationDenominator(b *testing.B) {
	trs := make([]*trace.Trace, 0, len(apps.Names))
	for _, app := range apps.Names {
		trs = append(trs, paperTrace(b, app))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range trs {
			if _, err := experiments.AblationDenominator(context.Background(), tr, experiments.DefaultProcs); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationPartitionerFamilies regenerates Ablation B: the
// domain/patch/hybrid family comparison (on BL2D; the other apps run
// through cmd/samrbench).
func BenchmarkAblationPartitionerFamilies(b *testing.B) {
	tr := paperTrace(b, "BL2D")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationPartitioners(context.Background(), tr, experiments.DefaultProcs)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 6 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkMetaPartitionerVsStatic regenerates Ablation C: dynamic
// meta-partitioner selection against every static choice (on BL2D).
func BenchmarkMetaPartitionerVsStatic(b *testing.B) {
	tr := paperTrace(b, "BL2D")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.MetaVsStatic(context.Background(), tr, experiments.DefaultProcs)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 6 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkAblationAbsoluteImportance regenerates Ablation D: raw mean
// penalty vs size-weighted need (on SC2D, whose grid size oscillates).
func BenchmarkAblationAbsoluteImportance(b *testing.B) {
	tr := paperTrace(b, "SC2D")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := experiments.AblationAbsoluteImportance(context.Background(), tr, experiments.DefaultProcs)
		if err != nil {
			b.Fatal(err)
		}
		if len(f.Data) != 3 {
			b.Fatal("bad figure")
		}
	}
}

// BenchmarkAblationPostMapping regenerates Ablation E: the paper's
// post-mapping migration remedy with and without the wrapper (on TP2D,
// whose rotating feature migrates constantly).
func BenchmarkAblationPostMapping(b *testing.B) {
	tr := paperTrace(b, "TP2D")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationPostMapping(context.Background(), tr, experiments.DefaultProcs)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkBoxIndexQuery measures the spatial index on a fragment-scale
// box population: build once, then query every box's one-cell halo —
// the access pattern of the simulator's ghost-exchange analysis.
func BenchmarkBoxIndexQuery(b *testing.B) {
	r := rand.New(rand.NewSource(42))
	const n = 512
	boxes := make(geom.BoxList, n)
	for i := range boxes {
		x, y := r.Intn(1024), r.Intn(1024)
		boxes[i] = geom.NewBox2(x, y, x+2+r.Intn(14), y+2+r.Intn(14))
	}
	ix := geom.NewBoxIndex(boxes)
	var buf []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var hits int
		for _, box := range boxes {
			buf = ix.AppendQuery(buf[:0], box.Grow(1))
			hits += len(buf)
		}
		if hits < n {
			b.Fatal("index lost boxes")
		}
	}
}

// BenchmarkSimulateTraceParallel measures the full worker-pool
// simulation pipeline (partition, evaluate, migration chaining) on the
// paper-scale BL2D trace with the static hybrid partitioner.
func BenchmarkSimulateTraceParallel(b *testing.B) {
	tr := paperTrace(b, "BL2D")
	m := sim.DefaultMachine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.SimulateTrace(context.Background(), tr, partition.NewNatureFable(), experiments.DefaultProcs, m)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Steps) != tr.Len() {
			b.Fatal("truncated result")
		}
	}
}

// BenchmarkTraceGeneration measures the AMR-substrate cost of
// producing one reduced-scale trace end to end (solver, regridding,
// snapshotting) — the input side of every experiment.
func BenchmarkTraceGeneration(b *testing.B) {
	cfg := apps.PaperConfig()
	cfg.BaseSize = 16
	cfg.MaxLevels = 3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := apps.Generate(context.Background(), "TP2D", cfg, 10); err != nil {
			b.Fatal(err)
		}
	}
}
