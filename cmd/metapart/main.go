// Command metapart runs the meta-partitioner over a trace: it
// classifies every snapshot into the partitioner-centric classification
// space (dimensions I, II, III) and reports the partitioner selected at
// each step, followed by the execution-time comparison against the
// static choices.
//
// Usage:
//
//	metapart -app BL2D
//	metapart -trace bl2d.trc -procs 32
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"samr/internal/apps"
	"samr/internal/core"
	"samr/internal/experiments"
	"samr/internal/sim"
	"samr/internal/trace"
)

func main() {
	var (
		app    = flag.String("app", "BL2D", "application kernel (ignored with -trace)")
		trPath = flag.String("trace", "", "trace file to classify")
		procs  = flag.Int("procs", experiments.DefaultProcs, "number of processors to simulate")
		quick  = flag.Bool("quick", false, "use the reduced-scale trace")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var tr *trace.Trace
	var err error
	switch {
	case *trPath != "":
		var f *os.File
		if f, err = os.Open(*trPath); err == nil {
			tr, err = trace.Read(f)
			f.Close()
		}
	case *quick:
		tr, err = apps.QuickTrace(ctx, *app)
	default:
		tr, err = apps.PaperTrace(ctx, *app)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "metapart:", err)
		os.Exit(1)
	}

	m := sim.DefaultMachine()
	meta := core.NewMetaPartitioner(2e-4)
	fmt.Printf("%6s %8s %8s %8s %8s %10s  %s\n",
		"step", "dimI", "dimII", "dimIII", "sizeNorm", "points", "selected partitioner")
	for _, snap := range tr.Snapshots {
		slot := float64(snap.H.Workload()) * m.CellTime / float64(*procs)
		p := meta.Select(snap.H, slot)
		s, _ := meta.LastSample()
		fmt.Printf("%6d %8.3f %8.3f %8.3f %8.3f %10d  %s\n",
			snap.Step, s.DimI, s.DimII, s.DimIII, s.SizeNorm, s.Points, p.Name())
	}
	fmt.Println()
	tb, err := experiments.MetaVsStatic(ctx, tr, *procs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metapart:", err)
		os.Exit(1)
	}
	tb.Print(os.Stdout)
}
