// Command samrd is the SAMR partitioning-as-a-service daemon: a
// long-running HTTP server answering meta-partitioner selection,
// partitioning, and trace-simulation requests, with a content-addressed
// LRU cache over partitioning results (keyed by hierarchy signature,
// partitioner, and processor count) so the repeated regrid states of a
// running SAMR application are served without recomputation.
//
// # Quickstart
//
// Start the daemon over a trace directory:
//
//	mkdir traces
//	samrd -addr :8347 -traces traces
//
// Register a trace by dropping a .trc file into the directory — no
// restart needed, the registry picks new files up on demand:
//
//	samrtrace -app bl2d -o traces/bl2d.trc
//	curl localhost:8347/v1/traces
//
// Ask the meta-partitioner to classify a hierarchy and pick a
// partitioner:
//
//	curl -d '{"hierarchy": {"domain": {"dim": 2, "lo": [0,0], "hi": [32,32]},
//	          "ref_ratio": 2,
//	          "levels": [[{"dim": 2, "lo": [0,0], "hi": [32,32]}],
//	                     [{"dim": 2, "lo": [8,8], "hi": [40,40]}]]}}' \
//	     localhost:8347/v1/select
//
// Run a named partitioner at a processor count (repeat the request and
// watch the X-Samr-Cache header flip from miss to hit):
//
//	curl -i -d '{"hierarchy": {...}, "partitioner": "nature+fable", "nprocs": 16}' \
//	     localhost:8347/v1/partition
//
// Evaluate a partitioner over a registered trace:
//
//	curl -d '{"trace": "bl2d", "partitioner": "domain-hilbert-u2", "nprocs": 16}' \
//	     localhost:8347/v1/simulate
//
// Partitioner specs accept family aliases (domain, patch-lpt,
// nature+fable/hybrid, postmap(...)) as well as the fully configured
// canonical names the library prints, e.g.
// "nature+fable-hilbert-u4-q4-whole". Setting "meta": true on
// /v1/simulate replaces the fixed partitioner with per-step
// meta-partitioner selection.
//
// # Deadlines and cancellation
//
// Every request is bounded by a context that threads from the HTTP
// layer down through the worker pool, the partitioners, and the
// simulator; no layer ignores cancellation. The -request-timeout flag
// caps each request's handling (default 2m, 0 disables): a request
// whose deadline expires — including one that arrives already past it —
// returns 504 Gateway Timeout with a JSON error body, without running
// (or while aborting, mid-batch) the partitioner. A client that
// disconnects cancels its request the same way; the outcome is recorded
// as the nginx-conventional 499. Cancelled partition work never
// produces partial results and never poisons the cache.
//
// Concurrent identical cache misses are coalesced: while one request
// computes a partition, every other request for the same
// (signature, partitioner, nprocs) key waits for that result instead of
// recomputing it, and reports X-Samr-Cache: shared. Watch the cache and
// request counters live:
//
//	curl localhost:8347/v1/stats
//
// Slow-client protection: -max-body-bytes bounds request bodies, and
// the HTTP server runs with read/write timeouts derived from
// -request-timeout so a stalled connection cannot pin a handler
// forever.
//
// # Operating under load
//
// By default samrd accepts every request and lets the worker pool
// arbitrate the CPU. Setting -max-inflight enables admission control
// over the compute endpoints (/v1/select, /v1/partition, /v1/simulate):
// at most that many requests compute at once, up to -queue-depth more
// wait in a bounded queue (default 4x the cap), and everything beyond
// that is shed immediately with 429 Too Many Requests, a JSON error
// body, a Retry-After header (whole seconds, >= 1), and an X-Samr-Shed
// header naming the reason (queue-full, rate-limit, or deadline). Shed
// requests never run a partitioner and never touch the cache. The
// interactive endpoints (/v1/select, /v1/partition) are dispatched
// ahead of batch /v1/simulate work, both at the admission queue and
// inside the worker pool, without starving batch.
//
//	samrd -addr :8347 -traces traces -max-inflight 8 -queue-depth 32
//
// Tenants are distinguished by the X-Samr-Tenant request header
// (absent means the anonymous tenant). -tenant-rate grants each tenant
// a token bucket of that many requests per second (0 disables rate
// limiting) with -tenant-burst capacity, so one hot client cannot
// monopolize admission; throttled requests get the same 429 shape with
// X-Samr-Shed: rate-limit. Per-tenant admission counters appear under
// "admission" in /v1/stats.
//
// A client may declare its remaining budget in X-Samr-Deadline-Ms;
// samrd sheds the request up front (X-Samr-Shed: deadline) when the
// expected queue wait already exceeds that budget, and otherwise uses
// it to cap the request deadline below -request-timeout.
//
// /healthz stays a pure liveness probe. /readyz is the load-balancer
// signal: it returns 503 {"status":"not ready","reason":"saturated"}
// while the admission queue is full, and 503 with reason "draining"
// once shutdown has begun, so rotations stop sending traffic before
// the listener closes. Observability endpoints (/v1/stats, /v1/traces,
// /healthz, /readyz) are never shed.
//
// With -max-inflight 0 (the default) admission is fully disabled and
// responses are identical to a build without it.
//
// # Streaming sessions
//
// A running SAMR application produces a sequence of regrid states in
// which most levels survive from step to step. Instead of re-posting
// the full hierarchy to /v1/partition every regrid, open a session —
// one full upload, with the partitioner and processor count fixed for
// its lifetime:
//
//	curl -i -d '{"hierarchy": {...}, "partitioner": "domain", "nprocs": 16}' \
//	     localhost:8347/v1/session
//
// The response carries the session token (body "session" and the
// X-Samr-Session header), the base state's content signature, and
// per-level sub-digests. Then advance the state with per-level deltas:
// each step lists one op per level of the NEW state — "keep" (level
// survives unchanged) or "replace" (full new patch set for that
// level) — so a longer list appends levels and a shorter one drops
// them, and the request costs O(changed boxes), not O(hierarchy):
//
//	curl -i -d '{"levels": [{"op": "keep"},
//	                        {"op": "replace", "boxes": [{"dim": 2, "lo": [10,8], "hi": [42,32]}]}]}' \
//	     localhost:8347/v1/session/<token>/step
//
// The step response is byte-identical to the equivalent full
// /v1/partition post of the reconstructed hierarchy — same results,
// same cache dispositions and headers — and the state is answered
// through the same cache, singleflight, and fleet-tier stack. An
// optional "base" field pins the step to the signature it was computed
// against; a mismatch (e.g. a retried step that already applied)
// answers 409 with code "session-base-mismatch". A failed or cancelled
// step leaves the session state untouched, so the client retries the
// same delta.
//
// Stateful postmap(...) specs compose with sessions: the session keeps
// one long-lived partitioner instance server-side, so the carried
// previous-assignment state advances with the session (one-shot
// /v1/partition posts cannot do this — they build a fresh instance per
// request). Stateful results bypass the cache and tier, as always.
//
// Sessions are soft state: -max-sessions bounds the table (LRU
// eviction past it) and -session-ttl expires idle sessions. A step or
// delete on an expired, evicted, or unknown session answers 410 Gone
// with code "session-expired"; the client re-creates the session from
// its current full state and loses nothing but one upload. DELETE
// /v1/session/<token> closes a session early (204). Session counters
// appear under "sessions" in /v1/stats once the first session request
// arrives.
//
// # Running a fleet
//
// Several samrd daemons can share their partition caches through the
// fleet tier: a disk store per daemon plus an HTTP peer protocol
// (GET/PUT /v1/tier/{key}) over which each content-addressed result
// lives on the fleet member chosen by rendezvous hashing. A result
// computed by any member is then served by every member — from its own
// disk, or from the key's owner in one hop — without recomputation.
//
// Start two daemons that know each other (every member passes the SAME
// -tier-peers list, naming all members including itself, and its own
// URL as -tier-self):
//
//	samrd -addr :8347 -tier-dir /var/cache/samr-a \
//	      -tier-peers http://10.0.0.1:8347,http://10.0.0.2:8347 \
//	      -tier-self  http://10.0.0.1:8347
//	samrd -addr :8347 -tier-dir /var/cache/samr-b \
//	      -tier-peers http://10.0.0.1:8347,http://10.0.0.2:8347 \
//	      -tier-self  http://10.0.0.2:8347
//
// POST a partition request to the first daemon, then the identical
// request to the second: the second answers with X-Samr-Cache: tier —
// the bytes came from the fleet, not from a partitioner run. The tier
// is a pure optimization layer: a dead peer, a full or corrupt disk
// store, or an open circuit breaker degrades to computing locally,
// never to a client-visible error, and stateful postmap(...) specs
// bypass the tier entirely (their results depend on request history).
// -tier-max-bytes bounds each disk store; the oldest entries are
// evicted first. With no tier flags set, the tier is fully disabled
// and responses are byte-identical to a build without it. Tier
// counters appear under "tier" in /v1/stats. -tier-sim-steps
// additionally spills simulator step artifacts (stateless steps only)
// through the same tier, so a fleet shares /v1/simulate work too.
//
// # Fault tolerance and repair
//
// The fleet heals itself along two axes. Failover reads are always on:
// each peer carries a circuit breaker (consecutive transport/5xx
// failures open it; after a cooldown one probe half-opens it), and
// when a key's owner is open the lookup — and the post-compute store
// offer — diverts to the next peer in rendezvous order, one hop, so a
// dead owner degrades its shard to a fleet-wide stand-in instead of a
// recompute per request. Anti-entropy repair is the opt-in second
// axis:
//
//	samrd ... -tier-repair 30s -tier-repair-keys 256
//
// With -tier-repair set, each daemon serves its resident key list at
// GET /v1/tier/manifest and periodically pulls the keys it owns under
// rendezvous hashing from its peers (checksum-verified, bounded per
// round by -tier-repair-keys), so a wiped or rejoined member converges
// back to a warm shard within interval-plus-a-few-rounds instead of
// serving cold forever. Manifests are fetched as deltas in the steady
// state: the manifest endpoint accepts ?since=<generation> (the
// store's write-generation counter, echoed in X-Samr-Manifest-Gen) and
// answers only the keys written after that cursor; the full list
// remains the fallback for first contact, an unparsable cursor, or a
// peer whose store restarted. Repair is pull-only and idempotent;
// enable it fleet-wide (a member without the flag still answers probes
// but serves no manifest). With the flag unset nothing changes: no
// route, no goroutine, stats byte-identical to a repair-less build.
//
// Operators watch the self-healing layer in /v1/stats under "tier":
// "breakers" lists non-closed peer breakers (state and consecutive
// failures), "failover_reads"/"failover_stores" count diverted
// exchanges, "corrupt" counts quarantined blobs, and "repair" holds
// {rounds, keys_pulled, bytes_pulled, failures, missing} — "missing"
// is the owned-key deficit still to be pulled; it falling to 0 is a
// rejoined member finishing convergence. All of these are omitted
// while zero, so a healthy fleet's stats are unchanged.
//
// # Session durability and failover
//
// By default a streaming session lives only in the memory of the
// daemon that created it: if that daemon dies, the client's next step
// gets 410 and re-creates elsewhere. -tier-sessions (requires the
// fleet tier) makes sessions fleet-resumable: after every committed
// step the daemon writes a sealed snapshot of the session — hierarchy,
// incremental signature state, partitioner spec, processor count, and
// any carried postmap history — through the tier's store/offer path,
// keyed by the session token, so the snapshot lands on the token's
// rendezvous owner as well as the local disk store.
//
//	samrd ... -tier-dir /var/cache/samr-a -tier-peers ... -tier-self ... -tier-sessions
//
// A daemon receiving a step (or delete) for a token it does not hold
// then consults the tier before answering 410: on a snapshot hit it
// rebuilds the session — re-validating the hierarchy and re-deriving
// the signature state, which must match the snapshot byte-for-byte —
// and serves the request under the same token, marking the response
// with X-Samr-Session-Resumed: 1. Kill a fleet member mid-stream and
// the client's next step lands on a peer and succeeds with the same
// body the dead owner would have sent; postmap sessions carry their
// mapping history across the failover.
//
// The soft-state guarantee is unchanged: sessions are never durable
// state the fleet promises to keep. A tier miss (snapshot evicted,
// owner also dead, write lost) still answers 410 session-expired and
// the client re-creates from its full state — -tier-sessions only
// makes that recovery path rare, it never removes it. Corrupt or
// inconsistent snapshots are quarantined and count as misses.
// Resume traffic appears in /v1/stats under "sessions" as "resumed"
// and "resume_misses", distinct from "created" (creates count client
// uploads, resumes count failovers). With the flag off, every route,
// header, and stats body is byte-identical to a build without durable
// sessions.
//
// For chaos drills only, -faults arms deterministic fault injection
// on the non-client-facing paths, e.g.
//
//	samrd ... -faults 'disk.put:enospc:every=7;peer.get:latency:delay=20ms,prob=0.1' -fault-seed 7
//
// Points: disk.get, disk.put, peer.get, peer.put, peer.manifest in the
// tier; session.snapshot.put, session.snapshot.get on the session
// durability path; admit.accept, admit.shed in admission control; and
// pool.dispatch in the worker pool. Modes are error, latency, corrupt,
// enospc, scheduled by every/after/count/prob and derived purely from
// -fault-seed (same seed, same schedule). The contract under any
// schedule: degraded performance or a well-formed 429, never a wrong
// byte or a malformed client-visible error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"samr/internal/fault"
	"samr/internal/pool"
	"samr/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8347", "listen address")
		dir         = flag.String("traces", "", "directory of .trc trace files (loaded at startup and on demand)")
		cache       = flag.Int("cache", 256, "partition cache capacity (results)")
		procs       = flag.Int("procs", 16, "default processor count for requests that omit nprocs")
		cost        = flag.Float64("partition-cost", 2e-4, "classifier partitioning-cost estimate (seconds)")
		reqTimeout  = flag.Duration("request-timeout", 2*time.Minute, "per-request deadline threaded into partitioners and simulator (0 disables)")
		maxBody     = flag.Int64("max-body-bytes", 64<<20, "request body size limit in bytes")
		inflight    = flag.Int("max-inflight", 0, "max concurrently computing requests; 0 disables admission control")
		queueDepth  = flag.Int("queue-depth", 0, "admission queue depth beyond -max-inflight (default 4x -max-inflight)")
		tenantRate  = flag.Float64("tenant-rate", 0, "per-tenant admission rate limit in requests/second; 0 disables")
		tenantBurst = flag.Int("tenant-burst", 0, "per-tenant token-bucket burst (default -tenant-rate rounded up, min 1)")
		tierDir     = flag.String("tier-dir", "", "fleet tier disk store directory (empty disables the tier)")
		tierPeers   = flag.String("tier-peers", "", "comma-separated base URLs of every fleet member, identical across the fleet")
		tierSelf    = flag.String("tier-self", "", "this daemon's own base URL as listed in -tier-peers")
		tierMax     = flag.Int64("tier-max-bytes", 256<<20, "fleet tier disk store size bound in bytes")
		tierRepair  = flag.Duration("tier-repair", 0, "anti-entropy repair interval (0 disables; needs -tier-dir, -tier-peers, -tier-self)")
		tierRepKeys = flag.Int("tier-repair-keys", 256, "max keys pulled per repair round")
		tierSim     = flag.Bool("tier-sim-steps", false, "spill simulator step artifacts through the fleet tier")
		tierSess    = flag.Bool("tier-sessions", false, "snapshot streaming sessions through the fleet tier so peers can resume them (needs the tier)")
		faultSpec   = flag.String("faults", "", "fault-injection schedule for chaos drills, e.g. 'disk.put:enospc:every=7;peer.get:latency:delay=20ms,prob=0.1' (empty disables)")
		faultSeed   = flag.Int64("fault-seed", 1, "seed deriving the deterministic -faults schedule")
		maxSessions = flag.Int("max-sessions", 256, "streaming session table capacity (LRU eviction past it)")
		sessionTTL  = flag.Duration("session-ttl", 15*time.Minute, "idle expiry for streaming sessions")
	)
	flag.Parse()

	var peers []string
	for _, p := range strings.Split(*tierPeers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}

	var injector *fault.Injector
	if *faultSpec != "" {
		plans, err := fault.Parse(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "samrd:", err)
			os.Exit(1)
		}
		if injector, err = fault.New(*faultSeed, plans...); err != nil {
			fmt.Fprintln(os.Stderr, "samrd:", err)
			os.Exit(1)
		}
		// The worker pool is package-level, so its dispatch injection
		// point is armed process-wide rather than through server.Config.
		pool.SetFaults(injector)
	}

	s, err := server.New(server.Config{
		TraceDir:       *dir,
		CacheSize:      *cache,
		DefaultProcs:   *procs,
		PartitionCost:  *cost,
		RequestTimeout: *reqTimeout,
		MaxBodyBytes:   *maxBody,
		MaxInFlight:    *inflight,
		QueueDepth:     *queueDepth,
		TenantRate:     *tenantRate,
		TenantBurst:    *tenantBurst,
		TierDir:        *tierDir,
		TierMaxBytes:   *tierMax,
		TierPeers:      peers,
		TierSelf:       *tierSelf,
		TierRepair:     *tierRepair,
		TierRepairKeys: *tierRepKeys,
		TierSimSteps:   *tierSim,
		TierSessions:   *tierSess,
		Faults:         injector,
		MaxSessions:    *maxSessions,
		SessionTTL:     *sessionTTL,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "samrd:", err)
		os.Exit(1)
	}
	for _, ti := range s.Registry().List() {
		log.Printf("samrd: trace %q: app=%s snapshots=%d", ti.Name, ti.App, ti.Snapshots)
	}

	// The read timeout bounds slow request-body uploads, which were
	// previously unbounded (only the headers had a timeout) and let a
	// slow client pin a connection forever. The write timeout — which
	// starts at header read and therefore also spans the body upload —
	// leaves a full read-timeout of headroom over the handler deadline,
	// so a slow upload followed by a compute that runs to its
	// -request-timeout can still flush the documented 504. With
	// -request-timeout 0 the cap really is disabled: no write timeout.
	const readTimeout = 5 * time.Minute
	var writeTimeout time.Duration
	if *reqTimeout > 0 {
		writeTimeout = *reqTimeout + readTimeout
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       readTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Shutdown makes ListenAndServe return immediately, so main must
	// wait for the drain itself before exiting the process.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		// Flip /readyz to "draining" before closing the listener so a
		// load balancer stops routing here ahead of connection errors.
		s.BeginShutdown()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shutdownCtx) //nolint:errcheck
	}()

	if s.Tier() != nil {
		log.Printf("samrd: fleet tier on (dir %q, %d peers, %d byte bound)", *tierDir, len(peers), *tierMax)
	}
	if s.Repairer() != nil {
		log.Printf("samrd: anti-entropy repair on (every %s, <=%d keys/round)", *tierRepair, *tierRepKeys)
	}
	if *tierSess {
		log.Printf("samrd: durable sessions on (snapshots through the fleet tier, peers resume)")
	}
	if injector != nil {
		log.Printf("samrd: FAULT INJECTION ARMED (chaos drill, seed %d): %s", *faultSeed, injector)
	}
	if *inflight > 0 {
		log.Printf("samrd: admission control on (max in-flight %d, queue %d, tenant rate %g/s)",
			*inflight, s.Admission().Stats().QueueDepth, *tenantRate)
	}
	log.Printf("samrd: listening on %s (cache %d, default procs %d, request timeout %s)", *addr, *cache, *procs, *reqTimeout)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "samrd:", err)
		os.Exit(1)
	}
	stop()
	<-drained
	s.Close() // stop the repair loop after the HTTP drain
	hits, misses, shared := s.Cache().Stats()
	log.Printf("samrd: shut down (cache hits %d, misses %d, shared %d)", hits, misses, shared)
}
