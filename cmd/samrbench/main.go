// Command samrbench reproduces the paper's evaluation figures and the
// repository's ablations, printing each figure's data series and
// agreement statistics as text tables.
//
// Figure mapping (paper -> experiment):
//
//	fig1 -> BL2D dynamic behaviour under a static partitioner
//	fig4 -> RM2D  model vs actual (communication and data migration)
//	fig5 -> BL2D  model vs actual
//	fig6 -> SC2D  model vs actual
//	fig7 -> TP2D  model vs actual
//	trajectory -> Figure 3 (right): classification-space locus
//	ablationA..E -> DESIGN.md ablations
//	sweep -> BL2D static hybrid across a processor-count ladder
//
// Usage:
//
//	samrbench -experiment fig5
//	samrbench -experiment all -procs 16
//	samrbench -experiment fig4 -quick      (reduced scale, for smoke tests)
//	samrbench -experiment fig1 -trace bl2d.trc
//	samrbench -experiment sweep -cachestats  (memoization counters on stderr)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"slices"
	"sort"
	"syscall"

	"samr/internal/apps"
	"samr/internal/experiments"
	"samr/internal/partition"
	"samr/internal/sim"
	"samr/internal/trace"
)

func main() {
	var (
		exp        = flag.String("experiment", "all", "fig1, fig4, fig5, fig6, fig7, trajectory, ablationA, ablationB, ablationC, ablationD, ablationE, sweep, or all (the paper set; sweep runs standalone only)")
		procs      = flag.Int("procs", experiments.DefaultProcs, "number of processors to simulate")
		quick      = flag.Bool("quick", false, "use reduced-scale traces (16x16 base, 3 levels, 20 steps)")
		trPath     = flag.String("trace", "", "use a trace file instead of generating the experiment's default trace")
		format     = flag.String("format", "table", "figure output format: table or csv")
		cachestats = flag.Bool("cachestats", false, "print the memoization-cache counters to stderr after the run")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()
	// Ctrl-C cancels the context; the cancellation threads through the
	// experiment pipeline into every partitioner, which aborts mid-batch
	// instead of running the remaining figures to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := profiled(*cpuprofile, *memprofile, func() error {
		return run(ctx, *exp, *procs, *quick, *trPath, *format == "csv")
	}); err != nil {
		fmt.Fprintln(os.Stderr, "samrbench:", err)
		os.Exit(1)
	}
	if *cachestats {
		printCacheStats()
	}
}

// printCacheStats reports the memoization counters of the run to
// stderr (stderr so table/CSV output stays pipeline-clean): the
// partition-layer content-addressed caches (unit chains, hybrid preps,
// level indexes) and the simulator's in-run dedup savings.
func printCacheStats() {
	hits, misses, shared, entries, capacity := partition.CacheStats()
	parts, evals, migs := sim.MemoStats()
	fmt.Fprintf(os.Stderr, "cachestats: unit-chains hits=%d misses=%d shared=%d entries=%d/%d\n",
		hits, misses, shared, entries, capacity)
	fmt.Fprintf(os.Stderr, "cachestats: sim-memo partitions=%d evaluations=%d migration-shortcuts=%d\n",
		parts, evals, migs)
}

// profiled brackets f with the optional pprof captures so hot-path
// claims about the experiment pipeline are inspectable.
func profiled(cpuprofile, memprofile string, f func() error) error {
	if cpuprofile != "" {
		cf, err := os.Create(cpuprofile)
		if err != nil {
			return err
		}
		defer cf.Close()
		if err := pprof.StartCPUProfile(cf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if err := f(); err != nil {
		return err
	}
	if memprofile != "" {
		mf, err := os.Create(memprofile)
		if err != nil {
			return err
		}
		defer mf.Close()
		runtime.GC() // flush recent garbage so the profile shows live objects
		if err := pprof.WriteHeapProfile(mf); err != nil {
			return err
		}
	}
	return nil
}

// emit prints a figure in the selected format.
func emit(f *experiments.Figure, csvOut bool) error {
	if csvOut {
		return f.WriteCSV(os.Stdout)
	}
	f.Print(os.Stdout)
	return nil
}

// figApps maps model-vs-actual figures to their applications.
var figApps = map[string]string{
	"fig4": "RM2D",
	"fig5": "BL2D",
	"fig6": "SC2D",
	"fig7": "TP2D",
}

func run(ctx context.Context, exp string, procs int, quick bool, trPath string, csvOut bool) error {
	load := func(app string) (*trace.Trace, error) {
		if trPath != "" {
			f, err := os.Open(trPath)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return trace.Read(f)
		}
		if quick {
			return apps.QuickTrace(ctx, app)
		}
		return apps.PaperTrace(ctx, app)
	}

	one := func(name string) error {
		switch {
		case name == "fig1":
			tr, err := load("BL2D")
			if err != nil {
				return err
			}
			f, err := experiments.Fig1(ctx, tr, procs)
			if err != nil {
				return err
			}
			if err := emit(f, csvOut); err != nil {
				return err
			}
		case figApps[name] != "":
			tr, err := load(figApps[name])
			if err != nil {
				return err
			}
			v, err := experiments.FigModelVsActual(ctx, tr, procs)
			if err != nil {
				return err
			}
			if !csvOut {
				fmt.Printf("--- %s (paper Figure %s) ---\n", v.App, name[3:])
			}
			if err := emit(v.Comm, csvOut); err != nil {
				return err
			}
			if err := emit(v.Mig, csvOut); err != nil {
				return err
			}
		case name == "trajectory":
			tr, err := load("BL2D")
			if err != nil {
				return err
			}
			f, err := experiments.ClassificationTrajectory(ctx, tr, procs)
			if err != nil {
				return err
			}
			if err := emit(f, csvOut); err != nil {
				return err
			}
		case name == "ablationA":
			for _, app := range apps.Names {
				tr, err := load(app)
				if err != nil {
					return err
				}
				f, err := experiments.AblationDenominator(ctx, tr, procs)
				if err != nil {
					return err
				}
				if err := emit(f, csvOut); err != nil {
					return err
				}
			}
		case name == "ablationB":
			for _, app := range apps.Names {
				tr, err := load(app)
				if err != nil {
					return err
				}
				tb, err := experiments.AblationPartitioners(ctx, tr, procs)
				if err != nil {
					return err
				}
				tb.Print(os.Stdout)
			}
		case name == "ablationC":
			for _, app := range apps.Names {
				tr, err := load(app)
				if err != nil {
					return err
				}
				tb, err := experiments.MetaVsStatic(ctx, tr, procs)
				if err != nil {
					return err
				}
				tb.Print(os.Stdout)
			}
		case name == "ablationD":
			for _, app := range apps.Names {
				tr, err := load(app)
				if err != nil {
					return err
				}
				f, err := experiments.AblationAbsoluteImportance(ctx, tr, procs)
				if err != nil {
					return err
				}
				if err := emit(f, csvOut); err != nil {
					return err
				}
			}
		case name == "ablationE":
			for _, app := range apps.Names {
				tr, err := load(app)
				if err != nil {
					return err
				}
				tb, err := experiments.AblationPostMapping(ctx, tr, procs)
				if err != nil {
					return err
				}
				tb.Print(os.Stdout)
			}
		case name == "sweep":
			tr, err := load("BL2D")
			if err != nil {
				return err
			}
			// The sweep is a ladder view; -procs widens the default
			// ladder with the requested count instead of replacing it.
			ladder := append([]int(nil), experiments.DefaultProcsLadder...)
			if !slices.Contains(ladder, procs) {
				ladder = append(ladder, procs)
				sort.Ints(ladder)
			}
			tb, err := experiments.ProcsSweep(ctx, tr, partition.NewNatureFable(), ladder)
			if err != nil {
				return err
			}
			tb.Print(os.Stdout)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	if exp == "all" {
		// "all" is pinned to the paper's evaluation set: its output is
		// the byte-identity baseline the perf PRs diff against, so new
		// experiments (sweep) run standalone instead of growing it.
		for _, name := range []string{"fig1", "fig4", "fig5", "fig6", "fig7", "trajectory", "ablationA", "ablationB", "ablationC", "ablationD", "ablationE"} {
			if err := one(name); err != nil {
				return err
			}
		}
		return nil
	}
	return one(exp)
}
