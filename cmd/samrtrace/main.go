// Command samrtrace generates a partition-independent SAMR application
// trace: it runs one of the four paper applications (RM2D, BL2D, SC2D,
// TP2D) under the Berger–Colella driver and records the grid hierarchy
// after every coarse step.
//
// Usage:
//
//	samrtrace -app BL2D -steps 100 -o bl2d.trc
//	samrtrace -app RM2D -base 32 -levels 5 -o rm2d.trc
package main

import (
	"flag"
	"fmt"
	"os"

	"samr/internal/apps"
	"samr/internal/trace"
)

func main() {
	var (
		app    = flag.String("app", "TP2D", "application kernel: RM2D, BL2D, SC2D or TP2D")
		steps  = flag.Int("steps", apps.PaperSteps, "coarse time steps to run")
		base   = flag.Int("base", 0, "base grid size (0 = paper default)")
		levels = flag.Int("levels", 0, "maximum levels (0 = paper default)")
		out    = flag.String("o", "", "output trace file (default <app>.trc)")
	)
	flag.Parse()

	// Validate the application name up front (accepting any case) so a
	// typo fails immediately with the list of valid kernels instead of
	// deep inside trace generation.
	name, err := apps.Normalize(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, "samrtrace:", err)
		os.Exit(2)
	}
	*app = name

	cfg := apps.PaperConfig()
	if *base > 0 {
		cfg.BaseSize = *base
	}
	if *levels > 0 {
		cfg.MaxLevels = *levels
	}
	tr, err := apps.Generate(*app, cfg, *steps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "samrtrace:", err)
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = *app + ".trc"
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "samrtrace:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := trace.Write(f, tr); err != nil {
		fmt.Fprintln(os.Stderr, "samrtrace:", err)
		os.Exit(1)
	}
	last := tr.Snapshots[tr.Len()-1]
	fmt.Printf("wrote %s: %s, %d snapshots, final hierarchy %d levels / %d points\n",
		path, tr.App, tr.Len(), len(last.H.Levels), last.H.NumPoints())
}
