// Command samrtrace generates a partition-independent SAMR application
// trace: it runs one of the four paper applications (RM2D, BL2D, SC2D,
// TP2D) under the Berger–Colella driver and records the grid hierarchy
// after every coarse step. Ctrl-C cancels the run: the cancellation
// threads through the driver's worker pool, which stops dispatching
// patch work units and exits without writing a partial trace.
//
// Usage:
//
//	samrtrace -app BL2D -steps 100 -o bl2d.trc
//	samrtrace -app RM2D -base 32 -levels 5 -o rm2d.trc
//	samrtrace -app TP2D -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"samr/internal/apps"
	"samr/internal/trace"
)

func main() {
	var (
		app        = flag.String("app", "TP2D", "application kernel: RM2D, BL2D, SC2D or TP2D")
		steps      = flag.Int("steps", apps.PaperSteps, "coarse time steps to run")
		base       = flag.Int("base", 0, "base grid size (0 = paper default)")
		levels     = flag.Int("levels", 0, "maximum levels (0 = paper default)")
		workers    = flag.Int("workers", 0, "worker-pool width for per-patch fan-out (0 = GOMAXPROCS)")
		out        = flag.String("o", "", "output trace file (default <app>.trc)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()
	// Ctrl-C cancels the context; the driver aborts between patch work
	// units instead of running the remaining steps.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *app, *steps, *base, *levels, *workers, *out, *cpuprofile, *memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "samrtrace:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, app string, steps, base, levels, workers int, out, cpuprofile, memprofile string) error {
	// Validate the application name up front (accepting any case) so a
	// typo fails immediately with the list of valid kernels instead of
	// deep inside trace generation.
	name, err := apps.Normalize(app)
	if err != nil {
		return err
	}

	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	cfg := apps.PaperConfig()
	if base > 0 {
		cfg.BaseSize = base
	}
	if levels > 0 {
		cfg.MaxLevels = levels
	}
	if workers > 0 {
		cfg.Workers = workers
	}
	tr, err := apps.Generate(ctx, name, cfg, steps)
	if err != nil {
		return err
	}
	path := out
	if path == "" {
		path = name + ".trc"
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Write(f, tr); err != nil {
		return err
	}
	last := tr.Snapshots[tr.Len()-1]
	fmt.Printf("wrote %s: %s, %d snapshots, final hierarchy %d levels / %d points\n",
		path, tr.App, tr.Len(), len(last.H.Levels), last.H.NumPoints())

	if memprofile != "" {
		mf, err := os.Create(memprofile)
		if err != nil {
			return err
		}
		defer mf.Close()
		runtime.GC() // flush recent garbage so the profile shows live objects
		if err := pprof.WriteHeapProfile(mf); err != nil {
			return err
		}
	}
	return nil
}
