// Shockwave example: Richtmyer–Meshkov (RM2D) with per-step
// classification. A compressible-Euler simulation of a shock hitting a
// perturbed interface drives irregular refinement dynamics; the
// classifier maps each snapshot onto the continuous classification
// space (the trajectory of Figure 3, right), and the example shows how
// the three dimensions respond to the shock crossing the interface.
//
//	go run ./examples/shockwave -quick
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"samr/internal/apps"
	"samr/internal/core"
	"samr/internal/sim"
	"samr/internal/trace"
)

func main() {
	quick := flag.Bool("quick", false, "reduced-scale run")
	procs := flag.Int("procs", 16, "processors (scales the time-slot estimate)")
	flag.Parse()

	ctx := context.Background()
	var tr *trace.Trace
	var err error
	if *quick {
		tr, err = apps.QuickTrace(ctx, "RM2D")
	} else {
		tr, err = apps.PaperTrace(ctx, "RM2D")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	m := sim.DefaultMachine()
	cls := core.NewClassifier(2e-4)
	fmt.Println("RM2D classification-space trajectory (continuous, absolute):")
	fmt.Printf("%6s %8s %8s %8s %8s %10s %8s\n",
		"step", "dimI", "dimII", "dimIII", "sizeNrm", "points", "levels")
	var maxMig core.Sample
	for _, snap := range tr.Snapshots {
		slot := float64(snap.H.Workload()) * m.CellTime / float64(*procs)
		s := cls.Classify(snap.H, slot)
		if s.DimIII > maxMig.DimIII {
			maxMig = s
		}
		fmt.Printf("%6d %8.3f %8.3f %8.3f %8.3f %10d %8d\n",
			snap.Step, s.DimI, s.DimII, s.DimIII, s.SizeNorm, s.Points, len(snap.H.Levels))
	}
	fmt.Printf("\npeak migration pressure: beta_m=%.3f at step %d "+
		"(the hierarchy reorganized most there)\n", maxMig.DimIII, maxMig.Step)
}
