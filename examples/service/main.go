// The service example drives the samrd partitioning service end to
// end, in process: it generates a reduced-scale application trace,
// stands up the server on a loopback listener, and exercises all four
// endpoints — listing traces, meta-partitioner selection, cached
// partitioning (showing the miss -> hit flip on a repeated regrid
// state), and trace-driven simulation.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"

	"samr/internal/apps"
	"samr/internal/server"
	"samr/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "service:", err)
		os.Exit(1)
	}
}

func run() error {
	// A real deployment runs `samrd -traces <dir>` and registers traces
	// as files; in process we inject the trace directly.
	tr, err := apps.QuickTrace("TP2D")
	if err != nil {
		return err
	}
	s, err := server.New(server.Config{DefaultProcs: 8})
	if err != nil {
		return err
	}
	s.Registry().Register("tp2d-quick", tr)
	ts := httptest.NewServer(s)
	defer ts.Close()
	fmt.Printf("samrd serving on %s\n\n", ts.URL)

	// GET /v1/traces
	var traces server.TracesResponse
	if err := get(ts.URL+"/v1/traces", &traces); err != nil {
		return err
	}
	for _, ti := range traces.Traces {
		fmt.Printf("trace %-12s app=%s snapshots=%d levels<=%d\n", ti.Name, ti.App, ti.Snapshots, ti.MaxLevels)
	}

	// POST /v1/select over the first snapshots: the regrid sequence is
	// classified through one meta-partitioner, hysteresis included.
	sel := server.SelectRequest{}
	wire := toWire(tr, 6)
	sel.Hierarchies = wire
	var selResp server.SelectResponse
	if err := post(ts.URL+"/v1/select", sel, &selResp, nil); err != nil {
		return err
	}
	fmt.Println("\nmeta-partitioner selection over the first regrid states:")
	for i, c := range selResp.Selections {
		fmt.Printf("  step %2d: dimI=%.3f dimII=%.3f dimIII=%.3f -> %s\n", i, c.DimI, c.DimII, c.DimIII, c.Partitioner)
	}

	// POST /v1/partition twice with the same hierarchy: the second is a
	// content-addressed cache hit.
	preq := server.PartitionRequest{Hierarchy: &wire[len(wire)-1], Partitioner: "nature+fable", NProcs: 8}
	fmt.Println("\npartitioning the same regrid state twice:")
	for i := 0; i < 2; i++ {
		var presp server.PartitionResponse
		var hdr http.Header
		if err := post(ts.URL+"/v1/partition", preq, &presp, &hdr); err != nil {
			return err
		}
		r := presp.Results[0]
		fmt.Printf("  request %d: cache=%-4s sig=%.12s fragments=%d imbalance=%.1f%%\n",
			i+1, hdr.Get("X-Samr-Cache"), r.Signature, len(r.Fragments), r.Imbalance)
	}

	// POST /v1/simulate: static partitioner vs meta-partitioner.
	fmt.Println("\ntrace-driven evaluation over the registered trace:")
	for _, req := range []server.SimulateRequest{
		{Trace: "tp2d-quick", Partitioner: "domain-hilbert-u2", NProcs: 8},
		{Trace: "tp2d-quick", Meta: true, NProcs: 8},
	} {
		var sresp server.SimulateResponse
		if err := post(ts.URL+"/v1/simulate", req, &sresp, nil); err != nil {
			return err
		}
		fmt.Printf("  %-24s estTime=%.4fs meanImbalance=%.1f%%\n", sresp.Partitioner, sresp.TotalEstTime, sresp.MeanImbalance)
	}
	return nil
}

// toWire converts the first n trace snapshots to wire hierarchies.
func toWire(tr *trace.Trace, n int) []server.Hierarchy {
	if n > len(tr.Snapshots) {
		n = len(tr.Snapshots)
	}
	out := make([]server.Hierarchy, n)
	for i := 0; i < n; i++ {
		out[i] = server.FromHierarchy(tr.Snapshots[i].H)
	}
	return out
}

func get(url string, out any) error {
	r, err := http.Get(url)
	if err != nil {
		return err
	}
	defer r.Body.Close()
	return json.NewDecoder(r.Body).Decode(out)
}

func post(url string, in, out any, hdr *http.Header) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if hdr != nil {
		*hdr = r.Header
	}
	if r.StatusCode != http.StatusOK {
		var e server.ErrorResponse
		json.NewDecoder(r.Body).Decode(&e) //nolint:errcheck
		return fmt.Errorf("%s: %s (%s)", url, r.Status, e.Error)
	}
	return json.NewDecoder(r.Body).Decode(out)
}
