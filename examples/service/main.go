// The service example drives the samrd partitioning service end to
// end, in process: it generates a reduced-scale application trace,
// stands up the server on a loopback listener, and exercises the
// endpoints — listing traces, meta-partitioner selection, cached
// partitioning (showing the miss -> hit flip on a repeated regrid
// state), trace-driven simulation, and the operational counters of
// /v1/stats.
//
// # Deadlines and cancellation
//
// Every request is context-bounded: the server threads the request
// context (optionally capped by Config.RequestTimeout / samrd's
// -request-timeout flag) down through the worker pool and into every
// partitioner, which polls it at box-batch granularity. A request whose
// deadline expires returns 504 Gateway Timeout with a JSON error and
// never produces a partial result; a client that disconnects cancels
// its work mid-batch the same way (recorded as 499). Concurrent
// identical cache misses are coalesced by a singleflight group — the
// extra requests wait for the first compute and report
// X-Samr-Cache: shared. The deadline section of this example
// demonstrates the deadline wire error with a deliberately impossible
// timeout.
//
// # Overload and retry
//
// With Config.MaxInFlight set (samrd's -max-inflight flag) the server
// admits a bounded number of compute requests, queues a few more, and
// sheds the rest with 429 + Retry-After before any partitioner runs;
// /readyz flips to 503 "saturated" while the queue is full and to
// "draining" once shutdown begins. The final section saturates a
// one-slot server on purpose and shows the shed wire contract, the
// readiness flip, the per-tenant admission counters in /v1/stats, and
// a well-behaved client: postRetry retries 429/503 with jittered
// exponential backoff (the shared internal/backoff policy — the same
// one the fleet tier's peer client uses), honors the server's
// Retry-After, caps its attempts, and aborts as soon as its context
// does.
//
// # Streaming sessions
//
// The session section replays the same regrid trajectory through
// POST /v1/session + per-level delta steps instead of repeated full
// posts: the hierarchy is uploaded once, each step sends keep/replace
// ops per level (O(changed boxes) on the wire), and every step body is
// byte-identical to the equivalent full /v1/partition response. The
// sessionClient shows the recovery contract: sessions are soft state,
// and a step answered 410 with code "session-expired" (idle past the
// TTL or LRU-evicted) makes the client re-create the session from its
// current full state and retry.
//
// # Fleet tier
//
// The fleet section stands up two daemons that share their partition
// caches through the fleet tier (samrd's -tier-dir/-tier-peers/
// -tier-self flags): a partition computed by the first daemon is
// served by the second with X-Samr-Cache: tier — the bytes came over
// the peer protocol, not from a partitioner run.
//
// # Session failover
//
// With -tier-sessions, sessions survive their daemon: every committed
// step snapshots the session through the tier, and a peer receiving a
// step for a token it does not hold resumes from the snapshot instead
// of answering 410. The failover section kills the session-owning
// daemon mid-stream and lands the next step on the survivor — same
// token, X-Samr-Session-Resumed: 1, and the client never re-uploads.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strconv"
	"time"

	"samr/internal/apps"
	"samr/internal/backoff"
	"samr/internal/server"
	"samr/internal/tier"
	"samr/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "service:", err)
		os.Exit(1)
	}
}

func run() error {
	// A real deployment runs `samrd -traces <dir>` and registers traces
	// as files; in process we inject the trace directly.
	tr, err := apps.QuickTrace(context.Background(), "TP2D")
	if err != nil {
		return err
	}
	s, err := server.New(server.Config{DefaultProcs: 8})
	if err != nil {
		return err
	}
	s.Registry().Register("tp2d-quick", tr)
	ts := httptest.NewServer(s)
	defer ts.Close()
	fmt.Printf("samrd serving on %s\n\n", ts.URL)

	// GET /v1/traces
	var traces server.TracesResponse
	if err := get(ts.URL+"/v1/traces", &traces); err != nil {
		return err
	}
	for _, ti := range traces.Traces {
		fmt.Printf("trace %-12s app=%s snapshots=%d levels<=%d\n", ti.Name, ti.App, ti.Snapshots, ti.MaxLevels)
	}

	// POST /v1/select over the first snapshots: the regrid sequence is
	// classified through one meta-partitioner, hysteresis included.
	sel := server.SelectRequest{}
	wire := toWire(tr, 6)
	sel.Hierarchies = wire
	var selResp server.SelectResponse
	if err := post(ts.URL+"/v1/select", sel, &selResp, nil); err != nil {
		return err
	}
	fmt.Println("\nmeta-partitioner selection over the first regrid states:")
	for i, c := range selResp.Selections {
		fmt.Printf("  step %2d: dimI=%.3f dimII=%.3f dimIII=%.3f -> %s\n", i, c.DimI, c.DimII, c.DimIII, c.Partitioner)
	}

	// POST /v1/partition twice with the same hierarchy: the second is a
	// content-addressed cache hit.
	preq := server.PartitionRequest{Hierarchy: &wire[len(wire)-1], Partitioner: "nature+fable", NProcs: 8}
	fmt.Println("\npartitioning the same regrid state twice:")
	for i := 0; i < 2; i++ {
		var presp server.PartitionResponse
		var hdr http.Header
		if err := post(ts.URL+"/v1/partition", preq, &presp, &hdr); err != nil {
			return err
		}
		r := presp.Results[0]
		fmt.Printf("  request %d: cache=%-4s sig=%.12s fragments=%d imbalance=%.1f%%\n",
			i+1, hdr.Get("X-Samr-Cache"), r.Signature, len(r.Fragments), r.Imbalance)
	}

	// POST /v1/simulate: static partitioner vs meta-partitioner.
	fmt.Println("\ntrace-driven evaluation over the registered trace:")
	for _, req := range []server.SimulateRequest{
		{Trace: "tp2d-quick", Partitioner: "domain-hilbert-u2", NProcs: 8},
		{Trace: "tp2d-quick", Meta: true, NProcs: 8},
	} {
		var sresp server.SimulateResponse
		if err := post(ts.URL+"/v1/simulate", req, &sresp, nil); err != nil {
			return err
		}
		fmt.Printf("  %-24s estTime=%.4fs meanImbalance=%.1f%%\n", sresp.Partitioner, sresp.TotalEstTime, sresp.MeanImbalance)
	}

	// GET /v1/stats: the operational counters behind the cache headers.
	var st server.StatsResponse
	if err := get(ts.URL+"/v1/stats", &st); err != nil {
		return err
	}
	fmt.Printf("\n/v1/stats: cache hits=%d misses=%d shared=%d (%d/%d entries), pool=%d, in-flight=%d\n",
		st.Cache.Hits, st.Cache.Misses, st.Cache.Shared, st.Cache.Entries, st.Cache.Capacity,
		st.PoolSize, st.InFlight)
	for _, ep := range []string{"partition", "select", "simulate"} {
		fmt.Printf("  endpoint %-10s requests=%d errors=%d\n", ep, st.Endpoints[ep].Requests, st.Endpoints[ep].Errors)
	}

	// Deadline demo: a server whose per-request deadline is impossibly
	// tight answers with the documented 504 wire error before running
	// any partitioner — the regrid-time bound the meta-partitioner
	// story depends on.
	tight, err := server.New(server.Config{DefaultProcs: 8, RequestTimeout: time.Nanosecond})
	if err != nil {
		return err
	}
	tts := httptest.NewServer(tight)
	defer tts.Close()
	preq2 := server.PartitionRequest{Hierarchy: &wire[0], Partitioner: "nature+fable", NProcs: 8}
	body, _ := json.Marshal(preq2)
	resp, err := http.Post(tts.URL+"/v1/partition", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var e server.ErrorResponse
	json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck
	fmt.Printf("\nexpired deadline: HTTP %d, error=%q\n", resp.StatusCode, e.Error)

	if err := sessionDemo(wire); err != nil {
		return err
	}
	if err := fleetDemo(wire); err != nil {
		return err
	}
	if err := failoverDemo(wire); err != nil {
		return err
	}
	return overloadDemo(wire)
}

// sessionDemo streams the regrid trajectory through one session: a
// full upload once, then per-level deltas (keep/replace) whose wire
// cost is proportional to what changed. The sessionClient below is the
// well-behaved recovery pattern: a 410 with code "session-expired"
// (idle past -session-ttl, or LRU-evicted past -max-sessions) makes it
// re-create the session from its current full state and retry — the
// client loses nothing but one upload.
func sessionDemo(wire []server.Hierarchy) error {
	const ttl = 250 * time.Millisecond
	s, err := server.New(server.Config{DefaultProcs: 8, SessionTTL: ttl})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	fmt.Println("\nstreaming session over the regrid trajectory:")
	sc := &sessionClient{base: ts.URL, spec: "domain-hilbert-u2", nprocs: 8}
	var deltaBytes, fullBytes int
	for i := 1; i < len(wire); i++ {
		if i == len(wire)-1 {
			// Let the session idle past its TTL: the next step answers
			// 410 session-expired and the client transparently recovers.
			time.Sleep(ttl + 100*time.Millisecond)
		}
		res, sent, err := sc.step(wire[i])
		if err != nil {
			return err
		}
		full, _ := json.Marshal(server.PartitionRequest{Hierarchy: &wire[i], Partitioner: sc.spec, NProcs: sc.nprocs})
		deltaBytes += sent
		fullBytes += len(full)
		fmt.Printf("  step %d: cache=%-4s sig=%.12s sent %dB (full post %dB)\n",
			i, res.Cache, res.Signature, sent, len(full))
	}
	fmt.Printf("  trajectory total: %dB streamed vs %dB re-posted (%.1fx smaller), %d session(s) created\n",
		deltaBytes, fullBytes, float64(fullBytes)/float64(deltaBytes), sc.creates)
	return sc.close()
}

// sessionClient drives /v1/session: it mirrors the session's state so
// it can diff consecutive hierarchies into keep/replace deltas, and
// re-creates the session whenever the server answers the documented
// 410 session-expired error.
type sessionClient struct {
	base, spec string
	nprocs     int
	token      string
	state      *server.Hierarchy // what the session currently holds
	creates    int
}

// step advances the session to next and returns its partition result
// plus the request bytes spent (delta only, or full re-upload + keep
// step after an expiry). The delta keeps every level whose box list
// is unchanged from the mirrored state.
func (c *sessionClient) step(next server.Hierarchy) (*server.PartitionResult, int, error) {
	for attempt := 0; ; attempt++ {
		if c.token == "" {
			n, err := c.create(next)
			if err != nil {
				return nil, 0, err
			}
			// The freshly created session already holds next; partition
			// it with a pure-keep step.
			res, sent, expired, err := c.post(pureKeep(next))
			if err != nil || !expired {
				return res, n + sent, err
			}
			continue
		}
		res, sent, expired, err := c.post(diffStep(*c.state, next))
		if err != nil {
			return nil, 0, err
		}
		if !expired {
			c.state = &next
			return res, sent, nil
		}
		if attempt > 1 {
			return nil, 0, fmt.Errorf("session expired twice in a row")
		}
		fmt.Printf("  step: session %.8s gone (410 %s) -> re-creating from full state\n",
			c.token, server.CodeSessionExpired)
		c.token = ""
	}
}

// create opens a session holding h, returning the upload size.
func (c *sessionClient) create(h server.Hierarchy) (int, error) {
	body, err := json.Marshal(server.SessionCreateRequest{Hierarchy: &h, Partitioner: c.spec, NProcs: c.nprocs})
	if err != nil {
		return 0, err
	}
	r, err := http.Post(c.base+"/v1/session", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		var e server.ErrorResponse
		json.NewDecoder(r.Body).Decode(&e) //nolint:errcheck
		return 0, fmt.Errorf("session create: %s (%s)", r.Status, e.Error)
	}
	var create server.SessionCreateResponse
	if err := json.NewDecoder(r.Body).Decode(&create); err != nil {
		return 0, err
	}
	c.token, c.state, c.creates = create.Session, &h, c.creates+1
	return len(body), nil
}

// post sends one step, reporting (result, bytes sent, expired).
func (c *sessionClient) post(step server.SessionStepRequest) (*server.PartitionResult, int, bool, error) {
	body, err := json.Marshal(step)
	if err != nil {
		return nil, 0, false, err
	}
	r, err := http.Post(c.base+"/v1/session/"+c.token+"/step", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, false, err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		var e server.ErrorResponse
		json.NewDecoder(r.Body).Decode(&e) //nolint:errcheck
		if r.StatusCode == http.StatusGone && e.Code == server.CodeSessionExpired {
			return nil, len(body), true, nil
		}
		return nil, 0, false, fmt.Errorf("session step: %s (%s)", r.Status, e.Error)
	}
	var resp server.PartitionResponse
	if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
		return nil, 0, false, err
	}
	return &resp.Results[0], len(body), false, nil
}

func (c *sessionClient) close() error {
	if c.token == "" {
		return nil
	}
	req, err := http.NewRequest(http.MethodDelete, c.base+"/v1/session/"+c.token, nil)
	if err != nil {
		return err
	}
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	r.Body.Close()
	return nil
}

// diffStep builds the delta from prev to next: keep every level whose
// box list is byte-identical, replace the rest, with the step length
// setting the new level count.
func diffStep(prev, next server.Hierarchy) server.SessionStepRequest {
	step := server.SessionStepRequest{Levels: make([]server.LevelOp, len(next.Levels))}
	for l, boxes := range next.Levels {
		if l < len(prev.Levels) && reflect.DeepEqual(prev.Levels[l], boxes) {
			step.Levels[l] = server.LevelOp{Op: server.LevelKeep}
		} else {
			step.Levels[l] = server.LevelOp{Op: server.LevelReplace, Boxes: boxes}
		}
	}
	return step
}

// pureKeep is the no-op step partitioning a session's current state.
func pureKeep(h server.Hierarchy) server.SessionStepRequest {
	step := server.SessionStepRequest{Levels: make([]server.LevelOp, len(h.Levels))}
	for l := range step.Levels {
		step.Levels[l] = server.LevelOp{Op: server.LevelKeep}
	}
	return step
}

// fleetDemo runs a two-daemon fleet sharing one logical partition
// cache through the fleet tier: daemon A computes, daemon B serves the
// identical bytes with X-Samr-Cache: tier.
func fleetDemo(wire []server.Hierarchy) error {
	fmt.Println("\nfleet tier across two daemons:")
	const n = 2
	urls := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range urls {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		listeners[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	servers := make([]*server.Server, n)
	for i := range urls {
		dir, err := os.MkdirTemp("", "samr-tier-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir) //nolint:errcheck
		s, err := server.New(server.Config{
			DefaultProcs: 8,
			TierDir:      dir,
			TierPeers:    urls,
			TierSelf:     urls[i],
		})
		if err != nil {
			return err
		}
		servers[i] = s
		ts := httptest.NewUnstartedServer(s)
		ts.Listener.Close() //nolint:errcheck
		ts.Listener = listeners[i]
		ts.Start()
		defer ts.Close()
	}

	req := server.PartitionRequest{Hierarchy: &wire[0], Partitioner: "nature+fable", NProcs: 8}
	for i, url := range urls {
		var presp server.PartitionResponse
		var hdr http.Header
		if err := post(url+"/v1/partition", req, &presp, &hdr); err != nil {
			return err
		}
		r := presp.Results[0]
		fmt.Printf("  daemon %c: cache=%-4s sig=%.12s fragments=%d\n",
			'A'+i, hdr.Get("X-Samr-Cache"), r.Signature, len(r.Fragments))
	}
	st := servers[1].Tier().Stats()
	fmt.Printf("  daemon B tier: lookups=%d disk_hits=%d peer_hits=%d stores=%d\n",
		st.Lookups, st.DiskHits, st.PeerHits, st.Stores)
	return nil
}

// failoverDemo kills the session-owning daemon of a two-member fleet
// mid-stream and shows the client's next step landing on the survivor
// under the same token: with TierSessions on, every committed step
// snapshots the session through the tier, and an unknown token is a
// resume attempt before it is a 410.
func failoverDemo(wire []server.Hierarchy) error {
	fmt.Println("\nsession failover across a two-daemon fleet (-tier-sessions):")
	const n = 2
	urls := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range urls {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		listeners[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	servers := make([]*server.Server, n)
	tss := make([]*httptest.Server, n)
	for i := range urls {
		dir, err := os.MkdirTemp("", "samr-sess-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir) //nolint:errcheck
		s, err := server.New(server.Config{
			DefaultProcs: 8,
			TierDir:      dir,
			TierPeers:    urls,
			TierSelf:     urls[i],
			TierSessions: true,
		})
		if err != nil {
			return err
		}
		servers[i] = s
		ts := httptest.NewUnstartedServer(s)
		ts.Listener.Close() //nolint:errcheck
		ts.Listener = listeners[i]
		ts.Start()
		tss[i] = ts
		defer ts.Close()
	}

	// Open sessions on daemon A until one's snapshot key is owned by
	// daemon B under rendezvous hashing: that snapshot's offer lands on
	// B at step time, so it survives A. (A real client does not do this
	// — it simply retries the documented 410 when the snapshot died
	// with its owner; the loop just makes the demo deterministic.)
	ring := servers[0].Tier().Ring()
	var token string
	for i := 0; i < 64; i++ {
		var create server.SessionCreateResponse
		if err := post(urls[0]+"/v1/session", server.SessionCreateRequest{
			Hierarchy: &wire[0], Partitioner: "domain-hilbert-u2", NProcs: 8,
		}, &create, nil); err != nil {
			return err
		}
		if ring.Owner(tier.Key("session-snapshot", create.Session)) == urls[1] {
			token = create.Session
			break
		}
		req, _ := http.NewRequest(http.MethodDelete, urls[0]+"/v1/session/"+create.Session, nil)
		if r, err := http.DefaultClient.Do(req); err == nil {
			r.Body.Close()
		}
	}
	if token == "" {
		return fmt.Errorf("no session snapshot landed on daemon B in 64 tries")
	}

	// A committed step on daemon A writes the durable snapshot.
	var before server.PartitionResponse
	if err := post(urls[0]+"/v1/session/"+token+"/step", diffStep(wire[0], wire[1]), &before, nil); err != nil {
		return err
	}
	fmt.Printf("  daemon A: session %.8s step sig=%.12s (snapshot offered to B)\n", token, before.Results[0].Signature)

	tss[0].Close()
	fmt.Println("  daemon A killed mid-stream")

	// The client's next step goes to daemon B with the SAME token: B
	// rebuilds the session from the snapshot and answers as if it had
	// owned it all along.
	var after server.PartitionResponse
	var hdr http.Header
	if err := post(urls[1]+"/v1/session/"+token+"/step", diffStep(wire[1], wire[2]), &after, &hdr); err != nil {
		return err
	}
	fmt.Printf("  daemon B: step sig=%.12s %s=%s\n",
		after.Results[0].Signature, server.SessionResumedHeader, hdr.Get(server.SessionResumedHeader))

	var st server.StatsResponse
	if err := get(urls[1]+"/v1/stats", &st); err != nil {
		return err
	}
	fmt.Printf("  daemon B sessions: resumed=%d resume_misses=%d created=%d\n",
		st.Sessions.Resumed, st.Sessions.ResumeMisses, st.Sessions.Created)
	return nil
}

// overloadDemo saturates a one-slot server and walks through the
// graceful-degradation surface: queue-full sheds, the /readyz flip,
// admission counters, and a retrying client that honors Retry-After.
func overloadDemo(wire []server.Hierarchy) error {
	ov, err := server.New(server.Config{DefaultProcs: 8, MaxInFlight: 1, QueueDepth: 1})
	if err != nil {
		return err
	}
	// Stand in for an expensive partition: every compute leader parks
	// until released, pinning the admission slot and the queue.
	hold := make(chan struct{})
	ov.Cache().SetOnFlight(func(_ server.CacheKey, leader bool) {
		if leader {
			<-hold
		}
	})
	ots := httptest.NewServer(ov)
	defer ots.Close()

	fmt.Println("\noverload on a -max-inflight 1 -queue-depth 1 server:")
	fmt.Printf("  /readyz idle: HTTP %d\n", readyz(ots.URL))

	// Two slow requests: the first takes the in-flight slot, the second
	// fills the queue.
	bg := make(chan error, 2)
	for i := 0; i < 2; i++ {
		req := server.PartitionRequest{Hierarchy: &wire[0], Partitioner: "domain-hilbert-u2", NProcs: 4 + i}
		go func() { bg <- post(ots.URL+"/v1/partition", req, &server.PartitionResponse{}, nil) }()
	}
	for deadline := time.Now().Add(5 * time.Second); ; {
		st := ov.Admission().Stats()
		if st.InFlight == 1 && st.Queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("overload never built up: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("  /readyz saturated: HTTP %d\n", readyz(ots.URL))

	// A third request finds slot and queue taken and is shed up front —
	// no partitioner runs, the cache is never touched.
	req3 := server.PartitionRequest{Hierarchy: &wire[0], Partitioner: "domain-hilbert-u2", NProcs: 6}
	body, _ := json.Marshal(req3)
	shedResp, err := http.Post(ots.URL+"/v1/partition", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var shedErr server.ErrorResponse
	json.NewDecoder(shedResp.Body).Decode(&shedErr) //nolint:errcheck
	shedResp.Body.Close()
	fmt.Printf("  shed: HTTP %d, Retry-After=%ss, %s=%s, error=%q\n",
		shedResp.StatusCode, shedResp.Header.Get("Retry-After"),
		server.ShedHeader, shedResp.Header.Get(server.ShedHeader), shedErr.Error)

	// A well-behaved client retries instead of giving up: first attempt
	// is shed, the backoff honors Retry-After, and the retry lands once
	// the slow work drains.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	retryDone := make(chan error, 1)
	go func() {
		var presp server.PartitionResponse
		retryDone <- postRetry(ctx, ots.URL+"/v1/partition", "alice", req3, &presp, 5)
	}()
	time.Sleep(100 * time.Millisecond) // let the first attempt get shed
	close(hold)
	for i := 0; i < 2; i++ {
		if err := <-bg; err != nil {
			return err
		}
	}
	if err := <-retryDone; err != nil {
		return err
	}

	var st server.StatsResponse
	if err := get(ots.URL+"/v1/stats", &st); err != nil {
		return err
	}
	a := st.Admission
	fmt.Printf("  admission: admitted=%d queued-total=%d shed-queue-full=%d tenants=%d\n",
		a.Admitted, a.QueuedTotal, a.ShedQueueFull, len(a.Tenants))
	fmt.Printf("  /readyz recovered: HTTP %d\n", readyz(ots.URL))
	return nil
}

// readyz returns the status code of a GET /readyz.
func readyz(base string) int {
	r, err := http.Get(base + "/readyz")
	if err != nil {
		return 0
	}
	r.Body.Close()
	return r.StatusCode
}

// postRetry posts like post but keeps trying through overload: 429
// (shed) and 503 (not ready) responses are retried up to maxAttempts
// times through the shared internal/backoff policy — jittered
// exponential backoff with the server's Retry-After as the floor for
// the wait when present. The context bounds the whole exchange
// including the sleeps, so a cancelled caller stops retrying
// immediately.
func postRetry(ctx context.Context, url, tenant string, in, out any, maxAttempts int) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	pol := backoff.Policy{Attempts: maxAttempts, Base: 50 * time.Millisecond, Max: 5 * time.Second}
	attempt := 0
	return backoff.Retry(ctx, pol, func(ctx context.Context) error {
		attempt++
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set(server.TenantHeader, tenant)
		}
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		if r.StatusCode == http.StatusOK {
			err := json.NewDecoder(r.Body).Decode(out)
			r.Body.Close()
			if err == nil {
				fmt.Printf("  retrying client: success on attempt %d\n", attempt)
			}
			return err
		}
		var e server.ErrorResponse
		json.NewDecoder(r.Body).Decode(&e) //nolint:errcheck
		r.Body.Close()
		wireErr := fmt.Errorf("%s: %s (%s) after %d attempts", url, r.Status, e.Error, attempt)
		if r.StatusCode != http.StatusTooManyRequests && r.StatusCode != http.StatusServiceUnavailable {
			return wireErr // terminal: not an overload signal
		}
		fmt.Printf("  retrying client: attempt %d got HTTP %d (%s), backing off\n",
			attempt, r.StatusCode, r.Header.Get(server.ShedHeader))
		if secs, aerr := strconv.Atoi(r.Header.Get("Retry-After")); aerr == nil && secs > 0 {
			return backoff.RetryableAfter(wireErr, time.Duration(secs)*time.Second)
		}
		return backoff.Retryable(wireErr)
	})
}

// toWire converts the first n trace snapshots to wire hierarchies.
func toWire(tr *trace.Trace, n int) []server.Hierarchy {
	if n > len(tr.Snapshots) {
		n = len(tr.Snapshots)
	}
	out := make([]server.Hierarchy, n)
	for i := 0; i < n; i++ {
		out[i] = server.FromHierarchy(tr.Snapshots[i].H)
	}
	return out
}

func get(url string, out any) error {
	r, err := http.Get(url)
	if err != nil {
		return err
	}
	defer r.Body.Close()
	return json.NewDecoder(r.Body).Decode(out)
}

func post(url string, in, out any, hdr *http.Header) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if hdr != nil {
		*hdr = r.Header
	}
	if r.StatusCode != http.StatusOK {
		var e server.ErrorResponse
		json.NewDecoder(r.Body).Decode(&e) //nolint:errcheck
		return fmt.Errorf("%s: %s (%s)", url, r.Status, e.Error)
	}
	return json.NewDecoder(r.Body).Decode(out)
}
