// The service example drives the samrd partitioning service end to
// end, in process: it generates a reduced-scale application trace,
// stands up the server on a loopback listener, and exercises the
// endpoints — listing traces, meta-partitioner selection, cached
// partitioning (showing the miss -> hit flip on a repeated regrid
// state), trace-driven simulation, and the operational counters of
// /v1/stats.
//
// # Deadlines and cancellation
//
// Every request is context-bounded: the server threads the request
// context (optionally capped by Config.RequestTimeout / samrd's
// -request-timeout flag) down through the worker pool and into every
// partitioner, which polls it at box-batch granularity. A request whose
// deadline expires returns 504 Gateway Timeout with a JSON error and
// never produces a partial result; a client that disconnects cancels
// its work mid-batch the same way (recorded as 499). Concurrent
// identical cache misses are coalesced by a singleflight group — the
// extra requests wait for the first compute and report
// X-Samr-Cache: shared. The final section of this example demonstrates
// the deadline wire error with a deliberately impossible timeout.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"samr/internal/apps"
	"samr/internal/server"
	"samr/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "service:", err)
		os.Exit(1)
	}
}

func run() error {
	// A real deployment runs `samrd -traces <dir>` and registers traces
	// as files; in process we inject the trace directly.
	tr, err := apps.QuickTrace(context.Background(), "TP2D")
	if err != nil {
		return err
	}
	s, err := server.New(server.Config{DefaultProcs: 8})
	if err != nil {
		return err
	}
	s.Registry().Register("tp2d-quick", tr)
	ts := httptest.NewServer(s)
	defer ts.Close()
	fmt.Printf("samrd serving on %s\n\n", ts.URL)

	// GET /v1/traces
	var traces server.TracesResponse
	if err := get(ts.URL+"/v1/traces", &traces); err != nil {
		return err
	}
	for _, ti := range traces.Traces {
		fmt.Printf("trace %-12s app=%s snapshots=%d levels<=%d\n", ti.Name, ti.App, ti.Snapshots, ti.MaxLevels)
	}

	// POST /v1/select over the first snapshots: the regrid sequence is
	// classified through one meta-partitioner, hysteresis included.
	sel := server.SelectRequest{}
	wire := toWire(tr, 6)
	sel.Hierarchies = wire
	var selResp server.SelectResponse
	if err := post(ts.URL+"/v1/select", sel, &selResp, nil); err != nil {
		return err
	}
	fmt.Println("\nmeta-partitioner selection over the first regrid states:")
	for i, c := range selResp.Selections {
		fmt.Printf("  step %2d: dimI=%.3f dimII=%.3f dimIII=%.3f -> %s\n", i, c.DimI, c.DimII, c.DimIII, c.Partitioner)
	}

	// POST /v1/partition twice with the same hierarchy: the second is a
	// content-addressed cache hit.
	preq := server.PartitionRequest{Hierarchy: &wire[len(wire)-1], Partitioner: "nature+fable", NProcs: 8}
	fmt.Println("\npartitioning the same regrid state twice:")
	for i := 0; i < 2; i++ {
		var presp server.PartitionResponse
		var hdr http.Header
		if err := post(ts.URL+"/v1/partition", preq, &presp, &hdr); err != nil {
			return err
		}
		r := presp.Results[0]
		fmt.Printf("  request %d: cache=%-4s sig=%.12s fragments=%d imbalance=%.1f%%\n",
			i+1, hdr.Get("X-Samr-Cache"), r.Signature, len(r.Fragments), r.Imbalance)
	}

	// POST /v1/simulate: static partitioner vs meta-partitioner.
	fmt.Println("\ntrace-driven evaluation over the registered trace:")
	for _, req := range []server.SimulateRequest{
		{Trace: "tp2d-quick", Partitioner: "domain-hilbert-u2", NProcs: 8},
		{Trace: "tp2d-quick", Meta: true, NProcs: 8},
	} {
		var sresp server.SimulateResponse
		if err := post(ts.URL+"/v1/simulate", req, &sresp, nil); err != nil {
			return err
		}
		fmt.Printf("  %-24s estTime=%.4fs meanImbalance=%.1f%%\n", sresp.Partitioner, sresp.TotalEstTime, sresp.MeanImbalance)
	}

	// GET /v1/stats: the operational counters behind the cache headers.
	var st server.StatsResponse
	if err := get(ts.URL+"/v1/stats", &st); err != nil {
		return err
	}
	fmt.Printf("\n/v1/stats: cache hits=%d misses=%d shared=%d (%d/%d entries), pool=%d, in-flight=%d\n",
		st.Cache.Hits, st.Cache.Misses, st.Cache.Shared, st.Cache.Entries, st.Cache.Capacity,
		st.PoolSize, st.InFlight)
	for _, ep := range []string{"partition", "select", "simulate"} {
		fmt.Printf("  endpoint %-10s requests=%d errors=%d\n", ep, st.Endpoints[ep].Requests, st.Endpoints[ep].Errors)
	}

	// Deadline demo: a server whose per-request deadline is impossibly
	// tight answers with the documented 504 wire error before running
	// any partitioner — the regrid-time bound the meta-partitioner
	// story depends on.
	tight, err := server.New(server.Config{DefaultProcs: 8, RequestTimeout: time.Nanosecond})
	if err != nil {
		return err
	}
	tts := httptest.NewServer(tight)
	defer tts.Close()
	preq2 := server.PartitionRequest{Hierarchy: &wire[0], Partitioner: "nature+fable", NProcs: 8}
	body, _ := json.Marshal(preq2)
	resp, err := http.Post(tts.URL+"/v1/partition", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var e server.ErrorResponse
	json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck
	fmt.Printf("\nexpired deadline: HTTP %d, error=%q\n", resp.StatusCode, e.Error)
	return nil
}

// toWire converts the first n trace snapshots to wire hierarchies.
func toWire(tr *trace.Trace, n int) []server.Hierarchy {
	if n > len(tr.Snapshots) {
		n = len(tr.Snapshots)
	}
	out := make([]server.Hierarchy, n)
	for i := 0; i < n; i++ {
		out[i] = server.FromHierarchy(tr.Snapshots[i].H)
	}
	return out
}

func get(url string, out any) error {
	r, err := http.Get(url)
	if err != nil {
		return err
	}
	defer r.Body.Close()
	return json.NewDecoder(r.Body).Decode(out)
}

func post(url string, in, out any, hdr *http.Header) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if hdr != nil {
		*hdr = r.Header
	}
	if r.StatusCode != http.StatusOK {
		var e server.ErrorResponse
		json.NewDecoder(r.Body).Decode(&e) //nolint:errcheck
		return fmt.Errorf("%s: %s (%s)", url, r.Status, e.Error)
	}
	return json.NewDecoder(r.Body).Decode(out)
}
