// Meta-partitioner example: fully dynamic PACs. For each of the four
// paper applications, the meta-partitioner classifies every snapshot
// and selects a partitioner per step; the execution simulator compares
// the resulting estimated execution time against every static choice —
// the motivation of the whole research line ("with a dynamic selection
// of P ... the total execution time could have been reduced",
// Figure 1).
//
//	go run ./examples/metapartitioner -quick
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"samr/internal/apps"
	"samr/internal/core"
	"samr/internal/experiments"
	"samr/internal/grid"
	"samr/internal/partition"
	"samr/internal/sim"
	"samr/internal/trace"
)

func main() {
	quick := flag.Bool("quick", false, "reduced-scale run")
	procs := flag.Int("procs", 16, "processors to simulate")
	flag.Parse()
	ctx := context.Background()

	for _, app := range apps.Names {
		var tr *trace.Trace
		var err error
		if *quick {
			tr, err = apps.QuickTrace(ctx, app)
		} else {
			tr, err = apps.PaperTrace(ctx, app)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tb, err := experiments.MetaVsStatic(ctx, tr, *procs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tb.Print(os.Stdout)

		// Show which partitioners the dynamic run actually used.
		m := sim.DefaultMachine()
		meta := core.NewMetaPartitioner(2e-4)
		usage := map[string]int{}
		if _, err := sim.SimulateTraceSelect(ctx, tr, func(step int, h *grid.Hierarchy) partition.Partitioner {
			p := meta.Select(h, float64(h.Workload())*m.CellTime/float64(*procs))
			usage[p.Name()]++
			return p
		}, *procs, m); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("# dynamic selections for %s: %v\n\n", app, usage)
	}
}
