// Quickstart: build a grid hierarchy by hand, move its refinement, and
// watch the paper's data-migration penalty (beta_m, dimension III of
// the classification space) respond.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"samr"
	"samr/internal/grid"
)

func main() {
	// A 64x64 base grid with factor-2 refinement.
	h := samr.NewHierarchy(samr.NewBox2(0, 0, 64, 64), 2)

	// Overlay a refined patch tracking some feature (level-1 index
	// space is twice as fine: the domain there is 128x128).
	h.Levels = append(h.Levels, grid.Level{
		Boxes: samr.BoxList{samr.NewBox2(20, 20, 60, 60)},
	})
	if err := h.Validate(); err != nil {
		panic(err)
	}
	fmt.Println("hierarchy:", h)
	fmt.Printf("beta_c (communication pressure) = %.3f\n", samr.CommunicationPenalty(h))
	fmt.Printf("beta_l (load concentration)     = %.3f\n", samr.LoadPenalty(h))

	// The feature drifts with increasing speed: each step the refined
	// patch shifts further than the last. beta_m measures, ab initio,
	// how much inherent data-migration pressure each transition
	// carries — it grows with the per-step displacement.
	fmt.Println("\nstep   step-shift  beta_m")
	prev := h.Clone()
	pos := 20
	for step := 1; step <= 6; step++ {
		next := prev.Clone()
		pos += step * 4 // accelerating feature
		next.Levels[1].Boxes[0] = samr.NewBox2(pos, 20, pos+40, 60)
		fmt.Printf("%4d  %10d  %.3f\n", step, step*4, samr.MigrationPenalty(prev, next))
		prev = next
	}

	// Partition the final hierarchy three ways and compare quality.
	// Partitioning is context-bounded: a served deployment would pass a
	// per-request deadline here and fall back to a cheap partitioner on
	// expiry; Background suffices for a demo that should run to the end.
	fmt.Println("\npartitioner                              imbalance%  rel_comm")
	ctx := context.Background()
	m := samr.DefaultMachine()
	for _, p := range []samr.Partitioner{
		samr.NewDomainSFC(), samr.NewPatchBased(), samr.NewNatureFable(),
	} {
		a, err := p.Partition(ctx, prev, 8)
		if err != nil {
			panic(err)
		}
		sm, err := samr.Evaluate(ctx, prev, a, m)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-40s %9.1f  %.4f\n", p.Name(), sm.Imbalance, sm.RelativeComm)
	}
}
