// Oil-reservoir example: the paper's BL2D validation pipeline end to
// end. A Buckley–Leverett two-phase-flow simulation generates a
// partition-independent trace; the model predicts the per-step
// communication and migration pressure ab initio (beta_c, beta_m); the
// execution simulator measures the actual relative communication and
// data migration under the statically configured hybrid partitioner;
// and the two are compared — the content of the paper's Figures 1
// and 5.
//
//	go run ./examples/oilreservoir           (paper scale, ~10 s)
//	go run ./examples/oilreservoir -quick    (reduced scale)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"samr/internal/apps"
	"samr/internal/experiments"
	"samr/internal/trace"
)

func main() {
	quick := flag.Bool("quick", false, "reduced-scale run")
	procs := flag.Int("procs", 16, "processors to simulate")
	flag.Parse()
	ctx := context.Background()

	var tr *trace.Trace
	var err error
	if *quick {
		tr, err = apps.QuickTrace(ctx, "BL2D")
	} else {
		tr, err = apps.PaperTrace(ctx, "BL2D")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("Figure 1: dynamic behaviour under one static partitioner")
	f1, err := experiments.Fig1(ctx, tr, *procs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f1.Print(os.Stdout)

	fmt.Println()
	fmt.Println("Figure 5: model (ab initio) vs simulator (measured)")
	v, err := experiments.FigModelVsActual(ctx, tr, *procs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	v.Comm.Print(os.Stdout)
	v.Mig.Print(os.Stdout)

	fmt.Println()
	fmt.Printf("summary: beta_m/migration corr %.3f (cautious on %.0f%% of steps), "+
		"beta_c/comm corr %.3f (aggressive on %.0f%% of steps)\n",
		v.MigCorr, 100*v.MigCautious, v.CommCorr, 100*v.CommAggressor)
}
