package backoff

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

var bg = context.Background()

// fast is a policy whose waits keep tests well under a second.
var fast = Policy{Attempts: 4, Base: time.Millisecond, Max: 4 * time.Millisecond}

func TestSucceedsFirstTry(t *testing.T) {
	calls := 0
	if err := Retry(bg, fast, func(context.Context) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestRetriesOnlyRetryable(t *testing.T) {
	terminal := errors.New("terminal")
	calls := 0
	err := Retry(bg, fast, func(context.Context) error { calls++; return terminal })
	if !errors.Is(err, terminal) || calls != 1 {
		t.Fatalf("terminal error: err=%v calls=%d, want immediate return", err, calls)
	}

	calls = 0
	err = Retry(bg, fast, func(context.Context) error {
		calls++
		if calls < 3 {
			return Retryable(fmt.Errorf("flaky %d", calls))
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("flaky op: err=%v calls=%d, want success on 3rd", err, calls)
	}
}

func TestAttemptsExhaustedReturnsLastError(t *testing.T) {
	calls := 0
	err := Retry(bg, fast, func(context.Context) error {
		calls++
		return Retryable(fmt.Errorf("attempt %d", calls))
	})
	if calls != fast.Attempts {
		t.Fatalf("calls = %d, want %d", calls, fast.Attempts)
	}
	if err == nil || !errors.Is(err, ErrRetryable) || err.Error() != "attempt 4" {
		t.Fatalf("err = %v, want last attempt's error", err)
	}
}

func TestRetryAfterFloorsWait(t *testing.T) {
	const floor = 60 * time.Millisecond
	calls := 0
	start := time.Now()
	err := Retry(bg, Policy{Attempts: 2, Base: time.Millisecond}, func(context.Context) error {
		calls++
		if calls == 1 {
			return RetryableAfter(errors.New("busy"), floor)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < floor {
		t.Fatalf("waited %v, want >= the server's %v hint", got, floor)
	}
}

func TestContextCancelsSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(bg)
	calls := 0
	done := make(chan error, 1)
	go func() {
		done <- Retry(ctx, Policy{Attempts: 3, Base: time.Hour}, func(context.Context) error {
			calls++
			return Retryable(errors.New("busy"))
		})
	}()
	time.Sleep(10 * time.Millisecond) // let the op fail and the sleep start
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled Retry kept sleeping")
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestDeadContextBeforeFirstAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(bg)
	cancel()
	// The op still runs once (it sees the dead ctx itself); the retry
	// sleep is what ctx interrupts.
	err := Retry(ctx, fast, func(c context.Context) error { return Retryable(c.Err()) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
}
