// Package backoff is the shared retry policy of the repository's HTTP
// clients: the examples' well-behaved service client and the fleet
// cache tier's peer client. One implementation keeps every retry loop
// honest about the same three things — jittered exponential growth so
// synchronized clients spread out, the server's own Retry-After hint
// as a floor on the wait (a server that names a recovery time knows
// better than the client's schedule), and context-aware sleeping so a
// cancelled caller stops retrying immediately instead of finishing its
// backoff.
package backoff

import (
	"context"
	"errors"
	"math/rand/v2"
	"time"
)

// Policy shapes a retry loop; zero values select the defaults.
type Policy struct {
	// Attempts is the maximum number of tries including the first
	// (default 5).
	Attempts int
	// Base is the pre-jitter wait before the second attempt; each
	// further wait doubles it (default 50ms).
	Base time.Duration
	// Max caps the pre-jitter wait (default 5s). Retry-After hints may
	// exceed it: an explicit server instruction outranks the cap.
	Max time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.Attempts <= 0 {
		p.Attempts = 5
	}
	if p.Base <= 0 {
		p.Base = 50 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 5 * time.Second
	}
	return p
}

// ErrRetryable marks an attempt error as retryable: Retry keeps going
// when (and only when) the attempt's error wraps it, so transport
// failures and retryable status codes share one signal.
var ErrRetryable = errors.New("retryable")

// Hint attaches a server-provided wait floor (Retry-After) to a
// retryable error. It unwraps to both the cause and ErrRetryable, so
// errors.Is sees the underlying failure and Retry sees the signal,
// while the message stays the cause's own.
type Hint struct {
	Err        error
	RetryAfter time.Duration
}

func (h *Hint) Error() string   { return h.Err.Error() }
func (h *Hint) Unwrap() []error { return []error{h.Err, ErrRetryable} }

// Retryable wraps err as retryable with no wait hint.
func Retryable(err error) error { return &Hint{Err: err} }

// RetryableAfter wraps err as retryable with the server's Retry-After
// floor on the next wait.
func RetryableAfter(err error, after time.Duration) error {
	return &Hint{Err: err, RetryAfter: after}
}

// Retry runs op until it succeeds, fails terminally, exhausts
// p.Attempts, or ctx ends. An attempt error wrapping ErrRetryable
// (build one with Retryable / RetryableAfter) triggers a wait and the
// next attempt; any other error returns immediately. Each wait is the
// exponential step plus full jitter (a uniform extra step), floored by
// the attempt's Retry-After hint when one is present, and interrupted
// by ctx: a cancelled caller gets ctx's error without sleeping out the
// backoff. When attempts run out, the last attempt's error is
// returned.
func Retry(ctx context.Context, p Policy, op func(ctx context.Context) error) error {
	p = p.withDefaults()
	wait := p.Base
	for attempt := 1; ; attempt++ {
		err := op(ctx)
		if err == nil || !errors.Is(err, ErrRetryable) || attempt >= p.Attempts {
			return err
		}
		step := min(wait, p.Max)
		// Full jitter over the exponential step, floored by the
		// server's own hint.
		d := step + rand.N(step)
		var hint *Hint
		if errors.As(err, &hint) && hint.RetryAfter > d {
			d = hint.RetryAfter
		}
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
		wait *= 2
	}
}
