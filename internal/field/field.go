// Package field provides per-patch cell-centred solution storage for the
// AMR solver substrate: patch arrays with ghost halos, same-level ghost
// exchange, coarse-to-fine prolongation and fine-to-coarse restriction,
// and physical boundary fills. Everything is 2-D, matching the paper's
// evaluation suite.
package field

import (
	"fmt"
	"math"

	"samr/internal/geom"
)

// Patch is solution data on one grid patch: NComp components over the
// patch interior plus a ghost halo of width Ghost on every side.
type Patch struct {
	// Box is the interior region (no ghosts), in the owning level's
	// index space.
	Box geom.Box
	// Ghost is the halo width in cells.
	Ghost int
	// NComp is the number of solution components.
	NComp int

	grown  geom.Box // Box.Grow(Ghost), cached
	nx, ny int      // grown extents
	data   []float64
}

// NewPatch allocates zeroed storage for box with the given halo width
// and component count.
func NewPatch(box geom.Box, ghost, ncomp int) *Patch {
	g := box.Grow(ghost)
	p := &Patch{
		Box:   box,
		Ghost: ghost,
		NComp: ncomp,
		grown: g,
		nx:    g.Size(0),
		ny:    g.Size(1),
	}
	p.data = make([]float64, p.nx*p.ny*ncomp)
	return p
}

// GrownBox returns the interior plus halo region.
func (p *Patch) GrownBox() geom.Box { return p.grown }

// index returns the flat offset of (c, x, y); x and y are absolute
// level-space coordinates that must lie inside the grown box.
func (p *Patch) index(c, x, y int) int {
	return (c*p.ny+(y-p.grown.Lo[1]))*p.nx + (x - p.grown.Lo[0])
}

// At returns component c at cell (x, y).
func (p *Patch) At(c, x, y int) float64 { return p.data[p.index(c, x, y)] }

// Set stores component c at cell (x, y).
func (p *Patch) Set(c, x, y int, v float64) { p.data[p.index(c, x, y)] = v }

// Add accumulates into component c at cell (x, y).
func (p *Patch) Add(c, x, y int, v float64) { p.data[p.index(c, x, y)] += v }

// Fill sets every cell (including ghosts) of component c to v.
func (p *Patch) Fill(c int, v float64) {
	base := c * p.ny * p.nx
	for i := 0; i < p.nx*p.ny; i++ {
		p.data[base+i] = v
	}
}

// Clone returns a deep copy of the patch.
func (p *Patch) Clone() *Patch {
	q := *p
	q.data = make([]float64, len(p.data))
	copy(q.data, p.data)
	return &q
}

// CopyRegion copies all components over the cells of region (which must
// lie inside both patches' grown boxes) from src to p. Coordinates are
// shared level space.
func (p *Patch) CopyRegion(src *Patch, region geom.Box) {
	region = region.Intersect(p.grown).Intersect(src.grown)
	if region.Empty() {
		return
	}
	for c := 0; c < p.NComp; c++ {
		for y := region.Lo[1]; y < region.Hi[1]; y++ {
			di := p.index(c, region.Lo[0], y)
			si := src.index(c, region.Lo[0], y)
			copy(p.data[di:di+region.Size(0)], src.data[si:si+region.Size(0)])
		}
	}
}

// MaxAbs returns the maximum absolute value of component c over the
// interior.
func (p *Patch) MaxAbs(c int) float64 {
	var m float64
	p.Box.Cells(func(q geom.IntVect) {
		v := p.At(c, q[0], q[1])
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	})
	return m
}

// SumInterior returns the sum of component c over the interior; used by
// conservation tests.
func (p *Patch) SumInterior(c int) float64 {
	var s float64
	p.Box.Cells(func(q geom.IntVect) { s += p.At(c, q[0], q[1]) })
	return s
}

func (p *Patch) String() string {
	return fmt.Sprintf("Patch{%v ghost=%d ncomp=%d}", p.Box, p.Ghost, p.NComp)
}

// BC selects the physical boundary treatment at the domain edge.
type BC int

const (
	// BCPeriodic wraps the domain torus-fashion.
	BCPeriodic BC = iota
	// BCOutflow copies the nearest interior value outward
	// (zero-gradient / transmissive).
	BCOutflow
	// BCReflect mirrors interior values across the wall.
	BCReflect
)

// ExchangeGhosts fills ghost cells of every patch in patches from the
// interiors of sibling patches on the same level. Cells not covered by a
// sibling are left untouched (they are later filled by prolongation or
// physical BC). Sibling lookup goes through a BoxIndex over the patch
// interiors, so the exchange is near-linear in the patch count instead
// of all-pairs.
func ExchangeGhosts(patches []*Patch) {
	if len(patches) < 2 {
		return
	}
	boxes := make(geom.BoxList, len(patches))
	for i, p := range patches {
		boxes[i] = p.Box
	}
	ix := geom.NewBoxIndex(boxes)
	var buf []int
	for di, dst := range patches {
		halo := dst.GrownBox()
		buf = ix.AppendQuery(buf[:0], halo)
		for _, si := range buf {
			if si == di {
				continue
			}
			src := patches[si]
			ov := halo.Intersect(src.Box)
			if !ov.Empty() {
				dst.CopyRegion(src, ov)
			}
		}
	}
}

// FillPhysical fills the portion of dst's halo that lies outside domain
// according to bc. For periodic boundaries, patches must collectively
// cover the domain for the wrap copy to find a source.
func FillPhysical(dst *Patch, patches []*Patch, domain geom.Box, bc BC) {
	halo := dst.GrownBox()
	outside := geom.BoxList{halo}.SubtractBox(domain)
	if len(outside) == 0 {
		return
	}
	switch bc {
	case BCPeriodic:
		nx, ny := domain.Size(0), domain.Size(1)
		for _, ob := range outside {
			ob.Cells(func(q geom.IntVect) {
				sx := mod(q[0]-domain.Lo[0], nx) + domain.Lo[0]
				sy := mod(q[1]-domain.Lo[1], ny) + domain.Lo[1]
				copyCell(dst, patches, q[0], q[1], sx, sy)
			})
		}
	case BCOutflow:
		for _, ob := range outside {
			ob.Cells(func(q geom.IntVect) {
				sx := clamp(q[0], domain.Lo[0], domain.Hi[0]-1)
				sy := clamp(q[1], domain.Lo[1], domain.Hi[1]-1)
				copyCell(dst, patches, q[0], q[1], sx, sy)
			})
		}
	case BCReflect:
		for _, ob := range outside {
			ob.Cells(func(q geom.IntVect) {
				sx := reflect(q[0], domain.Lo[0], domain.Hi[0])
				sy := reflect(q[1], domain.Lo[1], domain.Hi[1])
				copyCell(dst, patches, q[0], q[1], sx, sy)
			})
		}
	}
}

// copyCell copies all components of source cell (sx, sy) — found in dst
// itself or any sibling patch — into dst cell (x, y).
func copyCell(dst *Patch, patches []*Patch, x, y, sx, sy int) {
	src := dst
	p := geom.IV2(sx, sy)
	if !dst.Box.Contains(p) {
		for _, q := range patches {
			if q.Box.Contains(p) {
				src = q
				break
			}
		}
	}
	if !src.GrownBox().Contains(p) {
		return
	}
	for c := 0; c < dst.NComp; c++ {
		dst.Set(c, x, y, src.At(c, sx, sy))
	}
}

func mod(a, n int) int {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// reflect mirrors index v into [lo, hi) across the nearest wall.
func reflect(v, lo, hi int) int {
	if v < lo {
		return clamp(2*lo-1-v, lo, hi-1)
	}
	if v >= hi {
		return clamp(2*hi-1-v, lo, hi-1)
	}
	return v
}

// Prolong fills the cells of region (fine index space) in fine by
// piecewise-constant injection from the coarse patch, which must cover
// region coarsened by ratio (including via its ghost halo).
func Prolong(fine *Patch, coarse *Patch, region geom.Box, ratio int) {
	region = region.Intersect(fine.GrownBox())
	if region.Empty() {
		return
	}
	for c := 0; c < fine.NComp; c++ {
		region.Cells(func(q geom.IntVect) {
			cx, cy := floorDiv(q[0], ratio), floorDiv(q[1], ratio)
			if coarse.GrownBox().Contains(geom.IV2(cx, cy)) {
				fine.Set(c, q[0], q[1], coarse.At(c, cx, cy))
			}
		})
	}
}

// ProlongLinear fills the cells of region (fine index space) in fine by
// bilinear interpolation from coarse cell centres. Smoother than
// piecewise-constant Prolong: it avoids the staircase ghosts that
// second-order stencils amplify into spurious refinement. Cells whose
// interpolation stencil leaves the coarse patch's grown box fall back to
// the nearest covered neighbour; cells with no coverage at all are left
// untouched.
func ProlongLinear(fine *Patch, coarse *Patch, region geom.Box, ratio int) {
	region = region.Intersect(fine.GrownBox())
	if region.Empty() {
		return
	}
	cg := coarse.GrownBox()
	r := float64(ratio)
	region.Cells(func(q geom.IntVect) {
		// Coarse-space coordinates of the fine cell centre.
		xc := (float64(q[0]) + 0.5) / r
		yc := (float64(q[1]) + 0.5) / r
		// Surrounding coarse cell centres: i0+0.5 <= xc < i0+1.5.
		i0 := int(math.Floor(xc - 0.5))
		j0 := int(math.Floor(yc - 0.5))
		tx := xc - (float64(i0) + 0.5)
		ty := yc - (float64(j0) + 0.5)
		i1, j1 := i0+1, j0+1
		// Clamp the stencil into the coarse grown box.
		if i0 < cg.Lo[0] {
			i0 = cg.Lo[0]
		}
		if j0 < cg.Lo[1] {
			j0 = cg.Lo[1]
		}
		if i1 > cg.Hi[0]-1 {
			i1 = cg.Hi[0] - 1
		}
		if j1 > cg.Hi[1]-1 {
			j1 = cg.Hi[1] - 1
		}
		if i0 > i1 || j0 > j1 || i0 < cg.Lo[0] || j0 < cg.Lo[1] {
			return // no coverage
		}
		for c := 0; c < fine.NComp; c++ {
			v00 := coarse.At(c, i0, j0)
			v10 := coarse.At(c, i1, j0)
			v01 := coarse.At(c, i0, j1)
			v11 := coarse.At(c, i1, j1)
			v := (1-tx)*(1-ty)*v00 + tx*(1-ty)*v10 + (1-tx)*ty*v01 + tx*ty*v11
			fine.Set(c, q[0], q[1], v)
		}
	})
}

// Restrict conservatively averages the fine patch's interior down onto
// the overlapping cells of the coarse patch.
func Restrict(coarse *Patch, fine *Patch, ratio int) {
	fineOnCoarse := fine.Box.Coarsen(ratio).Intersect(coarse.Box)
	if fineOnCoarse.Empty() {
		return
	}
	inv := 1.0 / float64(ratio*ratio)
	for c := 0; c < coarse.NComp; c++ {
		fineOnCoarse.Cells(func(q geom.IntVect) {
			var sum float64
			n := 0
			for dy := 0; dy < ratio; dy++ {
				for dx := 0; dx < ratio; dx++ {
					fx, fy := q[0]*ratio+dx, q[1]*ratio+dy
					if fine.Box.Contains(geom.IV2(fx, fy)) {
						sum += fine.At(c, fx, fy)
						n++
					}
				}
			}
			if n == ratio*ratio {
				coarse.Set(c, q[0], q[1], sum*inv)
			}
		})
	}
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
