// Package field provides per-patch cell-centred solution storage for the
// AMR solver substrate: patch arrays with ghost halos, same-level ghost
// exchange, coarse-to-fine prolongation and fine-to-coarse restriction,
// and physical boundary fills. Everything is 2-D, matching the paper's
// evaluation suite.
//
// # Row-slice contract
//
// Patch data is a single row-major slab (component-major, then y, then
// x). Row and RowSpan expose storage rows directly; kernels and the
// transfer operators stream them with tight index loops instead of
// paying per-cell At/Set offset arithmetic. The slab is owned
// exclusively by the patch: only the owning patch's methods and callers
// holding a row slice may touch it, and a row slice must not outlive
// the patch (Release recycles the slab into a process-wide free list).
//
// During a parallel driver phase each patch is written by exactly one
// goroutine — the one the driver assigned the patch to — and sibling
// patches are only read (ghost exchange reads sibling interiors,
// prolongation reads the parent level). Halo cells are owned by the
// patch they pad: a step writes the interior only, while the fill
// phases (prolongation, exchange, physical BC) write the halo of the
// patch being filled and nothing else. That write-ownership split is
// what makes the parallel phases bit-identical to a sequential sweep at
// any worker count.
package field

import (
	"fmt"
	"math"

	"samr/internal/geom"
)

// Patch is solution data on one grid patch: NComp components over the
// patch interior plus a ghost halo of width Ghost on every side.
type Patch struct {
	// Box is the interior region (no ghosts), in the owning level's
	// index space.
	Box geom.Box
	// Ghost is the halo width in cells.
	Ghost int
	// NComp is the number of solution components.
	NComp int

	grown  geom.Box // Box.Grow(Ghost), cached
	nx, ny int      // grown extents
	data   []float64
}

// NewPatch allocates zeroed storage for box with the given halo width
// and component count. The slab comes from a process-wide size-classed
// free list; hand it back with Release when the patch is retired.
func NewPatch(box geom.Box, ghost, ncomp int) *Patch {
	g := box.Grow(ghost)
	p := &Patch{
		Box:   box,
		Ghost: ghost,
		NComp: ncomp,
		grown: g,
		nx:    g.Size(0),
		ny:    g.Size(1),
	}
	p.data = acquireSlabZero(p.nx * p.ny * ncomp)
	return p
}

// Release returns the patch's data slab to the free list. The patch —
// and any row slice taken from it — must not be used afterwards.
func (p *Patch) Release() {
	releaseSlab(p.data)
	p.data = nil
}

// GrownBox returns the interior plus halo region.
func (p *Patch) GrownBox() geom.Box { return p.grown }

// index returns the flat offset of (c, x, y); x and y are absolute
// level-space coordinates that must lie inside the grown box.
func (p *Patch) index(c, x, y int) int {
	return (c*p.ny+(y-p.grown.Lo[1]))*p.nx + (x - p.grown.Lo[0])
}

// At returns component c at cell (x, y).
func (p *Patch) At(c, x, y int) float64 { return p.data[p.index(c, x, y)] }

// Set stores component c at cell (x, y).
func (p *Patch) Set(c, x, y int, v float64) { p.data[p.index(c, x, y)] = v }

// Add accumulates into component c at cell (x, y).
func (p *Patch) Add(c, x, y int, v float64) { p.data[p.index(c, x, y)] += v }

// CompStride returns the flat-offset distance between the same cell of
// consecutive components.
func (p *Patch) CompStride() int { return p.nx * p.ny }

// Row returns the storage row of component c at absolute y spanning the
// grown box: row[i] is cell x = GrownBox().Lo[0]+i. The slice aliases
// the patch's data; writes through it are writes to the patch.
func (p *Patch) Row(c, y int) []float64 {
	off := (c*p.ny + (y - p.grown.Lo[1])) * p.nx
	return p.data[off : off+p.nx : off+p.nx]
}

// RowSpan returns the cells [x0, x1) of component c's row at absolute
// y: row[i] is cell x0+i. Both bounds must lie inside the grown box.
func (p *Patch) RowSpan(c, y, x0, x1 int) []float64 {
	off := (c*p.ny+(y-p.grown.Lo[1]))*p.nx + (x0 - p.grown.Lo[0])
	return p.data[off : off+(x1-x0) : off+(x1-x0)]
}

// InteriorRows calls f for every interior row of component c in
// ascending y; row[i] is cell x = Box.Lo[0]+i.
func (p *Patch) InteriorRows(c int, f func(y int, row []float64)) {
	for y := p.Box.Lo[1]; y < p.Box.Hi[1]; y++ {
		f(y, p.RowSpan(c, y, p.Box.Lo[0], p.Box.Hi[0]))
	}
}

// GrownRows calls f for every row of component c including the halo, in
// ascending y; row[i] is cell x = GrownBox().Lo[0]+i.
func (p *Patch) GrownRows(c int, f func(y int, row []float64)) {
	for y := p.grown.Lo[1]; y < p.grown.Hi[1]; y++ {
		f(y, p.Row(c, y))
	}
}

// Fill sets every cell (including ghosts) of component c to v.
func (p *Patch) Fill(c int, v float64) {
	base := c * p.ny * p.nx
	row := p.data[base : base+p.ny*p.nx]
	for i := range row {
		row[i] = v
	}
}

// Clone returns a deep copy of the patch. The copy's slab comes from
// the free list; Release it like any other patch.
func (p *Patch) Clone() *Patch {
	q := *p
	q.data = acquireSlab(len(p.data))
	copy(q.data, p.data)
	return &q
}

// CopyRegion copies all components over the cells of region (which must
// lie inside both patches' grown boxes) from src to p. Coordinates are
// shared level space.
func (p *Patch) CopyRegion(src *Patch, region geom.Box) {
	region = region.Intersect(p.grown).Intersect(src.grown)
	if region.Empty() {
		return
	}
	w := region.Size(0)
	for c := 0; c < p.NComp; c++ {
		di := p.index(c, region.Lo[0], region.Lo[1])
		si := src.index(c, region.Lo[0], region.Lo[1])
		for y := region.Lo[1]; y < region.Hi[1]; y++ {
			copy(p.data[di:di+w], src.data[si:si+w])
			di += p.nx
			si += src.nx
		}
	}
}

// MaxAbs returns the maximum absolute value of component c over the
// interior.
func (p *Patch) MaxAbs(c int) float64 {
	var m float64
	p.InteriorRows(c, func(_ int, row []float64) {
		for _, v := range row {
			if v < 0 {
				v = -v
			}
			if v > m {
				m = v
			}
		}
	})
	return m
}

// SumInterior returns the sum of component c over the interior; used by
// conservation tests.
func (p *Patch) SumInterior(c int) float64 {
	var s float64
	p.InteriorRows(c, func(_ int, row []float64) {
		for _, v := range row {
			s += v
		}
	})
	return s
}

func (p *Patch) String() string {
	return fmt.Sprintf("Patch{%v ghost=%d ncomp=%d}", p.Box, p.Ghost, p.NComp)
}

// BC selects the physical boundary treatment at the domain edge.
type BC int

const (
	// BCPeriodic wraps the domain torus-fashion.
	BCPeriodic BC = iota
	// BCOutflow copies the nearest interior value outward
	// (zero-gradient / transmissive).
	BCOutflow
	// BCReflect mirrors interior values across the wall.
	BCReflect
)

// ExchangeGhosts fills ghost cells of every patch in patches from the
// interiors of sibling patches on the same level. Cells not covered by a
// sibling are left untouched (they are later filled by prolongation or
// physical BC). Sibling lookup goes through a BoxIndex over the patch
// interiors, so the exchange is near-linear in the patch count instead
// of all-pairs.
func ExchangeGhosts(patches []*Patch) {
	if len(patches) < 2 {
		return
	}
	ix := interiorIndex(patches)
	var buf []int
	for di := range patches {
		buf = exchangeInto(patches, ix, di, buf)
	}
}

// ExchangeGhostsWith is ExchangeGhosts decomposed for a parallel
// driver: it fills only the ghosts of patches[di] from its siblings,
// using a BoxIndex previously built by InteriorIndex over the same
// patch list. Each destination patch writes only its own halo and reads
// only sibling interiors, so concurrent calls on distinct di are
// race-free and the result is bit-identical to ExchangeGhosts.
func ExchangeGhostsWith(patches []*Patch, ix *geom.BoxIndex, di int, buf []int) []int {
	return exchangeInto(patches, ix, di, buf)
}

// InteriorIndex builds the sibling-lookup BoxIndex over the patch
// interiors that ExchangeGhostsWith consumes.
func InteriorIndex(patches []*Patch) *geom.BoxIndex { return interiorIndex(patches) }

func interiorIndex(patches []*Patch) *geom.BoxIndex {
	boxes := make(geom.BoxList, len(patches))
	for i, p := range patches {
		boxes[i] = p.Box
	}
	return geom.NewBoxIndex(boxes)
}

func exchangeInto(patches []*Patch, ix *geom.BoxIndex, di int, buf []int) []int {
	dst := patches[di]
	halo := dst.GrownBox()
	buf = ix.AppendQuery(buf[:0], halo)
	for _, si := range buf {
		if si == di {
			continue
		}
		src := patches[si]
		ov := halo.Intersect(src.Box)
		if !ov.Empty() {
			dst.CopyRegion(src, ov)
		}
	}
	return buf
}

// FillPhysical fills the portion of dst's halo that lies outside domain
// according to bc. For periodic boundaries, patches must collectively
// cover the domain for the wrap copy to find a source.
func FillPhysical(dst *Patch, patches []*Patch, domain geom.Box, bc BC) {
	halo := dst.GrownBox()
	outside := geom.BoxList{halo}.SubtractBox(domain)
	if len(outside) == 0 {
		return
	}
	nx, ny := domain.Size(0), domain.Size(1)
	for _, ob := range outside {
		for y := ob.Lo[1]; y < ob.Hi[1]; y++ {
			// The source row depends only on y; hoist it out of the
			// cell loop.
			var sy int
			switch bc {
			case BCPeriodic:
				sy = mod(y-domain.Lo[1], ny) + domain.Lo[1]
			case BCOutflow:
				sy = clamp(y, domain.Lo[1], domain.Hi[1]-1)
			case BCReflect:
				sy = reflect(y, domain.Lo[1], domain.Hi[1])
			}
			for x := ob.Lo[0]; x < ob.Hi[0]; x++ {
				var sx int
				switch bc {
				case BCPeriodic:
					sx = mod(x-domain.Lo[0], nx) + domain.Lo[0]
				case BCOutflow:
					sx = clamp(x, domain.Lo[0], domain.Hi[0]-1)
				case BCReflect:
					sx = reflect(x, domain.Lo[0], domain.Hi[0])
				}
				copyCell(dst, patches, x, y, sx, sy)
			}
		}
	}
}

// copyCell copies all components of source cell (sx, sy) — found in dst
// itself or any sibling patch — into dst cell (x, y).
func copyCell(dst *Patch, patches []*Patch, x, y, sx, sy int) {
	src := dst
	p := geom.IV2(sx, sy)
	if !dst.Box.Contains(p) {
		for _, q := range patches {
			if q.Box.Contains(p) {
				src = q
				break
			}
		}
	}
	if !src.GrownBox().Contains(p) {
		return
	}
	di, ds := dst.index(0, x, y), dst.CompStride()
	si, ss := src.index(0, sx, sy), src.CompStride()
	for c := 0; c < dst.NComp; c++ {
		dst.data[di] = src.data[si]
		di += ds
		si += ss
	}
}

func mod(a, n int) int {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// reflect mirrors index v into [lo, hi) across the nearest wall.
func reflect(v, lo, hi int) int {
	if v < lo {
		return clamp(2*lo-1-v, lo, hi-1)
	}
	if v >= hi {
		return clamp(2*hi-1-v, lo, hi-1)
	}
	return v
}

// Prolong fills the cells of region (fine index space) in fine by
// piecewise-constant injection from the coarse patch, which must cover
// region coarsened by ratio (including via its ghost halo).
func Prolong(fine *Patch, coarse *Patch, region geom.Box, ratio int) {
	region = region.Intersect(fine.GrownBox())
	if region.Empty() {
		return
	}
	cg := coarse.GrownBox()
	for c := 0; c < fine.NComp; c++ {
		for y := region.Lo[1]; y < region.Hi[1]; y++ {
			cy := floorDiv(y, ratio)
			if cy < cg.Lo[1] || cy >= cg.Hi[1] {
				continue
			}
			frow := fine.RowSpan(c, y, region.Lo[0], region.Hi[0])
			crow := coarse.Row(c, cy)
			for i := range frow {
				cx := floorDiv(region.Lo[0]+i, ratio)
				if cx >= cg.Lo[0] && cx < cg.Hi[0] {
					frow[i] = crow[cx-cg.Lo[0]]
				}
			}
		}
	}
}

// ProlongLinear fills the cells of region (fine index space) in fine by
// bilinear interpolation from coarse cell centres. Smoother than
// piecewise-constant Prolong: it avoids the staircase ghosts that
// second-order stencils amplify into spurious refinement. Cells whose
// interpolation stencil leaves the coarse patch's grown box fall back to
// the nearest covered neighbour; cells with no coverage at all are left
// untouched.
func ProlongLinear(fine *Patch, coarse *Patch, region geom.Box, ratio int) {
	region = region.Intersect(fine.GrownBox())
	if region.Empty() {
		return
	}
	cg := coarse.GrownBox()
	r := float64(ratio)

	// The x-direction stencil (columns i0/i1, weight tx, coverage) is
	// independent of y; precompute it once for the whole region. Halo
	// frames are thin, so the stencil usually fits a stack buffer.
	w := region.Size(0)
	var (
		bi0, bi1 [64]int32
		btx      [64]float64
		bok      [64]bool
	)
	xi0, xi1, xtx, xok := bi0[:], bi1[:], btx[:], bok[:]
	if w > len(bi0) {
		xi0 = make([]int32, w)
		xi1 = make([]int32, w)
		xtx = make([]float64, w)
		xok = make([]bool, w)
	} else {
		xi0, xi1, xtx, xok = xi0[:w], xi1[:w], xtx[:w], xok[:w]
		clear(xok)
	}
	for i := 0; i < w; i++ {
		x := region.Lo[0] + i
		// Coarse-space coordinate of the fine cell centre and the
		// surrounding coarse cell centres: i0+0.5 <= xc < i0+1.5.
		xc := (float64(x) + 0.5) / r
		i0 := int(math.Floor(xc - 0.5))
		xtx[i] = xc - (float64(i0) + 0.5)
		i1 := i0 + 1
		// Clamp the stencil into the coarse grown box.
		if i0 < cg.Lo[0] {
			i0 = cg.Lo[0]
		}
		if i1 > cg.Hi[0]-1 {
			i1 = cg.Hi[0] - 1
		}
		if i0 > i1 || i0 < cg.Lo[0] {
			continue // no coverage in x
		}
		xi0[i], xi1[i] = int32(i0-cg.Lo[0]), int32(i1-cg.Lo[0])
		xok[i] = true
	}

	for y := region.Lo[1]; y < region.Hi[1]; y++ {
		yc := (float64(y) + 0.5) / r
		j0 := int(math.Floor(yc - 0.5))
		ty := yc - (float64(j0) + 0.5)
		j1 := j0 + 1
		if j0 < cg.Lo[1] {
			j0 = cg.Lo[1]
		}
		if j1 > cg.Hi[1]-1 {
			j1 = cg.Hi[1] - 1
		}
		if j0 > j1 || j0 < cg.Lo[1] {
			continue // no coverage in y
		}
		for c := 0; c < fine.NComp; c++ {
			crow0 := coarse.Row(c, j0)
			crow1 := coarse.Row(c, j1)
			frow := fine.RowSpan(c, y, region.Lo[0], region.Hi[0])
			for i := 0; i < w; i++ {
				if !xok[i] {
					continue
				}
				i0, i1 := xi0[i], xi1[i]
				tx := xtx[i]
				v00 := crow0[i0]
				v10 := crow0[i1]
				v01 := crow1[i0]
				v11 := crow1[i1]
				frow[i] = (1-tx)*(1-ty)*v00 + tx*(1-ty)*v10 + (1-tx)*ty*v01 + tx*ty*v11
			}
		}
	}
}

// Restrict conservatively averages the fine patch's interior down onto
// the overlapping cells of the coarse patch.
func Restrict(coarse *Patch, fine *Patch, ratio int) {
	fineOnCoarse := fine.Box.Coarsen(ratio).Intersect(coarse.Box)
	if fineOnCoarse.Empty() {
		return
	}
	inv := 1.0 / float64(ratio*ratio)
	full := ratio * ratio
	var frowsBuf [8][]float64
	frows := frowsBuf[:]
	if ratio > len(frowsBuf) {
		frows = make([][]float64, ratio)
	} else {
		frows = frows[:ratio]
	}
	for c := 0; c < coarse.NComp; c++ {
		for y := fineOnCoarse.Lo[1]; y < fineOnCoarse.Hi[1]; y++ {
			// Hoist the covered fine rows of this coarse row; nil marks
			// a row outside the fine interior.
			for dy := 0; dy < ratio; dy++ {
				fy := y*ratio + dy
				if fy >= fine.Box.Lo[1] && fy < fine.Box.Hi[1] {
					frows[dy] = fine.Row(c, fy)
				} else {
					frows[dy] = nil
				}
			}
			crow := coarse.RowSpan(c, y, fineOnCoarse.Lo[0], fineOnCoarse.Hi[0])
			fxlo := fine.grown.Lo[0]
			// Coarse cells in [qlo, qhi) have their whole ratio x ratio
			// block inside the fine interior in x; with all rows
			// resident they sum without per-cell guards, in the same
			// dy-outer dx-inner order as the guarded path.
			qlo := ceilDiv(fine.Box.Lo[0], ratio)
			qhi := floorDiv(fine.Box.Hi[0], ratio)
			allRows := true
			for dy := 0; dy < ratio; dy++ {
				allRows = allRows && frows[dy] != nil
			}
			for i := range crow {
				qx := fineOnCoarse.Lo[0] + i
				if allRows && qx >= qlo && qx < qhi {
					base := qx*ratio - fxlo
					var sum float64
					for dy := 0; dy < ratio; dy++ {
						frow := frows[dy]
						for dx := 0; dx < ratio; dx++ {
							sum += frow[base+dx]
						}
					}
					crow[i] = sum * inv
					continue
				}
				var sum float64
				n := 0
				for dy := 0; dy < ratio; dy++ {
					frow := frows[dy]
					if frow == nil {
						continue
					}
					for dx := 0; dx < ratio; dx++ {
						fx := qx*ratio + dx
						if fx >= fine.Box.Lo[0] && fx < fine.Box.Hi[0] {
							sum += frow[fx-fxlo]
							n++
						}
					}
				}
				if n == full {
					crow[i] = sum * inv
				}
			}
		}
	}
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func ceilDiv(a, b int) int { return floorDiv(a+b-1, b) }
