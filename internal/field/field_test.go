package field

import (
	"testing"

	"samr/internal/geom"
)

func TestPatchIndexingAndFill(t *testing.T) {
	p := NewPatch(geom.NewBox2(2, 3, 6, 7), 1, 2)
	if p.GrownBox() != geom.NewBox2(1, 2, 7, 8) {
		t.Fatalf("GrownBox = %v", p.GrownBox())
	}
	p.Fill(0, 1.5)
	p.Fill(1, -2.0)
	if p.At(0, 2, 3) != 1.5 || p.At(1, 5, 6) != -2.0 {
		t.Error("Fill/At mismatch")
	}
	p.Set(0, 4, 5, 9.0)
	if p.At(0, 4, 5) != 9.0 {
		t.Error("Set/At mismatch")
	}
	p.Add(0, 4, 5, 1.0)
	if p.At(0, 4, 5) != 10.0 {
		t.Error("Add mismatch")
	}
	// Ghost cells addressable.
	p.Set(1, 1, 2, 7.0)
	if p.At(1, 1, 2) != 7.0 {
		t.Error("ghost cell not addressable")
	}
}

func TestCloneIndependent(t *testing.T) {
	p := NewPatch(geom.NewBox2(0, 0, 2, 2), 0, 1)
	p.Set(0, 0, 0, 3.0)
	q := p.Clone()
	q.Set(0, 0, 0, 4.0)
	if p.At(0, 0, 0) != 3.0 {
		t.Error("Clone shares storage")
	}
}

func TestCopyRegion(t *testing.T) {
	src := NewPatch(geom.NewBox2(0, 0, 4, 4), 0, 1)
	src.Box.Cells(func(q geom.IntVect) { src.Set(0, q[0], q[1], float64(q[0]*10+q[1])) })
	dst := NewPatch(geom.NewBox2(2, 2, 6, 6), 1, 1)
	dst.CopyRegion(src, geom.NewBox2(2, 2, 4, 4))
	if dst.At(0, 3, 3) != 33 || dst.At(0, 2, 2) != 22 {
		t.Errorf("CopyRegion values wrong: %f %f", dst.At(0, 3, 3), dst.At(0, 2, 2))
	}
	// Ghost region of dst also receivable.
	dst.CopyRegion(src, geom.NewBox2(1, 1, 2, 2))
	if dst.At(0, 1, 1) != 11 {
		t.Errorf("ghost CopyRegion = %f", dst.At(0, 1, 1))
	}
}

func TestExchangeGhosts(t *testing.T) {
	// Two side-by-side patches; ghosts of each must pick up the
	// neighbour's interior.
	a := NewPatch(geom.NewBox2(0, 0, 4, 4), 1, 1)
	b := NewPatch(geom.NewBox2(4, 0, 8, 4), 1, 1)
	a.Fill(0, 1.0)
	b.Fill(0, 2.0)
	ExchangeGhosts([]*Patch{a, b})
	if got := a.At(0, 4, 2); got != 2.0 {
		t.Errorf("a ghost at x=4 = %f, want 2", got)
	}
	if got := b.At(0, 3, 2); got != 1.0 {
		t.Errorf("b ghost at x=3 = %f, want 1", got)
	}
	// Corner ghost outside both stays untouched (still the Fill value).
	if got := a.At(0, -1, -1); got != 1.0 {
		t.Errorf("uncovered ghost changed: %f", got)
	}
}

func TestFillPhysicalPeriodic(t *testing.T) {
	dom := geom.NewBox2(0, 0, 8, 8)
	a := NewPatch(geom.NewBox2(0, 0, 8, 8), 1, 1)
	a.Box.Cells(func(q geom.IntVect) { a.Set(0, q[0], q[1], float64(q[0])) })
	FillPhysical(a, []*Patch{a}, dom, BCPeriodic)
	if got := a.At(0, -1, 3); got != 7 {
		t.Errorf("periodic ghost x=-1 = %f, want 7", got)
	}
	if got := a.At(0, 8, 3); got != 0 {
		t.Errorf("periodic ghost x=8 = %f, want 0", got)
	}
}

func TestFillPhysicalOutflow(t *testing.T) {
	dom := geom.NewBox2(0, 0, 4, 4)
	a := NewPatch(dom, 2, 1)
	a.Box.Cells(func(q geom.IntVect) { a.Set(0, q[0], q[1], float64(q[0]+10*q[1])) })
	FillPhysical(a, []*Patch{a}, dom, BCOutflow)
	if got := a.At(0, -2, 2); got != 0+10*2 {
		t.Errorf("outflow ghost = %f", got)
	}
	if got := a.At(0, 5, 5); got != 3+10*3 {
		t.Errorf("outflow corner ghost = %f", got)
	}
}

func TestFillPhysicalReflect(t *testing.T) {
	dom := geom.NewBox2(0, 0, 4, 4)
	a := NewPatch(dom, 1, 1)
	a.Box.Cells(func(q geom.IntVect) { a.Set(0, q[0], q[1], float64(q[0])) })
	FillPhysical(a, []*Patch{a}, dom, BCReflect)
	// Cell -1 mirrors cell 0; cell 4 mirrors cell 3.
	if got := a.At(0, -1, 2); got != 0 {
		t.Errorf("reflect ghost x=-1 = %f, want 0", got)
	}
	if got := a.At(0, 4, 2); got != 3 {
		t.Errorf("reflect ghost x=4 = %f, want 3", got)
	}
}

func TestProlongPiecewiseConstant(t *testing.T) {
	coarse := NewPatch(geom.NewBox2(0, 0, 4, 4), 1, 1)
	coarse.Box.Cells(func(q geom.IntVect) { coarse.Set(0, q[0], q[1], float64(q[0]*4+q[1])) })
	fine := NewPatch(geom.NewBox2(2, 2, 6, 6), 0, 1)
	Prolong(fine, coarse, fine.Box, 2)
	// Fine cell (2,2) maps to coarse (1,1) -> value 5.
	if got := fine.At(0, 2, 2); got != 5 {
		t.Errorf("Prolong(2,2) = %f, want 5", got)
	}
	// Fine cell (5,5) maps to coarse (2,2) -> value 10.
	if got := fine.At(0, 5, 5); got != 10 {
		t.Errorf("Prolong(5,5) = %f, want 10", got)
	}
}

func TestRestrictAverages(t *testing.T) {
	fine := NewPatch(geom.NewBox2(2, 2, 6, 6), 0, 1)
	fine.Box.Cells(func(q geom.IntVect) { fine.Set(0, q[0], q[1], 4.0) })
	coarse := NewPatch(geom.NewBox2(0, 0, 4, 4), 0, 1)
	coarse.Fill(0, -1)
	Restrict(coarse, fine, 2)
	// Coarse cells (1..2, 1..2) are fully covered: average of 4s = 4.
	if got := coarse.At(0, 1, 1); got != 4.0 {
		t.Errorf("Restrict covered cell = %f, want 4", got)
	}
	// Coarse cell (0,0) not covered: untouched.
	if got := coarse.At(0, 0, 0); got != -1 {
		t.Errorf("Restrict uncovered cell = %f, want -1", got)
	}
}

func TestRestrictConservation(t *testing.T) {
	// Sum over a fully covered coarse region must equal fine sum / r^2.
	fine := NewPatch(geom.NewBox2(0, 0, 8, 8), 0, 1)
	v := 0.0
	fine.Box.Cells(func(q geom.IntVect) { v += 1; fine.Set(0, q[0], q[1], v) })
	coarse := NewPatch(geom.NewBox2(0, 0, 4, 4), 0, 1)
	Restrict(coarse, fine, 2)
	fineSum := fine.SumInterior(0)
	coarseSum := coarse.SumInterior(0)
	if diff := fineSum/4 - coarseSum; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("restriction not conservative: fine/4=%f coarse=%f", fineSum/4, coarseSum)
	}
}

func TestProlongRestrictRoundTrip(t *testing.T) {
	// Piecewise-constant prolongation followed by averaging restriction
	// must reproduce the coarse data exactly.
	coarse := NewPatch(geom.NewBox2(0, 0, 4, 4), 0, 1)
	coarse.Box.Cells(func(q geom.IntVect) { coarse.Set(0, q[0], q[1], float64(q[0]-2*q[1])) })
	fine := NewPatch(geom.NewBox2(0, 0, 8, 8), 0, 1)
	Prolong(fine, coarse, fine.Box, 2)
	got := NewPatch(geom.NewBox2(0, 0, 4, 4), 0, 1)
	Restrict(got, fine, 2)
	coarse.Box.Cells(func(q geom.IntVect) {
		if got.At(0, q[0], q[1]) != coarse.At(0, q[0], q[1]) {
			t.Fatalf("round trip differs at %v", q)
		}
	})
}

func TestMaxAbs(t *testing.T) {
	p := NewPatch(geom.NewBox2(0, 0, 3, 3), 1, 1)
	p.Set(0, 1, 1, -5)
	p.Set(0, 2, 2, 3)
	p.Set(0, -1, -1, 100) // ghost: must be ignored
	if got := p.MaxAbs(0); got != 5 {
		t.Errorf("MaxAbs = %f, want 5", got)
	}
}
