package field

import (
	"math/bits"
	"sync"
)

// Patch data slabs come from a size-classed free list so regridding —
// which rebuilds whole levels every few steps — stops hitting the
// allocator for every patch. Slabs are classed by capacity rounded up
// to the next power of two; acquire hands out a slab of the exact
// requested length over a pooled backing array, release returns the
// backing array to its class. The pools are sync.Pools, so reuse is
// safe from concurrent driver workers and idle slabs are reclaimed by
// the GC under memory pressure.

// minSlabBits is the smallest pooled class (2^6 = 64 floats = 512 B);
// smaller requests are rounded up to it.
const minSlabBits = 6

// maxSlabBits bounds the pooled classes (2^26 floats = 512 MB); larger
// requests fall through to plain make and are dropped on release.
const maxSlabBits = 26

var slabPools [maxSlabBits + 1]sync.Pool

// slabClass returns the pool class for a slab of n floats, or -1 when n
// is out of the pooled range.
func slabClass(n int) int {
	if n <= 0 {
		return -1
	}
	c := bits.Len(uint(n - 1))
	if c < minSlabBits {
		c = minSlabBits
	}
	if c > maxSlabBits {
		return -1
	}
	return c
}

// acquireSlab returns a slab of length n whose contents are arbitrary
// (callers overwrite or zero it).
func acquireSlab(n int) []float64 {
	c := slabClass(n)
	if c < 0 {
		return make([]float64, n)
	}
	if v := slabPools[c].Get(); v != nil {
		return (*v.(*[]float64))[:n]
	}
	return make([]float64, n, 1<<c)
}

// acquireSlabZero returns a zeroed slab of length n.
func acquireSlabZero(n int) []float64 {
	s := acquireSlab(n)
	clear(s)
	return s
}

// releaseSlab returns s to its size class. s must not be used again.
func releaseSlab(s []float64) {
	c := slabClass(cap(s))
	if c < 0 || cap(s) != 1<<c {
		// Not a pooled shape (oversized or externally built); let the
		// GC have it rather than polluting a class with odd capacities.
		return
	}
	s = s[:cap(s)]
	slabPools[c].Put(&s)
}
