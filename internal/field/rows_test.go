package field

import (
	"testing"

	"samr/internal/geom"
)

// TestRowAliasesStorage verifies Row/RowSpan expose the same cells as
// At/Set, and that writes through a row are visible to At.
func TestRowAliasesStorage(t *testing.T) {
	p := NewPatch(geom.NewBox2(2, 3, 6, 7), 1, 2)
	v := 0.0
	p.GrownBox().Cells(func(q geom.IntVect) {
		p.Set(1, q[0], q[1], v)
		v++
	})
	gb := p.GrownBox()
	for y := gb.Lo[1]; y < gb.Hi[1]; y++ {
		row := p.Row(1, y)
		if len(row) != gb.Size(0) {
			t.Fatalf("row length %d, want %d", len(row), gb.Size(0))
		}
		for i, got := range row {
			if want := p.At(1, gb.Lo[0]+i, y); got != want {
				t.Fatalf("Row(1,%d)[%d] = %v, want %v", y, i, got, want)
			}
		}
	}
	span := p.RowSpan(1, 4, 3, 5)
	if len(span) != 2 {
		t.Fatalf("span length %d", len(span))
	}
	span[0] = -7
	if p.At(1, 3, 4) != -7 {
		t.Error("write through RowSpan not visible to At")
	}
}

// TestRowIterators checks the interior iterator covers exactly the
// interior and the grown iterator the full halo extent.
func TestRowIterators(t *testing.T) {
	p := NewPatch(geom.NewBox2(1, 1, 5, 4), 2, 1)
	rows, cells := 0, 0
	p.InteriorRows(0, func(y int, row []float64) {
		if y < p.Box.Lo[1] || y >= p.Box.Hi[1] {
			t.Fatalf("interior row y=%d outside %v", y, p.Box)
		}
		rows++
		cells += len(row)
	})
	if rows != p.Box.Size(1) || int64(cells) != p.Box.Volume() {
		t.Fatalf("interior iteration covered %d rows / %d cells, want %d / %d",
			rows, cells, p.Box.Size(1), p.Box.Volume())
	}
	rows, cells = 0, 0
	p.GrownRows(0, func(y int, row []float64) {
		rows++
		cells += len(row)
	})
	if rows != p.GrownBox().Size(1) || int64(cells) != p.GrownBox().Volume() {
		t.Fatalf("grown iteration covered %d rows / %d cells, want %d / %d",
			rows, cells, p.GrownBox().Size(1), p.GrownBox().Volume())
	}
}

// TestSlabReuse verifies the free list recycles a released slab of the
// same size class and that NewPatch zeroes recycled storage.
func TestSlabReuse(t *testing.T) {
	box := geom.NewBox2(0, 0, 8, 8)
	p := NewPatch(box, 1, 1)
	p.Fill(0, 42)
	p.Release()
	q := NewPatch(box, 1, 1)
	q.GrownBox().Cells(func(c geom.IntVect) {
		if q.At(0, c[0], c[1]) != 0 {
			t.Fatalf("recycled patch not zeroed at %v", c)
		}
	})
	q.Release()
}

// TestCloneIndependence verifies a clone (whose slab also comes from
// the free list) is decoupled from its source.
func TestCloneIndependence(t *testing.T) {
	p := NewPatch(geom.NewBox2(0, 0, 4, 4), 1, 1)
	p.Fill(0, 3)
	c := p.Clone()
	defer c.Release()
	p.Set(0, 1, 1, -1)
	if c.At(0, 1, 1) != 3 {
		t.Error("clone shares storage with source")
	}
}

// TestSlabClasses pins the size-class rounding: in-range capacities
// round to powers of two, out-of-range requests bypass the pool.
func TestSlabClasses(t *testing.T) {
	for _, tc := range []struct{ n, class int }{
		{1, minSlabBits}, {64, minSlabBits}, {65, 7}, {1024, 10}, {1025, 11},
	} {
		if got := slabClass(tc.n); got != tc.class {
			t.Errorf("slabClass(%d) = %d, want %d", tc.n, got, tc.class)
		}
	}
	if slabClass(0) != -1 || slabClass(1<<27) != -1 {
		t.Error("out-of-range sizes must bypass the pool")
	}
	s := acquireSlab(100)
	if len(s) != 100 || cap(s) != 128 {
		t.Errorf("acquireSlab(100): len %d cap %d, want 100/128", len(s), cap(s))
	}
	releaseSlab(s)
}
