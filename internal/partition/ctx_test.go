package partition

import (
	"context"
	"errors"
	"testing"
	"time"

	"samr/internal/grid"
)

// countdownCtx is a deterministic cancellation harness: Err() returns
// nil for the first n polls and context.Canceled afterwards. Because
// the partitioners observe cancellation exclusively through Err()
// polls, sweeping n over [0, total] exercises every cancellation point
// a real mid-flight cancel could hit — without goroutines or timing.
// Done() is inherited from Background (never ready), which is valid
// for a context that is "cancelled" only through Err.
type countdownCtx struct {
	context.Context
	remaining int
	polls     int
}

func newCountdownCtx(n int) *countdownCtx {
	return &countdownCtx{Context: context.Background(), remaining: n}
}

func (c *countdownCtx) Err() error {
	c.polls++
	if c.polls > c.remaining {
		return context.Canceled
	}
	return nil
}

// pollsOf counts how many times a full cold-cache Partition run polls
// the context.
func pollsOf(t *testing.T, mk func() Partitioner, h *grid.Hierarchy, np int) int {
	t.Helper()
	flushChainCaches()
	ctx := newCountdownCtx(1 << 30)
	if _, err := mk().Partition(ctx, h, np); err != nil {
		t.Fatal(err)
	}
	if ctx.polls == 0 {
		t.Fatal("partitioner never polled its context")
	}
	return ctx.polls
}

// ctxPartitioners returns fresh-instance constructors for every
// partitioner implementation, including the stateful wrapper.
func ctxPartitioners() map[string]func() Partitioner {
	return map[string]func() Partitioner{
		"domain":  func() Partitioner { return NewDomainSFC() },
		"patch":   func() Partitioner { return NewPatchBased() },
		"hybrid":  func() Partitioner { return NewNatureFable() },
		"postmap": func() Partitioner { return NewPostMapped(NewDomainSFC()) },
		"relabel": func() Partitioner { return &relabelingPartitioner{inner: NewNatureFable()} },
	}
}

// TestPartitionCancelledNeverPartial is the property test of the
// cancellation contract: for every partitioner and every possible
// cancellation point, Partition returns either a complete validated
// Assignment (nil error) or (nil, context error) — never a partial
// result.
func TestPartitionCancelledNeverPartial(t *testing.T) {
	h := testHierarchy()
	const np = 8
	for name, mk := range ctxPartitioners() {
		t.Run(name, func(t *testing.T) {
			total := pollsOf(t, mk, h, np)
			for n := 0; n < total; n++ {
				// Each attempt runs against a cold memo: a warm unit-chain
				// cache legitimately needs fewer polls (and may complete
				// before the countdown fires), which would break the
				// poll-point sweep. Cold runs also prove a cancelled
				// build never stores a partial artifact for the next run.
				flushChainCaches()
				a, err := mk().Partition(newCountdownCtx(n), h, np)
				if err == nil {
					t.Fatalf("cancel at poll %d/%d: no error", n, total)
				}
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("cancel at poll %d: err = %v, want wrapped context.Canceled", n, err)
				}
				if a != nil {
					t.Fatalf("cancel at poll %d/%d returned a partial assignment (%d fragments)",
						n, total, len(a.Fragments))
				}
			}
			// And at exactly total polls the cold run completes validly.
			flushChainCaches()
			a, err := mk().Partition(newCountdownCtx(total), h, np)
			if err != nil {
				t.Fatalf("uncancelled run failed: %v", err)
			}
			if err := a.Validate(h); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPartitionPreCancelled: an already-cancelled context fails before
// any work, for every implementation.
func TestPartitionPreCancelled(t *testing.T) {
	h := testHierarchy()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, mk := range ctxPartitioners() {
		a, err := mk().Partition(ctx, h, 8)
		if !errors.Is(err, context.Canceled) || a != nil {
			t.Errorf("%s: pre-cancelled Partition = (%v, %v), want (nil, Canceled)", name, a, err)
		}
	}
}

// TestPartitionDeadlineErrorKind: a deadline-expired context surfaces
// DeadlineExceeded (not Canceled), so servers can map 504 vs 499.
func TestPartitionDeadlineErrorKind(t *testing.T) {
	h := testHierarchy()
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	_, err := NewNatureFable().Partition(ctx, h, 8)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped DeadlineExceeded", err)
	}
}

// TestPostMappedCancelPreservesState: a cancelled call must not disturb
// the wrapper's carried previous assignment — the next successful call
// still aligns labels with the last successful one.
func TestPostMappedCancelPreservesState(t *testing.T) {
	h := testHierarchy()
	pm := NewPostMapped(&relabelingPartitioner{inner: NewDomainSFC()})
	a1, err := pm.Partition(context.Background(), h, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Cancelled mid-flight: state untouched.
	if _, err := pm.Partition(newCountdownCtx(2), h.Clone(), 4); err == nil {
		t.Fatal("expected cancellation")
	}
	a2, err := pm.Partition(context.Background(), h.Clone(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if mv := migrationBetween(h, a1, a2); mv != 0 {
		t.Errorf("post-cancel migration = %d, want 0 (state preserved)", mv)
	}
}
