package partition

import (
	"context"
	"fmt"

	"samr/internal/geom"
	"samr/internal/grid"
)

// PostMapped wraps any partitioner with the post-mapping technique the
// paper names as a data-migration remedy (section 4: "optimizing data
// migration may be obtained by e.g. invoking some kind of post mapping
// technique"). After the inner partitioner produces its decomposition,
// the processor *labels* are permuted to maximize the number of grid
// points that keep their previous owner: the geometric decomposition is
// unchanged (load balance and communication are untouched), but the
// assignment aligns with the previous one wherever possible, cutting
// migration.
//
// The label permutation is chosen greedily on the overlap matrix
// (points shared between previous owner p's region and new part q's
// region), which is the standard linear-assignment heuristic for
// repartitioning remap.
type PostMapped struct {
	// Inner produces the decomposition being remapped.
	Inner Partitioner

	prevH *grid.Hierarchy
	prevA *Assignment
}

// NewPostMapped wraps inner with post-mapping.
func NewPostMapped(inner Partitioner) *PostMapped { return &PostMapped{Inner: inner} }

// Name implements Partitioner.
func (pm *PostMapped) Name() string { return fmt.Sprintf("postmap(%s)", pm.Inner.Name()) }

// Reset forgets the previous assignment (for replaying a new trace).
func (pm *PostMapped) Reset() {
	pm.prevH = nil
	pm.prevA = nil
}

// History returns the carried previous-call state: the hierarchy and
// assignment the next Partition call will remap against (both nil
// before the first completed call). The returned values are the live
// state — callers must treat them as immutable.
func (pm *PostMapped) History() (*grid.Hierarchy, *Assignment) { return pm.prevH, pm.prevA }

// SetHistory replaces the carried state wholesale, as if h/a were the
// previous completed call. It exists for session resumption: a daemon
// rebuilding a postmap session from a fleet snapshot restores the
// mapping history so the resumed stream relabels exactly as the
// uninterrupted one would. pm takes ownership of both values.
func (pm *PostMapped) SetHistory(h *grid.Hierarchy, a *Assignment) {
	pm.prevH = h
	pm.prevA = a
}

// Partition implements Partitioner: it runs the inner partitioner and
// permutes the part labels to maximize overlap with the previous call's
// assignment. A cancelled call leaves the carried previous-assignment
// state untouched, so an aborted invocation never poisons the next one.
func (pm *PostMapped) Partition(ctx context.Context, h *grid.Hierarchy, nprocs int) (*Assignment, error) {
	a, err := pm.Inner.Partition(ctx, h, nprocs)
	if err != nil {
		return nil, err
	}
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}
	if pm.prevA != nil && pm.prevA.NumProcs == nprocs {
		perm := remapLabels(pm.prevH, pm.prevA, h, a)
		remapped := &Assignment{NumProcs: nprocs, Fragments: make([]Fragment, len(a.Fragments))}
		for i, f := range a.Fragments {
			f.Owner = perm[f.Owner]
			remapped.Fragments[i] = f
		}
		a = remapped
	}
	pm.prevH = h.Clone()
	pm.prevA = a
	return a, nil
}

// remapLabels returns a permutation newOwner -> relabeledOwner that
// maximizes the total point overlap with the previous assignment,
// solved exactly with the Hungarian algorithm (processor counts are
// small, so O(n^3) is negligible next to partitioning itself). Identity
// is preferred among optima: the overlap of keeping a part's own label
// gets an infinitesimal bonus, so label churn never happens without a
// real gain.
func remapLabels(prevH *grid.Hierarchy, prevA *Assignment, curH *grid.Hierarchy, curA *Assignment) []int {
	n := curA.NumProcs
	// overlap[q][p]: points of new part q lying in previous owner p's
	// region (per level, weighted equally per point).
	overlap := make([][]int64, n)
	for q := range overlap {
		overlap[q] = make([]int64, n)
	}
	levels := len(curH.Levels)
	if len(prevH.Levels) < levels {
		levels = len(prevH.Levels)
	}
	for l := 0; l < levels; l++ {
		prevOwned := prevA.LevelBoxes(l)
		curOwned := curA.LevelBoxes(l)
		for q, qb := range curOwned {
			for p, pb := range prevOwned {
				overlap[q][p] += geom.OverlapVolume(qb, pb)
			}
		}
	}
	// Benefit matrix with identity preference: scale overlaps by 2 and
	// add 1 on the diagonal so any strict overlap win dominates the
	// bonus, but exact ties resolve to keeping labels.
	benefit := make([][]int64, n)
	var maxB int64
	for q := range benefit {
		benefit[q] = make([]int64, n)
		for p := 0; p < n; p++ {
			b := 2 * overlap[q][p]
			if p == q {
				b++
			}
			benefit[q][p] = b
			if b > maxB {
				maxB = b
			}
		}
	}
	// Hungarian solves minimization; convert to cost.
	cost := make([][]int64, n)
	for q := range cost {
		cost[q] = make([]int64, n)
		for p := 0; p < n; p++ {
			cost[q][p] = maxB - benefit[q][p]
		}
	}
	return hungarian(cost)
}

// hungarian solves the square assignment problem, returning for each
// row the column of a minimum-cost perfect matching. Standard
// potentials-based O(n^3) implementation.
func hungarian(cost [][]int64) []int {
	n := len(cost)
	const inf = int64(1) << 62
	u := make([]int64, n+1)
	v := make([]int64, n+1)
	p := make([]int, n+1) // p[col] = row matched to col (1-based)
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]int64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	out := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			out[p[j]-1] = j - 1
		}
	}
	return out
}
