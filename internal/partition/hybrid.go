package partition

import (
	"context"
	"fmt"

	"samr/internal/cluster"
	"samr/internal/geom"
	"samr/internal/grid"
	"samr/internal/sfc"
)

// NatureFable is a hybrid partitioner modelled on the Nature+Fable
// tool the paper's experiments use ("Natural Regions + Fractional
// blocking and bi-level partitioning"). It follows the published
// structure:
//
//  1. Separate the homogeneous, unrefined (Hue) regions of the base
//     grid from the complex, refined (Core) regions, strictly
//     domain-based: each Core carries its portion of the base grid plus
//     every overlaid refined grid.
//  2. Distribute processors between Hues and Cores in proportion to
//     workload.
//  3. Hues: expert blocking — chop into atomic blocks, order along a
//     space-filling curve, cut into equal-load portions.
//  4. Cores: a coarse partitioning maps core units onto processor
//     groups (meta-partitions); within each group, refinement levels
//     are clustered into bi-levels (0-1, 2-3, 4-...) and the same
//     blocking machinery distributes each bi-level over the group.
//
// Parameters steer component behaviour as in the original (atomic unit,
// group count Q, fractional blocking), which is what makes the tool
// configurable by the meta-partitioner.
type NatureFable struct {
	// Curve orders blocks and core units.
	Curve sfc.Curve
	// AtomicUnit is the block edge length in base cells.
	AtomicUnit int
	// Groups is Q: the number of processor groups the cores are coarse-
	// partitioned into (clamped to the processors available for cores).
	Groups int
	// FractionalBlocking splits blocks at processor-portion boundaries
	// instead of rounding to whole blocks, trading communication for
	// balance.
	FractionalBlocking bool
}

// NewNatureFable returns the paper's static "default" configuration.
func NewNatureFable() *NatureFable {
	return &NatureFable{Curve: sfc.Hilbert, AtomicUnit: 2, Groups: 4, FractionalBlocking: true}
}

// Name implements Partitioner.
func (nf *NatureFable) Name() string {
	fb := "whole"
	if nf.FractionalBlocking {
		fb = "frac"
	}
	return fmt.Sprintf("nature+fable-%s-u%d-q%d-%s", nf.Curve, nf.AtomicUnit, nf.Groups, fb)
}

// Partition implements Partitioner. Cancellation is polled per phase
// (hue separation, coarse core cut, per-group bi-level blocking) and
// per unit batch inside the blocking machinery. The hue/core
// separation and both reusable unit chains — everything independent of
// nprocs — are served from the content-addressed prep cache; the
// processor split, chain cuts, and per-group bi-level blocking run per
// call.
func (nf *NatureFable) Partition(ctx context.Context, h *grid.Hierarchy, nprocs int) (*Assignment, error) {
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}
	us := nf.AtomicUnit
	if us < 1 {
		us = 1
	}
	a := &Assignment{NumProcs: nprocs}
	sig := h.Signature()
	hi, err := sharedHierIndex(ctx, h, sig)
	if err != nil {
		return nil, err
	}
	prep, err := nfPrepOf(hi, sig, nf.Curve, us)
	if err != nil {
		return nil, err
	}
	hue := prep.hue

	// Workload split: hues have only base work; cores everything else.
	hueW := prep.hueW // level 0, step factor 1
	totalW := h.Workload()
	coreW := totalW - hueW

	coreProcs := nprocs
	hueProcs := 0
	if hueW > 0 && coreW > 0 {
		coreProcs = int(float64(nprocs)*float64(coreW)/float64(totalW) + 0.5)
		if coreProcs < 1 {
			coreProcs = 1
		}
		if coreProcs >= nprocs && nprocs > 1 {
			coreProcs = nprocs - 1
		}
		hueProcs = nprocs - coreProcs
	} else if coreW == 0 {
		hueProcs, coreProcs = nprocs, 0
	}

	// Hues: blocking over processors [coreProcs, nprocs).
	if hueProcs > 0 && hueW > 0 {
		if err := nf.blockOrdered(hi, prep.hueUnits, 0, 0, coreProcs, hueProcs, &a.Fragments); err != nil {
			return nil, err
		}
	} else if hueW > 0 {
		// No dedicated hue processors: fold hues into processor 0.
		for _, b := range hue {
			a.Fragments = append(a.Fragments, Fragment{Level: 0, Box: b, Owner: 0})
		}
	}

	// Cores: coarse partition into groups, then bi-level blocking.
	if coreProcs > 0 && coreW > 0 {
		if err := nf.partitionCores(hi, prep.coreUnits, coreProcs, &a.Fragments); err != nil {
			return nil, err
		}
	}
	a.Fragments = mergeFragments(a.Fragments)
	return a, nil
}

// makeCoreRegions returns disjoint base-space boxes covering the given
// refined footprint: the "natural regions" separation.
func makeCoreRegions(fp geom.BoxList) geom.BoxList {
	regions := cluster.MakeDisjoint(fp).Simplify()
	regions.SortByLo()
	return regions
}

// coreRegions returns disjoint base-space boxes covering all refined
// footprints.
func (nf *NatureFable) coreRegions(h *grid.Hierarchy) geom.BoxList {
	fp := h.RefinedFootprint()
	if len(fp) == 0 {
		return nil
	}
	return makeCoreRegions(fp)
}

// partitionCores coarse-partitions the (already SFC-ordered) core unit
// chain into processor groups and block-partitions each bi-level
// within its group. The chain is shared cache state: it is cut and
// scanned, never mutated.
func (nf *NatureFable) partitionCores(hi *hierIndex, units []unit, coreProcs int, out *[]Fragment) error {
	groups := nf.Groups
	if groups < 1 {
		groups = 1
	}
	if groups > coreProcs {
		groups = coreProcs
	}
	groupOf := cutChain(units, groups)

	// Processors per group, proportional to group workload.
	groupW := make([]int64, groups)
	var totalW int64
	for i, u := range units {
		groupW[groupOf[i]] += u.weight
		totalW += u.weight
	}
	procStart := make([]int, groups+1)
	assigned := 0
	for g := 0; g < groups; g++ {
		procStart[g] = assigned
		share := 1
		if totalW > 0 {
			share = int(float64(coreProcs)*float64(groupW[g])/float64(totalW) + 0.5)
		}
		remainingGroups := groups - g - 1
		if share < 1 {
			share = 1
		}
		if assigned+share > coreProcs-remainingGroups {
			share = coreProcs - remainingGroups - assigned
			if share < 1 {
				share = 1
			}
		}
		assigned += share
	}
	procStart[groups] = coreProcs

	// Bi-level partitioning within each group.
	maxLevel := len(hi.h.Levels) - 1
	for g := 0; g < groups; g++ {
		if err := hi.check(); err != nil {
			return err
		}
		var gUnits geom.BoxList
		for i, u := range units {
			if groupOf[i] == g {
				gUnits = append(gUnits, u.box)
			}
		}
		if len(gUnits) == 0 {
			continue
		}
		gProcs := procStart[g+1] - procStart[g]
		if gProcs < 1 {
			gProcs = 1
		}
		for lo := 0; lo <= maxLevel; lo += 2 {
			band := lo + 1
			if band > maxLevel {
				band = maxLevel
			}
			if err := nf.blockRegion(hi, gUnits, lo, band, procStart[g], gProcs, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// blockRegion distributes the cells of levels [loLevel, hiLevel] lying
// over the base-space region across procs processors starting at
// procBase, by SFC-ordered blocking of the region's atomic units. With
// fractional blocking, the unit straddling a processor-portion boundary
// is split between the two portions instead of rounding to whole
// blocks, trading a little extra surface for tighter balance.
func (nf *NatureFable) blockRegion(hi *hierIndex, region geom.BoxList, loLevel, hiLevel, procBase, procs int, out *[]Fragment) error {
	us := nf.AtomicUnit
	if us < 1 {
		us = 1
	}
	units, err := hi.unitsOfWeighted(region, us, func(ub geom.Box) int64 {
		return hi.bandWeight(ub, loLevel, hiLevel)
	})
	if err != nil {
		return err
	}
	orderUnitsByCurve(units, nf.Curve, us)
	return nf.blockOrdered(hi, units, loLevel, hiLevel, procBase, procs, out)
}

// blockOrdered is blockRegion's cutting half: it distributes an
// already SFC-ordered unit chain (possibly shared cache state — read
// only) across procs processors starting at procBase.
func (nf *NatureFable) blockOrdered(hi *hierIndex, units []unit, loLevel, hiLevel, procBase, procs int, out *[]Fragment) error {
	owned := nf.cutUnits(units, procs)
	for i, ou := range owned {
		if i%ctxBatch == 0 {
			if err := hi.check(); err != nil {
				return err
			}
		}
		hi.bandFragments(ou.box, loLevel, hiLevel, procBase+ou.owner, out)
	}
	return nil
}

// ownedUnit is a base-space box with its processor-portion index.
type ownedUnit struct {
	box   geom.Box
	owner int
}

// cutUnits cuts the ordered units into parts portions. Whole-block mode
// delegates to cutChain; fractional mode splits the unit that straddles
// each portion boundary proportionally to the remaining weight.
func (nf *NatureFable) cutUnits(units []unit, parts int) []ownedUnit {
	if !nf.FractionalBlocking {
		owners := cutChain(units, parts)
		out := make([]ownedUnit, len(units))
		for i, u := range units {
			out[i] = ownedUnit{box: u.box, owner: owners[i]}
		}
		return out
	}
	if parts < 1 {
		parts = 1
	}
	var total int64
	for _, u := range units {
		total += u.weight
	}
	var out []ownedUnit
	var acc int64
	p := 0
	for _, u := range units {
		rem := u
		for p < parts-1 {
			boundary := total * int64(p+1) / int64(parts)
			if acc+rem.weight <= boundary || rem.weight == 0 {
				break
			}
			// The unit straddles the boundary: split off the share that
			// belongs to portion p (area-proportional approximation of
			// the weight share).
			share := float64(boundary-acc) / float64(rem.weight)
			d := rem.box.LongestDim()
			at := rem.box.Lo[d] + int(share*float64(rem.box.Size(d))+0.5)
			lo, hi := rem.box.ChopDim(d, at)
			if !lo.Empty() {
				out = append(out, ownedUnit{box: lo, owner: p})
			}
			// Weight consumed by the lower piece, proportionally.
			consumed := int64(share * float64(rem.weight))
			acc += consumed
			rem = unit{box: hi, weight: rem.weight - consumed}
			p++
			if hi.Empty() {
				rem.weight = 0
				break
			}
		}
		if !rem.box.Empty() {
			out = append(out, ownedUnit{box: rem.box, owner: p})
			acc += rem.weight
		}
	}
	return out
}
