package partition

import (
	"context"
	"fmt"

	"samr/internal/grid"
	"samr/internal/sfc"
)

// DomainSFC is a strictly domain-based composite-grid partitioner: the
// base domain is chopped into atomic units, each unit carries its whole
// column of overlaid refinements (all levels cut identically), the units
// are ordered along a space-filling curve, and the resulting chain is
// cut into near-equal-workload processor portions.
//
// This is the classic domain-based scheme of Parashar & Browne (and of
// the first author's earlier work) the paper describes: it eliminates
// inter-level communication by construction, at the price of potentially
// intractable load imbalance for deep, localized hierarchies.
type DomainSFC struct {
	// Curve selects the ordering curve (default Hilbert).
	Curve sfc.Curve
	// UnitSize is the atomic-unit edge length in base cells (the
	// "granularity"; the paper's setups use minimum block dimension 2).
	UnitSize int
}

// NewDomainSFC returns a Hilbert-ordered domain-based partitioner with
// the paper's granularity.
func NewDomainSFC() *DomainSFC { return &DomainSFC{Curve: sfc.Hilbert, UnitSize: 2} }

// Name implements Partitioner.
func (d *DomainSFC) Name() string {
	return fmt.Sprintf("domain-%s-u%d", d.Curve, d.UnitSize)
}

// Partition implements Partitioner. The SFC-ordered unit chain — the
// nprocs-independent bulk of the work — is served from the
// content-addressed chain cache; only the chain cut and fragment
// generation run per call.
func (d *DomainSFC) Partition(ctx context.Context, h *grid.Hierarchy, nprocs int) (*Assignment, error) {
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}
	us := d.UnitSize
	if us < 1 {
		us = 1
	}
	sig := h.Signature()
	hi, err := sharedHierIndex(ctx, h, sig)
	if err != nil {
		return nil, err
	}
	chain, err := domainChain(hi, sig, d.Curve, us)
	if err != nil {
		return nil, err
	}
	owners := cutChain(chain, nprocs)
	a := &Assignment{NumProcs: nprocs}
	for i, u := range chain {
		if i%ctxBatch == 0 {
			if err := hi.check(); err != nil {
				return nil, err
			}
		}
		hi.columnFragments(u.box, owners[i], &a.Fragments)
	}
	a.Fragments = mergeFragments(a.Fragments)
	return a, nil
}
