package partition

import (
	"context"
	"fmt"
	"sort"

	"samr/internal/grid"
	"samr/internal/sfc"
)

// DomainSFC is a strictly domain-based composite-grid partitioner: the
// base domain is chopped into atomic units, each unit carries its whole
// column of overlaid refinements (all levels cut identically), the units
// are ordered along a space-filling curve, and the resulting chain is
// cut into near-equal-workload processor portions.
//
// This is the classic domain-based scheme of Parashar & Browne (and of
// the first author's earlier work) the paper describes: it eliminates
// inter-level communication by construction, at the price of potentially
// intractable load imbalance for deep, localized hierarchies.
type DomainSFC struct {
	// Curve selects the ordering curve (default Hilbert).
	Curve sfc.Curve
	// UnitSize is the atomic-unit edge length in base cells (the
	// "granularity"; the paper's setups use minimum block dimension 2).
	UnitSize int
}

// NewDomainSFC returns a Hilbert-ordered domain-based partitioner with
// the paper's granularity.
func NewDomainSFC() *DomainSFC { return &DomainSFC{Curve: sfc.Hilbert, UnitSize: 2} }

// Name implements Partitioner.
func (d *DomainSFC) Name() string {
	return fmt.Sprintf("domain-%s-u%d", d.Curve, d.UnitSize)
}

// Partition implements Partitioner.
func (d *DomainSFC) Partition(ctx context.Context, h *grid.Hierarchy, nprocs int) (*Assignment, error) {
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}
	us := d.UnitSize
	if us < 1 {
		us = 1
	}
	hi := newHierIndex(ctx, h)
	units, err := hi.unitsOf(h.Levels[0].Boxes, us)
	if err != nil {
		return nil, err
	}
	// Order the units along the curve.
	order := make([]int, len(units))
	keys := make([]int64, len(units))
	for i, u := range units {
		order[i] = i
		keys[i] = sfc.Index(d.Curve, u.box.Lo[0]/us, u.box.Lo[1]/us)
	}
	sortByKeys(order, keys)
	ordered := make([]unit, len(units))
	for i, oi := range order {
		ordered[i] = units[oi]
	}
	owners := cutChain(ordered, nprocs)
	a := &Assignment{NumProcs: nprocs}
	for i, u := range ordered {
		if i%ctxBatch == 0 {
			if err := hi.check(); err != nil {
				return nil, err
			}
		}
		hi.columnFragments(u.box, owners[i], &a.Fragments)
	}
	a.Fragments = mergeFragments(a.Fragments)
	return a, nil
}

// sortByKeys sorts order (and keys, in tandem) ascending by key. The
// sort is stable: equal keys keep their original relative order, which
// the curve orderings rely on for deterministic unit chains.
func sortByKeys(order []int, keys []int64) {
	type kv struct {
		k int64
		o int
	}
	pairs := make([]kv, len(order))
	for i := range pairs {
		pairs[i] = kv{keys[i], order[i]}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	for i, p := range pairs {
		keys[i], order[i] = p.k, p.o
	}
}
