package partition

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"samr/internal/geom"
	"samr/internal/grid"
	"samr/internal/sfc"
)

// memoPartitioners enumerates every partitioner family across curves
// and configurations — the sweep of the memoized-vs-fresh property.
func memoPartitioners() map[string]func() Partitioner {
	return map[string]func() Partitioner{
		"domain-hilbert": func() Partitioner { return &DomainSFC{Curve: sfc.Hilbert, UnitSize: 2} },
		"domain-morton":  func() Partitioner { return &DomainSFC{Curve: sfc.Morton, UnitSize: 4} },
		"domain-rowmaj":  func() Partitioner { return &DomainSFC{Curve: sfc.RowMajor, UnitSize: 1} },
		"patch":          func() Partitioner { return NewPatchBased() },
		"patch-o2":       func() Partitioner { return &PatchBased{MaxOverIdeal: 2} },
		"hybrid-default": func() Partitioner { return NewNatureFable() },
		"hybrid-whole": func() Partitioner {
			return &NatureFable{Curve: sfc.Morton, AtomicUnit: 8, Groups: 2, FractionalBlocking: false}
		},
		"hybrid-u1": func() Partitioner {
			return &NatureFable{Curve: sfc.Hilbert, AtomicUnit: 1, Groups: 4, FractionalBlocking: true}
		},
		"postmap": func() Partitioner { return NewPostMapped(NewDomainSFC()) },
	}
}

// memoHierarchies returns structurally distinct hierarchies: deep
// refinement, flat base-only, and a shifted variant (distinct
// signature, same shape class).
func memoHierarchies() map[string]*grid.Hierarchy {
	deep := testHierarchy()
	flat := grid.NewHierarchy(geom.NewBox2(0, 0, 24, 24), 2)
	shifted := grid.NewHierarchy(geom.NewBox2(0, 0, 32, 32), 2)
	shifted.Levels = append(shifted.Levels, grid.Level{Boxes: geom.BoxList{
		geom.NewBox2(8, 8, 24, 24),
	}})
	return map[string]*grid.Hierarchy{"deep": deep, "flat": flat, "shifted": shifted}
}

// TestMemoizedEqualsFresh is the memoization-soundness property test:
// for every partitioner family, curve, and processor count, a Partition
// served from warm caches must be deep-equal to a cold-cache run. The
// warm run is the second of two consecutive calls; the fresh reference
// recomputes after a full cache flush.
func TestMemoizedEqualsFresh(t *testing.T) {
	ctx := context.Background()
	for hname, h := range memoHierarchies() {
		for pname, mk := range memoPartitioners() {
			for _, np := range []int{1, 3, 16} {
				flushChainCaches()
				cold, err := mk().Partition(ctx, h, np)
				if err != nil {
					t.Fatalf("%s/%s/np=%d cold: %v", hname, pname, np, err)
				}
				warm, err := mk().Partition(ctx, h, np)
				if err != nil {
					t.Fatalf("%s/%s/np=%d warm: %v", hname, pname, np, err)
				}
				if !reflect.DeepEqual(cold, warm) {
					t.Errorf("%s/%s/np=%d: warm result diverged from cold", hname, pname, np)
				}
				flushChainCaches()
				fresh, err := mk().Partition(ctx, h, np)
				if err != nil {
					t.Fatalf("%s/%s/np=%d fresh: %v", hname, pname, np, err)
				}
				if !reflect.DeepEqual(cold, fresh) {
					t.Errorf("%s/%s/np=%d: fresh recomputation diverged", hname, pname, np)
				}
				if err := warm.Validate(h); err != nil {
					t.Errorf("%s/%s/np=%d: %v", hname, pname, np, err)
				}
			}
		}
	}
}

// TestChainSharedAcrossNProcs: the unit chain is nprocs-independent, so
// an nprocs sweep after one cold call must be all cache hits (no new
// misses), while still producing valid distinct assignments.
func TestChainSharedAcrossNProcs(t *testing.T) {
	ctx := context.Background()
	h := testHierarchy()
	flushChainCaches()
	d := &DomainSFC{Curve: sfc.Hilbert, UnitSize: 2}
	if _, err := d.Partition(ctx, h, 2); err != nil {
		t.Fatal(err)
	}
	_, missesBefore, _, _, _ := CacheStats()
	for _, np := range []int{3, 5, 8, 16, 64} {
		a, err := d.Partition(ctx, h, np)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Validate(h); err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
	}
	if _, missesAfter, _, _, _ := CacheStats(); missesAfter != missesBefore {
		t.Fatalf("nprocs sweep recomputed chains: misses %d -> %d", missesBefore, missesAfter)
	}
}

// TestCancelledPartitionNeverPoisonsMemo: a Partition aborted by
// cancellation (the leader of a cold chain build) must leave the memo
// empty of partial artifacts — the next live call recomputes and
// matches a fully fresh run.
func TestCancelledPartitionNeverPoisonsMemo(t *testing.T) {
	h := testHierarchy()
	const np = 8
	for pname, mk := range memoPartitioners() {
		flushChainCaches()
		fresh, err := mk().Partition(context.Background(), h, np)
		if err != nil {
			t.Fatal(err)
		}
		// Sweep a few cancellation points across a cold cache; every
		// aborted call must leave the cache unpoisoned.
		total := pollsOf(t, mk, h, np)
		for _, frac := range []int{1, 2, 4} {
			n := total / (frac + 1)
			flushChainCaches()
			if a, err := mk().Partition(newCountdownCtx(n), h, np); err == nil || a != nil {
				t.Fatalf("%s: cancel at poll %d returned (%v, %v)", pname, n, a, err)
			}
			got, err := mk().Partition(context.Background(), h, np)
			if err != nil {
				t.Fatalf("%s: post-cancel recompute: %v", pname, err)
			}
			if !reflect.DeepEqual(fresh, got) {
				t.Errorf("%s: post-cancel result diverged from fresh", pname)
			}
		}
	}
}

// TestConcurrentPartitionsShareAndAgree: hammering one hierarchy from
// many goroutines (mixed nprocs) must produce assignments deep-equal to
// the sequential result — the shared chain artifacts are read-only.
func TestConcurrentPartitionsShareAndAgree(t *testing.T) {
	ctx := context.Background()
	h := testHierarchy()
	flushChainCaches()
	want := map[int]*Assignment{}
	for _, np := range []int{3, 8, 16} {
		a, err := NewNatureFable().Partition(ctx, h, np)
		if err != nil {
			t.Fatal(err)
		}
		want[np] = a
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			np := []int{3, 8, 16}[g%3]
			a, err := NewNatureFable().Partition(ctx, h, np)
			if err != nil {
				t.Error(err)
				return
			}
			if !reflect.DeepEqual(want[np], a) {
				t.Errorf("goroutine %d (np=%d): diverged from sequential result", g, np)
			}
		}(g)
	}
	wg.Wait()
}

// TestPreCancelledSharedIndex: a pre-cancelled context fails inside the
// shared-index lookup too, with a proper context error.
func TestPreCancelledSharedIndex(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	flushChainCaches()
	if _, err := NewDomainSFC().Partition(ctx, testHierarchy(), 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}
