package partition

import (
	"context"
	"math/rand"
	"testing"

	"samr/internal/geom"
	"samr/internal/grid"
	"samr/internal/sfc"
)

// mustPartition runs p with a background context and fails the test on
// error (impossible without cancellation).
func mustPartition(t testing.TB, p Partitioner, h *grid.Hierarchy, np int) *Assignment {
	t.Helper()
	a, err := p.Partition(context.Background(), h, np)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// testHierarchy builds a 3-level hierarchy with two separated refined
// regions, one of which carries a level-2 patch.
func testHierarchy() *grid.Hierarchy {
	h := grid.NewHierarchy(geom.NewBox2(0, 0, 32, 32), 2)
	h.Levels = append(h.Levels, grid.Level{Boxes: geom.BoxList{
		geom.NewBox2(4, 4, 16, 16),   // level-1 patch (level-1 space)
		geom.NewBox2(40, 40, 56, 60), // second refined region
	}})
	h.Levels = append(h.Levels, grid.Level{Boxes: geom.BoxList{
		geom.NewBox2(12, 12, 28, 28), // nested in the first L1 patch
	}})
	return h
}

func allPartitioners() []Partitioner {
	return []Partitioner{
		NewDomainSFC(),
		&DomainSFC{Curve: sfc.Morton, UnitSize: 4},
		NewPatchBased(),
		NewNatureFable(),
		&NatureFable{Curve: sfc.Morton, AtomicUnit: 4, Groups: 2, FractionalBlocking: false},
	}
}

func TestHierarchyFixtureValid(t *testing.T) {
	if err := testHierarchy().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAllPartitionersProduceValidAssignments(t *testing.T) {
	h := testHierarchy()
	for _, p := range allPartitioners() {
		for _, np := range []int{1, 2, 4, 16, 32} {
			a := mustPartition(t, p, h, np)
			if err := a.Validate(h); err != nil {
				t.Errorf("%s procs=%d: %v", p.Name(), np, err)
			}
		}
	}
}

func TestPartitionUnrefinedHierarchy(t *testing.T) {
	h := grid.NewHierarchy(geom.NewBox2(0, 0, 16, 16), 2)
	for _, p := range allPartitioners() {
		a := mustPartition(t, p, h, 4)
		if err := a.Validate(h); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
		if imb := a.Imbalance(h); imb > 30 {
			t.Errorf("%s: imbalance %f%% on a flat grid", p.Name(), imb)
		}
	}
}

func TestDomainSFCBalancesLoad(t *testing.T) {
	h := testHierarchy()
	a := mustPartition(t, NewDomainSFC(), h, 8)
	if imb := a.Imbalance(h); imb > 60 {
		t.Errorf("domain SFC imbalance = %f%%, want moderate", imb)
	}
}

func TestDomainSFCSingleProc(t *testing.T) {
	h := testHierarchy()
	a := mustPartition(t, NewDomainSFC(), h, 1)
	if imb := a.Imbalance(h); imb != 0 {
		t.Errorf("single-proc imbalance = %f", imb)
	}
	for _, f := range a.Fragments {
		if f.Owner != 0 {
			t.Fatalf("single-proc fragment owned by %d", f.Owner)
		}
	}
}

func TestDomainSFCKeepsColumnsTogether(t *testing.T) {
	// Domain-based property: for any base-space unit, all levels above
	// it share one owner -> zero inter-level crossings.
	h := testHierarchy()
	a := mustPartition(t, NewDomainSFC(), h, 8)
	ownerAt := map[geom.IntVect]int{}
	for _, f := range a.Fragments {
		if f.Level != 0 {
			continue
		}
		f.Box.Cells(func(p geom.IntVect) { ownerAt[p] = f.Owner })
	}
	for _, f := range a.Fragments {
		if f.Level == 0 {
			continue
		}
		fac := 1
		for i := 0; i < f.Level; i++ {
			fac *= h.RefRatio
		}
		f.Box.Cells(func(p geom.IntVect) {
			base := geom.IV2(floorDivT(p[0], fac), floorDivT(p[1], fac))
			if ownerAt[base] != f.Owner {
				t.Fatalf("level %d cell %v owner %d != column owner %d",
					f.Level, p, f.Owner, ownerAt[base])
			}
		})
		if t.Failed() {
			return
		}
	}
}

func floorDivT(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func TestPatchBasedBalancesEachLevel(t *testing.T) {
	h := testHierarchy()
	a := mustPartition(t, NewPatchBased(), h, 4)
	if err := a.Validate(h); err != nil {
		t.Fatal(err)
	}
	// With splitting enabled, global imbalance should be moderate.
	if imb := a.Imbalance(h); imb > 80 {
		t.Errorf("patch-based imbalance = %f%%", imb)
	}
}

func TestPatchBasedSplitsHugePatches(t *testing.T) {
	h := grid.NewHierarchy(geom.NewBox2(0, 0, 64, 64), 2)
	a := mustPartition(t, NewPatchBased(), h, 8)
	// A single 64x64 patch over 8 procs must split: more than 1 fragment.
	if len(a.Fragments) < 8 {
		t.Errorf("expected the base patch to split into >= 8 fragments, got %d", len(a.Fragments))
	}
	if imb := a.Imbalance(h); imb > 30 {
		t.Errorf("imbalance after splitting = %f%%", imb)
	}
}

func TestNatureFableSeparatesHuesAndCores(t *testing.T) {
	h := testHierarchy()
	nf := NewNatureFable()
	cores := nf.coreRegions(h)
	if len(cores) == 0 {
		t.Fatal("no core regions found for a refined hierarchy")
	}
	// Core regions must cover both refined footprints.
	for _, fp := range h.RefinedFootprint() {
		if !cores.CoversBox(fp) {
			t.Errorf("core regions do not cover footprint %v", fp)
		}
	}
	// And be disjoint.
	if !cores.Disjoint() {
		t.Error("core regions overlap")
	}
}

func TestNatureFableCoreOwnersDifferFromHueOwners(t *testing.T) {
	h := testHierarchy()
	a := mustPartition(t, NewNatureFable(), h, 8)
	if err := a.Validate(h); err != nil {
		t.Fatal(err)
	}
	// Refined-level fragments should use the core processor range only.
	coreOwners := map[int]bool{}
	for _, f := range a.Fragments {
		if f.Level > 0 {
			coreOwners[f.Owner] = true
		}
	}
	if len(coreOwners) < 2 {
		t.Errorf("core work concentrated on %d processors", len(coreOwners))
	}
}

func TestNatureFableGroupsClamp(t *testing.T) {
	h := testHierarchy()
	nf := &NatureFable{Curve: sfc.Hilbert, AtomicUnit: 2, Groups: 64, FractionalBlocking: true}
	a := mustPartition(t, nf, h, 4) // Q far larger than procs
	if err := a.Validate(h); err != nil {
		t.Fatal(err)
	}
}

func TestImbalanceComputation(t *testing.T) {
	h := grid.NewHierarchy(geom.NewBox2(0, 0, 4, 4), 2)
	a := &Assignment{NumProcs: 2, Fragments: []Fragment{
		{Level: 0, Box: geom.NewBox2(0, 0, 4, 3), Owner: 0}, // 12 cells
		{Level: 0, Box: geom.NewBox2(0, 3, 4, 4), Owner: 1}, // 4 cells
	}}
	// max=12, avg=8 -> 50%.
	if imb := a.Imbalance(h); imb < 49.9 || imb > 50.1 {
		t.Errorf("imbalance = %f, want 50", imb)
	}
}

func TestValidateCatchesGaps(t *testing.T) {
	h := grid.NewHierarchy(geom.NewBox2(0, 0, 4, 4), 2)
	a := &Assignment{NumProcs: 1, Fragments: []Fragment{
		{Level: 0, Box: geom.NewBox2(0, 0, 4, 3), Owner: 0},
	}}
	if err := a.Validate(h); err == nil {
		t.Error("Validate should catch uncovered cells")
	}
	b := &Assignment{NumProcs: 1, Fragments: []Fragment{
		{Level: 0, Box: geom.NewBox2(0, 0, 4, 4), Owner: 0},
		{Level: 0, Box: geom.NewBox2(0, 0, 1, 1), Owner: 0},
	}}
	if err := b.Validate(h); err == nil {
		t.Error("Validate should catch overlapping fragments")
	}
	c := &Assignment{NumProcs: 1, Fragments: []Fragment{
		{Level: 0, Box: geom.NewBox2(0, 0, 4, 4), Owner: 3},
	}}
	if err := c.Validate(h); err == nil {
		t.Error("Validate should catch out-of-range owner")
	}
}

func TestCutChainProportions(t *testing.T) {
	units := make([]unit, 100)
	for i := range units {
		units[i] = unit{weight: 10}
	}
	owners := cutChain(units, 4)
	counts := map[int]int{}
	for _, o := range owners {
		counts[o]++
	}
	for p := 0; p < 4; p++ {
		if counts[p] < 20 || counts[p] > 30 {
			t.Errorf("part %d has %d units, want ~25", p, counts[p])
		}
	}
	// Contiguity.
	for i := 1; i < len(owners); i++ {
		if owners[i] < owners[i-1] {
			t.Fatal("cutChain not monotone")
		}
	}
}

func TestCutChainZeroWeights(t *testing.T) {
	units := make([]unit, 10) // all zero weight
	owners := cutChain(units, 3)
	for _, o := range owners {
		if o < 0 || o > 2 {
			t.Fatalf("owner %d out of range", o)
		}
	}
}

func TestMergeFragmentsPreservesCoverage(t *testing.T) {
	frags := []Fragment{
		{Level: 0, Box: geom.NewBox2(0, 0, 2, 4), Owner: 1},
		{Level: 0, Box: geom.NewBox2(2, 0, 4, 4), Owner: 1},
		{Level: 0, Box: geom.NewBox2(4, 0, 8, 4), Owner: 2},
	}
	merged := mergeFragments(frags)
	var vol1, vol2 int64
	for _, f := range merged {
		switch f.Owner {
		case 1:
			vol1 += f.Box.Volume()
		case 2:
			vol2 += f.Box.Volume()
		}
	}
	if vol1 != 16 || vol2 != 16 {
		t.Errorf("merged volumes = %d, %d", vol1, vol2)
	}
	if len(merged) != 2 {
		t.Errorf("expected owner-1 boxes to merge, got %d fragments", len(merged))
	}
}

func TestPartitionersDeterministic(t *testing.T) {
	h := testHierarchy()
	for _, p := range allPartitioners() {
		a1 := mustPartition(t, p, h, 8)
		a2 := mustPartition(t, p, h, 8)
		if len(a1.Fragments) != len(a2.Fragments) {
			t.Fatalf("%s: nondeterministic fragment count", p.Name())
		}
		for i := range a1.Fragments {
			if a1.Fragments[i] != a2.Fragments[i] {
				t.Fatalf("%s: nondeterministic fragment %d", p.Name(), i)
			}
		}
	}
}

func TestPartitionersOnRandomHierarchies(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		h := randomHierarchy(r)
		if err := h.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, p := range allPartitioners() {
			np := 1 + r.Intn(16)
			a := mustPartition(t, p, h, np)
			if err := a.Validate(h); err != nil {
				t.Errorf("trial %d %s procs=%d: %v", trial, p.Name(), np, err)
			}
		}
	}
}

// randomHierarchy builds a random valid 2-3 level hierarchy.
func randomHierarchy(r *rand.Rand) *grid.Hierarchy {
	h := grid.NewHierarchy(geom.NewBox2(0, 0, 32, 32), 2)
	var l1 geom.BoxList
	for i := 0; i < 1+r.Intn(3); i++ {
		x, y := r.Intn(48), r.Intn(48)
		b := geom.NewBox2(x, y, minInt(x+4+r.Intn(12), 64), minInt(y+4+r.Intn(12), 64))
		ok := true
		for _, e := range l1 {
			if e.Intersects(b) {
				ok = false
			}
		}
		if ok && !b.Empty() {
			l1 = append(l1, b)
		}
	}
	if len(l1) > 0 {
		h.Levels = append(h.Levels, grid.Level{Boxes: l1})
		if r.Intn(2) == 0 {
			f := l1[0].Refine(2)
			b2 := geom.NewBox2(f.Lo[0], f.Lo[1], f.Lo[0]+(f.Size(0)/2), f.Lo[1]+(f.Size(1)/2))
			if !b2.Empty() {
				h.Levels = append(h.Levels, grid.Level{Boxes: geom.BoxList{b2}})
			}
		}
	}
	return h
}
