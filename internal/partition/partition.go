// Package partition implements SAMR grid-hierarchy partitioners in the
// three families the paper surveys (section 2.2): domain-based
// (space-filling-curve composite partitioning), patch-based (per-level
// distribution), and hybrid (a Nature+Fable-style partitioner with
// Hue/Core separation, bi-levels and blocking). All partitioners produce
// the same Assignment representation, which the execution simulator
// consumes.
package partition

import (
	"context"
	"fmt"
	"sort"

	"samr/internal/geom"
	"samr/internal/grid"
)

// Fragment is a box of cells on one level assigned to one processor.
type Fragment struct {
	Level int
	Box   geom.Box
	Owner int
}

// Assignment is a complete distribution of a hierarchy over processors.
type Assignment struct {
	NumProcs  int
	Fragments []Fragment
}

// Partitioner decomposes a hierarchy across nprocs processors.
//
// This is the stable execution contract of the whole stack: a
// partitioning request is bounded by its context. Implementations poll
// ctx at level/box-batch granularity (not per cell) and abort promptly
// once it is cancelled or its deadline expires. On cancellation they
// return a nil Assignment and ctx's error (wrapped, so errors.Is
// against context.Canceled / context.DeadlineExceeded holds) — never a
// partial result. A nil error implies the Assignment covers every cell
// of every level exactly once.
type Partitioner interface {
	// Name identifies the partitioner in experiment output.
	Name() string
	// Partition distributes h across nprocs processors, honouring ctx.
	Partition(ctx context.Context, h *grid.Hierarchy, nprocs int) (*Assignment, error)
}

// checkCtx is the shared cancellation poll of the partitioners: nil
// while the request is live, a wrapped context error once it is not.
// It is called at batch boundaries (per level, per region box, every
// batch of units), keeping the poll cost far off the per-cell paths.
func checkCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("partition: %w", err)
	}
	return nil
}

// ctxBatch is the unit-loop stride between cancellation polls: loops
// over atomic units or fragments re-check their context every ctxBatch
// iterations.
const ctxBatch = 64

// LevelBoxes returns the fragments of level l grouped per owner.
func (a *Assignment) LevelBoxes(level int) map[int]geom.BoxList {
	out := make(map[int]geom.BoxList)
	for _, f := range a.Fragments {
		if f.Level == level && !f.Box.Empty() {
			out[f.Owner] = append(out[f.Owner], f.Box)
		}
	}
	return out
}

// NumLevels returns one more than the highest level index present.
func (a *Assignment) NumLevels() int {
	n := 0
	for _, f := range a.Fragments {
		if f.Level+1 > n {
			n = f.Level + 1
		}
	}
	return n
}

// Loads returns the computational load per processor: cell count
// weighted by the level's local-step factor (level l work is
// vol * RefRatio^l per coarse step).
func (a *Assignment) Loads(h *grid.Hierarchy) []int64 {
	loads := make([]int64, a.NumProcs)
	for _, f := range a.Fragments {
		loads[f.Owner] += f.Box.Volume() * h.StepFactor(f.Level)
	}
	return loads
}

// Imbalance returns the load-imbalance percentage: 100 * max/avg - 100,
// the de-facto standard metric the paper cites ("the load of the
// heaviest loaded processor divided by the average load"). Returns 0
// for an empty assignment.
func (a *Assignment) Imbalance(h *grid.Hierarchy) float64 {
	return ImbalanceOf(a.Loads(h))
}

// ImbalanceOf derives the load-imbalance percentage from an
// already-computed per-processor load vector, so callers that need
// both the loads and the metric (the simulator) build the vector once.
func ImbalanceOf(loads []int64) float64 {
	var max, sum int64
	for _, l := range loads {
		if l > max {
			max = l
		}
		sum += l
	}
	if sum == 0 {
		return 0
	}
	avg := float64(sum) / float64(len(loads))
	return 100*float64(max)/avg - 100
}

// Validate checks that the assignment covers every level of h exactly:
// fragments are disjoint, within the level's boxes, and their total
// volume matches the level's.
func (a *Assignment) Validate(h *grid.Hierarchy) error {
	if a.NumProcs < 1 {
		return fmt.Errorf("partition: no processors")
	}
	for l, lev := range h.Levels {
		var frags geom.BoxList
		for _, f := range a.Fragments {
			if f.Level == l {
				if f.Owner < 0 || f.Owner >= a.NumProcs {
					return fmt.Errorf("partition: level %d fragment %v has bad owner %d", l, f.Box, f.Owner)
				}
				frags = append(frags, f.Box)
			}
		}
		if !frags.Disjoint() {
			return fmt.Errorf("partition: level %d fragments overlap", l)
		}
		if got, want := frags.TotalVolume(), lev.NumPoints(); got != want {
			return fmt.Errorf("partition: level %d covers %d of %d points", l, got, want)
		}
		for _, f := range frags {
			if !lev.Boxes.CoversBox(f) {
				return fmt.Errorf("partition: level %d fragment %v outside level boxes", l, f)
			}
		}
	}
	return nil
}

// unit is an atomic partitioning unit: a base-level box plus the
// composite workload of the grid column above it.
type unit struct {
	box    geom.Box // base-level index space
	weight int64
}

// hierIndex is a per-partition-call cache of one BoxIndex per hierarchy
// level, carrying the call's context for batch-granular cancellation.
// Column weights, band weights, and fragment generation all scan
// "this unit's footprint against every box of level l"; the index turns
// each such scan from O(boxes) into a candidate lookup. A hierIndex is
// built once per Partition invocation and is not shared across
// goroutines (the scratch buffer is not synchronized).
type hierIndex struct {
	ctx    context.Context
	h      *grid.Hierarchy
	levels []*geom.BoxIndex
	buf    []int
}

func newHierIndex(ctx context.Context, h *grid.Hierarchy) *hierIndex {
	hi := &hierIndex{ctx: ctx, h: h, levels: make([]*geom.BoxIndex, len(h.Levels))}
	for l, lev := range h.Levels {
		hi.levels[l] = geom.NewBoxIndex(lev.Boxes)
	}
	return hi
}

// check polls the partition call's context.
func (hi *hierIndex) check() error { return checkCtx(hi.ctx) }

// unitsOf chops the given base-level region into atomic units of size
// unitSize and weights each by the full-depth workload of the column
// above it. Zero-weight units (possible only if region lies outside the
// hierarchy) are kept so coverage stays exact. Cancellation is polled
// once per unit row.
func (hi *hierIndex) unitsOf(region geom.BoxList, unitSize int) ([]unit, error) {
	return hi.unitsOfWeighted(region, unitSize, hi.columnWeight)
}

// unitsOfWeighted is unitsOf with a caller-chosen unit weight (the
// hybrid partitioner weights units by a level band rather than the full
// column).
func (hi *hierIndex) unitsOfWeighted(region geom.BoxList, unitSize int, weight func(geom.Box) int64) ([]unit, error) {
	var out []unit
	for _, rb := range region {
		for y := rb.Lo[1]; y < rb.Hi[1]; y += unitSize {
			if err := hi.check(); err != nil {
				return nil, err
			}
			for x := rb.Lo[0]; x < rb.Hi[0]; x += unitSize {
				ub := geom.NewBox2(x, y, minInt(x+unitSize, rb.Hi[0]), minInt(y+unitSize, rb.Hi[1]))
				out = append(out, unit{box: ub, weight: weight(ub)})
			}
		}
	}
	return out, nil
}

// columnWeight returns the workload of the hierarchy column over the
// base-space box ub: sum over levels of overlap volume times the level's
// step factor.
func (hi *hierIndex) columnWeight(ub geom.Box) int64 {
	var w int64
	fine := ub
	for l := range hi.levels {
		if l > 0 {
			fine = fine.Refine(hi.h.RefRatio)
		}
		w += hi.levels[l].QueryVolume(fine) * hi.h.StepFactor(l)
	}
	return w
}

// bandWeight is columnWeight restricted to levels [lo, hiLevel].
func (hi *hierIndex) bandWeight(ub geom.Box, lo, hiLevel int) int64 {
	var w int64
	fine := ub
	for l := 0; l <= hiLevel && l < len(hi.levels); l++ {
		if l > 0 {
			fine = fine.Refine(hi.h.RefRatio)
		}
		if l < lo {
			continue
		}
		w += hi.levels[l].QueryVolume(fine) * hi.h.StepFactor(l)
	}
	return w
}

// bandFragments appends the fragments of levels [loLevel, hiLevel] lying
// over the base-space box ub, assigned to owner, preserving the level
// box order of the hierarchy.
func (hi *hierIndex) bandFragments(ub geom.Box, loLevel, hiLevel, owner int, out *[]Fragment) {
	fine := ub
	for l := 0; l <= hiLevel && l < len(hi.levels); l++ {
		if l > 0 {
			fine = fine.Refine(hi.h.RefRatio)
		}
		if l < loLevel {
			continue
		}
		hi.buf = hi.levels[l].AppendQuery(hi.buf[:0], fine)
		for _, bi := range hi.buf {
			if iv := hi.levels[l].Box(bi).Intersect(fine); !iv.Empty() {
				*out = append(*out, Fragment{Level: l, Box: iv, Owner: owner})
			}
		}
	}
}

// columnFragments converts one owned base-space unit into per-level
// fragments: the unit's column intersected with every level's boxes.
func (hi *hierIndex) columnFragments(ub geom.Box, owner int, out *[]Fragment) {
	hi.bandFragments(ub, 0, len(hi.levels)-1, owner, out)
}

// cutChain splits the (already ordered) units into parts contiguous
// chunks of near-equal weight (chains-on-chains greedy) and returns the
// part index of each unit.
func cutChain(units []unit, parts int) []int {
	owners := make([]int, len(units))
	if parts < 1 {
		parts = 1
	}
	var total int64
	for _, u := range units {
		total += u.weight
	}
	var acc int64
	p := 0
	for i, u := range units {
		// Advance to the next part when the running total passes the
		// proportional boundary, keeping the last part non-starved.
		for p < parts-1 && acc+u.weight/2 >= total*int64(p+1)/int64(parts) {
			p++
		}
		owners[i] = p
		acc += u.weight
	}
	return owners
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// mergeFragments coalesces mergeable same-level same-owner fragments to
// reduce fragment-count pressure on the simulator. Coverage is
// unchanged. The grouping is a stable in-place (level, owner) sort
// followed by a group sweep writing back into the caller's slice —
// each group's boxes are staged in a scratch list before its (never
// longer) merged form overwrites consumed positions, so no per-call
// map or key slice is built.
func mergeFragments(frags []Fragment) []Fragment {
	sort.SliceStable(frags, func(i, j int) bool {
		if frags[i].Level != frags[j].Level {
			return frags[i].Level < frags[j].Level
		}
		return frags[i].Owner < frags[j].Owner
	})
	out := frags[:0]
	var scratch geom.BoxList
	for start := 0; start < len(frags); {
		level, owner := frags[start].Level, frags[start].Owner
		end := start + 1
		for end < len(frags) && frags[end].Level == level && frags[end].Owner == owner {
			end++
		}
		scratch = scratch[:0]
		for _, f := range frags[start:end] {
			scratch = append(scratch, f.Box)
		}
		merged := scratch.Simplify()
		merged.SortByLo()
		for _, b := range merged {
			out = append(out, Fragment{Level: level, Box: b, Owner: owner})
		}
		start = end
	}
	return out
}
