package partition

import (
	"context"
	"testing"

	"samr/internal/geom"
	"samr/internal/grid"
)

// relabelingPartitioner wraps an inner partitioner and rotates its part
// labels every call — a worst case for migration that post-mapping must
// undo completely.
type relabelingPartitioner struct {
	inner Partitioner
	calls int
}

func (r *relabelingPartitioner) Name() string { return "relabel(" + r.inner.Name() + ")" }

func (r *relabelingPartitioner) Partition(ctx context.Context, h *grid.Hierarchy, nprocs int) (*Assignment, error) {
	a, err := r.inner.Partition(ctx, h, nprocs)
	if err != nil {
		return nil, err
	}
	shift := r.calls
	r.calls++
	out := &Assignment{NumProcs: nprocs, Fragments: make([]Fragment, len(a.Fragments))}
	for i, f := range a.Fragments {
		f.Owner = (f.Owner + shift) % nprocs
		out.Fragments[i] = f
	}
	return out, nil
}

// migrationBetween counts points that changed owner between two
// assignments of the same hierarchy.
func migrationBetween(h *grid.Hierarchy, a, b *Assignment) int64 {
	var moved int64
	for l := range h.Levels {
		ao := a.LevelBoxes(l)
		bo := b.LevelBoxes(l)
		var stayed int64
		for p, pb := range ao {
			if cb, ok := bo[p]; ok {
				stayed += geom.OverlapVolume(pb, cb)
			}
		}
		moved += h.Levels[l].NumPoints() - stayed
	}
	return moved
}

func TestPostMappedUndoesRelabeling(t *testing.T) {
	h := testHierarchy()
	pm := NewPostMapped(&relabelingPartitioner{inner: NewDomainSFC()})
	a1 := mustPartition(t, pm, h, 4)
	a2 := mustPartition(t, pm, h.Clone(), 4)
	if err := a2.Validate(h); err != nil {
		t.Fatal(err)
	}
	// Identical hierarchy + label-rotated inner: post-mapping must
	// restore the previous labels exactly.
	if mv := migrationBetween(h, a1, a2); mv != 0 {
		t.Errorf("post-mapped migration = %d, want 0", mv)
	}
}

func TestPostMappedReducesTotalMigration(t *testing.T) {
	// On a drifting hierarchy, post-mapping must not increase the total
	// migration of the run (per-step comparisons are not meaningful:
	// the two label histories diverge, and the greedy remap optimizes
	// each transition against its own previous labels).
	inner := NewNatureFable()
	pm := NewPostMapped(NewNatureFable())
	var prevRaw, prevPM *Assignment
	var prevH *grid.Hierarchy
	var rawTotal, pmTotal int64
	for step := 0; step < 8; step++ {
		h := grid.NewHierarchy(geom.NewBox2(0, 0, 32, 32), 2)
		s := step * 3
		h.Levels = append(h.Levels, grid.Level{Boxes: geom.BoxList{
			geom.NewBox2(4+s, 4, 24+s, 24),
		}})
		raw := mustPartition(t, inner, h, 6)
		mapped := mustPartition(t, pm, h, 6)
		if err := mapped.Validate(h); err != nil {
			t.Fatal(err)
		}
		if prevH != nil {
			rawTotal += crossMigration(prevH, h, prevRaw, raw)
			pmTotal += crossMigration(prevH, h, prevPM, mapped)
		}
		prevRaw, prevPM, prevH = raw, mapped, h
	}
	if pmTotal > rawTotal {
		t.Errorf("post-mapped total migration %d > raw %d", pmTotal, rawTotal)
	}
}

// crossMigration counts shared points whose owner changed across a
// hierarchy transition (mirrors sim.Migration without importing sim).
func crossMigration(hPrev, hCur *grid.Hierarchy, aPrev, aCur *Assignment) int64 {
	levels := len(hPrev.Levels)
	if len(hCur.Levels) < levels {
		levels = len(hCur.Levels)
	}
	var moved int64
	for l := 0; l < levels; l++ {
		shared := geom.OverlapVolume(hPrev.Levels[l].Boxes, hCur.Levels[l].Boxes)
		po := aPrev.LevelBoxes(l)
		co := aCur.LevelBoxes(l)
		var stayed int64
		for p, pb := range po {
			if cb, ok := co[p]; ok {
				stayed += geom.OverlapVolume(pb, cb)
			}
		}
		moved += shared - stayed
	}
	return moved
}

func TestPostMappedPreservesDecomposition(t *testing.T) {
	// Post-mapping only relabels: loads must be a permutation of the
	// inner partitioner's loads.
	h := testHierarchy()
	inner := NewDomainSFC()
	pm := NewPostMapped(NewDomainSFC())
	mustPartition(t, pm, h, 4) // prime the previous state
	shifted := h.Clone()
	shifted.Levels[1].Boxes[0] = shifted.Levels[1].Boxes[0].Shift(geom.IV2(2, 0))
	raw := mustPartition(t, inner, shifted, 4)
	mapped := mustPartition(t, pm, shifted, 4)
	rawLoads := raw.Loads(shifted)
	mapLoads := mapped.Loads(shifted)
	counts := map[int64]int{}
	for _, l := range rawLoads {
		counts[l]++
	}
	for _, l := range mapLoads {
		counts[l]--
	}
	for v, c := range counts {
		if c != 0 {
			t.Errorf("load multiset changed at %d (delta %d)", v, c)
		}
	}
}

func TestPostMappedReset(t *testing.T) {
	h := testHierarchy()
	pm := NewPostMapped(&relabelingPartitioner{inner: NewDomainSFC()})
	mustPartition(t, pm, h, 4)
	pm.Reset()
	// After reset the wrapper must not try to align with forgotten
	// state; it simply passes the inner result through.
	a := mustPartition(t, pm, h, 4)
	if err := a.Validate(h); err != nil {
		t.Fatal(err)
	}
}

func TestPostMappedProcCountChange(t *testing.T) {
	// Changing the processor count between calls must not panic; the
	// wrapper skips remapping when shapes differ.
	h := testHierarchy()
	pm := NewPostMapped(NewDomainSFC())
	mustPartition(t, pm, h, 4)
	a := mustPartition(t, pm, h, 8)
	if err := a.Validate(h); err != nil {
		t.Fatal(err)
	}
}

func TestRemapLabelsHandlesEmptyParts(t *testing.T) {
	// More processors than work: some parts are empty; the permutation
	// must still be a bijection.
	h := grid.NewHierarchy(geom.NewBox2(0, 0, 4, 4), 2)
	pm := NewPostMapped(NewDomainSFC())
	mustPartition(t, pm, h, 8)
	a := mustPartition(t, pm, h, 8)
	if err := a.Validate(h); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, f := range a.Fragments {
		seen[f.Owner] = true
	}
	for o := range seen {
		if o < 0 || o >= 8 {
			t.Errorf("owner %d out of range", o)
		}
	}
}
