package partition

import (
	"context"
	"fmt"
	"sort"

	"samr/internal/geom"
	"samr/internal/grid"
)

// PatchBased distributes each refinement level independently, in the
// style of SAMRAI/LPARX/KeLP that the paper describes: each newly
// created grid is assigned as a whole to a processor (split first if it
// is much larger than the ideal per-processor share), using
// longest-processing-time (LPT) bin packing per level.
//
// Its characteristic weaknesses — inter-level communication (parents and
// children usually land on different processors) — appear naturally in
// the execution simulator.
type PatchBased struct {
	// MaxOverIdeal splits any patch whose workload exceeds this multiple
	// of the ideal per-processor load; 0 means the default of 1.
	MaxOverIdeal float64
}

// NewPatchBased returns a patch-based partitioner with default
// splitting.
func NewPatchBased() *PatchBased { return &PatchBased{MaxOverIdeal: 1} }

// Name implements Partitioner.
func (p *PatchBased) Name() string { return "patch-lpt" }

// MemoKey implements the optional content-key interface of the
// memoization layers: the display name omits MaxOverIdeal, but the
// partitioner's output depends on it, so the cache key must not.
func (p *PatchBased) MemoKey() string {
	over := p.MaxOverIdeal
	if over <= 0 {
		over = 1
	}
	return fmt.Sprintf("patch-lpt-o%g", over)
}

// Partition implements Partitioner. Cancellation is polled per level
// and per batch of pieces during bin packing.
func (p *PatchBased) Partition(ctx context.Context, h *grid.Hierarchy, nprocs int) (*Assignment, error) {
	over := p.MaxOverIdeal
	if over <= 0 {
		over = 1
	}
	a := &Assignment{NumProcs: nprocs}
	loads := make([]int64, nprocs) // global loads: balance across levels too
	for l, lev := range h.Levels {
		if err := checkCtx(ctx); err != nil {
			return nil, err
		}
		w := h.StepFactor(l)
		var total int64
		for _, b := range lev.Boxes {
			total += b.Volume() * w
		}
		if total == 0 {
			continue
		}
		ideal := float64(total) / float64(nprocs)
		// Split oversized patches so no piece exceeds over*ideal.
		var pieces geom.BoxList
		queue := lev.Boxes.Clone()
		for len(queue) > 0 {
			b := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if float64(b.Volume()*w) > over*ideal && b.Size(b.LongestDim()) >= 2 {
				d := b.LongestDim()
				lo, hi := b.ChopDim(d, (b.Lo[d]+b.Hi[d])/2)
				queue = append(queue, lo, hi)
				continue
			}
			pieces = append(pieces, b)
		}
		// LPT: largest piece first onto the least-loaded processor.
		sort.Slice(pieces, func(i, j int) bool {
			if pieces[i].Volume() != pieces[j].Volume() {
				return pieces[i].Volume() > pieces[j].Volume()
			}
			return lessLo(pieces[i], pieces[j])
		})
		for i, b := range pieces {
			if i%ctxBatch == 0 {
				if err := checkCtx(ctx); err != nil {
					return nil, err
				}
			}
			min := 0
			for q := 1; q < nprocs; q++ {
				if loads[q] < loads[min] {
					min = q
				}
			}
			a.Fragments = append(a.Fragments, Fragment{Level: l, Box: b, Owner: min})
			loads[min] += b.Volume() * w
		}
	}
	a.Fragments = mergeFragments(a.Fragments)
	return a, nil
}

func lessLo(a, b geom.Box) bool {
	for d := geom.MaxDim - 1; d >= 0; d-- {
		if a.Lo[d] != b.Lo[d] {
			return a.Lo[d] < b.Lo[d]
		}
	}
	return false
}
