// Content-addressed memoization under the unit-based partitioners.
//
// The atomic-unit decomposition of a hierarchy — chopping a base-space
// region into unit-sized boxes, weighting each by the workload of the
// level band above it, and ordering the result along a space-filling
// curve — depends only on (hierarchy content, curve, unit size, band),
// never on the processor count. The chain caches below therefore key
// those artifacts by the hierarchy's content signature and share them
// across DomainSFC, the hybrid family, and every nprocs sweep; only
// the chain cut (cutChain/cutUnits) and fragment generation remain
// per-call. Cached artifacts are immutable: readers cut and scan them
// but never reorder or reweight in place. SAMR traces are
// regrid-sparse (consecutive snapshots are usually content-identical)
// and experiments replay the same snapshots under many configurations,
// which is what makes this layer pay.
//
// Everything here is bit-identical to the uncached path by
// construction: the cached build runs exactly the code a cold call
// runs, and equal signatures imply equal hierarchy encodings, so equal
// inputs. A cancelled leader stores nothing (memo.Cache contract), so
// an aborted Partition never poisons the cache for later calls.
package partition

import (
	"context"
	"sort"

	"samr/internal/geom"
	"samr/internal/grid"
	"samr/internal/memo"
	"samr/internal/sfc"
)

// chainKey addresses one cached decomposition artifact: the hierarchy
// content hash plus the curve and (clamped) atomic-unit size. The band
// and region of each artifact are implied by the cache it lives in —
// domainChains carry the full column over the base domain, nfPreps
// carry the hybrid's hue band (levels 0-0 over the hue region) and
// core column (all levels over the core region), both pure functions
// of the hierarchy content.
type chainKey struct {
	sig   geom.Signature
	curve sfc.Curve
	unit  int
}

// Cache bounds: an entry is a few KB of units (per distinct snapshot,
// curve, and unit size), and experiment pipelines revisit a few
// hundred distinct snapshots, so these bounds keep the whole working
// set resident without letting a long-running daemon grow unbounded.
const (
	chainCacheCap = 512
	indexCacheCap = 256
)

var (
	// domainChains caches the DomainSFC artifact: the base domain
	// chopped into units, weighted by the full column, SFC-ordered.
	domainChains = memo.New[chainKey, []unit](chainCacheCap)
	// nfPreps caches the Nature+Fable pre-partitioning artifact (hue
	// separation plus the hue and coarse-core unit chains).
	nfPreps = memo.New[chainKey, *nfPrep](chainCacheCap)
	// levelIndexes caches one BoxIndex per hierarchy level, keyed by
	// content signature. The indexes capture cloned box lists, so a
	// cached entry never aliases caller-owned storage.
	levelIndexes = memo.New[geom.Signature, []*geom.BoxIndex](indexCacheCap)
)

// CacheStats returns the summed hit/miss/shared counters and occupancy
// of the partition-layer memo caches (unit chains, hybrid preps, level
// indexes), for /v1/stats and samrbench -cachestats.
func CacheStats() (hits, misses, shared uint64, entries, capacity int) {
	for _, s := range []interface {
		Stats() (uint64, uint64, uint64)
		Len() int
		Capacity() int
	}{domainChains, nfPreps, levelIndexes} {
		h, m, sh := s.Stats()
		hits += h
		misses += m
		shared += sh
		entries += s.Len()
		capacity += s.Capacity()
	}
	return
}

// flushChainCaches drops every cached artifact (tests use it to
// compare memoized results against cold recomputation).
func flushChainCaches() {
	domainChains.Flush()
	nfPreps.Flush()
	levelIndexes.Flush()
}

// sharedHierIndex returns the per-level BoxIndexes of h, cached by
// content signature, wrapped in a per-call hierIndex carrying the
// call's context and scratch buffer. The indexes are built over cloned
// box lists and are safe for concurrent queries; the hierIndex wrapper
// itself must not be shared across goroutines.
func sharedHierIndex(ctx context.Context, h *grid.Hierarchy, sig geom.Signature) (*hierIndex, error) {
	levels, _, err := levelIndexes.GetOrCompute(ctx, sig, func() ([]*geom.BoxIndex, error) {
		ls := make([]*geom.BoxIndex, len(h.Levels))
		for l, lev := range h.Levels {
			ls[l] = geom.NewBoxIndex(lev.Boxes.Clone())
		}
		return ls, nil
	})
	if err != nil {
		return nil, err
	}
	if len(levels) != len(h.Levels) {
		// A content-hash collision would be needed to get here; rebuild
		// privately rather than serve a wrong shape.
		return newHierIndex(ctx, h), nil
	}
	return &hierIndex{ctx: ctx, h: h, levels: levels}, nil
}

// domainChain returns the SFC-ordered full-column unit chain of h's
// base domain, cached by (signature, curve, unit size). hi carries the
// calling request's context: a cancelled build stores nothing.
func domainChain(hi *hierIndex, sig geom.Signature, curve sfc.Curve, unitSize int) ([]unit, error) {
	chain, _, err := domainChains.GetOrCompute(hi.ctx, chainKey{sig: sig, curve: curve, unit: unitSize}, func() ([]unit, error) {
		units, err := hi.unitsOf(hi.h.Levels[0].Boxes, unitSize)
		if err != nil {
			return nil, err
		}
		orderUnitsByCurve(units, curve, unitSize)
		return units, nil
	})
	return chain, err
}

// nfPrep is the nprocs-independent part of a Nature+Fable partition:
// the hue/core natural-region separation and the two reusable unit
// chains (hue band, coarse core column). Everything downstream —
// processor split, chain cuts, per-group bi-level blocking — depends
// on nprocs and stays per-call.
type nfPrep struct {
	// hue is the unrefined base region (base domain minus core
	// footprints), simplified and sorted.
	hue geom.BoxList
	// hueW is the hue workload (level 0 only, step factor 1).
	hueW int64
	// hueUnits is the hue region chopped and weighted over the base
	// band (levels 0-0), SFC-ordered.
	hueUnits []unit
	// coreUnits is the core region chopped and weighted over the full
	// column, SFC-ordered: the coarse-partitioning chain.
	coreUnits []unit
}

// nfPrepOf returns the cached Nature+Fable pre-partitioning artifact
// for h under (curve, unit size).
func nfPrepOf(hi *hierIndex, sig geom.Signature, curve sfc.Curve, unitSize int) (*nfPrep, error) {
	prep, _, err := nfPreps.GetOrCompute(hi.ctx, chainKey{sig: sig, curve: curve, unit: unitSize}, func() (*nfPrep, error) {
		h := hi.h
		fp := h.RefinedFootprint()
		var cores geom.BoxList
		if len(fp) > 0 {
			cores = makeCoreRegions(fp)
		}
		hue := h.Levels[0].Boxes.Clone()
		for _, c := range cores {
			hue = hue.SubtractBox(c)
		}
		hue = hue.Simplify()
		hue.SortByLo()
		if err := hi.check(); err != nil {
			return nil, err
		}
		p := &nfPrep{hue: hue, hueW: hue.TotalVolume()}
		if p.hueW > 0 {
			units, err := hi.unitsOfWeighted(hue, unitSize, func(ub geom.Box) int64 {
				return hi.bandWeight(ub, 0, 0)
			})
			if err != nil {
				return nil, err
			}
			orderUnitsByCurve(units, curve, unitSize)
			p.hueUnits = units
		}
		if len(cores) > 0 {
			units, err := hi.unitsOf(cores, unitSize)
			if err != nil {
				return nil, err
			}
			orderUnitsByCurve(units, curve, unitSize)
			p.coreUnits = units
		}
		return p, nil
	})
	return prep, err
}

// orderUnitsByCurve sorts units stably along the curve (in place) by
// the index of each unit's lower corner coarsened by the unit size.
// The sort orders an index permutation keyed by a parallel key slice
// and applies it with a cycle walk, so no per-call pair slice or
// second unit copy is allocated.
func orderUnitsByCurve(units []unit, c sfc.Curve, unitSize int) {
	n := len(units)
	if n < 2 {
		return
	}
	keys := make([]int64, n)
	perm := make([]int, n)
	for i, u := range units {
		keys[i] = sfc.Index(c, u.box.Lo[0]/unitSize, u.box.Lo[1]/unitSize)
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return keys[perm[a]] < keys[perm[b]] })
	applyPermutation(units, perm)
}

// applyPermutation rearranges units so that units[i] becomes the
// former units[perm[i]], destroying perm (entries are marked -1 as
// their cycles are applied).
func applyPermutation(units []unit, perm []int) {
	for i := range perm {
		j := perm[i]
		if j < 0 || j == i {
			perm[i] = -1
			continue
		}
		tmp := units[i]
		k := i
		for j != i {
			units[k] = units[j]
			perm[k] = -1
			k = j
			j = perm[j]
		}
		units[k] = tmp
		perm[k] = -1
	}
}
