// Package geom provides the integer geometry primitives underlying a
// structured adaptive mesh refinement (SAMR) grid hierarchy: integer
// vectors, axis-aligned integer boxes, and box-list algebra (intersection,
// area-of-union, refinement, coarsening, chopping, growing).
//
// For anything that would otherwise scan box pairs quadratically —
// ghost-exchange candidates, column workloads, migration overlap — the
// package provides BoxIndex, a uniform-bin spatial index built once per
// BoxList and queried in near-constant time per box (Query for the
// intersecting members, QueryVolume for the total overlap volume,
// Neighbors for batch halo adjacency). The index is immutable and safe
// for concurrent queries; OverlapVolume routes through it automatically
// above a small-input cutoff.
//
// All boxes are cell-centred and use inclusive lower and exclusive upper
// bounds, i.e. a Box{Lo, Hi} covers the cells Lo <= c < Hi in each
// dimension. The package is dimension-generic up to MaxDim (3) but the
// paper's evaluation is two-dimensional.
package geom

import "fmt"

// MaxDim is the maximum number of spatial dimensions supported.
const MaxDim = 3

// IntVect is a point on the integer lattice. Components beyond the active
// dimensionality of a Box are ignored and must be zero-initialized.
type IntVect [MaxDim]int

// IV2 returns a 2-D integer vector.
func IV2(x, y int) IntVect { return IntVect{x, y, 0} }

// IV3 returns a 3-D integer vector.
func IV3(x, y, z int) IntVect { return IntVect{x, y, z} }

// Add returns the component-wise sum v + w.
func (v IntVect) Add(w IntVect) IntVect {
	for d := 0; d < MaxDim; d++ {
		v[d] += w[d]
	}
	return v
}

// Sub returns the component-wise difference v - w.
func (v IntVect) Sub(w IntVect) IntVect {
	for d := 0; d < MaxDim; d++ {
		v[d] -= w[d]
	}
	return v
}

// Scale returns the component-wise product v * s.
func (v IntVect) Scale(s int) IntVect {
	for d := 0; d < MaxDim; d++ {
		v[d] *= s
	}
	return v
}

// Min returns the component-wise minimum of v and w.
func (v IntVect) Min(w IntVect) IntVect {
	for d := 0; d < MaxDim; d++ {
		if w[d] < v[d] {
			v[d] = w[d]
		}
	}
	return v
}

// Max returns the component-wise maximum of v and w.
func (v IntVect) Max(w IntVect) IntVect {
	for d := 0; d < MaxDim; d++ {
		if w[d] > v[d] {
			v[d] = w[d]
		}
	}
	return v
}

// AllGE reports whether every component of v is >= the matching component
// of w, considering only the first dim components.
func (v IntVect) AllGE(w IntVect, dim int) bool {
	for d := 0; d < dim; d++ {
		if v[d] < w[d] {
			return false
		}
	}
	return true
}

// AllLE reports whether every component of v is <= the matching component
// of w, considering only the first dim components.
func (v IntVect) AllLE(w IntVect, dim int) bool {
	for d := 0; d < dim; d++ {
		if v[d] > w[d] {
			return false
		}
	}
	return true
}

func (v IntVect) String() string {
	return fmt.Sprintf("(%d,%d,%d)", v[0], v[1], v[2])
}
