package geom

import (
	"math"
	"sort"
)

// BoxIndex is a uniform-bin spatial index over a BoxList, replacing the
// brute-force all-pairs intersection scans of the simulator and the AMR
// substrate with O(1)-ish candidate lookups.
//
// Construction places every box in the single bin containing its Lo
// corner (its "home bin") and records the largest binned extent per
// dimension; a query then only has to scan the bin range covering the
// query box expanded by that extent. Boxes much larger than a bin would
// inflate the expansion for everyone, so they go to a small overflow
// list scanned linearly instead. Each box is stored exactly once, so
// queries never deduplicate.
//
// The index is immutable after New: all query methods are safe for
// concurrent use, which the parallel simulation pipeline relies on.
// Binning uses the x/y extents only; 3-D boxes are filtered exactly by
// the final Intersects test, so results stay correct (the bins merely
// discriminate less).
type BoxIndex struct {
	boxes BoxList // the indexed boxes, original order and indices

	origin     IntVect // Lo corner of the bounding box
	binW, binH int     // bin edge lengths in cells
	nx, ny     int     // bin grid extents
	bins       [][]int32
	maxW, maxH int     // largest x/y extent among binned boxes
	overflow   []int32 // oversized (or degenerate-grid) boxes, ascending
}

// oversizeFactor: boxes wider/taller than this many bin edges bypass the
// bins. 4 keeps the query window small while sending few boxes (only the
// genuinely large ones, e.g. a whole-domain base box) to the linear list.
const oversizeFactor = 4

// NewBoxIndex indexes bl. The list is captured by reference and must not
// be mutated while the index is in use. Empty boxes are never returned
// by queries.
func NewBoxIndex(bl BoxList) *BoxIndex {
	ix := &BoxIndex{boxes: bl}
	var bounds Box
	n := 0
	for _, b := range bl {
		if !b.Empty() {
			bounds = bounds.Union(b)
			n++
		}
	}
	if n == 0 {
		return ix
	}
	// Aim for a ~sqrt(n) x sqrt(n) bin grid: O(1) boxes per bin for
	// roughly uniform layouts, O(n) memory.
	side := int(math.Sqrt(float64(n))) + 1
	ix.origin = bounds.Lo
	ix.binW = maxInt(1, ceilDiv(bounds.Size(0), side))
	ix.binH = maxInt(1, ceilDiv(bounds.Size(1), side))
	ix.nx = ceilDiv(bounds.Size(0), ix.binW)
	ix.ny = maxInt(1, ceilDiv(bounds.Size(1), ix.binH))
	if ix.nx < 1 {
		ix.nx = 1
	}
	ix.bins = make([][]int32, ix.nx*ix.ny)
	for i, b := range bl {
		if b.Empty() {
			continue
		}
		w, h := b.Size(0), b.Size(1)
		if w > oversizeFactor*ix.binW || h > oversizeFactor*ix.binH {
			ix.overflow = append(ix.overflow, int32(i))
			continue
		}
		bx := (b.Lo[0] - ix.origin[0]) / ix.binW
		by := (b.Lo[1] - ix.origin[1]) / ix.binH
		ix.bins[by*ix.nx+bx] = append(ix.bins[by*ix.nx+bx], int32(i))
		if w > ix.maxW {
			ix.maxW = w
		}
		if h > ix.maxH {
			ix.maxH = h
		}
	}
	return ix
}

// Len returns the number of indexed boxes (including empty ones, which
// keep their slots so indices match the source list).
func (ix *BoxIndex) Len() int { return len(ix.boxes) }

// Box returns the indexed box at position i.
func (ix *BoxIndex) Box(i int) Box { return ix.boxes[i] }

// binRange returns the bin coordinate span a query for b must scan: home
// bins of boxes starting up to max-extent before b and anywhere below
// its upper bound.
func (ix *BoxIndex) binRange(b Box) (x0, x1, y0, y1 int) {
	x0 = (b.Lo[0] - ix.maxW + 1 - ix.origin[0]) / ix.binW
	y0 = (b.Lo[1] - ix.maxH + 1 - ix.origin[1]) / ix.binH
	x1 = (b.Hi[0] - 1 - ix.origin[0]) / ix.binW
	y1 = (b.Hi[1] - 1 - ix.origin[1]) / ix.binH
	x0, y0 = maxInt(x0, 0), maxInt(y0, 0)
	x1, y1 = minIntIdx(x1, ix.nx-1), minIntIdx(y1, ix.ny-1)
	return
}

// AppendQuery appends to out the indices (into the source list,
// ascending) of every indexed box intersecting b, and returns the
// extended slice. Pass out[:0] of a retained buffer to query without
// allocating.
func (ix *BoxIndex) AppendQuery(out []int, b Box) []int {
	if b.Empty() || (len(ix.bins) == 0 && len(ix.overflow) == 0) {
		return out
	}
	start := len(out)
	for _, i := range ix.overflow {
		if ix.boxes[i].Intersects(b) {
			out = append(out, int(i))
		}
	}
	if len(ix.bins) > 0 {
		x0, x1, y0, y1 := ix.binRange(b)
		for by := y0; by <= y1; by++ {
			for bx := x0; bx <= x1; bx++ {
				for _, i := range ix.bins[by*ix.nx+bx] {
					if ix.boxes[i].Intersects(b) {
						out = append(out, int(i))
					}
				}
			}
		}
	}
	// Each box lives in exactly one bin or the overflow list, so the
	// result has no duplicates; sort for deterministic ascending order
	// (call sites that copy overlapping data rely on source-list order).
	hits := out[start:]
	if len(hits) > 1 {
		sort.Ints(hits)
	}
	return out
}

// Query returns the indices of every indexed box intersecting b, in
// ascending source-list order.
func (ix *BoxIndex) Query(b Box) []int { return ix.AppendQuery(nil, b) }

// QueryVolume returns the total intersection volume between b and the
// indexed boxes: sum_i |boxes[i] x b|. For an internally disjoint list
// this is the covered volume of b, the quantity the penalty models and
// the partitioners' column weights sum.
func (ix *BoxIndex) QueryVolume(b Box) int64 {
	if b.Empty() || (len(ix.bins) == 0 && len(ix.overflow) == 0) {
		return 0
	}
	var total int64
	for _, i := range ix.overflow {
		total += ix.boxes[i].Intersect(b).Volume()
	}
	if len(ix.bins) > 0 {
		x0, x1, y0, y1 := ix.binRange(b)
		for by := y0; by <= y1; by++ {
			for bx := x0; bx <= x1; bx++ {
				for _, i := range ix.bins[by*ix.nx+bx] {
					total += ix.boxes[i].Intersect(b).Volume()
				}
			}
		}
	}
	return total
}

// Neighbors returns, for every indexed box i, the ascending indices of
// the other boxes intersecting boxes[i].Grow(grow): batch halo
// adjacency for callers that want the whole graph at once rather than
// issuing per-box AppendQuery lookups.
func (ix *BoxIndex) Neighbors(grow int) [][]int {
	out := make([][]int, len(ix.boxes))
	var buf []int
	for i, b := range ix.boxes {
		if b.Empty() {
			continue
		}
		buf = ix.AppendQuery(buf[:0], b.Grow(grow))
		var nb []int
		for _, j := range buf {
			if j != i {
				nb = append(nb, j)
			}
		}
		out[i] = nb
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minIntIdx(a, b int) int {
	if a < b {
		return a
	}
	return b
}
