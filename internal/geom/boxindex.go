package geom

import (
	"math"
	"sort"
)

// BoxIndex is a uniform-bin spatial index over a BoxList, replacing the
// brute-force all-pairs intersection scans of the simulator and the AMR
// substrate with O(1)-ish candidate lookups.
//
// Construction places every box in the single bin containing its Lo
// corner (its "home bin") and records the largest binned extent per
// dimension; a query then only has to scan the bin range covering the
// query box expanded by that extent. Boxes much larger than a bin would
// inflate the expansion for everyone, so they go to a small overflow
// list scanned linearly instead. Each box is stored exactly once, so
// queries never deduplicate.
//
// The index is immutable after New: all query methods are safe for
// concurrent use, which the parallel simulation pipeline relies on.
// Binning uses the x/y extents always, and additionally the z extent
// when the indexed boxes are 3-D with a bounding box deep enough for z
// to discriminate; shallow or 2-D lists keep a single z slab, so 2-D
// behavior is unchanged. Either way the final Intersects test filters
// exactly, so results stay correct — the bins merely discriminate less
// when a dimension is not keyed.
type BoxIndex struct {
	boxes BoxList // the indexed boxes, original order and indices

	origin           IntVect // Lo corner of the bounding box
	binW, binH, binD int     // bin edge lengths in cells
	nx, ny, nz       int     // bin grid extents
	bins             [][]int32
	maxW, maxH, maxD int     // largest x/y/z extent among binned boxes
	overflow         []int32 // oversized (or degenerate-grid) boxes, ascending
}

// oversizeFactor: boxes wider/taller/deeper than this many bin edges
// bypass the bins. 4 keeps the query window small while sending few
// boxes (only the genuinely large ones, e.g. a whole-domain base box)
// to the linear list.
const oversizeFactor = 4

// minZBinExtent is the smallest bounding-box depth for which z-binning
// is worth keying: below it a z slab would hold nearly every box and
// the extra bin axis only costs memory. 2-D boxes have depth 1 and
// never qualify.
const minZBinExtent = 4

// NewBoxIndex indexes bl. The list is captured by reference and must not
// be mutated while the index is in use. Empty boxes are never returned
// by queries.
func NewBoxIndex(bl BoxList) *BoxIndex {
	ix := &BoxIndex{boxes: bl}
	var bounds Box
	n := 0
	for _, b := range bl {
		if !b.Empty() {
			bounds = bounds.Union(b)
			n++
		}
	}
	if n == 0 {
		return ix
	}
	ix.origin = bounds.Lo
	ix.binD, ix.nz = 1, 1
	depth := bounds.Size(2)
	volumetric := bounds.Dim == 3 && depth >= minZBinExtent
	// Aim for O(1) boxes per bin and O(n) memory: a ~sqrt(n) x sqrt(n)
	// grid in 2-D, ~cbrt(n) per side in 3-D.
	var side int
	if volumetric {
		side = int(math.Cbrt(float64(n))) + 1
		ix.binD = maxInt(1, ceilDiv(depth, side))
		ix.nz = maxInt(1, ceilDiv(depth, ix.binD))
	} else {
		side = int(math.Sqrt(float64(n))) + 1
	}
	ix.binW = maxInt(1, ceilDiv(bounds.Size(0), side))
	ix.binH = maxInt(1, ceilDiv(bounds.Size(1), side))
	ix.nx = maxInt(1, ceilDiv(bounds.Size(0), ix.binW))
	ix.ny = maxInt(1, ceilDiv(bounds.Size(1), ix.binH))
	ix.bins = make([][]int32, ix.nx*ix.ny*ix.nz)
	for i, b := range bl {
		if b.Empty() {
			continue
		}
		w, h, d := b.Size(0), b.Size(1), b.Size(2)
		if w > oversizeFactor*ix.binW || h > oversizeFactor*ix.binH ||
			(ix.nz > 1 && d > oversizeFactor*ix.binD) {
			ix.overflow = append(ix.overflow, int32(i))
			continue
		}
		bx := (b.Lo[0] - ix.origin[0]) / ix.binW
		by := (b.Lo[1] - ix.origin[1]) / ix.binH
		bz := 0
		if ix.nz > 1 {
			bz = (b.Lo[2] - ix.origin[2]) / ix.binD
		}
		bin := (bz*ix.ny+by)*ix.nx + bx
		ix.bins[bin] = append(ix.bins[bin], int32(i))
		if w > ix.maxW {
			ix.maxW = w
		}
		if h > ix.maxH {
			ix.maxH = h
		}
		if d > ix.maxD {
			ix.maxD = d
		}
	}
	return ix
}

// Len returns the number of indexed boxes (including empty ones, which
// keep their slots so indices match the source list).
func (ix *BoxIndex) Len() int { return len(ix.boxes) }

// Box returns the indexed box at position i.
func (ix *BoxIndex) Box(i int) Box { return ix.boxes[i] }

// binRange returns the bin coordinate span a query for b must scan: home
// bins of boxes starting up to max-extent before b and anywhere below
// its upper bound.
func (ix *BoxIndex) binRange(b Box) (x0, x1, y0, y1, z0, z1 int) {
	x0 = (b.Lo[0] - ix.maxW + 1 - ix.origin[0]) / ix.binW
	y0 = (b.Lo[1] - ix.maxH + 1 - ix.origin[1]) / ix.binH
	x1 = (b.Hi[0] - 1 - ix.origin[0]) / ix.binW
	y1 = (b.Hi[1] - 1 - ix.origin[1]) / ix.binH
	x0, y0 = maxInt(x0, 0), maxInt(y0, 0)
	x1, y1 = minIntIdx(x1, ix.nx-1), minIntIdx(y1, ix.ny-1)
	if ix.nz > 1 {
		z0 = maxInt((b.Lo[2]-ix.maxD+1-ix.origin[2])/ix.binD, 0)
		z1 = minIntIdx((b.Hi[2]-1-ix.origin[2])/ix.binD, ix.nz-1)
	}
	return
}

// AppendQuery appends to out the indices (into the source list,
// ascending) of every indexed box intersecting b, and returns the
// extended slice. Pass out[:0] of a retained buffer to query without
// allocating.
func (ix *BoxIndex) AppendQuery(out []int, b Box) []int {
	if b.Empty() || (len(ix.bins) == 0 && len(ix.overflow) == 0) {
		return out
	}
	start := len(out)
	for _, i := range ix.overflow {
		if ix.boxes[i].Intersects(b) {
			out = append(out, int(i))
		}
	}
	if len(ix.bins) > 0 {
		x0, x1, y0, y1, z0, z1 := ix.binRange(b)
		for bz := z0; bz <= z1; bz++ {
			for by := y0; by <= y1; by++ {
				for bx := x0; bx <= x1; bx++ {
					for _, i := range ix.bins[(bz*ix.ny+by)*ix.nx+bx] {
						if ix.boxes[i].Intersects(b) {
							out = append(out, int(i))
						}
					}
				}
			}
		}
	}
	// Each box lives in exactly one bin or the overflow list, so the
	// result has no duplicates; sort for deterministic ascending order
	// (call sites that copy overlapping data rely on source-list order).
	hits := out[start:]
	if len(hits) > 1 {
		sort.Ints(hits)
	}
	return out
}

// Query returns the indices of every indexed box intersecting b, in
// ascending source-list order.
func (ix *BoxIndex) Query(b Box) []int { return ix.AppendQuery(nil, b) }

// QueryVolume returns the total intersection volume between b and the
// indexed boxes: sum_i |boxes[i] x b|. For an internally disjoint list
// this is the covered volume of b, the quantity the penalty models and
// the partitioners' column weights sum.
func (ix *BoxIndex) QueryVolume(b Box) int64 {
	if b.Empty() || (len(ix.bins) == 0 && len(ix.overflow) == 0) {
		return 0
	}
	var total int64
	for _, i := range ix.overflow {
		total += ix.boxes[i].Intersect(b).Volume()
	}
	if len(ix.bins) > 0 {
		x0, x1, y0, y1, z0, z1 := ix.binRange(b)
		for bz := z0; bz <= z1; bz++ {
			for by := y0; by <= y1; by++ {
				for bx := x0; bx <= x1; bx++ {
					for _, i := range ix.bins[(bz*ix.ny+by)*ix.nx+bx] {
						total += ix.boxes[i].Intersect(b).Volume()
					}
				}
			}
		}
	}
	return total
}

// Neighbors returns, for every indexed box i, the ascending indices of
// the other boxes intersecting boxes[i].Grow(grow): batch halo
// adjacency for callers that want the whole graph at once rather than
// issuing per-box AppendQuery lookups.
func (ix *BoxIndex) Neighbors(grow int) [][]int {
	out := make([][]int, len(ix.boxes))
	var buf []int
	for i, b := range ix.boxes {
		if b.Empty() {
			continue
		}
		buf = ix.AppendQuery(buf[:0], b.Grow(grow))
		var nb []int
		for _, j := range buf {
			if j != i {
				nb = append(nb, j)
			}
		}
		out[i] = nb
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minIntIdx(a, b int) int {
	if a < b {
		return a
	}
	return b
}
