package geom

import "sort"

// BoxList is an ordered collection of boxes on one refinement level. The
// boxes of a well-formed SAMR level are pairwise disjoint, but BoxList
// itself does not enforce disjointness; use Disjoint to check and
// Simplify to canonicalize.
type BoxList []Box

// TotalVolume returns the sum of the member volumes. For a disjoint list
// this is the number of covered cells.
func (bl BoxList) TotalVolume() int64 {
	var v int64
	for _, b := range bl {
		v += b.Volume()
	}
	return v
}

// TotalSurface returns the sum of member surfaces (boundary face count).
func (bl BoxList) TotalSurface() int64 {
	var s int64
	for _, b := range bl {
		s += b.Surface()
	}
	return s
}

// Bounds returns the bounding box of the list (empty box if the list is
// empty).
func (bl BoxList) Bounds() Box {
	var r Box
	for _, b := range bl {
		r = r.Union(b)
	}
	return r
}

// Disjoint reports whether no two boxes in the list overlap.
func (bl BoxList) Disjoint() bool {
	for i := range bl {
		for j := i + 1; j < len(bl); j++ {
			if bl[i].Intersects(bl[j]) {
				return false
			}
		}
	}
	return true
}

// Clone returns a deep copy of the list.
func (bl BoxList) Clone() BoxList {
	out := make(BoxList, len(bl))
	copy(out, bl)
	return out
}

// Refine returns the list with every box refined by r.
func (bl BoxList) Refine(r int) BoxList {
	out := make(BoxList, len(bl))
	for i, b := range bl {
		out[i] = b.Refine(r)
	}
	return out
}

// Coarsen returns the list with every box coarsened by r (rounding
// outward). The result may contain overlapping boxes even if the input
// was disjoint.
func (bl BoxList) Coarsen(r int) BoxList {
	out := make(BoxList, len(bl))
	for i, b := range bl {
		out[i] = b.Coarsen(r)
	}
	return out
}

// IntersectBox returns the (non-empty) intersections of every member with b.
func (bl BoxList) IntersectBox(b Box) BoxList {
	var out BoxList
	for _, m := range bl {
		if iv := m.Intersect(b); !iv.Empty() {
			out = append(out, iv)
		}
	}
	return out
}

// SubtractBox returns the region of the list not covered by b, as a
// disjoint list (assuming the input list was disjoint).
func (bl BoxList) SubtractBox(b Box) BoxList {
	var out BoxList
	for _, m := range bl {
		out = append(out, m.Subtract(b)...)
	}
	return out
}

// Subtract returns the region of bl not covered by any box of other.
func (bl BoxList) Subtract(other BoxList) BoxList {
	cur := bl.Clone()
	for _, b := range other {
		cur = cur.SubtractBox(b)
	}
	return cur
}

// ContainsPoint reports whether any member contains p.
func (bl BoxList) ContainsPoint(p IntVect) bool {
	for _, b := range bl {
		if b.Contains(p) {
			return true
		}
	}
	return false
}

// CoversBox reports whether b is entirely covered by the union of the
// list members.
func (bl BoxList) CoversBox(b Box) bool {
	rem := BoxList{b}
	for _, m := range bl {
		rem = rem.SubtractBox(m)
		if len(rem) == 0 {
			return true
		}
	}
	return len(rem) == 0 || rem.TotalVolume() == 0
}

// OverlapVolume returns the number of cells in the intersection of the
// unions of a and b (both internally disjoint): the pairwise sum of
// |a_i x b_j|. Small inputs use the direct double loop; larger ones
// build a BoxIndex over the longer list and sum QueryVolume over the
// shorter, which is near-linear instead of O(n*m).
//
// This is the workhorse of the paper's data-migration penalty
// (section 4.4): beta_m sums |G_{t-1}^{l,i} x G_t^{l,j}| over all patch
// pairs of a level.
func OverlapVolume(a, b BoxList) int64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(a)*len(b) <= 64 {
		return OverlapVolumeNaive(a, b)
	}
	if len(a) < len(b) {
		a, b = b, a
	}
	ix := NewBoxIndex(a)
	var total int64
	for _, box := range b {
		total += ix.QueryVolume(box)
	}
	return total
}

// OverlapVolumeNaive is the O(n*m) reference implementation of
// OverlapVolume, kept as a test oracle.
func OverlapVolumeNaive(a, b BoxList) int64 {
	var total int64
	for _, x := range a {
		for _, y := range b {
			total += x.Intersect(y).Volume()
		}
	}
	return total
}

// Simplify merges mergeable neighbours (boxes that share a full face and
// together form a box) until no merge applies. It reduces fragmentation
// after Subtract chains; the covered region is unchanged.
func (bl BoxList) Simplify() BoxList {
	out := bl.Clone()
	merged := true
	for merged {
		merged = false
	outer:
		for i := 0; i < len(out); i++ {
			for j := i + 1; j < len(out); j++ {
				if m, ok := tryMerge(out[i], out[j]); ok {
					out[i] = m
					out = append(out[:j], out[j+1:]...)
					merged = true
					break outer
				}
			}
		}
	}
	return out
}

func tryMerge(a, b Box) (Box, bool) {
	diff := -1
	for d := 0; d < a.Dim; d++ {
		if a.Lo[d] == b.Lo[d] && a.Hi[d] == b.Hi[d] {
			continue
		}
		if diff >= 0 {
			return Box{}, false
		}
		diff = d
	}
	if diff < 0 {
		return a, true // identical boxes
	}
	if a.Hi[diff] == b.Lo[diff] || b.Hi[diff] == a.Lo[diff] {
		return a.Union(b), true
	}
	return Box{}, false
}

// MergedAxis merges boxes that are adjacent along dimension d and have
// identical extents in every other dimension. It is O(n log n) and is
// the building block of Compact.
func (bl BoxList) MergedAxis(d int) BoxList {
	if len(bl) < 2 {
		return bl.Clone()
	}
	out := bl.Clone()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for e := 0; e < MaxDim; e++ {
			if e == d {
				continue
			}
			if a.Lo[e] != b.Lo[e] {
				return a.Lo[e] < b.Lo[e]
			}
			if a.Hi[e] != b.Hi[e] {
				return a.Hi[e] < b.Hi[e]
			}
		}
		return a.Lo[d] < b.Lo[d]
	})
	merged := out[:1]
	for _, b := range out[1:] {
		last := &merged[len(merged)-1]
		same := true
		for e := 0; e < MaxDim; e++ {
			if e != d && (last.Lo[e] != b.Lo[e] || last.Hi[e] != b.Hi[e]) {
				same = false
				break
			}
		}
		if same && last.Hi[d] == b.Lo[d] {
			last.Hi[d] = b.Hi[d]
		} else {
			merged = append(merged, b)
		}
	}
	return merged
}

// Compact reduces fragmentation of a disjoint list by repeated
// axis-aligned merging. Unlike Simplify it is near-linear, suitable for
// lists of thousands of boxes; the covered region is unchanged.
func (bl BoxList) Compact() BoxList {
	cur := bl
	for pass := 0; pass < 4; pass++ {
		next := cur.MergedAxis(0).MergedAxis(1)
		if len(next) == len(cur) {
			return next
		}
		cur = next
	}
	return cur
}

// SortByLo orders the list lexicographically by Lo corner; useful for
// deterministic output.
func (bl BoxList) SortByLo() {
	sort.Slice(bl, func(i, j int) bool {
		for d := MaxDim - 1; d >= 0; d-- {
			if bl[i].Lo[d] != bl[j].Lo[d] {
				return bl[i].Lo[d] < bl[j].Lo[d]
			}
		}
		return false
	})
}
