package geom

import (
	"math/rand"
	"testing"
)

// randomBoxList builds a list of n random (possibly overlapping, possibly
// empty-adjacent) boxes; unlike randomDisjointList it exercises the index
// on overlapping inputs too.
func randomBoxList(r *rand.Rand, n int) BoxList {
	out := make(BoxList, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, randomBox(r))
	}
	return out
}

// bruteQuery is the all-pairs oracle for BoxIndex.Query.
func bruteQuery(bl BoxList, q Box) []int {
	var out []int
	for i, b := range bl {
		if b.Intersects(q) {
			out = append(out, i)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBoxIndexQueryMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 80; trial++ {
		bl := randomBoxList(r, 1+r.Intn(60))
		ix := NewBoxIndex(bl)
		for q := 0; q < 20; q++ {
			query := randomBox(r)
			got := ix.Query(query)
			want := bruteQuery(bl, query)
			if !equalInts(got, want) {
				t.Fatalf("trial %d query %v: index=%v brute=%v\nboxes=%v", trial, query, got, want, bl)
			}
		}
	}
}

func TestBoxIndexQueryVolumeMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 80; trial++ {
		bl := randomBoxList(r, 1+r.Intn(60))
		ix := NewBoxIndex(bl)
		for q := 0; q < 20; q++ {
			query := randomBox(r)
			got := ix.QueryVolume(query)
			want := OverlapVolumeNaive(bl, BoxList{query})
			if got != want {
				t.Fatalf("trial %d query %v: index=%d brute=%d", trial, query, got, want)
			}
		}
	}
}

func TestBoxIndexQuerySelfAndMembers(t *testing.T) {
	// Every indexed box must find at least itself when queried with its
	// own extent, and the result must be ascending.
	r := rand.New(rand.NewSource(13))
	bl := randomDisjointList(r, 25)
	ix := NewBoxIndex(bl)
	for i, b := range bl {
		got := ix.Query(b)
		if !equalInts(got, []int{i}) {
			t.Fatalf("disjoint member %d: Query(self) = %v", i, got)
		}
	}
}

func TestBoxIndexNeighborsMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for trial := 0; trial < 40; trial++ {
		bl := randomDisjointList(r, 2+r.Intn(20))
		for _, grow := range []int{0, 1, 2} {
			nb := NewBoxIndex(bl).Neighbors(grow)
			for i, b := range bl {
				var want []int
				for j, o := range bl {
					if j != i && o.Intersects(b.Grow(grow)) {
						want = append(want, j)
					}
				}
				if !equalInts(nb[i], want) {
					t.Fatalf("trial %d grow %d box %d: index=%v brute=%v", trial, grow, i, nb[i], want)
				}
			}
		}
	}
}

func TestBoxIndexEmptyAndDegenerate(t *testing.T) {
	if got := NewBoxIndex(nil).Query(NewBox2(0, 0, 4, 4)); got != nil {
		t.Errorf("empty index query = %v", got)
	}
	// Lists containing empty boxes: the empties keep their index slot but
	// never match.
	bl := BoxList{NewBox2(0, 0, 2, 2), NewBox2(5, 5, 5, 7), NewBox2(1, 1, 4, 4)}
	ix := NewBoxIndex(bl)
	if got, want := ix.Query(NewBox2(0, 0, 10, 10)), []int{0, 2}; !equalInts(got, want) {
		t.Errorf("query over list with empty member = %v, want %v", got, want)
	}
	if ix.QueryVolume(NewBox2(0, 0, 10, 10)) != 4+9 {
		t.Errorf("QueryVolume = %d, want 13", ix.QueryVolume(NewBox2(0, 0, 10, 10)))
	}
	if got := ix.Query(Box{Dim: 2}); got != nil {
		t.Errorf("empty query box matched %v", got)
	}
}

func TestBoxIndexOversizedBoxes(t *testing.T) {
	// A whole-domain box among many small ones lands in the overflow list
	// and must still be returned by every query it intersects.
	r := rand.New(rand.NewSource(15))
	bl := randomBoxList(r, 40)
	bl = append(BoxList{NewBox2(-100, -100, 200, 200)}, bl...)
	ix := NewBoxIndex(bl)
	for q := 0; q < 30; q++ {
		query := randomBox(r)
		if !equalInts(ix.Query(query), bruteQuery(bl, query)) {
			t.Fatalf("oversized query %v mismatch", query)
		}
	}
}

func TestOverlapVolumeIndexedMatchesNaiveLarge(t *testing.T) {
	// Above the small-input cutoff OverlapVolume takes the BoxIndex path;
	// it must still agree with the oracle.
	r := rand.New(rand.NewSource(16))
	for trial := 0; trial < 10; trial++ {
		a := randomDisjointList(r, 20+r.Intn(20))
		b := randomDisjointList(r, 20+r.Intn(20))
		if fast, slow := OverlapVolume(a, b), OverlapVolumeNaive(a, b); fast != slow {
			t.Fatalf("trial %d: indexed=%d naive=%d", trial, fast, slow)
		}
	}
}

// randomBox3 builds a random 3-D box spanning a genuinely volumetric
// domain so z-binning has something to discriminate.
func randomBox3(r *rand.Rand) Box {
	x, y, z := r.Intn(40)-20, r.Intn(40)-20, r.Intn(40)-20
	return NewBox3(x, y, z, x+1+r.Intn(10), y+1+r.Intn(10), z+1+r.Intn(10))
}

func randomBoxList3(r *rand.Rand, n int) BoxList {
	out := make(BoxList, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, randomBox3(r))
	}
	return out
}

func TestBoxIndex3DQueryMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 80; trial++ {
		bl := randomBoxList3(r, 1+r.Intn(60))
		ix := NewBoxIndex(bl)
		for q := 0; q < 20; q++ {
			query := randomBox3(r)
			if got, want := ix.Query(query), bruteQuery(bl, query); !equalInts(got, want) {
				t.Fatalf("trial %d query %v: index=%v brute=%v\nboxes=%v", trial, query, got, want, bl)
			}
			var wantVol int64
			for _, b := range bl {
				wantVol += b.Intersect(query).Volume()
			}
			if got := ix.QueryVolume(query); got != wantVol {
				t.Fatalf("trial %d query %v: volume index=%d brute=%d", trial, query, got, wantVol)
			}
		}
	}
}

func TestBoxIndexZBinningActivation(t *testing.T) {
	// A deep 3-D list keys bins on z; a shallow one (and any 2-D list)
	// keeps a single z slab so planar behavior is untouched.
	r := rand.New(rand.NewSource(22))
	deep := NewBoxIndex(randomBoxList3(r, 64))
	if deep.nz <= 1 {
		t.Errorf("deep 3-D list: nz = %d, want > 1", deep.nz)
	}
	var shallow BoxList
	for i := 0; i < 64; i++ {
		b := randomBox3(r)
		b.Lo[2], b.Hi[2] = 0, 1 // flatten to one z layer
		shallow = append(shallow, b)
	}
	if ix := NewBoxIndex(shallow); ix.nz != 1 {
		t.Errorf("shallow 3-D list: nz = %d, want 1", ix.nz)
	}
	if ix := NewBoxIndex(randomBoxList(r, 64)); ix.nz != 1 {
		t.Errorf("2-D list: nz = %d, want 1", ix.nz)
	}
}

func TestBoxIndex3DOversizedAndNeighbors(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	bl := randomBoxList3(r, 40)
	bl = append(BoxList{NewBox3(-100, -100, -100, 200, 200, 200)}, bl...)
	ix := NewBoxIndex(bl)
	for q := 0; q < 30; q++ {
		query := randomBox3(r)
		if !equalInts(ix.Query(query), bruteQuery(bl, query)) {
			t.Fatalf("3-D oversized query %v mismatch", query)
		}
	}
	for grow := 0; grow <= 2; grow++ {
		nb := ix.Neighbors(grow)
		for i, b := range bl {
			var want []int
			for j, o := range bl {
				if j != i && o.Intersects(b.Grow(grow)) {
					want = append(want, j)
				}
			}
			if !equalInts(nb[i], want) {
				t.Fatalf("grow %d box %d: index=%v brute=%v", grow, i, nb[i], want)
			}
		}
	}
}

// BenchmarkBoxIndexQuery3D measures the volumetric (z-binned) query
// path; alongside the 2-D BenchmarkBoxIndexQuery it guards against
// regressions in either binning mode.
func BenchmarkBoxIndexQuery3D(b *testing.B) {
	r := rand.New(rand.NewSource(24))
	bl := randomBoxList3(r, 2000)
	ix := NewBoxIndex(bl)
	queries := make([]Box, 256)
	for i := range queries {
		queries[i] = randomBox3(r)
	}
	var buf []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = ix.AppendQuery(buf[:0], queries[i%len(queries)])
	}
}
