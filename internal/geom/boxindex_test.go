package geom

import (
	"math/rand"
	"testing"
)

// randomBoxList builds a list of n random (possibly overlapping, possibly
// empty-adjacent) boxes; unlike randomDisjointList it exercises the index
// on overlapping inputs too.
func randomBoxList(r *rand.Rand, n int) BoxList {
	out := make(BoxList, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, randomBox(r))
	}
	return out
}

// bruteQuery is the all-pairs oracle for BoxIndex.Query.
func bruteQuery(bl BoxList, q Box) []int {
	var out []int
	for i, b := range bl {
		if b.Intersects(q) {
			out = append(out, i)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBoxIndexQueryMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 80; trial++ {
		bl := randomBoxList(r, 1+r.Intn(60))
		ix := NewBoxIndex(bl)
		for q := 0; q < 20; q++ {
			query := randomBox(r)
			got := ix.Query(query)
			want := bruteQuery(bl, query)
			if !equalInts(got, want) {
				t.Fatalf("trial %d query %v: index=%v brute=%v\nboxes=%v", trial, query, got, want, bl)
			}
		}
	}
}

func TestBoxIndexQueryVolumeMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 80; trial++ {
		bl := randomBoxList(r, 1+r.Intn(60))
		ix := NewBoxIndex(bl)
		for q := 0; q < 20; q++ {
			query := randomBox(r)
			got := ix.QueryVolume(query)
			want := OverlapVolumeNaive(bl, BoxList{query})
			if got != want {
				t.Fatalf("trial %d query %v: index=%d brute=%d", trial, query, got, want)
			}
		}
	}
}

func TestBoxIndexQuerySelfAndMembers(t *testing.T) {
	// Every indexed box must find at least itself when queried with its
	// own extent, and the result must be ascending.
	r := rand.New(rand.NewSource(13))
	bl := randomDisjointList(r, 25)
	ix := NewBoxIndex(bl)
	for i, b := range bl {
		got := ix.Query(b)
		if !equalInts(got, []int{i}) {
			t.Fatalf("disjoint member %d: Query(self) = %v", i, got)
		}
	}
}

func TestBoxIndexNeighborsMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for trial := 0; trial < 40; trial++ {
		bl := randomDisjointList(r, 2+r.Intn(20))
		for _, grow := range []int{0, 1, 2} {
			nb := NewBoxIndex(bl).Neighbors(grow)
			for i, b := range bl {
				var want []int
				for j, o := range bl {
					if j != i && o.Intersects(b.Grow(grow)) {
						want = append(want, j)
					}
				}
				if !equalInts(nb[i], want) {
					t.Fatalf("trial %d grow %d box %d: index=%v brute=%v", trial, grow, i, nb[i], want)
				}
			}
		}
	}
}

func TestBoxIndexEmptyAndDegenerate(t *testing.T) {
	if got := NewBoxIndex(nil).Query(NewBox2(0, 0, 4, 4)); got != nil {
		t.Errorf("empty index query = %v", got)
	}
	// Lists containing empty boxes: the empties keep their index slot but
	// never match.
	bl := BoxList{NewBox2(0, 0, 2, 2), NewBox2(5, 5, 5, 7), NewBox2(1, 1, 4, 4)}
	ix := NewBoxIndex(bl)
	if got, want := ix.Query(NewBox2(0, 0, 10, 10)), []int{0, 2}; !equalInts(got, want) {
		t.Errorf("query over list with empty member = %v, want %v", got, want)
	}
	if ix.QueryVolume(NewBox2(0, 0, 10, 10)) != 4+9 {
		t.Errorf("QueryVolume = %d, want 13", ix.QueryVolume(NewBox2(0, 0, 10, 10)))
	}
	if got := ix.Query(Box{Dim: 2}); got != nil {
		t.Errorf("empty query box matched %v", got)
	}
}

func TestBoxIndexOversizedBoxes(t *testing.T) {
	// A whole-domain box among many small ones lands in the overflow list
	// and must still be returned by every query it intersects.
	r := rand.New(rand.NewSource(15))
	bl := randomBoxList(r, 40)
	bl = append(BoxList{NewBox2(-100, -100, 200, 200)}, bl...)
	ix := NewBoxIndex(bl)
	for q := 0; q < 30; q++ {
		query := randomBox(r)
		if !equalInts(ix.Query(query), bruteQuery(bl, query)) {
			t.Fatalf("oversized query %v mismatch", query)
		}
	}
}

func TestOverlapVolumeIndexedMatchesNaiveLarge(t *testing.T) {
	// Above the small-input cutoff OverlapVolume takes the BoxIndex path;
	// it must still agree with the oracle.
	r := rand.New(rand.NewSource(16))
	for trial := 0; trial < 10; trial++ {
		a := randomDisjointList(r, 20+r.Intn(20))
		b := randomDisjointList(r, 20+r.Intn(20))
		if fast, slow := OverlapVolume(a, b), OverlapVolumeNaive(a, b); fast != slow {
			t.Fatalf("trial %d: indexed=%d naive=%d", trial, fast, slow)
		}
	}
}
