package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntVectArithmetic(t *testing.T) {
	a, b := IV2(3, -2), IV2(1, 5)
	if got := a.Add(b); got != IV2(4, 3) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != IV2(2, -7) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(-2); got != IV2(-6, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Min(b); got != IV2(1, -2) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != IV2(3, 5) {
		t.Errorf("Max = %v", got)
	}
}

func TestBoxVolumeAndEmpty(t *testing.T) {
	b := NewBox2(0, 0, 4, 3)
	if b.Volume() != 12 {
		t.Errorf("Volume = %d, want 12", b.Volume())
	}
	if b.Empty() {
		t.Error("non-degenerate box reported empty")
	}
	e := NewBox2(2, 2, 2, 5)
	if !e.Empty() || e.Volume() != 0 {
		t.Errorf("degenerate box: Empty=%v Volume=%d", e.Empty(), e.Volume())
	}
	b3 := NewBox3(0, 0, 0, 2, 3, 4)
	if b3.Volume() != 24 {
		t.Errorf("3-D Volume = %d, want 24", b3.Volume())
	}
}

func TestBoxSurface(t *testing.T) {
	if s := NewBox2(0, 0, 4, 3).Surface(); s != 14 {
		t.Errorf("2-D Surface = %d, want 14", s)
	}
	if s := NewBox3(0, 0, 0, 2, 3, 4).Surface(); s != 2*(3*4+2*4+2*3) {
		t.Errorf("3-D Surface = %d", s)
	}
	if s := NewBox2(1, 1, 1, 5).Surface(); s != 0 {
		t.Errorf("empty box Surface = %d, want 0", s)
	}
}

func TestBoxContains(t *testing.T) {
	b := NewBox2(1, 1, 4, 4)
	cases := []struct {
		p    IntVect
		want bool
	}{
		{IV2(1, 1), true},
		{IV2(3, 3), true},
		{IV2(4, 3), false}, // Hi is exclusive
		{IV2(0, 2), false},
	}
	for _, c := range cases {
		if got := b.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestBoxIntersect(t *testing.T) {
	a := NewBox2(0, 0, 4, 4)
	b := NewBox2(2, 2, 6, 6)
	iv := a.Intersect(b)
	if iv != NewBox2(2, 2, 4, 4) {
		t.Errorf("Intersect = %v", iv)
	}
	if !a.Intersects(b) {
		t.Error("Intersects = false")
	}
	c := NewBox2(4, 0, 8, 4) // shares only the x=4 face: no cells
	if a.Intersects(c) {
		t.Error("face-adjacent boxes should not intersect")
	}
	if v := a.Intersect(c).Volume(); v != 0 {
		t.Errorf("face-adjacent overlap volume = %d", v)
	}
}

func TestBoxUnionBounds(t *testing.T) {
	a := NewBox2(0, 0, 2, 2)
	b := NewBox2(5, 5, 7, 9)
	u := a.Union(b)
	if u != NewBox2(0, 0, 7, 9) {
		t.Errorf("Union = %v", u)
	}
	var e Box
	if a.Union(e) != a || e.Union(a) != a {
		t.Error("union with empty box should be identity")
	}
}

func TestBoxGrowShift(t *testing.T) {
	b := NewBox2(2, 2, 4, 4)
	if g := b.Grow(1); g != NewBox2(1, 1, 5, 5) {
		t.Errorf("Grow = %v", g)
	}
	if g := b.Grow(-1); !g.Empty() {
		t.Errorf("Grow(-1) of 2x2 should be empty, got %v", g)
	}
	if s := b.Shift(IV2(-2, 3)); s != NewBox2(0, 5, 2, 7) {
		t.Errorf("Shift = %v", s)
	}
}

func TestRefineCoarsenRoundTrip(t *testing.T) {
	b := NewBox2(-3, 2, 5, 9)
	if got := b.Refine(2).Coarsen(2); got != b {
		t.Errorf("refine-then-coarsen = %v, want %v", got, b)
	}
	// Coarsening rounds outward.
	c := NewBox2(1, 1, 3, 3).Coarsen(2)
	if c != NewBox2(0, 0, 2, 2) {
		t.Errorf("Coarsen outward = %v", c)
	}
	// Negative coordinates.
	n := NewBox2(-3, -1, -1, 1).Coarsen(2)
	if n != NewBox2(-2, -1, 0, 1) {
		t.Errorf("negative Coarsen = %v", n)
	}
}

func TestFloorCeilDiv(t *testing.T) {
	cases := []struct{ a, b, floor, ceil int }{
		{7, 2, 3, 4}, {-7, 2, -4, -3}, {8, 2, 4, 4}, {-8, 2, -4, -4}, {0, 3, 0, 0},
	}
	for _, c := range cases {
		if f := floorDiv(c.a, c.b); f != c.floor {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, f, c.floor)
		}
		if cl := ceilDiv(c.a, c.b); cl != c.ceil {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, cl, c.ceil)
		}
	}
}

func TestChopDim(t *testing.T) {
	b := NewBox2(0, 0, 10, 4)
	lo, hi := b.ChopDim(0, 6)
	if lo != NewBox2(0, 0, 6, 4) || hi != NewBox2(6, 0, 10, 4) {
		t.Errorf("ChopDim: lo=%v hi=%v", lo, hi)
	}
	if lo.Volume()+hi.Volume() != b.Volume() {
		t.Error("chop does not preserve volume")
	}
	lo, hi = b.ChopDim(0, -5) // clamped
	if !lo.Empty() || hi != b {
		t.Errorf("clamped chop: lo=%v hi=%v", lo, hi)
	}
}

func TestSubtract(t *testing.T) {
	b := NewBox2(0, 0, 8, 8)
	hole := NewBox2(2, 2, 5, 6)
	parts := b.Subtract(hole)
	var vol int64
	for i, p := range parts {
		if p.Intersects(hole) {
			t.Errorf("part %d %v intersects the hole", i, p)
		}
		for j := i + 1; j < len(parts); j++ {
			if p.Intersects(parts[j]) {
				t.Errorf("parts %d and %d overlap", i, j)
			}
		}
		vol += p.Volume()
	}
	if vol != b.Volume()-hole.Volume() {
		t.Errorf("subtract volume = %d, want %d", vol, b.Volume()-hole.Volume())
	}
	// Disjoint subtraction returns the original box.
	if got := b.Subtract(NewBox2(20, 20, 25, 25)); len(got) != 1 || got[0] != b {
		t.Errorf("disjoint Subtract = %v", got)
	}
	// Full coverage returns nothing.
	if got := b.Subtract(b.Grow(1)); len(got) != 0 {
		t.Errorf("covered Subtract = %v", got)
	}
}

func TestCellsIteration(t *testing.T) {
	b := NewBox2(1, 2, 3, 4)
	var seen []IntVect
	b.Cells(func(p IntVect) { seen = append(seen, p) })
	want := []IntVect{IV2(1, 2), IV2(2, 2), IV2(1, 3), IV2(2, 3)}
	if len(seen) != len(want) {
		t.Fatalf("Cells visited %d cells, want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("cell %d = %v, want %v", i, seen[i], want[i])
		}
	}
}

func TestLongestDim(t *testing.T) {
	if d := NewBox2(0, 0, 10, 3).LongestDim(); d != 0 {
		t.Errorf("LongestDim = %d, want 0", d)
	}
	if d := NewBox2(0, 0, 3, 10).LongestDim(); d != 1 {
		t.Errorf("LongestDim = %d, want 1", d)
	}
}

// randomBox returns a box inside [-20,20]^2 with sides in [1,10].
func randomBox(r *rand.Rand) Box {
	x, y := r.Intn(40)-20, r.Intn(40)-20
	return NewBox2(x, y, x+1+r.Intn(10), y+1+r.Intn(10))
}

func TestPropertyIntersectionCommutes(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a, b := randomBox(r), randomBox(r)
		ab, ba := a.Intersect(b), b.Intersect(a)
		if ab.Volume() != ba.Volume() {
			t.Fatalf("intersection volume not commutative: %v vs %v", ab, ba)
		}
		if !ab.Empty() && ab != ba {
			t.Fatalf("intersection not commutative: %v vs %v", ab, ba)
		}
	}
}

func TestPropertySubtractPartition(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a, b := randomBox(r), randomBox(r)
		parts := a.Subtract(b)
		var vol int64
		for _, p := range parts {
			vol += p.Volume()
		}
		if want := a.Volume() - a.Intersect(b).Volume(); vol != want {
			t.Fatalf("subtract volume %d, want %d (a=%v b=%v)", vol, want, a, b)
		}
	}
}

func TestPropertyRefineVolume(t *testing.T) {
	f := func(x, y int8, w, h uint8) bool {
		b := NewBox2(int(x), int(y), int(x)+int(w%16)+1, int(y)+int(h%16)+1)
		return b.Refine(2).Volume() == 4*b.Volume() &&
			b.Refine(4).Volume() == 16*b.Volume()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyCoarsenCovers(t *testing.T) {
	f := func(x, y int8, w, h uint8) bool {
		b := NewBox2(int(x), int(y), int(x)+int(w%16)+1, int(y)+int(h%16)+1)
		// The refined coarsened box must cover the original.
		return b.Coarsen(2).Refine(2).ContainsBox(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
