package geom

import "fmt"

// Box is an axis-aligned integer rectangle (2-D) or cuboid (3-D) of grid
// cells. Lo is inclusive, Hi is exclusive. Dim is the number of active
// dimensions (2 or 3); unused components of Lo/Hi must satisfy Lo=0, Hi=1
// so that volumes multiply out correctly.
type Box struct {
	Lo, Hi IntVect
	Dim    int
}

// NewBox2 returns the 2-D box [x0,x1) x [y0,y1).
func NewBox2(x0, y0, x1, y1 int) Box {
	return Box{Lo: IntVect{x0, y0, 0}, Hi: IntVect{x1, y1, 1}, Dim: 2}
}

// NewBox3 returns the 3-D box [x0,x1) x [y0,y1) x [z0,z1).
func NewBox3(x0, y0, z0, x1, y1, z1 int) Box {
	return Box{Lo: IntVect{x0, y0, z0}, Hi: IntVect{x1, y1, z1}, Dim: 3}
}

// Empty reports whether the box contains no cells.
func (b Box) Empty() bool {
	if b.Dim == 0 {
		return true
	}
	for d := 0; d < b.Dim; d++ {
		if b.Hi[d] <= b.Lo[d] {
			return true
		}
	}
	return false
}

// Volume returns the number of cells in the box (0 if empty).
func (b Box) Volume() int64 {
	if b.Empty() {
		return 0
	}
	v := int64(1)
	for d := 0; d < b.Dim; d++ {
		v *= int64(b.Hi[d] - b.Lo[d])
	}
	return v
}

// Size returns the extent of the box along dimension d.
func (b Box) Size(d int) int { return b.Hi[d] - b.Lo[d] }

// Surface returns the number of boundary faces of the box, i.e. the count
// of (cell, face) pairs on the box surface. For a 2-D box of size nx x ny
// this is 2*(nx+ny); it is the ghost-exchange volume for a one-cell-wide
// halo.
func (b Box) Surface() int64 {
	if b.Empty() {
		return 0
	}
	var s int64
	for d := 0; d < b.Dim; d++ {
		face := int64(1)
		for e := 0; e < b.Dim; e++ {
			if e != d {
				face *= int64(b.Hi[e] - b.Lo[e])
			}
		}
		s += 2 * face
	}
	return s
}

// Contains reports whether cell p lies inside the box.
func (b Box) Contains(p IntVect) bool {
	for d := 0; d < b.Dim; d++ {
		if p[d] < b.Lo[d] || p[d] >= b.Hi[d] {
			return false
		}
	}
	return !b.Empty()
}

// ContainsBox reports whether o is entirely inside b. An empty o is
// contained in anything.
func (b Box) ContainsBox(o Box) bool {
	if o.Empty() {
		return true
	}
	return o.Lo.AllGE(b.Lo, b.Dim) && o.Hi.AllLE(b.Hi, b.Dim)
}

// Intersect returns the overlap of b and o (possibly empty).
func (b Box) Intersect(o Box) Box {
	r := Box{Lo: b.Lo.Max(o.Lo), Hi: b.Hi.Min(o.Hi), Dim: b.Dim}
	if r.Empty() {
		return Box{Dim: b.Dim, Lo: r.Lo, Hi: r.Lo}
	}
	return r
}

// Intersects reports whether b and o share at least one cell.
func (b Box) Intersects(o Box) bool {
	for d := 0; d < b.Dim; d++ {
		if b.Hi[d] <= o.Lo[d] || o.Hi[d] <= b.Lo[d] {
			return false
		}
	}
	return !b.Empty() && !o.Empty()
}

// Union returns the smallest box containing both b and o.
func (b Box) Union(o Box) Box {
	if b.Empty() {
		return o
	}
	if o.Empty() {
		return b
	}
	return Box{Lo: b.Lo.Min(o.Lo), Hi: b.Hi.Max(o.Hi), Dim: b.Dim}
}

// Grow returns the box expanded by n cells in every direction (negative n
// shrinks). The result may be empty for negative n.
func (b Box) Grow(n int) Box {
	r := b
	for d := 0; d < b.Dim; d++ {
		r.Lo[d] -= n
		r.Hi[d] += n
	}
	return r
}

// Shift returns the box translated by v.
func (b Box) Shift(v IntVect) Box {
	r := b
	for d := 0; d < b.Dim; d++ {
		r.Lo[d] += v[d]
		r.Hi[d] += v[d]
	}
	return r
}

// Refine returns the box mapped to a grid r times finer: indices scale
// by r. Refining then coarsening is the identity.
func (b Box) Refine(r int) Box {
	res := b
	for d := 0; d < b.Dim; d++ {
		res.Lo[d] = b.Lo[d] * r
		res.Hi[d] = b.Hi[d] * r
	}
	return res
}

// Coarsen returns the box mapped to a grid r times coarser, rounding
// outward so the coarse box covers every fine cell (floor for Lo,
// ceiling for Hi).
func (b Box) Coarsen(r int) Box {
	res := b
	for d := 0; d < b.Dim; d++ {
		res.Lo[d] = floorDiv(b.Lo[d], r)
		res.Hi[d] = ceilDiv(b.Hi[d], r)
	}
	return res
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func ceilDiv(a, b int) int { return -floorDiv(-a, b) }

// ChopDim splits the box at coordinate c along dimension d, returning the
// lower part [Lo, c) and the upper part [c, Hi). c must satisfy
// Lo[d] <= c <= Hi[d]; out-of-range values are clamped.
func (b Box) ChopDim(d, c int) (lo, hi Box) {
	if c < b.Lo[d] {
		c = b.Lo[d]
	}
	if c > b.Hi[d] {
		c = b.Hi[d]
	}
	lo, hi = b, b
	lo.Hi[d] = c
	hi.Lo[d] = c
	return lo, hi
}

// LongestDim returns the dimension along which the box is largest.
func (b Box) LongestDim() int {
	best, bd := -1, 0
	for d := 0; d < b.Dim; d++ {
		if s := b.Size(d); s > best {
			best, bd = s, d
		}
	}
	return bd
}

// Subtract returns b minus o as a list of disjoint boxes. The result is
// empty when o covers b, and is {b} when they do not intersect.
func (b Box) Subtract(o Box) []Box {
	ov := b.Intersect(o)
	if ov.Empty() {
		if b.Empty() {
			return nil
		}
		return []Box{b}
	}
	var out []Box
	rem := b
	for d := 0; d < b.Dim; d++ {
		if rem.Lo[d] < ov.Lo[d] {
			lo, hi := rem.ChopDim(d, ov.Lo[d])
			if !lo.Empty() {
				out = append(out, lo)
			}
			rem = hi
		}
		if ov.Hi[d] < rem.Hi[d] {
			lo, hi := rem.ChopDim(d, ov.Hi[d])
			if !hi.Empty() {
				out = append(out, hi)
			}
			rem = lo
		}
	}
	return out
}

// Cells calls f for every cell of the box in row-major order (x fastest).
func (b Box) Cells(f func(p IntVect)) {
	if b.Empty() {
		return
	}
	var p IntVect
	zlo, zhi := 0, 1
	if b.Dim == 3 {
		zlo, zhi = b.Lo[2], b.Hi[2]
	}
	for z := zlo; z < zhi; z++ {
		for y := b.Lo[1]; y < b.Hi[1]; y++ {
			for x := b.Lo[0]; x < b.Hi[0]; x++ {
				p[0], p[1], p[2] = x, y, z
				f(p)
			}
		}
	}
}

func (b Box) String() string {
	if b.Dim == 3 {
		return fmt.Sprintf("[%d:%d,%d:%d,%d:%d]", b.Lo[0], b.Hi[0], b.Lo[1], b.Hi[1], b.Lo[2], b.Hi[2])
	}
	return fmt.Sprintf("[%d:%d,%d:%d]", b.Lo[0], b.Hi[0], b.Lo[1], b.Hi[1])
}
