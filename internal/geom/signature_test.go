package geom

import (
	"math/rand"
	"testing"
)

func TestSignatureDeterministicAndCloneStable(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		bl := randomBoxList(r, 1+r.Intn(40))
		if trial%2 == 1 {
			bl = randomBoxList3(r, 1+r.Intn(40))
		}
		sig := bl.Signature()
		if sig != bl.Signature() {
			t.Fatal("signature not deterministic")
		}
		if got := bl.Clone().Signature(); got != sig {
			t.Fatalf("clone signature %s != original %s", got, sig)
		}
	}
}

func TestSignatureSensitivity(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	for trial := 0; trial < 50; trial++ {
		bl := randomBoxList(r, 2+r.Intn(40))
		sig := bl.Signature()

		// Mutating any coordinate of any box changes the hash.
		mut := bl.Clone()
		i := r.Intn(len(mut))
		if r.Intn(2) == 0 {
			mut[i].Lo[r.Intn(2)]--
		} else {
			mut[i].Hi[r.Intn(2)]++
		}
		if mut.Signature() == sig {
			t.Fatalf("coordinate mutation of box %d kept signature %s", i, sig)
		}

		// Dropping or appending a box changes the hash.
		if bl[:len(bl)-1].Signature() == sig {
			t.Fatal("truncated list kept signature")
		}
		if append(bl.Clone(), randomBox(r)).Signature() == sig {
			t.Fatal("extended list kept signature")
		}
	}
}

func TestSignatureOrderAndDimMatter(t *testing.T) {
	a, b := NewBox2(0, 0, 4, 4), NewBox2(8, 8, 12, 12)
	if (BoxList{a, b}).Signature() == (BoxList{b, a}).Signature() {
		t.Error("box order should change the signature")
	}
	// A 2-D box and its z-degenerate 3-D twin cover the same cells but
	// are structurally distinct.
	if (BoxList{NewBox2(0, 0, 4, 4)}).Signature() == (BoxList{NewBox3(0, 0, 0, 4, 4, 1)}).Signature() {
		t.Error("dimensionality should change the signature")
	}
	if (BoxList{}).Signature() == (BoxList{{Dim: 2}}).Signature() {
		t.Error("empty list and list of one empty box should differ")
	}
}
