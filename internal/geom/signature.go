package geom

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Signature is a deterministic content hash of a geometric object. Two
// objects have equal signatures exactly when their canonical encodings
// are byte-identical, so a signature can stand in for the object as a
// cache key (the partition cache is content-addressed by hierarchy
// signature). SHA-256 keeps accidental collisions out of the picture.
type Signature [sha256.Size]byte

// String returns the full hexadecimal form of the signature.
func (s Signature) String() string { return hex.EncodeToString(s[:]) }

// Short returns the first 12 hex digits — enough to recognize a
// signature in logs and headers.
func (s Signature) Short() string { return hex.EncodeToString(s[:6]) }

// appendBox appends the canonical little-endian encoding of b: Dim,
// then every Lo and Hi component. Unused components are pinned at
// Lo=0/Hi=1 by construction, so boxes of different dimensionality can
// never alias.
func appendBox(buf []byte, b Box) []byte {
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], uint64(b.Dim))
	buf = append(buf, w[:]...)
	for d := 0; d < MaxDim; d++ {
		binary.LittleEndian.PutUint64(w[:], uint64(int64(b.Lo[d])))
		buf = append(buf, w[:]...)
	}
	for d := 0; d < MaxDim; d++ {
		binary.LittleEndian.PutUint64(w[:], uint64(int64(b.Hi[d])))
		buf = append(buf, w[:]...)
	}
	return buf
}

// AppendEncoding appends the canonical encoding of the list (length
// header plus every box, in order) to buf. Hashes that cover several
// lists — e.g. a hierarchy signature spanning levels — compose these
// encodings instead of mixing finished digests.
func (bl BoxList) AppendEncoding(buf []byte) []byte {
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], uint64(len(bl)))
	buf = append(buf, w[:]...)
	for _, b := range bl {
		buf = appendBox(buf, b)
	}
	return buf
}

// Signature returns the content hash of the list. Box order matters:
// a BoxList is an ordered collection, and partitioners are sensitive to
// the order, so two lists covering the same region in different orders
// are deliberately distinct.
func (bl BoxList) Signature() Signature {
	return Signature(sha256.Sum256(bl.AppendEncoding(nil)))
}
