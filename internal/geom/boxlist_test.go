package geom

import (
	"math/rand"
	"testing"
)

// randomDisjointList builds a disjoint list by carving random boxes out of
// a domain and keeping the non-overlapping parts.
func randomDisjointList(r *rand.Rand, n int) BoxList {
	var out BoxList
	for len(out) < n {
		c := randomBox(r)
		ok := true
		for _, b := range out {
			if b.Intersects(c) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	return out
}

func TestBoxListTotals(t *testing.T) {
	bl := BoxList{NewBox2(0, 0, 2, 2), NewBox2(4, 4, 6, 8)}
	if bl.TotalVolume() != 4+8 {
		t.Errorf("TotalVolume = %d", bl.TotalVolume())
	}
	if bl.TotalSurface() != 8+12 {
		t.Errorf("TotalSurface = %d", bl.TotalSurface())
	}
	if bl.Bounds() != NewBox2(0, 0, 6, 8) {
		t.Errorf("Bounds = %v", bl.Bounds())
	}
}

func TestBoxListDisjoint(t *testing.T) {
	if !(BoxList{NewBox2(0, 0, 2, 2), NewBox2(2, 0, 4, 2)}).Disjoint() {
		t.Error("adjacent boxes reported overlapping")
	}
	if (BoxList{NewBox2(0, 0, 3, 3), NewBox2(2, 2, 4, 4)}).Disjoint() {
		t.Error("overlapping boxes reported disjoint")
	}
}

func TestBoxListSubtract(t *testing.T) {
	domain := BoxList{NewBox2(0, 0, 10, 10)}
	holes := BoxList{NewBox2(1, 1, 3, 3), NewBox2(5, 5, 8, 9)}
	rem := domain.Subtract(holes)
	want := domain.TotalVolume() - holes.TotalVolume()
	if rem.TotalVolume() != want {
		t.Errorf("Subtract volume = %d, want %d", rem.TotalVolume(), want)
	}
	if !rem.Disjoint() {
		t.Error("Subtract result not disjoint")
	}
	for _, h := range holes {
		for _, b := range rem {
			if b.Intersects(h) {
				t.Errorf("remainder %v intersects hole %v", b, h)
			}
		}
	}
}

func TestBoxListCoversBox(t *testing.T) {
	bl := BoxList{NewBox2(0, 0, 4, 8), NewBox2(4, 0, 8, 8)}
	if !bl.CoversBox(NewBox2(1, 1, 7, 7)) {
		t.Error("union should cover interior box")
	}
	if bl.CoversBox(NewBox2(6, 6, 10, 10)) {
		t.Error("union should not cover protruding box")
	}
}

func TestOverlapVolumeMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		a := randomDisjointList(r, 1+r.Intn(12))
		b := randomDisjointList(r, 1+r.Intn(12))
		fast := OverlapVolume(a, b)
		slow := OverlapVolumeNaive(a, b)
		if fast != slow {
			t.Fatalf("trial %d: sweep=%d naive=%d\na=%v\nb=%v", trial, fast, slow, a, b)
		}
	}
}

func TestOverlapVolumeSelf(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	bl := randomDisjointList(r, 10)
	if got := OverlapVolume(bl, bl); got != bl.TotalVolume() {
		t.Errorf("self-overlap = %d, want %d", got, bl.TotalVolume())
	}
}

func TestOverlapVolumeEdgeCases(t *testing.T) {
	if OverlapVolume(nil, BoxList{NewBox2(0, 0, 2, 2)}) != 0 {
		t.Error("overlap with empty list should be 0")
	}
	// Face-adjacent boxes share no cells.
	a := BoxList{NewBox2(0, 0, 4, 4)}
	b := BoxList{NewBox2(4, 0, 8, 4)}
	if OverlapVolume(a, b) != 0 {
		t.Error("face-adjacent lists should have zero overlap")
	}
}

func TestSimplifyMergesNeighbours(t *testing.T) {
	bl := BoxList{NewBox2(0, 0, 4, 4), NewBox2(4, 0, 8, 4), NewBox2(0, 4, 8, 8)}
	s := bl.Simplify()
	if len(s) != 1 || s[0] != NewBox2(0, 0, 8, 8) {
		t.Errorf("Simplify = %v, want single [0:8,0:8]", s)
	}
	if s.TotalVolume() != bl.TotalVolume() {
		t.Error("Simplify changed covered volume")
	}
}

func TestSimplifyPreservesRegion(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		bl := randomDisjointList(r, 8)
		s := bl.Simplify()
		if s.TotalVolume() != bl.TotalVolume() {
			t.Fatalf("Simplify changed volume: %d -> %d", bl.TotalVolume(), s.TotalVolume())
		}
		if !s.Disjoint() {
			t.Fatal("Simplify result not disjoint")
		}
	}
}

func TestRefineCoarsenList(t *testing.T) {
	bl := BoxList{NewBox2(0, 0, 2, 2), NewBox2(3, 3, 5, 4)}
	if got := bl.Refine(2).TotalVolume(); got != 4*bl.TotalVolume() {
		t.Errorf("Refine volume = %d", got)
	}
	rt := bl.Refine(2).Coarsen(2)
	for i := range bl {
		if rt[i] != bl[i] {
			t.Errorf("round trip box %d = %v, want %v", i, rt[i], bl[i])
		}
	}
}

func TestSortByLoDeterministic(t *testing.T) {
	bl := BoxList{NewBox2(5, 0, 6, 1), NewBox2(0, 0, 1, 1), NewBox2(0, 3, 1, 4)}
	bl.SortByLo()
	if bl[0] != NewBox2(0, 0, 1, 1) || bl[1] != NewBox2(5, 0, 6, 1) || bl[2] != NewBox2(0, 3, 1, 4) {
		t.Errorf("SortByLo order = %v", bl)
	}
}

func BenchmarkOverlapVolumeSweep(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	x := randomDisjointList(r, 40)
	y := randomDisjointList(r, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OverlapVolume(x, y)
	}
}
