// Package trace captures and replays SAMR application traces: the
// sequence of grid-hierarchy snapshots an adaptive run produces,
// independent of any partitioning. This mirrors the Rutgers experimental
// process the paper uses ("this trace captures the state of the SAMR
// grid hierarchy for the application at the regrid step and is
// independent of any partitioning").
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"samr/internal/geom"
	"samr/internal/grid"
)

// Snapshot is the hierarchy state at the end of one coarse time step.
type Snapshot struct {
	// Step is the coarse time-step index (0-based).
	Step int
	// Time is the physical simulation time at the snapshot.
	Time float64
	// H is the grid hierarchy; snapshots own their hierarchies.
	H *grid.Hierarchy
}

// Trace is a full application run: metadata plus ordered snapshots.
type Trace struct {
	// App names the application kernel (e.g. "BL2D").
	App string
	// RefRatio is the space/time refinement factor.
	RefRatio int
	// MaxLevels is the level budget the run was configured with.
	MaxLevels int
	// Domain is the base-level index-space box.
	Domain geom.Box
	// Snapshots are ordered by Step.
	Snapshots []Snapshot
}

// Append adds a snapshot, deep-copying the hierarchy so later driver
// mutations cannot corrupt the trace.
func (t *Trace) Append(step int, time float64, h *grid.Hierarchy) {
	t.Snapshots = append(t.Snapshots, Snapshot{Step: step, Time: time, H: h.Clone()})
}

// Len returns the number of snapshots.
func (t *Trace) Len() int { return len(t.Snapshots) }

// Validate checks every snapshot's hierarchy invariants and the step
// ordering.
func (t *Trace) Validate() error {
	for i, s := range t.Snapshots {
		if err := s.H.Validate(); err != nil {
			return fmt.Errorf("trace: snapshot %d: %w", i, err)
		}
		if i > 0 && s.Step <= t.Snapshots[i-1].Step {
			return fmt.Errorf("trace: snapshot %d step %d not increasing", i, s.Step)
		}
	}
	return nil
}

// magic identifies the binary trace format; the trailing digit is the
// format version.
var magic = [8]byte{'S', 'A', 'M', 'R', 'T', 'R', 'C', '1'}

// Write serializes the trace in the versioned binary format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	writeString(bw, t.App)
	writeI64(bw, int64(t.RefRatio))
	writeI64(bw, int64(t.MaxLevels))
	writeBox(bw, t.Domain)
	writeI64(bw, int64(len(t.Snapshots)))
	for _, s := range t.Snapshots {
		writeI64(bw, int64(s.Step))
		if err := binary.Write(bw, binary.LittleEndian, s.Time); err != nil {
			return err
		}
		writeI64(bw, int64(len(s.H.Levels)))
		for _, lev := range s.H.Levels {
			writeI64(bw, int64(len(lev.Boxes)))
			for _, b := range lev.Boxes {
				writeBox(bw, b)
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m[:])
	}
	t := &Trace{}
	var err error
	if t.App, err = readString(br); err != nil {
		return nil, err
	}
	rr, err := readI64(br)
	if err != nil {
		return nil, err
	}
	t.RefRatio = int(rr)
	ml, err := readI64(br)
	if err != nil {
		return nil, err
	}
	t.MaxLevels = int(ml)
	if t.Domain, err = readBox(br); err != nil {
		return nil, err
	}
	nSnap, err := readI64(br)
	if err != nil {
		return nil, err
	}
	if nSnap < 0 || nSnap > 1<<24 {
		return nil, fmt.Errorf("trace: implausible snapshot count %d", nSnap)
	}
	for i := int64(0); i < nSnap; i++ {
		var s Snapshot
		st, err := readI64(br)
		if err != nil {
			return nil, err
		}
		s.Step = int(st)
		if err := binary.Read(br, binary.LittleEndian, &s.Time); err != nil {
			return nil, err
		}
		nLev, err := readI64(br)
		if err != nil {
			return nil, err
		}
		if nLev < 0 || nLev > 64 {
			return nil, fmt.Errorf("trace: implausible level count %d", nLev)
		}
		h := &grid.Hierarchy{Domain: t.Domain, RefRatio: t.RefRatio}
		for l := int64(0); l < nLev; l++ {
			nBox, err := readI64(br)
			if err != nil {
				return nil, err
			}
			if nBox < 0 || nBox > 1<<24 {
				return nil, fmt.Errorf("trace: implausible box count %d", nBox)
			}
			lev := grid.Level{Boxes: make(geom.BoxList, nBox)}
			for bi := int64(0); bi < nBox; bi++ {
				if lev.Boxes[bi], err = readBox(br); err != nil {
					return nil, err
				}
			}
			h.Levels = append(h.Levels, lev)
		}
		s.H = h
		t.Snapshots = append(t.Snapshots, s)
	}
	return t, nil
}

func writeI64(w io.Writer, v int64) {
	binary.Write(w, binary.LittleEndian, v) //nolint:errcheck // bufio defers errors to Flush
}

func readI64(r io.Reader) (int64, error) {
	var v int64
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func writeString(w *bufio.Writer, s string) {
	writeI64(w, int64(len(s)))
	w.WriteString(s) //nolint:errcheck
}

func readString(r *bufio.Reader) (string, error) {
	n, err := readI64(r)
	if err != nil {
		return "", err
	}
	if n < 0 || n > 1<<16 {
		return "", fmt.Errorf("trace: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeBox(w io.Writer, b geom.Box) {
	writeI64(w, int64(b.Dim))
	for d := 0; d < geom.MaxDim; d++ {
		writeI64(w, int64(b.Lo[d]))
	}
	for d := 0; d < geom.MaxDim; d++ {
		writeI64(w, int64(b.Hi[d]))
	}
}

func readBox(r io.Reader) (geom.Box, error) {
	var b geom.Box
	dim, err := readI64(r)
	if err != nil {
		return b, err
	}
	if dim < 0 || dim > geom.MaxDim {
		return b, fmt.Errorf("trace: bad box dimension %d", dim)
	}
	b.Dim = int(dim)
	for d := 0; d < geom.MaxDim; d++ {
		v, err := readI64(r)
		if err != nil {
			return b, err
		}
		b.Lo[d] = int(v)
	}
	for d := 0; d < geom.MaxDim; d++ {
		v, err := readI64(r)
		if err != nil {
			return b, err
		}
		b.Hi[d] = int(v)
	}
	return b, nil
}
