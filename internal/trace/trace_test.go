package trace

import (
	"bytes"
	"strings"
	"testing"

	"samr/internal/geom"
	"samr/internal/grid"
)

func sampleTrace() *Trace {
	dom := geom.NewBox2(0, 0, 16, 16)
	t := &Trace{App: "TP2D", RefRatio: 2, MaxLevels: 3, Domain: dom}
	h := grid.NewHierarchy(dom, 2)
	t.Append(0, 0.0, h)
	h.Levels = append(h.Levels, grid.Level{Boxes: geom.BoxList{geom.NewBox2(4, 4, 12, 12)}})
	t.Append(1, 0.1, h)
	h.Levels[1].Boxes[0] = geom.NewBox2(6, 6, 14, 14)
	t.Append(2, 0.2, h)
	return t
}

func TestAppendDeepCopies(t *testing.T) {
	tr := sampleTrace()
	// Snapshot 1 and 2 must differ even though the same hierarchy object
	// was mutated between appends.
	b1 := tr.Snapshots[1].H.Levels[1].Boxes[0]
	b2 := tr.Snapshots[2].H.Levels[1].Boxes[0]
	if b1 == b2 {
		t.Error("Append did not deep-copy the hierarchy")
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.App != tr.App || got.RefRatio != tr.RefRatio || got.MaxLevels != tr.MaxLevels {
		t.Errorf("metadata mismatch: %+v", got)
	}
	if got.Domain != tr.Domain {
		t.Errorf("domain = %v, want %v", got.Domain, tr.Domain)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("snapshot count = %d, want %d", got.Len(), tr.Len())
	}
	for i := range tr.Snapshots {
		a, b := tr.Snapshots[i], got.Snapshots[i]
		if a.Step != b.Step || a.Time != b.Time {
			t.Errorf("snapshot %d header mismatch", i)
		}
		if a.H.NumPoints() != b.H.NumPoints() {
			t.Errorf("snapshot %d points %d != %d", i, a.H.NumPoints(), b.H.NumPoints())
		}
		if len(a.H.Levels) != len(b.H.Levels) {
			t.Fatalf("snapshot %d level count mismatch", i)
		}
		for l := range a.H.Levels {
			for bi := range a.H.Levels[l].Boxes {
				if a.H.Levels[l].Boxes[bi] != b.H.Levels[l].Boxes[bi] {
					t.Errorf("snapshot %d level %d box %d mismatch", i, l, bi)
				}
			}
		}
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(strings.NewReader("NOTATRACEFILE...")); err == nil {
		t.Error("Read should reject bad magic")
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{9, len(full) / 2, len(full) - 3} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("Read of %d/%d bytes should fail", cut, len(full))
		}
	}
}

func TestValidate(t *testing.T) {
	tr := sampleTrace()
	if err := tr.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	// Non-increasing steps.
	bad := sampleTrace()
	bad.Snapshots[2].Step = 1
	if err := bad.Validate(); err == nil {
		t.Error("Validate should reject non-increasing steps")
	}
	// Broken hierarchy.
	bad2 := sampleTrace()
	bad2.Snapshots[1].H.Levels[1].Boxes = append(bad2.Snapshots[1].H.Levels[1].Boxes,
		bad2.Snapshots[1].H.Levels[1].Boxes[0])
	if err := bad2.Validate(); err == nil {
		t.Error("Validate should reject overlapping level boxes")
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	tr := &Trace{App: "X", RefRatio: 2, MaxLevels: 1, Domain: geom.NewBox2(0, 0, 4, 4)}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("empty trace read back with %d snapshots", got.Len())
	}
}
