package core

import (
	"samr/internal/grid"
	"samr/internal/partition"
	"samr/internal/sfc"
)

// MetaPartitioner realizes the paper's conceptual meta-partitioner
// (Figure 2): at every invocation it classifies the current application
// state and selects/configures the most appropriate partitioner,
// enabling fully dynamic PACs — the partitioner P(t) becomes a function
// of the application A(t) and computer C(t).
//
// The mapping from classification point to partitioner follows the
// partitioner characterizations of section 2.2 and the trade-off
// discussion of section 4:
//
//   - speed pressure (low DimII): a cheap domain-based Morton cut with a
//     coarse atomic unit;
//   - migration pressure (high DimIII): a fully ordered Hilbert
//     domain-based partitioning wrapped with the post-mapping label
//     remap — both remedies section 4 names ("invoking some kind of
//     post mapping technique ... or investing more time in creating a
//     more fully ordered SFC mapping");
//   - communication pressure (DimI high): the hybrid with a large
//     atomic unit and whole-block assignment (less surface);
//   - load-balance pressure (DimI low): the hybrid with a fine atomic
//     unit and fractional blocking (the "small atomic unit, large Q"
//     configuration the paper names for load-balance focus);
//   - otherwise: the hybrid's neutral default.
type MetaPartitioner struct {
	classifier *Classifier

	// The pre-configured stable of partitioners.
	fast          partition.Partitioner
	lowMig        partition.Partitioner
	lowComm       partition.Partitioner
	lowImb        partition.Partitioner
	neutral       partition.Partitioner
	lastChoice    partition.Partitioner
	lastCandidate partition.Partitioner
	lastSample    Sample
	haveSample    bool

	// Thresholds of the selection rules; exposed for ablation.
	SpeedCutoff     float64
	MigrationCutoff float64
	CommCutoff      float64
	ImbalanceCutoff float64
}

// NewMetaPartitioner builds a meta-partitioner with the default stable
// and thresholds. partitionCost seeds the dimension-II model.
func NewMetaPartitioner(partitionCost float64) *MetaPartitioner {
	return &MetaPartitioner{
		classifier:      NewClassifier(partitionCost),
		fast:            &partition.DomainSFC{Curve: sfc.Morton, UnitSize: 4},
		lowMig:          partition.NewPostMapped(&partition.DomainSFC{Curve: sfc.Hilbert, UnitSize: 2}),
		lowComm:         &partition.NatureFable{Curve: sfc.Hilbert, AtomicUnit: 4, Groups: 4, FractionalBlocking: false},
		lowImb:          &partition.NatureFable{Curve: sfc.Hilbert, AtomicUnit: 1, Groups: 4, FractionalBlocking: true},
		neutral:         partition.NewNatureFable(),
		SpeedCutoff:     0.05,
		MigrationCutoff: 0.12,
		CommCutoff:      0.75,
		ImbalanceCutoff: 0.45,
	}
}

// Select classifies the hierarchy and returns the partitioner the
// classification point maps to. timeSlot is the interval since the last
// invocation (seconds).
//
// Selection is damped with two-vote hysteresis: the choice changes only
// when two consecutive classifications agree on the same candidate.
// Switching partitioners is itself a migration event (the new layout
// reassigns data wholesale), so reacting to single-step spikes would
// cause exactly the thrashing the ARMaDA sliding-window history was
// introduced to prevent.
func (m *MetaPartitioner) Select(h *grid.Hierarchy, timeSlot float64) partition.Partitioner {
	s := m.classifier.Classify(h, timeSlot)
	m.lastSample = s
	m.haveSample = true
	var candidate partition.Partitioner
	switch {
	case s.DimII < m.SpeedCutoff && s.SizeNorm < 0.5:
		// Little is requested and the grid is small: speed wins.
		candidate = m.fast
	case s.DimIII > m.MigrationCutoff:
		candidate = m.lowMig
	case s.DimI > m.CommCutoff:
		candidate = m.lowComm
	case s.DimI < m.ImbalanceCutoff:
		candidate = m.lowImb
	default:
		candidate = m.neutral
	}
	prev := m.lastCandidate
	m.lastCandidate = candidate
	if m.lastChoice == nil || candidate == prev {
		m.lastChoice = candidate
	}
	return m.lastChoice
}

// LastSample returns the classification sample behind the most recent
// Select, and whether a Select has happened yet.
func (m *MetaPartitioner) LastSample() (Sample, bool) { return m.lastSample, m.haveSample }

// Stable lists the partitioners the meta-partitioner chooses among;
// ablation C runs each as a static choice for comparison.
func (m *MetaPartitioner) Stable() []partition.Partitioner {
	return []partition.Partitioner{m.fast, m.lowMig, m.lowComm, m.lowImb, m.neutral}
}

// Reset clears the classification state (for replaying another trace).
func (m *MetaPartitioner) Reset() {
	m.classifier.Reset()
	m.lastChoice = nil
	m.lastCandidate = nil
	m.haveSample = false
}
