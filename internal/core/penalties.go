// Package core implements the paper's contribution: the continuous,
// absolute, partitioner-centric classification space for SAMR
// partitioning trade-offs and the ab-initio penalty models that map an
// (unpartitioned) grid-hierarchy state onto it.
//
// The space has three dimensions (Figure 3, right):
//
//	Dimension I   — load balance vs. communication      (Part I; recon-
//	                structed here from the grid-relative pressures)
//	Dimension II  — partitioning speed vs. quality      (section 4.3)
//	Dimension III — data migration                      (section 4.4)
//
// All penalties are pure functions of grid hierarchies: they never look
// at a partitioning, which is precisely the paper's point — a trivial
// monitoring of the application evaluates the current partitioning,
// whereas these models capture the inherent properties of the hierarchy.
package core

import (
	"samr/internal/geom"
	"samr/internal/grid"
)

// MigrationPenalty is beta_m, the paper's dimension-III model
// (section 4.4):
//
//	beta_m(H_{t-1}, H_t) = 1 - (1/|H_t|) * sum_l sum_i sum_j
//	                        | G^{l,i}_{t-1}  x  G^{l,j}_t |
//
// where x denotes grid intersection and |H_t| is the point count of the
// current hierarchy. The denominator is |H_t| (not |H_{t-1}|) per the
// paper's argument: growing grids move a large fraction of the small old
// grid; shrinking grids move only a small fraction of the large old one.
//
// The result is clamped to [0, 1]; it is 0 when the hierarchy did not
// change and approaches 1 when nothing overlaps (everything must move
// or be regenerated).
func MigrationPenalty(prev, cur *grid.Hierarchy) float64 {
	curPts := cur.NumPoints()
	if curPts == 0 {
		return 0
	}
	overlap := grid.TotalOverlap(prev, cur)
	p := 1 - float64(overlap)/float64(curPts)
	return clamp01(p)
}

// MigrationPenaltyDenominator selects the normalization of the overlap
// sum, for the denominator ablation (DESIGN.md, Ablation A).
type MigrationPenaltyDenominator int

const (
	// DenomCurrent uses |H_t| — the paper's choice.
	DenomCurrent MigrationPenaltyDenominator = iota
	// DenomPrevious uses |H_{t-1}| — matches the relative-migration
	// metric's normalization.
	DenomPrevious
	// DenomMax uses max(|H_{t-1}|, |H_t|) — the symmetric alternative.
	DenomMax
)

// MigrationPenaltyWith computes beta_m with an explicit choice of
// denominator; MigrationPenalty is MigrationPenaltyWith(DenomCurrent).
func MigrationPenaltyWith(prev, cur *grid.Hierarchy, d MigrationPenaltyDenominator) float64 {
	var denom int64
	switch d {
	case DenomPrevious:
		denom = prev.NumPoints()
	case DenomMax:
		denom = prev.NumPoints()
		if c := cur.NumPoints(); c > denom {
			denom = c
		}
	default:
		denom = cur.NumPoints()
	}
	if denom == 0 {
		return 0
	}
	overlap := grid.TotalOverlap(prev, cur)
	return clamp01(1 - float64(overlap)/float64(denom))
}

// CommGranularity is the atomic-unit edge length (in base cells) the
// communication penalty assumes for its worst-case distribution — the
// paper's experimental granularity (minimum block dimension) of 2.
const CommGranularity = 2

// CommunicationPenalty is beta_c: the worst-case communication pressure
// of the hierarchy, derived ab initio from the unpartitioned grid. The
// worst case assumes an adversarial distribution that cuts every
// atomic-unit boundary. A unit of granularity g (in base cells) spans
// g*r^l cells on level l, so its one-cell ghost ring involves ~4/(g*r^l)
// of its cells per face direction and twice that counting both sides of
// each cut; weighting by the level's local-step count r^l and
// normalizing by the workload W = sum_l vol_l * r^l, the level terms
// telescope:
//
//	beta_c = clamp( (8/g) * |H| / W )
//
// i.e. worst-case relative communication is governed by the ratio of
// grid points to workload — high when shallow levels dominate (little
// subcycling amortization of the cut surfaces), low when deep refined
// bulk dominates. An earlier variant also added the actual
// patch-boundary surface; it consistently degraded agreement with the
// measured relative communication (see EXPERIMENTS.md), so the model
// deliberately ignores patch shape.
//
// As the paper observes of its beta_c, this is aggressive ("it 'jumps'
// at potentially communication-heavy grids"): real partitioners —
// especially hybrids — cut far fewer boundaries than the adversarial
// distribution, so measured relative communication sits at or below
// this value.
func CommunicationPenalty(h *grid.Hierarchy) float64 {
	w := h.Workload()
	if w == 0 {
		return 0
	}
	pts := float64(h.NumPoints())
	return clamp01(8 * pts / (float64(CommGranularity) * float64(w)))
}

// LoadPenalty is beta_l: the load-concentration pressure of the
// hierarchy — how difficult the hierarchy makes load balancing for a
// locality-preserving (domain-based) partitioner. It is one minus the
// normalized participation ratio of the per-column workload
// distribution over the base domain: 0 for perfectly uniform work
// (trivial to balance), approaching 1 when all work is concentrated
// over a vanishing fraction of the domain (the paper's "small base-grid,
// many processors, many levels" pathology of section 3.1).
func LoadPenalty(h *grid.Hierarchy) float64 {
	base := h.Levels[0].Boxes
	baseCells := base.TotalVolume()
	if baseCells == 0 {
		return 0
	}
	// Column weights at the base-cell granularity would be expensive;
	// sample at a unit granularity that keeps ~1024 columns.
	unit := 1
	for (baseCells / int64(unit*unit)) > 1024 {
		unit *= 2
	}
	// One BoxIndex per level amortizes the per-column level scans: the
	// classifier calls LoadPenalty on every snapshot, so this loop is on
	// the model's hot path.
	indexes := make([]*geom.BoxIndex, len(h.Levels))
	for l, lev := range h.Levels {
		indexes[l] = geom.NewBoxIndex(lev.Boxes)
	}
	var sum, sumSq float64
	var n int64
	for _, bb := range base {
		for y := bb.Lo[1]; y < bb.Hi[1]; y += unit {
			for x := bb.Lo[0]; x < bb.Hi[0]; x += unit {
				ub := bb.Intersect(geom.NewBox2(x, y, x+unit, y+unit))
				w := float64(columnWorkload(h, indexes, ub))
				sum += w
				sumSq += w * w
				n++
			}
		}
	}
	if sum == 0 || n == 0 {
		return 0
	}
	// Participation ratio: (sum w)^2 / (n * sum w^2) is 1 for uniform
	// weights and 1/n for a single loaded column.
	pr := sum * sum / (float64(n) * sumSq)
	return clamp01(1 - pr)
}

// columnWorkload is the workload of the hierarchy column over the
// base-space box ub: overlap with every level (via the per-level box
// indexes) weighted by its local-step factor.
func columnWorkload(h *grid.Hierarchy, indexes []*geom.BoxIndex, ub geom.Box) int64 {
	var w int64
	fine := ub
	for l := 0; l < len(h.Levels); l++ {
		if l > 0 {
			fine = fine.Refine(h.RefRatio)
		}
		w += indexes[l].QueryVolume(fine) * h.StepFactor(l)
	}
	return w
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
