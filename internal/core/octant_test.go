package core

import (
	"testing"

	"samr/internal/geom"
	"samr/internal/grid"
)

func TestOctantIndexBijective(t *testing.T) {
	seen := map[int]bool{}
	for _, c := range []bool{false, true} {
		for _, s := range []bool{false, true} {
			for _, a := range []bool{false, true} {
				o := Octant{CommunicationDominated: c, Scattered: s, HighActivity: a}
				i := o.Index()
				if i < 0 || i > 7 {
					t.Fatalf("octant index %d out of range", i)
				}
				if seen[i] {
					t.Fatalf("octant index %d duplicated", i)
				}
				seen[i] = true
			}
		}
	}
	if len(seen) != 8 {
		t.Errorf("only %d distinct octants", len(seen))
	}
}

func TestOctantStringDistinct(t *testing.T) {
	a := Octant{}.String()
	b := Octant{CommunicationDominated: true}.String()
	if a == b {
		t.Error("octant strings should differ")
	}
}

func TestOctantClassifierScatter(t *testing.T) {
	c := NewOctantClassifier()
	scattered := baseHierarchy()
	scattered.Levels = append(scattered.Levels, grid.Level{Boxes: geom.BoxList{
		geom.NewBox2(0, 0, 4, 4), geom.NewBox2(20, 0, 24, 4),
		geom.NewBox2(0, 20, 4, 24), geom.NewBox2(20, 20, 24, 24),
		geom.NewBox2(40, 40, 44, 44),
	}})
	if o := c.Classify(scattered); !o.Scattered {
		t.Error("five separate patches should classify as scattered")
	}
	c.Reset()
	localized := refined(geom.NewBox2(8, 8, 24, 24))
	if o := c.Classify(localized); o.Scattered {
		t.Error("single patch should classify as localized")
	}
}

func TestOctantClassifierActivity(t *testing.T) {
	c := NewOctantClassifier()
	a := refined(geom.NewBox2(0, 0, 16, 16))
	if o := c.Classify(a); o.HighActivity {
		t.Error("first snapshot cannot be high-activity")
	}
	// Unchanged hierarchy: quiet.
	if o := c.Classify(a.Clone()); o.HighActivity {
		t.Error("identical snapshot should be low-activity")
	}
	// Jumped refinement: active.
	b := refined(geom.NewBox2(40, 40, 56, 56))
	if o := c.Classify(b); !o.HighActivity {
		t.Error("jumped refinement should be high-activity")
	}
}

func TestOctantDiscretenessVsContinuous(t *testing.T) {
	// The paper's core argument for the continuous space: a slowly
	// drifting hierarchy crosses octant boundaries in jumps while the
	// continuous coordinates move smoothly. Feed a drift and verify the
	// continuous DimIII changes gradually (bounded per-step delta)
	// while the octant either never changes or changes discretely.
	oc := NewOctantClassifier()
	cc := NewClassifier(0.01)
	var prevSample Sample
	maxDelta := 0.0
	transitions := 0
	prevOct := -1
	for s := 0; s < 12; s++ {
		h := refined(geom.NewBox2(s, 8, s+16, 24))
		o := oc.Classify(h)
		smp := cc.Classify(h, 1)
		if s > 0 {
			d := smp.DimIII - prevSample.DimIII
			if d < 0 {
				d = -d
			}
			if d > maxDelta {
				maxDelta = d
			}
			if o.Index() != prevOct {
				transitions++
			}
		}
		prevSample = smp
		prevOct = o.Index()
	}
	if maxDelta > 0.2 {
		t.Errorf("continuous classifier jumped by %f on a 1-cell drift", maxDelta)
	}
	_ = transitions // the octant path is free to jump; no assertion needed
}
