package core

import (
	"testing"

	"samr/internal/geom"
	"samr/internal/grid"
)

func TestClassifierFirstSample(t *testing.T) {
	c := NewClassifier(0.01)
	s := c.Classify(refined(geom.NewBox2(8, 8, 24, 24)), 1.0)
	if s.BetaM != 0 {
		t.Errorf("first sample beta_m = %f, want 0 (no previous state)", s.BetaM)
	}
	if s.SizeNorm != 1 {
		t.Errorf("first sample SizeNorm = %f, want 1 (it is the max so far)", s.SizeNorm)
	}
	if s.Step != 0 {
		t.Errorf("Step = %d", s.Step)
	}
}

func TestClassifierTracksMaxSize(t *testing.T) {
	c := NewClassifier(0.01)
	big := refined(geom.NewBox2(0, 0, 64, 64))
	small := refined(geom.NewBox2(0, 0, 16, 16))
	c.Classify(big, 1)
	s := c.Classify(small, 1)
	// |small| = 1024+256 = 1280; |big| = 1024+4096 = 5120.
	want := 1280.0 / 5120.0
	if s.SizeNorm < want-1e-9 || s.SizeNorm > want+1e-9 {
		t.Errorf("SizeNorm = %f, want %f", s.SizeNorm, want)
	}
}

func TestClassifierDimIRange(t *testing.T) {
	c := NewClassifier(0.01)
	for _, h := range []*grid.Hierarchy{
		baseHierarchy(),
		refined(geom.NewBox2(0, 0, 8, 8)),
		refined(geom.NewBox2(20, 20, 50, 52)),
	} {
		s := c.Classify(h, 1)
		if s.DimI < 0 || s.DimI > 1 || s.DimII < 0 || s.DimII > 1 || s.DimIII < 0 || s.DimIII > 1 {
			t.Fatalf("classification point out of cube: %+v", s.Point)
		}
	}
}

func TestClassifierDimINeutralOnFeaturelessGrid(t *testing.T) {
	// A flat base grid has beta_l = 0; DimI must not divide by zero and
	// should lean toward communication only as far as beta_c says.
	c := NewClassifier(0.01)
	s := c.Classify(baseHierarchy(), 1)
	if s.DimI != 1.0 { // beta_l = 0, beta_c = 0.125 -> DimI = 1
		t.Errorf("flat grid DimI = %f, want 1 (only comm pressure exists)", s.DimI)
	}
}

func TestClassifierDimIIRespondsToTimeSlot(t *testing.T) {
	// Larger time slots must never lower DimII (more room for quality).
	h := refined(geom.NewBox2(8, 8, 24, 24))
	cShort := NewClassifier(0.1)
	cLong := NewClassifier(0.1)
	sShort := cShort.Classify(h, 0.01)
	sLong := cLong.Classify(h, 10.0)
	if sLong.DimII < sShort.DimII {
		t.Errorf("DimII with long slot (%f) < with short slot (%f)", sLong.DimII, sShort.DimII)
	}
	if sLong.Offer <= sShort.Offer {
		t.Errorf("Offer: long %f <= short %f", sLong.Offer, sShort.Offer)
	}
}

func TestClassifierDimIIScalesWithNeed(t *testing.T) {
	// Section 4.2: a large imbalance at a grid-size peak matters more
	// than at a trough. Same penalties, smaller grid => smaller DimII.
	big := refined(geom.NewBox2(0, 0, 32, 32))
	small := refined(geom.NewBox2(0, 0, 16, 16))
	c := NewClassifier(0.1)
	sBig := c.Classify(big, 1)
	sSmall := c.Classify(small, 1)
	if sSmall.Need >= sBig.Need {
		t.Errorf("Need should shrink with grid size: small %f >= big %f", sSmall.Need, sBig.Need)
	}
}

func TestClassifierDimIIIIsMigrationPenalty(t *testing.T) {
	c := NewClassifier(0.01)
	a := refined(geom.NewBox2(0, 0, 16, 16))
	b := refined(geom.NewBox2(40, 40, 56, 56))
	c.Classify(a, 1)
	s := c.Classify(b, 1)
	want := MigrationPenalty(a, b)
	if s.DimIII != want {
		t.Errorf("DimIII = %f, want beta_m = %f", s.DimIII, want)
	}
}

func TestClassifierReset(t *testing.T) {
	c := NewClassifier(0.01)
	c.Classify(refined(geom.NewBox2(0, 0, 32, 32)), 1)
	c.Reset()
	s := c.Classify(refined(geom.NewBox2(0, 0, 8, 8)), 1)
	if s.BetaM != 0 || s.SizeNorm != 1 || s.Step != 0 {
		t.Errorf("Reset did not clear state: %+v", s)
	}
}

func TestTrajectoryLength(t *testing.T) {
	hs := []*grid.Hierarchy{
		refined(geom.NewBox2(0, 0, 16, 16)),
		refined(geom.NewBox2(8, 8, 24, 24)),
		refined(geom.NewBox2(16, 16, 32, 32)),
	}
	traj := Trajectory(hs, 1, 0.01)
	if len(traj) != 3 {
		t.Fatalf("trajectory length = %d", len(traj))
	}
	// Moving refinement: later samples must register migration.
	if traj[1].BetaM <= 0 || traj[2].BetaM <= 0 {
		t.Errorf("moving refinement should give positive beta_m: %f, %f",
			traj[1].BetaM, traj[2].BetaM)
	}
}

func TestMetaPartitionerSelection(t *testing.T) {
	m := NewMetaPartitioner(0.01)
	// First snapshot: no migration, a mid-size refined grid.
	h1 := refined(geom.NewBox2(8, 8, 24, 24))
	p1 := m.Select(h1, 1)
	if p1 == nil {
		t.Fatal("no partitioner selected")
	}
	if _, ok := m.LastSample(); !ok {
		t.Fatal("LastSample not recorded")
	}
	// Snapshots jumping around: sustained migration pressure must pick
	// the migration-oriented choice. Two consecutive votes are needed —
	// selection is damped with hysteresis to avoid thrashing.
	h2 := refined(geom.NewBox2(40, 40, 56, 56))
	m.Select(h2, 1)
	h3 := refined(geom.NewBox2(0, 40, 16, 56))
	p3 := m.Select(h3, 1)
	s, _ := m.LastSample()
	if s.DimIII > m.MigrationCutoff && p3.Name() != m.Stable()[1].Name() {
		t.Errorf("DimIII=%f should select the low-migration partitioner, got %s", s.DimIII, p3.Name())
	}
}

func TestMetaPartitionerHysteresis(t *testing.T) {
	// A single-step spike must not flip the choice; two consecutive
	// agreeing classifications must.
	m := NewMetaPartitioner(0.01)
	steady := refined(geom.NewBox2(8, 8, 24, 24))
	first := m.Select(steady, 1)
	// One migration spike: choice unchanged.
	spike := refined(geom.NewBox2(40, 40, 56, 56))
	if got := m.Select(spike, 1); got != first {
		t.Errorf("single spike flipped the choice to %s", got.Name())
	}
	// A second consecutive migration-pressure step: now it may flip.
	spike2 := refined(geom.NewBox2(0, 40, 16, 56))
	p := m.Select(spike2, 1)
	s, _ := m.LastSample()
	if s.DimIII > m.MigrationCutoff && p.Name() != m.Stable()[1].Name() {
		t.Errorf("sustained pressure (DimIII=%f) did not flip to low-migration, got %s",
			s.DimIII, p.Name())
	}
	// Reset clears the damping state.
	m.Reset()
	if _, ok := m.LastSample(); ok {
		t.Error("Reset did not clear the sample")
	}
}

func TestMetaPartitionerStableDistinct(t *testing.T) {
	m := NewMetaPartitioner(0.01)
	names := map[string]bool{}
	for _, p := range m.Stable() {
		if names[p.Name()] {
			t.Errorf("duplicate stable entry %s", p.Name())
		}
		names[p.Name()] = true
	}
	if len(names) != 5 {
		t.Errorf("stable size = %d, want 5", len(names))
	}
}

func TestMetaPartitionerDynamicChoiceVaries(t *testing.T) {
	// Feeding very different states should exercise at least two
	// different partitioners.
	m := NewMetaPartitioner(0.01)
	seen := map[string]bool{}
	states := []*grid.Hierarchy{
		baseHierarchy(),                       // featureless
		refined(geom.NewBox2(0, 0, 8, 8)),     // localized
		refined(geom.NewBox2(48, 48, 56, 56)), // jumped far: migration
		refined(geom.NewBox2(0, 0, 64, 64)),   // fully refined: comm-heavy
	}
	for _, h := range states {
		seen[m.Select(h, 1).Name()] = true
	}
	if len(seen) < 2 {
		t.Errorf("meta-partitioner never changed its choice: %v", seen)
	}
}
