package core

import (
	"samr/internal/grid"
)

// Point is a location in the continuous partitioner-centric
// classification space (Figure 3, right). Unlike the octant approach,
// coordinates are absolute and continuous; a simulation traces a smooth
// curve of Points, enabling fine-grained partitioner configuration as
// well as coarse selection.
type Point struct {
	// DimI in [0,1]: 0 = focus entirely on load balance, 1 = focus
	// entirely on reducing communication (trade-off 1, Part I).
	DimI float64
	// DimII in [0,1]: 0 = partition as fast as possible, 1 = invest in
	// overall quality (trade-off 2, section 4.3).
	DimII float64
	// DimIII in [0,1]: the need to optimize data migration — beta_m
	// itself (trade-off 3, section 4.4).
	DimIII float64
}

// Sample is one classification outcome: the space point plus the raw
// model quantities it was derived from, for inspection and plotting.
type Sample struct {
	Point
	// Step is the coarse step the sample describes.
	Step int
	// BetaL, BetaC, BetaM are the raw penalties.
	BetaL, BetaC, BetaM float64
	// SizeNorm is |H_t| normalized by the largest hierarchy seen so far
	// (section 4.2: the absolute importance of the relative metrics).
	SizeNorm float64
	// Need is quantity (1) of trade-off 2: mean penalty times SizeNorm.
	Need float64
	// Offer is quantity (2): the fraction of the inter-invocation time
	// slot available for partitioning.
	Offer float64
	// Points is |H_t|.
	Points int64
}

// Classifier maps a stream of hierarchy snapshots onto the
// classification space, maintaining the running state the model needs
// (largest hierarchy so far, previous snapshot, invocation timing).
// It is the "classify application state" component of the conceptual
// meta-partitioner (Figure 2).
type Classifier struct {
	prev      *grid.Hierarchy
	maxPoints int64
	step      int
	// PartitionCost estimates the seconds one repartitioning takes on
	// the current machine; it feeds trade-off 2's quantity (2).
	PartitionCost float64
}

// NewClassifier returns a classifier with the given partitioning-cost
// estimate (seconds per repartitioning invocation).
func NewClassifier(partitionCost float64) *Classifier {
	return &Classifier{PartitionCost: partitionCost}
}

// Classify consumes the next hierarchy snapshot. timeSlot is the
// physical (wall-clock) interval since the previous partitioner
// invocation — the paper proposes obtaining it from coarse-grained
// timer calls around the partitioner. The first call has no previous
// hierarchy; its BetaM is zero by definition.
func (c *Classifier) Classify(h *grid.Hierarchy, timeSlot float64) Sample {
	s := Sample{Step: c.step, Points: h.NumPoints()}
	c.step++

	s.BetaL = LoadPenalty(h)
	s.BetaC = CommunicationPenalty(h)
	if c.prev != nil {
		s.BetaM = MigrationPenalty(c.prev, h)
	}

	// Section 4.2: normalize by the largest grid encountered so far
	// (the largest over the whole run is unknowable online).
	if s.Points > c.maxPoints {
		c.maxPoints = s.Points
	}
	if c.maxPoints > 0 {
		s.SizeNorm = float64(s.Points) / float64(c.maxPoints)
	}

	// Dimension I: the relative importance of communication against
	// load balance. Both zero (featureless grid) sits at the neutral
	// midpoint.
	if s.BetaL+s.BetaC > 0 {
		s.DimI = s.BetaC / (s.BetaL + s.BetaC)
	} else {
		s.DimI = 0.5
	}

	// Dimension II, quantity (1): how much partitioning quality the
	// state requests — the mean of the penalties, weighted by the
	// absolute importance of the current grid size (section 4.3).
	s.Need = (s.BetaL + s.BetaC + s.BetaM) / 3 * s.SizeNorm
	// Quantity (2): the share of the invocation interval available for
	// partitioning. Infrequent invocation => large offered slot.
	if timeSlot > 0 && c.PartitionCost > 0 {
		s.Offer = clamp01(timeSlot / (timeSlot + c.PartitionCost))
	} else if timeSlot > 0 {
		s.Offer = 1
	}
	// Comparing (1) and (2): quality investment is justified in
	// proportion to both the request and the available slot.
	s.DimII = clamp01(s.Need * s.Offer)

	// Dimension III is the migration penalty itself.
	s.DimIII = s.BetaM

	c.prev = h.Clone()
	return s
}

// Reset clears the classifier's running state.
func (c *Classifier) Reset() {
	c.prev = nil
	c.maxPoints = 0
	c.step = 0
}

// Trajectory classifies every snapshot of a hierarchy sequence with a
// constant time slot, returning the locus of classification points —
// the "curve in the classification space" of section 4.
func Trajectory(hs []*grid.Hierarchy, timeSlot, partitionCost float64) []Sample {
	c := NewClassifier(partitionCost)
	out := make([]Sample, 0, len(hs))
	for _, h := range hs {
		out = append(out, c.Classify(h, timeSlot))
	}
	return out
}
