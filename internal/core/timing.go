package core

import (
	"context"
	"time"

	"samr/internal/grid"
	"samr/internal/partition"
)

// MeasurePartitionCost times one partitioner on a hierarchy: the
// measured quantity the paper proposes feeding trade-off 2 ("the
// partitioner when invoked calls a timer to determine the invocation
// intervals"). It returns the wall-clock seconds of a single Partition
// call, averaged over reps invocations (at least one). A cancelled ctx
// aborts the measurement and returns the partitioner's error.
func MeasurePartitionCost(ctx context.Context, p partition.Partitioner, h *grid.Hierarchy, nprocs, reps int) (float64, error) {
	if reps < 1 {
		reps = 1
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := p.Partition(ctx, h, nprocs); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Seconds() / float64(reps), nil
}

// CalibratePartitionCost measures the meta-partitioner's whole stable
// on a representative hierarchy and returns the worst (most expensive)
// per-invocation cost — a conservative seed for the dimension-II model.
func CalibratePartitionCost(ctx context.Context, m *MetaPartitioner, h *grid.Hierarchy, nprocs int) (float64, error) {
	worst := 0.0
	for _, p := range m.Stable() {
		c, err := MeasurePartitionCost(ctx, p, h, nprocs, 1)
		if err != nil {
			return 0, err
		}
		if c > worst {
			worst = c
		}
	}
	return worst, nil
}
