package core

import (
	"time"

	"samr/internal/grid"
	"samr/internal/partition"
)

// MeasurePartitionCost times one partitioner on a hierarchy: the
// measured quantity the paper proposes feeding trade-off 2 ("the
// partitioner when invoked calls a timer to determine the invocation
// intervals"). It returns the wall-clock seconds of a single Partition
// call, averaged over reps invocations (at least one).
func MeasurePartitionCost(p partition.Partitioner, h *grid.Hierarchy, nprocs, reps int) float64 {
	if reps < 1 {
		reps = 1
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		p.Partition(h, nprocs)
	}
	return time.Since(start).Seconds() / float64(reps)
}

// CalibratePartitionCost measures the meta-partitioner's whole stable
// on a representative hierarchy and returns the worst (most expensive)
// per-invocation cost — a conservative seed for the dimension-II model.
func CalibratePartitionCost(m *MetaPartitioner, h *grid.Hierarchy, nprocs int) float64 {
	worst := 0.0
	for _, p := range m.Stable() {
		if c := MeasurePartitionCost(p, h, nprocs, 1); c > worst {
			worst = c
		}
	}
	return worst
}
