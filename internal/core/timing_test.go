package core

import (
	"context"
	"testing"

	"samr/internal/geom"
)

func TestMeasurePartitionCostPositive(t *testing.T) {
	h := refined(geom.NewBox2(8, 8, 24, 24))
	m := NewMetaPartitioner(0)
	for _, p := range m.Stable() {
		c, err := MeasurePartitionCost(context.Background(), p, h, 8, 2)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if c <= 0 {
			t.Errorf("%s: cost %f not positive", p.Name(), c)
		}
		if c > 1 {
			t.Errorf("%s: cost %f implausibly large for a toy hierarchy", p.Name(), c)
		}
	}
}

func TestMeasurePartitionCostRepsClamped(t *testing.T) {
	h := refined(geom.NewBox2(8, 8, 24, 24))
	m := NewMetaPartitioner(0)
	c, err := MeasurePartitionCost(context.Background(), m.Stable()[0], h, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 {
		t.Errorf("reps=0 should clamp to 1, got cost %f", c)
	}
}

func TestMeasurePartitionCostCancelled(t *testing.T) {
	h := refined(geom.NewBox2(8, 8, 24, 24))
	m := NewMetaPartitioner(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MeasurePartitionCost(ctx, m.Stable()[0], h, 8, 2); err == nil {
		t.Error("cancelled measurement returned no error")
	}
}

func TestCalibratePartitionCost(t *testing.T) {
	h := refined(geom.NewBox2(8, 8, 24, 24))
	m := NewMetaPartitioner(0)
	worst, err := CalibratePartitionCost(context.Background(), m, h, 8)
	if err != nil {
		t.Fatal(err)
	}
	if worst <= 0 {
		t.Fatalf("calibrated cost %f", worst)
	}
	// The calibrated value is the max over the stable.
	for _, p := range m.Stable() {
		// One-shot timing is noisy; just ensure the same order of
		// magnitude rather than a strict bound.
		c, err := MeasurePartitionCost(context.Background(), p, h, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		if c > worst*50 {
			t.Errorf("%s: cost %g wildly exceeds calibration %g", p.Name(), c, worst)
		}
	}
}
