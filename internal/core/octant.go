package core

import (
	"fmt"

	"samr/internal/grid"
)

// Octant is a cell of the discrete octant classification space the
// paper's section 3 describes and argues against (Figure 3, left): each
// of the three prior-work axes is binarized. It is implemented here as
// the baseline the continuous partitioner-centric space is compared
// with.
type Octant struct {
	// CommunicationDominated is axis "computation dominated -
	// communication dominated".
	CommunicationDominated bool
	// Scattered is axis "localized - scattered" (the refinement
	// pattern).
	Scattered bool
	// HighActivity is axis "activity dynamics" (how fast the solution
	// changes).
	HighActivity bool
}

// Index returns the octant number in [0, 8).
func (o Octant) Index() int {
	i := 0
	if o.CommunicationDominated {
		i |= 1
	}
	if o.Scattered {
		i |= 2
	}
	if o.HighActivity {
		i |= 4
	}
	return i
}

func (o Octant) String() string {
	s := "comp"
	if o.CommunicationDominated {
		s = "comm"
	}
	if o.Scattered {
		s += "/scattered"
	} else {
		s += "/localized"
	}
	if o.HighActivity {
		s += "/dynamic"
	} else {
		s += "/static"
	}
	return fmt.Sprintf("octant %d (%s)", o.Index(), s)
}

// OctantClassifier is the ArMADA-style baseline: a discrete, relative
// classification using simple box operations (volume-to-surface ratios
// and inter-step change), carried along for comparison with the
// continuous classifier. The paper's critique (section 3) applies: its
// transitions are discontinuous, and the time-domination axis entangles
// the partitioner with the application state.
type OctantClassifier struct {
	prev *grid.Hierarchy
}

// NewOctantClassifier returns the discrete baseline classifier.
func NewOctantClassifier() *OctantClassifier { return &OctantClassifier{} }

// Classify maps the hierarchy onto an octant. The thresholds follow the
// ArMADA spirit: communication domination from the surface-to-volume
// ratio of the refined patches, scatter from the refined-region count,
// and activity from the relative change against the previous snapshot.
func (c *OctantClassifier) Classify(h *grid.Hierarchy) Octant {
	var o Octant

	// Volume-to-surface: fine-level patches with high surface relative
	// to volume indicate communication-heavy configurations.
	var surf, vol int64
	for l := 1; l < len(h.Levels); l++ {
		surf += h.Levels[l].Boxes.TotalSurface()
		vol += h.Levels[l].NumPoints()
	}
	if vol > 0 && float64(surf)/float64(vol) > 0.5 {
		o.CommunicationDominated = true
	}

	// Scatter: many disjoint refined patches on level 1.
	if len(h.Levels) > 1 && len(h.Levels[1].Boxes) >= 4 {
		o.Scattered = true
	}

	// Activity: relative hierarchy change since the previous call.
	if c.prev != nil {
		if MigrationPenalty(c.prev, h) > 0.1 {
			o.HighActivity = true
		}
	}
	c.prev = h.Clone()
	return o
}

// Reset clears the classifier's running state.
func (c *OctantClassifier) Reset() { c.prev = nil }
