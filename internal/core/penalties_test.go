package core

import (
	"math/rand"
	"testing"

	"samr/internal/geom"
	"samr/internal/grid"
)

func baseHierarchy() *grid.Hierarchy {
	return grid.NewHierarchy(geom.NewBox2(0, 0, 32, 32), 2)
}

func refined(l1 geom.Box) *grid.Hierarchy {
	h := baseHierarchy()
	h.Levels = append(h.Levels, grid.Level{Boxes: geom.BoxList{l1}})
	return h
}

func TestMigrationPenaltyIdenticalIsZero(t *testing.T) {
	h := refined(geom.NewBox2(8, 8, 24, 24))
	if p := MigrationPenalty(h, h.Clone()); p != 0 {
		t.Errorf("identical hierarchies: beta_m = %f, want 0", p)
	}
}

func TestMigrationPenaltyDisjointRefinement(t *testing.T) {
	a := refined(geom.NewBox2(0, 0, 16, 16))
	b := refined(geom.NewBox2(40, 40, 56, 56))
	// Base level fully overlaps (1024 pts); level 1 not at all (256 pts
	// each). |H_t| = 1280, overlap = 1024 -> beta_m = 1 - 1024/1280 = 0.2.
	if p := MigrationPenalty(a, b); p < 0.199 || p > 0.201 {
		t.Errorf("beta_m = %f, want 0.2", p)
	}
}

func TestMigrationPenaltyPartialShift(t *testing.T) {
	a := refined(geom.NewBox2(8, 8, 24, 24))
	b := refined(geom.NewBox2(16, 8, 32, 24))
	// Level-1 overlap = 8x16 = 128 of 256; total overlap = 1024 + 128,
	// |H_t| = 1280 -> beta_m = 1 - 1152/1280 = 0.1.
	if p := MigrationPenalty(a, b); p < 0.099 || p > 0.101 {
		t.Errorf("beta_m = %f, want 0.1", p)
	}
}

func TestMigrationPenaltyRange(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	prev := refined(geom.NewBox2(0, 0, 16, 16))
	for i := 0; i < 50; i++ {
		x, y := r.Intn(48), r.Intn(48)
		cur := refined(geom.NewBox2(x, y, x+16, y+16))
		p := MigrationPenalty(prev, cur)
		if p < 0 || p > 1 {
			t.Fatalf("beta_m = %f out of range", p)
		}
		prev = cur
	}
}

func TestMigrationPenaltyDenominators(t *testing.T) {
	// Growing grid: |H_{t-1}| < |H_t|.
	small := refined(geom.NewBox2(8, 8, 16, 16)) // 1024 + 64
	big := refined(geom.NewBox2(8, 8, 32, 32))   // 1024 + 576; overlap 1024+64
	pc := MigrationPenaltyWith(small, big, DenomCurrent)
	pp := MigrationPenaltyWith(small, big, DenomPrevious)
	pm := MigrationPenaltyWith(small, big, DenomMax)
	// overlap = 1088; |H_t| = 1600, |H_{t-1}| = 1088.
	if pc <= 0 || pc >= 1 {
		t.Errorf("DenomCurrent = %f", pc)
	}
	if pp != 0 {
		t.Errorf("DenomPrevious on pure growth should be 0 (everything overlaps), got %f", pp)
	}
	if pm != pc {
		t.Errorf("DenomMax should equal DenomCurrent for growth: %f vs %f", pm, pc)
	}
	// The paper's argument: growth should register as migration need
	// (the new large grid pulls data); DenomCurrent does, DenomPrevious
	// does not.
	if !(pc > pp) {
		t.Errorf("DenomCurrent (%f) should exceed DenomPrevious (%f) on growth", pc, pp)
	}
}

func TestCommunicationPenaltyFlatGrid(t *testing.T) {
	// A flat base grid at granularity 2 is all boundary in the worst
	// case: every 2x2 unit's ring covers the whole unit, so beta_c
	// saturates at 1 — any distribution of atomic units could involve
	// every point.
	h := baseHierarchy()
	if p := CommunicationPenalty(h); p != 1 {
		t.Errorf("beta_c = %f, want 1 (saturated worst case)", p)
	}
}

func TestCommunicationPenaltyDeclinesWithDeepBulk(t *testing.T) {
	// Large fine-level regions have proportionally less worst-case
	// boundary (units span 2*2^l cells), so a hierarchy whose workload
	// is dominated by a big deep level has lower beta_c than a shallow
	// one.
	shallow := baseHierarchy()
	deep := baseHierarchy()
	deep.Levels = append(deep.Levels,
		grid.Level{Boxes: geom.BoxList{geom.NewBox2(0, 0, 64, 64)}},
		grid.Level{Boxes: geom.BoxList{geom.NewBox2(0, 0, 128, 128)}},
		grid.Level{Boxes: geom.BoxList{geom.NewBox2(0, 0, 256, 256)}},
	)
	if CommunicationPenalty(deep) >= CommunicationPenalty(shallow) {
		t.Errorf("bulk-refined beta_c (%f) should be below shallow (%f)",
			CommunicationPenalty(deep), CommunicationPenalty(shallow))
	}
}

func TestCommunicationPenaltyIgnoresPatchShape(t *testing.T) {
	// The worst-case model is deliberately shape-blind (the adversarial
	// distribution cuts unit boundaries regardless of patch layout):
	// re-tiling the same region must not change beta_c.
	deepen := func(l1 geom.BoxList) *grid.Hierarchy {
		h := baseHierarchy()
		h.Levels = append(h.Levels, grid.Level{Boxes: l1})
		return h
	}
	one := deepen(geom.BoxList{geom.NewBox2(0, 0, 32, 32)})
	var many geom.BoxList
	for y := 0; y < 32; y += 8 {
		for x := 0; x < 32; x += 8 {
			many = append(many, geom.NewBox2(x, y, x+8, y+8))
		}
	}
	frag := deepen(many)
	if CommunicationPenalty(frag) != CommunicationPenalty(one) {
		t.Errorf("beta_c should be tiling-invariant: %f vs %f",
			CommunicationPenalty(frag), CommunicationPenalty(one))
	}
}

func TestCommunicationPenaltyClosedForm(t *testing.T) {
	// beta_c = clamp((8/g) * |H| / W).
	h := refined(geom.NewBox2(0, 0, 32, 32)) // |H| = 1024+1024, W = 1024+2048
	want := 8.0 / 2.0 * 2048.0 / 3072.0
	if want > 1 {
		want = 1
	}
	if p := CommunicationPenalty(h); p != want {
		t.Errorf("beta_c = %f, want %f", p, want)
	}
}

func TestLoadPenaltyUniformIsZero(t *testing.T) {
	h := baseHierarchy()
	if p := LoadPenalty(h); p > 1e-9 {
		t.Errorf("uniform grid beta_l = %f, want 0", p)
	}
}

func TestLoadPenaltyConcentrationRaisesIt(t *testing.T) {
	// A deep, localized refinement stack concentrates work.
	localized := baseHierarchy()
	localized.Levels = append(localized.Levels,
		grid.Level{Boxes: geom.BoxList{geom.NewBox2(0, 0, 8, 8)}},
		grid.Level{Boxes: geom.BoxList{geom.NewBox2(0, 0, 12, 12)}},
		grid.Level{Boxes: geom.BoxList{geom.NewBox2(0, 0, 16, 16)}},
	)
	// The same refinement spread across the domain in four corners.
	scattered := baseHierarchy()
	scattered.Levels = append(scattered.Levels, grid.Level{Boxes: geom.BoxList{
		geom.NewBox2(0, 0, 4, 4), geom.NewBox2(56, 0, 60, 4),
		geom.NewBox2(0, 56, 4, 60), geom.NewBox2(56, 56, 60, 60),
	}})
	pl, ps := LoadPenalty(localized), LoadPenalty(scattered)
	if pl <= ps {
		t.Errorf("localized beta_l (%f) should exceed scattered (%f)", pl, ps)
	}
	if pl < 0.3 {
		t.Errorf("deep localized stack beta_l = %f, expected substantial", pl)
	}
}

func TestPenaltiesAreAbInitio(t *testing.T) {
	// Penalties must depend only on hierarchies: same hierarchy, same
	// value, no hidden state.
	h := refined(geom.NewBox2(4, 4, 20, 24))
	if CommunicationPenalty(h) != CommunicationPenalty(h.Clone()) {
		t.Error("beta_c not a pure function")
	}
	if LoadPenalty(h) != LoadPenalty(h.Clone()) {
		t.Error("beta_l not a pure function")
	}
}

func TestPenaltyRangesRandom(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		x, y := r.Intn(40), r.Intn(40)
		h := refined(geom.NewBox2(x, y, x+2+r.Intn(20), y+2+r.Intn(20)))
		for name, p := range map[string]float64{
			"beta_c": CommunicationPenalty(h),
			"beta_l": LoadPenalty(h),
		} {
			if p < 0 || p > 1 {
				t.Fatalf("%s = %f out of [0,1]", name, p)
			}
		}
	}
}
