// Package memo provides the bounded, concurrency-safe memoization
// substrate the content-addressed layers of the repository share: the
// in-process unit-chain and level-index caches under the partitioners,
// and the HTTP partition cache of internal/server.
//
// A Cache is an LRU keyed by a comparable (typically content-hash)
// key, with singleflight coalescing of concurrent identical misses:
// while one caller (the leader) computes a key, every other caller of
// the same key waits for that result instead of recomputing it. A
// leader whose compute fails — in this repository cancellation is the
// only error source — reports the error only to itself and to the
// followers whose own context is also dead; followers with a live
// context retry and may lead the recompute, so one caller's
// cancellation never poisons the cache for another (nothing is stored
// on failure).
//
// The memoization contract callers must uphold: the value stored under
// a key must be a pure function of that key (content-addressing), and
// stored values are shared — every reader must treat them as
// immutable. Stateful computations (anything whose output depends on
// carried state, like the post-mapped partitioner) must never be
// cached.
package memo

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
)

// Dispositions: how a GetOrCompute call obtained its result.
const (
	// Hit served a previously stored result.
	Hit = "hit"
	// Miss led a fresh compute (exactly one per distinct in-flight
	// key: misses count executions).
	Miss = "miss"
	// Shared coalesced onto another caller's in-flight compute of the
	// same key (the singleflight path: no duplicate execution).
	Shared = "shared"
	// TierHit served a second-level (tier) result: the singleflight
	// leader's local miss was answered by the configured Tier instead
	// of a compute. Followers of a tier-served flight still report
	// Shared.
	TierHit = "tier"
)

// Tier is a pluggable second-level cache consulted behind the miss
// path. Lookup is invoked only by a singleflight leader whose local
// lookup missed, so concurrent identical misses consult the tier at
// most once; Store is invoked only after a successful local compute,
// so a cancelled leader stores nothing anywhere. A Tier must be purely
// best-effort: Lookup reports a miss (false) on any failure — network,
// corruption, timeout — and Store silently drops undeliverable values.
// The cache then degrades to a local compute; a tier can never turn a
// computable request into an error. Values crossing the tier must obey
// the same contract as local entries: pure functions of their key,
// immutable to every reader.
type Tier[K comparable, V any] interface {
	// Lookup returns the tier's value for k, or false on miss or any
	// failure. It must honour ctx (a dead ctx returns false promptly).
	Lookup(ctx context.Context, k K) (V, bool)
	// Store offers v to the tier, best-effort. It must not retain ctx
	// expectations: it is called outside any request deadline.
	Store(k K, v V)
}

// Cache is a bounded LRU with singleflight miss coalescing. The zero
// value is not usable; construct with New.
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *entry[K, V]
	items   map[K]*list.Element
	flights map[K]*flight[V]

	hits, misses, shared, tierHits atomic.Uint64

	// tier, when set, is the second-level cache behind the miss path
	// (fleet peers and/or disk). Nil means purely local behavior.
	// Guarded by mu: process-wide caches (sim's step cache) swap it as
	// servers come and go.
	tier Tier[K, V]

	// onFlight, when set (tests only), is called outside the lock
	// after a GetOrCompute call either registers itself as the leader
	// of a key's compute (leader=true) or joins an existing one
	// (false). It deterministically interleaves singleflight tests.
	onFlight func(k K, leader bool)
}

type entry[K comparable, V any] struct {
	key K
	v   V
}

// flight is one in-progress compute; followers wait on done.
type flight[V any] struct {
	done chan struct{}
	v    V
	err  error
}

// New returns a cache holding at most capacity values (minimum 1).
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[K, V]{
		cap:     capacity,
		order:   list.New(),
		items:   make(map[K]*list.Element, capacity),
		flights: make(map[K]*flight[V]),
	}
}

// SetOnFlight installs the test-only flight instrumentation hook. It
// must be set before the cache sees concurrent use.
func (c *Cache[K, V]) SetOnFlight(hook func(k K, leader bool)) { c.onFlight = hook }

// SetTier installs the second-level cache consulted on the leader's
// miss path (nil disables it). Unlike SetOnFlight it may be swapped at
// any time: each flight captures the tier installed when it became
// leader, so in-flight computes finish against the tier they started
// with. Everything tier-side — fleet failover, anti-entropy repair,
// corrupt-blob quarantine — stays behind the Tier interface; this
// cache only ever sees hit-or-miss.
func (c *Cache[K, V]) SetTier(t Tier[K, V]) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tier = t
}

// Get returns the cached value for k, updating recency and the hit
// counter. A miss is not counted here: miss accounting belongs to
// GetOrCompute, where a miss implies an execution.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	el, ok := c.items[k]
	var v V
	if ok {
		c.order.MoveToFront(el)
		// Copy the value under the lock: addLocked may refresh the
		// entry concurrently.
		v = el.Value.(*entry[K, V]).v
	}
	c.mu.Unlock()
	if !ok {
		return v, false
	}
	c.hits.Add(1)
	return v, true
}

// GetOrCompute returns the value for k, computing it at most once
// across concurrent callers: a stored result is a hit; the first
// caller of an uncached key becomes the leader, runs compute, and
// stores the result (a miss); callers arriving while that compute is
// in flight wait for it and share its result (shared). A leader whose
// compute fails reports its error only to itself and to the followers
// whose own ctx is also dead; followers with a live ctx simply retry,
// so one caller's cancellation never poisons another's request. The
// returned disposition is one of Hit, Miss, Shared, TierHit.
//
// When a Tier is installed, the leader consults it before computing:
// a tier answer is stored locally and returned with the TierHit
// disposition (no compute ran — misses still count executions
// exactly), while a tier miss or failure falls through to the local
// compute, whose successful result is offered back to the tier. The
// tier sits strictly behind singleflight, so a thundering herd
// performs at most one tier lookup, and strictly behind the
// cancelled-leader rule, so a failed compute stores nothing locally
// or remotely.
func (c *Cache[K, V]) GetOrCompute(ctx context.Context, k K, compute func() (V, error)) (V, string, error) {
	var zero V
	for {
		c.mu.Lock()
		if el, ok := c.items[k]; ok {
			c.order.MoveToFront(el)
			v := el.Value.(*entry[K, V]).v // copy under the lock (addLocked may refresh)
			c.mu.Unlock()
			c.hits.Add(1)
			return v, Hit, nil
		}
		if f, ok := c.flights[k]; ok {
			c.mu.Unlock()
			if hook := c.onFlight; hook != nil {
				hook(k, false)
			}
			select {
			case <-f.done:
				if f.err == nil {
					c.shared.Add(1)
					return f.v, Shared, nil
				}
				// The leader failed (cancellation). If this caller is
				// still live it retries (and may lead the recompute).
				if err := ctx.Err(); err != nil {
					return zero, "", err
				}
				continue
			case <-ctx.Done():
				return zero, "", ctx.Err()
			}
		}
		f := &flight[V]{done: make(chan struct{})}
		c.flights[k] = f
		tier := c.tier // captured under the lock: SetTier may swap it
		c.mu.Unlock()
		if hook := c.onFlight; hook != nil {
			hook(k, true)
		}
		disp := Miss
		if tier != nil {
			if v, ok := tier.Lookup(ctx, k); ok {
				f.v, f.err = v, nil
				disp = TierHit
			}
		}
		if disp == Miss {
			c.misses.Add(1)
			f.v, f.err = compute()
			if f.err == nil && tier != nil {
				tier.Store(k, f.v)
			}
		} else {
			c.tierHits.Add(1)
		}
		c.mu.Lock()
		delete(c.flights, k)
		if f.err == nil {
			c.addLocked(k, f.v)
		}
		c.mu.Unlock()
		close(f.done)
		if f.err != nil {
			return zero, "", f.err
		}
		return f.v, disp, nil
	}
}

// Add stores v (idempotently: a concurrent duplicate compute simply
// refreshes the entry) and evicts the least recently used entry past
// capacity.
func (c *Cache[K, V]) Add(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addLocked(k, v)
}

func (c *Cache[K, V]) addLocked(k K, v V) {
	if el, ok := c.items[k]; ok {
		c.order.MoveToFront(el)
		el.Value.(*entry[K, V]).v = v
		return
	}
	c.items[k] = c.order.PushFront(&entry[K, V]{key: k, v: v})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*entry[K, V]).key)
	}
}

// Flush drops every stored value (counters are kept). In-flight
// computes are unaffected: they complete and store as usual.
func (c *Cache[K, V]) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.items)
}

// Len returns the number of cached values.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Capacity returns the cache bound.
func (c *Cache[K, V]) Capacity() int { return c.cap }

// Stats returns the cumulative hit, miss, and shared (coalesced)
// counts. Misses equal actual executions through GetOrCompute.
func (c *Cache[K, V]) Stats() (hits, misses, shared uint64) {
	return c.hits.Load(), c.misses.Load(), c.shared.Load()
}

// TierHits returns the cumulative count of leader misses answered by
// the installed Tier instead of a compute (always 0 without a tier).
func (c *Cache[K, V]) TierHits() uint64 { return c.tierHits.Load() }
