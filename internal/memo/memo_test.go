package memo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

var bg = context.Background()

func mustGet(t *testing.T, c *Cache[string, int], k string, compute func() (int, error)) (int, string) {
	t.Helper()
	v, disp, err := c.GetOrCompute(bg, k, compute)
	if err != nil {
		t.Fatal(err)
	}
	return v, disp
}

func TestGetOrComputeDispositions(t *testing.T) {
	c := New[string, int](4)
	calls := 0
	compute := func() (int, error) { calls++; return 42, nil }

	v, disp := mustGet(t, c, "k", compute)
	if v != 42 || disp != Miss || calls != 1 {
		t.Fatalf("first call = (%d, %s, %d calls), want (42, miss, 1)", v, disp, calls)
	}
	v, disp = mustGet(t, c, "k", compute)
	if v != 42 || disp != Hit || calls != 1 {
		t.Fatalf("second call = (%d, %s, %d calls), want (42, hit, 1)", v, disp, calls)
	}
	hits, misses, shared := c.Stats()
	if hits != 1 || misses != 1 || shared != 0 {
		t.Fatalf("stats = (%d, %d, %d), want (1, 1, 0)", hits, misses, shared)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int, int](2)
	for i := 0; i < 3; i++ {
		c.Add(i, i*10)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, ok := c.Get(0); ok {
		t.Fatal("oldest entry survived past capacity")
	}
	// Touch 1, add 3: 2 (now least recent) must go.
	if v, ok := c.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1) = (%d, %v)", v, ok)
	}
	c.Add(3, 30)
	if _, ok := c.Get(2); ok {
		t.Fatal("least recently used entry survived eviction")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("recently used entry was evicted")
	}
}

func TestCapacityMinimumOne(t *testing.T) {
	c := New[int, int](0)
	if c.Capacity() != 1 {
		t.Fatalf("capacity = %d, want 1", c.Capacity())
	}
	c.Add(1, 1)
	c.Add(2, 2)
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestAddRefreshesExisting(t *testing.T) {
	c := New[string, int](2)
	c.Add("k", 1)
	c.Add("k", 2)
	if v, ok := c.Get("k"); !ok || v != 2 {
		t.Fatalf("Get = (%d, %v), want (2, true)", v, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestFlush(t *testing.T) {
	c := New[string, int](4)
	mustGet(t, c, "k", func() (int, error) { return 1, nil })
	c.Flush()
	if c.Len() != 0 {
		t.Fatalf("len after flush = %d", c.Len())
	}
	_, disp := mustGet(t, c, "k", func() (int, error) { return 1, nil })
	if disp != Miss {
		t.Fatalf("post-flush disposition = %s, want miss", disp)
	}
	if _, misses, _ := c.Stats(); misses != 2 {
		t.Fatalf("misses = %d, want 2 (counters survive flush)", misses)
	}
}

// TestSingleflightCoalesces: two concurrent identical misses must run
// compute exactly once — one miss, one shared.
func TestSingleflightCoalesces(t *testing.T) {
	c := New[string, int](4)
	followerJoined := make(chan struct{})
	c.SetOnFlight(func(k string, leader bool) {
		if leader {
			<-followerJoined
		} else {
			close(followerJoined)
		}
	})
	calls := 0
	dispositions := make([]string, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, disp, err := c.GetOrCompute(bg, "k", func() (int, error) {
				calls++
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("call %d = (%d, %v)", i, v, err)
			}
			dispositions[i] = disp
		}(i)
	}
	wg.Wait()
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	got := map[string]int{}
	for _, d := range dispositions {
		got[d]++
	}
	if got[Miss] != 1 || got[Shared] != 1 {
		t.Fatalf("dispositions = %v, want one miss and one shared", dispositions)
	}
}

// TestCancelledLeaderNeverPoisons is the memoization-safety acceptance
// test: a leader whose context is cancelled mid-compute reports the
// error only to itself; a live follower waiting on the flight retries,
// recomputes, and stores a good value — the failed compute is never
// cached.
func TestCancelledLeaderNeverPoisons(t *testing.T) {
	c := New[string, int](4)
	leaderCtx, cancelLeader := context.WithCancel(bg)
	followerJoined := make(chan struct{})
	leaderStarted := make(chan struct{})
	var once sync.Once
	c.SetOnFlight(func(k string, leader bool) {
		if !leader {
			once.Do(func() { close(followerJoined) })
		}
	})

	computes := 0
	var mu sync.Mutex
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute(leaderCtx, "k", func() (int, error) {
			mu.Lock()
			computes++
			mu.Unlock()
			close(leaderStarted)
			// Block until the follower has joined, then fail with the
			// (cancelled) context's error, as a real partitioner would.
			<-followerJoined
			cancelLeader()
			return 0, fmt.Errorf("compute: %w", leaderCtx.Err())
		})
		leaderErr <- err
	}()
	// The flight is registered before compute runs, so once compute has
	// started the next GetOrCompute must join as a follower.
	<-leaderStarted

	// The follower has a live context: it must survive the leader's
	// failure, retry, recompute, and get a value.
	v, disp, err := c.GetOrCompute(bg, "k", func() (int, error) {
		mu.Lock()
		computes++
		mu.Unlock()
		return 99, nil
	})
	if err != nil || v != 99 {
		t.Fatalf("follower = (%d, %s, %v), want (99, _, nil)", v, disp, err)
	}
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error = %v, want wrapped Canceled", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if computes != 2 {
		t.Fatalf("computes = %d, want 2 (leader failed, follower recomputed)", computes)
	}
	// The stored value is the follower's, not the failed leader's.
	if v, ok := c.Get("k"); !ok || v != 99 {
		t.Fatalf("cached = (%d, %v), want (99, true)", v, ok)
	}
}

// TestDeadFollowerGetsOwnError: a follower whose own context dies while
// waiting receives its context error, not the leader's result.
func TestDeadFollowerGetsOwnError(t *testing.T) {
	c := New[string, int](4)
	followerJoined := make(chan struct{})
	leaderStarted := make(chan struct{})
	release := make(chan struct{})
	c.SetOnFlight(func(k string, leader bool) {
		if !leader {
			close(followerJoined)
		}
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.GetOrCompute(bg, "k", func() (int, error) { //nolint:errcheck
			close(leaderStarted)
			<-release
			return 1, nil
		})
	}()
	<-leaderStarted
	ctx, cancel := context.WithCancel(bg)
	go func() {
		<-followerJoined
		cancel()
	}()
	_, _, err := c.GetOrCompute(ctx, "k", func() (int, error) { return 2, nil })
	close(release)
	<-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("follower err = %v, want Canceled", err)
	}
}

// TestConcurrentHammer exercises the cache under the race detector:
// many goroutines, overlapping keys, eviction pressure.
func TestConcurrentHammer(t *testing.T) {
	c := New[int, int](8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := i % 16
				v, _, err := c.GetOrCompute(bg, k, func() (int, error) { return k * 3, nil })
				if err != nil || v != k*3 {
					t.Errorf("GetOrCompute(%d) = (%d, %v)", k, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses, shared := c.Stats()
	if hits+misses+shared != 8*200 {
		t.Fatalf("counter sum %d != %d calls", hits+misses+shared, 8*200)
	}
}

// fakeTier is an in-memory Tier recording its traffic.
type fakeTier struct {
	mu      sync.Mutex
	vals    map[string]int
	lookups []string
	stores  []string
	fail    bool // when set, every Lookup misses regardless of vals
}

func newFakeTier() *fakeTier { return &fakeTier{vals: map[string]int{}} }

func (ft *fakeTier) Lookup(ctx context.Context, k string) (int, bool) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.lookups = append(ft.lookups, k)
	if ft.fail {
		return 0, false
	}
	v, ok := ft.vals[k]
	return v, ok
}

func (ft *fakeTier) Store(k string, v int) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.stores = append(ft.stores, k)
	ft.vals[k] = v
}

func (ft *fakeTier) snapshot() (lookups, stores int) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return len(ft.lookups), len(ft.stores)
}

func TestTierHitSkipsCompute(t *testing.T) {
	c := New[string, int](4)
	ft := newFakeTier()
	ft.vals["k"] = 7
	c.SetTier(ft)

	calls := 0
	v, disp := mustGet(t, c, "k", func() (int, error) { calls++; return -1, nil })
	if v != 7 || disp != TierHit || calls != 0 {
		t.Fatalf("tier-served call = (%d, %s, %d calls), want (7, tier, 0)", v, disp, calls)
	}
	if got := c.TierHits(); got != 1 {
		t.Fatalf("TierHits = %d, want 1", got)
	}
	_, misses, _ := c.Stats()
	if misses != 0 {
		t.Fatalf("misses = %d, want 0 (no compute ran)", misses)
	}
	// The tier answer was stored locally: the next call is a plain hit.
	if _, disp = mustGet(t, c, "k", func() (int, error) { calls++; return -1, nil }); disp != Hit {
		t.Fatalf("second call disposition = %s, want hit", disp)
	}
	lookups, stores := ft.snapshot()
	if lookups != 1 || stores != 0 {
		t.Fatalf("tier traffic = (%d lookups, %d stores), want (1, 0)", lookups, stores)
	}
}

func TestTierMissComputesAndStores(t *testing.T) {
	c := New[string, int](4)
	ft := newFakeTier()
	c.SetTier(ft)

	calls := 0
	v, disp := mustGet(t, c, "k", func() (int, error) { calls++; return 42, nil })
	if v != 42 || disp != Miss || calls != 1 {
		t.Fatalf("tier-miss call = (%d, %s, %d calls), want (42, miss, 1)", v, disp, calls)
	}
	lookups, stores := ft.snapshot()
	if lookups != 1 || stores != 1 {
		t.Fatalf("tier traffic = (%d lookups, %d stores), want (1, 1)", lookups, stores)
	}
	if ft.vals["k"] != 42 {
		t.Fatalf("tier holds %d, want the computed 42", ft.vals["k"])
	}
	if got := c.TierHits(); got != 0 {
		t.Fatalf("TierHits = %d, want 0", got)
	}
}

func TestTierFailureDegradesToCompute(t *testing.T) {
	c := New[string, int](4)
	ft := newFakeTier()
	ft.fail = true
	ft.vals["k"] = 7 // present but unreachable
	c.SetTier(ft)

	v, disp := mustGet(t, c, "k", func() (int, error) { return 42, nil })
	if v != 42 || disp != Miss {
		t.Fatalf("degraded call = (%d, %s), want (42, miss)", v, disp)
	}
}

func TestCancelledLeaderStoresNothingToTier(t *testing.T) {
	c := New[string, int](4)
	ft := newFakeTier()
	c.SetTier(ft)

	ctx, cancel := context.WithCancel(bg)
	cancel()
	_, _, err := c.GetOrCompute(ctx, "k", func() (int, error) { return 0, ctx.Err() })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if _, stores := ft.snapshot(); stores != 0 {
		t.Fatal("cancelled leader stored to the tier")
	}
	if c.Len() != 0 {
		t.Fatal("cancelled leader stored locally")
	}
}

// TestTierLookupOncePerFlight pins the singleflight property across the
// tier: concurrent identical misses perform exactly one tier lookup,
// and followers of a tier-served flight report Shared.
func TestTierLookupOncePerFlight(t *testing.T) {
	c := New[string, int](4)
	ft := newFakeTier()
	ft.vals["k"] = 7
	c.SetTier(ft)

	const followers = 4
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	c.SetOnFlight(func(k string, leader bool) {
		if leader {
			once.Do(func() { close(leaderIn) })
			<-release
		}
	})
	// fakeTier.Lookup runs after the hook releases; park the leader
	// until every follower has joined the flight.
	type out struct {
		v    int
		disp string
	}
	results := make(chan out, followers+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, disp, err := c.GetOrCompute(bg, "k", func() (int, error) { return -1, nil })
		if err != nil {
			t.Error(err)
		}
		results <- out{v, disp}
	}()
	<-leaderIn
	joined := make(chan struct{}, followers)
	c.SetOnFlight(func(k string, leader bool) {
		if !leader {
			joined <- struct{}{}
		}
	})
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, disp, err := c.GetOrCompute(bg, "k", func() (int, error) { return -1, nil })
			if err != nil {
				t.Error(err)
			}
			results <- out{v, disp}
		}()
	}
	for i := 0; i < followers; i++ {
		<-joined
	}
	close(release)
	wg.Wait()
	close(results)

	dispCount := map[string]int{}
	for r := range results {
		if r.v != 7 {
			t.Fatalf("value = %d, want 7", r.v)
		}
		dispCount[r.disp]++
	}
	if dispCount[TierHit] != 1 || dispCount[Shared] != followers {
		t.Fatalf("dispositions = %v, want 1 tier + %d shared", dispCount, followers)
	}
	if lookups, _ := ft.snapshot(); lookups != 1 {
		t.Fatalf("tier lookups = %d, want exactly 1 for the whole herd", lookups)
	}
}
