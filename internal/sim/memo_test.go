package sim

import (
	"reflect"
	"testing"

	"samr/internal/geom"
	"samr/internal/grid"
	"samr/internal/partition"
	"samr/internal/sfc"
	"samr/internal/trace"
)

// naiveSimulate is the memoization-free reference pipeline: sequential
// per-snapshot partition, evaluate, and migration chaining, exactly as
// the paper's experimental loop describes it. It shares no state with
// simulateTrace beyond the partitioner instance passed in.
func naiveSimulate(t *testing.T, tr *trace.Trace, p partition.Partitioner, nprocs int, m Machine) *Result {
	t.Helper()
	res := &Result{NumProcs: nprocs, PartitionerName: p.Name()}
	as := make([]*partition.Assignment, len(tr.Snapshots))
	for i, snap := range tr.Snapshots {
		a, err := p.Partition(bg, snap.H, nprocs)
		if err != nil {
			t.Fatal(err)
		}
		as[i] = a
		sm, err := Evaluate(bg, snap.H, a, m)
		if err != nil {
			t.Fatal(err)
		}
		sm.Step = snap.Step
		res.Steps = append(res.Steps, sm)
	}
	for i := 1; i < len(tr.Snapshots); i++ {
		sm := &res.Steps[i]
		sm.Migration = Migration(tr.Snapshots[i-1].H, tr.Snapshots[i].H, as[i-1], as[i])
		if np := tr.Snapshots[i-1].H.NumPoints(); np > 0 {
			sm.RelativeMigration = float64(sm.Migration) / float64(np)
		}
		sm.EstTime += float64(sm.Migration) / m.MigrationBandwidth
	}
	return res
}

// repeatTrace builds a synthetic regrid-sparse trace: each distinct
// hierarchy appears in a run of identical consecutive snapshots, the
// content pattern the memo layer exploits hardest.
func repeatTrace(repeat int) *trace.Trace {
	tr := &trace.Trace{App: "synthetic"}
	hs := []*grid.Hierarchy{
		flat(32),
		refined(geom.NewBox2(8, 8, 40, 40)),
		refined(geom.NewBox2(16, 16, 56, 48)),
		flat(32),
	}
	step := 0
	for _, h := range hs {
		for r := 0; r < repeat; r++ {
			tr.Append(step, float64(step), h)
			step++
		}
	}
	return tr
}

// TestSimulateMemoizedEqualsNaive is the pipeline-level soundness
// property: for every stateless partitioner family the memoized
// pipeline — cold caches, then warm caches — must be deep-equal to the
// naive uncached reference, on a regrid-sparse synthetic trace.
func TestSimulateMemoizedEqualsNaive(t *testing.T) {
	tr := repeatTrace(3)
	m := DefaultMachine()
	const np = 5
	families := map[string]func() partition.Partitioner{
		"domain": func() partition.Partitioner { return &partition.DomainSFC{Curve: sfc.Hilbert, UnitSize: 2} },
		"patch":  func() partition.Partitioner { return partition.NewPatchBased() },
		"hybrid": func() partition.Partitioner { return partition.NewNatureFable() },
	}
	for name, mk := range families {
		want := naiveSimulate(t, tr, mk(), np, m)
		flushStepCaches()
		cold, err := SimulateTrace(bg, tr, mk(), np, m)
		if err != nil {
			t.Fatalf("%s cold: %v", name, err)
		}
		warm, err := SimulateTrace(bg, tr, mk(), np, m)
		if err != nil {
			t.Fatalf("%s warm: %v", name, err)
		}
		if !reflect.DeepEqual(want, cold) {
			t.Errorf("%s: cold memoized run diverged from naive reference", name)
		}
		if !reflect.DeepEqual(want, warm) {
			t.Errorf("%s: warm memoized run diverged from naive reference", name)
		}
	}
}

// TestSimulateStatefulEqualsNaive: the post-mapped wrapper must keep
// its exact sequential chain through the memoized pipeline — fresh
// instances on both sides, deep-equal output, cold or warm.
func TestSimulateStatefulEqualsNaive(t *testing.T) {
	tr := repeatTrace(2)
	m := DefaultMachine()
	const np = 4
	mk := func() partition.Partitioner {
		return partition.NewPostMapped(&partition.DomainSFC{Curve: sfc.Hilbert, UnitSize: 2})
	}
	want := naiveSimulate(t, tr, mk(), np, m)
	flushStepCaches()
	for _, pass := range []string{"cold", "warm"} {
		got, err := SimulateTrace(bg, tr, mk(), np, m)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: stateful run diverged from naive reference", pass)
		}
	}
}

// TestMachineModelKeysCache: two machine models must not share step
// artifacts — EstTime depends on the model, and a cache collision would
// silently misprice one of them.
func TestMachineModelKeysCache(t *testing.T) {
	tr := repeatTrace(1)
	const np = 4
	m1 := DefaultMachine()
	m2 := DefaultMachine()
	m2.MessageLatency *= 10
	flushStepCaches()
	r1, err := SimulateTrace(bg, tr, partition.NewNatureFable(), np, m1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SimulateTrace(bg, tr, partition.NewNatureFable(), np, m2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1.Steps, r2.Steps) {
		t.Fatal("different machine models produced identical steps — cache key ignores the model")
	}
	if !reflect.DeepEqual(r1, naiveSimulate(t, tr, partition.NewNatureFable(), np, m1)) {
		t.Error("m1 run diverged from naive reference")
	}
	if !reflect.DeepEqual(r2, naiveSimulate(t, tr, partition.NewNatureFable(), np, m2)) {
		t.Error("m2 run diverged from naive reference")
	}
}

// TestPatchBasedConfigKeysCache: PatchBased configurations share a
// display name but not results; the MemoKey discriminator must keep
// them in separate cache slots.
func TestPatchBasedConfigKeysCache(t *testing.T) {
	tr := repeatTrace(1)
	const np = 7
	m := DefaultMachine()
	p1 := partition.NewPatchBased()
	p2 := &partition.PatchBased{MaxOverIdeal: 8}
	flushStepCaches()
	r1, err := SimulateTrace(bg, tr, p1, np, m)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SimulateTrace(bg, tr, p2, np, m)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, naiveSimulate(t, tr, p1, np, m)) {
		t.Error("default PatchBased diverged from naive reference")
	}
	if !reflect.DeepEqual(r2, naiveSimulate(t, tr, p2, np, m)) {
		t.Error("MaxOverIdeal=8 PatchBased diverged from naive reference (cache collision?)")
	}
}

// TestMemoStatsAdvance: a warm rerun must register memoized
// partitions, evaluations, and migration savings.
func TestMemoStatsAdvance(t *testing.T) {
	tr := repeatTrace(2)
	m := DefaultMachine()
	flushStepCaches()
	if _, err := SimulateTrace(bg, tr, partition.NewNatureFable(), 4, m); err != nil {
		t.Fatal(err)
	}
	p0, e0, g0 := MemoStats()
	if _, err := SimulateTrace(bg, tr, partition.NewNatureFable(), 4, m); err != nil {
		t.Fatal(err)
	}
	p1, e1, g1 := MemoStats()
	n := uint64(len(tr.Snapshots))
	if p1-p0 != n || e1-e0 != n {
		t.Errorf("warm rerun memoized %d partitions / %d evaluations, want %d each", p1-p0, e1-e0, n)
	}
	if g1-g0 != n-1 {
		t.Errorf("warm rerun saved %d migration scans, want %d", g1-g0, n-1)
	}
}
