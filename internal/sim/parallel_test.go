package sim

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"samr/internal/apps"
	"samr/internal/core"
	"samr/internal/grid"
	"samr/internal/partition"
	"samr/internal/sfc"
	"samr/internal/trace"
)

func quickTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := apps.QuickTrace(context.Background(), "TP2D")
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// withProcs raises GOMAXPROCS for the test so the worker pool admits
// real helper goroutines even on a single-core runner (pool.ForEach
// caps process-wide helpers at GOMAXPROCS-1).
func withProcs(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// mustSimulate runs the pipeline with the background context.
func mustSimulate(t *testing.T, tr *trace.Trace, choose func(int, *grid.Hierarchy) partition.Partitioner, nprocs int, m Machine, workers int) *Result {
	t.Helper()
	res, err := simulateTrace(context.Background(), tr, choose, nprocs, m, workers)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// requireIdentical asserts two results agree bit-for-bit, step for step.
func requireIdentical(t *testing.T, seq, par *Result) {
	t.Helper()
	if seq.PartitionerName != par.PartitionerName || seq.NumProcs != par.NumProcs {
		t.Fatalf("header mismatch: %q/%d vs %q/%d",
			seq.PartitionerName, seq.NumProcs, par.PartitionerName, par.NumProcs)
	}
	if len(seq.Steps) != len(par.Steps) {
		t.Fatalf("step count %d vs %d", len(seq.Steps), len(par.Steps))
	}
	for i := range seq.Steps {
		if !reflect.DeepEqual(seq.Steps[i], par.Steps[i]) {
			t.Fatalf("step %d diverged:\nseq: %+v\npar: %+v", i, seq.Steps[i], par.Steps[i])
		}
	}
}

// TestSimulateTraceParallelDeterministic: the worker-pool pipeline must
// produce StepMetrics bit-identical to the sequential path, for every
// worker count.
func TestSimulateTraceParallelDeterministic(t *testing.T) {
	withProcs(t, 4)
	tr := quickTrace(t)
	m := DefaultMachine()
	chooser := func(p partition.Partitioner) func(int, *grid.Hierarchy) partition.Partitioner {
		return func(step int, h *grid.Hierarchy) partition.Partitioner { return p }
	}
	p := partition.NewNatureFable()
	seq := mustSimulate(t, tr, chooser(p), 8, m, 1)
	for _, workers := range []int{2, 3, 8} {
		par := mustSimulate(t, tr, chooser(p), 8, m, workers)
		requireIdentical(t, seq, par)
	}
}

// TestSimulateTraceParallelStateful: a stateful partitioner (post-mapped
// wrapper) must force sequential partitioning and still match the
// sequential result exactly.
func TestSimulateTraceParallelStateful(t *testing.T) {
	withProcs(t, 4)
	tr := quickTrace(t)
	m := DefaultMachine()
	mk := func() partition.Partitioner {
		return partition.NewPostMapped(&partition.DomainSFC{Curve: sfc.Hilbert, UnitSize: 2})
	}
	pSeq, pPar := mk(), mk()
	seq := mustSimulate(t, tr, func(int, *grid.Hierarchy) partition.Partitioner { return pSeq }, 8, m, 1)
	par := mustSimulate(t, tr, func(int, *grid.Hierarchy) partition.Partitioner { return pPar }, 8, m, 4)
	requireIdentical(t, seq, par)
}

// TestSimulateTraceParallelDynamic: the meta-partitioner's per-step
// selection (stateful chooser, possibly stateful choice) through the
// public API must match a single-worker run.
func TestSimulateTraceParallelDynamic(t *testing.T) {
	withProcs(t, 4)
	tr := quickTrace(t)
	m := DefaultMachine()
	run := func(workers int) *Result {
		meta := core.NewMetaPartitioner(2e-4)
		return mustSimulate(t, tr, func(step int, h *grid.Hierarchy) partition.Partitioner {
			return meta.Select(h, 1e-3)
		}, 8, m, workers)
	}
	requireIdentical(t, run(1), run(4))
}
