// Package sim is the Berger–Colella SAMR execution simulator: given a
// partition-independent trace, a partitioner, and a machine model, it
// computes per-coarse-step partitioning quality metrics — load
// imbalance, intra- and inter-level communication volume, data
// migration between consecutive repartitionings, and an execution-time
// estimate. It plays the role of the Rutgers trace-driven simulator the
// paper's validation uses ("software that simulates the execution of the
// Berger-Colella SAMR algorithm ... the performance of the partitioning
// configuration at each regrid step is computed using a metric with the
// components load balance, communication, data migration, and
// overheads").
//
// Architecture: the simulator is built for throughput. Geometry scans
// (halo imports, inter-level footprints, migration overlap) go through
// geom.BoxIndex instead of all-pairs intersection, and the per-snapshot
// work units of a trace run fan out over a bounded worker pool
// (internal/pool) in four phases — sequential partitioner choice,
// partitioning (parallel unless a chosen partitioner is stateful),
// parallel per-step evaluation writing into pre-sized slots by index,
// and migration chaining over consecutive precomputed assignments. The
// phases are arranged so the output is bit-identical to a sequential
// run at any worker count. Every phase honours the caller's context:
// cancellation stops the pool dispatch, aborts partitioners mid-flight,
// and returns a nil result with the context's error.
package sim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"samr/internal/geom"
	"samr/internal/grid"
	"samr/internal/memo"
	"samr/internal/partition"
	"samr/internal/pool"
	"samr/internal/trace"
)

// Machine is the analytic machine model: the "C" component of the
// paper's PAC triple, reduced to the scalar parameters the
// classification model consumes (CPU speed, communication bandwidth).
type Machine struct {
	// CellTime is seconds per cell update.
	CellTime float64
	// PointBandwidth is grid points transferred per second between
	// processors.
	PointBandwidth float64
	// MessageLatency is the fixed cost per message in seconds.
	MessageLatency float64
	// MigrationBandwidth is grid points migrated per second during
	// redistribution.
	MigrationBandwidth float64
}

// DefaultMachine models a commodity cluster of the paper's era (2004):
// ~10 Mcell/s per-processor stencil throughput (a ~1 Gflop/s node at
// ~100 flops per cell update), ~10 Mpoint/s network (≈100 MB/s), 20 us
// message latency, and migration at half the link bandwidth
// (pack/unpack overhead).
func DefaultMachine() Machine {
	return Machine{
		CellTime:           1e-7,
		PointBandwidth:     1e7,
		MessageLatency:     2e-5,
		MigrationBandwidth: 5e6,
	}
}

// StepMetrics is the simulator output for one coarse time step.
type StepMetrics struct {
	// Step is the coarse step index (matches the trace snapshot).
	Step int
	// Loads is the per-processor computational load (weighted cell
	// updates per coarse step).
	Loads []int64
	// Imbalance is the load imbalance percentage (100*max/avg - 100).
	Imbalance float64
	// IntraLevelComm is the ghost-exchange volume in point-transfers
	// per coarse step (each level's imports times its local steps).
	IntraLevelComm int64
	// InterLevelComm is the parent-child transfer volume (prolongation
	// and restriction across owners) per coarse step.
	InterLevelComm int64
	// Messages is the number of point-to-point transfers per coarse
	// step.
	Messages int64
	// RelativeComm is (IntraLevelComm+InterLevelComm)/Workload: the
	// paper's grid-relative communication metric.
	RelativeComm float64
	// Migration is the number of grid points whose owner changed
	// relative to the previous step's assignment (points present in
	// both hierarchies).
	Migration int64
	// RelativeMigration is Migration normalized by the previous
	// hierarchy's size |H_{t-1}|: the paper's grid-relative data
	// migration metric.
	RelativeMigration float64
	// EstTime is the machine-model execution-time estimate for the
	// step, including migration cost.
	EstTime float64
}

// TotalComm returns intra- plus inter-level communication volume.
func (m StepMetrics) TotalComm() int64 { return m.IntraLevelComm + m.InterLevelComm }

// ownedFragments groups an assignment's fragments per level.
func ownedFragments(a *partition.Assignment, numLevels int) [][]partition.Fragment {
	out := make([][]partition.Fragment, numLevels)
	for _, f := range a.Fragments {
		if f.Level < numLevels {
			out[f.Level] = append(out[f.Level], f)
		}
	}
	return out
}

// checkCtx polls ctx, wrapping its error for the simulator layer.
func checkCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	return nil
}

// pairSet tracks (receiver, sender) processor pairs as a flat flag
// array keyed dst*nprocs+src, with a touched-key list so clearing costs
// O(pairs seen) instead of O(nprocs^2). It replaces the per-level
// map[pair]bool the hot evaluation loop used to allocate and hash.
type pairSet struct {
	flags []bool
	keys  []int
}

// reset prepares the set for nprocs processors, clearing any pairs left
// from the previous use.
func (s *pairSet) reset(nprocs int) {
	for _, k := range s.keys {
		s.flags[k] = false
	}
	s.keys = s.keys[:0]
	if n := nprocs * nprocs; len(s.flags) < n {
		s.flags = make([]bool, n)
	}
}

// add records key k = dst*nprocs+src once.
func (s *pairSet) add(k int) {
	if !s.flags[k] {
		s.flags[k] = true
		s.keys = append(s.keys, k)
	}
}

// evalScratch is the reusable working state of one Evaluate call: the
// per-processor accumulators, the pair set, the BoxIndex query buffer,
// and the per-level slice headers. A sync.Pool recycles it across
// calls (and across the worker pool's concurrent evaluations), so a
// trace run stops allocating these per snapshot.
type evalScratch struct {
	comm    []int64
	msgs    []int64
	pairs   pairSet
	buf     []int
	indexes []*geom.BoxIndex
	boxes   geom.BoxList
}

var evalScratchPool = sync.Pool{New: func() any { return new(evalScratch) }}

// grow64 returns a zeroed int64 slice of length n, reusing s's backing
// array when it is large enough.
func grow64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// Evaluate computes the partition-quality metrics of one assignment on
// one hierarchy (everything except migration, which needs the previous
// step). Cancellation is polled per level and per fragment batch; a
// cancelled call returns the zero StepMetrics and ctx's error, never a
// partially accumulated one.
func Evaluate(ctx context.Context, h *grid.Hierarchy, a *partition.Assignment, m Machine) (StepMetrics, error) {
	if err := checkCtx(ctx); err != nil {
		return StepMetrics{}, err
	}
	loads := a.Loads(h)
	sm := StepMetrics{Loads: loads, Imbalance: partition.ImbalanceOf(loads)}
	perLevel := ownedFragments(a, len(h.Levels))
	nprocs := a.NumProcs

	sc := evalScratchPool.Get().(*evalScratch)
	defer evalScratchPool.Put(sc)
	sc.comm = grow64(sc.comm, nprocs)
	sc.msgs = grow64(sc.msgs, nprocs)
	commPerProc := sc.comm
	msgsPerProc := sc.msgs

	// One BoxIndex per level over the fragment boxes serves both the
	// intra-level halo scan (query the grown box) and the level-above
	// inter-level scan (query the coarsened footprint).
	if cap(sc.indexes) < len(perLevel) {
		sc.indexes = make([]*geom.BoxIndex, len(perLevel))
	}
	indexes := sc.indexes[:len(perLevel)]
	// One box arena carved into disjoint per-level sub-slices: each
	// BoxIndex captures its list by reference, so levels must not share
	// storage, but the arena is reused across Evaluate calls (the
	// indexes die with the call).
	total := 0
	for _, frags := range perLevel {
		total += len(frags)
	}
	if cap(sc.boxes) < total {
		sc.boxes = make(geom.BoxList, total)
	}
	arena := sc.boxes[:total]
	for l, frags := range perLevel {
		bl := arena[:len(frags):len(frags)]
		arena = arena[len(frags):]
		for i, f := range frags {
			bl[i] = f.Box
		}
		indexes[l] = geom.NewBoxIndex(bl)
	}
	buf := sc.buf

	// Intra-level ghost exchange: for every fragment, the one-cell halo
	// cells covered by a different owner's fragment are imported every
	// local step. The halo overlap |(Grow(1) \ Box) x g| is computed as
	// |Grow(1) x g| - |Box x g| (the halo pieces tile exactly that
	// difference), avoiding the per-pair halo BoxList rebuild. Messages
	// are aggregated per (receiver, sender) pair per local step — real
	// ghost-exchange implementations pack all fragment transfers
	// between two processors into one message — in the flat pair set.
	for l, frags := range perLevel {
		steps := h.StepFactor(l)
		sc.pairs.reset(nprocs)
		for i, f := range frags {
			if i%256 == 0 {
				if err := checkCtx(ctx); err != nil {
					sc.buf = buf
					return StepMetrics{}, err
				}
			}
			grown := f.Box.Grow(1)
			buf = indexes[l].AppendQuery(buf[:0], grown)
			for _, j := range buf {
				g := frags[j]
				if i == j || f.Owner == g.Owner {
					continue
				}
				vol := grown.Intersect(g.Box).Volume() - f.Box.Intersect(g.Box).Volume()
				if vol > 0 {
					sm.IntraLevelComm += vol * steps
					commPerProc[f.Owner] += vol * steps
					sc.pairs.add(f.Owner*nprocs + g.Owner)
				}
			}
		}
		sm.Messages += int64(len(sc.pairs.keys)) * steps
		for _, k := range sc.pairs.keys {
			msgsPerProc[k/nprocs] += steps
		}
	}

	// Inter-level transfers: fine fragments exchange boundary data and
	// restriction results with the underlying coarse fragments once per
	// coarse local step when the owners differ.
	for l := 1; l < len(h.Levels); l++ {
		coarseSteps := h.StepFactor(l - 1)
		sc.pairs.reset(nprocs)
		for fi, f := range perLevel[l] {
			if fi%256 == 0 {
				if err := checkCtx(ctx); err != nil {
					sc.buf = buf
					return StepMetrics{}, err
				}
			}
			under := f.Box.Coarsen(h.RefRatio)
			buf = indexes[l-1].AppendQuery(buf[:0], under)
			for _, ci := range buf {
				c := perLevel[l-1][ci]
				if f.Owner == c.Owner {
					continue
				}
				vol := under.Intersect(c.Box).Volume()
				if vol > 0 {
					sm.InterLevelComm += vol * coarseSteps
					commPerProc[f.Owner] += vol * coarseSteps
					sc.pairs.add(f.Owner*nprocs + c.Owner)
				}
			}
		}
		sm.Messages += int64(len(sc.pairs.keys)) * coarseSteps
		for _, k := range sc.pairs.keys {
			msgsPerProc[k/nprocs] += coarseSteps
		}
	}
	sc.buf = buf

	if w := h.Workload(); w > 0 {
		sm.RelativeComm = float64(sm.TotalComm()) / float64(w)
	}

	// Execution-time estimate: slowest processor's compute plus
	// communication (synchronization couples them, per the paper's
	// discussion of total = computational + communicational imbalance).
	var worst float64
	for p := 0; p < a.NumProcs; p++ {
		t := float64(sm.Loads[p])*m.CellTime +
			float64(commPerProc[p])/m.PointBandwidth +
			float64(msgsPerProc[p])*m.MessageLatency
		if t > worst {
			worst = t
		}
	}
	sm.EstTime = worst
	return sm, nil
}

// Migration returns the number of grid points that exist in both
// hierarchies (per-level box overlap) but belong to different owners
// under the two assignments. Newly created points are excluded: they
// are filled by prolongation and counted as inter-level communication,
// not migration.
func Migration(hPrev, hCur *grid.Hierarchy, aPrev, aCur *partition.Assignment) int64 {
	levels := len(hPrev.Levels)
	if len(hCur.Levels) < levels {
		levels = len(hCur.Levels)
	}
	var moved int64
	for l := 0; l < levels; l++ {
		shared := geom.OverlapVolume(hPrev.Levels[l].Boxes, hCur.Levels[l].Boxes)
		prevOwned := aPrev.LevelBoxes(l)
		curOwned := aCur.LevelBoxes(l)
		var stayed int64
		for p, pb := range prevOwned {
			if cb, ok := curOwned[p]; ok {
				stayed += geom.OverlapVolume(pb, cb)
			}
		}
		moved += shared - stayed
	}
	return moved
}

// Result is the simulator output for an entire trace.
type Result struct {
	// PartitionerName records which partitioner produced the metrics.
	PartitionerName string
	NumProcs        int
	Steps           []StepMetrics
}

// TotalEstTime sums the per-step execution-time estimates.
func (r *Result) TotalEstTime() float64 {
	var t float64
	for _, s := range r.Steps {
		t += s.EstTime
	}
	return t
}

// MeanImbalance returns the average load-imbalance percentage.
func (r *Result) MeanImbalance() float64 {
	if len(r.Steps) == 0 {
		return 0
	}
	var t float64
	for _, s := range r.Steps {
		t += s.Imbalance
	}
	return t / float64(len(r.Steps))
}

// SimulateTrace partitions every snapshot of the trace with p and
// evaluates each step, chaining consecutive assignments for the
// migration metric. This is the paper's experimental pipeline with a
// statically configured partitioner. A cancelled run returns a nil
// Result and ctx's error — never a truncated result.
func SimulateTrace(ctx context.Context, tr *trace.Trace, p partition.Partitioner, nprocs int, m Machine) (*Result, error) {
	return SimulateTraceSelect(ctx, tr, func(step int, h *grid.Hierarchy) partition.Partitioner {
		return p
	}, nprocs, m)
}

// SimulateTraceSelect is SimulateTrace with a per-step partitioner
// choice: the hook the meta-partitioner uses to realize fully dynamic
// PACs (partitioner as a function of application state and time).
func SimulateTraceSelect(ctx context.Context, tr *trace.Trace, choose func(step int, h *grid.Hierarchy) partition.Partitioner, nprocs int, m Machine) (*Result, error) {
	return simulateTrace(ctx, tr, choose, nprocs, m, pool.Workers())
}

// stateful reports whether a partitioner carries state between
// Partition calls. The marker is the Reset method every stateful
// partitioner (the post-mapping wrapper) already exposes so experiment
// replays can clear it; stateless partitioners are pure functions of
// their configuration and may run concurrently, even on a shared
// instance.
func stateful(p partition.Partitioner) bool {
	_, ok := p.(interface{ Reset() })
	return ok
}

// Process-wide memoization savings of the trace pipeline, surfaced by
// /v1/stats and samrbench -cachestats: snapshots whose partitioning,
// evaluation, or migration scan was answered by the content-addressed
// step cache (or an identical in-flight step) instead of recomputed.
var (
	partitionsMemoized  atomic.Uint64
	evaluationsMemoized atomic.Uint64
	migrationsShortCut  atomic.Uint64
)

// MemoStats returns the cumulative memoization counters of the trace
// pipeline: partition calls, Evaluate calls, and migration scans
// answered without recomputation because an identical
// (signature, partitioner, nprocs, machine) step had already been
// computed — in the same run, an earlier run, or a concurrent one.
// The migration counter covers both forms of saving: consecutive
// steps sharing one assignment (exactly zero points move) and pairs
// served from the migration cache.
func MemoStats() (partitions, evaluations, migrations uint64) {
	return partitionsMemoized.Load(), evaluationsMemoized.Load(), migrationsShortCut.Load()
}

// stepKey addresses the content-addressed result of partitioning and
// evaluating one snapshot: hierarchy content hash, canonical
// partitioner memo key, processor count, and machine model (EstTime
// depends on it). Equal keys imply bit-identical results for stateless
// partitioners, which is the only kind ever cached.
type stepKey struct {
	sig    geom.Signature
	name   string
	nprocs int
	m      Machine
}

// stepArtifact is one cached step: the assignment plus its evaluated
// metrics with the per-run fields (Step, Migration, RelativeMigration,
// the migration share of EstTime) still unset. Both are shared across
// runs and treated as immutable by every reader.
type stepArtifact struct {
	a  *partition.Assignment
	sm StepMetrics
}

// migKey addresses the migration volume between two consecutive
// partitioned snapshots; both endpoints must be content-addressed
// (stateless partitioners), which makes the moved-point count a pure
// function of this key.
type migKey struct {
	sigPrev, sigCur   geom.Signature
	namePrev, nameCur string
	nprocs            int
}

// Cache bounds: step artifacts are a few KB each (an assignment's
// fragments plus a metrics row), migration entries are a single
// scalar. The bounds comfortably hold the working set of a full
// experiment sweep while bounding a long-running daemon.
const (
	stepCacheCap = 2048
	migCacheCap  = 8192
)

var (
	stepCache = memo.New[stepKey, stepArtifact](stepCacheCap)
	migCache  = memo.New[migKey, int64](migCacheCap)
)

// memoName returns the canonical content key of a partitioner for the
// memoization layer: Name(), unless the partitioner implements MemoKey
// to disambiguate configuration its display name omits (patch-lpt's
// MaxOverIdeal).
func memoName(p partition.Partitioner) string {
	if k, ok := p.(interface{ MemoKey() string }); ok {
		return k.MemoKey()
	}
	return p.Name()
}

// flushStepCaches drops the content-addressed step and migration
// caches (tests use it to compare memoized runs against cold ones).
func flushStepCaches() {
	stepCache.Flush()
	migCache.Flush()
}

// FlushStepCaches drops the process-wide step and migration caches.
// Exported for tests outside this package (the server's tier
// equivalence suite) that need a cold local cache to prove a result
// was served from elsewhere.
func FlushStepCaches() { flushStepCaches() }

// StepTierKey identifies one stateless simulator step fleet-wide: the
// hierarchy content signature, the partitioner's canonical memo key,
// the processor count, and the machine model. Equal keys imply
// bit-identical artifacts — the same contract as the local step cache.
type StepTierKey struct {
	Sig         geom.Signature
	Partitioner string
	NProcs      int
	Machine     Machine
}

// StepTier is the pluggable second-level cache behind the step cache's
// miss path, mirroring memo.Tier: Lookup reports a miss on any
// failure, Store is best-effort, and values must be pure functions of
// their key, immutable to every reader. Only stateless steps ever
// reach it — stateful (post-mapped) partitioners bypass the step cache
// entirely, so the tier inherits that exclusion. The stored metrics
// carry the per-run fields (Step, Migration, the migration share of
// EstTime) unset, exactly as the local cache holds them.
type StepTier interface {
	Lookup(ctx context.Context, k StepTierKey) (*partition.Assignment, StepMetrics, bool)
	Store(k StepTierKey, a *partition.Assignment, sm StepMetrics)
}

// stepTierAdapter bridges a StepTier into the step cache's memo.Tier
// slot, translating the unexported key/artifact types.
type stepTierAdapter struct{ t StepTier }

func (ad stepTierAdapter) Lookup(ctx context.Context, k stepKey) (stepArtifact, bool) {
	a, sm, ok := ad.t.Lookup(ctx, StepTierKey{Sig: k.sig, Partitioner: k.name, NProcs: k.nprocs, Machine: k.m})
	if !ok || a == nil {
		return stepArtifact{}, false
	}
	return stepArtifact{a: a, sm: sm}, true
}

func (ad stepTierAdapter) Store(k stepKey, v stepArtifact) {
	ad.t.Store(StepTierKey{Sig: k.sig, Partitioner: k.name, NProcs: k.nprocs, Machine: k.m}, v.a, v.sm)
}

// SetStepTier installs (nil: removes) the second-level cache behind
// the process-wide step cache. The step cache is shared by every
// simulation in the process, so the last installation wins; the server
// wires this when -tier-sim-steps is set and removes it on Close.
func SetStepTier(t StepTier) {
	if t == nil {
		stepCache.SetTier(nil)
		return
	}
	stepCache.SetTier(stepTierAdapter{t: t})
}

// encBufPool recycles hierarchy-encoding buffers across the signature
// fan-out, so bulk hashing stops allocating per snapshot.
var encBufPool = sync.Pool{New: func() any { return new([]byte) }}

// simulateTrace is the worker-pool implementation behind
// SimulateTrace/SimulateTraceSelect. The per-snapshot work units are
// independent except for two sequential strands, which are preserved
// exactly: the choose hook may carry classifier state (hysteresis), so
// it runs in snapshot order up front; and stateful partitioners chain
// assignments, so partitioning falls back to snapshot order when any
// chosen partitioner is stateful. Evaluation — the bulk of the cost —
// always fans out, with each goroutine writing Steps[i] by index, and a
// cheap sequential-equivalent pass chains the migration metric over the
// precomputed per-step assignments. The result is bit-identical to the
// workers=1 path for any worker count. Cancellation propagates into
// every phase through pool.MapCtx and the partitioners' own polls; a
// cancelled run returns nil.
//
// Memoization: a stateless partitioner's step is a pure function of
// (hierarchy content, configuration, nprocs, machine), so each step is
// served from the process-wide content-addressed step cache: repeated
// content (regrid-sparse traces), repeated configurations (the
// meta-vs-static and ablation sweeps replay the same snapshots many
// times), and concurrent identical runs all compute each distinct step
// once. Steps sharing a key share one Assignment and metrics row
// (immutable by contract); the migration scan between two
// content-addressed steps is cached the same way, and short-circuits
// to its exact value of zero when consecutive steps share one
// assignment. Stateful partitioners (the post-mapping wrapper) keep
// the full sequential chain and are never cached: their output depends
// on carried state, not content alone.
func simulateTrace(ctx context.Context, tr *trace.Trace, choose func(step int, h *grid.Hierarchy) partition.Partitioner, nprocs int, m Machine, workers int) (*Result, error) {
	res := &Result{NumProcs: nprocs}
	n := len(tr.Snapshots)
	if n == 0 {
		if err := checkCtx(ctx); err != nil {
			return nil, err
		}
		return res, nil
	}

	// Phase 1 (sequential): per-step partitioner choice.
	ps := make([]partition.Partitioner, n)
	anyStateful := false
	for i, snap := range tr.Snapshots {
		if err := checkCtx(ctx); err != nil {
			return nil, err
		}
		ps[i] = choose(snap.Step, snap.H)
		anyStateful = anyStateful || stateful(ps[i])
	}
	res.PartitionerName = ps[0].Name()
	for i := 1; i < n; i++ {
		if ps[i].Name() != res.PartitionerName {
			res.PartitionerName = "dynamic"
			break
		}
	}

	// Content signatures and canonical names for the memo keys (pure,
	// index-slotted; encoding buffers are pooled across the fan-out).
	// A run whose every step is stateful never consults the caches, so
	// it skips the hashing entirely.
	allStateful := true
	for i := range ps {
		if !stateful(ps[i]) {
			allStateful = false
			break
		}
	}
	sigs := make([]geom.Signature, n)
	names := make([]string, n)
	var err error
	if !allStateful {
		err = pool.MapCtx(ctx, workers, n, func(i int) error {
			if stateful(ps[i]) {
				// Stateful steps never consult a cache: their key slots
				// stay zero and unread.
				return nil
			}
			bp := encBufPool.Get().(*[]byte)
			var sig geom.Signature
			sig, *bp = tr.Snapshots[i].H.SignatureWith((*bp)[:0])
			encBufPool.Put(bp)
			sigs[i] = sig
			return nil
		})
		if err != nil {
			return nil, err
		}
		for i := range ps {
			if !stateful(ps[i]) {
				names[i] = memoName(ps[i])
			}
		}
	}

	// Phase 2+3: partition and evaluate every snapshot. A stateless
	// partitioner's step is a pure function of (content, configuration,
	// nprocs, machine), so it is served from the process-wide
	// content-addressed cache — computed at most once across runs, and
	// across concurrent runs via the cache's singleflight. Stateful
	// partitioners run sequentially in snapshot order and are never
	// cached.
	as := make([]*partition.Assignment, n)
	res.Steps = make([]StepMetrics, n)
	cachedStep := func(i int) error {
		key := stepKey{sig: sigs[i], name: names[i], nprocs: nprocs, m: m}
		art, disp, err := stepCache.GetOrCompute(ctx, key, func() (stepArtifact, error) {
			a, err := ps[i].Partition(ctx, tr.Snapshots[i].H, nprocs)
			if err != nil {
				return stepArtifact{}, err
			}
			sm, err := Evaluate(ctx, tr.Snapshots[i].H, a, m)
			if err != nil {
				return stepArtifact{}, err
			}
			return stepArtifact{a: a, sm: sm}, nil
		})
		if err != nil {
			return err
		}
		if disp != memo.Miss {
			partitionsMemoized.Add(1)
			evaluationsMemoized.Add(1)
		}
		as[i] = art.a
		sm := art.sm
		// The artifact (and its Loads vector) is shared cache state;
		// the Result hands Loads to callers the public API makes no
		// immutability promise to, so each step gets its own copy.
		sm.Loads = append([]int64(nil), sm.Loads...)
		res.Steps[i] = sm
		return nil
	}
	// Sequential strand: only the stateful steps chain carried state,
	// and their chaining depends solely on their own relative order, so
	// they partition in snapshot order here while every stateless step
	// (partition + evaluation, via the cache) fans out below.
	if anyStateful {
		for i := range tr.Snapshots {
			if !stateful(ps[i]) {
				continue
			}
			a, err := ps[i].Partition(ctx, tr.Snapshots[i].H, nprocs)
			if err != nil {
				return nil, err
			}
			as[i] = a
		}
	}
	err = pool.MapCtx(ctx, workers, n, func(i int) error {
		if stateful(ps[i]) {
			sm, err := Evaluate(ctx, tr.Snapshots[i].H, as[i], m)
			if err != nil {
				return err
			}
			res.Steps[i] = sm
			return nil
		}
		return cachedStep(i)
	})
	if err != nil {
		return nil, err
	}
	for i := range res.Steps {
		res.Steps[i].Step = tr.Snapshots[i].Step
	}

	// Phase 4 (parallel over consecutive pairs): chain the migration
	// metric over the precomputed assignments. Consecutive steps
	// sharing one cached assignment over content-identical hierarchies
	// move nothing — every point keeps its owner — so the overlap scan
	// short-circuits to its exact result of zero; pairs of
	// content-addressed steps go through the migration cache.
	err = pool.MapCtx(ctx, workers, n-1, func(j int) error {
		i := j + 1
		sm := &res.Steps[i]
		switch {
		case as[i-1] == as[i]:
			migrationsShortCut.Add(1)
		case !stateful(ps[i-1]) && !stateful(ps[i]):
			mk := migKey{
				sigPrev: sigs[i-1], sigCur: sigs[i],
				namePrev: names[i-1], nameCur: names[i],
				nprocs: nprocs,
			}
			mv, disp, err := migCache.GetOrCompute(ctx, mk, func() (int64, error) {
				return Migration(tr.Snapshots[i-1].H, tr.Snapshots[i].H, as[i-1], as[i]), nil
			})
			if err != nil {
				return err
			}
			if disp != memo.Miss {
				migrationsShortCut.Add(1)
			}
			sm.Migration = mv
		default:
			sm.Migration = Migration(tr.Snapshots[i-1].H, tr.Snapshots[i].H, as[i-1], as[i])
		}
		if np := tr.Snapshots[i-1].H.NumPoints(); np > 0 {
			sm.RelativeMigration = float64(sm.Migration) / float64(np)
		}
		sm.EstTime += float64(sm.Migration) / m.MigrationBandwidth
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
