package sim

import (
	"context"
	"testing"

	"samr/internal/geom"
	"samr/internal/grid"
	"samr/internal/partition"
	"samr/internal/trace"
)

// bg is the background context of the non-cancellation tests.
var bg = context.Background()

// mustPartition partitions with the background context, failing on the
// impossible error path.
func mustPartition(t testing.TB, p partition.Partitioner, h *grid.Hierarchy, np int) *partition.Assignment {
	t.Helper()
	a, err := p.Partition(bg, h, np)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// mustEvaluate evaluates with the background context.
func mustEvaluate(t testing.TB, h *grid.Hierarchy, a *partition.Assignment, m Machine) StepMetrics {
	t.Helper()
	sm, err := Evaluate(bg, h, a, m)
	if err != nil {
		t.Fatal(err)
	}
	return sm
}

func flat(n int) *grid.Hierarchy {
	return grid.NewHierarchy(geom.NewBox2(0, 0, n, n), 2)
}

func refined(l1 geom.Box) *grid.Hierarchy {
	h := flat(32)
	h.Levels = append(h.Levels, grid.Level{Boxes: geom.BoxList{l1}})
	return h
}

// halves is a hand-built two-processor assignment splitting the base
// grid down the middle.
func halves(h *grid.Hierarchy) *partition.Assignment {
	d := h.Domain
	mid := (d.Lo[0] + d.Hi[0]) / 2
	lo, hi := d.ChopDim(0, mid)
	return &partition.Assignment{NumProcs: 2, Fragments: []partition.Fragment{
		{Level: 0, Box: lo, Owner: 0},
		{Level: 0, Box: hi, Owner: 1},
	}}
}

func TestEvaluateFlatHalves(t *testing.T) {
	h := flat(32)
	a := halves(h)
	m := mustEvaluate(t, h, a, DefaultMachine())
	if m.Imbalance != 0 {
		t.Errorf("perfect split imbalance = %f", m.Imbalance)
	}
	// One internal boundary of 32 cells, imported by both sides once
	// per step (factor 1 at level 0): 64 point-transfers.
	if m.IntraLevelComm != 64 {
		t.Errorf("IntraLevelComm = %d, want 64", m.IntraLevelComm)
	}
	if m.InterLevelComm != 0 {
		t.Errorf("InterLevelComm = %d, want 0", m.InterLevelComm)
	}
	if m.Messages != 2 {
		t.Errorf("Messages = %d, want 2", m.Messages)
	}
	wantRel := 64.0 / 1024.0
	if m.RelativeComm < wantRel-1e-9 || m.RelativeComm > wantRel+1e-9 {
		t.Errorf("RelativeComm = %f, want %f", m.RelativeComm, wantRel)
	}
	if m.EstTime <= 0 {
		t.Error("EstTime should be positive")
	}
}

func TestEvaluateSingleProcNoComm(t *testing.T) {
	h := refined(geom.NewBox2(8, 8, 24, 24))
	a := mustPartition(t, partition.NewDomainSFC(), h, 1)
	m := mustEvaluate(t, h, a, DefaultMachine())
	if m.TotalComm() != 0 || m.Messages != 0 {
		t.Errorf("single processor should have zero comm, got %d/%d msgs", m.TotalComm(), m.Messages)
	}
}

func TestEvaluateInterLevelComm(t *testing.T) {
	// Level-1 patch owned by proc 1, its base entirely by proc 0:
	// all 64 underlying coarse cells cross owners, once per coarse
	// local step (factor 1).
	h := refined(geom.NewBox2(8, 8, 24, 24))
	a := &partition.Assignment{NumProcs: 2, Fragments: []partition.Fragment{
		{Level: 0, Box: h.Domain, Owner: 0},
		{Level: 1, Box: geom.NewBox2(8, 8, 24, 24), Owner: 1},
	}}
	m := mustEvaluate(t, h, a, DefaultMachine())
	if m.InterLevelComm != 64 {
		t.Errorf("InterLevelComm = %d, want 64", m.InterLevelComm)
	}
	if m.IntraLevelComm != 0 {
		t.Errorf("IntraLevelComm = %d, want 0 (single fragments per level)", m.IntraLevelComm)
	}
}

func TestDomainBasedHasNoInterLevelComm(t *testing.T) {
	// The defining advantage of domain-based partitioning (section 2.2):
	// elimination of inter-level communication.
	h := refined(geom.NewBox2(8, 8, 24, 24))
	h.Levels = append(h.Levels, grid.Level{Boxes: geom.BoxList{geom.NewBox2(20, 20, 40, 40)}})
	for _, np := range []int{2, 4, 8} {
		a := mustPartition(t, partition.NewDomainSFC(), h, np)
		if err := a.Validate(h); err != nil {
			t.Fatal(err)
		}
		m := mustEvaluate(t, h, a, DefaultMachine())
		if m.InterLevelComm != 0 {
			t.Errorf("procs=%d: domain-based inter-level comm = %d, want 0", np, m.InterLevelComm)
		}
	}
}

func TestPatchBasedHasInterLevelComm(t *testing.T) {
	// The characteristic weakness of patch-based partitioning.
	h := refined(geom.NewBox2(8, 8, 24, 24))
	a := mustPartition(t, partition.NewPatchBased(), h, 4)
	m := mustEvaluate(t, h, a, DefaultMachine())
	if m.InterLevelComm == 0 {
		t.Error("patch-based partitioning of a refined grid should incur inter-level comm")
	}
}

func TestFinerLevelsCommunicateMoreOften(t *testing.T) {
	// The same geometric split at level 1 costs twice the level-0
	// transfers because level 1 steps twice per coarse step.
	h0 := flat(32)
	a0 := halves(h0)
	m0 := mustEvaluate(t, h0, a0, DefaultMachine())

	h1 := flat(32)
	h1.Levels = append(h1.Levels, grid.Level{Boxes: geom.BoxList{geom.NewBox2(0, 0, 64, 64)}})
	a1 := &partition.Assignment{NumProcs: 2, Fragments: []partition.Fragment{
		{Level: 0, Box: h1.Domain, Owner: 0},
		{Level: 1, Box: geom.NewBox2(0, 0, 32, 64), Owner: 0},
		{Level: 1, Box: geom.NewBox2(32, 0, 64, 64), Owner: 1},
	}}
	m1 := mustEvaluate(t, h1, a1, DefaultMachine())
	// Level-1 boundary: 64 cells each way = 128 per local step, at 2
	// local steps = 256.
	if m1.IntraLevelComm != 256 {
		t.Errorf("level-1 IntraLevelComm = %d, want 256", m1.IntraLevelComm)
	}
	if m1.IntraLevelComm <= m0.IntraLevelComm {
		t.Error("finer-level comm should exceed base-level comm")
	}
}

func TestMigrationZeroWhenOwnershipStable(t *testing.T) {
	h := refined(geom.NewBox2(8, 8, 24, 24))
	a := mustPartition(t, partition.NewDomainSFC(), h, 4)
	if m := Migration(h, h.Clone(), a, a); m != 0 {
		t.Errorf("identical assignment migration = %d", m)
	}
}

func TestMigrationCountsOwnerChanges(t *testing.T) {
	h := flat(32)
	a := halves(h)
	// Swap the halves: every cell changes owner.
	b := &partition.Assignment{NumProcs: 2, Fragments: []partition.Fragment{
		{Level: 0, Box: a.Fragments[0].Box, Owner: 1},
		{Level: 0, Box: a.Fragments[1].Box, Owner: 0},
	}}
	if m := Migration(h, h.Clone(), a, b); m != 1024 {
		t.Errorf("full swap migration = %d, want 1024", m)
	}
}

func TestMigrationExcludesNewPoints(t *testing.T) {
	// New refinement appearing from nothing is prolongation, not
	// migration.
	hPrev := flat(32)
	hCur := refined(geom.NewBox2(8, 8, 24, 24))
	aPrev := halves(hPrev)
	aCur := &partition.Assignment{NumProcs: 2, Fragments: []partition.Fragment{
		{Level: 0, Box: aPrev.Fragments[0].Box, Owner: 0},
		{Level: 0, Box: aPrev.Fragments[1].Box, Owner: 1},
		{Level: 1, Box: geom.NewBox2(8, 8, 24, 24), Owner: 1},
	}}
	if m := Migration(hPrev, hCur, aPrev, aCur); m != 0 {
		t.Errorf("creation-only step migration = %d, want 0", m)
	}
}

func sampleTrace() *trace.Trace {
	tr := &trace.Trace{App: "X", RefRatio: 2, MaxLevels: 2, Domain: geom.NewBox2(0, 0, 32, 32)}
	for s := 0; s < 5; s++ {
		h := refined(geom.NewBox2(2*s, 2*s, 2*s+16, 2*s+16))
		tr.Append(s, float64(s), h)
	}
	return tr
}

func TestSimulateTrace(t *testing.T) {
	tr := sampleTrace()
	res, err := SimulateTrace(bg, tr, partition.NewNatureFable(), 8, DefaultMachine())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 5 {
		t.Fatalf("steps = %d", len(res.Steps))
	}
	if res.Steps[0].Migration != 0 {
		t.Error("first step cannot have migration")
	}
	for i := 1; i < 5; i++ {
		s := res.Steps[i]
		if s.Migration < 0 {
			t.Errorf("step %d negative migration %d", i, s.Migration)
		}
		if s.RelativeMigration < 0 || s.RelativeMigration > 1.5 {
			t.Errorf("step %d relative migration %f implausible", i, s.RelativeMigration)
		}
		if s.Migration == 0 {
			t.Errorf("step %d: moving refinement should migrate some points", i)
		}
	}
	if res.TotalEstTime() <= 0 {
		t.Error("TotalEstTime should be positive")
	}
	if res.PartitionerName != partition.NewNatureFable().Name() {
		t.Errorf("PartitionerName = %q", res.PartitionerName)
	}
}

func TestSimulateTraceSelectDynamic(t *testing.T) {
	tr := sampleTrace()
	pats := []partition.Partitioner{partition.NewDomainSFC(), partition.NewPatchBased()}
	res, err := SimulateTraceSelect(bg, tr, func(step int, h *grid.Hierarchy) partition.Partitioner {
		return pats[step%2]
	}, 4, DefaultMachine())
	if err != nil {
		t.Fatal(err)
	}
	if res.PartitionerName != "dynamic" {
		t.Errorf("PartitionerName = %q, want dynamic", res.PartitionerName)
	}
	if len(res.Steps) != 5 {
		t.Fatalf("steps = %d", len(res.Steps))
	}
}

func TestResultAggregates(t *testing.T) {
	r := &Result{Steps: []StepMetrics{
		{Imbalance: 10, EstTime: 1},
		{Imbalance: 30, EstTime: 2},
	}}
	if r.MeanImbalance() != 20 {
		t.Errorf("MeanImbalance = %f", r.MeanImbalance())
	}
	if r.TotalEstTime() != 3 {
		t.Errorf("TotalEstTime = %f", r.TotalEstTime())
	}
}

func TestEvaluateImbalanceCouplesCommIntoTime(t *testing.T) {
	// Two assignments with identical load but different comm: the one
	// with more communication must cost more estimated time.
	h := flat(32)
	good := halves(h)
	// Striped assignment: same load split but 3 internal boundaries.
	var frags []partition.Fragment
	for i := 0; i < 4; i++ {
		frags = append(frags, partition.Fragment{
			Level: 0,
			Box:   geom.NewBox2(8*i, 0, 8*i+8, 32),
			Owner: i % 2,
		})
	}
	striped := &partition.Assignment{NumProcs: 2, Fragments: frags}
	mGood := mustEvaluate(t, h, good, DefaultMachine())
	mStriped := mustEvaluate(t, h, striped, DefaultMachine())
	if mStriped.TotalComm() <= mGood.TotalComm() {
		t.Fatal("striping should raise communication")
	}
	if mStriped.EstTime <= mGood.EstTime {
		t.Error("more communication must raise estimated time")
	}
}

func TestMessagesAggregatePerOwnerPair(t *testing.T) {
	// Four interleaved fragments between two owners share one boundary
	// pair per direction: messages must count the (dst, src) pairs per
	// local step, not the fragment pairs.
	h := flat(32)
	var frags []partition.Fragment
	for i := 0; i < 4; i++ {
		frags = append(frags, partition.Fragment{
			Level: 0,
			Box:   geom.NewBox2(8*i, 0, 8*i+8, 32),
			Owner: i % 2,
		})
	}
	a := &partition.Assignment{NumProcs: 2, Fragments: frags}
	m := mustEvaluate(t, h, a, DefaultMachine())
	// Exactly two ordered owner pairs (0<-1 and 1<-0), one level, one
	// local step.
	if m.Messages != 2 {
		t.Errorf("Messages = %d, want 2 (aggregated per owner pair)", m.Messages)
	}
}

func TestMigrationSymmetricUnderSwap(t *testing.T) {
	h := refined(geom.NewBox2(8, 8, 24, 24))
	a := mustPartition(t, partition.NewDomainSFC(), h, 4)
	b := mustPartition(t, partition.NewPatchBased(), h, 4)
	fwd := Migration(h, h.Clone(), a, b)
	rev := Migration(h, h.Clone(), b, a)
	if fwd != rev {
		t.Errorf("migration not symmetric for same hierarchy: %d vs %d", fwd, rev)
	}
}

func TestMigrationBoundedByShared(t *testing.T) {
	hPrev := refined(geom.NewBox2(0, 0, 16, 16))
	hCur := refined(geom.NewBox2(8, 8, 24, 24))
	aPrev := mustPartition(t, partition.NewDomainSFC(), hPrev, 4)
	aCur := mustPartition(t, partition.NewPatchBased(), hCur, 4)
	shared := grid.TotalOverlap(hPrev, hCur)
	if m := Migration(hPrev, hCur, aPrev, aCur); m < 0 || m > shared {
		t.Errorf("migration %d outside [0, shared=%d]", m, shared)
	}
}

func TestSimulateTraceCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SimulateTrace(ctx, sampleTrace(), partition.NewNatureFable(), 8, DefaultMachine())
	if err == nil {
		t.Fatal("cancelled simulation returned no error")
	}
	if res != nil {
		t.Fatalf("cancelled simulation returned a partial result (%d steps)", len(res.Steps))
	}
}

func TestEvaluateCancelled(t *testing.T) {
	h := flat(32)
	a := halves(h)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Evaluate(ctx, h, a, DefaultMachine()); err == nil {
		t.Fatal("cancelled Evaluate returned no error")
	}
}
