package stats

import (
	"math"
	"testing"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %f", Mean(xs))
	}
	want := math.Sqrt(1.25)
	if d := StdDev(xs) - want; d > 1e-12 || d < -1e-12 {
		t.Errorf("StdDev = %f, want %f", StdDev(xs), want)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty series should give 0")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %f, %f", min, max)
	}
}

func TestPearsonPerfect(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	if c := Pearson(a, b); math.Abs(c-1) > 1e-12 {
		t.Errorf("perfect correlation = %f", c)
	}
	inv := []float64{10, 8, 6, 4, 2}
	if c := Pearson(a, inv); math.Abs(c+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %f", c)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if c := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); c != 0 {
		t.Errorf("constant series correlation = %f, want 0", c)
	}
	if c := Pearson([]float64{1, 2}, []float64{1}); c != 0 {
		t.Errorf("length mismatch correlation = %f, want 0", c)
	}
}

func TestLaggedPearsonShift(t *testing.T) {
	// b is a shifted by +1: correlation at lag 1 must beat lag 0.
	n := 40
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = math.Sin(float64(i) / 3)
		if i > 0 {
			b[i] = a[i-1]
		}
	}
	// a[i] == b[i+1]: a leads b by one step.
	if c := LaggedPearson(a, b, 1); math.Abs(c-1) > 1e-9 {
		t.Errorf("lag-1 correlation = %f, want 1", c)
	}
	lag, corr := BestLag(a, b, 3)
	if lag != 1 {
		t.Errorf("BestLag = %d (corr %f), want 1", lag, corr)
	}
}

func TestBestLagPrefersZeroOnTies(t *testing.T) {
	a := []float64{1, 1, 1, 1, 1, 1}
	b := []float64{1, 1, 1, 1, 1, 1}
	if lag, _ := BestLag(a, b, 2); lag != 0 {
		t.Errorf("tied lags should resolve to 0, got %d", lag)
	}
}

func TestDominantPeriodSine(t *testing.T) {
	n := 100
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / 10)
	}
	p := DominantPeriod(xs, 30)
	if p < 9 || p > 11 {
		t.Errorf("DominantPeriod = %d, want ~10", p)
	}
}

func TestDominantPeriodNoise(t *testing.T) {
	// A linear ramp has no oscillation but high autocorrelation at all
	// lags; DominantPeriod may pick a lag, so only check it doesn't
	// panic and stays within range. A white-ish alternating decay has
	// period 2.
	xs := []float64{1, -1, 1, -1, 1, -1, 1, -1, 1, -1, 1, -1}
	if p := DominantPeriod(xs, 6); p != 2 && p != 4 && p != 6 {
		t.Errorf("alternating series period = %d, want even", p)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}
