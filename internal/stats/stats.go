// Package stats provides the small statistical toolkit the experiment
// harness uses to quantify how well the model's penalties track the
// simulator's measured metrics: Pearson correlation (plain and lagged),
// series summaries, and oscillation-period estimation via
// autocorrelation. The paper validates visually; these numbers make the
// same comparison reproducible in text output.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean (0 for an empty series).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MinMax returns the extrema of the series.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Pearson returns the Pearson correlation coefficient of the two
// series, which must have equal length. Degenerate series (zero
// variance) give 0.
func Pearson(a, b []float64) float64 {
	n := len(a)
	if n == 0 || n != len(b) {
		return 0
	}
	ma, mb := Mean(a), Mean(b)
	var num, da, db float64
	for i := 0; i < n; i++ {
		x, y := a[i]-ma, b[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}

// LaggedPearson returns the Pearson correlation of a[i] against
// b[i+lag] (positive lag: a leads b). Out-of-range points are dropped.
func LaggedPearson(a, b []float64, lag int) float64 {
	n := len(a)
	if n != len(b) {
		return 0
	}
	var xa, xb []float64
	for i := 0; i < n; i++ {
		j := i + lag
		if j < 0 || j >= n {
			continue
		}
		xa = append(xa, a[i])
		xb = append(xb, b[j])
	}
	return Pearson(xa, xb)
}

// BestLag searches lags in [-maxLag, maxLag] and returns the lag with
// the highest correlation, with ties broken toward zero lag. The paper
// notes beta_m occasionally peaks one step before the measured
// migration; BestLag quantifies that lead.
func BestLag(a, b []float64, maxLag int) (lag int, corr float64) {
	bestLag, bestCorr := 0, math.Inf(-1)
	for l := -maxLag; l <= maxLag; l++ {
		c := LaggedPearson(a, b, l)
		better := c > bestCorr+1e-12 ||
			(math.Abs(c-bestCorr) <= 1e-12 && abs(l) < abs(bestLag))
		if better {
			bestLag, bestCorr = l, c
		}
	}
	return bestLag, bestCorr
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// DominantPeriod estimates the oscillation period of the series as the
// lag of the first local autocorrelation peak above 0.2, searching
// [2, maxLag]. Taking the first peak (not the global maximum) avoids
// reporting integer multiples of the true period. Returns 0 when no
// oscillation is detected.
func DominantPeriod(xs []float64, maxLag int) int {
	if maxLag >= len(xs) {
		maxLag = len(xs) - 1
	}
	if maxLag < 2 {
		return 0
	}
	ac := make([]float64, maxLag+1)
	for l := 1; l <= maxLag; l++ {
		ac[l] = LaggedPearson(xs, xs, l)
	}
	for l := 2; l <= maxLag; l++ {
		if ac[l] <= 0.2 {
			continue
		}
		// A genuine local peak: strictly above the previous lag (the
		// autocorrelation rose into it) and not below the next.
		if ac[l] > ac[l-1] && (l == maxLag || ac[l] >= ac[l+1]) {
			return l
		}
	}
	return 0
}

// Summary is a compact description of one series.
type Summary struct {
	Mean, Std, Min, Max float64
	N                   int
}

// Summarize computes the Summary of a series.
func Summarize(xs []float64) Summary {
	min, max := MinMax(xs)
	return Summary{Mean: Mean(xs), Std: StdDev(xs), Min: min, Max: max, N: len(xs)}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f std=%.4f min=%.4f max=%.4f", s.N, s.Mean, s.Std, s.Min, s.Max)
}
