// Package amr implements the Berger–Colella structured AMR algorithm:
// a subcycled multi-level advance over a dynamic patch hierarchy with
// error-driven regridding. The driver runs one of the solver kernels and
// emits the partition-independent hierarchy snapshots that form an
// application trace, reproducing the trace-generation side of the
// paper's experimental process.
//
// Simplifications relative to a production AMR code (documented in
// DESIGN.md): piecewise-constant prolongation, no refluxing (flux
// correction), and no time interpolation of coarse boundary data. None
// of these affect the shape of the hierarchy dynamics the partitioning
// model consumes.
//
// # Parallel execution
//
// Every per-patch phase of the advance — kernel steps, halo
// prolongation, same-level ghost exchange, physical boundary fills,
// restriction, tagging, and regrid data fills — fans out over
// internal/pool with one patch per work unit. A phase writes only the
// patch assigned to the unit (its interior for steps and restriction,
// its halo for the fill phases, a private tag buffer for tagging) and
// reads patches no phase-mate writes, so phases are race-free and the
// hierarchy evolution is bit-identical to a sequential run at any
// worker count (Config.Workers). Advance takes a context.Context per
// the repository's cancellation contract: a cancelled advance stops
// dispatching patch units, drains in-flight work, and returns the
// context's error; the driver's solution state is then indeterminate
// and only Close may follow. Patch slabs come from internal/field's
// free list; regridding releases replaced patches, so steady-state
// trace generation stops allocating the hierarchy over and over.
package amr

import (
	"context"
	"fmt"
	"sync"

	"samr/internal/cluster"
	"samr/internal/field"
	"samr/internal/geom"
	"samr/internal/grid"
	"samr/internal/pool"
	"samr/internal/solver"
	"samr/internal/trace"
)

// Config controls a driver run. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// BaseSize is the base grid extent (BaseSize x BaseSize cells).
	BaseSize int
	// MaxLevels is the total level budget including the base (the
	// paper runs 5 levels).
	MaxLevels int
	// RefRatio is the space and time refinement factor (paper: 2).
	RefRatio int
	// RegridEvery is the number of level steps between regrids of that
	// level's children (paper: 4).
	RegridEvery int
	// CFL is the time-step safety factor.
	CFL float64
	// TagBuffer grows each clustered patch by this many cells so the
	// tracked feature stays refined until the next regrid.
	TagBuffer int
	// Cluster configures Berger–Rigoutsos clustering.
	Cluster cluster.Options
	// Workers bounds the per-patch fan-out of every driver phase;
	// 0 means pool.Workers(). Results are identical at any value.
	Workers int
}

// DefaultConfig mirrors the paper's experimental setup: 5 levels of
// factor-2 refinement, regridding every 4 steps on each level, minimum
// block dimension 2.
func DefaultConfig() Config {
	return Config{
		BaseSize:    32,
		MaxLevels:   5,
		RefRatio:    2,
		RegridEvery: 4,
		CFL:         0.4,
		TagBuffer:   1,
		Cluster:     cluster.DefaultOptions(),
	}
}

// levelState is the driver's mutable view of one level.
type levelState struct {
	boxes   geom.BoxList
	patches []*field.Patch
	steps   int
	time    float64

	// Geometry caches, built lazily on first use and valid until the
	// level's box set changes (regridding installs a fresh levelState,
	// so the caches never go stale). They are built from sequential
	// driver code before any parallel fan-out touches the level.
	interiorIx *geom.BoxIndex // over patch interiors (exchange, nesting)
	grownIx    *geom.BoxIndex // over grown boxes (prolongation sources)
	footIx     *geom.BoxIndex // over coarsened interiors (restriction)
	frames     []geom.BoxList // per patch: grown box minus interior
}

// interiorIndex returns the BoxIndex over the level's patch interiors.
func (ls *levelState) interiorIndex() *geom.BoxIndex {
	if ls.interiorIx == nil {
		ls.interiorIx = geom.NewBoxIndex(ls.boxes)
	}
	return ls.interiorIx
}

// grownIndex returns the BoxIndex over the level's grown patch boxes.
func (ls *levelState) grownIndex() *geom.BoxIndex {
	if ls.grownIx == nil {
		ls.grownIx = geom.NewBoxIndex(grownBoxes(ls.patches))
	}
	return ls.grownIx
}

// footIndex returns the BoxIndex over the level's patch interiors
// coarsened by ratio (the footprint the parent level restricts from).
func (ls *levelState) footIndex(ratio int) *geom.BoxIndex {
	if ls.footIx == nil {
		foot := make(geom.BoxList, len(ls.patches))
		for i, fp := range ls.patches {
			foot[i] = fp.Box.Coarsen(ratio)
		}
		ls.footIx = geom.NewBoxIndex(foot)
	}
	return ls.footIx
}

// frameBoxes returns, per patch, the halo frame (grown box minus
// interior) that prolongation fills.
func (ls *levelState) frameBoxes() []geom.BoxList {
	if ls.frames == nil {
		ls.frames = make([]geom.BoxList, len(ls.patches))
		for i, p := range ls.patches {
			ls.frames[i] = geom.BoxList{p.GrownBox()}.SubtractBox(p.Box)
		}
	}
	return ls.frames
}

// Driver advances a kernel on an adaptive hierarchy.
type Driver struct {
	cfg    Config
	kernel solver.Kernel
	levels []*levelState
	dt0    float64
	step   int // completed coarse steps
}

// New builds a driver, initializes the solution on the base level, and
// performs the initial cascade of regrids so the starting hierarchy
// already resolves the initial condition.
func New(k solver.Kernel, cfg Config) (*Driver, error) {
	if cfg.BaseSize < 4 {
		return nil, fmt.Errorf("amr: base size %d too small", cfg.BaseSize)
	}
	if cfg.MaxLevels < 1 || cfg.RefRatio < 2 || cfg.RegridEvery < 1 {
		return nil, fmt.Errorf("amr: invalid config %+v", cfg)
	}
	d := &Driver{cfg: cfg, kernel: k}
	d.dt0 = cfg.CFL * d.dx(0) / k.MaxSpeed()
	base := &levelState{boxes: geom.BoxList{d.levelDomain(0)}}
	base.patches = d.makePatches(base.boxes)
	d.initPatches(base.patches, 0)
	d.levels = []*levelState{base}
	// Initial refinement cascade: tag each new finest level until the
	// budget is reached or nothing is tagged. Initial data comes from
	// kernel.Init (exact at every resolution).
	for l := 0; l+1 < cfg.MaxLevels; l++ {
		boxes, err := d.clusterLevel(context.Background(), l)
		if err != nil {
			return nil, err
		}
		if len(boxes) == 0 {
			break
		}
		ls := &levelState{boxes: boxes, patches: d.makePatches(boxes)}
		d.initPatches(ls.patches, l+1)
		d.levels = append(d.levels, ls)
	}
	return d, nil
}

// Close releases every patch slab back to the free list. The driver
// must not be used afterwards.
func (d *Driver) Close() {
	for _, ls := range d.levels {
		releasePatches(ls.patches)
	}
	d.levels = nil
}

// workers returns the per-phase fan-out width.
func (d *Driver) workers() int {
	if d.cfg.Workers > 0 {
		return d.cfg.Workers
	}
	return pool.Workers()
}

// initPatches runs the kernel's initial condition on every patch.
func (d *Driver) initPatches(patches []*field.Patch, level int) {
	g := d.geometry(level)
	pool.ForEach(d.workers(), len(patches), func(i int) {
		d.kernel.Init(patches[i], g)
	})
}

// releasePatches hands the patches' slabs back to the free list.
func releasePatches(patches []*field.Patch) {
	for _, p := range patches {
		p.Release()
	}
}

// intBufPool recycles the BoxIndex query buffers of the parallel
// phases: work units are one patch each, so without pooling every
// patch visit would allocate a fresh candidate buffer per substep.
var intBufPool = sync.Pool{New: func() any { return new([]int) }}

// getBuf borrows a query buffer; returns it and the put-back handle.
func getBuf() (*[]int, []int) {
	bp := intBufPool.Get().(*[]int)
	return bp, (*bp)[:0]
}

// putBuf returns a borrowed buffer, keeping any growth.
func putBuf(bp *[]int, buf []int) {
	*bp = buf
	intBufPool.Put(bp)
}

// dx returns the cell spacing on level l (physical domain is the unit
// square).
func (d *Driver) dx(l int) float64 {
	n := d.cfg.BaseSize
	for i := 0; i < l; i++ {
		n *= d.cfg.RefRatio
	}
	return 1.0 / float64(n)
}

func (d *Driver) geometry(l int) solver.Geometry { return solver.Geometry{Dx: d.dx(l)} }

// levelDomain returns the whole-domain box in level l index space.
func (d *Driver) levelDomain(l int) geom.Box {
	n := d.cfg.BaseSize
	for i := 0; i < l; i++ {
		n *= d.cfg.RefRatio
	}
	return geom.NewBox2(0, 0, n, n)
}

// makePatches allocates solution storage for the given boxes.
func (d *Driver) makePatches(boxes geom.BoxList) []*field.Patch {
	out := make([]*field.Patch, len(boxes))
	for i, b := range boxes {
		out[i] = field.NewPatch(b, d.kernel.Ghost(), d.kernel.NComp())
	}
	return out
}

// Step advances the whole hierarchy by one coarse time step. It is
// Advance without cancellation.
func (d *Driver) Step() { _ = d.Advance(context.Background()) }

// Advance advances the whole hierarchy by one coarse time step,
// fanning per-patch work over the worker pool. A cancelled ctx aborts
// between patch units and returns the context's error; the solution
// state is then indeterminate and the driver must not be advanced
// again.
func (d *Driver) Advance(ctx context.Context) error {
	if err := d.advance(ctx, 0); err != nil {
		return fmt.Errorf("amr: %w", err)
	}
	d.step++
	return nil
}

// CoarseSteps returns the number of completed coarse steps.
func (d *Driver) CoarseSteps() int { return d.step }

// Time returns the current physical time (base-level clock).
func (d *Driver) Time() float64 { return d.levels[0].time }

// advance performs one time step on level l, recursing into finer
// levels with RefRatio substeps each, then restricting and possibly
// regridding (Berger–Colella order).
func (d *Driver) advance(ctx context.Context, l int) error {
	ls := d.levels[l]
	dt := d.dt0
	for i := 0; i < l; i++ {
		dt /= float64(d.cfg.RefRatio)
	}
	if err := d.fillGhosts(ctx, l); err != nil {
		return err
	}
	g := d.geometry(l)
	t0 := ls.time
	err := pool.MapCtx(ctx, d.workers(), len(ls.patches), func(i int) error {
		d.kernel.Step(ls.patches[i], t0, dt, g)
		return nil
	})
	if err != nil {
		return err
	}
	ls.time += dt
	if l+1 < len(d.levels) {
		for s := 0; s < d.cfg.RefRatio; s++ {
			if err := d.advance(ctx, l+1); err != nil {
				return err
			}
		}
		if err := d.restrict(ctx, l); err != nil {
			return err
		}
	}
	ls.steps++
	if ls.steps%d.cfg.RegridEvery == 0 && l+1 < d.cfg.MaxLevels {
		if err := d.regrid(ctx, l); err != nil {
			return err
		}
	}
	return nil
}

// grownBoxes returns the grown (interior + halo) boxes of the patches,
// the geometry the prolongation source lookups index.
func grownBoxes(patches []*field.Patch) geom.BoxList {
	out := make(geom.BoxList, len(patches))
	for i, p := range patches {
		out[i] = p.GrownBox()
	}
	return out
}

// fillGhosts fills level l halos: coarse prolongation first (l > 0),
// then same-level exchange (overwriting where sibling data exists), then
// the physical boundary. Each phase fans out one patch per work unit —
// a unit writes only its own patch's halo and reads parent or sibling
// data no unit writes, so the phases parallelize without changing a
// bit. Prolongation sources are found through a BoxIndex over the
// parent level's grown boxes instead of scanning every parent patch per
// frame box.
func (d *Driver) fillGhosts(ctx context.Context, l int) error {
	ls := d.levels[l]
	if l > 0 {
		parent := d.levels[l-1]
		ix := parent.grownIndex()
		frames := ls.frameBoxes()
		err := pool.MapCtx(ctx, d.workers(), len(ls.patches), func(i int) error {
			p := ls.patches[i]
			bp, buf := getBuf()
			for _, fb := range frames[i] {
				coarseFrame := fb.Coarsen(d.cfg.RefRatio)
				buf = ix.AppendQuery(buf[:0], coarseFrame)
				for _, ci := range buf {
					field.ProlongLinear(p, parent.patches[ci], fb, d.cfg.RefRatio)
				}
			}
			putBuf(bp, buf)
			return nil
		})
		if err != nil {
			return err
		}
	}
	if len(ls.patches) > 1 {
		six := ls.interiorIndex()
		err := pool.MapCtx(ctx, d.workers(), len(ls.patches), func(i int) error {
			bp, buf := getBuf()
			putBuf(bp, field.ExchangeGhostsWith(ls.patches, six, i, buf))
			return nil
		})
		if err != nil {
			return err
		}
	}
	dom := d.levelDomain(l)
	bc := d.kernel.BC()
	return pool.MapCtx(ctx, d.workers(), len(ls.patches), func(i int) error {
		field.FillPhysical(ls.patches[i], ls.patches, dom, bc)
		return nil
	})
}

// restrict averages level l+1 data down onto level l, pairing coarse
// patches with the fine patches above them via a BoxIndex over the fine
// footprints. Each work unit writes one coarse patch and reads the fine
// level only.
func (d *Driver) restrict(ctx context.Context, l int) error {
	coarse, fine := d.levels[l], d.levels[l+1]
	ix := fine.footIndex(d.cfg.RefRatio)
	return pool.MapCtx(ctx, d.workers(), len(coarse.patches), func(i int) error {
		cp := coarse.patches[i]
		bp, buf := getBuf()
		buf = ix.AppendQuery(buf, cp.Box)
		for _, fi := range buf {
			field.Restrict(cp, fine.patches[fi], d.cfg.RefRatio)
		}
		putBuf(bp, buf)
		return nil
	})
}

// clusterLevel tags level l and returns the new level l+1 boxes (level
// l+1 index space), properly nested inside level l. Tagging fans out
// per patch into private buffers merged in patch order, so the tag set
// — and therefore the clustering — matches a sequential scan exactly.
func (d *Driver) clusterLevel(ctx context.Context, l int) (geom.BoxList, error) {
	ls := d.levels[l]
	g := d.geometry(l)
	tagLists := make([][]geom.IntVect, len(ls.patches))
	err := pool.MapCtx(ctx, d.workers(), len(ls.patches), func(i int) error {
		var list []geom.IntVect
		d.kernel.Tag(ls.patches[i], g, func(x, y int) { list = append(list, geom.IV2(x, y)) })
		tagLists[i] = list
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Patch interiors are disjoint, so the per-patch lists concatenate
	// into a duplicate-free tag set; ClusterPoints is order-invariant,
	// making the result identical to a sequential tag scan.
	n := 0
	for _, list := range tagLists {
		n += len(list)
	}
	pts := make([]geom.IntVect, 0, n)
	for _, list := range tagLists {
		pts = append(pts, list...)
	}
	if len(pts) == 0 {
		return nil, nil
	}
	dom := d.levelDomain(l)
	boxes := cluster.ClusterPoints(pts, dom, d.cfg.Cluster)
	// Buffer each patch, restore disjointness among the grown boxes
	// (cheap: cluster output is small), then clip to the level's own
	// boxes for proper nesting. Intersections of two disjoint lists are
	// disjoint, so no quadratic clean-up pass is needed afterwards.
	grown := make(geom.BoxList, 0, len(boxes))
	for _, b := range boxes {
		grown = append(grown, b.Grow(d.cfg.TagBuffer).Intersect(dom))
	}
	grown = cluster.MakeDisjoint(grown)
	lix := ls.interiorIndex()
	var nested geom.BoxList
	var buf []int
	for _, bb := range grown {
		buf = lix.AppendQuery(buf[:0], bb)
		for _, li := range buf {
			if iv := bb.Intersect(ls.boxes[li]); !iv.Empty() {
				nested = append(nested, iv)
			}
		}
	}
	nested = nested.Compact()
	nested.SortByLo()
	return nested.Refine(d.cfg.RefRatio), nil
}

// regrid rebuilds levels l+1 .. MaxLevels-1 from fresh tags, copying old
// data where the new patches overlap the old and prolonging from the
// parent elsewhere. Replaced (and dropped) patches are released back to
// the slab free list, so steady-state regridding recycles memory
// instead of reallocating the hierarchy.
func (d *Driver) regrid(ctx context.Context, l int) error {
	for k := l; k+1 < d.cfg.MaxLevels; k++ {
		newBoxes, err := d.clusterLevel(ctx, k)
		if err != nil {
			return err
		}
		if len(newBoxes) == 0 {
			// Drop all deeper levels.
			for _, ls := range d.levels[k+1:] {
				releasePatches(ls.patches)
			}
			d.levels = d.levels[:k+1]
			return nil
		}
		newPatches := d.makePatches(newBoxes)
		parent := d.levels[k]
		pix := parent.grownIndex()
		err = pool.MapCtx(ctx, d.workers(), len(newPatches), func(i int) error {
			np := newPatches[i]
			// Base fill: prolong everything from the parent level.
			coarse := np.GrownBox().Coarsen(d.cfg.RefRatio)
			bp, buf := getBuf()
			buf = pix.AppendQuery(buf, coarse)
			for _, pi := range buf {
				field.ProlongLinear(np, parent.patches[pi], np.GrownBox(), d.cfg.RefRatio)
			}
			putBuf(bp, buf)
			return nil
		})
		if err != nil {
			releasePatches(newPatches)
			return err
		}
		if k+1 < len(d.levels) {
			old := d.levels[k+1]
			oix := old.interiorIndex()
			err = pool.MapCtx(ctx, d.workers(), len(newPatches), func(i int) error {
				np := newPatches[i]
				bp, buf := getBuf()
				buf = oix.AppendQuery(buf, np.Box)
				for _, oi := range buf {
					op := old.patches[oi]
					np.CopyRegion(op, np.Box.Intersect(op.Box))
				}
				putBuf(bp, buf)
				return nil
			})
			if err != nil {
				releasePatches(newPatches)
				return err
			}
		}
		ns := &levelState{boxes: newBoxes, patches: newPatches, time: parent.time}
		if k+1 < len(d.levels) {
			ns.steps = d.levels[k+1].steps
			releasePatches(d.levels[k+1].patches)
			d.levels[k+1] = ns
		} else {
			ns.steps = 0
			d.levels = append(d.levels, ns)
		}
	}
	return nil
}

// Hierarchy returns a snapshot of the current grid hierarchy.
func (d *Driver) Hierarchy() *grid.Hierarchy {
	h := &grid.Hierarchy{Domain: d.levelDomain(0), RefRatio: d.cfg.RefRatio}
	for _, ls := range d.levels {
		h.Levels = append(h.Levels, grid.Level{Boxes: ls.boxes.Clone()})
	}
	return h
}

// NumLevels returns the current number of levels in the hierarchy.
func (d *Driver) NumLevels() int { return len(d.levels) }

// Run advances steps coarse steps, recording a snapshot after each into
// a trace, and returns the trace. The run is bounded by ctx: a
// cancelled run returns a nil trace and the context's error. The
// driver's patch slabs are recycled into the free list when the run
// finishes either way.
func Run(ctx context.Context, k solver.Kernel, cfg Config, steps int) (*trace.Trace, error) {
	d, err := New(k, cfg)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	t := &trace.Trace{
		App:       k.Name(),
		RefRatio:  cfg.RefRatio,
		MaxLevels: cfg.MaxLevels,
		Domain:    d.levelDomain(0),
	}
	t.Append(0, d.Time(), d.Hierarchy())
	for s := 0; s < steps; s++ {
		if err := d.Advance(ctx); err != nil {
			return nil, err
		}
		t.Append(s+1, d.Time(), d.Hierarchy())
	}
	return t, nil
}
