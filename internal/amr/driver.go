// Package amr implements the Berger–Colella structured AMR algorithm:
// a subcycled multi-level advance over a dynamic patch hierarchy with
// error-driven regridding. The driver runs one of the solver kernels and
// emits the partition-independent hierarchy snapshots that form an
// application trace, reproducing the trace-generation side of the
// paper's experimental process.
//
// Simplifications relative to a production AMR code (documented in
// DESIGN.md): piecewise-constant prolongation, no refluxing (flux
// correction), and no time interpolation of coarse boundary data. None
// of these affect the shape of the hierarchy dynamics the partitioning
// model consumes.
package amr

import (
	"fmt"

	"samr/internal/cluster"
	"samr/internal/field"
	"samr/internal/geom"
	"samr/internal/grid"
	"samr/internal/solver"
	"samr/internal/trace"
)

// Config controls a driver run. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// BaseSize is the base grid extent (BaseSize x BaseSize cells).
	BaseSize int
	// MaxLevels is the total level budget including the base (the
	// paper runs 5 levels).
	MaxLevels int
	// RefRatio is the space and time refinement factor (paper: 2).
	RefRatio int
	// RegridEvery is the number of level steps between regrids of that
	// level's children (paper: 4).
	RegridEvery int
	// CFL is the time-step safety factor.
	CFL float64
	// TagBuffer grows each clustered patch by this many cells so the
	// tracked feature stays refined until the next regrid.
	TagBuffer int
	// Cluster configures Berger–Rigoutsos clustering.
	Cluster cluster.Options
}

// DefaultConfig mirrors the paper's experimental setup: 5 levels of
// factor-2 refinement, regridding every 4 steps on each level, minimum
// block dimension 2.
func DefaultConfig() Config {
	return Config{
		BaseSize:    32,
		MaxLevels:   5,
		RefRatio:    2,
		RegridEvery: 4,
		CFL:         0.4,
		TagBuffer:   1,
		Cluster:     cluster.DefaultOptions(),
	}
}

// levelState is the driver's mutable view of one level.
type levelState struct {
	boxes   geom.BoxList
	patches []*field.Patch
	steps   int
	time    float64
}

// Driver advances a kernel on an adaptive hierarchy.
type Driver struct {
	cfg    Config
	kernel solver.Kernel
	levels []*levelState
	dt0    float64
	step   int // completed coarse steps
}

// New builds a driver, initializes the solution on the base level, and
// performs the initial cascade of regrids so the starting hierarchy
// already resolves the initial condition.
func New(k solver.Kernel, cfg Config) (*Driver, error) {
	if cfg.BaseSize < 4 {
		return nil, fmt.Errorf("amr: base size %d too small", cfg.BaseSize)
	}
	if cfg.MaxLevels < 1 || cfg.RefRatio < 2 || cfg.RegridEvery < 1 {
		return nil, fmt.Errorf("amr: invalid config %+v", cfg)
	}
	d := &Driver{cfg: cfg, kernel: k}
	d.dt0 = cfg.CFL * d.dx(0) / k.MaxSpeed()
	base := &levelState{boxes: geom.BoxList{d.levelDomain(0)}}
	base.patches = d.makePatches(base.boxes)
	for _, p := range base.patches {
		k.Init(p, d.geometry(0))
	}
	d.levels = []*levelState{base}
	// Initial refinement cascade: tag each new finest level until the
	// budget is reached or nothing is tagged. Initial data comes from
	// kernel.Init (exact at every resolution).
	for l := 0; l+1 < cfg.MaxLevels; l++ {
		boxes := d.clusterLevel(l)
		if len(boxes) == 0 {
			break
		}
		ls := &levelState{boxes: boxes, patches: d.makePatches(boxes)}
		for _, p := range ls.patches {
			k.Init(p, d.geometry(l+1))
		}
		d.levels = append(d.levels, ls)
	}
	return d, nil
}

// dx returns the cell spacing on level l (physical domain is the unit
// square).
func (d *Driver) dx(l int) float64 {
	n := d.cfg.BaseSize
	for i := 0; i < l; i++ {
		n *= d.cfg.RefRatio
	}
	return 1.0 / float64(n)
}

func (d *Driver) geometry(l int) solver.Geometry { return solver.Geometry{Dx: d.dx(l)} }

// levelDomain returns the whole-domain box in level l index space.
func (d *Driver) levelDomain(l int) geom.Box {
	n := d.cfg.BaseSize
	for i := 0; i < l; i++ {
		n *= d.cfg.RefRatio
	}
	return geom.NewBox2(0, 0, n, n)
}

// makePatches allocates solution storage for the given boxes.
func (d *Driver) makePatches(boxes geom.BoxList) []*field.Patch {
	out := make([]*field.Patch, len(boxes))
	for i, b := range boxes {
		out[i] = field.NewPatch(b, d.kernel.Ghost(), d.kernel.NComp())
	}
	return out
}

// Step advances the whole hierarchy by one coarse time step.
func (d *Driver) Step() {
	d.advance(0)
	d.step++
}

// CoarseSteps returns the number of completed coarse steps.
func (d *Driver) CoarseSteps() int { return d.step }

// Time returns the current physical time (base-level clock).
func (d *Driver) Time() float64 { return d.levels[0].time }

// advance performs one time step on level l, recursing into finer
// levels with RefRatio substeps each, then restricting and possibly
// regridding (Berger–Colella order).
func (d *Driver) advance(l int) {
	ls := d.levels[l]
	dt := d.dt0
	for i := 0; i < l; i++ {
		dt /= float64(d.cfg.RefRatio)
	}
	d.fillGhosts(l)
	for _, p := range ls.patches {
		d.kernel.Step(p, ls.time, dt, d.geometry(l))
	}
	ls.time += dt
	if l+1 < len(d.levels) {
		for s := 0; s < d.cfg.RefRatio; s++ {
			d.advance(l + 1)
		}
		d.restrict(l)
	}
	ls.steps++
	if ls.steps%d.cfg.RegridEvery == 0 && l+1 < d.cfg.MaxLevels {
		d.regrid(l)
	}
}

// grownBoxes returns the grown (interior + halo) boxes of the patches,
// the geometry the prolongation source lookups index.
func grownBoxes(patches []*field.Patch) geom.BoxList {
	out := make(geom.BoxList, len(patches))
	for i, p := range patches {
		out[i] = p.GrownBox()
	}
	return out
}

// fillGhosts fills level l halos: coarse prolongation first (l > 0),
// then same-level exchange (overwriting where sibling data exists), then
// the physical boundary. Prolongation sources are found through a
// BoxIndex over the parent level's grown boxes instead of scanning every
// parent patch per frame box.
func (d *Driver) fillGhosts(l int) {
	ls := d.levels[l]
	if l > 0 {
		parent := d.levels[l-1]
		ix := geom.NewBoxIndex(grownBoxes(parent.patches))
		var buf []int
		for _, p := range ls.patches {
			frame := geom.BoxList{p.GrownBox()}.SubtractBox(p.Box)
			for _, fb := range frame {
				coarseFrame := fb.Coarsen(d.cfg.RefRatio)
				buf = ix.AppendQuery(buf[:0], coarseFrame)
				for _, ci := range buf {
					field.ProlongLinear(p, parent.patches[ci], fb, d.cfg.RefRatio)
				}
			}
		}
	}
	field.ExchangeGhosts(ls.patches)
	dom := d.levelDomain(l)
	for _, p := range ls.patches {
		field.FillPhysical(p, ls.patches, dom, d.kernel.BC())
	}
}

// restrict averages level l+1 data down onto level l, pairing coarse
// patches with the fine patches above them via a BoxIndex over the fine
// footprints.
func (d *Driver) restrict(l int) {
	coarse, fine := d.levels[l], d.levels[l+1]
	foot := make(geom.BoxList, len(fine.patches))
	for i, fp := range fine.patches {
		foot[i] = fp.Box.Coarsen(d.cfg.RefRatio)
	}
	ix := geom.NewBoxIndex(foot)
	var buf []int
	for _, cp := range coarse.patches {
		buf = ix.AppendQuery(buf[:0], cp.Box)
		for _, fi := range buf {
			field.Restrict(cp, fine.patches[fi], d.cfg.RefRatio)
		}
	}
}

// clusterLevel tags level l and returns the new level l+1 boxes (level
// l+1 index space), properly nested inside level l.
func (d *Driver) clusterLevel(l int) geom.BoxList {
	ls := d.levels[l]
	tags := cluster.NewTagField()
	g := d.geometry(l)
	for _, p := range ls.patches {
		d.kernel.Tag(p, g, func(i, j int) { tags.Set(geom.IV2(i, j)) })
	}
	if tags.Count() == 0 {
		return nil
	}
	dom := d.levelDomain(l)
	boxes := cluster.Cluster(tags, dom, d.cfg.Cluster)
	// Buffer each patch, restore disjointness among the grown boxes
	// (cheap: cluster output is small), then clip to the level's own
	// boxes for proper nesting. Intersections of two disjoint lists are
	// disjoint, so no quadratic clean-up pass is needed afterwards.
	grown := make(geom.BoxList, 0, len(boxes))
	for _, b := range boxes {
		grown = append(grown, b.Grow(d.cfg.TagBuffer).Intersect(dom))
	}
	grown = cluster.MakeDisjoint(grown)
	lix := geom.NewBoxIndex(ls.boxes)
	var nested geom.BoxList
	var buf []int
	for _, bb := range grown {
		buf = lix.AppendQuery(buf[:0], bb)
		for _, li := range buf {
			if iv := bb.Intersect(ls.boxes[li]); !iv.Empty() {
				nested = append(nested, iv)
			}
		}
	}
	nested = nested.Compact()
	nested.SortByLo()
	return nested.Refine(d.cfg.RefRatio)
}

// regrid rebuilds levels l+1 .. MaxLevels-1 from fresh tags, copying old
// data where the new patches overlap the old and prolonging from the
// parent elsewhere.
func (d *Driver) regrid(l int) {
	for k := l; k+1 < d.cfg.MaxLevels; k++ {
		newBoxes := d.clusterLevel(k)
		if len(newBoxes) == 0 {
			// Drop all deeper levels.
			d.levels = d.levels[:k+1]
			return
		}
		newPatches := d.makePatches(newBoxes)
		parent := d.levels[k]
		pix := geom.NewBoxIndex(grownBoxes(parent.patches))
		var buf []int
		for _, np := range newPatches {
			// Base fill: prolong everything from the parent level.
			coarse := np.GrownBox().Coarsen(d.cfg.RefRatio)
			buf = pix.AppendQuery(buf[:0], coarse)
			for _, pi := range buf {
				field.ProlongLinear(np, parent.patches[pi], np.GrownBox(), d.cfg.RefRatio)
			}
		}
		if k+1 < len(d.levels) {
			old := d.levels[k+1]
			interiors := make(geom.BoxList, len(old.patches))
			for i, op := range old.patches {
				interiors[i] = op.Box
			}
			oix := geom.NewBoxIndex(interiors)
			for _, np := range newPatches {
				buf = oix.AppendQuery(buf[:0], np.Box)
				for _, oi := range buf {
					op := old.patches[oi]
					np.CopyRegion(op, np.Box.Intersect(op.Box))
				}
			}
		}
		ns := &levelState{boxes: newBoxes, patches: newPatches, time: parent.time}
		if k+1 < len(d.levels) {
			ns.steps = d.levels[k+1].steps
			d.levels[k+1] = ns
		} else {
			ns.steps = 0
			d.levels = append(d.levels, ns)
		}
	}
}

// Hierarchy returns a snapshot of the current grid hierarchy.
func (d *Driver) Hierarchy() *grid.Hierarchy {
	h := &grid.Hierarchy{Domain: d.levelDomain(0), RefRatio: d.cfg.RefRatio}
	for _, ls := range d.levels {
		h.Levels = append(h.Levels, grid.Level{Boxes: ls.boxes.Clone()})
	}
	return h
}

// NumLevels returns the current number of levels in the hierarchy.
func (d *Driver) NumLevels() int { return len(d.levels) }

// Run advances steps coarse steps, recording a snapshot after each into
// a trace, and returns the trace.
func Run(k solver.Kernel, cfg Config, steps int) (*trace.Trace, error) {
	d, err := New(k, cfg)
	if err != nil {
		return nil, err
	}
	t := &trace.Trace{
		App:       k.Name(),
		RefRatio:  cfg.RefRatio,
		MaxLevels: cfg.MaxLevels,
		Domain:    d.levelDomain(0),
	}
	t.Append(0, d.Time(), d.Hierarchy())
	for s := 0; s < steps; s++ {
		d.Step()
		t.Append(s+1, d.Time(), d.Hierarchy())
	}
	return t, nil
}
