package amr

import (
	"context"
	"math"
	"testing"

	"samr/internal/field"
	"samr/internal/geom"
	"samr/internal/solver"
)

// constKernel advects a field with constant velocity and tags a fixed
// moving window, regardless of the data. A constant initial field must
// remain exactly constant through every mechanism the driver exercises
// (subcycled advance, ghost exchange, bilinear prolongation, averaging
// restriction, regridding with data copy) — any interpolation or
// bookkeeping bug shows up as drift.
type constKernel struct {
	step int
}

func (k *constKernel) Name() string      { return "CONST" }
func (k *constKernel) NComp() int        { return 1 }
func (k *constKernel) Ghost() int        { return 1 }
func (k *constKernel) BC() field.BC      { return field.BCPeriodic }
func (k *constKernel) MaxSpeed() float64 { return 1 }

func (k *constKernel) Init(p *field.Patch, g solver.Geometry) {
	p.Fill(0, 7.25)
}

func (k *constKernel) Step(p *field.Patch, t, dt float64, g solver.Geometry) {
	// First-order upwind with velocity (1, 0): on constant data the
	// update is exactly zero, so any deviation comes from the driver.
	old := p.Clone()
	p.Box.Cells(func(q geom.IntVect) {
		i, j := q[0], q[1]
		du := (old.At(0, i, j) - old.At(0, i-1, j)) / g.Dx
		p.Set(0, i, j, old.At(0, i, j)-dt*du)
	})
	k.step++
}

func (k *constKernel) Tag(p *field.Patch, g solver.Geometry, tag func(i, j int)) {
	// A drifting window forces constant regridding activity.
	off := (k.step / 8) % 8
	p.Box.Cells(func(q geom.IntVect) {
		x, y := g.Center(q[0], q[1])
		if x > 0.2+float64(off)*0.05 && x < 0.5+float64(off)*0.05 && y > 0.3 && y < 0.6 {
			tag(q[0], q[1])
		}
	})
}

func TestConstantFieldPreservedThroughAMR(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BaseSize = 16
	cfg.MaxLevels = 3
	k := &constKernel{}
	d, err := New(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumLevels() < 2 {
		t.Fatal("const kernel's forced tags should create refinement")
	}
	for s := 0; s < 12; s++ {
		d.Step()
	}
	for l, ls := range d.levels {
		for _, p := range ls.patches {
			p.Box.Cells(func(q geom.IntVect) {
				v := p.At(0, q[0], q[1])
				if math.Abs(v-7.25) > 1e-12 {
					t.Fatalf("level %d cell %v drifted to %.15f", l, q, v)
				}
			})
		}
	}
}

func TestLevelsCoverTagsAfterRegrid(t *testing.T) {
	// After stepping, every cell the kernel would tag on level l must
	// be covered by level l+1 within one regrid interval: the purpose
	// of the TagBuffer.
	cfg := DefaultConfig()
	cfg.BaseSize = 16
	cfg.MaxLevels = 2
	k := solver.NewTransport()
	d, err := New(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ { // land exactly on a regrid boundary
		d.Step()
	}
	if d.NumLevels() < 2 {
		t.Skip("no refinement at this threshold")
	}
	var missing int
	fineFootprint := d.Hierarchy().Footprint(1)
	for _, p := range d.levels[0].patches {
		k.Tag(p, d.geometry(0), func(i, j int) {
			if !fineFootprint.ContainsPoint(geom.IV2(i, j)) {
				missing++
			}
		})
	}
	if missing > 0 {
		t.Errorf("%d tagged level-0 cells uncovered by level 1 right after regrid", missing)
	}
}

func TestDriverDeterminism(t *testing.T) {
	run := func() string {
		cfg := DefaultConfig()
		cfg.BaseSize = 16
		cfg.MaxLevels = 3
		d, err := New(solver.NewBuckleyLeverett(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 6; s++ {
			d.Step()
		}
		return d.Hierarchy().String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("driver not deterministic:\n%s\n%s", a, b)
	}
}

func TestTraceWorkloadConsistency(t *testing.T) {
	// Workload and point counts recorded through the trace must match
	// recomputation from the boxes (no stale caching anywhere).
	tr, err := Run(context.Background(), solver.NewScalarWave(), smallConfig(), 6)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range tr.Snapshots {
		var pts int64
		for _, lev := range s.H.Levels {
			pts += lev.Boxes.TotalVolume()
		}
		if pts != s.H.NumPoints() {
			t.Errorf("snapshot %d: NumPoints %d != recount %d", i, s.H.NumPoints(), pts)
		}
		if s.H.Workload() < s.H.NumPoints() {
			t.Errorf("snapshot %d: workload below point count", i)
		}
	}
}
