package amr

import (
	"context"
	"testing"

	"samr/internal/geom"
	"samr/internal/solver"
)

// smallConfig keeps tests fast: 16x16 base, 3 levels.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.BaseSize = 16
	cfg.MaxLevels = 3
	return cfg
}

func TestNewCreatesInitialRefinement(t *testing.T) {
	d, err := New(solver.NewTransport(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d.NumLevels() < 2 {
		t.Errorf("initial hierarchy has %d levels; the pulse should refine", d.NumLevels())
	}
	if err := d.Hierarchy().Validate(); err != nil {
		t.Errorf("initial hierarchy invalid: %v", err)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	bad := smallConfig()
	bad.BaseSize = 2
	if _, err := New(solver.NewTransport(), bad); err == nil {
		t.Error("BaseSize=2 should be rejected")
	}
	bad = smallConfig()
	bad.RefRatio = 1
	if _, err := New(solver.NewTransport(), bad); err == nil {
		t.Error("RefRatio=1 should be rejected")
	}
	bad = smallConfig()
	bad.RegridEvery = 0
	if _, err := New(solver.NewTransport(), bad); err == nil {
		t.Error("RegridEvery=0 should be rejected")
	}
}

func TestStepMaintainsInvariants(t *testing.T) {
	d, err := New(solver.NewTransport(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 10; s++ {
		d.Step()
		if err := d.Hierarchy().Validate(); err != nil {
			t.Fatalf("step %d: invalid hierarchy: %v", s, err)
		}
	}
	if d.CoarseSteps() != 10 {
		t.Errorf("CoarseSteps = %d", d.CoarseSteps())
	}
	if d.Time() <= 0 {
		t.Errorf("Time = %f", d.Time())
	}
}

func TestLevelTimesStayAligned(t *testing.T) {
	d, err := New(solver.NewScalarWave(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		d.Step()
		// After a full coarse step all levels must be at the same time.
		t0 := d.levels[0].time
		for l, ls := range d.levels {
			if diff := ls.time - t0; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("step %d: level %d time %.15f != base %.15f", s, l, ls.time, t0)
			}
		}
	}
}

func TestHierarchyTracksMovingFeature(t *testing.T) {
	d, err := New(solver.NewTransport(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d.NumLevels() < 2 {
		t.Skip("no refinement to track")
	}
	first := d.Hierarchy()
	for s := 0; s < 20; s++ {
		d.Step()
	}
	last := d.Hierarchy()
	if len(last.Levels) < 2 {
		t.Fatal("refinement disappeared while the pulse is still moving")
	}
	// The refined footprint must have moved: the overlap between the
	// first and last level-1 regions should be below their full size.
	a, b := first.Levels[1].Boxes, last.Levels[1].Boxes
	ov := geom.OverlapVolume(a, b)
	if ov >= a.TotalVolume() && ov >= b.TotalVolume() {
		t.Error("refined region did not move over 20 rotation steps")
	}
}

func TestRunProducesValidTrace(t *testing.T) {
	tr, err := Run(context.Background(), solver.NewTransport(), smallConfig(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 13 { // initial snapshot + 12 steps
		t.Fatalf("trace has %d snapshots, want 13", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.App != "TP2D" {
		t.Errorf("App = %q", tr.App)
	}
	// Snapshots are deep copies: mutating one must not affect others.
	tr.Snapshots[0].H.Levels[0].Boxes[0] = tr.Snapshots[0].H.Levels[0].Boxes[0].Grow(1)
	if err := tr.Snapshots[1].H.Validate(); err != nil {
		t.Errorf("snapshot 1 corrupted by snapshot 0 mutation: %v", err)
	}
}

func TestAllKernelsRunStably(t *testing.T) {
	kernels := []solver.Kernel{
		solver.NewTransport(), solver.NewScalarWave(),
		solver.NewBuckleyLeverett(), solver.NewEuler(),
	}
	for _, k := range kernels {
		k := k
		t.Run(k.Name(), func(t *testing.T) {
			t.Parallel()
			tr, err := Run(context.Background(), k, smallConfig(), 8)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			// Every kernel should produce at least some refinement at
			// some point (they all have steep features).
			refined := false
			for _, s := range tr.Snapshots {
				if len(s.H.Levels) > 1 {
					refined = true
					break
				}
			}
			if !refined {
				t.Errorf("%s never refined", k.Name())
			}
		})
	}
}

func TestRegridDropsVanishedLevels(t *testing.T) {
	// A transport kernel with an impossible threshold never tags, so
	// after the first regrid cadence all fine levels must vanish.
	k := solver.NewTransport()
	k.TagThreshold = 1e9
	d, err := New(k, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d.NumLevels() != 1 {
		t.Fatalf("threshold 1e9 should suppress initial refinement, got %d levels", d.NumLevels())
	}
	for s := 0; s < 5; s++ {
		d.Step()
	}
	if d.NumLevels() != 1 {
		t.Errorf("levels reappeared without tags: %d", d.NumLevels())
	}
}
