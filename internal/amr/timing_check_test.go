package amr

import (
	"fmt"
	"os"
	"testing"
	"time"

	"samr/internal/solver"
)

// TestAppTiming is a manual scale check, enabled via SAMR_TIMING=<app>.
func TestAppTiming(t *testing.T) {
	name := os.Getenv("SAMR_TIMING")
	if name == "" {
		t.Skip("set SAMR_TIMING to run")
	}
	var k solver.Kernel
	switch name {
	case "TP2D":
		k = solver.NewTransport()
	case "SC2D":
		k = solver.NewScalarWave()
	case "BL2D":
		k = solver.NewBuckleyLeverett()
	case "RM2D":
		k = solver.NewEuler()
	}
	cfg := DefaultConfig()
	d, err := New(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for s := 0; s < 100; s++ {
		d.Step()
		if s%10 == 9 {
			h := d.Hierarchy()
			nb := 0
			for _, l := range h.Levels {
				nb += len(l.Boxes)
			}
			fmt.Printf("step %3d: %v levels=%d pts=%d boxes=%d\n", s+1, time.Since(start), len(h.Levels), h.NumPoints(), nb)
		}
	}
}
