// Package fault is the deterministic fault-injection registry behind
// the fleet tier's chaos testing. Code under test declares named
// injection points (plain strings like "disk.put"); a test or the
// -faults flag arms an Injector with per-point schedules — inject an
// error, add latency, flip a byte, report a full disk — and every
// decision is a pure function of (seed, point, per-point operation
// index). The same seed therefore always produces the same schedule:
// there is no wall-clock input and no shared random stream whose
// consumption order could vary with goroutine interleaving (operation
// indices are handed out atomically in arrival order; which *indices*
// fire is fixed up front).
//
// Production builds carry only a nil *Injector: every point is one
// nil-receiver check, so the harness is zero-cost when disarmed.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"
)

// Mode is what a plan injects when it fires.
type Mode string

const (
	// Error fails the operation with ErrInjected.
	Error Mode = "error"
	// Latency delays the operation by the plan's Delay.
	Latency Mode = "latency"
	// Corrupt flips one byte of the operation's payload (the caller
	// applies Decision.Corrupt with Damage).
	Corrupt Mode = "corrupt"
	// NoSpace fails the operation with ErrNoSpace (wraps
	// syscall.ENOSPC): an injected full disk.
	NoSpace Mode = "enospc"
)

// ErrInjected is the generic injected operation failure.
var ErrInjected = fmt.Errorf("fault: injected error")

// ErrNoSpace is the injected disk-full failure; it wraps
// syscall.ENOSPC so errors.Is sees a real out-of-space condition.
var ErrNoSpace = fmt.Errorf("fault: injected: %w", syscall.ENOSPC)

// Plan is one schedule attached to one injection point. Firing is
// decided per operation: skip the first After operations, then fire on
// every Every-th of the remaining ones (Every <= 1 means every one),
// each firing further gated by Prob when 0 < Prob < 1, and capped at
// Count total firings (0 means unlimited).
type Plan struct {
	// Point names the injection point this plan arms.
	Point string
	// Mode selects the injected effect.
	Mode Mode
	// Prob gates each scheduled firing with a seeded pseudo-random
	// check when 0 < Prob < 1 (0 and >= 1 both mean "always").
	Prob float64
	// Every fires on every Every-th eligible operation (<= 1: all).
	Every int
	// After skips the first After operations at the point entirely.
	After int
	// Count caps the plan's total firings (0: unlimited).
	Count int
	// Delay is the added latency for Latency mode.
	Delay time.Duration
}

func (p Plan) validate() error {
	if p.Point == "" {
		return fmt.Errorf("fault: plan without a point")
	}
	switch p.Mode {
	case Error, Corrupt, NoSpace:
	case Latency:
		if p.Delay <= 0 {
			return fmt.Errorf("fault: latency plan for %q needs delay > 0", p.Point)
		}
	default:
		return fmt.Errorf("fault: unknown mode %q for point %q", p.Mode, p.Point)
	}
	if p.Prob < 0 || p.Every < 0 || p.After < 0 || p.Count < 0 {
		return fmt.Errorf("fault: negative schedule field for point %q", p.Point)
	}
	return nil
}

// Decision is the injected effect for one operation; the zero value
// means "proceed normally". Err and Corrupt are mutually exclusive by
// construction order (an error fires first); Delay composes with both.
type Decision struct {
	Err     error
	Delay   time.Duration
	Corrupt bool
}

// Sleep applies the decision's latency (a no-op at zero). Split out so
// callers can place the stall before taking locks.
func (d Decision) Sleep() {
	if d.Delay > 0 {
		time.Sleep(d.Delay)
	}
}

// Damage flips one byte of b in place (deterministically: the middle
// one) and returns it; a nil or empty slice passes through. Callers
// that do not own b must copy first.
func Damage(b []byte) []byte {
	if len(b) > 0 {
		b[len(b)/2] ^= 0xFF
	}
	return b
}

type planState struct {
	Plan
	idx   int // position in the injector's plan list; salts the hash
	fired atomic.Uint64
}

type point struct {
	plans    []*planState
	ops      atomic.Uint64
	injected atomic.Uint64
}

// Injector holds armed schedules for a set of points. A nil *Injector
// is valid and never injects. All methods are safe for concurrent use.
type Injector struct {
	seed   uint64
	points map[string]*point
}

// New builds an injector from seed and plans. An empty plan list is
// valid (the injector never fires).
func New(seed int64, plans ...Plan) (*Injector, error) {
	in := &Injector{seed: uint64(seed), points: make(map[string]*point)}
	for i, p := range plans {
		if err := p.validate(); err != nil {
			return nil, err
		}
		pt := in.points[p.Point]
		if pt == nil {
			pt = &point{}
			in.points[p.Point] = pt
		}
		pt.plans = append(pt.plans, &planState{Plan: p, idx: i})
	}
	return in, nil
}

// Hit advances the named point by one operation and returns the
// injected effect for it (the zero Decision when nothing fires, the
// point is unarmed, or the injector is nil).
func (in *Injector) Hit(name string) Decision {
	if in == nil {
		return Decision{}
	}
	pt := in.points[name]
	if pt == nil {
		return Decision{}
	}
	i := pt.ops.Add(1)
	var d Decision
	for _, ps := range pt.plans {
		if !ps.fires(in.seed, name, i) {
			continue
		}
		switch ps.Mode {
		case Error:
			if d.Err == nil {
				d.Err = ErrInjected
			}
		case NoSpace:
			if d.Err == nil {
				d.Err = ErrNoSpace
			}
		case Latency:
			d.Delay += ps.Delay
		case Corrupt:
			d.Corrupt = true
		}
	}
	if d != (Decision{}) {
		pt.injected.Add(1)
	}
	return d
}

// fires decides whether the plan fires for 1-based operation index i.
func (ps *planState) fires(seed uint64, name string, i uint64) bool {
	if i <= uint64(ps.After) {
		return false
	}
	k := i - uint64(ps.After)
	if ps.Every > 1 && k%uint64(ps.Every) != 0 {
		return false
	}
	if ps.Prob > 0 && ps.Prob < 1 && unit(seed, name, ps.idx, i) >= ps.Prob {
		return false
	}
	if ps.Count > 0 && ps.fired.Add(1) > uint64(ps.Count) {
		return false
	}
	return true
}

// unit hashes (seed, point, plan index, op index) to [0, 1): a
// stateless pseudo-random gate immune to call interleaving.
func unit(seed uint64, name string, idx int, i uint64) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xFF
			h *= prime64
		}
	}
	mix(seed)
	for j := 0; j < len(name); j++ {
		h ^= uint64(name[j])
		h *= prime64
	}
	mix(uint64(idx))
	mix(i)
	return float64(h>>11) / (1 << 53)
}

// PointStats is one point's cumulative accounting.
type PointStats struct {
	// Ops counts operations that consulted the point.
	Ops uint64 `json:"ops"`
	// Injected counts operations that received a non-zero Decision.
	Injected uint64 `json:"injected"`
}

// Stats snapshots every armed point (nil injector: nil map).
func (in *Injector) Stats() map[string]PointStats {
	if in == nil {
		return nil
	}
	out := make(map[string]PointStats, len(in.points))
	for name, pt := range in.points {
		out[name] = PointStats{Ops: pt.ops.Load(), Injected: pt.injected.Load()}
	}
	return out
}

// String summarizes the armed schedule, sorted by point, for startup
// logging.
func (in *Injector) String() string {
	if in == nil {
		return "off"
	}
	names := make([]string, 0, len(in.points))
	for name := range in.points {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		for _, ps := range in.points[name].plans {
			if b.Len() > 0 {
				b.WriteByte(';')
			}
			fmt.Fprintf(&b, "%s:%s", name, ps.Mode)
			if ps.Delay > 0 {
				fmt.Fprintf(&b, ":delay=%s", ps.Delay)
			}
		}
	}
	if b.Len() == 0 {
		return "armed (no plans)"
	}
	return b.String()
}

// Parse decodes a -faults flag value into plans. The grammar is
// semicolon-separated plans, each "point:mode[:key=value,...]" with
// keys prob (float), every, after, count (ints), and delay (Go
// duration), e.g.
//
//	disk.put:enospc:every=7,count=3;peer.get:latency:delay=20ms,prob=0.2
//
// An empty spec yields no plans.
func Parse(spec string) ([]Plan, error) {
	var plans []Plan
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.SplitN(part, ":", 3)
		if len(fields) < 2 {
			return nil, fmt.Errorf("fault: plan %q: want point:mode[:options]", part)
		}
		p := Plan{Point: strings.TrimSpace(fields[0]), Mode: Mode(strings.TrimSpace(fields[1]))}
		if len(fields) == 3 {
			for _, opt := range strings.Split(fields[2], ",") {
				opt = strings.TrimSpace(opt)
				if opt == "" {
					continue
				}
				kv := strings.SplitN(opt, "=", 2)
				if len(kv) != 2 {
					return nil, fmt.Errorf("fault: plan %q: option %q: want key=value", part, opt)
				}
				var err error
				switch kv[0] {
				case "prob":
					p.Prob, err = strconv.ParseFloat(kv[1], 64)
				case "every":
					p.Every, err = strconv.Atoi(kv[1])
				case "after":
					p.After, err = strconv.Atoi(kv[1])
				case "count":
					p.Count, err = strconv.Atoi(kv[1])
				case "delay":
					p.Delay, err = time.ParseDuration(kv[1])
				default:
					return nil, fmt.Errorf("fault: plan %q: unknown option %q", part, kv[0])
				}
				if err != nil {
					return nil, fmt.Errorf("fault: plan %q: option %q: %w", part, opt, err)
				}
			}
		}
		if err := p.validate(); err != nil {
			return nil, err
		}
		plans = append(plans, p)
	}
	return plans, nil
}
