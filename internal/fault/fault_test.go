package fault

import (
	"errors"
	"sync"
	"syscall"
	"testing"
	"time"
)

// firedIndices runs n ops through a fresh injector and returns the
// 1-based indices that received a non-zero decision.
func firedIndices(t *testing.T, seed int64, n int, plans ...Plan) []int {
	t.Helper()
	in, err := New(seed, plans...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var fired []int
	for i := 1; i <= n; i++ {
		if d := in.Hit(plans[0].Point); d != (Decision{}) {
			fired = append(fired, i)
		}
	}
	return fired
}

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	if d := in.Hit("disk.get"); d != (Decision{}) {
		t.Fatalf("nil injector fired: %+v", d)
	}
	if in.Stats() != nil {
		t.Fatal("nil injector has stats")
	}
	if in.String() != "off" {
		t.Fatalf("nil injector String = %q", in.String())
	}
}

func TestUnarmedPointNeverFires(t *testing.T) {
	in, err := New(1, Plan{Point: "disk.put", Mode: Error})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if d := in.Hit("peer.get"); d != (Decision{}) {
			t.Fatalf("unarmed point fired: %+v", d)
		}
	}
}

func TestEveryAfterCountSchedule(t *testing.T) {
	got := firedIndices(t, 7, 20, Plan{Point: "p", Mode: Error, Every: 3, After: 2, Count: 4})
	// After 2: eligible index k = i-2; fires at k % 3 == 0 → i = 5, 8, 11, 14 (count-capped).
	want := []int{5, 8, 11, 14}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestSameSeedSameSchedule(t *testing.T) {
	plan := Plan{Point: "p", Mode: Error, Prob: 0.3}
	a := firedIndices(t, 42, 500, plan)
	b := firedIndices(t, 42, 500, plan)
	if len(a) == 0 || len(a) == 500 {
		t.Fatalf("degenerate schedule: %d/500 fired", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %d vs %d firings", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at firing %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestDifferentSeedDifferentSchedule(t *testing.T) {
	plan := Plan{Point: "p", Mode: Error, Prob: 0.3}
	a := firedIndices(t, 1, 500, plan)
	b := firedIndices(t, 2, 500, plan)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestConcurrentFiringCountMatchesSequential(t *testing.T) {
	// The set of firing indices is fixed by the schedule, so the total
	// firing count over N ops is interleaving-independent.
	plan := Plan{Point: "p", Mode: Error, Every: 3, Count: 50}
	const n = 400
	seq := len(firedIndices(t, 9, n, plan))

	in, err := New(9, plan)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	fired := 0
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0
			for i := 0; i < n/8; i++ {
				if in.Hit("p") != (Decision{}) {
					local++
				}
			}
			mu.Lock()
			fired += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if fired != seq {
		t.Fatalf("concurrent firings %d, sequential %d", fired, seq)
	}
	st := in.Stats()["p"]
	if st.Ops != n || st.Injected != uint64(seq) {
		t.Fatalf("stats %+v, want ops=%d injected=%d", st, n, seq)
	}
}

func TestModes(t *testing.T) {
	in, err := New(1,
		Plan{Point: "a", Mode: NoSpace},
		Plan{Point: "b", Mode: Latency, Delay: time.Millisecond},
		Plan{Point: "c", Mode: Corrupt},
	)
	if err != nil {
		t.Fatal(err)
	}
	if d := in.Hit("a"); !errors.Is(d.Err, syscall.ENOSPC) {
		t.Fatalf("NoSpace decision %+v not ENOSPC", d)
	}
	if d := in.Hit("b"); d.Err != nil || d.Delay != time.Millisecond {
		t.Fatalf("Latency decision %+v", d)
	}
	if d := in.Hit("c"); !d.Corrupt || d.Err != nil {
		t.Fatalf("Corrupt decision %+v", d)
	}
}

func TestDamage(t *testing.T) {
	orig := []byte("hello world")
	b := append([]byte(nil), orig...)
	Damage(b)
	diff := 0
	for i := range b {
		if b[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("Damage changed %d bytes, want 1", diff)
	}
	if out := Damage(nil); out != nil {
		t.Fatalf("Damage(nil) = %v", out)
	}
}

func TestParse(t *testing.T) {
	plans, err := Parse("disk.put:enospc:every=7,count=3; peer.get:latency:delay=20ms,prob=0.2 ;disk.get:corrupt")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(plans) != 3 {
		t.Fatalf("got %d plans", len(plans))
	}
	if p := plans[0]; p.Point != "disk.put" || p.Mode != NoSpace || p.Every != 7 || p.Count != 3 {
		t.Fatalf("plan 0: %+v", p)
	}
	if p := plans[1]; p.Point != "peer.get" || p.Mode != Latency || p.Delay != 20*time.Millisecond || p.Prob != 0.2 {
		t.Fatalf("plan 1: %+v", p)
	}
	if p := plans[2]; p.Point != "disk.get" || p.Mode != Corrupt {
		t.Fatalf("plan 2: %+v", p)
	}
	if plans, err := Parse("  "); err != nil || plans != nil {
		t.Fatalf("empty spec: %v, %v", plans, err)
	}
	for _, bad := range []string{
		"disk.put",                 // no mode
		"disk.put:explode",         // unknown mode
		"disk.put:error:zap=1",     // unknown option
		"disk.put:error:every=x",   // bad int
		"disk.put:latency",         // latency without delay
		"disk.put:error:prob=-0.5", // negative
		":error",                   // empty point
		"disk.put:latency:delay=-1s",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) succeeded", bad)
		}
	}
}

func TestStringSummarizes(t *testing.T) {
	in, err := New(1,
		Plan{Point: "b", Mode: Error},
		Plan{Point: "a", Mode: Latency, Delay: time.Second},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := in.String(), "a:latency:delay=1s;b:error"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
