// Package experiments reproduces the paper's evaluation: every figure
// of section 5 (Figure 1 and Figures 4-7), the classification-space
// trajectory of Figure 3 (right), and the ablations DESIGN.md calls
// out. Each experiment returns printable series/tables carrying exactly
// the quantities the paper plots, plus correlation statistics that make
// the paper's visual comparison reproducible as text.
package experiments

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"samr/internal/core"
	"samr/internal/grid"
	"samr/internal/partition"
	"samr/internal/pool"
	"samr/internal/sim"
	"samr/internal/stats"
	"samr/internal/trace"
)

// Series is one named per-step data series.
type Series struct {
	Name   string
	Values []float64
}

// Figure is a printable experiment result: aligned per-step series plus
// free-form notes (correlations, lags, periods).
type Figure struct {
	ID    string
	Title string
	Steps []int
	Data  []Series
	Notes []string
}

// Print writes the figure as an aligned text table.
func (f *Figure) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	fmt.Fprintf(w, "%6s", "step")
	for _, s := range f.Data {
		fmt.Fprintf(w, " %14s", s.Name)
	}
	fmt.Fprintln(w)
	for i, st := range f.Steps {
		fmt.Fprintf(w, "%6d", st)
		for _, s := range f.Data {
			if i < len(s.Values) {
				fmt.Fprintf(w, " %14.6f", s.Values[i])
			} else {
				fmt.Fprintf(w, " %14s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
}

// WriteCSV writes the figure as CSV (step column plus one column per
// series; notes become trailing '#' comment lines), ready for any
// plotting tool to regenerate the paper's figures graphically.
func (f *Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 1+len(f.Data))
	header[0] = "step"
	for i, s := range f.Data {
		header[i+1] = s.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, st := range f.Steps {
		rec := make([]string, 1+len(f.Data))
		rec[0] = strconv.Itoa(st)
		for j, s := range f.Data {
			if i < len(s.Values) {
				rec[j+1] = strconv.FormatFloat(s.Values[i], 'g', 10, 64)
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// Table is a printable rows-and-columns result for the comparison
// ablations.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Print writes the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	row := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	row(t.Columns)
	for _, r := range t.Rows {
		row(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
}

// DefaultProcs is the processor count of the validation experiments.
const DefaultProcs = 16

// staticPartitioner returns the paper's statically configured
// Nature+Fable ("static 'default' values ... a static 'neutral' setting
// so that behavior patterns in the applications are clearly visible").
func staticPartitioner() partition.Partitioner { return partition.NewNatureFable() }

// timeSlot estimates the wall-clock interval between partitioner
// invocations on the machine model: the compute time of one coarse step
// spread over the processors.
func timeSlot(h *grid.Hierarchy, nprocs int, m sim.Machine) float64 {
	return float64(h.Workload()) * m.CellTime / float64(nprocs)
}

// partitionCostEstimate is the classifier's assumed cost of one
// repartitioning on the machine model (a fixed engineering estimate; the
// paper leaves quantity (2) normalization to experimentation).
const partitionCostEstimate = 2e-4

// Fig1 reproduces Figure 1: the dynamic behaviour of BL2D under a
// single static partitioner — load imbalance and communication amount
// as functions of time.
func Fig1(ctx context.Context, tr *trace.Trace, nprocs int) (*Figure, error) {
	m := sim.DefaultMachine()
	res, err := sim.SimulateTrace(ctx, tr, staticPartitioner(), nprocs, m)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:    "fig1",
		Title: fmt.Sprintf("%s dynamic behaviour, static %s, %d procs", tr.App, res.PartitionerName, nprocs),
	}
	var imb, comm Series
	imb.Name = "imbalance_pct"
	comm.Name = "rel_comm"
	for _, s := range res.Steps {
		f.Steps = append(f.Steps, s.Step)
		imb.Values = append(imb.Values, s.Imbalance)
		comm.Values = append(comm.Values, s.RelativeComm)
	}
	f.Data = []Series{imb, comm}
	f.Notes = append(f.Notes,
		fmt.Sprintf("imbalance: %s", stats.Summarize(imb.Values)),
		fmt.Sprintf("rel_comm:  %s", stats.Summarize(comm.Values)),
		fmt.Sprintf("imbalance oscillation period: %d steps", stats.DominantPeriod(imb.Values, 30)),
		fmt.Sprintf("rel_comm  oscillation period: %d steps", stats.DominantPeriod(comm.Values, 30)),
	)
	return f, nil
}

// Validation is the Figures 4-7 output for one application: the left
// panel (actual relative communication vs beta_c) and the right panel
// (actual relative data migration vs beta_m), plus the agreement
// statistics.
type Validation struct {
	App      string
	Comm     *Figure
	Mig      *Figure
	CommCorr float64
	MigCorr  float64
	// MigLag is the lag (model leading measurement positive) that
	// maximizes the migration correlation; the paper observes beta_m
	// "peaks one time-step before the relative data migration
	// occasionally".
	MigLag        int
	MigCorrAtLag  float64
	CommAggressor float64 // fraction of steps with beta_c >= measured
	MigCautious   float64 // fraction of steps with beta_m <= measured
}

// FigModelVsActual reproduces one of Figures 4-7: it runs the model
// (penalties from the unpartitioned trace) and the simulator (actual
// metrics under the static partitioner) and pairs the series. The two
// sides are independent until the pairing, so they run concurrently.
func FigModelVsActual(ctx context.Context, tr *trace.Trace, nprocs int) (*Validation, error) {
	m := sim.DefaultMachine()
	var res *sim.Result
	samples := make([]core.Sample, len(tr.Snapshots))
	err := pool.RunCtx(ctx,
		func() error {
			var err error
			res, err = sim.SimulateTrace(ctx, tr, staticPartitioner(), nprocs, m)
			return err
		},
		func() error {
			// Model side: ab initio penalties over the raw trace. The
			// classifier carries running state (previous hierarchy,
			// size normalization), so it consumes snapshots in order.
			cls := core.NewClassifier(partitionCostEstimate)
			for i, snap := range tr.Snapshots {
				if err := ctx.Err(); err != nil {
					return err
				}
				samples[i] = cls.Classify(snap.H, timeSlot(snap.H, nprocs, m))
			}
			return nil
		},
	)
	if err != nil {
		return nil, err
	}

	var betaC, betaM, actC, actM []float64
	var steps []int
	for i, snap := range tr.Snapshots {
		if i == 0 {
			continue // no previous state: neither beta_m nor migration
		}
		s := samples[i]
		steps = append(steps, snap.Step)
		betaC = append(betaC, s.BetaC)
		betaM = append(betaM, s.BetaM)
		actC = append(actC, res.Steps[i].RelativeComm)
		actM = append(actM, res.Steps[i].RelativeMigration)
	}

	v := &Validation{App: tr.App}
	v.Comm = &Figure{
		ID:    "comm",
		Title: fmt.Sprintf("%s: communication vs beta_c (%d procs)", tr.App, nprocs),
		Steps: steps,
		Data: []Series{
			{Name: "rel_comm", Values: actC},
			{Name: "beta_c", Values: betaC},
		},
	}
	v.Mig = &Figure{
		ID:    "mig",
		Title: fmt.Sprintf("%s: data migration vs beta_m (%d procs)", tr.App, nprocs),
		Steps: steps,
		Data: []Series{
			{Name: "rel_migration", Values: actM},
			{Name: "beta_m", Values: betaM},
		},
	}
	v.CommCorr = stats.Pearson(betaC, actC)
	v.MigCorr = stats.Pearson(betaM, actM)
	v.MigLag, v.MigCorrAtLag = stats.BestLag(betaM, actM, 3)
	var agg, caut int
	for i := range betaC {
		if betaC[i] >= actC[i] {
			agg++
		}
		if betaM[i] <= actM[i] {
			caut++
		}
	}
	if n := len(betaC); n > 0 {
		v.CommAggressor = float64(agg) / float64(n)
		v.MigCautious = float64(caut) / float64(n)
	}
	v.Comm.Notes = append(v.Comm.Notes,
		fmt.Sprintf("pearson(beta_c, rel_comm) = %.3f", v.CommCorr),
		fmt.Sprintf("beta_c >= measured on %.0f%% of steps (worst-case/aggressive by design)", 100*v.CommAggressor),
		fmt.Sprintf("rel_comm period %d, beta_c period %d",
			stats.DominantPeriod(actC, 30), stats.DominantPeriod(betaC, 30)),
	)
	v.Mig.Notes = append(v.Mig.Notes,
		fmt.Sprintf("pearson(beta_m, rel_migration) = %.3f", v.MigCorr),
		fmt.Sprintf("best lag %d (model leads positive): corr %.3f", v.MigLag, v.MigCorrAtLag),
		fmt.Sprintf("beta_m <= measured on %.0f%% of steps (cautious amplitude)", 100*v.MigCautious),
		fmt.Sprintf("rel_migration period %d, beta_m period %d",
			stats.DominantPeriod(actM, 30), stats.DominantPeriod(betaM, 30)),
	)
	return v, nil
}

// ClassificationTrajectory demonstrates Figure 3 (right): the locus of
// classification points as the simulation evolves.
func ClassificationTrajectory(ctx context.Context, tr *trace.Trace, nprocs int) (*Figure, error) {
	m := sim.DefaultMachine()
	cls := core.NewClassifier(partitionCostEstimate)
	f := &Figure{
		ID:    "trajectory",
		Title: fmt.Sprintf("%s: classification-space trajectory", tr.App),
	}
	var d1, d2, d3, size Series
	d1.Name, d2.Name, d3.Name, size.Name = "dimI", "dimII", "dimIII", "size_norm"
	for _, snap := range tr.Snapshots {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s := cls.Classify(snap.H, timeSlot(snap.H, nprocs, m))
		f.Steps = append(f.Steps, snap.Step)
		d1.Values = append(d1.Values, s.DimI)
		d2.Values = append(d2.Values, s.DimII)
		d3.Values = append(d3.Values, s.DimIII)
		size.Values = append(size.Values, s.SizeNorm)
	}
	f.Data = []Series{d1, d2, d3, size}
	f.Notes = append(f.Notes,
		"continuous absolute coordinates; contrast with the discrete octant approach",
		fmt.Sprintf("dimIII: %s", stats.Summarize(d3.Values)),
	)
	return f, nil
}
