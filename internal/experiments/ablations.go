package experiments

import (
	"context"
	"fmt"

	"samr/internal/core"
	"samr/internal/grid"
	"samr/internal/partition"
	"samr/internal/pool"
	"samr/internal/sfc"
	"samr/internal/sim"
	"samr/internal/stats"
	"samr/internal/trace"
)

// AblationDenominator (Ablation A) compares the three candidate
// denominators of beta_m (section 4.4 discusses why |H_t| is chosen)
// against the measured relative migration.
func AblationDenominator(ctx context.Context, tr *trace.Trace, nprocs int) (*Figure, error) {
	m := sim.DefaultMachine()
	res, err := sim.SimulateTrace(ctx, tr, staticPartitioner(), nprocs, m)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:    "ablationA",
		Title: fmt.Sprintf("%s: beta_m denominator choices vs measured migration", tr.App),
	}
	var cur, prev, maxd, act Series
	cur.Name, prev.Name, maxd.Name, act.Name = "denom_Ht", "denom_Ht-1", "denom_max", "rel_migration"
	for i := 1; i < len(tr.Snapshots); i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		a, b := tr.Snapshots[i-1].H, tr.Snapshots[i].H
		f.Steps = append(f.Steps, tr.Snapshots[i].Step)
		cur.Values = append(cur.Values, core.MigrationPenaltyWith(a, b, core.DenomCurrent))
		prev.Values = append(prev.Values, core.MigrationPenaltyWith(a, b, core.DenomPrevious))
		maxd.Values = append(maxd.Values, core.MigrationPenaltyWith(a, b, core.DenomMax))
		act.Values = append(act.Values, res.Steps[i].RelativeMigration)
	}
	f.Data = []Series{act, cur, prev, maxd}
	f.Notes = append(f.Notes,
		fmt.Sprintf("pearson vs measured: Ht=%.3f Ht-1=%.3f max=%.3f",
			stats.Pearson(cur.Values, act.Values),
			stats.Pearson(prev.Values, act.Values),
			stats.Pearson(maxd.Values, act.Values)),
	)
	return f, nil
}

// partitionerFamilies is the partitioner set of Ablation B: one
// representative per family of section 2.2 plus curve variants.
func partitionerFamilies() []partition.Partitioner {
	return []partition.Partitioner{
		&partition.DomainSFC{Curve: sfc.Hilbert, UnitSize: 2},
		&partition.DomainSFC{Curve: sfc.Morton, UnitSize: 2},
		&partition.DomainSFC{Curve: sfc.RowMajor, UnitSize: 2},
		partition.NewPatchBased(),
		partition.NewNatureFable(),
		&partition.NatureFable{Curve: sfc.Hilbert, AtomicUnit: 8, Groups: 2, FractionalBlocking: false},
	}
}

// AblationPartitioners (Ablation B) measures every partitioner family
// on the same trace: mean imbalance, mean relative communication, mean
// relative migration, inter-level communication share, and total
// estimated execution time. The per-family simulations are independent,
// so they fan out across the worker pool; each goroutine writes its row
// by index, keeping the table order (and content) identical to a
// sequential run.
func AblationPartitioners(ctx context.Context, tr *trace.Trace, nprocs int) (*Table, error) {
	m := sim.DefaultMachine()
	t := &Table{
		ID:      "ablationB",
		Title:   fmt.Sprintf("%s: partitioner families, %d procs", tr.App, nprocs),
		Columns: []string{"partitioner", "mean_imb_pct", "mean_rel_comm", "mean_rel_mig", "interlevel_share", "est_time_s"},
	}
	ps := partitionerFamilies()
	t.Rows = make([][]string, len(ps))
	err := pool.MapCtx(ctx, pool.Workers(), len(ps), func(i int) error {
		p := ps[i]
		res, err := sim.SimulateTrace(ctx, tr, p, nprocs, m)
		if err != nil {
			return err
		}
		var comm, mig []float64
		var inter, total int64
		for _, s := range res.Steps {
			comm = append(comm, s.RelativeComm)
			mig = append(mig, s.RelativeMigration)
			inter += s.InterLevelComm
			total += s.TotalComm()
		}
		share := 0.0
		if total > 0 {
			share = float64(inter) / float64(total)
		}
		t.Rows[i] = []string{
			p.Name(),
			fmt.Sprintf("%.1f", res.MeanImbalance()),
			fmt.Sprintf("%.4f", stats.Mean(comm)),
			fmt.Sprintf("%.4f", stats.Mean(mig)),
			fmt.Sprintf("%.3f", share),
			fmt.Sprintf("%.4f", res.TotalEstTime()),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"domain-based rows must show interlevel_share = 0 (section 2.2)",
		"patch-based rows trade inter-level communication for balance",
	)
	return t, nil
}

// MetaVsStatic (Ablation C) compares the meta-partitioner's dynamic
// per-step selection against every static choice from its own stable,
// reporting total estimated execution time — the ArMADA-style proof
// that adapting to dynamic behaviour reduces execution time.
func MetaVsStatic(ctx context.Context, tr *trace.Trace, nprocs int) (*Table, error) {
	m := sim.DefaultMachine()
	t := &Table{
		ID:      "ablationC",
		Title:   fmt.Sprintf("%s: meta-partitioner vs static choices, %d procs", tr.App, nprocs),
		Columns: []string{"strategy", "est_time_s", "mean_imb_pct", "mean_rel_comm", "mean_rel_mig"},
	}
	meta := core.NewMetaPartitioner(partitionCostEstimate)
	row := func(name string, res *sim.Result) []string {
		var comm, mig []float64
		for _, s := range res.Steps {
			comm = append(comm, s.RelativeComm)
			mig = append(mig, s.RelativeMigration)
		}
		return []string{
			name,
			fmt.Sprintf("%.4f", res.TotalEstTime()),
			fmt.Sprintf("%.1f", res.MeanImbalance()),
			fmt.Sprintf("%.4f", stats.Mean(comm)),
			fmt.Sprintf("%.4f", stats.Mean(mig)),
		}
	}

	// Dynamic: meta-partitioner selects per step. This run shares the
	// stable's partitioner instances (including the stateful post-mapped
	// one), so it completes before the static runs start.
	mm := sim.DefaultMachine()
	dyn, err := sim.SimulateTraceSelect(ctx, tr, func(step int, h *grid.Hierarchy) partition.Partitioner {
		return meta.Select(h, timeSlot(h, nprocs, mm))
	}, nprocs, m)
	if err != nil {
		return nil, err
	}

	// Statics: each stable entry is a distinct instance, reset inside
	// its own worker, so the per-partitioner simulations fan out.
	stable := meta.Stable()
	t.Rows = make([][]string, 1+len(stable))
	t.Rows[0] = row("meta-partitioner(dynamic)", dyn)
	err = pool.MapCtx(ctx, pool.Workers(), len(stable), func(i int) error {
		p := stable[i]
		resetStateful(p)
		res, err := sim.SimulateTrace(ctx, tr, p, nprocs, m)
		if err != nil {
			return err
		}
		t.Rows[1+i] = row("static:"+p.Name(), res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"expected shape: dynamic <= best static on average, << worst static",
	)
	return t, nil
}

// resetStateful clears carried state from stateful partitioners (the
// post-mapping wrapper remembers the previous assignment) so every
// simulated run starts fresh.
func resetStateful(p partition.Partitioner) {
	if r, ok := p.(interface{ Reset() }); ok {
		r.Reset()
	}
}

// AblationPostMapping (Ablation E) measures the migration remedy the
// paper names for dimension III: wrapping a partitioner with the
// post-mapping technique (label remap maximizing overlap with the
// previous assignment). Load balance and communication are unchanged
// by construction; migration and execution time should drop.
func AblationPostMapping(ctx context.Context, tr *trace.Trace, nprocs int) (*Table, error) {
	m := sim.DefaultMachine()
	t := &Table{
		ID:      "ablationE",
		Title:   fmt.Sprintf("%s: post-mapping migration remedy, %d procs", tr.App, nprocs),
		Columns: []string{"partitioner", "mean_rel_mig", "mean_imb_pct", "est_time_s"},
	}
	pairs := []partition.Partitioner{
		partition.NewNatureFable(),
		partition.NewPostMapped(partition.NewNatureFable()),
		&partition.DomainSFC{Curve: sfc.Hilbert, UnitSize: 2},
		partition.NewPostMapped(&partition.DomainSFC{Curve: sfc.Hilbert, UnitSize: 2}),
	}
	for _, p := range pairs {
		res, err := sim.SimulateTrace(ctx, tr, p, nprocs, m)
		if err != nil {
			return nil, err
		}
		var mig []float64
		for _, s := range res.Steps {
			mig = append(mig, s.RelativeMigration)
		}
		t.Rows = append(t.Rows, []string{
			p.Name(),
			fmt.Sprintf("%.4f", stats.Mean(mig)),
			fmt.Sprintf("%.1f", res.MeanImbalance()),
			fmt.Sprintf("%.4f", res.TotalEstTime()),
		})
	}
	t.Notes = append(t.Notes,
		"postmap(...) rows must not exceed their base row's migration (same decomposition, aligned labels)",
	)
	return t, nil
}

// AblationAbsoluteImportance (Ablation D) contrasts the raw mean
// penalty with the size-weighted Need of section 4.2/4.3: large
// penalties at grid-size minima are discounted, at peaks they are not.
func AblationAbsoluteImportance(ctx context.Context, tr *trace.Trace, nprocs int) (*Figure, error) {
	m := sim.DefaultMachine()
	cls := core.NewClassifier(partitionCostEstimate)
	f := &Figure{
		ID:    "ablationD",
		Title: fmt.Sprintf("%s: absolute importance of relative metrics", tr.App),
	}
	var raw, need, size Series
	raw.Name, need.Name, size.Name = "mean_penalty", "need_weighted", "size_norm"
	for _, snap := range tr.Snapshots {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s := cls.Classify(snap.H, timeSlot(snap.H, nprocs, m))
		f.Steps = append(f.Steps, snap.Step)
		raw.Values = append(raw.Values, (s.BetaL+s.BetaC+s.BetaM)/3)
		need.Values = append(need.Values, s.Need)
		size.Values = append(size.Values, s.SizeNorm)
	}
	f.Data = []Series{raw, need, size}
	f.Notes = append(f.Notes,
		"need = mean_penalty * size_norm: optimization urgency discounted at grid-size minima (section 4.2)",
	)
	return f, nil
}
