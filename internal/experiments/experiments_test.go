package experiments

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"samr/internal/apps"
	"samr/internal/trace"
)

// bg is the background context of the non-cancellation tests.
var bg = context.Background()

// noErr fails the test on a non-nil experiment error.
func noErr(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// quick returns the reduced-scale trace for tests.
func quick(t *testing.T, app string) *trace.Trace {
	t.Helper()
	tr, err := apps.QuickTrace(context.Background(), app)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFig1Shape(t *testing.T) {
	tr := quick(t, "BL2D")
	f, err := Fig1(bg, tr, 8)
	noErr(t, err)
	if len(f.Steps) != tr.Len() {
		t.Errorf("Fig1 has %d steps, trace has %d", len(f.Steps), tr.Len())
	}
	if len(f.Data) != 2 {
		t.Fatalf("Fig1 series = %d", len(f.Data))
	}
	for _, s := range f.Data {
		if len(s.Values) != len(f.Steps) {
			t.Errorf("series %s length mismatch", s.Name)
		}
		for i, v := range s.Values {
			if v < 0 {
				t.Errorf("series %s negative at %d: %f", s.Name, i, v)
			}
		}
	}
}

func TestFigModelVsActualAllApps(t *testing.T) {
	for _, app := range apps.Names {
		app := app
		t.Run(app, func(t *testing.T) {
			t.Parallel()
			v, err := FigModelVsActual(bg, quick(t, app), 8)
			noErr(t, err)
			if v.Comm == nil || v.Mig == nil {
				t.Fatal("missing panels")
			}
			// One fewer point than snapshots (first has no previous).
			want := quick(t, app).Len() - 1
			if len(v.Comm.Steps) != want || len(v.Mig.Steps) != want {
				t.Errorf("panel lengths %d/%d, want %d", len(v.Comm.Steps), len(v.Mig.Steps), want)
			}
			// The penalties must be in range.
			for _, s := range v.Comm.Data[1].Values {
				if s < 0 || s > 1 {
					t.Fatalf("beta_c out of range: %f", s)
				}
			}
			for _, s := range v.Mig.Data[1].Values {
				if s < 0 || s > 1 {
					t.Fatalf("beta_m out of range: %f", s)
				}
			}
		})
	}
}

func TestFigModelCapturesMigrationTrend(t *testing.T) {
	// The core claim of the paper on the quick traces: beta_m
	// correlates positively with measured migration for a dynamic app.
	v, err := FigModelVsActual(bg, quick(t, "TP2D"), 8)
	noErr(t, err)
	if v.MigCorrAtLag < 0.1 {
		t.Errorf("beta_m vs migration correlation (best lag) = %.3f; model lost the trend",
			v.MigCorrAtLag)
	}
}

func TestBetaCIsWorstCase(t *testing.T) {
	// The paper: beta_c reflects a worst-case scenario; the hybrid
	// partitioner produces substantially less communication.
	for _, app := range []string{"TP2D", "BL2D"} {
		v, err := FigModelVsActual(bg, quick(t, app), 8)
		noErr(t, err)
		if v.CommAggressor < 0.6 {
			t.Errorf("%s: beta_c >= measured on only %.0f%% of steps; expected mostly above",
				app, 100*v.CommAggressor)
		}
	}
}

func TestClassificationTrajectory(t *testing.T) {
	f, err := ClassificationTrajectory(bg, quick(t, "SC2D"), 8)
	noErr(t, err)
	if len(f.Data) != 4 {
		t.Fatalf("trajectory series = %d", len(f.Data))
	}
	for _, s := range f.Data {
		for _, v := range s.Values {
			if v < 0 || v > 1 {
				t.Fatalf("trajectory coordinate out of [0,1]: %s=%f", s.Name, v)
			}
		}
	}
}

func TestAblationDenominator(t *testing.T) {
	f, err := AblationDenominator(bg, quick(t, "TP2D"), 8)
	noErr(t, err)
	if len(f.Data) != 4 {
		t.Fatalf("series = %d", len(f.Data))
	}
	if len(f.Notes) == 0 || !strings.Contains(f.Notes[0], "pearson") {
		t.Error("denominator ablation must report correlations")
	}
}

func TestAblationPartitionersDomainNoInterLevel(t *testing.T) {
	tb, err := AblationPartitioners(bg, quick(t, "TP2D"), 8)
	noErr(t, err)
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if strings.HasPrefix(r[0], "domain-") && r[4] != "0.000" {
			t.Errorf("domain-based %s has inter-level share %s, want 0", r[0], r[4])
		}
	}
}

func TestMetaVsStaticShape(t *testing.T) {
	tb, err := MetaVsStatic(bg, quick(t, "TP2D"), 8)
	noErr(t, err)
	if len(tb.Rows) != 6 { // dynamic + 5 static
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][0] != "meta-partitioner(dynamic)" {
		t.Errorf("first row = %s", tb.Rows[0][0])
	}
}

func TestAblationAbsoluteImportanceDiscounts(t *testing.T) {
	f, err := AblationAbsoluteImportance(bg, quick(t, "BL2D"), 8)
	noErr(t, err)
	raw, need := f.Data[0].Values, f.Data[1].Values
	for i := range raw {
		if need[i] > raw[i]+1e-12 {
			t.Fatalf("step %d: weighted need %f exceeds raw penalty %f", i, need[i], raw[i])
		}
	}
}

func TestFigurePrintAndTablePrint(t *testing.T) {
	f, err := Fig1(bg, quick(t, "BL2D"), 4)
	noErr(t, err)
	var buf bytes.Buffer
	f.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "imbalance_pct") || !strings.Contains(out, "fig1") {
		t.Errorf("figure print missing headers:\n%s", out[:min(200, len(out))])
	}
	tb, err := AblationPartitioners(bg, quick(t, "TP2D"), 4)
	noErr(t, err)
	buf.Reset()
	tb.Print(&buf)
	if !strings.Contains(buf.String(), "partitioner") {
		t.Error("table print missing header")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestAblationPostMappingReducesMigration(t *testing.T) {
	tb, err := AblationPostMapping(bg, quick(t, "TP2D"), 8)
	noErr(t, err)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Rows come in (base, postmap) pairs; the wrapped row must not
	// migrate more than its base.
	for i := 0; i < len(tb.Rows); i += 2 {
		base, wrapped := tb.Rows[i], tb.Rows[i+1]
		if !strings.HasPrefix(wrapped[0], "postmap(") {
			t.Fatalf("row %d is %s, want postmap pair", i+1, wrapped[0])
		}
		var bm, wm float64
		fmt.Sscanf(base[1], "%f", &bm)
		fmt.Sscanf(wrapped[1], "%f", &wm)
		if wm > bm+1e-9 {
			t.Errorf("%s migration %.4f exceeds base %.4f", wrapped[0], wm, bm)
		}
		// Load balance untouched by relabeling.
		if base[2] != wrapped[2] {
			t.Errorf("post-mapping changed imbalance: %s vs %s", base[2], wrapped[2])
		}
	}
}

func TestFigureWriteCSV(t *testing.T) {
	f := &Figure{
		ID: "x", Title: "t",
		Steps: []int{1, 2},
		Data: []Series{
			{Name: "a", Values: []float64{0.5, 1.25}},
			{Name: "b", Values: []float64{2, 3}},
		},
		Notes: []string{"note"},
	}
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "step,a,b\n1,0.5,2\n2,1.25,3\n# note\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestFigureWriteCSVRaggedSeries(t *testing.T) {
	f := &Figure{
		Steps: []int{1, 2},
		Data:  []Series{{Name: "a", Values: []float64{7}}},
	}
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2,\n") {
		t.Errorf("missing empty cell for ragged series: %q", buf.String())
	}
}
