package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"samr/internal/partition"
	"samr/internal/sfc"
)

func TestProcsSweepShape(t *testing.T) {
	tr := quick(t, "BL2D")
	tb, err := ProcsSweep(bg, tr, partition.NewNatureFable(), nil)
	noErr(t, err)
	if len(tb.Rows) != len(DefaultProcsLadder) {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), len(DefaultProcsLadder))
	}
	for i, row := range tb.Rows {
		if len(row) != len(tb.Columns) {
			t.Fatalf("row %d has %d cells, want %d", i, len(row), len(tb.Columns))
		}
		if row[0] == "" {
			t.Fatalf("row %d missing nprocs", i)
		}
	}
}

// TestProcsSweepDeterministic: a repeated sweep (fully warm caches)
// must print byte-identical tables — the user-facing form of the
// bit-identical memoization guarantee.
func TestProcsSweepDeterministic(t *testing.T) {
	tr := quick(t, "SC2D")
	ladder := []int{2, 5, 9}
	render := func() string {
		tb, err := ProcsSweep(bg, tr, &partition.DomainSFC{Curve: sfc.Hilbert, UnitSize: 2}, ladder)
		noErr(t, err)
		var buf bytes.Buffer
		tb.Print(&buf)
		return buf.String()
	}
	cold := render()
	warm := render()
	if cold != warm {
		t.Fatalf("warm sweep diverged from cold:\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}
}

// TestProcsSweepStatefulSequential: a post-mapped partitioner must
// still produce a complete, per-rung-reset sweep (sequential path).
func TestProcsSweepStatefulSequential(t *testing.T) {
	tr := quick(t, "TP2D")
	pm := partition.NewPostMapped(partition.NewNatureFable())
	tb, err := ProcsSweep(bg, tr, pm, []int{2, 4})
	noErr(t, err)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tb.Rows))
	}
	// Per-rung reset: rerunning the same rung fresh must reproduce it.
	pm2 := partition.NewPostMapped(partition.NewNatureFable())
	tb2, err := ProcsSweep(bg, tr, pm2, []int{2, 4})
	noErr(t, err)
	if !reflect.DeepEqual(tb.Rows, tb2.Rows) {
		t.Fatal("stateful sweep not reproducible (state leaked between rungs)")
	}
}

// TestAblationWarmCacheIdentical: a full ablation table regenerated
// with every memo layer warm must match its cold-cache rendering
// byte for byte.
func TestAblationWarmCacheIdentical(t *testing.T) {
	tr := quick(t, "BL2D")
	render := func() string {
		tb, err := AblationPartitioners(bg, tr, 8)
		noErr(t, err)
		var buf bytes.Buffer
		tb.Print(&buf)
		return buf.String()
	}
	cold := render()
	warm := render()
	if cold != warm {
		t.Fatalf("warm ablation diverged from cold:\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}
}
