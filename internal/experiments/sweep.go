package experiments

import (
	"context"
	"fmt"

	"samr/internal/partition"
	"samr/internal/pool"
	"samr/internal/sim"
	"samr/internal/stats"
	"samr/internal/trace"
)

// DefaultProcsLadder is the processor-count ladder of ProcsSweep:
// powers of two around the paper's 16-processor validation setup.
var DefaultProcsLadder = []int{4, 8, 16, 32, 64}

// ProcsSweep runs one partitioner over the same trace at every
// processor count of the ladder — the scaling view the paper's
// fixed-nprocs figures do not show. The sweep is the stress case the
// content-addressed memoization layer is built for: the SFC unit
// chains and hue/core separations depend only on (hierarchy content,
// curve, unit size), so across the whole ladder they are computed once
// and only the chain cuts, fragment generation, and evaluation run per
// nprocs. The per-nprocs simulations are independent (the partitioner
// must be stateless) and fan out over the worker pool; each row is
// written by index, keeping the table identical to a sequential run.
func ProcsSweep(ctx context.Context, tr *trace.Trace, p partition.Partitioner, ladder []int) (*Table, error) {
	if len(ladder) == 0 {
		ladder = DefaultProcsLadder
	}
	m := sim.DefaultMachine()
	t := &Table{
		ID:      "sweep",
		Title:   fmt.Sprintf("%s: %s across processor counts", tr.App, p.Name()),
		Columns: []string{"nprocs", "est_time_s", "mean_imb_pct", "mean_rel_comm", "mean_rel_mig"},
	}
	t.Rows = make([][]string, len(ladder))
	// A stateful partitioner (postmap) cannot share one instance across
	// concurrent runs, and its carried state must not leak between
	// ladder rungs: fall back to a sequential sweep with a reset per
	// rung.
	workers := pool.Workers()
	if _, ok := p.(interface{ Reset() }); ok {
		workers = 1
	}
	err := pool.MapCtx(ctx, workers, len(ladder), func(i int) error {
		resetStateful(p)
		res, err := sim.SimulateTrace(ctx, tr, p, ladder[i], m)
		if err != nil {
			return err
		}
		var comm, mig []float64
		for _, s := range res.Steps {
			comm = append(comm, s.RelativeComm)
			mig = append(mig, s.RelativeMigration)
		}
		t.Rows[i] = []string{
			fmt.Sprintf("%d", ladder[i]),
			fmt.Sprintf("%.4f", res.TotalEstTime()),
			fmt.Sprintf("%.1f", res.MeanImbalance()),
			fmt.Sprintf("%.4f", stats.Mean(comm)),
			fmt.Sprintf("%.4f", stats.Mean(mig)),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"unit chains are content-addressed: decomposition work is shared across the whole ladder",
	)
	return t, nil
}
