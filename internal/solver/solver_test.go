package solver

import (
	"math"
	"testing"

	"samr/internal/field"
	"samr/internal/geom"
)

// runSteps advances kernel k on a single full-domain patch for n steps,
// handling its own ghost fills, and returns the patch.
func runSteps(k Kernel, n, size int) *field.Patch {
	g := Geometry{Dx: 1.0 / float64(size)}
	dom := geom.NewBox2(0, 0, size, size)
	p := field.NewPatch(dom, k.Ghost(), k.NComp())
	k.Init(p, g)
	dt := 0.4 * g.Dx / k.MaxSpeed()
	t := 0.0
	for s := 0; s < n; s++ {
		field.FillPhysical(p, []*field.Patch{p}, dom, k.BC())
		k.Step(p, t, dt, g)
		t += dt
	}
	return p
}

func TestTransportPreservesBounds(t *testing.T) {
	k := NewTransport()
	p := runSteps(k, 50, 32)
	p.Box.Cells(func(q geom.IntVect) {
		v := p.At(0, q[0], q[1])
		if v < -1e-9 || v > 1.0+1e-9 {
			t.Fatalf("transport out of [0,1] at %v: %f", q, v)
		}
	})
}

func TestTransportPulseMoves(t *testing.T) {
	k := NewTransport()
	g := Geometry{Dx: 1.0 / 32}
	dom := geom.NewBox2(0, 0, 32, 32)
	p := field.NewPatch(dom, 1, 1)
	k.Init(p, g)
	cx0, cy0 := centroid(p)
	dt := 0.4 * g.Dx / k.MaxSpeed()
	for s := 0; s < 40; s++ {
		field.FillPhysical(p, []*field.Patch{p}, dom, k.BC())
		k.Step(p, 0, dt, g)
	}
	cx1, cy1 := centroid(p)
	moved := math.Hypot(cx1-cx0, cy1-cy0)
	if moved < 0.5 {
		t.Errorf("pulse centroid moved only %f cells", moved)
	}
}

func centroid(p *field.Patch) (cx, cy float64) {
	var m float64
	p.Box.Cells(func(q geom.IntVect) {
		v := p.At(0, q[0], q[1])
		m += v
		cx += v * float64(q[0])
		cy += v * float64(q[1])
	})
	if m > 0 {
		cx /= m
		cy /= m
	}
	return cx, cy
}

func TestTransportTagsMovingFront(t *testing.T) {
	k := NewTransport()
	p := runSteps(k, 5, 32)
	n := 0
	k.Tag(p, Geometry{Dx: 1.0 / 32}, func(i, j int) { n++ })
	if n == 0 {
		t.Error("transport pulse produced no tags")
	}
	if n > 32*32/2 {
		t.Errorf("transport tagged %d cells: threshold too low", n)
	}
}

func TestScalarWaveStable(t *testing.T) {
	k := NewScalarWave()
	p := runSteps(k, 100, 32)
	if m := p.MaxAbs(0); m > 10 {
		t.Errorf("wave amplitude blew up: %f", m)
	}
	if m := p.MaxAbs(0); m < 1e-6 {
		t.Errorf("wave died completely: %f", m)
	}
}

func TestScalarWaveRingExpands(t *testing.T) {
	// The driven, damped wave field must keep producing tags forever
	// (the source re-excites it) and the tagged area must oscillate
	// with the source — the refinement dynamics the paper reports.
	k := NewScalarWave()
	g := Geometry{Dx: 1.0 / 48}
	dom := geom.NewBox2(0, 0, 48, 48)
	p := field.NewPatch(dom, 1, 2)
	k.Init(p, g)
	dt := 0.4 * g.Dx / k.MaxSpeed()
	tm := 0.0
	// Skip the initial transient, then record tag counts over two
	// source periods.
	stepsPerPeriod := int(k.SourcePeriod / dt)
	var counts []int
	for s := 0; s < 4*stepsPerPeriod; s++ {
		field.FillPhysical(p, []*field.Patch{p}, dom, k.BC())
		k.Step(p, tm, dt, g)
		tm += dt
		if s >= 2*stepsPerPeriod {
			n := 0
			k.Tag(p, g, func(i, j int) { n++ })
			counts = append(counts, n)
		}
	}
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max == 0 {
		t.Fatal("driven wave stopped producing tags")
	}
	if max == min {
		t.Errorf("tag count constant at %d; expected oscillation", max)
	}
}

func meanTagRadius(k Kernel, p *field.Patch, g Geometry) float64 {
	var sum float64
	n := 0
	k.Tag(p, g, func(i, j int) {
		x, y := g.Center(i, j)
		sum += math.Hypot(x-0.5, y-0.5)
		n++
	})
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func TestBuckleyLeverettSaturationBounds(t *testing.T) {
	k := NewBuckleyLeverett()
	p := runSteps(k, 80, 32)
	p.Box.Cells(func(q geom.IntVect) {
		s := p.At(0, q[0], q[1])
		if s < 0 || s > 1 {
			t.Fatalf("saturation out of bounds at %v: %f", q, s)
		}
	})
}

func TestBuckleyLeverettFrontAdvances(t *testing.T) {
	k := NewBuckleyLeverett()
	p := runSteps(k, 120, 32)
	// Water must have spread beyond the initial slug radius.
	var maxR float64
	g := Geometry{Dx: 1.0 / 32}
	p.Box.Cells(func(q geom.IntVect) {
		if p.At(0, q[0], q[1]) > 0.3 {
			x, y := g.Center(q[0], q[1])
			if r := math.Hypot(x, y); r > maxR {
				maxR = r
			}
		}
	})
	if maxR < 0.2 {
		t.Errorf("BL front only reached r=%f", maxR)
	}
}

func TestBuckleyLeverettFractionalFlow(t *testing.T) {
	k := NewBuckleyLeverett()
	if k.frac(0) != 0 || k.frac(1) != 1 {
		t.Error("fractional flow endpoints wrong")
	}
	if k.frac(-0.5) != 0 || k.frac(1.5) != 1 {
		t.Error("fractional flow must clamp outside [0,1]")
	}
	// Monotone increasing.
	prev := -1.0
	for s := 0.0; s <= 1.0; s += 0.05 {
		f := k.frac(s)
		if f < prev {
			t.Fatalf("fractional flow not monotone at S=%f", s)
		}
		prev = f
	}
}

func TestEulerShockTube(t *testing.T) {
	k := NewEuler()
	p := runSteps(k, 60, 48)
	// Density must stay positive and finite everywhere.
	p.Box.Cells(func(q geom.IntVect) {
		rho := p.At(0, q[0], q[1])
		if rho <= 0 || math.IsNaN(rho) || math.IsInf(rho, 0) {
			t.Fatalf("bad density at %v: %f", q, rho)
		}
		_, _, _, pr := k.primitive(rho, p.At(1, q[0], q[1]), p.At(2, q[0], q[1]), p.At(3, q[0], q[1]))
		if pr <= 0 || math.IsNaN(pr) {
			t.Fatalf("bad pressure at %v: %f", q, pr)
		}
	})
}

func TestEulerShockMovesRight(t *testing.T) {
	k := NewEuler()
	g := Geometry{Dx: 1.0 / 48}
	dom := geom.NewBox2(0, 0, 48, 48)
	p := field.NewPatch(dom, 1, 4)
	k.Init(p, g)
	// Initial x-momentum is concentrated left of the shock.
	mx0 := momentumCentroidX(p)
	dt := 0.4 * g.Dx / k.MaxSpeed()
	for s := 0; s < 60; s++ {
		field.FillPhysical(p, []*field.Patch{p}, dom, k.BC())
		k.Step(p, 0, dt, g)
	}
	mx1 := momentumCentroidX(p)
	if mx1 <= mx0 {
		t.Errorf("shock momentum centroid did not advance: %f -> %f", mx0, mx1)
	}
}

func momentumCentroidX(p *field.Patch) float64 {
	var m, mx float64
	p.Box.Cells(func(q geom.IntVect) {
		v := math.Abs(p.At(1, q[0], q[1]))
		m += v
		mx += v * float64(q[0])
	})
	if m == 0 {
		return 0
	}
	return mx / m
}

func TestEulerRankineHugoniotInit(t *testing.T) {
	// The post-shock density from the initializer must satisfy the
	// normal-shock relation for the configured pressure ratio.
	k := NewEuler()
	g := Geometry{Dx: 1.0 / 32}
	p := field.NewPatch(geom.NewBox2(0, 0, 32, 32), 1, 4)
	k.Init(p, g)
	rho := p.At(0, 1, 16)
	gam, pr := k.Gamma, k.ShockPressureRatio
	want := ((gam+1)*pr + (gam - 1)) / ((gam-1)*pr + (gam + 1))
	if math.Abs(rho-want) > 1e-12 {
		t.Errorf("post-shock density = %f, want %f", rho, want)
	}
	// Heavy fluid on the right.
	if p.At(0, 30, 16) != 3 {
		t.Errorf("heavy-fluid density = %f, want 3", p.At(0, 30, 16))
	}
}

func TestEulerConservedPrimitiveRoundTrip(t *testing.T) {
	k := NewEuler()
	st := k.conserved(1.2, 0.3, -0.4, 2.5)
	r, u, v, p := k.primitive(st[0], st[1], st[2], st[3])
	if math.Abs(r-1.2) > 1e-12 || math.Abs(u-0.3) > 1e-12 ||
		math.Abs(v+0.4) > 1e-12 || math.Abs(p-2.5) > 1e-12 {
		t.Errorf("round trip = (%f,%f,%f,%f)", r, u, v, p)
	}
}

func TestKernelMetadata(t *testing.T) {
	kernels := []Kernel{NewTransport(), NewScalarWave(), NewBuckleyLeverett(), NewEuler()}
	names := map[string]bool{}
	for _, k := range kernels {
		if k.NComp() < 1 || k.Ghost() < 1 || k.MaxSpeed() <= 0 {
			t.Errorf("%s: bad metadata", k.Name())
		}
		if names[k.Name()] {
			t.Errorf("duplicate kernel name %s", k.Name())
		}
		names[k.Name()] = true
	}
	for _, want := range []string{"TP2D", "SC2D", "BL2D", "RM2D"} {
		if !names[want] {
			t.Errorf("missing kernel %s", want)
		}
	}
}

func TestGeometryCenter(t *testing.T) {
	g := Geometry{Dx: 0.25}
	x, y := g.Center(0, 3)
	if x != 0.125 || y != 0.875 {
		t.Errorf("Center = (%f,%f)", x, y)
	}
}
