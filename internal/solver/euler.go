package solver

import (
	"math"

	"samr/internal/field"
)

// Euler is the RM2D kernel: the 2-D compressible Euler equations solved
// with a first-order Rusanov (local Lax–Friedrichs) finite-volume scheme.
// The initial condition is a Richtmyer–Meshkov configuration: a planar
// shock travelling in +x towards a sinusoidally perturbed density
// interface. As the shock crosses the interface the perturbation grows
// into the fingering instability, driving the irregular refinement
// dynamics the paper reports for RM2D (Figure 4).
//
// Components: 0 = rho, 1 = rho*u, 2 = rho*v, 3 = E (total energy).
type Euler struct {
	// Gamma is the ratio of specific heats.
	Gamma float64
	// MachShock controls the strength of the incident shock via the
	// post-shock pressure ratio.
	ShockPressureRatio float64
	// Amplitude and Modes shape the interface perturbation.
	Amplitude float64
	Modes     int
	// TagThreshold is the undivided density-gradient threshold.
	TagThreshold float64
}

// NewEuler returns the RM2D kernel with a Mach ~1.5 shock and a
// three-mode interface perturbation.
func NewEuler() *Euler {
	return &Euler{
		Gamma:              1.4,
		ShockPressureRatio: 2.5,
		Amplitude:          0.03,
		Modes:              3,
		TagThreshold:       0.06,
	}
}

func (k *Euler) Name() string { return "RM2D" }
func (k *Euler) NComp() int   { return 4 }
func (k *Euler) Ghost() int   { return 1 }
func (k *Euler) BC() field.BC { return field.BCOutflow }

// MaxSpeed bounds |u| + c for the shocked state.
func (k *Euler) MaxSpeed() float64 { return 4.0 }

// primitive converts the conserved state to (rho, u, v, p).
func (k *Euler) primitive(rho, mu, mv, e float64) (r, u, v, p float64) {
	if rho < 1e-10 {
		rho = 1e-10
	}
	u, v = mu/rho, mv/rho
	p = (k.Gamma - 1) * (e - 0.5*rho*(u*u+v*v))
	if p < 1e-10 {
		p = 1e-10
	}
	return rho, u, v, p
}

// conserved converts the primitive state to the conserved vector.
func (k *Euler) conserved(rho, u, v, p float64) [4]float64 {
	return [4]float64{
		rho, rho * u, rho * v,
		p/(k.Gamma-1) + 0.5*rho*(u*u+v*v),
	}
}

func (k *Euler) Init(p *field.Patch, g Geometry) {
	// Pre-shock ambient: rho=1, p=1, at rest. Heavy fluid (rho=3)
	// right of the perturbed interface at x ~ 0.55. Shocked state left
	// of x = 0.35 moving right (Rankine–Hugoniot for the pressure
	// ratio).
	gam := k.Gamma
	pr := k.ShockPressureRatio
	// Post-shock state from the normal-shock relations with p1=1,rho1=1.
	rho2 := ((gam+1)*pr + (gam - 1)) / ((gam-1)*pr + (gam + 1))
	u2 := (pr - 1) * math.Sqrt(2/(gam*((gam+1)*pr+(gam-1))))
	shocked := k.conserved(rho2, u2, 0, pr)
	light := k.conserved(1, 0, 0, 1)
	heavy := k.conserved(3, 0, 0, 1)
	gb := p.GrownBox()
	var rows [4][]float64
	for j := gb.Lo[1]; j < gb.Hi[1]; j++ {
		for c := 0; c < 4; c++ {
			rows[c] = p.Row(c, j)
		}
		_, y := g.Center(0, j)
		// The interface position depends only on y; hoist it.
		iface := 0.55 + k.Amplitude*math.Cos(2*math.Pi*float64(k.Modes)*y)
		for i := range rows[0] {
			x, _ := g.Center(gb.Lo[0]+i, 0)
			var st [4]float64
			switch {
			case x < 0.35: // shocked region
				st = shocked
			case x < iface: // ambient light fluid
				st = light
			default: // heavy fluid
				st = heavy
			}
			for c := 0; c < 4; c++ {
				rows[c][i] = st[c]
			}
		}
	}
}

// flux returns the x-direction physical flux of the state.
func (k *Euler) flux(rho, mu, mv, e float64) [4]float64 {
	_, u, _, pr := k.primitive(rho, mu, mv, e)
	return [4]float64{
		mu,
		mu*u + pr,
		mv * u,
		(e + pr) * u,
	}
}

// rusanov computes the Rusanov numerical flux between left and right
// states for the axis along which the states are oriented. For the y
// direction callers swap the momentum components.
func (k *Euler) rusanov(l, r [4]float64) [4]float64 {
	lr, lu, _, lp := k.primitive(l[0], l[1], l[2], l[3])
	rr, ru, _, rp := k.primitive(r[0], r[1], r[2], r[3])
	cl := math.Sqrt(k.Gamma * lp / lr)
	cr := math.Sqrt(k.Gamma * rp / rr)
	smax := math.Max(math.Abs(lu)+cl, math.Abs(ru)+cr)
	fl := k.flux(l[0], l[1], l[2], l[3])
	fr := k.flux(r[0], r[1], r[2], r[3])
	var out [4]float64
	for c := 0; c < 4; c++ {
		out[c] = 0.5*(fl[c]+fr[c]) - 0.5*smax*(r[c]-l[c])
	}
	return out
}

// gather returns the conserved vector at row offset o of the four
// component rows.
func gather(rows *[4][]float64, o int) [4]float64 {
	return [4]float64{rows[0][o], rows[1][o], rows[2][o], rows[3][o]}
}

// swapMom exchanges the momentum components, mapping a y-oriented state
// to the x-oriented frame the 1-D flux expects.
func swapMom(s [4]float64) [4]float64 { return [4]float64{s[0], s[2], s[1], s[3]} }

func (k *Euler) Step(p *field.Patch, t, dt float64, g Geometry) {
	old := p.Clone()
	defer old.Release()
	lam := dt / g.Dx
	b := p.Box
	off := -p.GrownBox().Lo[0]
	var rm, rc, rp, dst [4][]float64
	for j := b.Lo[1]; j < b.Hi[1]; j++ {
		for c := 0; c < 4; c++ {
			rm[c] = old.Row(c, j-1)
			rc[c] = old.Row(c, j)
			rp[c] = old.Row(c, j+1)
			dst[c] = p.Row(c, j)
		}
		for i := b.Lo[0]; i < b.Hi[0]; i++ {
			o := i + off
			c0 := gather(&rc, o)
			// X-direction fluxes.
			fxm := k.rusanov(gather(&rc, o-1), c0)
			fxp := k.rusanov(c0, gather(&rc, o+1))
			// Y-direction fluxes in the swapped frame.
			fym := k.rusanov(swapMom(gather(&rm, o)), swapMom(c0))
			fyp := k.rusanov(swapMom(c0), swapMom(gather(&rp, o)))
			fym, fyp = swapMom(fym), swapMom(fyp)
			for c := 0; c < 4; c++ {
				dst[c][o] = c0[c] - lam*(fxp[c]-fxm[c]) - lam*(fyp[c]-fym[c])
			}
			// Positivity floor on density and pressure.
			if dst[0][o] < 1e-8 {
				dst[0][o] = 1e-8
			}
		}
	}
}

func (k *Euler) Tag(p *field.Patch, g Geometry, tag func(i, j int)) {
	tagAboveGrad(p, 0, k.TagThreshold, tag)
}
