// Package solver implements the numerical kernels of the paper's four
// SAMR evaluation applications:
//
//   - TP2D: 2-D linear transport (the GrACE TportAMR benchmark kernel)
//   - SC2D: 2-D scalar wave equation (the hyperbolic part of the Cactus
//     Scalarwave numerical-relativity kernel)
//   - BL2D: 2-D Buckley–Leverett two-phase flow (the IPARS oil–water
//     kernel)
//   - RM2D: 2-D compressible Euler with a shocked, perturbed interface
//     (the VTF Richtmyer–Meshkov kernel)
//
// Each kernel is a first-order explicit finite-volume / finite-difference
// update on one patch with a ghost halo. Numerical sophistication is
// deliberately modest: the kernels exist to drive realistic adaptive
// refinement dynamics (moving fronts, oscillating rings, fingering
// shocks), which is all the partitioning model consumes.
//
// # Execution model
//
// The kernels are written over field.Patch row slices (Row/RowSpan):
// every inner loop walks contiguous storage with the index math and
// bounds checks hoisted out of the cell loop, instead of paying At/Set
// offset recomputation per stencil read. Step clones the patch into a
// free-listed scratch slab, reads the clone, and writes only the
// interior of the live patch; Init and the halo fills are the only
// writers of ghost cells. A kernel invocation touches exactly one
// patch, so the AMR driver may run Step/Init/Tag on distinct patches
// concurrently — results are bit-identical to a sequential sweep.
package solver

import (
	"math"

	"samr/internal/field"
)

// Geometry locates a patch in physical space: the physical domain is the
// unit square and cell (i, j) on a level with spacing Dx has its centre
// at ((i+0.5)*Dx, (j+0.5)*Dx).
type Geometry struct {
	// Dx is the level's cell spacing.
	Dx float64
}

// Center returns the physical coordinates of cell (i, j)'s centre.
func (g Geometry) Center(i, j int) (x, y float64) {
	return (float64(i) + 0.5) * g.Dx, (float64(j) + 0.5) * g.Dx
}

// Kernel is one application's numerics on a single patch.
type Kernel interface {
	// Name is the application identifier used in traces ("TP2D", ...).
	Name() string
	// NComp is the number of solution components.
	NComp() int
	// Ghost is the halo width the Step stencil requires.
	Ghost() int
	// BC is the physical boundary treatment.
	BC() field.BC
	// MaxSpeed bounds the fastest characteristic; the driver sets
	// dt = CFL * dx / MaxSpeed.
	MaxSpeed() float64
	// Init writes the initial condition on the patch interior and halo.
	Init(p *field.Patch, g Geometry)
	// Step advances the patch interior by dt, reading the halo. t is
	// the physical time at the start of the step (kernels with
	// time-dependent forcing use it).
	Step(p *field.Patch, t, dt float64, g Geometry)
	// Tag invokes tag for every interior cell needing refinement.
	Tag(p *field.Patch, g Geometry, tag func(i, j int))
}

// tagAboveGrad invokes tag for every interior cell whose
// centred-difference gradient magnitude of component c — the undivided
// difference, the standard SAMR refinement indicator — exceeds
// threshold. All four kernels share this indicator.
func tagAboveGrad(p *field.Patch, c int, threshold float64, tag func(i, j int)) {
	b := p.Box
	off := -p.GrownBox().Lo[0]
	for j := b.Lo[1]; j < b.Hi[1]; j++ {
		rm := p.Row(c, j-1)
		rc := p.Row(c, j)
		rp := p.Row(c, j+1)
		for i := b.Lo[0]; i < b.Hi[0]; i++ {
			o := i + off
			dx := (rc[o+1] - rc[o-1]) / 2
			dy := (rp[o] - rm[o]) / 2
			if math.Sqrt(dx*dx+dy*dy) > threshold {
				tag(i, j)
			}
		}
	}
}

// Transport is the TP2D kernel: u_t + a(x,y)·grad(u) = 0 with a rigid
// rotation velocity field about the domain centre, advecting a Gaussian
// pulse forever around the domain. Upwind differencing, periodic domain.
type Transport struct {
	// TagThreshold is the undivided gradient magnitude above which a
	// cell is tagged.
	TagThreshold float64
}

// NewTransport returns the TP2D kernel with its standard threshold.
func NewTransport() *Transport { return &Transport{TagThreshold: 0.02} }

func (k *Transport) Name() string      { return "TP2D" }
func (k *Transport) NComp() int        { return 1 }
func (k *Transport) Ghost() int        { return 1 }
func (k *Transport) BC() field.BC      { return field.BCPeriodic }
func (k *Transport) MaxSpeed() float64 { return 2 * math.Pi * 0.75 }

// velocityX and velocityY are the components of the rotation field at
// (x, y) — solid-body rotation of period 1 about (0.5, 0.5). ax
// depends only on y and ay only on x, which is what lets Step hoist ax
// out of each row; these two are the single definition of the field.
func (k *Transport) velocityX(y float64) (ax float64) { return -2 * math.Pi * (y - 0.5) }
func (k *Transport) velocityY(x float64) (ay float64) { return 2 * math.Pi * (x - 0.5) }

func (k *Transport) Init(p *field.Patch, g Geometry) {
	gb := p.GrownBox()
	for j := gb.Lo[1]; j < gb.Hi[1]; j++ {
		row := p.Row(0, j)
		_, y := g.Center(0, j)
		dy := y - 0.25
		for i := range row {
			x, _ := g.Center(gb.Lo[0]+i, 0)
			dx := x - 0.5
			row[i] = math.Exp(-(dx*dx + dy*dy) / (2 * 0.05 * 0.05))
		}
	}
}

func (k *Transport) Step(p *field.Patch, t, dt float64, g Geometry) {
	old := p.Clone()
	defer old.Release()
	b := p.Box
	off := -p.GrownBox().Lo[0]
	for j := b.Lo[1]; j < b.Hi[1]; j++ {
		_, y := g.Center(0, j)
		// The x-velocity depends only on y; hoist it out of the row.
		ax := k.velocityX(y)
		rm := old.Row(0, j-1)
		rc := old.Row(0, j)
		rp := old.Row(0, j+1)
		dst := p.Row(0, j)
		for i := b.Lo[0]; i < b.Hi[0]; i++ {
			o := i + off
			x, _ := g.Center(i, 0)
			ay := k.velocityY(x)
			var dudx, dudy float64
			if ax > 0 {
				dudx = (rc[o] - rc[o-1]) / g.Dx
			} else {
				dudx = (rc[o+1] - rc[o]) / g.Dx
			}
			if ay > 0 {
				dudy = (rc[o] - rm[o]) / g.Dx
			} else {
				dudy = (rp[o] - rc[o]) / g.Dx
			}
			dst[o] = rc[o] - dt*(ax*dudx+ay*dudy)
		}
	}
}

func (k *Transport) Tag(p *field.Patch, g Geometry, tag func(i, j int)) {
	tagAboveGrad(p, 0, k.TagThreshold, tag)
}

// ScalarWave is the SC2D kernel: the second-order wave equation
// u_tt = c^2 lap(u) written as the first-order system (u, v = u_t),
// driven by a compact oscillating source at the domain centre (the
// periodically excited field of a numerical-relativity scalar-wave
// test). Expanding wave rings are absorbed by a sponge layer near the
// boundary, so the refined region is a set of annuli that pulse with
// the source period — the oscillatory refinement dynamics the paper
// reports for SC2D. Components: 0 = u, 1 = v.
type ScalarWave struct {
	// C is the wave speed.
	C float64
	// SourcePeriod is the oscillation period of the central source.
	SourcePeriod float64
	// SourceAmp scales the source strength.
	SourceAmp float64
	// Damping is the lossy-medium attenuation rate: old rings fade so
	// the refined region stays a bounded set of recent annuli.
	Damping float64
	// TagThreshold is the undivided gradient threshold on u.
	TagThreshold float64
}

// NewScalarWave returns the SC2D kernel.
func NewScalarWave() *ScalarWave {
	return &ScalarWave{C: 1.0, SourcePeriod: 0.2, SourceAmp: 1, Damping: 2.5, TagThreshold: 0.08}
}

func (k *ScalarWave) Name() string      { return "SC2D" }
func (k *ScalarWave) NComp() int        { return 2 }
func (k *ScalarWave) Ghost() int        { return 1 }
func (k *ScalarWave) BC() field.BC      { return field.BCOutflow }
func (k *ScalarWave) MaxSpeed() float64 { return k.C * 2 } // stability margin for the 2-D stencil

func (k *ScalarWave) Init(p *field.Patch, g Geometry) {
	gb := p.GrownBox()
	for j := gb.Lo[1]; j < gb.Hi[1]; j++ {
		u := p.Row(0, j)
		v := p.Row(1, j)
		_, y := g.Center(0, j)
		dy := y - 0.5
		for i := range u {
			x, _ := g.Center(gb.Lo[0]+i, 0)
			dx := x - 0.5
			u[i] = math.Exp(-(dx*dx + dy*dy) / (2 * 0.05 * 0.05))
			v[i] = 0
		}
	}
}

// sponge returns the absorption factor at (x, y): 1 in the interior,
// falling towards 0 inside a boundary layer of width 0.1.
func sponge(x, y float64) float64 {
	edge := math.Min(math.Min(x, 1-x), math.Min(y, 1-y))
	const w = 0.1
	if edge >= w {
		return 1
	}
	if edge < 0 {
		edge = 0
	}
	s := edge / w
	return s * s
}

func (k *ScalarWave) Step(p *field.Patch, t, dt float64, g Geometry) {
	old := p.Clone()
	defer old.Release()
	c2 := k.C * k.C
	inv := 1.0 / (g.Dx * g.Dx)
	omega := 2 * math.Pi / k.SourcePeriod
	damp := 1 - k.Damping*dt
	b := p.Box
	off := -p.GrownBox().Lo[0]
	for j := b.Lo[1]; j < b.Hi[1]; j++ {
		_, y := g.Center(0, j)
		dy2 := (y - 0.5) * (y - 0.5)
		um := old.Row(0, j-1)
		uc := old.Row(0, j)
		up := old.Row(0, j+1)
		vc := old.Row(1, j)
		dstU := p.Row(0, j)
		dstV := p.Row(1, j)
		for i := b.Lo[0]; i < b.Hi[0]; i++ {
			o := i + off
			x, _ := g.Center(i, 0)
			lap := (uc[o+1] + uc[o-1] + up[o] + um[o] - 4*uc[o]) * inv
			sp := sponge(x, y) * damp
			v := (vc[o] + dt*c2*lap) * sp
			u := (uc[o] + dt*v) * sp
			// Prescribed oscillator in the source region: the field there is
			// pinned to A sin(wt) with a compact profile, so the injected
			// amplitude is bounded by construction.
			dx2 := (x - 0.5) * (x - 0.5)
			r2 := dx2 + dy2
			if r2 < 0.004 {
				prof := math.Exp(-r2 / (2 * 0.03 * 0.03))
				u = k.SourceAmp * math.Sin(omega*(t+dt)) * prof
				v = k.SourceAmp * omega * math.Cos(omega*(t+dt)) * prof
			}
			dstV[o] = v
			dstU[o] = u
		}
	}
}

func (k *ScalarWave) Tag(p *field.Patch, g Geometry, tag func(i, j int)) {
	tagAboveGrad(p, 0, k.TagThreshold, tag)
}

// BuckleyLeverett is the BL2D kernel: water saturation transport
// S_t + div(f(S) u) = 0 with the Buckley–Leverett fractional-flow
// function f(S) = S^2 / (S^2 + M (1-S)^2) and a five-spot-style radial
// velocity field from an injection well in one corner towards a
// production well in the opposite corner. The injection rate follows a
// cyclic schedule (as in water-alternating injection practice), which —
// together with the sharpening/spreading of the saturation front —
// produces the oscillatory partitioning dynamics the paper shows for
// BL2D (Figures 1 and 5).
type BuckleyLeverett struct {
	// M is the water/oil mobility ratio.
	M float64
	// CyclePeriod is the injection-schedule period in simulation time.
	CyclePeriod float64
	// TagThreshold is the undivided gradient threshold on S.
	TagThreshold float64
}

// NewBuckleyLeverett returns the BL2D kernel.
func NewBuckleyLeverett() *BuckleyLeverett {
	return &BuckleyLeverett{M: 0.5, CyclePeriod: 0.25, TagThreshold: 0.02}
}

func (k *BuckleyLeverett) Name() string      { return "BL2D" }
func (k *BuckleyLeverett) NComp() int        { return 1 }
func (k *BuckleyLeverett) Ghost() int        { return 1 }
func (k *BuckleyLeverett) BC() field.BC      { return field.BCOutflow }
func (k *BuckleyLeverett) MaxSpeed() float64 { return 3.0 }

// frac is the Buckley–Leverett fractional flow function.
func (k *BuckleyLeverett) frac(s float64) float64 {
	if s <= 0 {
		return 0
	}
	if s >= 1 {
		return 1
	}
	s2 := s * s
	o := 1 - s
	return s2 / (s2 + k.M*o*o)
}

// rateAt is the cyclic injection schedule: the rate swings between 0.4
// and 1.6 of nominal over one CyclePeriod (water-alternating
// injection). It depends only on t, so Step hoists it out of the cell
// loop.
func (k *BuckleyLeverett) rateAt(t float64) float64 {
	return 1.0 + 0.6*math.Sin(2*math.Pi*t/k.CyclePeriod)
}

// velocityRate is the five-spot field — source at (0,0), sink at (1,1),
// magnitude decaying with distance from the injector as in radial flow
// — scaled by the already-evaluated injection rate rateAt(t).
func (k *BuckleyLeverett) velocityRate(x, y, rate float64) (ux, uy float64) {
	r2 := x*x + y*y + 0.01
	s2 := (1-x)*(1-x) + (1-y)*(1-y) + 0.01
	// Superpose source (at origin) and sink (at far corner).
	ux = rate * (x/r2 + (1-x)/s2) * 0.25
	uy = rate * (y/r2 + (1-y)/s2) * 0.25
	return ux, uy
}

func (k *BuckleyLeverett) Init(p *field.Patch, g Geometry) {
	gb := p.GrownBox()
	for j := gb.Lo[1]; j < gb.Hi[1]; j++ {
		row := p.Row(0, j)
		_, y := g.Center(0, j)
		y2 := y * y
		for i := range row {
			x, _ := g.Center(gb.Lo[0]+i, 0)
			// Water slug near the injector, oil elsewhere.
			if x*x+y2 < 0.02 {
				row[i] = 1.0
			} else {
				row[i] = 0.0
			}
		}
	}
}

func (k *BuckleyLeverett) Step(p *field.Patch, t, dt float64, g Geometry) {
	old := p.Clone()
	defer old.Release()
	rate := k.rateAt(t)
	lam := dt / g.Dx
	b := p.Box
	off := -p.GrownBox().Lo[0]
	for j := b.Lo[1]; j < b.Hi[1]; j++ {
		_, y := g.Center(0, j)
		y2 := y * y
		rm := old.Row(0, j-1)
		rc := old.Row(0, j)
		rp := old.Row(0, j+1)
		dst := p.Row(0, j)
		for i := b.Lo[0]; i < b.Hi[0]; i++ {
			o := i + off
			x, _ := g.Center(i, 0)
			ux, uy := k.velocityRate(x, y, rate)
			// Upwind flux differencing of f(S) u; the centre flux is
			// shared by both axes.
			fc := k.frac(rc[o])
			var dfx, dfy float64
			if ux > 0 {
				dfx = fc - k.frac(rc[o-1])
			} else {
				dfx = k.frac(rc[o+1]) - fc
			}
			if uy > 0 {
				dfy = fc - k.frac(rm[o])
			} else {
				dfy = k.frac(rp[o]) - fc
			}
			s := rc[o] - lam*(ux*dfx+uy*dfy)
			// Injection well keeps the near-origin region saturated.
			if x*x+y2 < 0.005 {
				s = 1.0
			}
			if s < 0 {
				s = 0
			}
			if s > 1 {
				s = 1
			}
			dst[o] = s
		}
	}
}

func (k *BuckleyLeverett) Tag(p *field.Patch, g Geometry, tag func(i, j int)) {
	tagAboveGrad(p, 0, k.TagThreshold, tag)
}
