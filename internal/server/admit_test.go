package server

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"samr/internal/admit"
)

// admitTestConfig enables admission with roomy limits so only the
// injected/forced paths shed.
func admitTestConfig() Config {
	return Config{MaxInFlight: 8, QueueDepth: 8}
}

// postTenant posts with admission headers.
func postTenant(t *testing.T, url, tenant string, deadlineMs int, req, resp any) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest("POST", url, jsonReader(t, body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		hr.Header.Set(TenantHeader, tenant)
	}
	if deadlineMs > 0 {
		hr.Header.Set(DeadlineHeader, strconv.Itoa(deadlineMs))
	}
	r, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	raw, _ := io.ReadAll(r.Body)
	if resp != nil && r.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, resp); err != nil {
			t.Fatalf("decoding %s response: %v\n%s", url, err, raw)
		}
	}
	r.Body = io.NopCloser(jsonReader(t, raw))
	return r
}

func jsonReader(t *testing.T, b []byte) io.Reader {
	t.Helper()
	return &sliceReader{b: b}
}

type sliceReader struct{ b []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// checkShedResponse asserts the documented 429 wire shape: JSON error
// body, Retry-After in whole seconds >= 1, and the reason header.
func checkShedResponse(t *testing.T, r *http.Response, wantReason string) {
	t.Helper()
	if r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", r.StatusCode)
	}
	ra := r.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want integer seconds >= 1", ra)
	}
	if got := r.Header.Get(ShedHeader); got != wantReason {
		t.Errorf("%s = %q, want %q", ShedHeader, got, wantReason)
	}
	var e ErrorResponse
	if err := json.NewDecoder(r.Body).Decode(&e); err != nil || e.Error == "" {
		t.Errorf("429 body not the documented JSON error: %v %+v", err, e)
	}
}

// TestInjectedShedNeverExecutesPartitioner is the fault-injection
// acceptance test: a request shed through the SetOnAdmit hook must
// return the documented 429 without running any partitioner, without
// touching the partition cache, and without leaking goroutines.
func TestInjectedShedNeverExecutesPartitioner(t *testing.T) {
	srv, ts := newTestServer(t, admitTestConfig())
	srv.SetOnAdmit(func(ev admit.Event) error {
		if ev.Tenant == "evil" {
			return &admit.ShedError{Reason: admit.ReasonInjected, RetryAfter: 3 * time.Second}
		}
		return nil
	})

	// Close keep-alive connections before counting so lingering HTTP
	// conn goroutines (client and server side) don't mask a real leak.
	settle := func() int {
		http.DefaultClient.CloseIdleConnections()
		runtime.GC()
		return runtime.NumGoroutine()
	}
	baseline := settle()

	h := testHierarchy(1)
	req := PartitionRequest{Hierarchy: &h, Partitioner: "nature+fable", NProcs: 8}
	for i := 0; i < 8; i++ {
		r := postTenant(t, ts.URL+"/v1/partition", "evil", 0, req, nil)
		checkShedResponse(t, r, admit.ReasonInjected)
		if got := r.Header.Get("Retry-After"); got != "3" {
			t.Errorf("Retry-After = %q, want 3 (the injected hint)", got)
		}
	}

	// No partitioner ran, nothing entered any cache.
	if hits, misses, shared := srv.Cache().Stats(); hits != 0 || misses != 0 || shared != 0 {
		t.Fatalf("shed requests reached the cache: hits=%d misses=%d shared=%d", hits, misses, shared)
	}
	if n := srv.Cache().Len(); n != 0 {
		t.Fatalf("shed requests stored %d cache entries", n)
	}
	st := srv.Admission().Stats()
	if st.ShedInjected != 8 || st.Admitted != 0 {
		t.Fatalf("admission stats = %+v, want 8 injected sheds / 0 admits", st)
	}
	if ten := st.Tenants["evil"]; ten.Shed != 8 || ten.InFlight != 0 {
		t.Fatalf("evil tenant stats = %+v, want 8 sheds / 0 in flight", ten)
	}

	// Goroutine count settles back to baseline: the shed path spawned
	// nothing that outlives the request.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := settle(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A non-injected tenant still computes normally afterwards.
	var resp PartitionResponse
	if r := postTenant(t, ts.URL+"/v1/partition", "good", 0, req, &resp); r.StatusCode != http.StatusOK {
		t.Fatalf("good tenant status = %d after evil's sheds", r.StatusCode)
	}
}

// TestQueueFullShedBeforeCompute: with the single slot held by a
// blocked compute and no queue, the next request is shed with the
// queue-full 429 — and its shed path never starts a partitioner.
func TestQueueFullShedBeforeCompute(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInFlight: 1, QueueDepth: 1})
	holderIn := make(chan struct{})
	holderGo := make(chan struct{})
	var leaders atomic.Int32
	// Block only the first compute leader (the slot holder); later
	// leaders (the queued request, once granted) run through.
	srv.Cache().SetOnFlight(func(k CacheKey, leader bool) {
		if leader && leaders.Add(1) == 1 {
			close(holderIn)
			<-holderGo
		}
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the slot holder, blocked inside its compute
		defer wg.Done()
		h := testHierarchy(0)
		postTenant(t, ts.URL+"/v1/partition", "", 0, PartitionRequest{Hierarchy: &h, Partitioner: "domain", NProcs: 4}, nil)
	}()
	<-holderIn

	// Fill the one queue slot with a second request.
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := testHierarchy(1)
		postTenant(t, ts.URL+"/v1/partition", "", 0, PartitionRequest{Hierarchy: &h, Partitioner: "domain", NProcs: 4}, nil)
	}()
	for srv.Admission().Stats().Queued != 1 {
		time.Sleep(100 * time.Microsecond)
	}

	// The third request finds cap reached and queue full: fast 429.
	h := testHierarchy(2)
	start := time.Now()
	r := postTenant(t, ts.URL+"/v1/partition", "", 0, PartitionRequest{Hierarchy: &h, Partitioner: "domain", NProcs: 4}, nil)
	shedLatency := time.Since(start)
	checkShedResponse(t, r, admit.ReasonQueueFull)
	if shedLatency > 2*time.Second {
		t.Errorf("shed took %v, want fail-fast", shedLatency)
	}

	close(holderGo)
	wg.Wait()
	// Exactly the two admitted requests computed; the shed one never
	// reached a partitioner.
	if _, misses, _ := srv.Cache().Stats(); misses != 2 {
		t.Errorf("partitioner executions = %d, want 2 (holder + queued; never the shed)", misses)
	}
	st := srv.Admission().Stats()
	if st.ShedQueueFull != 1 || st.Admitted != 2 {
		t.Errorf("admission stats = %+v, want 1 queue-full shed / 2 admits", st)
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("gauges after drain = %+v, want zero", st)
	}
}

// TestDeadlineBudgetShedsUpFront: a declared deadline budget smaller
// than the estimated queue wait sheds with 429 instead of queueing the
// request to die.
func TestDeadlineBudgetShedsUpFront(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInFlight: 1, QueueDepth: 8})
	holderIn := make(chan struct{})
	holderGo := make(chan struct{})
	var leaders atomic.Int32
	srv.Cache().SetOnFlight(func(k CacheKey, leader bool) {
		if leader && leaders.Add(1) == 1 {
			close(holderIn)
			<-holderGo
		}
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := testHierarchy(0)
		postTenant(t, ts.URL+"/v1/partition", "", 0, PartitionRequest{Hierarchy: &h, Partitioner: "domain", NProcs: 4}, nil)
	}()
	<-holderIn

	// 1ms of budget against a 100ms default service estimate: doomed.
	h := testHierarchy(1)
	r := postTenant(t, ts.URL+"/v1/partition", "", 1, PartitionRequest{Hierarchy: &h, Partitioner: "domain", NProcs: 4}, nil)
	checkShedResponse(t, r, admit.ReasonDeadline)

	close(holderGo)
	wg.Wait()
	// Only the holder computed; the doomed request never did.
	if _, misses, _ := srv.Cache().Stats(); misses != 1 {
		t.Errorf("partitioner executions = %d, want 1 (doomed request must not compute)", misses)
	}
	if st := srv.Admission().Stats(); st.ShedDeadline != 1 {
		t.Errorf("shed_deadline = %d, want 1", st.ShedDeadline)
	}
}

// TestTenantRateLimitIsolation: a tenant over its rate is throttled
// with 429 + Retry-After while other tenants are unaffected.
func TestTenantRateLimitIsolation(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInFlight: 8, QueueDepth: 8, TenantRate: 0.5, TenantBurst: 2})
	h := testHierarchy(3)
	req := PartitionRequest{Hierarchy: &h, Partitioner: "domain", NProcs: 4}

	for i := 0; i < 2; i++ {
		if r := postTenant(t, ts.URL+"/v1/partition", "alice", 0, req, nil); r.StatusCode != http.StatusOK {
			t.Fatalf("alice burst request %d: status %d", i, r.StatusCode)
		}
	}
	r := postTenant(t, ts.URL+"/v1/partition", "alice", 0, req, nil)
	checkShedResponse(t, r, admit.ReasonRateLimit)
	if secs, _ := strconv.Atoi(r.Header.Get("Retry-After")); secs < 1 || secs > 3 {
		t.Errorf("Retry-After = %q, want ~2s (one token at 0.5/s)", r.Header.Get("Retry-After"))
	}
	// Bob is unaffected by alice's exhausted bucket.
	if r := postTenant(t, ts.URL+"/v1/partition", "bob", 0, req, nil); r.StatusCode != http.StatusOK {
		t.Fatalf("bob status = %d, want 200 (tenant isolation)", r.StatusCode)
	}

	st := srv.Admission().Stats()
	if st.Tenants["alice"].Throttled != 1 || st.Tenants["bob"].Throttled != 0 {
		t.Errorf("tenant throttle counters = alice %+v bob %+v", st.Tenants["alice"], st.Tenants["bob"])
	}
}

// TestReadyzLifecycle pins the liveness/readiness split: /readyz is
// 200 when idle, 503 while the accept queue is saturated, 503 after
// BeginShutdown — and /healthz answers ok throughout.
func TestReadyzLifecycle(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInFlight: 1, QueueDepth: 1})

	checkReady := func(wantCode int, wantReason string) {
		t.Helper()
		r, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != wantCode {
			t.Fatalf("/readyz status = %d, want %d", r.StatusCode, wantCode)
		}
		var rr ReadyResponse
		if err := json.NewDecoder(r.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		if rr.Reason != wantReason {
			t.Errorf("/readyz reason = %q, want %q", rr.Reason, wantReason)
		}
	}
	checkHealth := func() {
		t.Helper()
		r, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("/healthz = %d, want 200 (liveness is independent of readiness)", r.StatusCode)
		}
	}

	checkReady(http.StatusOK, "")
	checkHealth()

	// Saturate: block the slot, fill the queue.
	holderIn := make(chan struct{})
	holderGo := make(chan struct{})
	var leaders atomic.Int32
	srv.Cache().SetOnFlight(func(k CacheKey, leader bool) {
		if leader && leaders.Add(1) == 1 {
			close(holderIn)
			<-holderGo
		}
	})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := testHierarchy(i)
			postTenant(t, ts.URL+"/v1/partition", "", 0, PartitionRequest{Hierarchy: &h, Partitioner: "domain", NProcs: 4}, nil)
		}(i)
		if i == 0 {
			<-holderIn
		}
	}
	for !srv.Admission().Saturated() {
		time.Sleep(100 * time.Microsecond)
	}
	checkReady(http.StatusServiceUnavailable, "saturated")
	checkHealth()

	close(holderGo)
	wg.Wait()
	checkReady(http.StatusOK, "")

	srv.BeginShutdown()
	checkReady(http.StatusServiceUnavailable, "draining")
	checkHealth()
}

// TestAdmissionDisabledIsTransparent: with MaxInFlight 0 the admission
// layer must vanish — no admission headers, no admission stats block,
// and partition responses byte-identical to an admission-enabled
// server's for the same request (the disabled path adds or removes
// nothing from the wire).
func TestAdmissionDisabledIsTransparent(t *testing.T) {
	_, tsOff := newTestServer(t, Config{})
	_, tsOn := newTestServer(t, admitTestConfig())

	h := testHierarchy(5)
	req := PartitionRequest{Hierarchy: &h, Partitioner: "domain-hilbert-u2", NProcs: 8}
	read := func(ts string) ([]byte, http.Header) {
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		r, err := http.Post(ts+"/v1/partition", "application/json", jsonReader(t, body))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("status %d", r.StatusCode)
		}
		raw, err := io.ReadAll(r.Body)
		if err != nil {
			t.Fatal(err)
		}
		return raw, r.Header
	}
	offBody, offHdr := read(tsOff.URL)
	onBody, _ := read(tsOn.URL)
	if string(offBody) != string(onBody) {
		t.Errorf("partition responses differ between admission off/on:\noff: %s\non:  %s", offBody, onBody)
	}
	for _, hdr := range []string{"Retry-After", ShedHeader} {
		if v := offHdr.Get(hdr); v != "" {
			t.Errorf("disabled server emitted %s=%q", hdr, v)
		}
	}

	// The disabled server's stats carry no admission block at all.
	r, err := http.Get(tsOff.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["admission"]; ok {
		t.Error("disabled server reports an admission stats block")
	}
	// SetOnAdmit is a no-op rather than a panic while disabled.
	srvOff, _ := newTestServer(t, Config{})
	srvOff.SetOnAdmit(func(admit.Event) error { return nil })
	if srvOff.Admission() != nil {
		t.Error("disabled server exposes an admission controller")
	}
}

// TestSimulateIsBatchClassAndGuarded: /v1/simulate passes through
// admission like the interactive endpoints (an injected shed reaches
// it) — the class split is about pool priority, not about bypassing
// the gate.
func TestSimulateIsBatchClassAndGuarded(t *testing.T) {
	srv, ts := newTestServer(t, admitTestConfig())
	srv.Registry().Register("synthetic", testTrace(4))
	var sawBatch bool
	srv.SetOnAdmit(func(ev admit.Event) error {
		if ev.Priority == admit.Batch {
			sawBatch = true
			return &admit.ShedError{Reason: admit.ReasonInjected, RetryAfter: time.Second}
		}
		return nil
	})
	r := postTenant(t, ts.URL+"/v1/simulate", "", 0, SimulateRequest{Trace: "synthetic", Partitioner: "domain", NProcs: 4}, nil)
	checkShedResponse(t, r, admit.ReasonInjected)
	if !sawBatch {
		t.Error("simulate request did not reach admission as Batch priority")
	}

	// Observability endpoints bypass admission even when everything
	// compute-shaped is shed.
	for _, path := range []string{"/v1/stats", "/v1/traces", "/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			t.Errorf("%s was shed; observability must bypass admission", path)
		}
	}
}
