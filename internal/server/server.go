// Package server is the partitioning-as-a-service layer: an HTTP JSON
// API over the repo's meta-partitioner, partitioner suite, and
// trace-driven simulator, built for long-running deployment (the
// ROADMAP's production-scale service) rather than batch CLI use.
//
// Endpoints:
//
//	POST /v1/select     classify hierarchies, return the meta-partitioner choice
//	POST /v1/partition  run a named partitioner at a processor count
//	POST /v1/simulate   trace-driven evaluation over a registered trace
//	GET  /v1/traces     list the trace registry
//	GET  /healthz       liveness
//
// Two properties make it a service rather than an RPC wrapper: results
// of /v1/partition are kept in a content-addressed LRU cache keyed by
// (hierarchy signature, partitioner, nprocs), so the repeated regrid
// states real SAMR runs produce are answered without recomputation; and
// batch work fans out over the process-wide internal/pool budget, so
// concurrent requests share the machine instead of oversubscribing it.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"samr/internal/core"
	"samr/internal/grid"
	"samr/internal/partition"
	"samr/internal/pool"
	"samr/internal/sim"
)

// Config carries the server's tunables; zero values select defaults.
type Config struct {
	// TraceDir is scanned for .trc files (empty = no file-backed traces).
	TraceDir string
	// CacheSize bounds the partition cache (results; default 256).
	CacheSize int
	// DefaultProcs is the processor count used when a request omits
	// nprocs (default 16, the paper's validation setup).
	DefaultProcs int
	// MaxProcs rejects absurd processor counts (default 1 << 16).
	MaxProcs int
	// PartitionCost seeds the dimension-II classification model
	// (seconds per repartitioning; default 2e-4).
	PartitionCost float64
	// Machine is the simulator's machine model (zero = DefaultMachine).
	Machine sim.Machine
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.DefaultProcs <= 0 {
		c.DefaultProcs = 16
	}
	if c.MaxProcs <= 0 {
		c.MaxProcs = 1 << 16
	}
	if c.PartitionCost <= 0 {
		c.PartitionCost = 2e-4
	}
	if c.Machine == (sim.Machine{}) {
		c.Machine = sim.DefaultMachine()
	}
	return c
}

// maxBodyBytes bounds request bodies; deep hierarchies are a few MB of
// JSON, so 64 MB leaves ample headroom without inviting abuse.
const maxBodyBytes = 64 << 20

// Server is the samrd HTTP service.
type Server struct {
	cfg      Config
	cache    *PartitionCache
	registry *TraceRegistry
	mux      *http.ServeMux
}

// New builds a server, loading every trace already present in
// cfg.TraceDir. A missing or unreadable directory is an error; an empty
// TraceDir is not.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		cache:    NewPartitionCache(cfg.CacheSize),
		registry: NewTraceRegistry(cfg.TraceDir),
	}
	if _, err := s.registry.LoadDir(); err != nil {
		return nil, err
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/select", s.handleSelect)
	s.mux.HandleFunc("POST /v1/partition", s.handlePartition)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("GET /v1/traces", s.handleTraces)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n")) //nolint:errcheck
	})
	return s, nil
}

// Registry exposes the trace registry (the daemon registers generated
// traces, tests inject synthetic ones).
func (s *Server) Registry() *TraceRegistry { return s.registry }

// Cache exposes the partition cache for stats reporting.
func (s *Server) Cache() *PartitionCache { return s.cache }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone is client's problem
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
		} else {
			writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		}
		return false
	}
	return true
}

// gatherHierarchies merges the single/batch forms of a request into one
// ordered slice of validated hierarchies.
func gatherHierarchies(single *Hierarchy, batch []Hierarchy) ([]*grid.Hierarchy, error) {
	ws := batch
	if single != nil {
		ws = append([]Hierarchy{*single}, batch...)
	}
	if len(ws) == 0 {
		return nil, fmt.Errorf("request carries no hierarchy")
	}
	out := make([]*grid.Hierarchy, len(ws))
	for i, w := range ws {
		h, err := w.toGrid()
		if err != nil {
			return nil, fmt.Errorf("hierarchy %d: %w", i, err)
		}
		out[i] = h
	}
	return out, nil
}

func (s *Server) checkProcs(w http.ResponseWriter, nprocs *int) bool {
	if *nprocs == 0 {
		*nprocs = s.cfg.DefaultProcs
	}
	if *nprocs < 1 || *nprocs > s.cfg.MaxProcs {
		writeErr(w, http.StatusBadRequest, "nprocs %d out of range [1, %d]", *nprocs, s.cfg.MaxProcs)
		return false
	}
	return true
}

// handleSelect classifies the submitted hierarchies in order through a
// fresh meta-partitioner, so a posted regrid sequence reproduces the
// in-process hysteresis behavior exactly.
func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req SelectRequest
	if !decode(w, r, &req) {
		return
	}
	hs, err := gatherHierarchies(req.Hierarchy, req.Hierarchies)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.checkProcs(w, &req.NProcs) {
		return
	}
	cost := req.PartitionCost
	if cost <= 0 {
		cost = s.cfg.PartitionCost
	}
	meta := core.NewMetaPartitioner(cost)
	resp := SelectResponse{Selections: make([]Selection, len(hs))}
	for i, h := range hs {
		slot := float64(h.Workload()) * s.cfg.Machine.CellTime / float64(req.NProcs)
		p := meta.Select(h, slot)
		sample, _ := meta.LastSample()
		resp.Selections[i] = selectionFrom(p, sample)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePartition runs the requested partitioner over every submitted
// hierarchy, fanning the batch out over the shared worker pool and
// serving repeated regrid states from the content-addressed cache.
func (s *Server) handlePartition(w http.ResponseWriter, r *http.Request) {
	var req PartitionRequest
	if !decode(w, r, &req) {
		return
	}
	canonical, err := ParsePartitioner(req.Partitioner)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	hs, err := gatherHierarchies(req.Hierarchy, req.Hierarchies)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.checkProcs(w, &req.NProcs) {
		return
	}

	name := canonical.Name()
	results := make([]PartitionResult, len(hs))
	pool.ForEach(pool.Workers(), len(hs), func(i int) {
		h := hs[i]
		key := CacheKey{Sig: h.Signature(), Partitioner: name, NProcs: req.NProcs}
		a, cached := s.cache.Get(key)
		if !cached {
			// A fresh instance per unit keeps stateful wrappers
			// (postmap) from sharing state across goroutines and keeps
			// every cached result a pure function of its key. The spec
			// already parsed once, so this cannot fail.
			p, _ := ParsePartitioner(req.Partitioner)
			a = p.Partition(h, req.NProcs)
			s.cache.Add(key, a)
		}
		res := PartitionResult{
			Signature:   key.Sig.String(),
			Partitioner: name,
			NProcs:      req.NProcs,
			Fragments:   make([]Fragment, len(a.Fragments)),
			Loads:       a.Loads(h),
			Imbalance:   a.Imbalance(h),
			Cached:      cached,
		}
		for j, f := range a.Fragments {
			res.Fragments[j] = Fragment{Level: f.Level, Box: fromGeomBox(f.Box), Owner: f.Owner}
		}
		results[i] = res
	})

	// Cache headers: the per-request disposition plus the cumulative
	// process-wide counters, so operators (and the acceptance test) can
	// watch hit rates without a metrics endpoint.
	nHit := 0
	for _, res := range results {
		if res.Cached {
			nHit++
		}
	}
	disposition := "miss"
	switch nHit {
	case len(results):
		disposition = "hit"
	case 0:
	default:
		disposition = "mixed"
	}
	hits, misses := s.cache.Stats()
	hdr := w.Header()
	hdr.Set("X-Samr-Cache", disposition)
	hdr.Set("X-Samr-Cache-Hits", strconv.FormatUint(hits, 10))
	hdr.Set("X-Samr-Cache-Misses", strconv.FormatUint(misses, 10))
	if len(results) == 1 {
		hdr.Set("X-Samr-Signature", results[0].Signature)
	}
	writeJSON(w, http.StatusOK, PartitionResponse{Results: results})
}

// handleSimulate replays a registered trace through the simulator
// (whose pipeline already fans out over the shared pool).
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if !decode(w, r, &req) {
		return
	}
	tr, ok := s.registry.Get(req.Trace)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown trace %q", req.Trace)
		return
	}
	if !s.checkProcs(w, &req.NProcs) {
		return
	}
	if req.Steps > 0 && req.Steps < len(tr.Snapshots) {
		trunc := *tr
		trunc.Snapshots = tr.Snapshots[:req.Steps]
		tr = &trunc
	}

	var res *sim.Result
	if req.Meta {
		meta := core.NewMetaPartitioner(s.cfg.PartitionCost)
		res = sim.SimulateTraceSelect(tr, func(step int, h *grid.Hierarchy) partition.Partitioner {
			slot := float64(h.Workload()) * s.cfg.Machine.CellTime / float64(req.NProcs)
			return meta.Select(h, slot)
		}, req.NProcs, s.cfg.Machine)
	} else {
		p, err := ParsePartitioner(req.Partitioner)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		res = sim.SimulateTrace(tr, p, req.NProcs, s.cfg.Machine)
	}

	resp := SimulateResponse{
		Trace:         req.Trace,
		Partitioner:   res.PartitionerName,
		NProcs:        res.NumProcs,
		Snapshots:     len(res.Steps),
		TotalEstTime:  res.TotalEstTime(),
		MeanImbalance: res.MeanImbalance(),
	}
	if req.IncludeSteps {
		resp.Steps = make([]StepMetrics, len(res.Steps))
		for i, sm := range res.Steps {
			resp.Steps[i] = stepMetricsFrom(sm)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, TracesResponse{Traces: s.registry.List()})
}
