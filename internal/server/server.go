// Package server is the partitioning-as-a-service layer: an HTTP JSON
// API over the repo's meta-partitioner, partitioner suite, and
// trace-driven simulator, built for long-running deployment (the
// ROADMAP's production-scale service) rather than batch CLI use.
//
// Endpoints:
//
//	POST /v1/select     classify hierarchies, return the meta-partitioner choice
//	POST /v1/partition  run a named partitioner at a processor count
//	POST /v1/simulate   trace-driven evaluation over a registered trace
//	POST /v1/session    open a streaming session (full hierarchy upload)
//	POST /v1/session/{id}/step  advance a session by a per-level delta, partition the result
//	DELETE /v1/session/{id}     close a session
//	GET  /v1/traces     list the trace registry
//	GET  /v1/stats      cache counters, in-flight requests, per-endpoint totals
//	GET  /healthz       liveness
//
// Three properties make it a service rather than an RPC wrapper.
// Results of /v1/partition are kept in a content-addressed LRU cache
// keyed by (hierarchy signature, partitioner, nprocs), so the repeated
// regrid states real SAMR runs produce are answered without
// recomputation — and concurrent identical misses are coalesced by a
// singleflight group on the same key, so a thundering herd computes
// once. Batch work fans out over the process-wide internal/pool
// budget, so concurrent requests share the machine instead of
// oversubscribing it. And every request is bounded by a context: the
// handler threads the request context (optionally capped by
// Config.RequestTimeout) down through pool dispatch, partitioners, and
// the simulator, so an abandoned or over-deadline request stops
// consuming CPU mid-batch instead of running to completion. A request
// whose deadline expires returns 504 with a JSON error; one whose
// client disconnected returns the nginx-conventional 499.
//
// # Overload behavior
//
// When Config.MaxInFlight is positive the compute endpoints
// (/v1/select, /v1/partition, /v1/simulate) sit behind the admission
// controller of internal/admit, applied after the body-size limit and
// before the request deadline is attached (body limit → admission →
// deadline → handler). A request that cannot be admitted — tenant over
// its rate (keyed by the X-Samr-Tenant header), accept queue full, or
// declared deadline budget (X-Samr-Deadline-Ms) smaller than the
// estimated queue wait — is shed with 429 Too Many Requests, a JSON
// error body, a Retry-After header (seconds), and an X-Samr-Shed
// header naming the reason, all before any partitioner runs. Admitted
// requests carry a pool dispatch class: select and partition are
// Interactive, simulate is Batch, so interactive regrid decisions
// preempt offline trace evaluation for the worker budget without
// starving it. GET /readyz reports 503 while the accept queue is
// saturated or shutdown has begun (BeginShutdown), so a fronting load
// balancer drains before requests are shed; GET /healthz stays pure
// liveness. With MaxInFlight zero (the default) admission is disabled
// and every response is exactly the pre-admission behavior.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"samr/internal/admit"
	"samr/internal/core"
	"samr/internal/fault"
	"samr/internal/geom"
	"samr/internal/grid"
	"samr/internal/partition"
	"samr/internal/pool"
	"samr/internal/sim"
	"samr/internal/tier"
)

// Config carries the server's tunables; zero values select defaults.
type Config struct {
	// TraceDir is scanned for .trc files (empty = no file-backed traces).
	TraceDir string
	// CacheSize bounds the partition cache (results; default 256).
	CacheSize int
	// DefaultProcs is the processor count used when a request omits
	// nprocs (default 16, the paper's validation setup).
	DefaultProcs int
	// MaxProcs rejects absurd processor counts (default 1 << 16).
	MaxProcs int
	// PartitionCost seeds the dimension-II classification model
	// (seconds per repartitioning; default 2e-4).
	PartitionCost float64
	// Machine is the simulator's machine model (zero = DefaultMachine).
	Machine sim.Machine
	// RequestTimeout caps each request's handling: the request context
	// is given this deadline and every layer below (pool dispatch,
	// partitioners, simulator) aborts once it expires. Zero disables
	// the cap (the client's own context still cancels).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 64 MB — deep
	// hierarchies are a few MB of JSON, so that is ample headroom
	// without inviting abuse).
	MaxBodyBytes int64
	// MaxInFlight caps concurrently admitted compute requests
	// (select/partition/simulate). Zero disables admission control
	// entirely: no queueing, no shedding, no per-tenant limits —
	// responses are byte-identical to the pre-admission server.
	MaxInFlight int
	// QueueDepth bounds requests waiting for an in-flight slot when
	// MaxInFlight is reached (default 4×MaxInFlight; meaningful only
	// with MaxInFlight > 0). Requests past the queue are shed with 429.
	QueueDepth int
	// TenantRate is each tenant's sustained admission rate in requests
	// per second, keyed by the X-Samr-Tenant header (0 disables tenant
	// rate limiting; meaningful only with MaxInFlight > 0).
	TenantRate float64
	// TenantBurst is each tenant's token-bucket burst capacity
	// (default ceil(TenantRate)).
	TenantBurst int
	// TierDir roots the fleet tier's disk store. With both TierDir and
	// TierPeers empty the tier is fully disabled: no tier routes are
	// registered and every response is byte-identical to a tier-less
	// server.
	TierDir string
	// TierMaxBytes bounds the tier disk store (<= 0 selects 256 MiB).
	TierMaxBytes int64
	// TierPeers lists every fleet member's base URL — the same list on
	// every daemon; each key's home is chosen by rendezvous hashing
	// over this set.
	TierPeers []string
	// TierSelf is this daemon's own base URL as it appears in
	// TierPeers, so keys it owns are not fetched from itself over HTTP.
	TierSelf string
	// TierRepair enables anti-entropy repair at this interval (0
	// disables it — the default; requires the disk store, peers, and
	// TierSelf). With repair on, the daemon serves its key manifest at
	// GET /v1/tier/manifest and periodically pulls the keys it owns
	// under rendezvous hashing from its peers, so a wiped or rejoined
	// member converges instead of serving cold forever.
	TierRepair time.Duration
	// TierRepairKeys bounds keys pulled per repair round (default 256).
	TierRepairKeys int
	// TierSimSteps additionally spills simulator step artifacts
	// through the fleet tier (stateless steps only; the step cache is
	// process-wide, so the last server wired wins).
	TierSimSteps bool
	// TierSessions makes streaming sessions fleet-resumable: after
	// every committed step the session's state is snapshotted through
	// the tier's store/offer path, and a step or delete naming a token
	// this daemon does not hold consults the tier before answering 410
	// — on a snapshot hit the session is rebuilt and served under the
	// same token (X-Samr-Session-Resumed: 1). Sessions remain soft
	// state: a tier miss still answers 410 and the client re-creates.
	// Requires the tier (TierDir and/or TierPeers); with it off every
	// response is byte-identical to a build without durable sessions.
	TierSessions bool
	// Faults arms the tier's fault-injection points for chaos testing
	// (nil in production: the registry is zero-cost when disarmed).
	Faults *fault.Injector
	// MaxSessions bounds the streaming-session table (default 256);
	// past it the least recently used session is evicted and its next
	// step answers 410 session-expired.
	MaxSessions int
	// SessionTTL expires sessions idle longer than this (default 15m).
	SessionTTL time.Duration
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.DefaultProcs <= 0 {
		c.DefaultProcs = 16
	}
	if c.MaxProcs <= 0 {
		c.MaxProcs = 1 << 16
	}
	if c.PartitionCost <= 0 {
		c.PartitionCost = 2e-4
	}
	if c.Machine == (sim.Machine{}) {
		c.Machine = sim.DefaultMachine()
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxInFlight > 0 && c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxInFlight
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 15 * time.Minute
	}
	return c
}

// Request headers of the admission layer.
const (
	// TenantHeader names the requesting tenant for per-tenant rate
	// limits and accounting; absent means the anonymous tenant.
	TenantHeader = "X-Samr-Tenant"
	// DeadlineHeader declares the client's total deadline budget for
	// the request in milliseconds. Admission sheds the request up
	// front (429, ReasonDeadline) when the estimated queue wait
	// already exceeds the budget, and the remaining budget caps the
	// handler deadline like Config.RequestTimeout (whichever is
	// smaller wins). Invalid or absent values are ignored.
	DeadlineHeader = "X-Samr-Deadline-Ms"
	// ShedHeader carries the shed reason on 429 responses.
	ShedHeader = "X-Samr-Shed"
)

// StatusClientClosedRequest is the nginx-conventional status for a
// request whose client went away before a response was produced. It is
// recorded in logs/metrics; the disconnected client never sees it.
const StatusClientClosedRequest = 499

// endpointStats is one endpoint's cumulative request/error counters.
type endpointStats struct {
	requests atomic.Uint64
	errors   atomic.Uint64
}

// Server is the samrd HTTP service.
type Server struct {
	cfg      Config
	cache    *PartitionCache
	registry *TraceRegistry
	mux      *http.ServeMux
	admit    *admit.Controller // nil = admission disabled

	tier         *tier.Tier     // nil = fleet tier disabled
	repairer     *tier.Repairer // nil = anti-entropy repair disabled
	repairCancel context.CancelFunc
	repairDone   chan struct{}

	sessions *sessionTable

	inFlight     atomic.Int64
	endpoints    map[string]*endpointStats
	shuttingDown atomic.Bool
}

// New builds a server, loading every trace already present in
// cfg.TraceDir. A missing or unreadable directory is an error; an empty
// TraceDir is not.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.TierSessions && !tierEnabled(cfg) {
		return nil, fmt.Errorf("server: TierSessions requires the fleet tier (set TierDir and/or TierPeers)")
	}
	s := &Server{
		cfg:       cfg,
		cache:     NewPartitionCache(cfg.CacheSize),
		registry:  NewTraceRegistry(cfg.TraceDir),
		sessions:  newSessionTable(cfg.MaxSessions, cfg.SessionTTL),
		endpoints: make(map[string]*endpointStats),
	}
	if cfg.MaxInFlight > 0 {
		s.admit = admit.New(admit.Config{
			MaxInFlight: cfg.MaxInFlight,
			QueueDepth:  cfg.QueueDepth,
			TenantRate:  cfg.TenantRate,
			TenantBurst: cfg.TenantBurst,
			Faults:      cfg.Faults,
		})
	}
	if _, err := s.registry.LoadDir(); err != nil {
		return nil, err
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/select", s.instrument("select", admit.Interactive, s.handleSelect))
	s.mux.HandleFunc("POST /v1/partition", s.instrument("partition", admit.Interactive, s.handlePartition))
	s.mux.HandleFunc("POST /v1/simulate", s.instrument("simulate", admit.Batch, s.handleSimulate))
	// Session endpoints run behind the same middleware chain as the
	// one-shot compute endpoints (body limit -> admission -> deadline,
	// Interactive class), but account into the session table rather
	// than the per-endpoint map, so an unused session layer leaves
	// /v1/stats byte-identical to a sessionless build.
	s.mux.HandleFunc("POST /v1/session", s.instrumented(&s.sessions.http, admit.Interactive, s.handleSessionCreate))
	s.mux.HandleFunc("POST /v1/session/{id}/step", s.instrumented(&s.sessions.http, admit.Interactive, s.handleSessionStep))
	s.mux.HandleFunc("DELETE /v1/session/{id}", s.instrumented(&s.sessions.http, admit.Interactive, s.handleSessionDelete))
	s.mux.HandleFunc("GET /v1/traces", s.observe("traces", s.handleTraces))
	s.mux.HandleFunc("GET /v1/stats", s.observe("stats", s.handleStats))
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n")) //nolint:errcheck
	})
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	if tierEnabled(cfg) {
		if err := s.initTier(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Registry exposes the trace registry (the daemon registers generated
// traces, tests inject synthetic ones).
func (s *Server) Registry() *TraceRegistry { return s.registry }

// Cache exposes the partition cache for stats reporting.
func (s *Server) Cache() *PartitionCache { return s.cache }

// Admission exposes the admission controller (nil when disabled) for
// stats reporting and operational tooling.
func (s *Server) Admission() *admit.Controller { return s.admit }

// SetOnAdmit installs the test-only admission fault-injection and
// interleaving hook, mirroring the cache's SetOnFlight: it runs at the
// top of every guarded request's admission; a non-nil return forces
// that request to be shed. It is a no-op while admission is disabled.
func (s *Server) SetOnAdmit(hook func(admit.Event) error) {
	if s.admit != nil {
		s.admit.SetOnAdmit(hook)
	}
}

// BeginShutdown flips /readyz to 503 so a fronting load balancer stops
// routing new traffic; in-flight and already-queued requests drain
// normally. The daemon calls it on SIGTERM before http.Server.Shutdown.
func (s *Server) BeginShutdown() { s.shuttingDown.Store(true) }

// Close releases the server's background work: it stops the repair
// loop (waiting for an in-flight round to notice) and unhooks the
// process-wide simulator step tier if this server installed it. Safe
// to call on a server without either; the daemon calls it after the
// HTTP drain, tests via t.Cleanup.
func (s *Server) Close() {
	if s.repairCancel != nil {
		s.repairCancel()
		<-s.repairDone
	}
	if s.cfg.TierSimSteps {
		sim.SetStepTier(nil)
	}
}

// ServeHTTP implements http.Handler. The body-size limit is the first
// middleware: it precedes admission, which precedes the deadline.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// instrument wraps a compute handler with, in order: the per-endpoint
// request/error counters and in-flight gauge, admission control (when
// enabled), the per-request deadline (Config.RequestTimeout capped
// further by any X-Samr-Deadline-Ms budget), and the pool dispatch
// class for every fan-out below the handler.
func (s *Server) instrument(name string, pri admit.Priority, h http.HandlerFunc) http.HandlerFunc {
	es := &endpointStats{}
	s.endpoints[name] = es
	return s.instrumented(es, pri, h)
}

// instrumented is instrument with caller-owned counters: the session
// endpoints account into the session table instead of the stats
// endpoint map, everything else is identical.
func (s *Server) instrumented(es *endpointStats, pri admit.Priority, h http.HandlerFunc) http.HandlerFunc {
	class := pool.Interactive
	if pri == admit.Batch {
		class = pool.Batch
	}
	return func(w http.ResponseWriter, r *http.Request) {
		es.requests.Add(1)
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if sw.code >= 400 {
				es.errors.Add(1)
			}
		}()

		budget := deadlineBudget(r)
		if s.admit != nil {
			release, err := s.admit.Admit(r.Context(), r.Header.Get(TenantHeader), pri, budget)
			if err != nil {
				var shed *admit.ShedError
				if errors.As(err, &shed) {
					writeShed(sw, shed)
				} else {
					writeFailure(sw, err)
				}
				return
			}
			defer release()
		}

		timeout := s.cfg.RequestTimeout
		if budget > 0 && (timeout <= 0 || budget < timeout) {
			timeout = budget
		}
		ctx := r.Context()
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		r = r.WithContext(pool.WithClass(ctx, class))
		h(sw, r)
	}
}

// observe wraps a read-only endpoint with counters only: observability
// must keep answering while the compute path sheds load, so these
// endpoints bypass admission and the deadline. Handlers registered
// under the same name (the tier's GET/PUT/manifest routes) share one
// counter pair.
func (s *Server) observe(name string, h http.HandlerFunc) http.HandlerFunc {
	es := s.endpoints[name]
	if es == nil {
		es = &endpointStats{}
		s.endpoints[name] = es
	}
	return func(w http.ResponseWriter, r *http.Request) {
		es.requests.Add(1)
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		if sw.code >= 400 {
			es.errors.Add(1)
		}
	}
}

// deadlineBudget parses the client-declared X-Samr-Deadline-Ms budget
// (0 when absent or invalid).
func deadlineBudget(r *http.Request) time.Duration {
	v := r.Header.Get(DeadlineHeader)
	if v == "" {
		return 0
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms <= 0 {
		return 0
	}
	return time.Duration(ms) * time.Millisecond
}

// handleReady is the readiness probe: NOT READY (503) once shutdown
// has begun or while the admission queue is saturated, so a fronting
// load balancer drains traffic before requests are shed. Liveness
// stays on /healthz.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.shuttingDown.Load():
		writeJSON(w, http.StatusServiceUnavailable, ReadyResponse{Status: "not ready", Reason: "draining"})
	case s.admit != nil && s.admit.Saturated():
		writeJSON(w, http.StatusServiceUnavailable, ReadyResponse{Status: "not ready", Reason: "saturated"})
	default:
		writeJSON(w, http.StatusOK, ReadyResponse{Status: "ready"})
	}
}

// writeShed emits the 429 load-shedding wire error: JSON body,
// Retry-After in whole seconds (rounded up, minimum 1), and the reason
// header.
func writeShed(w http.ResponseWriter, shed *admit.ShedError) {
	secs := int(math.Ceil(shed.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set(ShedHeader, shed.Reason)
	writeErr(w, http.StatusTooManyRequests, "%v", shed)
}

// statusWriter records the response status for error accounting.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone is client's problem
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeErrCode is writeErr with a machine-readable error code clients
// branch on (the session layer's expiry/drift contract).
func writeErrCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...), Code: code})
}

// writeFailure maps an execution error onto the wire: an exceeded
// deadline is 504 Gateway Timeout, a client cancellation is 499, and
// anything else (none today: cancellation is the only error source
// below the handlers) is a 500.
func writeFailure(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeErr(w, http.StatusGatewayTimeout, "request deadline exceeded: %v", err)
	case errors.Is(err, context.Canceled):
		writeErr(w, StatusClientClosedRequest, "request cancelled: %v", err)
	default:
		writeErr(w, http.StatusInternalServerError, "%v", err)
	}
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
		} else {
			writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		}
		return false
	}
	return true
}

// gatherHierarchies merges the single/batch forms of a request into one
// ordered slice of validated hierarchies.
func gatherHierarchies(single *Hierarchy, batch []Hierarchy) ([]*grid.Hierarchy, error) {
	ws := batch
	if single != nil {
		ws = append([]Hierarchy{*single}, batch...)
	}
	if len(ws) == 0 {
		return nil, fmt.Errorf("request carries no hierarchy")
	}
	out := make([]*grid.Hierarchy, len(ws))
	for i, w := range ws {
		h, err := w.toGrid()
		if err != nil {
			return nil, fmt.Errorf("hierarchy %d: %w", i, err)
		}
		out[i] = h
	}
	return out, nil
}

func (s *Server) checkProcs(w http.ResponseWriter, nprocs *int) bool {
	if *nprocs == 0 {
		*nprocs = s.cfg.DefaultProcs
	}
	if *nprocs < 1 || *nprocs > s.cfg.MaxProcs {
		writeErr(w, http.StatusBadRequest, "nprocs %d out of range [1, %d]", *nprocs, s.cfg.MaxProcs)
		return false
	}
	return true
}

// checkLive rejects a request whose context is already dead (expired
// deadline or departed client) before any expensive work starts: the
// documented wire error is returned without running a partitioner.
func (s *Server) checkLive(w http.ResponseWriter, r *http.Request) bool {
	if err := r.Context().Err(); err != nil {
		writeFailure(w, err)
		return false
	}
	return true
}

// handleSelect classifies the submitted hierarchies in order through a
// fresh meta-partitioner, so a posted regrid sequence reproduces the
// in-process hysteresis behavior exactly.
func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req SelectRequest
	if !decode(w, r, &req) {
		return
	}
	hs, err := gatherHierarchies(req.Hierarchy, req.Hierarchies)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.checkProcs(w, &req.NProcs) {
		return
	}
	if !s.checkLive(w, r) {
		return
	}
	cost := req.PartitionCost
	if cost <= 0 {
		cost = s.cfg.PartitionCost
	}
	meta := core.NewMetaPartitioner(cost)
	resp := SelectResponse{Selections: make([]Selection, len(hs))}
	for i, h := range hs {
		if err := r.Context().Err(); err != nil {
			writeFailure(w, err)
			return
		}
		slot := float64(h.Workload()) * s.cfg.Machine.CellTime / float64(req.NProcs)
		p := meta.Select(h, slot)
		sample, _ := meta.LastSample()
		resp.Selections[i] = selectionFrom(p, sample)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePartition runs the requested partitioner over every submitted
// hierarchy, fanning the batch out over the shared worker pool, serving
// repeated regrid states from the content-addressed cache, and
// coalescing concurrent identical misses through the cache's
// singleflight group. The whole batch is bounded by the request
// context: cancellation aborts mid-batch and returns the wire error.
func (s *Server) handlePartition(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	var req PartitionRequest
	if !decode(w, r, &req) {
		return
	}
	canonical, err := ParsePartitioner(req.Partitioner)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	hs, err := gatherHierarchies(req.Hierarchy, req.Hierarchies)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.checkProcs(w, &req.NProcs) {
		return
	}
	if !s.checkLive(w, r) {
		return
	}

	name := canonical.Name()
	results := make([]PartitionResult, len(hs))
	err = pool.MapCtx(ctx, pool.Workers(), len(hs), func(i int) error {
		h := hs[i]
		key := CacheKey{Sig: hierarchySignature(h), Partitioner: name, NProcs: req.NProcs}
		a, disp, err := s.cache.GetOrCompute(ctx, key, func() (*partition.Assignment, error) {
			// A fresh instance per unit keeps stateful wrappers
			// (postmap) from sharing state across goroutines and keeps
			// every cached result a pure function of its key. The spec
			// already parsed once, so this cannot fail.
			p, _ := ParsePartitioner(req.Partitioner)
			return p.Partition(ctx, h, req.NProcs)
		})
		if err != nil {
			return err
		}
		results[i] = buildPartitionResult(h, key.Sig, name, req.NProcs, a, disp)
		return nil
	})
	if err != nil {
		writeFailure(w, err)
		return
	}

	s.writeCacheHeaders(w, results)
	writeJSON(w, http.StatusOK, PartitionResponse{Results: results})
}

// sigScratch recycles the encoding buffers behind hierarchySignature:
// hashing a deep hierarchy encodes a few hundred KB, and the request
// path signs every submitted hierarchy, so the scratch is pooled
// instead of allocated per request.
var sigScratch = sync.Pool{New: func() any { b := make([]byte, 0, 1<<12); return &b }}

// hierarchySignature is h.Signature() with pooled encoding scratch.
func hierarchySignature(h *grid.Hierarchy) geom.Signature {
	bp := sigScratch.Get().(*[]byte)
	sig, buf := h.SignatureWith((*bp)[:0])
	*bp = buf
	sigScratch.Put(bp)
	return sig
}

// buildPartitionResult renders one assignment as its wire result. Both
// the one-shot partition path and the session step path go through it,
// which is what makes a step response byte-identical to the equivalent
// full post.
func buildPartitionResult(h *grid.Hierarchy, sig geom.Signature, name string, nprocs int, a *partition.Assignment, disp string) PartitionResult {
	res := PartitionResult{
		Signature:   sig.String(),
		Partitioner: name,
		NProcs:      nprocs,
		Fragments:   make([]Fragment, len(a.Fragments)),
		Loads:       a.Loads(h),
		Imbalance:   a.Imbalance(h),
		Cached:      disp == CacheHit || disp == CacheTier,
		Cache:       disp,
	}
	for j, f := range a.Fragments {
		res.Fragments[j] = Fragment{Level: f.Level, Box: fromGeomBox(f.Box), Owner: f.Owner}
	}
	return res
}

// writeCacheHeaders emits the cache headers of a partition-shaped
// response: the per-request disposition plus the cumulative
// process-wide counters, so operators (and the acceptance test) can
// watch hit and coalescing rates without polling /v1/stats.
func (s *Server) writeCacheHeaders(w http.ResponseWriter, results []PartitionResult) {
	counts := map[string]int{}
	for _, res := range results {
		counts[res.Cache]++
	}
	disposition := "mixed"
	for _, d := range []string{CacheHit, CacheMiss, CacheShared, CacheTier} {
		if counts[d] == len(results) {
			disposition = d
		}
	}
	hits, misses, shared := s.cache.Stats()
	hdr := w.Header()
	hdr.Set("X-Samr-Cache", disposition)
	hdr.Set("X-Samr-Cache-Hits", strconv.FormatUint(hits, 10))
	hdr.Set("X-Samr-Cache-Misses", strconv.FormatUint(misses, 10))
	hdr.Set("X-Samr-Cache-Shared", strconv.FormatUint(shared, 10))
	if s.tier != nil {
		hdr.Set("X-Samr-Cache-Tier", strconv.FormatUint(s.cache.TierHits(), 10))
	}
	if len(results) == 1 {
		hdr.Set("X-Samr-Signature", results[0].Signature)
	}
}

// handleSimulate replays a registered trace through the simulator
// (whose pipeline already fans out over the shared pool and honours the
// request context at every phase).
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	var req SimulateRequest
	if !decode(w, r, &req) {
		return
	}
	tr, ok := s.registry.Get(req.Trace)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown trace %q", req.Trace)
		return
	}
	if !s.checkProcs(w, &req.NProcs) {
		return
	}
	if !s.checkLive(w, r) {
		return
	}
	if req.Steps > 0 && req.Steps < len(tr.Snapshots) {
		trunc := *tr
		trunc.Snapshots = tr.Snapshots[:req.Steps]
		tr = &trunc
	}

	var res *sim.Result
	var err error
	if req.Meta {
		meta := core.NewMetaPartitioner(s.cfg.PartitionCost)
		res, err = sim.SimulateTraceSelect(ctx, tr, func(step int, h *grid.Hierarchy) partition.Partitioner {
			slot := float64(h.Workload()) * s.cfg.Machine.CellTime / float64(req.NProcs)
			return meta.Select(h, slot)
		}, req.NProcs, s.cfg.Machine)
	} else {
		var p partition.Partitioner
		p, err = ParsePartitioner(req.Partitioner)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		res, err = sim.SimulateTrace(ctx, tr, p, req.NProcs, s.cfg.Machine)
	}
	if err != nil {
		writeFailure(w, err)
		return
	}

	resp := SimulateResponse{
		Trace:         req.Trace,
		Partitioner:   res.PartitionerName,
		NProcs:        res.NumProcs,
		Snapshots:     len(res.Steps),
		TotalEstTime:  res.TotalEstTime(),
		MeanImbalance: res.MeanImbalance(),
	}
	if req.IncludeSteps {
		resp.Steps = make([]StepMetrics, len(res.Steps))
		for i, sm := range res.Steps {
			resp.Steps[i] = stepMetricsFrom(sm)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, TracesResponse{Traces: s.registry.List()})
}

// handleStats reports the service's operational counters. The in-flight
// gauge includes this stats request itself.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses, shared := s.cache.Stats()
	chainHits, chainMisses, chainShared, chainEntries, chainCap := partition.CacheStats()
	memoPart, memoEval, memoMig := sim.MemoStats()
	resp := StatsResponse{
		Cache: CacheCounters{
			Hits:     hits,
			Misses:   misses,
			Shared:   shared,
			Entries:  s.cache.Len(),
			Capacity: s.cache.Capacity(),
		},
		UnitChains: CacheCounters{
			Hits:     chainHits,
			Misses:   chainMisses,
			Shared:   chainShared,
			Entries:  chainEntries,
			Capacity: chainCap,
		},
		SimMemo: MemoCounters{
			PartitionsMemoized:       memoPart,
			EvaluationsMemoized:      memoEval,
			MigrationsShortCircuited: memoMig,
		},
		InFlight:  s.inFlight.Load(),
		PoolSize:  pool.Workers(),
		Endpoints: make(map[string]EndpointCounters, len(s.endpoints)),
	}
	if s.admit != nil {
		st := s.admit.Stats()
		resp.Admission = &st
	}
	if s.tier != nil {
		resp.Cache.Tier = s.cache.TierHits()
		st := s.tier.Stats()
		if s.repairer != nil {
			rs := s.repairer.Stats()
			st.Repair = &rs
		}
		resp.Tier = &st
	}
	if st := s.sessions.stats(); st != nil {
		resp.Sessions = st
	}
	for name, es := range s.endpoints {
		resp.Endpoints[name] = EndpointCounters{
			Requests: es.requests.Load(),
			Errors:   es.errors.Load(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
