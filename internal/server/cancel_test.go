package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"samr/internal/partition"
)

// TestExpiredDeadlineIsWireErrorWithoutCompute: a request whose
// deadline is already over when handling starts must return the
// documented 504 wire error without ever running a partitioner
// (acceptance criterion: no call site ignores cancellation).
func TestExpiredDeadlineIsWireErrorWithoutCompute(t *testing.T) {
	srv, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	h := testHierarchy(1)
	r := post(t, ts.URL+"/v1/partition", PartitionRequest{Hierarchy: &h, Partitioner: "domain", NProcs: 8}, nil)
	if r.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", r.StatusCode)
	}
	var e ErrorResponse
	if err := json.NewDecoder(r.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("504 body not the documented JSON error: %v %+v", err, e)
	}
	if _, misses, _ := srv.Cache().Stats(); misses != 0 {
		t.Fatalf("expired request executed %d partitioner runs, want 0", misses)
	}
	// Simulate and select are bounded the same way.
	if r := post(t, ts.URL+"/v1/select", SelectRequest{Hierarchy: &h}, nil); r.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("select status = %d, want 504", r.StatusCode)
	}
}

// TestPartitionSingleflight is the coalescing acceptance test: two
// concurrent identical cache-missing /v1/partition requests must result
// in exactly one partitioner execution — one request computes ("miss"),
// the other shares the in-flight result ("shared").
func TestPartitionSingleflight(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	// Deterministic interleaving: the compute leader blocks until the
	// second request has joined the flight as a follower.
	followerJoined := make(chan struct{})
	srv.Cache().SetOnFlight(func(k CacheKey, leader bool) {
		if leader {
			<-followerJoined
		} else {
			close(followerJoined)
		}
	})

	h := testHierarchy(2)
	req := PartitionRequest{Hierarchy: &h, Partitioner: "nature+fable", NProcs: 8}
	dispositions := make([]string, 2)
	sigs := make([]string, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp PartitionResponse
			r := post(t, ts.URL+"/v1/partition", req, &resp)
			if r.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, r.StatusCode)
				return
			}
			dispositions[i] = r.Header.Get("X-Samr-Cache")
			sigs[i] = resp.Results[0].Signature
		}(i)
	}
	wg.Wait()

	hits, misses, shared := srv.Cache().Stats()
	if misses != 1 {
		t.Errorf("partitioner executions (misses) = %d, want exactly 1", misses)
	}
	if shared != 1 {
		t.Errorf("shared = %d, want 1", shared)
	}
	if hits != 0 {
		t.Errorf("hits = %d, want 0", hits)
	}
	got := map[string]bool{dispositions[0]: true, dispositions[1]: true}
	if !got[CacheMiss] || !got[CacheShared] {
		t.Errorf("dispositions = %v, want one miss and one shared", dispositions)
	}
	if sigs[0] != sigs[1] || sigs[0] == "" {
		t.Errorf("coalesced requests disagree on signature: %q vs %q", sigs[0], sigs[1])
	}
}

// TestGetOrComputeLeaderFailureDoesNotPoisonFollowers: when the leader
// of a flight is cancelled, a follower with a live context retries and
// computes the result itself rather than inheriting the error.
func TestGetOrComputeLeaderFailureDoesNotPoisonFollowers(t *testing.T) {
	c := NewPartitionCache(8)
	key := CacheKey{Sig: sigOf(0), Partitioner: "x", NProcs: 2}
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	followerJoined := make(chan struct{})
	leaderStarted := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(2)
	var followerDisp string
	var followerErr error
	go func() { // leader: fails with its own cancellation
		defer wg.Done()
		_, _, err := c.GetOrCompute(leaderCtx, key, func() (*partition.Assignment, error) {
			close(leaderStarted)
			<-followerJoined // ensure the follower joined the flight
			cancelLeader()
			return nil, leaderCtx.Err()
		})
		if err == nil {
			t.Error("cancelled leader reported no error")
		}
	}()
	go func() { // follower: must retry and succeed
		defer wg.Done()
		<-leaderStarted
		close(followerJoined)
		var a *partition.Assignment
		a, followerDisp, followerErr = c.GetOrCompute(context.Background(), key, func() (*partition.Assignment, error) {
			return &partition.Assignment{NumProcs: 2}, nil
		})
		if a == nil {
			t.Error("follower got nil assignment")
		}
	}()
	wg.Wait()
	if followerErr != nil {
		t.Fatalf("follower inherited the leader's failure: %v", followerErr)
	}
	// The follower either joined the flight and retried as the new
	// leader (miss) or raced past the flight entirely (miss) — either
	// way it must have computed, not shared a failure.
	if followerDisp != CacheMiss {
		t.Errorf("follower disposition = %q, want miss (own compute)", followerDisp)
	}
}

// TestPartitionCancelMidBatchNoGoroutineLeak: cancelling a batched
// /v1/partition mid-compute aborts promptly with the 499-style outcome
// and leaves no goroutines behind (pool helpers drain).
func TestPartitionCancelMidBatchNoGoroutineLeak(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel the request the moment the first compute starts: the
	// partitioner aborts at its next poll, mid-batch.
	s.Cache().SetOnFlight(func(k CacheKey, leader bool) {
		if leader {
			cancel()
		}
	})
	batch := make([]Hierarchy, 16)
	for i := range batch {
		batch[i] = testHierarchy(i)
	}
	body, err := json.Marshal(PartitionRequest{Hierarchies: batch, Partitioner: "nature+fable", NProcs: 16})
	if err != nil {
		t.Fatal(err)
	}

	settle := func() int {
		runtime.GC()
		return runtime.NumGoroutine()
	}
	baseline := settle()

	req := httptest.NewRequest("POST", "/v1/partition", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.ServeHTTP(rec, req)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled batch did not abort promptly")
	}
	if rec.Code != StatusClientClosedRequest && rec.Code != http.StatusGatewayTimeout {
		t.Errorf("status = %d, want 499 (cancel) wire error", rec.Code)
	}

	// Goroutine count must settle back to the baseline (the request
	// goroutine and any pool helpers are gone).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := settle(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStatsEndpoint: /v1/stats reports cache counters, the in-flight
// gauge, the pool size, and per-endpoint request/error totals.
func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	h := testHierarchy(0)
	post(t, ts.URL+"/v1/partition", PartitionRequest{Hierarchy: &h, Partitioner: "domain", NProcs: 4}, nil)
	post(t, ts.URL+"/v1/partition", PartitionRequest{Hierarchy: &h, Partitioner: "domain", NProcs: 4}, nil)
	post(t, ts.URL+"/v1/partition", PartitionRequest{Partitioner: "domain"}, nil) // 400: no hierarchy

	r, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", r.StatusCode)
	}
	var st StatsResponse
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Cache.Shared != 0 {
		t.Errorf("cache counters = %+v, want 1 hit / 1 miss / 0 shared", st.Cache)
	}
	if st.Cache.Entries != 1 || st.Cache.Capacity <= 0 {
		t.Errorf("cache occupancy = %d/%d", st.Cache.Entries, st.Cache.Capacity)
	}
	if st.PoolSize < 1 {
		t.Errorf("pool size = %d", st.PoolSize)
	}
	// The stats request itself is in flight while it is served.
	if st.InFlight < 1 {
		t.Errorf("in-flight = %d, want >= 1", st.InFlight)
	}
	ep := st.Endpoints["partition"]
	if ep.Requests != 3 || ep.Errors != 1 {
		t.Errorf("partition endpoint = %+v, want 3 requests / 1 error", ep)
	}
	if st.Endpoints["stats"].Requests != 1 {
		t.Errorf("stats endpoint = %+v, want its own request counted", st.Endpoints["stats"])
	}
	// The partition-layer unit-chain caches under the partitioners see
	// at least the miss (and possibly prior hits — they are process
	// wide), and their occupancy is bounded.
	if st.UnitChains.Misses == 0 {
		t.Errorf("unit-chain counters = %+v, want at least one miss", st.UnitChains)
	}
	if st.UnitChains.Capacity <= 0 || st.UnitChains.Entries > st.UnitChains.Capacity {
		t.Errorf("unit-chain occupancy = %d/%d", st.UnitChains.Entries, st.UnitChains.Capacity)
	}
}
