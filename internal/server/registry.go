package server

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"samr/internal/trace"
)

// TraceRegistry holds the named traces the /v1/simulate endpoint can
// replay. Traces come from `.trc` files (the samrtrace binary format)
// in a configured directory: everything present is loaded at startup,
// and a request for a name not yet loaded falls through to the
// directory again, so dropping a new file in is enough to register it —
// no restart, no upload endpoint.
type TraceRegistry struct {
	dir string

	mu     sync.RWMutex
	traces map[string]*trace.Trace
}

// NewTraceRegistry returns a registry over dir (may be empty for a
// purely in-memory registry).
func NewTraceRegistry(dir string) *TraceRegistry {
	return &TraceRegistry{dir: dir, traces: make(map[string]*trace.Trace)}
}

// LoadDir scans the directory and loads every .trc file not already
// registered. It returns the names loaded by this call. A file that
// fails to load is logged and skipped — one corrupt trace must not take
// down a daemon serving the healthy ones — while a missing or
// unreadable directory is an error.
func (r *TraceRegistry) LoadDir() ([]string, error) {
	if r.dir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, fmt.Errorf("trace dir: %w", err)
	}
	var loaded []string
	for _, e := range entries {
		name, ok := strings.CutSuffix(e.Name(), ".trc")
		if !ok || e.IsDir() {
			continue
		}
		r.mu.RLock()
		_, have := r.traces[name]
		r.mu.RUnlock()
		if have {
			continue
		}
		if err := r.loadFile(name); err != nil {
			log.Printf("server: skipping %s.trc: %v", name, err)
			continue
		}
		loaded = append(loaded, name)
	}
	return loaded, nil
}

// loadFile reads dir/<name>.trc, validates it, and registers it.
func (r *TraceRegistry) loadFile(name string) error {
	f, err := os.Open(filepath.Join(r.dir, name+".trc"))
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return fmt.Errorf("trace %q: %w", name, err)
	}
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("trace %q: %w", name, err)
	}
	r.Register(name, tr)
	return nil
}

// Register adds (or replaces) a trace under the given name.
func (r *TraceRegistry) Register(name string, tr *trace.Trace) {
	r.mu.Lock()
	r.traces[name] = tr
	r.mu.Unlock()
}

// Get returns the named trace, trying an on-demand directory load if it
// is not registered yet. The boolean reports success.
func (r *TraceRegistry) Get(name string) (*trace.Trace, bool) {
	r.mu.RLock()
	tr, ok := r.traces[name]
	r.mu.RUnlock()
	if ok {
		return tr, true
	}
	// On-demand path: a well-formed name may have appeared in the
	// directory after startup.
	if r.dir == "" || name == "" || name != filepath.Base(name) || strings.ContainsAny(name, "/\\") {
		return nil, false
	}
	if err := r.loadFile(name); err != nil {
		// A present-but-corrupt file would otherwise be indistinguishable
		// from a missing one (both surface as 404 to the client).
		if !errors.Is(err, os.ErrNotExist) {
			log.Printf("server: trace %q unavailable: %v", name, err)
		}
		return nil, false
	}
	r.mu.RLock()
	tr, ok = r.traces[name]
	r.mu.RUnlock()
	return tr, ok
}

// List describes every registered trace, name-sorted, after picking up
// any files newly dropped into the directory.
func (r *TraceRegistry) List() []TraceInfo {
	r.LoadDir() //nolint:errcheck // listing proceeds with what loaded
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]TraceInfo, 0, len(r.traces))
	for name, tr := range r.traces {
		out = append(out, TraceInfo{
			Name:      name,
			App:       tr.App,
			RefRatio:  tr.RefRatio,
			MaxLevels: tr.MaxLevels,
			Snapshots: tr.Len(),
			Domain:    fromGeomBox(tr.Domain),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
