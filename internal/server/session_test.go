package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// wideHierarchy builds a three-level wire hierarchy with a large static
// middle level (64 boxes) and one moving finest patch — the shape a
// session exists for: most of the state survives every regrid, so a
// delta touches one box while a full post re-uploads all 66.
func wideHierarchy(x int) Hierarchy {
	l0 := []Box{{Dim: 2, Lo: []int{0, 0}, Hi: []int{64, 64}}}
	var l1 []Box
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			l1 = append(l1, Box{Dim: 2, Lo: []int{i * 16, j * 16}, Hi: []int{i*16 + 16, j*16 + 16}})
		}
	}
	return Hierarchy{
		Domain:   Box{Dim: 2, Lo: []int{0, 0}, Hi: []int{64, 64}},
		RefRatio: 2,
		Levels:   [][]Box{l0, l1, {{Dim: 2, Lo: []int{x, 100}, Hi: []int{x + 32, 132}}}},
	}
}

// finestStep is the delta advancing wideHierarchy's finest patch to x.
func finestStep(x int) SessionStepRequest {
	return SessionStepRequest{Levels: []LevelOp{
		{Op: LevelKeep}, {Op: LevelKeep},
		{Op: LevelReplace, Boxes: []Box{{Dim: 2, Lo: []int{x, 100}, Hi: []int{x + 32, 132}}}},
	}}
}

func del(t *testing.T, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck
	raw, _ := io.ReadAll(resp.Body)
	resp.Body = io.NopCloser(bytes.NewReader(raw))
	return resp
}

func createSession(t *testing.T, baseURL string, h Hierarchy, spec string, nprocs int) SessionCreateResponse {
	t.Helper()
	var create SessionCreateResponse
	r := post(t, baseURL+"/v1/session", SessionCreateRequest{Hierarchy: &h, Partitioner: spec, NProcs: nprocs}, &create)
	if r.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(r.Body)
		t.Fatalf("session create: status %d\n%s", r.StatusCode, raw)
	}
	if r.Header.Get(SessionHeader) != create.Session || create.Session == "" {
		t.Fatalf("session header %q vs body %q", r.Header.Get(SessionHeader), create.Session)
	}
	return create
}

func errorCode(t *testing.T, r *http.Response) string {
	t.Helper()
	var e ErrorResponse
	raw, _ := io.ReadAll(r.Body)
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("error body not JSON: %v\n%s", err, raw)
	}
	return e.Code
}

// TestSessionStepMatchesFullPost pins the tentpole's wire contract: a
// step response — body and cache headers — is byte-identical to the
// equivalent full /v1/partition post of the reconstructed hierarchy on
// an identically fresh server, across misses and hits.
func TestSessionStepMatchesFullPost(t *testing.T) {
	_, sessTS := newTestServer(t, Config{})
	_, fullTS := newTestServer(t, Config{})

	base := testHierarchy(0)
	create := createSession(t, sessTS.URL, base, "domain", 8)
	bh, err := base.toGrid()
	if err != nil {
		t.Fatal(err)
	}
	if got := bh.Signature().String(); got != create.Signature {
		t.Fatalf("create signature %s != in-process %s", create.Signature, got)
	}
	if len(create.Levels) != 2 {
		t.Fatalf("create level digests: %v", create.Levels)
	}
	for l, want := range create.Levels {
		if got := bh.LevelSignature(l).String(); got != want {
			t.Errorf("level %d digest %s != in-process %s", l, want, got)
		}
	}

	stepURL := sessTS.URL + "/v1/session/" + create.Session + "/step"
	check := func(label string, step SessionStepRequest, h Hierarchy) {
		t.Helper()
		rs := post(t, stepURL, step, nil)
		sessBody, _ := io.ReadAll(rs.Body)
		rf := post(t, fullTS.URL+"/v1/partition", PartitionRequest{Hierarchy: &h, Partitioner: "domain", NProcs: 8}, nil)
		fullBody, _ := io.ReadAll(rf.Body)
		if rs.StatusCode != http.StatusOK || rf.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d vs %d\n%s\n%s", label, rs.StatusCode, rf.StatusCode, sessBody, fullBody)
		}
		if !bytes.Equal(sessBody, fullBody) {
			t.Fatalf("%s: step body differs from full post\nstep: %s\nfull: %s", label, sessBody, fullBody)
		}
		for _, k := range []string{"X-Samr-Cache", "X-Samr-Cache-Hits", "X-Samr-Cache-Misses", "X-Samr-Cache-Shared", "X-Samr-Signature"} {
			if rs.Header.Get(k) != rf.Header.Get(k) {
				t.Errorf("%s: header %s: step %q vs full %q", label, k, rs.Header.Get(k), rf.Header.Get(k))
			}
		}
		if rs.Header.Get(SessionHeader) != create.Session {
			t.Errorf("%s: step response session header %q", label, rs.Header.Get(SessionHeader))
		}
	}

	for i := 1; i <= 5; i++ {
		h := testHierarchy(i)
		check("replace", SessionStepRequest{Levels: []LevelOp{{Op: LevelKeep}, {Op: LevelReplace, Boxes: h.Levels[1]}}}, h)
	}
	// A pure-keep step repeats the state: cache hit on both paths.
	check("pure-keep", SessionStepRequest{Levels: []LevelOp{{Op: LevelKeep}, {Op: LevelKeep}}}, testHierarchy(5))
}

// TestSessionStepRequestBytes pins the O(changed boxes) wire claim: on
// the wide trajectory a step request is >= 5x smaller than the full
// post it replaces.
func TestSessionStepRequestBytes(t *testing.T) {
	h := wideHierarchy(8)
	full, err := json.Marshal(PartitionRequest{Hierarchy: &h, Partitioner: "domain", NProcs: 8})
	if err != nil {
		t.Fatal(err)
	}
	step, err := json.Marshal(finestStep(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 5*len(step) {
		t.Fatalf("full post %dB not >= 5x step %dB", len(full), len(step))
	}
	t.Logf("full post %dB, session step %dB (%.1fx)", len(full), len(step), float64(len(full))/float64(len(step)))
}

// TestSessionExpiry covers the TTL contract: an idle session answers
// the documented 410 session-expired error on step and delete, and the
// expiry is accounted in /v1/stats.
func TestSessionExpiry(t *testing.T) {
	srv, ts := newTestServer(t, Config{SessionTTL: time.Minute})
	now := time.Now()
	srv.sessions.now = func() time.Time { return now }

	create := createSession(t, ts.URL, wideHierarchy(0), "domain", 8)
	now = now.Add(2 * time.Minute)

	r := post(t, ts.URL+"/v1/session/"+create.Session+"/step", finestStep(8), nil)
	if r.StatusCode != http.StatusGone {
		t.Fatalf("expired step: status %d, want 410", r.StatusCode)
	}
	if code := errorCode(t, r); code != CodeSessionExpired {
		t.Fatalf("expired step: code %q, want %q", code, CodeSessionExpired)
	}
	if r := del(t, ts.URL+"/v1/session/"+create.Session); r.StatusCode != http.StatusGone {
		t.Fatalf("expired delete: status %d, want 410", r.StatusCode)
	}

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Sessions == nil || st.Sessions.Expired == 0 || st.Sessions.Active != 0 {
		t.Fatalf("stats after expiry: %+v", st.Sessions)
	}
}

// TestSessionEviction covers the capacity bound: past MaxSessions the
// least recently used session is evicted and answers 410 like an
// expired one, while the surviving session keeps working.
func TestSessionEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessions: 1})
	first := createSession(t, ts.URL, wideHierarchy(0), "domain", 8)
	second := createSession(t, ts.URL, wideHierarchy(8), "domain", 8)

	r := post(t, ts.URL+"/v1/session/"+first.Session+"/step", finestStep(16), nil)
	if r.StatusCode != http.StatusGone || errorCode(t, r) != CodeSessionExpired {
		t.Fatalf("evicted step: status %d", r.StatusCode)
	}
	if r := post(t, ts.URL+"/v1/session/"+second.Session+"/step", finestStep(16), nil); r.StatusCode != http.StatusOK {
		t.Fatalf("surviving step: status %d", r.StatusCode)
	}

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Sessions.Evicted != 1 || st.Sessions.Active != 1 || st.Sessions.Capacity != 1 {
		t.Fatalf("stats after eviction: %+v", st.Sessions)
	}
}

// TestSessionLifecycleErrors walks the remaining error surface: base
// drift (409), malformed deltas (400), unknown sessions (410), and the
// delete-then-gone sequence.
func TestSessionLifecycleErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	create := createSession(t, ts.URL, wideHierarchy(0), "domain", 8)
	stepURL := ts.URL + "/v1/session/" + create.Session + "/step"

	// Base drift is rejected before the delta applies.
	bad := finestStep(8)
	bad.Base = strings.Repeat("ab", 32)
	r := post(t, stepURL, bad, nil)
	if r.StatusCode != http.StatusConflict || errorCode(t, r) != CodeSessionBaseMismatch {
		t.Fatalf("drifted base: status %d", r.StatusCode)
	}
	// The matching base is accepted.
	good := finestStep(8)
	good.Base = create.Signature
	if r := post(t, stepURL, good, nil); r.StatusCode != http.StatusOK {
		t.Fatalf("pinned step: status %d", r.StatusCode)
	}

	for _, tc := range []struct {
		name string
		step SessionStepRequest
	}{
		{"keep with boxes", SessionStepRequest{Levels: []LevelOp{
			{Op: LevelKeep, Boxes: []Box{{Dim: 2, Lo: []int{0, 0}, Hi: []int{1, 1}}}}, {Op: LevelKeep}, {Op: LevelKeep}}}},
		{"unknown op", SessionStepRequest{Levels: []LevelOp{{Op: "merge"}, {Op: LevelKeep}, {Op: LevelKeep}}}},
		{"bad box geometry", SessionStepRequest{Levels: []LevelOp{
			{Op: LevelKeep}, {Op: LevelKeep}, {Op: LevelReplace, Boxes: []Box{{Dim: 5}}}}}},
		{"empty step", SessionStepRequest{}},
		{"invalid delta", SessionStepRequest{Levels: []LevelOp{
			{Op: LevelKeep}, {Op: LevelKeep}, {Op: LevelReplace, Boxes: []Box{
				{Dim: 2, Lo: []int{0, 100}, Hi: []int{64, 164}}, {Dim: 2, Lo: []int{32, 100}, Hi: []int{96, 164}}}}}}},
	} {
		if r := post(t, stepURL, tc.step, nil); r.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, r.StatusCode)
		}
	}

	// Failed steps left the state where the pinned step put it.
	var stepResp PartitionResponse
	keep := SessionStepRequest{Levels: []LevelOp{{Op: LevelKeep}, {Op: LevelKeep}, {Op: LevelKeep}}}
	if r := post(t, stepURL, keep, &stepResp); r.StatusCode != http.StatusOK {
		t.Fatalf("keep step after failures: status %d", r.StatusCode)
	}
	wantSig, err := wideHierarchy(8).toGrid()
	if err != nil {
		t.Fatal(err)
	}
	if stepResp.Results[0].Signature != wantSig.Signature().String() {
		t.Fatal("failed steps moved the session state")
	}

	// Steps on a session that never existed answer 410.
	if r := post(t, ts.URL+"/v1/session/ffffffffffffffffffffffffffffffff/step", finestStep(8), nil); r.StatusCode != http.StatusGone {
		t.Fatalf("unknown session step: status %d", r.StatusCode)
	}
	// Delete a live session once: 204; again: 410.
	if r := del(t, ts.URL+"/v1/session/"+create.Session); r.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d, want 204", r.StatusCode)
	}
	if r := del(t, ts.URL+"/v1/session/"+create.Session); r.StatusCode != http.StatusGone {
		t.Fatalf("double delete: status %d, want 410", r.StatusCode)
	}
	if r := post(t, stepURL, finestStep(8), nil); r.StatusCode != http.StatusGone {
		t.Fatalf("step after delete: status %d, want 410", r.StatusCode)
	}
}

// TestSessionStatefulPostmap covers the stateful path: a postmap
// session runs one long-lived partitioner instance server-side, so its
// step results equal a sequential in-process run over the same states,
// its results never touch the partition cache, and a failed step leaves
// the carried history untouched (subsequent results stay in sync with
// the reference, which never saw the failure).
func TestSessionStatefulPostmap(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	base := testHierarchy(0)
	create := createSession(t, ts.URL, base, "postmap(domain)", 8)
	if !create.Stateful {
		t.Fatalf("postmap session not marked stateful: %+v", create)
	}
	stepURL := ts.URL + "/v1/session/" + create.Session + "/step"

	ref, err := ParsePartitioner(create.Partitioner)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		wireH := testHierarchy(i * 4)
		var resp PartitionResponse
		r := post(t, stepURL, SessionStepRequest{Levels: []LevelOp{{Op: LevelKeep}, {Op: LevelReplace, Boxes: wireH.Levels[1]}}}, &resp)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("step %d: status %d", i, r.StatusCode)
		}
		h, err := wireH.toGrid()
		if err != nil {
			t.Fatal(err)
		}
		a, err := ref.Partition(context.Background(), h, 8)
		if err != nil {
			t.Fatal(err)
		}
		want := buildPartitionResult(h, h.Signature(), create.Partitioner, 8, a, CacheMiss)
		got := resp.Results[0]
		if got.Signature != want.Signature || got.Imbalance != want.Imbalance ||
			len(got.Fragments) != len(want.Fragments) {
			t.Fatalf("step %d: result diverged from sequential reference\ngot  %+v\nwant %+v", i, got, want)
		}
		if !reflect.DeepEqual(got.Fragments, want.Fragments) {
			t.Fatalf("step %d: fragments diverged from sequential reference\ngot  %+v\nwant %+v", i, got.Fragments, want.Fragments)
		}
		if got.Cache != CacheMiss || got.Cached {
			t.Fatalf("step %d: stateful disposition %q cached=%v", i, got.Cache, got.Cached)
		}

		// Mid-sequence failure: an invalid delta must not advance the
		// carried history — the next iteration's reference comparison
		// would diverge if it did.
		if i == 3 {
			badStep := SessionStepRequest{Levels: []LevelOp{{Op: LevelKeep}, {Op: LevelReplace, Boxes: []Box{
				{Dim: 2, Lo: []int{0, 8}, Hi: []int{16, 32}}, {Dim: 2, Lo: []int{8, 8}, Hi: []int{24, 32}}}}}}
			if r := post(t, stepURL, badStep, nil); r.StatusCode != http.StatusBadRequest {
				t.Fatalf("invalid stateful step: status %d", r.StatusCode)
			}
		}
	}

	// Stateful results are not pure functions of their key: nothing may
	// have entered (or been served from) the partition cache.
	if hits, misses, shared := srv.Cache().Stats(); hits != 0 || misses != 0 || shared != 0 {
		t.Fatalf("stateful session touched the partition cache: hits=%d misses=%d shared=%d", hits, misses, shared)
	}
	if srv.Cache().Len() != 0 {
		t.Fatalf("stateful session stored %d cache entries", srv.Cache().Len())
	}
}

// TestSessionStepCancelLeavesStateUntouched pins the rollback contract
// end-to-end: a step whose client departs mid-compute produces no
// commit — the session still answers a step pinned to the pre-cancel
// base signature, and only successful steps are counted.
func TestSessionStepCancelLeavesStateUntouched(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Capture the step request's server-side context: the client's
	// departure reaches the parked leader asynchronously (the server's
	// connection reader cancels it), so the test must wait for that
	// context before releasing the leader or the compute may still see
	// a live ctx and legitimately commit.
	stepCtx := make(chan context.Context, 1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/step") {
			select {
			case stepCtx <- r.Context():
			default:
			}
		}
		srv.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	create := createSession(t, ts.URL, wideHierarchy(0), "domain", 8)
	stepURL := ts.URL + "/v1/session/" + create.Session + "/step"

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.Cache().SetOnFlight(func(k CacheKey, leader bool) {
		if leader {
			once.Do(func() { close(entered) })
			<-release
		}
	})

	body, err := json.Marshal(finestStep(8))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, stepURL, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close() //nolint:errcheck
		}
		errc <- err
	}()
	<-entered // the step is the flight leader, parked mid-compute
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled step returned a response")
	}
	<-(<-stepCtx).Done() // the disconnect has reached the handler's ctx
	close(release)
	srv.Cache().SetOnFlight(nil)

	// The failed step committed nothing: the base-pinned retry applies.
	retry := finestStep(8)
	retry.Base = create.Signature
	var resp PartitionResponse
	if r := post(t, stepURL, retry, &resp); r.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(r.Body)
		t.Fatalf("base-pinned retry: status %d\n%s", r.StatusCode, raw)
	}

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Sessions.Steps != 1 {
		t.Fatalf("steps counter %d, want 1 (cancelled step must not count)", st.Sessions.Steps)
	}
	if st.Sessions.Errors == 0 {
		t.Fatal("cancelled step not accounted as a session endpoint error")
	}
}

// TestSessionStepEvictionRace pins the step-versus-eviction contract:
// a step already in flight on a session that is concurrently evicted
// from the table still completes with 200 — the handler holds the
// session object, which the table eviction does not destroy — and the
// token answers 410 from then on.
func TestSessionStepEvictionRace(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxSessions: 1})
	first := createSession(t, ts.URL, wideHierarchy(0), "domain", 8)

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.Cache().SetOnFlight(func(k CacheKey, leader bool) {
		if leader {
			once.Do(func() { close(entered) })
			<-release
		}
	})

	body, err := json.Marshal(finestStep(8))
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		resp *http.Response
		err  error
	}
	done := make(chan result, 1)
	go func() {
		r, err := http.Post(ts.URL+"/v1/session/"+first.Session+"/step", "application/json", bytes.NewReader(body))
		done <- result{r, err}
	}()
	<-entered // the step is parked mid-compute as the flight leader

	// Creating a second session under MaxSessions: 1 evicts the first
	// while its step is still running (creates never enter the cache,
	// so this does not park).
	second := createSession(t, ts.URL, wideHierarchy(16), "domain", 8)
	close(release)
	srv.Cache().SetOnFlight(nil)

	res := <-done
	if res.err != nil {
		t.Fatalf("parked step failed in transport: %v", res.err)
	}
	res.resp.Body.Close() //nolint:errcheck
	if res.resp.StatusCode != http.StatusOK {
		t.Fatalf("step racing its own eviction: status %d, want 200", res.resp.StatusCode)
	}

	// The evicted token is gone; the survivor keeps working.
	if r := post(t, ts.URL+"/v1/session/"+first.Session+"/step", finestStep(16), nil); r.StatusCode != http.StatusGone {
		t.Fatalf("step after eviction: status %d, want 410", r.StatusCode)
	}
	if r := post(t, ts.URL+"/v1/session/"+second.Session+"/step", finestStep(24), nil); r.StatusCode != http.StatusOK {
		t.Fatalf("surviving session step: status %d", r.StatusCode)
	}
	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Sessions.Evicted != 1 || st.Sessions.Active != 1 || st.Sessions.Steps != 2 {
		t.Fatalf("stats after eviction race: %+v", st.Sessions)
	}
}

// TestSessionTableConcurrentStepsAndEvictions hammers the table from
// both sides under the race detector: steppers advancing their own
// sessions (re-creating on 410) while churners force evictions past
// the capacity bound. The invariant at rest: every created session was
// either evicted or is still active, and no request ever saw anything
// but 200 or the documented 410/409.
func TestSessionTableConcurrentStepsAndEvictions(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessions: 2})

	const workers, iters = 4, 25
	var wg sync.WaitGroup
	errs := make(chan string, workers*iters)
	step := func(id string, x int) int {
		body, _ := json.Marshal(finestStep(x))
		r, err := http.Post(ts.URL+"/v1/session/"+id+"/step", "application/json", bytes.NewReader(body))
		if err != nil {
			errs <- err.Error()
			return 0
		}
		defer r.Body.Close()        //nolint:errcheck
		io.Copy(io.Discard, r.Body) //nolint:errcheck
		return r.StatusCode
	}
	create := func() (string, bool) {
		body, _ := json.Marshal(SessionCreateRequest{Hierarchy: ptr(wideHierarchy(0)), Partitioner: "domain", NProcs: 8})
		r, err := http.Post(ts.URL+"/v1/session", "application/json", bytes.NewReader(body))
		if err != nil {
			errs <- err.Error()
			return "", false
		}
		defer r.Body.Close() //nolint:errcheck
		var resp SessionCreateResponse
		if err := json.NewDecoder(r.Body).Decode(&resp); err != nil || resp.Session == "" {
			errs <- "create decoded no session"
			return "", false
		}
		return resp.Session, true
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id, ok := create()
			if !ok {
				return
			}
			for i := 1; i <= iters; i++ {
				switch code := step(id, 4*(i%8)+4); code {
				case http.StatusOK:
				case http.StatusGone:
					// Evicted by a sibling: the documented recovery.
					if id, ok = create(); !ok {
						return
					}
				default:
					errs <- http.StatusText(code)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("worker error: %s", e)
	}

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Sessions == nil {
		t.Fatal("no session stats after the hammer")
	}
	if st.Sessions.Active > 2 {
		t.Errorf("active sessions %d exceed the capacity bound 2", st.Sessions.Active)
	}
	if st.Sessions.Created != st.Sessions.Evicted+st.Sessions.Expired+uint64(st.Sessions.Active) {
		t.Errorf("session accounting does not balance: %+v", st.Sessions)
	}
}

func ptr[T any](v T) *T { return &v }

// TestSessionsOffWireIdentity pins the compatibility criterion: with no
// session requests the whole observable surface — stats body, endpoint
// map, error bodies — is byte-identical to a build without the session
// layer, and after use the session accounting stays out of the
// endpoints map.
func TestSessionsOffWireIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	raw := getRaw(t, ts.URL+"/v1/stats")
	if bytes.Contains(raw, []byte(`"sessions"`)) {
		t.Fatalf("unused session layer leaked into stats: %s", raw)
	}
	// Non-session errors carry no "code" field.
	r := post(t, ts.URL+"/v1/partition", PartitionRequest{Partitioner: "no-such"}, nil)
	body, _ := io.ReadAll(r.Body)
	if r.StatusCode != http.StatusBadRequest || bytes.Contains(body, []byte(`"code"`)) {
		t.Fatalf("plain error body changed: %d %s", r.StatusCode, body)
	}

	create := createSession(t, ts.URL, wideHierarchy(0), "domain", 8)
	post(t, ts.URL+"/v1/session/"+create.Session+"/step", finestStep(8), nil)

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Sessions == nil || st.Sessions.Created != 1 || st.Sessions.Steps != 1 || st.Sessions.Requests < 2 {
		t.Fatalf("session stats after use: %+v", st.Sessions)
	}
	for name := range st.Endpoints {
		if strings.Contains(name, "session") {
			t.Fatalf("session endpoint %q leaked into the endpoints map", name)
		}
	}
}
