package server

import (
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"samr/internal/geom"
	"samr/internal/grid"
	"samr/internal/partition"
)

// The session layer: a delta-encoded streaming surface over the same
// partitioning stack the one-shot endpoints use. A real AMR client
// produces a *sequence* of regrid states in which most levels survive
// from step to step, yet every /v1/partition request re-uploads,
// re-validates, and re-hashes the full hierarchy. A session uploads the
// hierarchy once (POST /v1/session), then advances it with per-level
// deltas (POST /v1/session/{id}/step: "keep" or "replace" per level),
// so the per-step cost — bytes on the wire, JSON decoding, structural
// validation, and signature hashing — is O(changed boxes), not
// O(hierarchy). The server reconstructs each state with
// grid.WithDelta (incremental signature maintenance), then answers
// through exactly the same cache / singleflight / fleet-tier stack as
// /v1/partition: a step response body is byte-identical to the
// equivalent full post.
//
// Stateful partitioners finally compose with the service here: a
// postmap(...) session keeps ONE long-lived partitioner instance whose
// carried previous-assignment state lives server-side, advancing only
// on successful steps (a cancelled step leaves both the session's
// hierarchy and the postmap state untouched — the partitioner
// contract). Stateful results are never cached or offered to the fleet
// tier, exactly as in the one-shot path.
//
// Sessions are soft state in a bounded, TTL'd, mtime-LRU table
// (Config.MaxSessions / Config.SessionTTL): an expired, evicted, or
// unknown session answers 410 Gone with the machine-readable error
// code "session-expired", and the client re-creates the session from
// its current full state — nothing is lost but one full upload.

// SessionHeader carries the session token on session responses.
const SessionHeader = "X-Samr-Session"

// Machine-readable error codes of the session wire contract
// (ErrorResponse.Code).
const (
	// CodeSessionExpired: the step or delete referenced a session that
	// has expired, been evicted, or never existed. The remedy is POST
	// /v1/session with the full current state.
	CodeSessionExpired = "session-expired"
	// CodeSessionBaseMismatch: the step declared a base signature that
	// is not the session's current state — client and server drifted
	// (e.g. a retried step already applied). The remedy is to re-sync
	// or re-create.
	CodeSessionBaseMismatch = "session-base-mismatch"
)

// Level ops of SessionStepRequest.
const (
	// LevelKeep marks a level as unchanged from the session's state.
	LevelKeep = "keep"
	// LevelReplace replaces a level's patch set wholesale.
	LevelReplace = "replace"
)

// session is one client's streaming partitioning state.
type session struct {
	id string
	// mu serializes steps: deltas are order-sensitive.
	mu sync.Mutex
	// h is the current regrid state, signature-tracked so each delta
	// re-hashes only what changed. Owned by the session; levels are
	// immutable once attached.
	h *grid.Hierarchy
	// part is the session's long-lived partitioner instance; only the
	// stateful (postmap) path runs it, so carried state accumulates
	// here, server-side.
	part partition.Partitioner
	// name is the canonical partitioner name (the cache key component).
	name     string
	stateful bool
	nprocs   int

	// lastUsed is the LRU mtime, guarded by the table lock.
	lastUsed time.Time
	elem     *list.Element
}

// sessionTable is the bounded TTL'd session store plus the session
// endpoints' accounting (kept out of the per-endpoint stats map so an
// unused session layer leaves /v1/stats byte-identical to a build
// without one).
type sessionTable struct {
	mu       sync.Mutex
	max      int
	ttl      time.Duration
	sessions map[string]*session
	order    *list.List // front = most recently used
	now      func() time.Time

	created, expired, evicted, steps atomic.Uint64
	resumed, resumeMisses            atomic.Uint64
	http                             endpointStats
}

func newSessionTable(max int, ttl time.Duration) *sessionTable {
	return &sessionTable{
		max:      max,
		ttl:      ttl,
		sessions: make(map[string]*session),
		order:    list.New(),
		now:      time.Now,
	}
}

// lookup returns the live session for id, touching its mtime, or nil
// if it is unknown, expired (removed on the spot), or evicted.
func (t *sessionTable) lookup(id string) *session {
	t.mu.Lock()
	defer t.mu.Unlock()
	sess, ok := t.sessions[id]
	if !ok {
		return nil
	}
	now := t.now()
	if now.Sub(sess.lastUsed) > t.ttl {
		t.removeLocked(sess)
		t.expired.Add(1)
		return nil
	}
	sess.lastUsed = now
	t.order.MoveToFront(sess.elem)
	return sess
}

// put inserts a fresh session, expiring stale entries first and then
// evicting the least recently used past the bound.
func (t *sessionTable) put(sess *session) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	for back := t.order.Back(); back != nil; back = t.order.Back() {
		s := back.Value.(*session)
		if now.Sub(s.lastUsed) <= t.ttl {
			break
		}
		t.removeLocked(s)
		t.expired.Add(1)
	}
	for len(t.sessions) >= t.max {
		t.removeLocked(t.order.Back().Value.(*session))
		t.evicted.Add(1)
	}
	sess.lastUsed = now
	sess.elem = t.order.PushFront(sess)
	t.sessions[sess.id] = sess
	t.created.Add(1)
}

// remove deletes id, reporting whether it was present and live.
func (t *sessionTable) remove(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	sess, ok := t.sessions[id]
	if !ok {
		return false
	}
	live := t.now().Sub(sess.lastUsed) <= t.ttl
	t.removeLocked(sess)
	if !live {
		t.expired.Add(1)
	}
	return live
}

func (t *sessionTable) removeLocked(sess *session) {
	delete(t.sessions, sess.id)
	t.order.Remove(sess.elem)
}

// restore inserts a session rebuilt from a fleet-tier snapshot,
// first-wins: when a live session with the same token already exists
// (two requests raced the same resume, or the owner never actually
// lost it), the existing instance is returned and the rebuilt copy
// discarded — its in-flight steps must all land on one state. Counts
// resumed only on an actual insert, and never created: creates count
// client uploads, resumes count failovers (/v1/stats keeps them
// distinct).
func (t *sessionTable) restore(sess *session) *session {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cur, ok := t.sessions[sess.id]; ok {
		now := t.now()
		if now.Sub(cur.lastUsed) <= t.ttl {
			cur.lastUsed = now
			t.order.MoveToFront(cur.elem)
			return cur
		}
		t.removeLocked(cur)
		t.expired.Add(1)
	}
	for len(t.sessions) >= t.max {
		t.removeLocked(t.order.Back().Value.(*session))
		t.evicted.Add(1)
	}
	sess.lastUsed = t.now()
	sess.elem = t.order.PushFront(sess)
	t.sessions[sess.id] = sess
	t.resumed.Add(1)
	return sess
}

// stats snapshots the session counters, or nil while the layer has
// never been used (keeping the stats body identical to a sessionless
// build until the first session request arrives).
func (t *sessionTable) stats() *SessionCounters {
	if t.http.requests.Load() == 0 {
		return nil
	}
	t.mu.Lock()
	active := len(t.sessions)
	t.mu.Unlock()
	return &SessionCounters{
		Active:       active,
		Capacity:     t.max,
		Created:      t.created.Load(),
		Steps:        t.steps.Load(),
		Expired:      t.expired.Load(),
		Evicted:      t.evicted.Load(),
		Resumed:      t.resumed.Load(),
		ResumeMisses: t.resumeMisses.Load(),
		Requests:     t.http.requests.Load(),
		Errors:       t.http.errors.Load(),
	}
}

// newSessionID returns a 128-bit random hex token.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("session id entropy: " + err.Error()) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// statefulSpec reports whether a canonical partitioner name names a
// stateful (history-carrying) partitioner — the post-mapping wrapper.
// Stateful session results bypass the partition cache and the fleet
// tier: they are not pure functions of (signature, name, nprocs).
func statefulSpec(canonical string) bool {
	return strings.HasPrefix(canonical, "postmap(")
}

// writeSessionGone emits the documented 410 session-expired wire error.
func writeSessionGone(w http.ResponseWriter, id string) {
	writeErrCode(w, http.StatusGone, CodeSessionExpired,
		"session %q expired, was evicted, or never existed; POST /v1/session to start a new one", id)
}

// handleSessionCreate opens a session: full hierarchy upload, spec and
// nprocs fixed for the session's lifetime, incremental signature
// tracking from this state on.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req SessionCreateRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Hierarchy == nil {
		writeErr(w, http.StatusBadRequest, "request carries no hierarchy")
		return
	}
	canonical, err := ParsePartitioner(req.Partitioner)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	h, err := req.Hierarchy.toGrid()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "hierarchy: %v", err)
		return
	}
	if !s.checkProcs(w, &req.NProcs) {
		return
	}
	if !s.checkLive(w, r) {
		return
	}
	h.TrackSignature()
	name := canonical.Name()
	sess := &session{
		id:       newSessionID(),
		h:        h,
		part:     canonical,
		name:     name,
		stateful: statefulSpec(name),
		nprocs:   req.NProcs,
	}
	s.sessions.put(sess)

	resp := SessionCreateResponse{
		Session:     sess.id,
		Signature:   h.Signature().String(),
		Partitioner: name,
		NProcs:      req.NProcs,
		Stateful:    sess.stateful,
		TTLSeconds:  int(s.cfg.SessionTTL / time.Second),
		Levels:      make([]string, h.NumLevels()),
	}
	for l := range resp.Levels {
		resp.Levels[l] = h.LevelSignature(l).String()
	}
	w.Header().Set(SessionHeader, sess.id)
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionStep advances a session by one regrid delta and
// partitions the resulting state. The response body is byte-identical
// to the equivalent full /v1/partition post of the reconstructed
// hierarchy: same result fields, same cache dispositions, same cache
// headers — only the X-Samr-Session header marks the path. A failed
// step (validation, cancellation, deadline) leaves the session state —
// hierarchy and any carried postmap history — exactly as it was, so
// the client retries the same delta.
func (s *Server) handleSessionStep(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	id := r.PathValue("id")
	var req SessionStepRequest
	if !decode(w, r, &req) {
		return
	}
	step := make([]grid.LevelDelta, len(req.Levels))
	for l, op := range req.Levels {
		switch op.Op {
		case LevelKeep:
			if len(op.Boxes) > 0 {
				writeErr(w, http.StatusBadRequest, "level %d: op %q carries boxes", l, LevelKeep)
				return
			}
			step[l] = grid.Keep()
		case LevelReplace:
			boxes := make(geom.BoxList, len(op.Boxes))
			for i, wb := range op.Boxes {
				b, err := wb.toGeom()
				if err != nil {
					writeErr(w, http.StatusBadRequest, "level %d box %d: %v", l, i, err)
					return
				}
				boxes[i] = b
			}
			step[l] = grid.Replace(boxes)
		default:
			writeErr(w, http.StatusBadRequest, "level %d: unknown op %q (have %q, %q)", l, op.Op, LevelKeep, LevelReplace)
			return
		}
	}
	sess := s.sessions.lookup(id)
	if sess == nil {
		// Not held locally: with durable sessions on, the fleet tier may
		// hold a snapshot a now-dead peer wrote — resume under the same
		// token and serve the step as if this daemon had owned it all
		// along. A tier miss keeps the documented soft-state answer.
		if sess = s.resumeSession(ctx, id); sess == nil {
			writeSessionGone(w, id)
			return
		}
		w.Header().Set(SessionResumedHeader, "1")
	}

	sess.mu.Lock()
	defer sess.mu.Unlock()
	if req.Base != "" && req.Base != sess.h.Signature().String() {
		writeErrCode(w, http.StatusConflict, CodeSessionBaseMismatch,
			"step base signature %.12s does not match the session state %.12s", req.Base, sess.h.Signature().String())
		return
	}
	next, err := sess.h.WithDelta(step)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.checkLive(w, r) {
		return
	}

	sig := next.Signature()
	var a *partition.Assignment
	disp := CacheMiss
	if sess.stateful {
		// The session's own instance carries the previous-assignment
		// state; results depend on it, so the cache and tier stay out
		// of the way. A cancelled call leaves that state untouched.
		a, err = sess.part.Partition(ctx, next, sess.nprocs)
	} else {
		key := CacheKey{Sig: sig, Partitioner: sess.name, NProcs: sess.nprocs}
		a, disp, err = s.cache.GetOrCompute(ctx, key, func() (*partition.Assignment, error) {
			// A fresh instance per compute, exactly like the one-shot
			// path: every cached result stays a pure function of its
			// key. Canonical names round-trip through the parser.
			p, perr := ParsePartitioner(sess.name)
			if perr != nil {
				return nil, perr
			}
			return p.Partition(ctx, next, sess.nprocs)
		})
	}
	if err != nil {
		writeFailure(w, err)
		return
	}
	// Commit: the session state advances only on success. The durable
	// snapshot is written after the commit (still under sess.mu, so
	// snapshots for one session never race each other out of order); a
	// failed step leaves the previous snapshot — the last committed
	// state — in place, which is exactly what a resuming peer may serve.
	sess.h = next
	s.sessions.steps.Add(1)
	s.storeSessionSnapshot(sess)

	res := buildPartitionResult(next, sig, sess.name, sess.nprocs, a, disp)
	results := []PartitionResult{res}
	s.writeCacheHeaders(w, results)
	w.Header().Set(SessionHeader, sess.id)
	writeJSON(w, http.StatusOK, PartitionResponse{Results: results})
}

// handleSessionDelete closes a session. Deleting a live session
// answers 204; an expired, evicted, or unknown one answers the same
// 410 session-expired error as a step, so clients need one recovery
// path.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.sessions.remove(id) {
		// With durable sessions on, a snapshot written by a dead peer
		// still proves the token was live — resume it just to delete it,
		// so a client deleting after a failover gets the same 204 it
		// would have gotten from the original owner.
		if s.resumeSession(r.Context(), id) == nil {
			writeSessionGone(w, id)
			return
		}
		w.Header().Set(SessionResumedHeader, "1")
		s.sessions.remove(id)
	}
	s.dropSessionSnapshot(id)
	w.WriteHeader(http.StatusNoContent)
}
