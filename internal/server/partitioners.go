package server

import (
	"fmt"
	"strconv"
	"strings"

	"samr/internal/partition"
	"samr/internal/sfc"
)

// ParsePartitioner turns a wire spec into a fresh partitioner instance.
// The grammar mirrors the Name() strings the partitioners themselves
// print, so any name that appears in experiment output round-trips as a
// request spec. Family aliases give the defaults:
//
//	domain                      -> domain-hilbert-u2
//	domain-<curve>[-u<N>]       -> DomainSFC
//	patch | patch-lpt           -> PatchBased
//	hybrid | nature+fable       -> nature+fable-hilbert-u2-q4-frac
//	nature+fable-<curve>-u<N>-q<Q>-<frac|whole>
//	postmap(<inner spec>)       -> PostMapped wrapper
//
// Specs are case-insensitive. Every call returns a new instance, so
// stateful wrappers (postmap) never leak state across requests.
func ParsePartitioner(spec string) (partition.Partitioner, error) {
	s := strings.ToLower(strings.TrimSpace(spec))
	switch {
	case s == "":
		return nil, fmt.Errorf("empty partitioner spec")
	case strings.HasPrefix(s, "postmap(") && strings.HasSuffix(s, ")"):
		inner, err := ParsePartitioner(s[len("postmap(") : len(s)-1])
		if err != nil {
			return nil, fmt.Errorf("postmap: %w", err)
		}
		return partition.NewPostMapped(inner), nil
	case s == "domain":
		return partition.NewDomainSFC(), nil
	case strings.HasPrefix(s, "domain-"):
		return parseDomain(s[len("domain-"):])
	case s == "patch" || s == "patch-lpt":
		return partition.NewPatchBased(), nil
	case s == "hybrid" || s == "nature+fable":
		return partition.NewNatureFable(), nil
	case strings.HasPrefix(s, "nature+fable-"):
		return parseNatureFable(s[len("nature+fable-"):])
	}
	return nil, fmt.Errorf("unknown partitioner %q (families: domain, patch-lpt, nature+fable, postmap(...))", spec)
}

func parseCurve(name string) (sfc.Curve, error) {
	switch name {
	case "morton":
		return sfc.Morton, nil
	case "hilbert":
		return sfc.Hilbert, nil
	case "rowmajor":
		return sfc.RowMajor, nil
	}
	return 0, fmt.Errorf("unknown curve %q (have morton, hilbert, rowmajor)", name)
}

// parseDomain handles "<curve>[-u<N>]".
func parseDomain(rest string) (partition.Partitioner, error) {
	d := partition.NewDomainSFC()
	parts := strings.Split(rest, "-")
	if len(parts) > 2 {
		return nil, fmt.Errorf("bad domain spec %q, want domain-<curve>[-u<N>]", "domain-"+rest)
	}
	var err error
	if d.Curve, err = parseCurve(parts[0]); err != nil {
		return nil, err
	}
	if len(parts) == 2 {
		if d.UnitSize, err = parseParam(parts[1], 'u'); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// parseNatureFable handles "<curve>-u<N>-q<Q>-<frac|whole>", with every
// component after the curve optional (defaults from NewNatureFable).
func parseNatureFable(rest string) (partition.Partitioner, error) {
	nf := partition.NewNatureFable()
	var err error
	for i, p := range strings.Split(rest, "-") {
		switch {
		case i == 0:
			if nf.Curve, err = parseCurve(p); err != nil {
				return nil, err
			}
		case p == "frac":
			nf.FractionalBlocking = true
		case p == "whole":
			nf.FractionalBlocking = false
		case strings.HasPrefix(p, "u"):
			if nf.AtomicUnit, err = parseParam(p, 'u'); err != nil {
				return nil, err
			}
		case strings.HasPrefix(p, "q"):
			if nf.Groups, err = parseParam(p, 'q'); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("bad nature+fable component %q", p)
		}
	}
	return nf, nil
}

// parseParam parses a "<letter><positive int>" spec component.
func parseParam(p string, letter byte) (int, error) {
	if len(p) < 2 || p[0] != letter {
		return 0, fmt.Errorf("bad parameter %q, want %c<N>", p, letter)
	}
	n, err := strconv.Atoi(p[1:])
	if err != nil || n < 1 {
		return 0, fmt.Errorf("bad parameter %q: want a positive integer after %c", p, letter)
	}
	return n, nil
}
