package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// BenchmarkSessionStepVsFullPost is the tentpole's closed-loop
// comparison: driving the same mostly-unchanged regrid trajectory (64
// static mid-level boxes, one moving finest patch) through repeated
// full /v1/partition posts versus one session advanced by per-level
// deltas. Each sub-benchmark runs against its own fresh server, so the
// cache behavior is identical on both sides; the reported reqB/op
// metric is the bytes a client uploads per step.
func BenchmarkSessionStepVsFullPost(b *testing.B) {
	newServer := func(b *testing.B) *httptest.Server {
		b.Helper()
		s, err := New(Config{})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(s)
		b.Cleanup(ts.Close)
		return ts
	}
	trajectoryX := func(i int) int { return (i % 24) * 8 }
	do := func(b *testing.B, url string, body []byte) {
		b.Helper()
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()              //nolint:errcheck
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}

	b.Run("full-post", func(b *testing.B) {
		ts := newServer(b)
		reqs := make([][]byte, 24)
		for i := range reqs {
			h := wideHierarchy(trajectoryX(i))
			body, err := json.Marshal(PartitionRequest{Hierarchy: &h, Partitioner: "domain", NProcs: 8})
			if err != nil {
				b.Fatal(err)
			}
			reqs[i] = body
		}
		var sent int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			body := reqs[i%len(reqs)]
			do(b, ts.URL+"/v1/partition", body)
			sent += int64(len(body))
		}
		b.ReportMetric(float64(sent)/float64(b.N), "reqB/op")
	})

	b.Run("session-step", func(b *testing.B) {
		ts := newServer(b)
		base := wideHierarchy(trajectoryX(0))
		createBody, err := json.Marshal(SessionCreateRequest{Hierarchy: &base, Partitioner: "domain", NProcs: 8})
		if err != nil {
			b.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/session", "application/json", bytes.NewReader(createBody))
		if err != nil {
			b.Fatal(err)
		}
		var create SessionCreateResponse
		if err := json.NewDecoder(resp.Body).Decode(&create); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close() //nolint:errcheck
		stepURL := fmt.Sprintf("%s/v1/session/%s/step", ts.URL, create.Session)
		reqs := make([][]byte, 24)
		for i := range reqs {
			body, err := json.Marshal(finestStep(trajectoryX(i + 1)))
			if err != nil {
				b.Fatal(err)
			}
			reqs[i] = body
		}
		var sent int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			body := reqs[i%len(reqs)]
			do(b, stepURL, body)
			sent += int64(len(body))
		}
		b.ReportMetric(float64(sent)/float64(b.N), "reqB/op")
	})
}
