//go:build !race

package server

// satLatSlack scales the saturation suite's latency bounds. Without
// the race detector the calibrated bounds hold as-is.
const satLatSlack = 1
