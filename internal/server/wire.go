package server

import (
	"fmt"

	"samr/internal/admit"
	"samr/internal/core"
	"samr/internal/geom"
	"samr/internal/grid"
	"samr/internal/partition"
	"samr/internal/sim"
	"samr/internal/tier"
)

// Wire types: the JSON request/response surface of the samrd API. The
// geometry encoding is deliberately explicit (dim + lo/hi component
// arrays) so clients in any language can produce it without knowing the
// internal IntVect padding convention.

// Box is the wire form of geom.Box: lo inclusive, hi exclusive, dim 2
// or 3. Lo and Hi carry exactly dim components.
type Box struct {
	Dim int   `json:"dim"`
	Lo  []int `json:"lo"`
	Hi  []int `json:"hi"`
}

// Hierarchy is the wire form of grid.Hierarchy.
type Hierarchy struct {
	Domain   Box     `json:"domain"`
	RefRatio int     `json:"ref_ratio"`
	Levels   [][]Box `json:"levels"`
}

// Fragment is the wire form of partition.Fragment.
type Fragment struct {
	Level int `json:"level"`
	Box   Box `json:"box"`
	Owner int `json:"owner"`
}

func fromGeomBox(b geom.Box) Box {
	w := Box{Dim: b.Dim, Lo: make([]int, b.Dim), Hi: make([]int, b.Dim)}
	for d := 0; d < b.Dim; d++ {
		w.Lo[d], w.Hi[d] = b.Lo[d], b.Hi[d]
	}
	return w
}

func (w Box) toGeom() (geom.Box, error) {
	if w.Dim != 2 && w.Dim != 3 {
		return geom.Box{}, fmt.Errorf("box dim must be 2 or 3, got %d", w.Dim)
	}
	if len(w.Lo) != w.Dim || len(w.Hi) != w.Dim {
		return geom.Box{}, fmt.Errorf("box lo/hi must carry %d components, got %d/%d", w.Dim, len(w.Lo), len(w.Hi))
	}
	b := geom.Box{Dim: w.Dim}
	for d := 0; d < geom.MaxDim; d++ {
		b.Lo[d], b.Hi[d] = 0, 1 // padding convention for unused axes
	}
	for d := 0; d < w.Dim; d++ {
		b.Lo[d], b.Hi[d] = w.Lo[d], w.Hi[d]
	}
	return b, nil
}

// FromHierarchy converts an in-process hierarchy to its wire form; Go
// clients (and the examples) use it to build requests without hand-
// rolling the JSON geometry encoding.
func FromHierarchy(h *grid.Hierarchy) Hierarchy { return fromGridHierarchy(h) }

func fromGridHierarchy(h *grid.Hierarchy) Hierarchy {
	w := Hierarchy{Domain: fromGeomBox(h.Domain), RefRatio: h.RefRatio}
	w.Levels = make([][]Box, len(h.Levels))
	for l, lev := range h.Levels {
		w.Levels[l] = make([]Box, len(lev.Boxes))
		for i, b := range lev.Boxes {
			w.Levels[l][i] = fromGeomBox(b)
		}
	}
	return w
}

// toGrid converts and structurally validates a submitted hierarchy.
func (w Hierarchy) toGrid() (*grid.Hierarchy, error) {
	dom, err := w.Domain.toGeom()
	if err != nil {
		return nil, fmt.Errorf("domain: %w", err)
	}
	h := &grid.Hierarchy{Domain: dom, RefRatio: w.RefRatio}
	for l, lev := range w.Levels {
		boxes := make(geom.BoxList, len(lev))
		for i, wb := range lev {
			if boxes[i], err = wb.toGeom(); err != nil {
				return nil, fmt.Errorf("level %d box %d: %w", l, i, err)
			}
		}
		h.Levels = append(h.Levels, grid.Level{Boxes: boxes})
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return h, nil
}

// SelectRequest submits one hierarchy — or an ordered sequence of them —
// for meta-partitioner classification. A sequence is classified in
// order through one classifier, so the hysteresis and history state
// behave exactly as in an in-process run.
type SelectRequest struct {
	Hierarchy   *Hierarchy  `json:"hierarchy,omitempty"`
	Hierarchies []Hierarchy `json:"hierarchies,omitempty"`
	// NProcs sizes the per-step time slot estimate; defaults to the
	// server's configured processor count.
	NProcs int `json:"nprocs,omitempty"`
	// PartitionCost (seconds per repartitioning) seeds the dimension-II
	// model; 0 uses the server default.
	PartitionCost float64 `json:"partition_cost,omitempty"`
}

// Selection is the outcome of classifying one hierarchy.
type Selection struct {
	Partitioner string  `json:"partitioner"`
	DimI        float64 `json:"dim_i"`
	DimII       float64 `json:"dim_ii"`
	DimIII      float64 `json:"dim_iii"`
	SizeNorm    float64 `json:"size_norm"`
	Points      int64   `json:"points"`
}

// SelectResponse returns one Selection per submitted hierarchy, in
// order.
type SelectResponse struct {
	Selections []Selection `json:"selections"`
}

func selectionFrom(p partition.Partitioner, s core.Sample) Selection {
	return Selection{
		Partitioner: p.Name(),
		DimI:        s.DimI,
		DimII:       s.DimII,
		DimIII:      s.DimIII,
		SizeNorm:    s.SizeNorm,
		Points:      s.Points,
	}
}

// PartitionRequest asks for a named partitioner to decompose one
// hierarchy (or a batch) over nprocs processors.
type PartitionRequest struct {
	Hierarchy   *Hierarchy  `json:"hierarchy,omitempty"`
	Hierarchies []Hierarchy `json:"hierarchies,omitempty"`
	// Partitioner is a spec accepted by ParsePartitioner (e.g.
	// "domain", "domain-morton-u4", "nature+fable", "patch-lpt",
	// "postmap(domain-hilbert-u2)").
	Partitioner string `json:"partitioner"`
	NProcs      int    `json:"nprocs"`
}

// PartitionResult is the decomposition of one hierarchy.
type PartitionResult struct {
	// Signature is the content hash of the submitted hierarchy — the
	// cache address of this result.
	Signature string `json:"signature"`
	// Partitioner is the canonical name of the partitioner that ran
	// (may differ from the request spec, e.g. "domain" expands to
	// "domain-hilbert-u2").
	Partitioner string     `json:"partitioner"`
	NProcs      int        `json:"nprocs"`
	Fragments   []Fragment `json:"fragments"`
	Loads       []int64    `json:"loads"`
	Imbalance   float64    `json:"imbalance"`
	// Cached reports whether this result was served from the partition
	// cache.
	Cached bool `json:"cached"`
	// Cache is the full disposition: "hit", "miss", or "shared" (the
	// result was coalesced onto another request's in-flight compute).
	Cache string `json:"cache"`
}

// PartitionResponse returns one result per submitted hierarchy.
type PartitionResponse struct {
	Results []PartitionResult `json:"results"`
}

// SimulateRequest asks for a trace-driven evaluation of a partitioner
// over a registered trace.
type SimulateRequest struct {
	// Trace names a trace in the server's registry.
	Trace       string `json:"trace"`
	Partitioner string `json:"partitioner"`
	NProcs      int    `json:"nprocs"`
	// Meta switches per-step partitioner choice to the meta-partitioner
	// (Partitioner is then ignored).
	Meta bool `json:"meta,omitempty"`
	// Steps truncates the simulation to the first N snapshots (0 = all).
	Steps int `json:"steps,omitempty"`
	// IncludeSteps adds the per-step metric rows to the response.
	IncludeSteps bool `json:"include_steps,omitempty"`
}

// StepMetrics is the wire form of sim.StepMetrics (loads elided).
type StepMetrics struct {
	Step              int     `json:"step"`
	Imbalance         float64 `json:"imbalance"`
	IntraLevelComm    int64   `json:"intra_level_comm"`
	InterLevelComm    int64   `json:"inter_level_comm"`
	Messages          int64   `json:"messages"`
	RelativeComm      float64 `json:"relative_comm"`
	Migration         int64   `json:"migration"`
	RelativeMigration float64 `json:"relative_migration"`
	EstTime           float64 `json:"est_time"`
}

// SimulateResponse summarizes a trace simulation.
type SimulateResponse struct {
	Trace         string        `json:"trace"`
	Partitioner   string        `json:"partitioner"`
	NProcs        int           `json:"nprocs"`
	Snapshots     int           `json:"snapshots"`
	TotalEstTime  float64       `json:"total_est_time"`
	MeanImbalance float64       `json:"mean_imbalance"`
	Steps         []StepMetrics `json:"steps,omitempty"`
}

func stepMetricsFrom(s sim.StepMetrics) StepMetrics {
	return StepMetrics{
		Step:              s.Step,
		Imbalance:         s.Imbalance,
		IntraLevelComm:    s.IntraLevelComm,
		InterLevelComm:    s.InterLevelComm,
		Messages:          s.Messages,
		RelativeComm:      s.RelativeComm,
		Migration:         s.Migration,
		RelativeMigration: s.RelativeMigration,
		EstTime:           s.EstTime,
	}
}

// TraceInfo describes one registered trace.
type TraceInfo struct {
	Name      string `json:"name"`
	App       string `json:"app"`
	RefRatio  int    `json:"ref_ratio"`
	MaxLevels int    `json:"max_levels"`
	Snapshots int    `json:"snapshots"`
	Domain    Box    `json:"domain"`
}

// TracesResponse lists the registry contents.
type TracesResponse struct {
	Traces []TraceInfo `json:"traces"`
}

// ErrorResponse is the JSON body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
	// Code is a machine-readable error code on errors clients are
	// expected to branch on (e.g. "session-expired" → re-create the
	// session); absent on every other error, keeping those bodies
	// identical to earlier releases.
	Code string `json:"code,omitempty"`
}

// LevelOp is one level's entry in a session step: op "keep" leaves the
// level as the session holds it (boxes must be absent), op "replace"
// substitutes the level's whole patch set with Boxes. A step carries
// exactly the new state's level count, so levels are appended by
// sending a longer list and dropped by sending a shorter one.
type LevelOp struct {
	Op    string `json:"op"`
	Boxes []Box  `json:"boxes,omitempty"`
}

// SessionCreateRequest opens a streaming session: one full hierarchy
// upload, with the partitioner spec and processor count fixed for the
// session's lifetime.
type SessionCreateRequest struct {
	Hierarchy   *Hierarchy `json:"hierarchy"`
	Partitioner string     `json:"partitioner"`
	NProcs      int        `json:"nprocs"`
}

// SessionCreateResponse returns the session token plus the base state's
// content signatures (whole hierarchy and per level), so the client can
// verify agreement before streaming deltas.
type SessionCreateResponse struct {
	// Session is the token; subsequent steps address
	// /v1/session/{token}/step (also echoed in X-Samr-Session).
	Session string `json:"session"`
	// Signature is the content hash of the uploaded base hierarchy.
	Signature string `json:"signature"`
	// Levels are the per-level sub-digests of the base hierarchy.
	Levels []string `json:"levels"`
	// Partitioner is the canonical partitioner name the session runs.
	Partitioner string `json:"partitioner"`
	NProcs      int    `json:"nprocs"`
	// Stateful reports whether the partitioner carries history
	// server-side (postmap): results then depend on the step sequence
	// and bypass the result cache and fleet tier.
	Stateful bool `json:"stateful"`
	// TTLSeconds is the idle expiry horizon: a session untouched this
	// long answers 410 session-expired.
	TTLSeconds int `json:"ttl_seconds"`
}

// SessionStepRequest advances a session by one regrid delta and
// partitions the resulting state. Levels[l] is level l of the NEW
// state.
type SessionStepRequest struct {
	Levels []LevelOp `json:"levels"`
	// Base optionally pins the step to a session state: if it does not
	// match the session's current signature the step is rejected with
	// 409 session-base-mismatch instead of silently applying the delta
	// to a drifted state.
	Base string `json:"base,omitempty"`
}

// SessionCounters is the session layer's accounting in /v1/stats.
type SessionCounters struct {
	// Active is the current table occupancy; Capacity its bound.
	Active   int `json:"active"`
	Capacity int `json:"capacity"`
	// Created counts sessions opened; Steps successful step requests;
	// Expired TTL expiries; Evicted LRU evictions past capacity.
	Created uint64 `json:"created"`
	Steps   uint64 `json:"steps"`
	Expired uint64 `json:"expired"`
	Evicted uint64 `json:"evicted"`
	// Resumed counts sessions rebuilt from a fleet-tier snapshot after
	// a request referenced a token this daemon did not hold;
	// ResumeMisses counts such attempts the tier could not answer (the
	// request then got the usual 410). Resumes are deliberately not
	// Created: creates count client uploads, resumes count failovers.
	// Both are omitted (always zero) while TierSessions is off, keeping
	// that stats body identical to earlier releases.
	Resumed      uint64 `json:"resumed,omitempty"`
	ResumeMisses uint64 `json:"resume_misses,omitempty"`
	// Requests/Errors are the session endpoints' HTTP totals (kept out
	// of the endpoints map: an unused session layer reports nothing).
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
}

// CacheCounters is the partition cache's cumulative accounting.
type CacheCounters struct {
	// Hits served a stored result; Misses led a fresh compute (misses
	// equal partitioner executions); Shared coalesced onto another
	// request's in-flight compute.
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Shared  uint64 `json:"shared"`
	Entries int    `json:"entries"`
	// Capacity is the LRU bound.
	Capacity int `json:"capacity"`
	// Tier counts lookups answered by the second-level fleet tier
	// instead of a partitioner execution; omitted (and always zero)
	// while the tier is disabled, keeping the disabled-mode stats body
	// identical to a tier-less build.
	Tier uint64 `json:"tier,omitempty"`
}

// EndpointCounters is one endpoint's cumulative request accounting.
type EndpointCounters struct {
	Requests uint64 `json:"requests"`
	// Errors counts responses with status >= 400 (including 499/504
	// cancellation outcomes).
	Errors uint64 `json:"errors"`
}

// MemoCounters is the simulation pipeline's cumulative in-run
// memoization accounting: work units answered by an earlier identical
// step of the same trace run instead of recomputed.
type MemoCounters struct {
	// PartitionsMemoized counts snapshots whose partitioning was shared
	// with an earlier content-identical step.
	PartitionsMemoized uint64 `json:"partitions_memoized"`
	// EvaluationsMemoized counts snapshots whose metric evaluation was
	// shared with an earlier identical (signature, assignment) step.
	EvaluationsMemoized uint64 `json:"evaluations_memoized"`
	// MigrationsShortCircuited counts consecutive-step migration scans
	// answered without recomputation: either both steps share one
	// assignment over content-identical hierarchies (exactly zero
	// points move) or the pair's moved-point count was served from the
	// migration cache.
	MigrationsShortCircuited uint64 `json:"migrations_short_circuited"`
}

// ReadyResponse is the body of GET /readyz: Status is "ready" (200) or
// "not ready" (503), with Reason naming why ("draining" once shutdown
// began, "saturated" while the admission queue is full).
type ReadyResponse struct {
	Status string `json:"status"`
	Reason string `json:"reason,omitempty"`
}

// StatsResponse is the reply of GET /v1/stats.
type StatsResponse struct {
	Cache CacheCounters `json:"cache"`
	// UnitChains is the partition-layer memoization accounting: the
	// content-addressed unit-chain, hybrid-prep, and level-index caches
	// under the partitioners (summed).
	UnitChains CacheCounters `json:"unit_chains"`
	// SimMemo is the simulator's trace-run memoization accounting.
	SimMemo MemoCounters `json:"sim_memo"`
	// InFlight is the number of requests currently being handled,
	// including the stats request itself.
	InFlight int64 `json:"in_flight"`
	// PoolSize is the process-wide worker-pool width batch work fans
	// out over.
	PoolSize  int                         `json:"pool_size"`
	Endpoints map[string]EndpointCounters `json:"endpoints"`
	// Admission is the admission controller's counters and per-tenant
	// gauges (shed/queued/throttled accounting); absent while
	// admission is disabled, keeping the disabled-mode stats reply
	// identical to the pre-admission wire format.
	Admission *admit.Stats `json:"admission,omitempty"`
	// Tier is the fleet cache tier's accounting (disk store, peer
	// protocol, circuit breaker); absent while the tier is disabled,
	// keeping the disabled-mode stats reply identical to a tier-less
	// build.
	Tier *tier.Stats `json:"tier,omitempty"`
	// Sessions is the streaming-session layer's accounting; absent
	// until the first session request arrives, keeping the sessionless
	// stats reply identical to earlier releases.
	Sessions *SessionCounters `json:"sessions,omitempty"`
}
