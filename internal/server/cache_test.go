package server

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"samr/internal/geom"
	"samr/internal/grid"
	"samr/internal/partition"
)

func sigOf(i int) geom.Signature {
	return geom.BoxList{geom.NewBox2(0, 0, i+1, i+1)}.Signature()
}

func TestPartitionCacheLRUEviction(t *testing.T) {
	c := NewPartitionCache(3)
	a := &partition.Assignment{NumProcs: 1}
	for i := 0; i < 4; i++ {
		c.Add(CacheKey{Sig: sigOf(i), NProcs: 1}, a)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if _, ok := c.Get(CacheKey{Sig: sigOf(0), NProcs: 1}); ok {
		t.Error("oldest entry survived past capacity")
	}
	for i := 1; i < 4; i++ {
		if _, ok := c.Get(CacheKey{Sig: sigOf(i), NProcs: 1}); !ok {
			t.Errorf("entry %d evicted prematurely", i)
		}
	}

	// Touching an old entry protects it from the next eviction.
	c.Get(CacheKey{Sig: sigOf(1), NProcs: 1}) //nolint:errcheck
	c.Add(CacheKey{Sig: sigOf(9), NProcs: 1}, a)
	if _, ok := c.Get(CacheKey{Sig: sigOf(1), NProcs: 1}); !ok {
		t.Error("recently used entry was evicted")
	}
	if _, ok := c.Get(CacheKey{Sig: sigOf(2), NProcs: 1}); ok {
		t.Error("least recently used entry survived")
	}
}

func TestPartitionCacheKeyComponents(t *testing.T) {
	c := NewPartitionCache(16)
	a := &partition.Assignment{NumProcs: 4}
	base := CacheKey{Sig: sigOf(0), Partitioner: "domain-hilbert-u2", NProcs: 4}
	c.Add(base, a)
	variants := []CacheKey{
		{Sig: sigOf(1), Partitioner: base.Partitioner, NProcs: base.NProcs},
		{Sig: base.Sig, Partitioner: "domain-morton-u2", NProcs: base.NProcs},
		{Sig: base.Sig, Partitioner: base.Partitioner, NProcs: 8},
	}
	for i, k := range variants {
		if _, ok := c.Get(k); ok {
			t.Errorf("variant %d unexpectedly hit", i)
		}
	}
	if got, _ := c.Get(base); got != a {
		t.Error("exact key missed")
	}
	hits, _, _ := c.Stats()
	if hits != 1 {
		t.Errorf("hits = %d, want 1", hits)
	}
}

func TestPartitionCacheConcurrent(t *testing.T) {
	c := NewPartitionCache(8)
	a := &partition.Assignment{NumProcs: 2}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := CacheKey{Sig: sigOf((w + i) % 12), NProcs: 2}
				if _, ok := c.Get(k); !ok {
					c.Add(k, a)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Errorf("Len = %d exceeds capacity", c.Len())
	}
}

// BenchmarkPartitionCacheHit measures the steady-state service fast
// path: signature the hierarchy, hit the cache.
func BenchmarkPartitionCacheHit(b *testing.B) {
	c := NewPartitionCache(64)
	h := grid.NewHierarchy(geom.NewBox2(0, 0, 256, 256), 2)
	h.Levels = append(h.Levels, grid.Level{Boxes: geom.BoxList{geom.NewBox2(64, 64, 192, 192)}})
	a := &partition.Assignment{NumProcs: 16}
	key := CacheKey{Sig: h.Signature(), Partitioner: "domain-hilbert-u2", NProcs: 16}
	c.Add(key, a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := CacheKey{Sig: h.Signature(), Partitioner: "domain-hilbert-u2", NProcs: 16}
		if _, ok := c.Get(k); !ok {
			b.Fatal("unexpected miss")
		}
	}
}

// BenchmarkPartitionCacheMissCompute measures the miss path end to end
// (partition + insert) at a realistic hierarchy size.
func BenchmarkPartitionCacheMissCompute(b *testing.B) {
	h := grid.NewHierarchy(geom.NewBox2(0, 0, 128, 128), 2)
	h.Levels = append(h.Levels, grid.Level{Boxes: geom.BoxList{geom.NewBox2(32, 32, 192, 192)}})
	if err := h.Validate(); err != nil {
		b.Fatal(err)
	}
	c := NewPartitionCache(1) // force every iteration to recompute
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := CacheKey{Sig: h.Signature(), Partitioner: fmt.Sprintf("v%d", i%2), NProcs: 16}
		p := partition.NewDomainSFC()
		a, err := p.Partition(context.Background(), h, 16)
		if err != nil {
			b.Fatal(err)
		}
		c.Add(key, a)
	}
}
