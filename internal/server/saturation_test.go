package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The saturation suite is the PR's graceful-degradation acceptance
// test: it drives offered load well past capacity and checks that the
// service bends instead of breaking — interactive latency stays within
// a fixed bound, excess requests are shed fast with the documented
// 429 + Retry-After wire error before any partitioner runs, and
// goodput (successes inside the client deadline) never collapses below
// the no-admission baseline.
//
// Compute cost is made hardware-independent by injecting a calibrated
// CPU-bound spin into every partition compute through the cache's
// SetOnFlight hook, and every request uses a unique cache key so each
// one really computes. All load/latency parameters are expressed in
// multiples of the calibrated solo service time, so the same contrast
// (offered load ≫ capacity) holds on any runner, race detector
// included.

// spinSink defeats dead-code elimination of the calibrated spin.
var spinSink atomic.Uint64

func spinIters(n int) {
	x := uint64(1)
	for i := 0; i < n; i++ {
		x = x*2862933555777941757 + 3037000493
	}
	spinSink.Store(x)
}

// spinWork burns n iterations in chunks, yielding the processor
// between chunks. Real partitioner work is full of preemption points;
// an unyielding spin on a single-P runtime would serialize the whole
// server (connection goroutines never reach admission concurrently),
// which is the opposite of the overload this suite must create.
func spinWork(n int) {
	chunk := n/16 + 1
	for done := 0; done < n; done += chunk {
		spinIters(min(chunk, n-done))
		runtime.Gosched()
	}
}

// calibrateSpin returns an iteration count whose uncontended runtime
// is approximately target.
func calibrateSpin(target time.Duration) int {
	n := 1 << 14
	for {
		start := time.Now()
		spinIters(n)
		el := time.Since(start)
		if el >= target/4 {
			scaled := int(float64(n) * float64(target) / float64(el))
			if scaled < 1 {
				scaled = 1
			}
			return scaled
		}
		n *= 2
	}
}

// floodResult aggregates one offered-load run.
type floodResult struct {
	duration    time.Duration
	successes   int
	sheds       int
	timeouts    int
	failures    int
	successLat  []time.Duration
	shedLat     []time.Duration
	shedBadWire int // sheds missing Retry-After >= 1s or the reason header
}

func (f floodResult) goodput() float64 {
	return float64(f.successes) / f.duration.Seconds()
}

// pct returns the q-quantile (0 < q < 1) of lat; lat is sorted in
// place. Headline latency assertions use p90: in-process floods on a
// busy runner measure client-goroutine scheduling delay on top of true
// response time, and that noise owns the extreme tail. p99 keeps a
// loose guard.
func pct(lat []time.Duration, q float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[int(float64(len(lat))*q)]
}

// uniqueKey hands every flood request a distinct (hierarchy, nprocs)
// pair so each admitted request is a fresh compute leader (no cache
// hits shortcutting the load model).
var uniqueKey atomic.Int64

func uniqueRequest() PartitionRequest {
	k := uniqueKey.Add(1)
	h := testHierarchy(int(k % 8))
	return PartitionRequest{Hierarchy: &h, Partitioner: "domain-hilbert-u2", NProcs: 2 + int(k/8%800)}
}

// runFlood hammers /v1/partition from `workers` closed-loop clients for
// `duration`, each request carrying a client-side deadline of
// `timeout`. Shed workers pause `shedPause` before retrying (a
// minimal client courtesy, far cruder than honoring Retry-After — the
// examples/service client does it properly).
func runFlood(tb testing.TB, url string, workers int, duration, timeout, shedPause time.Duration) floodResult {
	tb.Helper()
	client := &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			MaxIdleConns:        2 * workers,
			MaxIdleConnsPerHost: 2 * workers,
		},
	}
	defer client.CloseIdleConnections()

	var mu sync.Mutex
	var res floodResult
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				body, err := json.Marshal(uniqueRequest())
				if err != nil {
					tb.Error(err)
					return
				}
				start := time.Now()
				r, err := client.Post(url+"/v1/partition", "application/json", bytes.NewReader(body))
				lat := time.Since(start)
				if err != nil {
					mu.Lock()
					var ne net.Error
					if errors.As(err, &ne) && ne.Timeout() {
						res.timeouts++
					} else {
						res.failures++
					}
					mu.Unlock()
					continue
				}
				switch r.StatusCode {
				case http.StatusOK:
					mu.Lock()
					res.successes++
					res.successLat = append(res.successLat, lat)
					mu.Unlock()
				case http.StatusTooManyRequests:
					secs, aerr := strconv.Atoi(r.Header.Get("Retry-After"))
					bad := aerr != nil || secs < 1 || r.Header.Get(ShedHeader) == ""
					mu.Lock()
					res.sheds++
					res.shedLat = append(res.shedLat, lat)
					if bad {
						res.shedBadWire++
					}
					mu.Unlock()
				default:
					mu.Lock()
					res.failures++
					mu.Unlock()
				}
				r.Body.Close()
				if r.StatusCode == http.StatusTooManyRequests {
					time.Sleep(shedPause)
				}
			}
		}()
	}
	wg.Wait()
	res.duration = duration
	return res
}

// saturationServer builds a server whose per-request compute is the
// calibrated spin (injected via the compute-leader hook), admission
// per maxInFlight/queueDepth (0 = disabled).
func saturationServer(tb testing.TB, spin int, maxInFlight, queueDepth int) (*Server, *httptest.Server) {
	tb.Helper()
	s, err := New(Config{MaxInFlight: maxInFlight, QueueDepth: queueDepth})
	if err != nil {
		tb.Fatal(err)
	}
	s.Cache().SetOnFlight(func(k CacheKey, leader bool) {
		if leader {
			spinWork(spin)
		}
	})
	ts := httptest.NewServer(s)
	tb.Cleanup(ts.Close)
	return s, ts
}

// TestGracefulDegradationUnderOverload is the acceptance test. Offered
// load is ~48x the in-flight cap (well past the required 2–4x): with
// admission on, interactive p99 stays within a fixed multiple of the
// solo service time and goodput stays near capacity; with admission
// off, the same flood oversubscribes the CPU until ~every request
// blows the client deadline. Sheds are checked for the full wire
// contract and for never having run a partitioner.
func TestGracefulDegradationUnderOverload(t *testing.T) {
	const solo = 5 * time.Millisecond
	spin := calibrateSpin(solo)
	cores := runtime.GOMAXPROCS(0)
	maxInFlight := cores
	queueDepth := 2
	if cores/2 > queueDepth {
		queueDepth = cores / 2
	}
	workers := 32 * cores
	timeout := 20 * solo
	duration := 1500 * time.Millisecond
	shedPause := solo / 2

	// Admission on: capacity-matched in-flight cap, small queue.
	srvOn, tsOn := saturationServer(t, spin, maxInFlight, queueDepth)
	adm := runFlood(t, tsOn.URL, workers, duration, timeout, shedPause)

	// No admission: same flood, unbounded concurrency.
	_, tsOff := saturationServer(t, spin, 0, 0)
	base := runFlood(t, tsOff.URL, workers, duration, timeout, shedPause)

	t.Logf("admission: %d ok (p90 %v, p99 %v), %d shed (p90 %v, p99 %v), %d timeouts, goodput %.0f/s",
		adm.successes, pct(adm.successLat, 0.9), pct(adm.successLat, 0.99),
		adm.sheds, pct(adm.shedLat, 0.9), pct(adm.shedLat, 0.99), adm.timeouts, adm.goodput())
	t.Logf("baseline:  %d ok (p99 %v), %d timeouts, goodput %.0f/s",
		base.successes, pct(base.successLat, 0.99), base.timeouts, base.goodput())

	if adm.failures > 0 || base.failures > 0 {
		t.Fatalf("unexpected failures: admission %d, baseline %d", adm.failures, base.failures)
	}

	// Overload must actually have shed: the offered load is ~48x the
	// cap, so the queue cannot absorb it.
	if adm.sheds == 0 {
		t.Fatal("overload produced no sheds; the test did not reach saturation")
	}
	// Every shed carried the full wire contract (429 checked by
	// classification; Retry-After >= 1s and the reason header here).
	if adm.shedBadWire != 0 {
		t.Errorf("%d of %d sheds missing Retry-After >= 1 or %s", adm.shedBadWire, adm.sheds, ShedHeader)
	}
	// Sheds fail fast: no compute, so well below the service-time
	// multiples an admitted request pays.
	if got, bound := pct(adm.shedLat, 0.9), 8*solo*satLatSlack; got > bound {
		t.Errorf("shed p90 = %v, want <= %v (fail-fast)", got, bound)
	}
	if got, bound := pct(adm.shedLat, 0.99), 20*solo*satLatSlack; got > bound {
		t.Errorf("shed p99 = %v, want <= %v (fail-fast guard)", got, bound)
	}
	// Interactive latency stays within a fixed bound (the client
	// deadline is 20x solo; p90 leaves real headroom under it).
	if adm.successes < 20 {
		t.Fatalf("only %d successes under admission; expected sustained goodput", adm.successes)
	}
	if got, bound := pct(adm.successLat, 0.9), 14*solo*satLatSlack; got > bound {
		t.Errorf("interactive p90 = %v, want <= %v under overload", got, bound)
	}
	if got, bound := pct(adm.successLat, 0.99), 24*solo*satLatSlack; got > bound {
		t.Errorf("interactive p99 = %v, want <= %v under overload", got, bound)
	}
	// Goodput never collapses below the no-admission baseline.
	if adm.goodput() < base.goodput() {
		t.Errorf("goodput with admission %.0f/s fell below the no-admission baseline %.0f/s",
			adm.goodput(), base.goodput())
	}
	// A shed request never ran a partitioner: executions (cache misses)
	// cannot exceed the requests that were actually admitted.
	_, misses, _ := srvOn.Cache().Stats()
	st := srvOn.Admission().Stats()
	if misses > st.Admitted {
		t.Errorf("partitioner executions %d > admitted %d: shed requests computed", misses, st.Admitted)
	}
	if st.ShedTotal() == 0 || st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("admission stats inconsistent after drain: %+v", st)
	}
}

// TestSaturationRampShedMonotonicity is the CI smoke variant: a short
// offered-load ramp against a tiny capacity, asserting the shed
// counter is monotone non-decreasing across stages and that the top of
// the ramp actually sheds.
func TestSaturationRampShedMonotonicity(t *testing.T) {
	const solo = 3 * time.Millisecond
	spin := calibrateSpin(solo)
	srv, ts := saturationServer(t, spin, 1, 1)

	cores := runtime.GOMAXPROCS(0)
	var last uint64
	for stage, workers := range []int{2 * cores, 8 * cores, 24 * cores} {
		runFlood(t, ts.URL, workers, 250*time.Millisecond, 10*solo, solo)
		shed := srv.Admission().Stats().ShedTotal()
		if shed < last {
			t.Fatalf("stage %d: shed counter went backwards (%d -> %d)", stage, last, shed)
		}
		t.Logf("stage %d (%d workers): shed total %d", stage, workers, shed)
		last = shed
	}
	if last == 0 {
		t.Fatal("ramp completed without shedding; capacity 1 under 24x load must shed")
	}
}

// BenchmarkAdmissionSaturation reports the saturation profile as
// benchmark metrics (goodput, interactive p99, shed rate) so the
// BENCH trajectory can watch overload behavior across PRs.
func BenchmarkAdmissionSaturation(b *testing.B) {
	const solo = 3 * time.Millisecond
	spin := calibrateSpin(solo)
	cores := runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		_, ts := saturationServer(b, spin, cores, 2*cores)
		res := runFlood(b, ts.URL, 24*cores, 500*time.Millisecond, 20*solo, solo/2)
		b.ReportMetric(res.goodput(), "goodput/s")
		b.ReportMetric(float64(pct(res.successLat, 0.99).Nanoseconds()), "p99-ns")
		b.ReportMetric(float64(res.sheds)/res.duration.Seconds(), "sheds/s")
	}
}
