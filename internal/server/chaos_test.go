package server

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"samr/internal/fault"
	"samr/internal/tier"
)

// The chaos suite: an in-process fleet driven through seeded fault
// schedules — corrupt resident blobs, injected disk-full, dropped peer
// exchanges, a member killed and later rejoining wiped — asserting the
// self-healing contract: zero client-visible errors, bodies
// byte-identical to a fault-free run, and a wiped member converging to
// an empty manifest diff. Everything here is deterministic apart from
// which member owns which key (httptest ports feed the rendezvous
// hash), so assertions never depend on a particular ownership draw.

// chaosMember is one fleet daemon that can be killed and restarted on
// its original URL (listeners have SO_REUSEADDR, so re-binding the
// address works as soon as the old listener is closed).
type chaosMember struct {
	srv  *Server
	ts   *httptest.Server
	url  string
	addr string
	cfg  Config
	in   *fault.Injector
}

// chaosPlans is the suite's standing fault schedule: periodic resident
// blob corruption, periodic disk-full writes, periodic dropped peer
// fetches, and latency on peer offers.
func chaosPlans() []fault.Plan {
	return []fault.Plan{
		{Point: tier.FaultDiskGet, Mode: fault.Corrupt, Every: 5},
		{Point: tier.FaultDiskPut, Mode: fault.NoSpace, Every: 7},
		{Point: tier.FaultPeerGet, Mode: fault.Error, Every: 6},
		{Point: tier.FaultPeerPut, Mode: fault.Latency, Every: 4, Delay: 2 * time.Millisecond},
	}
}

// newChaosFleet is newFleet with a per-member seeded injector: member i
// runs the shared plan set from seed+i, so every run of the suite
// replays the identical fault schedule per member. A non-nil mutate
// hook adjusts each member's config before the server is built.
func newChaosFleet(t *testing.T, n int, seed int64, plans []fault.Plan, mutate func(*Config)) []*chaosMember {
	t.Helper()
	members := make([]*chaosMember, n)
	urls := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range members {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	for i := range members {
		in, err := fault.New(seed+int64(i), plans...)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			TierDir:   t.TempDir(),
			TierPeers: urls,
			TierSelf:  urls[i],
			Faults:    in,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewUnstartedServer(srv)
		ts.Listener.Close() //nolint:errcheck
		ts.Listener = listeners[i]
		ts.Start()
		t.Cleanup(srv.Close)
		t.Cleanup(ts.Close)
		members[i] = &chaosMember{
			srv: srv, ts: ts, url: urls[i],
			addr: listeners[i].Addr().String(), cfg: cfg, in: in,
		}
	}
	return members
}

// kill stops the member's listener mid-flood, like a crashed daemon.
func (m *chaosMember) kill() {
	m.ts.Close()
	// Drop pooled keep-alive connections so later requests to surviving
	// members never ride a connection the dead one owned.
	http.DefaultClient.CloseIdleConnections()
}

// restart brings the member back on its original URL with cfg (the
// rejoin scenario passes a fresh TierDir: a wiped disk).
func (m *chaosMember) restart(t *testing.T, cfg Config) {
	t.Helper()
	m.ts.Close()
	var ln net.Listener
	var err error
	for i := 0; i < 100; i++ {
		if ln, err = net.Listen("tcp", m.addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("re-binding %s: %v", m.addr, err)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(srv)
	ts.Listener.Close() //nolint:errcheck
	ts.Listener = ln
	ts.Start()
	t.Cleanup(srv.Close)
	t.Cleanup(ts.Close)
	m.srv, m.ts, m.cfg = srv, ts, cfg
	http.DefaultClient.CloseIdleConnections()
}

// TestChaosFleetServesBaselineBodiesUnderFaults is the headline chaos
// property: a fleet under the standing fault schedule — including one
// member killed mid-flood and rejoining wiped — answers every request
// with 200 and a body byte-identical to the fault-free baseline, and
// the rejoined member's repair loop converges to an empty manifest
// diff.
func TestChaosFleetServesBaselineBodiesUnderFaults(t *testing.T) {
	const nHier = 24

	// The fault-free baseline fleet fixes the expected body per
	// hierarchy (tier members and a tier-less recompute already agree;
	// see TestFleetTierServesPeerComputedPartition).
	base := newFleet(t, 3)
	want := make([]string, nHier)
	for i := 0; i < nHier; i++ {
		req := PartitionRequest{Partitioner: "domain", NProcs: 4}
		h := testHierarchy(i)
		req.Hierarchy = &h
		var resp PartitionResponse
		if r := post(t, base[i%3].url+"/v1/partition", req, &resp); r.StatusCode != http.StatusOK {
			t.Fatalf("baseline hierarchy %d: status %d", i, r.StatusCode)
		}
		want[i] = normalizedBody(t, resp)
	}

	fleet := newChaosFleet(t, 3, 42, chaosPlans(), nil)
	check := func(pass int, m *chaosMember, hi int) {
		t.Helper()
		req := PartitionRequest{Partitioner: "domain", NProcs: 4}
		h := testHierarchy(hi)
		req.Hierarchy = &h
		var resp PartitionResponse
		r := post(t, m.url+"/v1/partition", req, &resp)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("pass %d hierarchy %d on %s: status %d (faults must never be client-visible)",
				pass, hi, m.url, r.StatusCode)
		}
		if got := normalizedBody(t, resp); got != want[hi] {
			t.Fatalf("pass %d hierarchy %d on %s: body differs from fault-free baseline\n got: %s\nwant: %s",
				pass, hi, m.url, got, want[hi])
		}
	}

	// Pass 1: the whole fleet serves under faults.
	for i := 0; i < nHier; i++ {
		check(1, fleet[i%3], i)
	}

	// Pass 2: member 2 is dead; the survivors absorb the flood (their
	// breakers for the dead member open along the way, diverting offers
	// and reads to the rendezvous stand-in).
	fleet[2].kill()
	for i := 0; i < nHier; i++ {
		check(2, fleet[i%2], i)
	}

	// Member 2 rejoins wiped — fresh disk, fresh seeded injector, and
	// anti-entropy repair enabled (interval far beyond the test; rounds
	// are driven manually below for determinism).
	cfg := fleet[2].cfg
	cfg.TierDir = t.TempDir()
	cfg.TierRepair = time.Hour
	in2, err := fault.New(999, chaosPlans()...)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = in2
	fleet[2].restart(t, cfg)
	fleet[2].in = in2

	// Pass 3: the whole fleet again, shifted so every member serves
	// hierarchies it has not answered before.
	for i := 0; i < nHier; i++ {
		check(3, fleet[(i+1)%3], i)
	}

	// The schedules actually fired on every member — the passes above
	// ran under live faults, not an idle injector.
	for i, m := range fleet {
		fired := uint64(0)
		for _, ps := range m.in.Stats() {
			fired += ps.Injected
		}
		if fired == 0 {
			t.Errorf("member %d: no fault ever fired; the chaos run was fault-free", i)
		}
	}

	// The wiped member converges: bounded repair rounds pull every key
	// it owns that any peer still holds, down to an empty manifest diff.
	// Injected pull failures (peer.get drops, disk-full writes) only
	// defer keys to a later round.
	rep := fleet[2].srv.Repairer()
	if rep == nil {
		t.Fatal("restarted member has no repairer despite TierRepair")
	}
	ctx := context.Background()
	converged := false
	for r := 0; r < 50 && !converged; r++ {
		converged = len(rep.Missing(ctx)) == 0
		if !converged {
			rep.Round(ctx)
		}
	}
	if !converged {
		t.Fatalf("wiped member still missing %d owned keys after 50 repair rounds", len(rep.Missing(ctx)))
	}
	st := rep.Stats()
	if st.Missing != 0 && st.Rounds > 0 {
		t.Errorf("repair gauge disagrees with convergence: %+v", st)
	}

	// And the rejoined member serves the baseline bodies.
	for i := 0; i < nHier; i += 5 {
		check(4, fleet[2], i)
	}
}

// takeoverPlans is the session-chaos schedule: latency on both session
// snapshot injection points and the peer offer path, plus periodic
// dropped peer fetches (the resume path on a non-owner rides peer
// GETs, so those drops are the ones that can surface as a recoverable
// 410).
func takeoverPlans() []fault.Plan {
	return []fault.Plan{
		{Point: FaultSnapshotPut, Mode: fault.Latency, Every: 2, Delay: time.Millisecond},
		{Point: FaultSnapshotGet, Mode: fault.Latency, Delay: time.Millisecond},
		{Point: tier.FaultPeerPut, Mode: fault.Latency, Every: 3, Delay: time.Millisecond},
		{Point: tier.FaultPeerGet, Mode: fault.Error, Every: 6},
	}
}

// TestChaosSessionTakeover is the tentpole chaos property: a streaming
// session whose owning daemon is killed mid-trajectory continues on a
// peer under the same token — resumed from the fleet-tier snapshot the
// owner wrote on its last committed step — with every step body
// byte-identical to an uninterrupted fault-free baseline. At most one
// recoverable 410 (an injected peer fetch drop on the resume path) is
// tolerated per takeover; everything else must be 200. Both the
// stateless and the stateful (carried postmap history) paths are
// driven.
func TestChaosSessionTakeover(t *testing.T) {
	const preSteps, postSteps = 3, 3
	for _, spec := range []string{"domain", "postmap(domain)"} {
		t.Run(spec, func(t *testing.T) {
			// The uninterrupted baseline: one fault-free daemon runs the
			// whole trajectory in one session.
			_, baseTS := newTestServer(t, Config{})
			baseCreate := createSession(t, baseTS.URL, wideHierarchy(0), spec, 8)
			want := make([]string, preSteps+postSteps+2)
			for i := 1; i < len(want); i++ {
				var resp PartitionResponse
				r := post(t, baseTS.URL+"/v1/session/"+baseCreate.Session+"/step", finestStep(4*i), &resp)
				if r.StatusCode != http.StatusOK {
					t.Fatalf("baseline step %d: status %d", i, r.StatusCode)
				}
				want[i] = normalizedBody(t, resp)
			}

			fleet := newChaosFleet(t, 3, 29, takeoverPlans(), func(cfg *Config) {
				cfg.TierSessions = true
			})
			byURL := map[string]*chaosMember{}
			for _, m := range fleet {
				byURL[m.url] = m
			}

			// Create sessions on member 0 until the snapshot key's
			// rendezvous owner is a different member: each committed
			// step's offer then lands the snapshot on a daemon that
			// survives member 0's death. (A real client never does this —
			// it just retries the 410 — but the test needs the takeover
			// draw to be deterministic.)
			var id string
			var owner *chaosMember
			for try := 0; owner == nil; try++ {
				if try > 200 {
					t.Fatal("no session draw whose snapshot a peer owns")
				}
				create := createSession(t, fleet[0].url, wideHierarchy(0), spec, 8)
				own := fleet[0].srv.Tier().Ring().Owner(sessionSnapshotKey(create.Session))
				if own != fleet[0].url {
					id, owner = create.Session, byURL[own]
				} else {
					del(t, fleet[0].url+"/v1/session/"+create.Session)
				}
			}
			var third *chaosMember
			for _, m := range fleet[1:] {
				if m != owner {
					third = m
				}
			}

			// step drives one delta at a member, tolerating at most one
			// recoverable 410 across the whole test (gone), and reports
			// whether the response was served off a resume.
			gone := 0
			step := func(m *chaosMember, i int) (resumed bool) {
				t.Helper()
				for attempt := 0; ; attempt++ {
					var resp PartitionResponse
					r := post(t, m.url+"/v1/session/"+id+"/step", finestStep(4*i), &resp)
					if r.StatusCode == http.StatusGone && gone == 0 && attempt == 0 {
						// The one recoverable miss the contract allows: an
						// injected peer drop failed the snapshot fetch. No
						// state advanced, so the identical retry applies.
						gone++
						continue
					}
					if r.StatusCode != http.StatusOK {
						t.Fatalf("step %d on %s: status %d (faults must never cost more than one recoverable 410)",
							i, m.url, r.StatusCode)
					}
					if got := normalizedBody(t, resp); got != want[i] {
						t.Fatalf("step %d on %s: body differs from uninterrupted baseline\n got: %s\nwant: %s",
							i, m.url, got, want[i])
					}
					if r.Header.Get(SessionHeader) != id {
						t.Fatalf("step %d on %s: session header %q", i, m.url, r.Header.Get(SessionHeader))
					}
					return r.Header.Get(SessionResumedHeader) == "1"
				}
			}

			// The owner-side trajectory, then the kill.
			for i := 1; i <= preSteps; i++ {
				if step(fleet[0], i) {
					t.Fatalf("step %d on the session's own daemon claimed a resume", i)
				}
			}
			fleet[0].kill()

			// Takeover: the snapshot key's ring owner holds the last
			// committed snapshot on local disk, immune to peer drops.
			resumed := false
			for i := preSteps + 1; i <= preSteps+postSteps; i++ {
				resumed = step(owner, i) || resumed
			}
			if !resumed {
				t.Error("no post-kill step was served off a resume")
			}
			// And a second takeover hop: the remaining member resumes via
			// a peer fetch from the ring owner (this is the path an
			// injected peer drop can turn into the one recoverable 410).
			if !step(third, preSteps+postSteps+1) {
				t.Errorf("step on %s after the owner-side steps did not resume", third.url)
			}
			if gone > 1 {
				t.Errorf("%d recoverable 410s, want at most 1", gone)
			}

			// Resumes are accounted distinctly from creates.
			var st StatsResponse
			getJSON(t, owner.url+"/v1/stats", &st)
			if st.Sessions == nil || st.Sessions.Resumed < 1 || st.Sessions.Created != 0 {
				t.Errorf("owner session stats = %+v, want >=1 resumed and 0 created", st.Sessions)
			}

			// The schedules actually fired: the run was not fault-free.
			for i, m := range fleet {
				fired := uint64(0)
				for _, ps := range m.in.Stats() {
					fired += ps.Injected
				}
				if fired == 0 {
					t.Errorf("member %d: no fault ever fired; the takeover ran fault-free", i)
				}
			}
		})
	}
}

// TestChaosCorruptResidentBlobQuarantined pins the deterministic
// corrupt path: an always-corrupt disk read is rejected by the decoder,
// quarantined, recomputed, and invisible to the client.
func TestChaosCorruptResidentBlobQuarantined(t *testing.T) {
	dir := t.TempDir()
	req := PartitionRequest{Partitioner: "domain", NProcs: 8}
	h := testHierarchy(11)
	req.Hierarchy = &h

	// A fault-free daemon computes and persists the entry.
	_, ts1 := newTestServer(t, Config{TierDir: dir})
	var resp1 PartitionResponse
	post(t, ts1.URL+"/v1/partition", req, &resp1)

	// A restarted daemon (cold memory cache, same dir) reads every
	// resident blob damaged.
	in, err := fault.New(7, fault.Plan{Point: tier.FaultDiskGet, Mode: fault.Corrupt})
	if err != nil {
		t.Fatal(err)
	}
	srv2, ts2 := newTestServer(t, Config{TierDir: dir, Faults: in})
	var resp2 PartitionResponse
	r := post(t, ts2.URL+"/v1/partition", req, &resp2)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d under corrupt reads", r.StatusCode)
	}
	if got, wantBody := normalizedBody(t, resp2), normalizedBody(t, resp1); got != wantBody {
		t.Error("recompute after quarantine differs from original body")
	}
	if st := srv2.Tier().Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt counter = %d, want 1", st.Corrupt)
	}
}

// TestChaosDiskFullDegradesToCompute pins the deterministic disk-full
// path: with every tier write failing ENOSPC, requests still succeed
// and the failure is visible only as store_errors.
func TestChaosDiskFullDegradesToCompute(t *testing.T) {
	in, err := fault.New(3, fault.Plan{Point: tier.FaultDiskPut, Mode: fault.NoSpace})
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Config{TierDir: t.TempDir(), Faults: in})
	req := PartitionRequest{Partitioner: "domain", NProcs: 8}
	h := testHierarchy(13)
	req.Hierarchy = &h
	for i := 0; i < 2; i++ {
		if r := post(t, ts.URL+"/v1/partition", req, nil); r.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d under injected disk-full", i, r.StatusCode)
		}
	}
	st := srv.Tier().Stats()
	if st.StoreErrors == 0 {
		t.Error("injected disk-full never counted a store error")
	}
	if srv.Tier().Disk().Len() != 0 {
		t.Error("entry landed on a full disk")
	}
}
