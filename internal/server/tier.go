package server

import (
	"context"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"samr/internal/partition"
	"samr/internal/sim"
	"samr/internal/tier"
)

// The fleet cache tier: a second-level cache behind the partition
// cache's memo.Tier hook, composed of a local disk store and the peer
// daemons named in Config.TierPeers (a rendezvous-hash ring). It is an
// optimization layer only — every tier failure (dead peer, corrupt
// blob, full disk) degrades to a local partitioner run, never to a wire
// error — and it is never consulted for stateful partitioner specs
// (postmap wrappers), whose results are not a pure function of the
// cache key.

// tierKeyOf derives the content-addressed fleet key for a partition
// cache key. Every daemon derives the identical key from the identical
// request, which is what lets one daemon's computed result answer
// another's lookup.
func tierKeyOf(k CacheKey) string {
	return tier.Key(k.Sig.String(), k.Partitioner, strconv.Itoa(k.NProcs))
}

// tierExcluded reports whether k must bypass the tier. Postmap-wrapped
// partitioners carry previous-assignment state, so equal keys do not
// imply equal results; caching them fleet-wide would serve one
// daemon's history to another.
func tierExcluded(k CacheKey) bool {
	return strings.HasPrefix(k.Partitioner, "postmap(")
}

// assignmentTier adapts a *tier.Tier (blobs) to the partition cache's
// memo.Tier (assignments): it owns the key derivation, the codec, and
// the corrupt-entry quarantine.
type assignmentTier struct {
	t *tier.Tier
}

func (at assignmentTier) Lookup(ctx context.Context, k CacheKey) (*partition.Assignment, bool) {
	if tierExcluded(k) {
		return nil, false
	}
	key := tierKeyOf(k)
	blob, ok := at.t.Lookup(ctx, key)
	if !ok {
		return nil, false
	}
	a, err := tier.DecodeAssignment(blob)
	if err != nil {
		// A damaged blob is a miss, never a wrong answer; drop the
		// local copy so it is not served again.
		at.t.ReportCorrupt(key)
		return nil, false
	}
	return a, true
}

func (at assignmentTier) Store(k CacheKey, a *partition.Assignment) {
	if tierExcluded(k) {
		return
	}
	at.t.Store(tierKeyOf(k), tier.EncodeAssignment(a))
}

// stepTierKeyOf derives the content-addressed fleet key for a
// simulator step artifact. The "sim-step" prefix keeps the key space
// disjoint from assignment keys (the codec kind byte would reject a
// cross-read anyway); the machine model's four float64s enter the hash
// bit-exactly.
func stepTierKeyOf(k sim.StepTierKey) string {
	m := k.Machine
	return tier.Key("sim-step", k.Sig.String(), k.Partitioner, strconv.Itoa(k.NProcs),
		strconv.FormatUint(math.Float64bits(m.CellTime), 16),
		strconv.FormatUint(math.Float64bits(m.PointBandwidth), 16),
		strconv.FormatUint(math.Float64bits(m.MessageLatency), 16),
		strconv.FormatUint(math.Float64bits(m.MigrationBandwidth), 16))
}

// stepTier adapts a *tier.Tier to sim.StepTier, mirroring
// assignmentTier: key derivation, the step-artifact codec, and the
// corrupt-entry quarantine. Only stateless steps reach it — sim's step
// cache never sees a postmap-wrapped partitioner.
type stepTier struct {
	t *tier.Tier
}

func (st stepTier) Lookup(ctx context.Context, k sim.StepTierKey) (*partition.Assignment, sim.StepMetrics, bool) {
	key := stepTierKeyOf(k)
	blob, ok := st.t.Lookup(ctx, key)
	if !ok {
		return nil, sim.StepMetrics{}, false
	}
	a, sm, err := tier.DecodeStepArtifact(blob)
	if err != nil {
		st.t.ReportCorrupt(key)
		return nil, sim.StepMetrics{}, false
	}
	return a, sm, true
}

func (st stepTier) Store(k sim.StepTierKey, a *partition.Assignment, sm sim.StepMetrics) {
	st.t.Store(stepTierKeyOf(k), tier.EncodeStepArtifact(a, sm))
}

// tierEnabled reports whether the config asks for a tier at all.
func tierEnabled(cfg Config) bool {
	return cfg.TierDir != "" || len(cfg.TierPeers) > 0
}

// initTier assembles the tier from the config, hooks it under the
// partition cache, and registers the peer protocol. Called only when
// tierEnabled: with the tier off, the server's routes, stats body, and
// responses are byte-identical to a tier-less build. The repair layer
// is a second opt-in: without TierRepair the manifest route is not
// registered and no background goroutine exists, keeping a
// repair-less fleet byte-identical to the previous release.
func (s *Server) initTier() error {
	t, err := tier.New(tier.Config{
		Dir:      s.cfg.TierDir,
		MaxBytes: s.cfg.TierMaxBytes,
		Peers:    s.cfg.TierPeers,
		Self:     s.cfg.TierSelf,
		Faults:   s.cfg.Faults,
	})
	if err != nil {
		return err
	}
	s.tier = t
	s.cache.SetTier(assignmentTier{t: t})
	if s.cfg.TierSimSteps {
		sim.SetStepTier(stepTier{t: t})
	}
	// The peer protocol is observability-class: it must keep answering
	// while the compute path sheds load (a shed daemon can still serve
	// its disk store), so it bypasses admission like /v1/stats does.
	s.mux.HandleFunc("GET /v1/tier/{key}", s.observe("tier", s.handleTierGet))
	s.mux.HandleFunc("PUT /v1/tier/{key}", s.observe("tier", s.handleTierPut))
	if s.cfg.TierRepair > 0 {
		rep, err := tier.NewRepairer(t, tier.RepairConfig{
			Interval:        s.cfg.TierRepair,
			MaxKeysPerRound: s.cfg.TierRepairKeys,
		})
		if err != nil {
			return err
		}
		s.repairer = rep
		// The literal "manifest" segment outranks the {key} wildcard in
		// the mux, and no valid key collides with it (keys are 64 hex).
		s.mux.HandleFunc("GET /v1/tier/manifest", s.observe("tier", s.handleTierManifest))
		ctx, cancel := context.WithCancel(context.Background())
		s.repairCancel = cancel
		s.repairDone = make(chan struct{})
		go func() {
			defer close(s.repairDone)
			rep.Run(ctx)
		}()
	}
	return nil
}

// Tier exposes the fleet tier (nil when disabled) for stats reporting
// and tests.
func (s *Server) Tier() *tier.Tier { return s.tier }

// Repairer exposes the anti-entropy repairer (nil when repair is
// disabled); tests drive deterministic rounds through it.
func (s *Server) Repairer() *tier.Repairer { return s.repairer }

func (s *Server) handleTierManifest(w http.ResponseWriter, r *http.Request) {
	// The optional since cursor selects a delta manifest: only keys
	// written after that store generation. Anything unparsable is the
	// full listing — the documented fallback, never an error.
	var since uint64
	if v := r.URL.Query().Get("since"); v != "" {
		if parsed, err := strconv.ParseUint(v, 10, 64); err == nil {
			since = parsed
		}
	}
	s.tier.ServeManifest(w, since)
}

func (s *Server) handleTierGet(w http.ResponseWriter, r *http.Request) {
	s.tier.ServeGet(w, r.PathValue("key"))
}

func (s *Server) handleTierPut(w http.ResponseWriter, r *http.Request) {
	// The body limit middleware already caps reads at MaxBodyBytes.
	blob, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "bad body", http.StatusBadRequest)
		return
	}
	s.tier.ServePut(w, r.PathValue("key"), blob)
}
