package server

import (
	"context"
	"io"
	"net/http"
	"strconv"
	"strings"

	"samr/internal/partition"
	"samr/internal/tier"
)

// The fleet cache tier: a second-level cache behind the partition
// cache's memo.Tier hook, composed of a local disk store and the peer
// daemons named in Config.TierPeers (a rendezvous-hash ring). It is an
// optimization layer only — every tier failure (dead peer, corrupt
// blob, full disk) degrades to a local partitioner run, never to a wire
// error — and it is never consulted for stateful partitioner specs
// (postmap wrappers), whose results are not a pure function of the
// cache key.

// tierKeyOf derives the content-addressed fleet key for a partition
// cache key. Every daemon derives the identical key from the identical
// request, which is what lets one daemon's computed result answer
// another's lookup.
func tierKeyOf(k CacheKey) string {
	return tier.Key(k.Sig.String(), k.Partitioner, strconv.Itoa(k.NProcs))
}

// tierExcluded reports whether k must bypass the tier. Postmap-wrapped
// partitioners carry previous-assignment state, so equal keys do not
// imply equal results; caching them fleet-wide would serve one
// daemon's history to another.
func tierExcluded(k CacheKey) bool {
	return strings.HasPrefix(k.Partitioner, "postmap(")
}

// assignmentTier adapts a *tier.Tier (blobs) to the partition cache's
// memo.Tier (assignments): it owns the key derivation, the codec, and
// the corrupt-entry quarantine.
type assignmentTier struct {
	t *tier.Tier
}

func (at assignmentTier) Lookup(ctx context.Context, k CacheKey) (*partition.Assignment, bool) {
	if tierExcluded(k) {
		return nil, false
	}
	key := tierKeyOf(k)
	blob, ok := at.t.Lookup(ctx, key)
	if !ok {
		return nil, false
	}
	a, err := tier.DecodeAssignment(blob)
	if err != nil {
		// A damaged blob is a miss, never a wrong answer; drop the
		// local copy so it is not served again.
		at.t.ReportCorrupt(key)
		return nil, false
	}
	return a, true
}

func (at assignmentTier) Store(k CacheKey, a *partition.Assignment) {
	if tierExcluded(k) {
		return
	}
	at.t.Store(tierKeyOf(k), tier.EncodeAssignment(a))
}

// tierEnabled reports whether the config asks for a tier at all.
func tierEnabled(cfg Config) bool {
	return cfg.TierDir != "" || len(cfg.TierPeers) > 0
}

// initTier assembles the tier from the config, hooks it under the
// partition cache, and registers the peer protocol. Called only when
// tierEnabled: with the tier off, the server's routes, stats body, and
// responses are byte-identical to a tier-less build.
func (s *Server) initTier() error {
	t, err := tier.New(tier.Config{
		Dir:      s.cfg.TierDir,
		MaxBytes: s.cfg.TierMaxBytes,
		Peers:    s.cfg.TierPeers,
		Self:     s.cfg.TierSelf,
	})
	if err != nil {
		return err
	}
	s.tier = t
	s.cache.SetTier(assignmentTier{t: t})
	// The peer protocol is observability-class: it must keep answering
	// while the compute path sheds load (a shed daemon can still serve
	// its disk store), so it bypasses admission like /v1/stats does.
	s.mux.HandleFunc("GET /v1/tier/{key}", s.observe("tier", s.handleTierGet))
	s.mux.HandleFunc("PUT /v1/tier/{key}", s.observe("tier", s.handleTierPut))
	return nil
}

// Tier exposes the fleet tier (nil when disabled) for stats reporting
// and tests.
func (s *Server) Tier() *tier.Tier { return s.tier }

func (s *Server) handleTierGet(w http.ResponseWriter, r *http.Request) {
	s.tier.ServeGet(w, r.PathValue("key"))
}

func (s *Server) handleTierPut(w http.ResponseWriter, r *http.Request) {
	// The body limit middleware already caps reads at MaxBodyBytes.
	blob, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "bad body", http.StatusBadRequest)
		return
	}
	s.tier.ServePut(w, r.PathValue("key"), blob)
}
