package server

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"samr/internal/sim"
	"samr/internal/tier"
)

// fleetMember is one daemon of an in-process fleet.
type fleetMember struct {
	srv *Server
	ts  *httptest.Server
	url string
	dir string
}

// newFleet starts n samrd instances that know each other as tier
// peers. Listeners are allocated up front so every member's URL is
// known before any server is built — the peer list must be identical
// across the fleet.
func newFleet(t *testing.T, n int) []*fleetMember {
	t.Helper()
	members := make([]*fleetMember, n)
	urls := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range members {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	for i := range members {
		dir := t.TempDir()
		srv, err := New(Config{
			TierDir:   dir,
			TierPeers: urls,
			TierSelf:  urls[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewUnstartedServer(srv)
		ts.Listener.Close() //nolint:errcheck
		ts.Listener = listeners[i]
		ts.Start()
		t.Cleanup(ts.Close)
		members[i] = &fleetMember{srv: srv, ts: ts, url: urls[i], dir: dir}
	}
	return members
}

// normalize zeroes the per-request disposition fields, which are the
// only part of a partition response that legitimately differs between
// the daemon that computed a result and a daemon that tier-served it.
func normalize(resp *PartitionResponse) {
	for i := range resp.Results {
		resp.Results[i].Cached = false
		resp.Results[i].Cache = ""
	}
}

func normalizedBody(t *testing.T, resp PartitionResponse) string {
	t.Helper()
	normalize(&resp)
	raw, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestFleetTierServesPeerComputedPartition is the headline fleet
// property: a partition computed by any member is served byte-identically
// by every other member without recomputation.
func TestFleetTierServesPeerComputedPartition(t *testing.T) {
	fleet := newFleet(t, 3)
	req := PartitionRequest{Partitioner: "domain", NProcs: 8}
	h := testHierarchy(3)
	req.Hierarchy = &h

	// Member A computes: a plain miss, stored to disk and offered to
	// the key's ring owner.
	var respA PartitionResponse
	rA := post(t, fleet[0].url+"/v1/partition", req, &respA)
	if got := rA.Header.Get("X-Samr-Cache"); got != "miss" {
		t.Fatalf("computing daemon X-Samr-Cache = %q, want miss", got)
	}
	want := normalizedBody(t, respA)

	// Every other member serves the identical decomposition from the
	// tier: no local entry, no recomputation.
	for _, m := range fleet[1:] {
		var resp PartitionResponse
		r := post(t, m.url+"/v1/partition", req, &resp)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", m.url, r.StatusCode)
		}
		if got := r.Header.Get("X-Samr-Cache"); got != "tier" {
			t.Errorf("%s: X-Samr-Cache = %q, want tier", m.url, got)
		}
		if !resp.Results[0].Cached || resp.Results[0].Cache != CacheTier {
			t.Errorf("%s: disposition = %+v", m.url, resp.Results[0].Cache)
		}
		if got := normalizedBody(t, resp); got != want {
			t.Errorf("%s: tier-served body differs from computed body\n got: %s\nwant: %s", m.url, got, want)
		}
	}

	// A tier-less daemon recomputing from scratch agrees too: the tier
	// only moved bytes, it never changed an answer.
	_, plain := newTestServer(t, Config{})
	var respP PartitionResponse
	post(t, plain.URL+"/v1/partition", req, &respP)
	if got := normalizedBody(t, respP); got != want {
		t.Errorf("tier-less recomputation differs from fleet body\n got: %s\nwant: %s", got, want)
	}

	// The serving members' stats carry the tier accounting.
	var stats StatsResponse
	post(t, fleet[1].url+"/v1/partition", req, nil) // warm: now a local hit
	getJSON(t, fleet[1].url+"/v1/stats", &stats)
	if stats.Cache.Tier != 1 {
		t.Errorf("cache.tier = %d, want 1", stats.Cache.Tier)
	}
	if stats.Tier == nil || stats.Tier.Lookups == 0 {
		t.Errorf("stats.tier missing or empty: %+v", stats.Tier)
	}
}

// TestFleetTierPeerDownFallsBackToCompute kills fleet members and
// floods the survivor: every response must succeed (by local compute at
// worst); a dead peer is never a client-visible error.
func TestFleetTierPeerDownFallsBackToCompute(t *testing.T) {
	fleet := newFleet(t, 3)
	// One member is already dead; another is killed mid-flood. Every
	// request to the survivor must still succeed.
	fleet[1].ts.Close()
	var killOnce sync.Once

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if w == 0 && i == 3 {
					killOnce.Do(fleet[2].ts.Close)
				}
				req := PartitionRequest{Partitioner: "domain", NProcs: 4}
				h := testHierarchy((w*8 + i) % 24)
				req.Hierarchy = &h
				var resp PartitionResponse
				r := post(t, fleet[0].url+"/v1/partition", req, &resp)
				if r.StatusCode != http.StatusOK {
					errs <- r.Status
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for status := range errs {
		t.Errorf("request failed with %s while peers were down", status)
	}
}

// TestTierCorruptDiskEntryFallsBack damages a stored blob on disk: the
// next daemon to read it must fall back to computing, quarantine the
// entry, and still answer correctly.
func TestTierCorruptDiskEntryFallsBack(t *testing.T) {
	dir := t.TempDir()
	req := PartitionRequest{Partitioner: "domain", NProcs: 8}
	h := testHierarchy(5)
	req.Hierarchy = &h

	// First daemon computes and persists the entry.
	srv1, ts1 := newTestServer(t, Config{TierDir: dir})
	var resp1 PartitionResponse
	post(t, ts1.URL+"/v1/partition", req, &resp1)
	if srv1.Tier().Disk().Len() != 1 {
		t.Fatalf("disk entries = %d, want 1", srv1.Tier().Disk().Len())
	}

	// Damage every stored blob in place.
	entries, err := filepath.Glob(filepath.Join(dir, "*.tier"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("tier entries on disk: %v (err %v)", entries, err)
	}
	blob, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xFF
	if err := os.WriteFile(entries[0], blob, 0o644); err != nil {
		t.Fatal(err)
	}

	// A restarted daemon (same dir, cold memory cache) reads the
	// damaged entry, rejects it, computes, and still answers right.
	srv2, ts2 := newTestServer(t, Config{TierDir: dir})
	var resp2 PartitionResponse
	r := post(t, ts2.URL+"/v1/partition", req, &resp2)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d after corrupt tier entry", r.StatusCode)
	}
	if got := r.Header.Get("X-Samr-Cache"); got != "miss" {
		t.Errorf("X-Samr-Cache = %q, want miss (corrupt blob is a miss)", got)
	}
	if got, want := normalizedBody(t, resp2), normalizedBody(t, resp1); got != want {
		t.Errorf("post-corruption recomputation differs from original")
	}
	if st := srv2.Tier().Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt counter = %d, want 1", st.Corrupt)
	}
	// The damaged blob was quarantined and the fresh compute re-stored
	// a clean one: whatever is on disk now must decode.
	key := strings.TrimSuffix(filepath.Base(entries[0]), ".tier")
	if fresh, ok := srv2.Tier().Disk().Get(key); ok {
		if _, err := tier.DecodeAssignment(fresh); err != nil {
			t.Errorf("corrupt blob still on disk: %v", err)
		}
	}
}

// TestTierOffWireIdentity pins the compatibility contract: with no tier
// configured, routes, headers, and bodies are exactly the tier-less
// server's.
func TestTierOffWireIdentity(t *testing.T) {
	srvOff, off := newTestServer(t, Config{})
	_, on := newTestServer(t, Config{TierDir: t.TempDir()})
	if srvOff.Tier() != nil {
		t.Fatal("tier built without tier config")
	}

	req := PartitionRequest{Partitioner: "domain", NProcs: 8}
	h := testHierarchy(7)
	req.Hierarchy = &h

	// A cold first request: both compute, bodies must be byte-identical
	// (the tier only kicks in as a source of bytes, never a change to
	// them) and the tier-off response must not carry tier headers.
	rOff := post(t, off.URL+"/v1/partition", req, nil)
	rOn := post(t, on.URL+"/v1/partition", req, nil)
	bodyOff, _ := io.ReadAll(rOff.Body)
	bodyOn, _ := io.ReadAll(rOn.Body)
	if string(bodyOff) != string(bodyOn) {
		t.Errorf("cold partition bodies differ:\n off: %s\n  on: %s", bodyOff, bodyOn)
	}
	if rOff.Header.Get("X-Samr-Cache-Tier") != "" {
		t.Error("tier-off response carries X-Samr-Cache-Tier")
	}
	if rOn.Header.Get("X-Samr-Cache-Tier") == "" {
		t.Error("tier-on response lacks X-Samr-Cache-Tier")
	}

	// The tier-off stats body has no tier key at all.
	raw := getRaw(t, off.URL+"/v1/stats")
	if strings.Contains(string(raw), `"tier"`) {
		t.Errorf("tier-off stats body mentions tier: %s", raw)
	}

	// The peer protocol is not routed while the tier is off.
	resp, err := http.Get(off.URL + "/v1/tier/" + tier.Key("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("tier-off GET /v1/tier = %d, want 404", resp.StatusCode)
	}
}

// TestPostmapSpecNeverTouchesTier pins the stateful-partitioner
// exclusion: postmap results depend on request history, so the fleet
// tier must neither serve nor store them.
func TestPostmapSpecNeverTouchesTier(t *testing.T) {
	fleet := newFleet(t, 2)
	req := PartitionRequest{Partitioner: "postmap(domain)", NProcs: 8}
	h := testHierarchy(2)
	req.Hierarchy = &h

	post(t, fleet[0].url+"/v1/partition", req, nil)
	r := post(t, fleet[1].url+"/v1/partition", req, nil)
	if got := r.Header.Get("X-Samr-Cache"); got != "miss" {
		t.Errorf("postmap on second daemon X-Samr-Cache = %q, want miss", got)
	}
	for i, m := range fleet {
		if st := m.srv.Tier().Stats(); st.Lookups != 0 || st.Stores != 0 {
			t.Errorf("daemon %d tier touched by postmap: %+v", i, st)
		}
	}
}

// TestTierPeerProtocolValidates exercises the peer endpoints directly:
// garbage keys and garbage blobs never reach the disk store.
func TestTierPeerProtocolValidates(t *testing.T) {
	srv, ts := newTestServer(t, Config{TierDir: t.TempDir()})

	put := func(key string, body string) int {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/tier/"+key, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close() //nolint:errcheck
		return resp.StatusCode
	}

	if code := put(tier.Key("k"), "definitely not a sealed tier blob"); code != http.StatusBadRequest {
		t.Errorf("garbage blob PUT = %d, want 400", code)
	}
	if code := put("not-a-valid-key", ""); code != http.StatusBadRequest {
		t.Errorf("bad key PUT = %d, want 400", code)
	}
	if srv.Tier().Disk().Len() != 0 {
		t.Error("invalid PUT reached the disk store")
	}

	resp, err := http.Get(ts.URL + "/v1/tier/" + tier.Key("absent"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("absent key GET = %d, want 404", resp.StatusCode)
	}
}

// TestSelfHealingOffWireIdentity pins the self-healing compatibility
// contract: with no faults and repair disabled, a healthy tier fleet's
// stats body carries none of the new keys (failover counters, breaker
// list, repair block) and the manifest route does not exist — the wire
// surface is exactly the previous release's.
func TestSelfHealingOffWireIdentity(t *testing.T) {
	fleet := newFleet(t, 2)
	req := PartitionRequest{Partitioner: "domain", NProcs: 8}
	h := testHierarchy(9)
	req.Hierarchy = &h
	post(t, fleet[0].url+"/v1/partition", req, nil)
	post(t, fleet[1].url+"/v1/partition", req, nil) // tier-served

	for _, m := range fleet {
		raw := string(getRaw(t, m.url+"/v1/stats"))
		for _, key := range []string{"failover_reads", "failover_stores", "breakers", "repair"} {
			if strings.Contains(raw, `"`+key+`"`) {
				t.Errorf("%s: healthy repair-less stats body mentions %q: %s", m.url, key, raw)
			}
		}
		resp, err := http.Get(m.url + "/v1/tier/manifest")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close() //nolint:errcheck
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: repair-less GET /v1/tier/manifest = %d, want 404", m.url, resp.StatusCode)
		}
	}
}

// TestSimStepTierEquivalence pins the step-spill contract: a simulation
// whose step artifacts are served from the fleet tier is byte-identical
// to the fresh compute, and to a tier-less run.
func TestSimStepTierEquivalence(t *testing.T) {
	srv, ts := newTestServer(t, Config{TierDir: t.TempDir(), TierSimSteps: true})
	t.Cleanup(srv.Close)
	srv.Registry().Register("synthetic", testTrace(6))
	req := SimulateRequest{Trace: "synthetic", Partitioner: "domain", NProcs: 4, IncludeSteps: true}

	r1 := post(t, ts.URL+"/v1/simulate", req, nil)
	body1, _ := io.ReadAll(r1.Body)

	// Drop the process-wide step memo: the only warm copy of every step
	// artifact is now the tier's disk store.
	sim.FlushStepCaches()
	r2 := post(t, ts.URL+"/v1/simulate", req, nil)
	body2, _ := io.ReadAll(r2.Body)
	if string(body1) != string(body2) {
		t.Errorf("tier-served simulation differs from fresh compute\n got: %s\nwant: %s", body2, body1)
	}
	if st := srv.Tier().Stats(); st.DiskHits == 0 || st.Stores == 0 {
		t.Errorf("step artifacts never moved through the tier: %+v", st)
	}

	// A tier-less recompute agrees too: the tier moved bytes, never
	// changed a step. Close unhooks the process-wide step tier first.
	srv.Close()
	sim.FlushStepCaches()
	srv2, ts2 := newTestServer(t, Config{})
	srv2.Registry().Register("synthetic", testTrace(6))
	r3 := post(t, ts2.URL+"/v1/simulate", req, nil)
	body3, _ := io.ReadAll(r3.Body)
	if string(body1) != string(body3) {
		t.Errorf("tier-less simulation differs from tier-backed run\n got: %s\nwant: %s", body3, body1)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	raw := getRaw(t, url)
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatalf("decoding %s: %v\n%s", url, err, raw)
	}
}

func getRaw(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}
