package server

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"

	"samr/internal/fault"
	"samr/internal/tier"
)

// The fleet-resumable session suite (the ROADMAP's snapshot contract
// is asserted here): sessions written through the tier survive a
// daemon restart under the same token, corrupt or inconsistent
// snapshots decode as misses and are quarantined, deletes work across
// a failover, and with TierSessions off the entire observable surface
// — headers, stats body, and the unknown-token 410 — is byte-identical
// to a build without the resume layer.

// TestTierSessionsRequiresTier pins the config contract: durable
// sessions need somewhere durable to put them.
func TestTierSessionsRequiresTier(t *testing.T) {
	if _, err := New(Config{TierSessions: true}); err == nil {
		t.Fatal("TierSessions without a tier accepted")
	}
}

// TestSessionResumeAcrossRestart is the headline resumability
// property, single-daemon form: a fresh server over the same tier
// directory — a crashed-and-restarted daemon, with an empty session
// table — continues a session under the old token, serving step bodies
// byte-identical to an uninterrupted run, for both the stateless and
// the stateful (carried postmap history) paths.
func TestSessionResumeAcrossRestart(t *testing.T) {
	for _, spec := range []string{"domain", "postmap(domain)"} {
		t.Run(spec, func(t *testing.T) {
			// The uninterrupted reference trajectory.
			_, baseTS := newTestServer(t, Config{})
			baseCreate := createSession(t, baseTS.URL, wideHierarchy(0), spec, 8)
			want := make([]string, 5)
			for i := 1; i < len(want); i++ {
				var resp PartitionResponse
				r := post(t, baseTS.URL+"/v1/session/"+baseCreate.Session+"/step", finestStep(4*i), &resp)
				if r.StatusCode != http.StatusOK {
					t.Fatalf("reference step %d: status %d", i, r.StatusCode)
				}
				want[i] = normalizedBody(t, resp)
			}

			dir := t.TempDir()
			_, ts1 := newTestServer(t, Config{TierDir: dir, TierSessions: true})
			create := createSession(t, ts1.URL, wideHierarchy(0), spec, 8)
			for i := 1; i <= 2; i++ {
				var resp PartitionResponse
				r := post(t, ts1.URL+"/v1/session/"+create.Session+"/step", finestStep(4*i), &resp)
				if r.StatusCode != http.StatusOK {
					t.Fatalf("pre-restart step %d: status %d", i, r.StatusCode)
				}
				if got := normalizedBody(t, resp); got != want[i] {
					t.Fatalf("pre-restart step %d: body differs from reference", i)
				}
			}
			ts1.Close()

			// The restarted daemon: same disk, empty session table.
			_, ts2 := newTestServer(t, Config{TierDir: dir, TierSessions: true})
			for i := 3; i <= 4; i++ {
				var resp PartitionResponse
				r := post(t, ts2.URL+"/v1/session/"+create.Session+"/step", finestStep(4*i), &resp)
				if r.StatusCode != http.StatusOK {
					raw, _ := io.ReadAll(r.Body)
					t.Fatalf("post-restart step %d: status %d\n%s", i, r.StatusCode, raw)
				}
				if got := normalizedBody(t, resp); got != want[i] {
					t.Fatalf("post-restart step %d: body differs from uninterrupted reference\n got: %s\nwant: %s", i, got, want[i])
				}
				// Only the first post-restart step is a resume; once the
				// session is back in the table it serves like any other.
				wantHdr := ""
				if i == 3 {
					wantHdr = "1"
				}
				if got := r.Header.Get(SessionResumedHeader); got != wantHdr {
					t.Errorf("post-restart step %d: %s = %q, want %q", i, SessionResumedHeader, got, wantHdr)
				}
			}

			// Resumes are accounted distinctly from creates.
			var st StatsResponse
			getJSON(t, ts2.URL+"/v1/stats", &st)
			if st.Sessions == nil || st.Sessions.Resumed != 1 || st.Sessions.Created != 0 ||
				st.Sessions.ResumeMisses != 0 || st.Sessions.Steps != 2 {
				t.Errorf("restarted daemon session stats = %+v, want 1 resumed / 0 created / 2 steps", st.Sessions)
			}
		})
	}
}

// TestSessionDeleteAfterFailover: a client deleting its session after
// a failover gets the same 204 the original owner would have answered,
// the local snapshot copy is dropped, and the token is gone for good.
func TestSessionDeleteAfterFailover(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{TierDir: dir, TierSessions: true})
	create := createSession(t, ts1.URL, wideHierarchy(0), "domain", 8)
	if r := post(t, ts1.URL+"/v1/session/"+create.Session+"/step", finestStep(4), nil); r.StatusCode != http.StatusOK {
		t.Fatalf("step: status %d", r.StatusCode)
	}
	ts1.Close()

	srv2, ts2 := newTestServer(t, Config{TierDir: dir, TierSessions: true})
	r := del(t, ts2.URL+"/v1/session/"+create.Session)
	if r.StatusCode != http.StatusNoContent {
		t.Fatalf("failover delete: status %d, want 204", r.StatusCode)
	}
	if r.Header.Get(SessionResumedHeader) != "1" {
		t.Errorf("failover delete did not mark the resume")
	}
	if srv2.Tier().Disk().Has(sessionSnapshotKey(create.Session)) {
		t.Error("delete left the local snapshot copy behind")
	}
	if r := del(t, ts2.URL+"/v1/session/"+create.Session); r.StatusCode != http.StatusGone {
		t.Fatalf("second delete: status %d, want 410", r.StatusCode)
	}
}

// TestSessionResumeCorruptSnapshotQuarantined pins the soft-state
// degradation: a byte-damaged snapshot decodes as a resume miss — the
// documented 410, counted as such — and is quarantined off disk so it
// is never fetched again.
func TestSessionResumeCorruptSnapshotQuarantined(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{TierDir: dir, TierSessions: true})
	create := createSession(t, ts1.URL, wideHierarchy(0), "domain", 8)
	if r := post(t, ts1.URL+"/v1/session/"+create.Session+"/step", finestStep(4), nil); r.StatusCode != http.StatusOK {
		t.Fatalf("step: status %d", r.StatusCode)
	}
	ts1.Close()

	srv2, ts2 := newTestServer(t, Config{TierDir: dir, TierSessions: true})
	key := sessionSnapshotKey(create.Session)
	blob, ok := srv2.Tier().Disk().Get(key)
	if !ok {
		t.Fatal("no snapshot on disk after a committed step")
	}
	if err := srv2.Tier().Disk().Put(key, fault.Damage(blob)); err != nil {
		t.Fatal(err)
	}

	r := post(t, ts2.URL+"/v1/session/"+create.Session+"/step", finestStep(8), nil)
	if r.StatusCode != http.StatusGone || errorCode(t, r) != CodeSessionExpired {
		t.Fatalf("resume from damaged snapshot: status %d, want the plain 410", r.StatusCode)
	}
	if srv2.Tier().Disk().Has(key) {
		t.Error("damaged snapshot not quarantined")
	}
	var st StatsResponse
	getJSON(t, ts2.URL+"/v1/stats", &st)
	if st.Sessions == nil || st.Sessions.ResumeMisses != 1 || st.Sessions.Resumed != 0 {
		t.Errorf("session stats = %+v, want 1 resume miss and 0 resumed", st.Sessions)
	}
}

// TestSessionResumeInconsistentSnapshotQuarantined covers the semantic
// gate behind the envelope: a snapshot that decodes cleanly but whose
// recorded signature state does not match its own geometry (a stale or
// tampered write) resumes nothing and is quarantined like byte damage.
func TestSessionResumeInconsistentSnapshotQuarantined(t *testing.T) {
	srv, ts := newTestServer(t, Config{TierDir: t.TempDir(), TierSessions: true})

	// Signature state exported from one geometry, snapshot built around
	// another: ImportSignatureState must reject the pair.
	wireA, wireB := wideHierarchy(0), wideHierarchy(16)
	ha, err := wireA.toGrid()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := wireB.toGrid()
	if err != nil {
		t.Fatal(err)
	}
	ha.TrackSignature()
	st, ok := ha.ExportSignatureState()
	if !ok {
		t.Fatal("tracked hierarchy exported no signature state")
	}
	spec, err := ParsePartitioner("domain")
	if err != nil {
		t.Fatal(err)
	}
	id := strings.Repeat("ab", 16)
	blob := tier.EncodeSessionSnapshot(&tier.SessionSnapshot{
		Name: spec.Name(), NProcs: 8, Hierarchy: hb, Sig: st,
	})
	key := sessionSnapshotKey(id)
	if err := srv.Tier().Disk().Put(key, blob); err != nil {
		t.Fatal(err)
	}

	r := post(t, ts.URL+"/v1/session/"+id+"/step", finestStep(8), nil)
	if r.StatusCode != http.StatusGone {
		t.Fatalf("resume from inconsistent snapshot: status %d, want 410", r.StatusCode)
	}
	if srv.Tier().Disk().Has(key) {
		t.Error("inconsistent snapshot not quarantined")
	}

	// The rejection really is the signature cross-check: the same
	// snapshot with a self-consistent pair resumes.
	hb2, err := wireB.toGrid()
	if err != nil {
		t.Fatal(err)
	}
	hb2.TrackSignature()
	stB, _ := hb2.ExportSignatureState()
	if err := srv.Tier().Disk().Put(key, tier.EncodeSessionSnapshot(&tier.SessionSnapshot{
		Name: spec.Name(), NProcs: 8, Hierarchy: hb2, Sig: stB,
	})); err != nil {
		t.Fatal(err)
	}
	r = post(t, ts.URL+"/v1/session/"+id+"/step", finestStep(8), nil)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("resume from consistent snapshot: status %d", r.StatusCode)
	}
	if r.Header.Get(SessionResumedHeader) != "1" {
		t.Error("consistent snapshot resume not marked")
	}
}

// TestTierSessionsOffWireIdentity pins the compatibility criterion:
// with the tier on but TierSessions off, the session surface is
// byte-identical to the pre-resume build — an unknown token answers
// the plain 410 without consulting the tier (a perfectly resumable
// snapshot sits there untouched), no response carries the resumed
// header, and the stats body never grows the resume counters.
func TestTierSessionsOffWireIdentity(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{TierDir: dir, TierSessions: true})
	create := createSession(t, ts1.URL, wideHierarchy(0), "domain", 8)
	if r := post(t, ts1.URL+"/v1/session/"+create.Session+"/step", finestStep(4), nil); r.StatusCode != http.StatusOK {
		t.Fatalf("step: status %d", r.StatusCode)
	}
	ts1.Close()

	srv2, ts2 := newTestServer(t, Config{TierDir: dir}) // resume layer off
	key := sessionSnapshotKey(create.Session)
	if !srv2.Tier().Disk().Has(key) {
		t.Fatal("planted snapshot missing; the no-consult assertion would be vacuous")
	}
	r := post(t, ts2.URL+"/v1/session/"+create.Session+"/step", finestStep(8), nil)
	if r.StatusCode != http.StatusGone || errorCode(t, r) != CodeSessionExpired {
		t.Fatalf("unknown token with resume off: status %d, want the plain 410", r.StatusCode)
	}
	if got := r.Header.Get(SessionResumedHeader); got != "" {
		t.Errorf("410 carried %s = %q", SessionResumedHeader, got)
	}
	if !srv2.Tier().Disk().Has(key) {
		t.Error("resume-off 410 touched the snapshot (tier consulted)")
	}

	// A normal session on the same daemon: no resumed header anywhere,
	// and the stats body carries no resume keys at all (omitempty keeps
	// zero counters invisible — byte-identical to the previous build).
	c2 := createSession(t, ts2.URL, wideHierarchy(0), "domain", 8)
	r = post(t, ts2.URL+"/v1/session/"+c2.Session+"/step", finestStep(4), nil)
	if r.StatusCode != http.StatusOK || r.Header.Get(SessionResumedHeader) != "" {
		t.Fatalf("step with resume off: status %d, header %q", r.StatusCode, r.Header.Get(SessionResumedHeader))
	}
	raw := getRaw(t, ts2.URL+"/v1/stats")
	for _, needle := range []string{`"resumed"`, `"resume_misses"`} {
		if bytes.Contains(raw, []byte(needle)) {
			t.Errorf("resume-off stats body contains %s: %s", needle, raw)
		}
	}
}
