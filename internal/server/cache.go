package server

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"samr/internal/geom"
	"samr/internal/partition"
)

// CacheKey addresses one partitioning result: the content hash of the
// hierarchy plus the canonical partitioner name and processor count.
// Because every partitioner the server runs is a fresh instance (pure
// function of its spec), equal keys imply equal results — the property
// that makes the cache content-addressed rather than merely memoizing.
type CacheKey struct {
	Sig         geom.Signature
	Partitioner string
	NProcs      int
}

// Cache dispositions: how a request's result was obtained.
const (
	// CacheHit served a previously stored result.
	CacheHit = "hit"
	// CacheMiss led a fresh compute (exactly one per distinct in-flight
	// key: misses count partitioner executions).
	CacheMiss = "miss"
	// CacheShared coalesced onto another request's in-flight compute of
	// the same key (the singleflight path: no duplicate execution).
	CacheShared = "shared"
)

// PartitionCache is a bounded LRU of partitioning results shared by
// every request the server handles, with singleflight coalescing of
// concurrent identical misses: while one request computes a key, every
// other request for the same key waits for that result instead of
// recomputing it. Stored assignments are treated as immutable by all
// readers.
type PartitionCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	items   map[CacheKey]*list.Element
	flights map[CacheKey]*flight

	hits, misses, shared atomic.Uint64

	// onFlight, when set (tests only), is called outside the lock after
	// a GetOrCompute call either registers itself as the leader of a
	// key's compute (leader=true) or joins an existing one (false).
	onFlight func(k CacheKey, leader bool)
}

type cacheEntry struct {
	key CacheKey
	a   *partition.Assignment
}

// flight is one in-progress compute; followers wait on done.
type flight struct {
	done chan struct{}
	a    *partition.Assignment
	err  error
}

// NewPartitionCache returns a cache holding at most capacity results
// (minimum 1).
func NewPartitionCache(capacity int) *PartitionCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PartitionCache{
		cap:     capacity,
		order:   list.New(),
		items:   make(map[CacheKey]*list.Element, capacity),
		flights: make(map[CacheKey]*flight),
	}
}

// Get returns the cached assignment for k, updating recency and the
// hit counter. A miss is not counted here: miss accounting belongs to
// GetOrCompute, where a miss implies an execution.
func (c *PartitionCache) Get(k CacheKey) (*partition.Assignment, bool) {
	c.mu.Lock()
	el, ok := c.items[k]
	var a *partition.Assignment
	if ok {
		c.order.MoveToFront(el)
		// Copy the pointer under the lock: addLocked may refresh the
		// entry concurrently.
		a = el.Value.(*cacheEntry).a
	}
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	c.hits.Add(1)
	return a, true
}

// GetOrCompute returns the assignment for k, computing it at most once
// across concurrent callers: a stored result is a hit; the first caller
// of an uncached key becomes the leader, runs compute, and stores the
// result (a miss); callers arriving while that compute is in flight
// wait for it and share its result (shared). A leader whose compute
// fails — cancellation is the only error source — reports its error
// only to itself and to the followers whose own ctx is also dead;
// followers with a live ctx simply retry, so one client's cancellation
// never poisons another's request. The returned disposition is one of
// CacheHit, CacheMiss, CacheShared.
func (c *PartitionCache) GetOrCompute(ctx context.Context, k CacheKey, compute func() (*partition.Assignment, error)) (*partition.Assignment, string, error) {
	for {
		c.mu.Lock()
		if el, ok := c.items[k]; ok {
			c.order.MoveToFront(el)
			a := el.Value.(*cacheEntry).a // copy under the lock (addLocked may refresh)
			c.mu.Unlock()
			c.hits.Add(1)
			return a, CacheHit, nil
		}
		if f, ok := c.flights[k]; ok {
			c.mu.Unlock()
			if hook := c.onFlight; hook != nil {
				hook(k, false)
			}
			select {
			case <-f.done:
				if f.err == nil {
					c.shared.Add(1)
					return f.a, CacheShared, nil
				}
				// The leader was cancelled. If this caller is still
				// live it retries (and may lead the recompute).
				if err := ctx.Err(); err != nil {
					return nil, "", err
				}
				continue
			case <-ctx.Done():
				return nil, "", ctx.Err()
			}
		}
		f := &flight{done: make(chan struct{})}
		c.flights[k] = f
		c.mu.Unlock()
		if hook := c.onFlight; hook != nil {
			hook(k, true)
		}
		c.misses.Add(1)
		f.a, f.err = compute()
		c.mu.Lock()
		delete(c.flights, k)
		if f.err == nil {
			c.addLocked(k, f.a)
		}
		c.mu.Unlock()
		close(f.done)
		if f.err != nil {
			return nil, "", f.err
		}
		return f.a, CacheMiss, nil
	}
}

// Add stores a (idempotently: a concurrent duplicate compute simply
// refreshes the entry) and evicts the least recently used entry past
// capacity.
func (c *PartitionCache) Add(k CacheKey, a *partition.Assignment) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addLocked(k, a)
}

func (c *PartitionCache) addLocked(k CacheKey, a *partition.Assignment) {
	if el, ok := c.items[k]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).a = a
		return
	}
	c.items[k] = c.order.PushFront(&cacheEntry{key: k, a: a})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached results.
func (c *PartitionCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Capacity returns the cache bound.
func (c *PartitionCache) Capacity() int { return c.cap }

// Stats returns the cumulative hit, miss, and shared (coalesced) counts.
// Misses equal actual partitioner executions through GetOrCompute.
func (c *PartitionCache) Stats() (hits, misses, shared uint64) {
	return c.hits.Load(), c.misses.Load(), c.shared.Load()
}
