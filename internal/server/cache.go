package server

import (
	"container/list"
	"sync"
	"sync/atomic"

	"samr/internal/geom"
	"samr/internal/partition"
)

// CacheKey addresses one partitioning result: the content hash of the
// hierarchy plus the canonical partitioner name and processor count.
// Because every partitioner the server runs is a fresh instance (pure
// function of its spec), equal keys imply equal results — the property
// that makes the cache content-addressed rather than merely memoizing.
type CacheKey struct {
	Sig         geom.Signature
	Partitioner string
	NProcs      int
}

// PartitionCache is a bounded LRU of partitioning results shared by
// every request the server handles. Stored assignments are treated as
// immutable by all readers.
type PartitionCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *cacheEntry
	items map[CacheKey]*list.Element

	hits, misses atomic.Uint64
}

type cacheEntry struct {
	key CacheKey
	a   *partition.Assignment
}

// NewPartitionCache returns a cache holding at most capacity results
// (minimum 1).
func NewPartitionCache(capacity int) *PartitionCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PartitionCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[CacheKey]*list.Element, capacity),
	}
}

// Get returns the cached assignment for k, updating recency and the
// hit/miss counters.
func (c *PartitionCache) Get(k CacheKey) (*partition.Assignment, bool) {
	c.mu.Lock()
	el, ok := c.items[k]
	if ok {
		c.order.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*cacheEntry).a, true
}

// Add stores a (idempotently: a concurrent duplicate compute simply
// refreshes the entry) and evicts the least recently used entry past
// capacity.
func (c *PartitionCache) Add(k CacheKey, a *partition.Assignment) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).a = a
		return
	}
	c.items[k] = c.order.PushFront(&cacheEntry{key: k, a: a})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached results.
func (c *PartitionCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns the cumulative hit and miss counts.
func (c *PartitionCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
