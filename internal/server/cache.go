package server

import (
	"context"

	"samr/internal/geom"
	"samr/internal/memo"
	"samr/internal/partition"
)

// CacheKey addresses one partitioning result: the content hash of the
// hierarchy plus the canonical partitioner name and processor count.
// Because every partitioner the server runs is a fresh instance (pure
// function of its spec), equal keys imply equal results — the property
// that makes the cache content-addressed rather than merely memoizing.
type CacheKey struct {
	Sig         geom.Signature
	Partitioner string
	NProcs      int
}

// Cache dispositions: how a request's result was obtained. These are
// the wire names of internal/memo's dispositions.
const (
	// CacheHit served a previously stored result.
	CacheHit = memo.Hit
	// CacheMiss led a fresh compute (exactly one per distinct in-flight
	// key: misses count partitioner executions).
	CacheMiss = memo.Miss
	// CacheShared coalesced onto another request's in-flight compute of
	// the same key (the singleflight path: no duplicate execution).
	CacheShared = memo.Shared
	// CacheTier served a fleet-tier result: the local cache missed but
	// the compute leader found the value in the second-level cache (disk
	// or a peer daemon) instead of running the partitioner.
	CacheTier = memo.TierHit
)

// PartitionCache is a bounded LRU of partitioning results shared by
// every request the server handles, with singleflight coalescing of
// concurrent identical misses: while one request computes a key, every
// other request for the same key waits for that result instead of
// recomputing it. Stored assignments are treated as immutable by all
// readers. It is a thin domain wrapper over the process-shared
// memoization substrate (internal/memo), which also carries the
// in-process unit-chain caches under the partitioners.
type PartitionCache struct {
	inner *memo.Cache[CacheKey, *partition.Assignment]
}

// NewPartitionCache returns a cache holding at most capacity results
// (minimum 1).
func NewPartitionCache(capacity int) *PartitionCache {
	return &PartitionCache{inner: memo.New[CacheKey, *partition.Assignment](capacity)}
}

// SetOnFlight installs the test-only singleflight instrumentation
// hook: it is called after a GetOrCompute call registers as a key's
// compute leader (leader=true) or joins an existing flight (false).
func (c *PartitionCache) SetOnFlight(hook func(k CacheKey, leader bool)) {
	c.inner.SetOnFlight(hook)
}

// Get returns the cached assignment for k, updating recency and the
// hit counter. A miss is not counted here: miss accounting belongs to
// GetOrCompute, where a miss implies an execution.
func (c *PartitionCache) Get(k CacheKey) (*partition.Assignment, bool) {
	return c.inner.Get(k)
}

// GetOrCompute returns the assignment for k, computing it at most once
// across concurrent callers: a stored result is a hit; the first caller
// of an uncached key becomes the leader, runs compute, and stores the
// result (a miss); callers arriving while that compute is in flight
// wait for it and share its result (shared). A leader whose compute
// fails — cancellation is the only error source — reports its error
// only to itself and to the followers whose own ctx is also dead;
// followers with a live ctx simply retry, so one client's cancellation
// never poisons another's request. The returned disposition is one of
// CacheHit, CacheMiss, CacheShared.
func (c *PartitionCache) GetOrCompute(ctx context.Context, k CacheKey, compute func() (*partition.Assignment, error)) (*partition.Assignment, string, error) {
	return c.inner.GetOrCompute(ctx, k, compute)
}

// Add stores a (idempotently: a concurrent duplicate compute simply
// refreshes the entry) and evicts the least recently used entry past
// capacity.
func (c *PartitionCache) Add(k CacheKey, a *partition.Assignment) {
	c.inner.Add(k, a)
}

// Len returns the number of cached results.
func (c *PartitionCache) Len() int { return c.inner.Len() }

// Capacity returns the cache bound.
func (c *PartitionCache) Capacity() int { return c.inner.Capacity() }

// SetTier installs the second-level cache consulted by a compute
// leader before running the partitioner (nil disables; set during
// construction, before the cache serves requests).
func (c *PartitionCache) SetTier(t memo.Tier[CacheKey, *partition.Assignment]) {
	c.inner.SetTier(t)
}

// Stats returns the cumulative hit, miss, and shared (coalesced) counts.
// Misses equal actual partitioner executions through GetOrCompute.
func (c *PartitionCache) Stats() (hits, misses, shared uint64) {
	return c.inner.Stats()
}

// TierHits returns the number of GetOrCompute calls answered by the
// second-level tier instead of a partitioner execution.
func (c *PartitionCache) TierHits() uint64 { return c.inner.TierHits() }
