package server

import "testing"

func TestParsePartitionerRoundTripsNames(t *testing.T) {
	// Every canonical Name() a parse produces must parse back to the
	// same canonical name, so experiment output is always a valid spec.
	specs := []string{
		"domain", "domain-morton", "domain-hilbert-u4", "domain-rowmajor-u1",
		"patch", "patch-lpt",
		"hybrid", "nature+fable", "nature+fable-morton-u4-q2-whole",
		"nature+fable-hilbert-u1-q4-frac",
		"postmap(domain-hilbert-u2)", "postmap(nature+fable)",
		"Domain", "PATCH-LPT", "Postmap(Domain-Morton)",
	}
	for _, spec := range specs {
		p, err := ParsePartitioner(spec)
		if err != nil {
			t.Errorf("%q: %v", spec, err)
			continue
		}
		name := p.Name()
		p2, err := ParsePartitioner(name)
		if err != nil {
			t.Errorf("canonical %q (from %q) does not re-parse: %v", name, spec, err)
			continue
		}
		if p2.Name() != name {
			t.Errorf("%q: re-parse changed name %q -> %q", spec, name, p2.Name())
		}
	}
}

func TestParsePartitionerRejectsGarbage(t *testing.T) {
	for _, spec := range []string{
		"", "quantum", "domain-klein", "domain-hilbert-u0", "domain-hilbert-uX",
		"nature+fable-hilbert-z9", "postmap(", "postmap()", "postmap(quantum)",
		"domain-hilbert-u2-extra",
	} {
		if p, err := ParsePartitioner(spec); err == nil {
			t.Errorf("%q parsed to %q, want error", spec, p.Name())
		}
	}
}

func TestParsePartitionerFreshInstances(t *testing.T) {
	a, _ := ParsePartitioner("postmap(domain)")
	b, _ := ParsePartitioner("postmap(domain)")
	if a == b {
		t.Error("stateful partitioners must not be shared between calls")
	}
}
