package server

import (
	"context"
	"fmt"

	"samr/internal/fault"
	"samr/internal/partition"
	"samr/internal/tier"
)

// Fleet-resumable sessions: with Config.TierSessions on, every
// committed session step writes a sealed snapshot of the session's
// state — hierarchy geometry, tracked signature state, partitioner
// spec, processor count, and (for stateful postmap sessions) the
// carried mapping history — through the fleet tier's store/offer path,
// keyed by the session token. A daemon receiving a step or delete for
// a token it does not hold consults the tier before answering 410: on
// a snapshot hit it rebuilds the session and serves the request under
// the same token, marking the response with X-Samr-Session-Resumed.
//
// The layer is optimization-only, like the tier itself. Sessions stay
// soft state: a tier miss, a corrupt snapshot (quarantined on sight),
// a snapshot whose signature state does not match its rebuilt
// hierarchy, or any decode surprise all fall back to the documented
// 410 — the client re-creates from its full state and loses nothing
// but one upload. Snapshot writes are best-effort for the same reason:
// a failed write costs a future resume, never the step that tried it.

// SessionResumedHeader marks a session response whose session was not
// in this daemon's table and was rebuilt from a fleet-tier snapshot.
const SessionResumedHeader = "X-Samr-Session-Resumed"

// Fault injection points of the session snapshot path (armed by
// Config.Faults, zero-cost when nil).
const (
	// FaultSnapshotPut fires once per snapshot write: an error decision
	// skips the write (the soft-state degradation), corrupt damages the
	// sealed blob before it is stored, latency stalls the write.
	FaultSnapshotPut = "session.snapshot.put"
	// FaultSnapshotGet fires once per resume attempt: an error decision
	// forces a resume miss, corrupt damages the fetched blob (which the
	// envelope then rejects and quarantines), latency stalls the
	// lookup.
	FaultSnapshotGet = "session.snapshot.get"
)

// tierSessions reports whether durable sessions are active.
func (s *Server) tierSessions() bool {
	return s.cfg.TierSessions && s.tier != nil
}

// sessionSnapshotKey derives the tier key of a session's snapshot. The
// "session-snapshot" prefix keeps the key space disjoint from
// content-addressed result blobs; unlike those, a later snapshot for
// the same token legitimately overwrites an earlier one.
func sessionSnapshotKey(id string) string {
	return tier.Key("session-snapshot", id)
}

// storeSessionSnapshot writes the session's committed state through
// the tier, best-effort. Called with sess.mu held, immediately after a
// commit: the snapshot is always a committed state, and snapshots of
// one session can never land out of order.
func (s *Server) storeSessionSnapshot(sess *session) {
	if !s.tierSessions() {
		return
	}
	st, ok := sess.h.ExportSignatureState()
	if !ok {
		return // untracked hierarchy: nothing to bind a resume to
	}
	ss := &tier.SessionSnapshot{
		Name:      sess.name,
		NProcs:    sess.nprocs,
		Hierarchy: sess.h,
		Sig:       st,
		Stateful:  sess.stateful,
	}
	if sess.stateful {
		if pm, ok := sess.part.(*partition.PostMapped); ok {
			ss.PrevHierarchy, ss.PrevAssignment = pm.History()
		}
	}
	blob := tier.EncodeSessionSnapshot(ss)
	if d := s.cfg.Faults.Hit(FaultSnapshotPut); d.Err != nil || d.Delay > 0 || d.Corrupt {
		d.Sleep()
		if d.Err != nil {
			return // skipped write: the session merely loses durability
		}
		if d.Corrupt {
			fault.Damage(blob)
		}
	}
	s.tier.Store(sessionSnapshotKey(sess.id), blob)
}

// dropSessionSnapshot removes the local snapshot copy after an
// explicit delete. Peer copies may linger until their LRU turn:
// sessions are soft state, and a lingering snapshot merely lets the
// deleted token resume — harmless, since the client asked for the
// delete and will not reuse the token.
func (s *Server) dropSessionSnapshot(id string) {
	if !s.tierSessions() {
		return
	}
	if disk := s.tier.Disk(); disk != nil {
		disk.Delete(sessionSnapshotKey(id))
	}
}

// resumeSession attempts to rebuild session id from a fleet-tier
// snapshot, returning the live (restored or raced-ahead) session, or
// nil — the caller then answers the usual 410. Every failure mode
// counts a resume miss; corrupt or inconsistent snapshots are
// additionally quarantined so they are not fetched again.
func (s *Server) resumeSession(ctx context.Context, id string) *session {
	if !s.tierSessions() {
		return nil
	}
	key := sessionSnapshotKey(id)
	d := s.cfg.Faults.Hit(FaultSnapshotGet)
	d.Sleep()
	if d.Err != nil {
		s.sessions.resumeMisses.Add(1)
		return nil
	}
	blob, ok := s.tier.Lookup(ctx, key)
	if !ok {
		s.sessions.resumeMisses.Add(1)
		return nil
	}
	if d.Corrupt {
		fault.Damage(blob)
	}
	ss, err := tier.DecodeSessionSnapshot(blob)
	if err != nil {
		s.tier.ReportCorrupt(key)
		s.sessions.resumeMisses.Add(1)
		return nil
	}
	sess, err := s.sessionFromSnapshot(id, ss)
	if err != nil {
		// Decoded cleanly but fails the semantic cross-checks (stale
		// signature state, non-canonical spec, invalid geometry):
		// quarantine it like byte damage — it can never resume.
		s.tier.ReportCorrupt(key)
		s.sessions.resumeMisses.Add(1)
		return nil
	}
	return s.sessions.restore(sess)
}

// sessionFromSnapshot rebuilds a live session from a decoded snapshot,
// re-validating everything the create path would have: the snapshot
// came over the network and must earn the same trust as a client
// upload. The signature-state import is the strongest check — the
// rebuilt hierarchy is re-tracked from scratch and every per-level
// digest, midstate, and the top signature must match the snapshot
// byte-for-byte, so a resumed session serves exactly the signatures
// the dead owner last served.
func (s *Server) sessionFromSnapshot(id string, ss *tier.SessionSnapshot) (*session, error) {
	if ss.NProcs < 1 || ss.NProcs > s.cfg.MaxProcs {
		return nil, fmt.Errorf("snapshot nprocs %d out of range [1, %d]", ss.NProcs, s.cfg.MaxProcs)
	}
	canonical, err := ParsePartitioner(ss.Name)
	if err != nil {
		return nil, fmt.Errorf("snapshot partitioner: %w", err)
	}
	if canonical.Name() != ss.Name {
		return nil, fmt.Errorf("snapshot partitioner %q is not canonical (parses to %q)", ss.Name, canonical.Name())
	}
	if statefulSpec(ss.Name) != ss.Stateful {
		return nil, fmt.Errorf("snapshot statefulness disagrees with spec %q", ss.Name)
	}
	if ss.Hierarchy == nil {
		return nil, fmt.Errorf("snapshot carries no hierarchy")
	}
	if err := ss.Hierarchy.Validate(); err != nil {
		return nil, fmt.Errorf("snapshot hierarchy: %w", err)
	}
	if err := ss.Hierarchy.ImportSignatureState(ss.Sig); err != nil {
		return nil, err
	}
	sess := &session{
		id:       id,
		h:        ss.Hierarchy,
		part:     canonical,
		name:     ss.Name,
		stateful: ss.Stateful,
		nprocs:   ss.NProcs,
	}
	if ss.Stateful && ss.PrevHierarchy != nil && ss.PrevAssignment != nil {
		pm, ok := canonical.(*partition.PostMapped)
		if !ok {
			return nil, fmt.Errorf("snapshot history for non-postmap partitioner %q", ss.Name)
		}
		if err := ss.PrevHierarchy.Validate(); err != nil {
			return nil, fmt.Errorf("snapshot history hierarchy: %w", err)
		}
		pm.SetHistory(ss.PrevHierarchy, ss.PrevAssignment)
	}
	return sess, nil
}
