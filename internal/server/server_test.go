package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"samr/internal/geom"
	"samr/internal/grid"
	"samr/internal/trace"
)

// testHierarchy builds a valid two-level wire hierarchy whose level-1
// patch is parameterized so tests can produce distinct regrid states.
func testHierarchy(patchX int) Hierarchy {
	return Hierarchy{
		Domain:   Box{Dim: 2, Lo: []int{0, 0}, Hi: []int{32, 32}},
		RefRatio: 2,
		Levels: [][]Box{
			{{Dim: 2, Lo: []int{0, 0}, Hi: []int{32, 32}}},
			{{Dim: 2, Lo: []int{2 * patchX, 8}, Hi: []int{2*patchX + 16, 32}}},
		},
	}
}

// testTrace builds a small synthetic trace of moving refinement.
func testTrace(steps int) *trace.Trace {
	dom := geom.NewBox2(0, 0, 32, 32)
	tr := &trace.Trace{App: "SYNTH", RefRatio: 2, MaxLevels: 2, Domain: dom}
	for s := 0; s < steps; s++ {
		h := grid.NewHierarchy(dom, 2)
		x := 2 * (s % 8)
		h.Levels = append(h.Levels, grid.Level{
			Boxes: geom.BoxList{geom.NewBox2(2*x, 8, 2*x+16, 40)},
		})
		tr.Append(s, float64(s)*0.01, h)
	}
	return tr
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url string, req, resp any) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	raw, _ := io.ReadAll(r.Body)
	if resp != nil && r.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, resp); err != nil {
			t.Fatalf("decoding %s response: %v\n%s", url, err, raw)
		}
	}
	r.Body = io.NopCloser(bytes.NewReader(raw))
	return r
}

func TestPartitionEndpointCacheHitMiss(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := PartitionRequest{Partitioner: "domain", NProcs: 8}
	h := testHierarchy(1)
	req.Hierarchy = &h

	var resp PartitionResponse
	r := post(t, ts.URL+"/v1/partition", req, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d", r.StatusCode)
	}
	if got := r.Header.Get("X-Samr-Cache"); got != "miss" {
		t.Errorf("first request X-Samr-Cache = %q, want miss", got)
	}
	if len(resp.Results) != 1 || resp.Results[0].Cached {
		t.Fatalf("first request results = %+v, want one uncached", resp.Results)
	}
	sig := resp.Results[0].Signature
	if sig == "" || r.Header.Get("X-Samr-Signature") != sig {
		t.Errorf("signature header %q vs body %q", r.Header.Get("X-Samr-Signature"), sig)
	}
	wantFrags := resp.Results[0].Fragments

	// Identical hierarchy -> cache hit with identical decomposition.
	var resp2 PartitionResponse
	r2 := post(t, ts.URL+"/v1/partition", req, &resp2)
	if got := r2.Header.Get("X-Samr-Cache"); got != "hit" {
		t.Errorf("repeat request X-Samr-Cache = %q, want hit", got)
	}
	if !resp2.Results[0].Cached || resp2.Results[0].Signature != sig {
		t.Errorf("repeat request not served from cache: %+v", resp2.Results[0])
	}
	if fmt.Sprint(resp2.Results[0].Fragments) != fmt.Sprint(wantFrags) {
		t.Error("cached decomposition differs from computed one")
	}
	if hits := r2.Header.Get("X-Samr-Cache-Hits"); hits != "1" {
		t.Errorf("X-Samr-Cache-Hits = %q, want 1", hits)
	}

	// Any box mutation changes the signature -> miss.
	h3 := testHierarchy(2)
	req.Hierarchy = &h3
	var resp3 PartitionResponse
	r3 := post(t, ts.URL+"/v1/partition", req, &resp3)
	if got := r3.Header.Get("X-Samr-Cache"); got != "miss" {
		t.Errorf("mutated request X-Samr-Cache = %q, want miss", got)
	}
	if resp3.Results[0].Signature == sig {
		t.Error("mutated hierarchy kept the signature")
	}

	// Same hierarchy, different nprocs -> distinct cache slot.
	req.Hierarchy = &h
	req.NProcs = 4
	r4 := post(t, ts.URL+"/v1/partition", req, nil)
	if got := r4.Header.Get("X-Samr-Cache"); got != "miss" {
		t.Errorf("different-nprocs request X-Samr-Cache = %q, want miss", got)
	}
}

func TestPartitionBatchAndAliases(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := PartitionRequest{
		Hierarchies: []Hierarchy{testHierarchy(0), testHierarchy(3), testHierarchy(0)},
		Partitioner: "nature+fable",
		NProcs:      8,
	}
	var resp PartitionResponse
	r := post(t, ts.URL+"/v1/partition", req, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	// The duplicate submission hits within the same batch or across it;
	// either way signatures of identical states agree and the alias
	// expanded to the canonical name.
	if resp.Results[0].Signature != resp.Results[2].Signature {
		t.Error("identical hierarchies produced different signatures")
	}
	if resp.Results[0].Signature == resp.Results[1].Signature {
		t.Error("distinct hierarchies produced equal signatures")
	}
	if want := "nature+fable-hilbert-u2-q4-frac"; resp.Results[0].Partitioner != want {
		t.Errorf("alias expanded to %q, want %q", resp.Results[0].Partitioner, want)
	}
	for i, res := range resp.Results {
		if len(res.Fragments) == 0 || len(res.Loads) != 8 {
			t.Errorf("result %d incomplete: %d fragments, %d loads", i, len(res.Fragments), len(res.Loads))
		}
	}
}

func TestSelectEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := SelectRequest{Hierarchies: []Hierarchy{testHierarchy(0), testHierarchy(1), testHierarchy(2)}}
	var resp SelectResponse
	r := post(t, ts.URL+"/v1/select", req, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	if len(resp.Selections) != 3 {
		t.Fatalf("got %d selections, want 3", len(resp.Selections))
	}
	for i, sel := range resp.Selections {
		if sel.Partitioner == "" || sel.Points <= 0 {
			t.Errorf("selection %d incomplete: %+v", i, sel)
		}
	}
}

func TestSimulateAndTracesEndpoints(t *testing.T) {
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "synth.trc"))
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, testTrace(6)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, ts := newTestServer(t, Config{TraceDir: dir})

	r, err := http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	var traces TracesResponse
	if err := json.NewDecoder(r.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(traces.Traces) != 1 || traces.Traces[0].Name != "synth" || traces.Traces[0].Snapshots != 6 {
		t.Fatalf("traces = %+v", traces.Traces)
	}

	var resp SimulateResponse
	rr := post(t, ts.URL+"/v1/simulate", SimulateRequest{
		Trace: "synth", Partitioner: "domain", NProcs: 8, IncludeSteps: true,
	}, &resp)
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("simulate status %d", rr.StatusCode)
	}
	if resp.Snapshots != 6 || len(resp.Steps) != 6 || resp.TotalEstTime <= 0 {
		t.Fatalf("simulate response = %+v", resp)
	}

	// Meta-driven simulation over the same trace.
	var metaResp SimulateResponse
	post(t, ts.URL+"/v1/simulate", SimulateRequest{Trace: "synth", Meta: true, NProcs: 8}, &metaResp)
	if metaResp.Snapshots != 6 || metaResp.Partitioner == "" {
		t.Fatalf("meta simulate response = %+v", metaResp)
	}

	// A trace dropped into the directory after startup is found on
	// demand, without touching /v1/traces first.
	f2, err := os.Create(filepath.Join(dir, "late.trc"))
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f2, testTrace(3)); err != nil {
		t.Fatal(err)
	}
	f2.Close()
	var lateResp SimulateResponse
	rl := post(t, ts.URL+"/v1/simulate", SimulateRequest{Trace: "late", Partitioner: "patch-lpt", NProcs: 4}, &lateResp)
	if rl.StatusCode != http.StatusOK || lateResp.Snapshots != 3 {
		t.Fatalf("on-demand trace load failed: status %d resp %+v", rl.StatusCode, lateResp)
	}
}

func TestCorruptTraceSkippedNotFatal(t *testing.T) {
	// A corrupt .trc must not take the daemon down at startup, and the
	// healthy traces alongside it must keep serving.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.trc"), []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, "good.trc"))
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, testTrace(3)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, ts := newTestServer(t, Config{TraceDir: dir})
	var resp SimulateResponse
	if r := post(t, ts.URL+"/v1/simulate", SimulateRequest{Trace: "good", Partitioner: "domain", NProcs: 4}, &resp); r.StatusCode != http.StatusOK {
		t.Errorf("healthy trace: status %d", r.StatusCode)
	}
	if r := post(t, ts.URL+"/v1/simulate", SimulateRequest{Trace: "bad", Partitioner: "domain", NProcs: 4}, nil); r.StatusCode != http.StatusNotFound {
		t.Errorf("corrupt trace: status %d, want 404", r.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{TraceDir: dir})
	h := testHierarchy(0)

	cases := []struct {
		name string
		url  string
		body any
		want int
	}{
		{"unknown partitioner", "/v1/partition", PartitionRequest{Hierarchy: &h, Partitioner: "quantum", NProcs: 4}, http.StatusBadRequest},
		{"no hierarchy", "/v1/partition", PartitionRequest{Partitioner: "domain", NProcs: 4}, http.StatusBadRequest},
		{"bad nprocs", "/v1/partition", PartitionRequest{Hierarchy: &h, Partitioner: "domain", NProcs: -2}, http.StatusBadRequest},
		{"unknown trace", "/v1/simulate", SimulateRequest{Trace: "nope", Partitioner: "domain", NProcs: 4}, http.StatusNotFound},
		{"traversal trace name", "/v1/simulate", SimulateRequest{Trace: "../../etc/passwd", Partitioner: "domain", NProcs: 4}, http.StatusNotFound},
	}
	for _, c := range cases {
		if r := post(t, ts.URL+c.url, c.body, nil); r.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, r.StatusCode, c.want)
		}
	}

	// Structurally invalid hierarchy: level 1 outside the domain.
	bad := testHierarchy(0)
	bad.Levels[1][0].Hi = []int{1000, 1000}
	if r := post(t, ts.URL+"/v1/partition", PartitionRequest{Hierarchy: &bad, Partitioner: "domain", NProcs: 4}, nil); r.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid hierarchy: status %d, want 400", r.StatusCode)
	}

	// Malformed JSON.
	r, err := http.Post(ts.URL+"/v1/partition", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", r.StatusCode)
	}
}

// TestConcurrentMixedRequests drives all endpoints from many goroutines
// at once; run under -race it is the acceptance check that the cache,
// registry, and pool fan-out are data-race free.
func TestConcurrentMixedRequests(t *testing.T) {
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "synth.trc"))
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, testTrace(4)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	srv, ts := newTestServer(t, Config{TraceDir: dir, CacheSize: 8})

	const workers = 8
	const iters = 6
	var wg sync.WaitGroup
	errs := make(chan string, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (w + i) % 3 {
				case 0:
					h := testHierarchy(i % 4) // repeats force cache hits under contention
					var resp PartitionResponse
					r := post(t, ts.URL+"/v1/partition", PartitionRequest{Hierarchy: &h, Partitioner: "domain", NProcs: 8}, &resp)
					if r.StatusCode != http.StatusOK {
						errs <- fmt.Sprintf("partition status %d", r.StatusCode)
					}
				case 1:
					h := testHierarchy(i % 4)
					var resp SelectResponse
					r := post(t, ts.URL+"/v1/select", SelectRequest{Hierarchy: &h}, &resp)
					if r.StatusCode != http.StatusOK {
						errs <- fmt.Sprintf("select status %d", r.StatusCode)
					}
				case 2:
					var resp SimulateResponse
					r := post(t, ts.URL+"/v1/simulate", SimulateRequest{Trace: "synth", Partitioner: "nature+fable", NProcs: 4}, &resp)
					if r.StatusCode != http.StatusOK {
						errs <- fmt.Sprintf("simulate status %d", r.StatusCode)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	hits, misses, shared := srv.Cache().Stats()
	if hits == 0 {
		t.Errorf("concurrent repeated states produced no cache hits (hits=%d misses=%d shared=%d)", hits, misses, shared)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", r.StatusCode)
	}
}
