//go:build race

package server

// satLatSlack scales the saturation suite's latency bounds. The race
// detector slows the HTTP path and the scheduler far more than the
// calibrated spin (which self-adjusts), so the latency assertions get
// headroom; the structural assertions (sheds happen, wire contract,
// shed-never-computes, goodput >= baseline) stay as tight as ever.
const satLatSlack = 3
