// Package sfc implements the space-filling curves used by domain-based
// SAMR partitioners: the Morton (Z-order) curve and the Hilbert curve in
// two dimensions. Domain-based partitioners linearize the atomic units of
// a composite grid along such a curve and then cut the resulting
// one-dimensional sequence into processor portions; the curve's locality
// determines partition surface (communication) quality.
//
// The paper's hybrid partitioner (Nature+Fable) uses a partially ordered
// space-filling curve; both curves here are fully ordered, and Curve is
// the seam where other orders can be plugged in.
package sfc

import (
	"sort"

	"samr/internal/geom"
)

// Curve enumerates the supported space-filling curve families.
type Curve int

const (
	// Morton is the Z-order curve: bit interleaving of the coordinates.
	Morton Curve = iota
	// Hilbert is the Hilbert curve: locality-preserving, no long jumps.
	Hilbert
	// RowMajor is a degenerate "curve" (lexicographic scan); it is the
	// weakest-locality baseline.
	RowMajor
)

// String returns the curve name.
func (c Curve) String() string {
	switch c {
	case Morton:
		return "morton"
	case Hilbert:
		return "hilbert"
	case RowMajor:
		return "rowmajor"
	}
	return "unknown"
}

// maxOrder is the number of bits per coordinate used when linearizing.
// 21 bits keeps 2*21 = 42 bits of index, comfortably inside int64, and
// supports domains up to 2^21 cells per side.
const maxOrder = 21

// Index returns the one-dimensional position of the 2-D point (x, y)
// along the curve. Coordinates must be non-negative. Higher-dimensional
// use coarsens to the first two coordinates (the paper's evaluation is
// 2-D throughout).
func Index(c Curve, x, y int) int64 {
	switch c {
	case Hilbert:
		return hilbertIndex(uint64(x), uint64(y))
	case RowMajor:
		return int64(y)<<maxOrder | int64(x)
	default:
		return mortonIndex(uint64(x), uint64(y))
	}
}

// IndexPoint returns Index for the first two components of p.
func IndexPoint(c Curve, p geom.IntVect) int64 { return Index(c, p[0], p[1]) }

// mortonIndex interleaves the bits of x (even positions) and y (odd).
func mortonIndex(x, y uint64) int64 {
	return int64(spread(x) | spread(y)<<1)
}

// spread inserts a zero bit between every bit of the low 21 bits of v.
func spread(v uint64) uint64 {
	v &= (1 << maxOrder) - 1
	v = (v | v<<16) & 0x0000FFFF0000FFFF
	v = (v | v<<8) & 0x00FF00FF00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F0F0F0F0F
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// hilbertIndex computes the Hilbert curve index of (x, y) on a
// 2^maxOrder x 2^maxOrder grid using the standard rotate-and-flip
// iteration.
func hilbertIndex(x, y uint64) int64 {
	var rx, ry, d uint64
	for s := uint64(1) << (maxOrder - 1); s > 0; s >>= 1 {
		if x&s > 0 {
			rx = 1
		} else {
			rx = 0
		}
		if y&s > 0 {
			ry = 1
		} else {
			ry = 0
		}
		d += s * s * ((3 * rx) ^ ry)
		// Rotate the quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return int64(d)
}

// HilbertPoint is the inverse of hilbertIndex: it returns the (x, y)
// point at distance d along the curve. Exported for curve-quality tests
// and visualization tools.
func HilbertPoint(d int64) (x, y int) {
	var rx, ry uint64
	t := uint64(d)
	var ux, uy uint64
	for s := uint64(1); s < 1<<maxOrder; s <<= 1 {
		rx = 1 & (t / 2)
		ry = 1 & (t ^ rx)
		if ry == 0 {
			if rx == 1 {
				ux = s - 1 - ux
				uy = s - 1 - uy
			}
			ux, uy = uy, ux
		}
		ux += s * rx
		uy += s * ry
		t /= 4
	}
	return int(ux), int(uy)
}

// maxOrder3 is the per-coordinate bit budget for the 3-D Morton index:
// 3*21 = 63 bits fit in int64.
const maxOrder3 = 21

// Index3 returns the 3-D Morton (Z-order) position of (x, y, z); the
// Hilbert and RowMajor curves fall back to layering the 2-D index by z,
// which preserves intra-plane locality. Coordinates must be
// non-negative. The paper's evaluation is 2-D; 3-D ordering exists for
// the volumetric applications the framework targets.
func Index3(c Curve, x, y, z int) int64 {
	switch c {
	case Morton:
		return int64(spread3(uint64(x)) | spread3(uint64(y))<<1 | spread3(uint64(z))<<2)
	default:
		return int64(z)<<(2*maxOrder) | Index(c, x, y)
	}
}

// spread3 inserts two zero bits between every bit of the low 21 bits.
func spread3(v uint64) uint64 {
	v &= (1 << maxOrder3) - 1
	v = (v | v<<32) & 0x1F00000000FFFF
	v = (v | v<<16) & 0x1F0000FF0000FF
	v = (v | v<<8) & 0x100F00F00F00F00F
	v = (v | v<<4) & 0x10C30C30C30C30C3
	v = (v | v<<2) & 0x1249249249249249
	return v
}

// OrderBoxes sorts the given boxes (in place, stably) by the curve index
// of their lower corners coarsened by unit, returning the permutation
// applied. Coarsening by the atomic-unit size makes the order independent
// of sub-unit jitter and matches how domain-based partitioners order
// their units.
func OrderBoxes(c Curve, boxes geom.BoxList, unit int) []int {
	if unit < 1 {
		unit = 1
	}
	perm := make([]int, len(boxes))
	keys := make([]int64, len(boxes))
	for i, b := range boxes {
		perm[i] = i
		keys[i] = Index(c, b.Lo[0]/unit, b.Lo[1]/unit)
	}
	// Stable sort of the permutation by key: equal keys keep their
	// original relative order, preserving the insertion-sort stability
	// guarantee in O(n log n); boxes are then permuted to match.
	sort.SliceStable(perm, func(a, b int) bool { return keys[perm[a]] < keys[perm[b]] })
	sorted := make(geom.BoxList, len(boxes))
	for i, oi := range perm {
		sorted[i] = boxes[oi]
	}
	copy(boxes, sorted)
	return perm
}
