package sfc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"samr/internal/geom"
)

func TestMortonSmallGrid(t *testing.T) {
	// The first four Morton indices trace the Z shape on a 2x2 grid.
	want := map[[2]int]int64{
		{0, 0}: 0, {1, 0}: 1, {0, 1}: 2, {1, 1}: 3,
	}
	for p, w := range want {
		if got := Index(Morton, p[0], p[1]); got != w {
			t.Errorf("Morton(%d,%d) = %d, want %d", p[0], p[1], got, w)
		}
	}
}

func TestMortonDistinct(t *testing.T) {
	seen := map[int64][2]int{}
	for x := 0; x < 32; x++ {
		for y := 0; y < 32; y++ {
			idx := Index(Morton, x, y)
			if prev, dup := seen[idx]; dup {
				t.Fatalf("Morton collision: (%d,%d) and %v -> %d", x, y, prev, idx)
			}
			seen[idx] = [2]int{x, y}
		}
	}
}

func TestHilbertBijectiveOnGrid(t *testing.T) {
	seen := map[int64]bool{}
	for x := 0; x < 16; x++ {
		for y := 0; y < 16; y++ {
			idx := Index(Hilbert, x, y)
			if seen[idx] {
				t.Fatalf("Hilbert collision at (%d,%d)", x, y)
			}
			seen[idx] = true
			px, py := HilbertPoint(idx)
			if px != x || py != y {
				t.Fatalf("HilbertPoint(%d) = (%d,%d), want (%d,%d)", idx, px, py, x, y)
			}
		}
	}
}

func TestHilbertAdjacency(t *testing.T) {
	// Consecutive Hilbert indices must map to 4-adjacent cells: the
	// defining locality property that Morton does not have.
	for d := int64(0); d < 1023; d++ {
		x0, y0 := HilbertPoint(d)
		x1, y1 := HilbertPoint(d + 1)
		dist := abs(x1-x0) + abs(y1-y0)
		if dist != 1 {
			t.Fatalf("Hilbert jump of %d between d=%d (%d,%d) and d+1 (%d,%d)",
				dist, d, x0, y0, x1, y1)
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestRowMajorOrder(t *testing.T) {
	if Index(RowMajor, 3, 0) >= Index(RowMajor, 0, 1) {
		t.Error("row-major should order by y first")
	}
	if Index(RowMajor, 0, 0) >= Index(RowMajor, 1, 0) {
		t.Error("row-major should order by x within a row")
	}
}

func TestPropertyIndexNonNegative(t *testing.T) {
	f := func(x, y uint16) bool {
		return Index(Morton, int(x), int(y)) >= 0 &&
			Index(Hilbert, int(x), int(y)) >= 0 &&
			Index(RowMajor, int(x), int(y)) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyMortonMonotoneInQuadrant(t *testing.T) {
	// Doubling both coordinates of distinct points preserves Morton order.
	f := func(ax, ay, bx, by uint8) bool {
		a := Index(Morton, int(ax), int(ay))
		b := Index(Morton, int(bx), int(by))
		a2 := Index(Morton, int(ax)*2, int(ay)*2)
		b2 := Index(Morton, int(bx)*2, int(by)*2)
		return (a < b) == (a2 < b2) || a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrderBoxes(t *testing.T) {
	boxes := geom.BoxList{
		geom.NewBox2(8, 8, 10, 10),
		geom.NewBox2(0, 0, 2, 2),
		geom.NewBox2(8, 0, 10, 2),
		geom.NewBox2(0, 8, 2, 10),
	}
	perm := OrderBoxes(Hilbert, boxes, 1)
	if len(perm) != 4 {
		t.Fatalf("perm length = %d", len(perm))
	}
	if boxes[0] != geom.NewBox2(0, 0, 2, 2) {
		t.Errorf("first box after Hilbert order = %v", boxes[0])
	}
	// The Hilbert order on the four corners visits adjacent corners
	// consecutively: total corner-path length must be 3 edges.
	for i := 1; i < len(boxes); i++ {
		dx := abs(boxes[i].Lo[0] - boxes[i-1].Lo[0])
		dy := abs(boxes[i].Lo[1] - boxes[i-1].Lo[1])
		if dx+dy > 8 {
			t.Errorf("Hilbert order makes a long jump from %v to %v", boxes[i-1], boxes[i])
		}
	}
}

func TestOrderBoxesUnitCoarsening(t *testing.T) {
	boxes := geom.BoxList{
		geom.NewBox2(5, 0, 6, 1), // same unit cell as (4,0) for unit=4
		geom.NewBox2(4, 1, 5, 2),
	}
	orig := boxes.Clone()
	OrderBoxes(Morton, boxes, 4)
	// Both lie in unit (1,0): stable order keeps the original sequence.
	if boxes[0] != orig[0] || boxes[1] != orig[1] {
		t.Errorf("unit-coarsened order should be stable, got %v", boxes)
	}
}

// locality measures the mean index gap between 4-adjacent cells: a proxy
// for partition-boundary quality. Hilbert must beat RowMajor.
func locality(c Curve, n int) float64 {
	var total, count float64
	gap := func(a, b int64) {
		d := b - a
		if d < 0 {
			d = -d
		}
		total += float64(d)
		count++
	}
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if x+1 < n {
				gap(Index(c, x, y), Index(c, x+1, y))
			}
			if y+1 < n {
				gap(Index(c, x, y), Index(c, x, y+1))
			}
		}
	}
	return total / count
}

func TestHilbertLocalityBeatsRowMajor(t *testing.T) {
	h, r := locality(Hilbert, 32), locality(RowMajor, 32)
	if h >= r {
		t.Errorf("Hilbert locality %f should beat row-major %f", h, r)
	}
}

func BenchmarkHilbertIndex(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	xs := make([]int, 1024)
	ys := make([]int, 1024)
	for i := range xs {
		xs[i], ys[i] = r.Intn(1<<20), r.Intn(1<<20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Index(Hilbert, xs[i%1024], ys[i%1024])
	}
}

func BenchmarkMortonIndex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Index(Morton, i&0xFFFFF, (i>>1)&0xFFFFF)
	}
}

func TestMorton3DistinctAndOrdered(t *testing.T) {
	seen := map[int64][3]int{}
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			for z := 0; z < 8; z++ {
				idx := Index3(Morton, x, y, z)
				if idx < 0 {
					t.Fatalf("negative 3-D Morton index at (%d,%d,%d)", x, y, z)
				}
				if prev, dup := seen[idx]; dup {
					t.Fatalf("3-D Morton collision: (%d,%d,%d) and %v", x, y, z, prev)
				}
				seen[idx] = [3]int{x, y, z}
			}
		}
	}
	// The first eight indices trace the unit cube in Z order.
	if Index3(Morton, 0, 0, 0) != 0 || Index3(Morton, 1, 0, 0) != 1 ||
		Index3(Morton, 0, 1, 0) != 2 || Index3(Morton, 0, 0, 1) != 4 {
		t.Error("3-D Morton corner order wrong")
	}
}

func TestIndex3LayeredFallback(t *testing.T) {
	// Hilbert/RowMajor layer by z: same plane ordering, higher z wins.
	if Index3(Hilbert, 5, 5, 0) >= Index3(Hilbert, 0, 0, 1) {
		t.Error("layered 3-D index should order by z first")
	}
	if Index3(Hilbert, 1, 2, 3) == Index3(Hilbert, 2, 1, 3) {
		t.Error("in-plane ordering lost")
	}
}

func TestMorton3HighBits(t *testing.T) {
	// Large coordinates stay within int64 and preserve quadrant order.
	big := 1 << 20
	if Index3(Morton, big, big, big) < 0 {
		t.Error("3-D Morton overflowed int64")
	}
	if Index3(Morton, big, 0, 0) >= Index3(Morton, big, big, big) {
		t.Error("3-D Morton monotonicity violated on high bits")
	}
}
