package apps

import (
	"context"
	"strings"
	"testing"
)

func TestKernelLookup(t *testing.T) {
	for _, n := range Names {
		k, err := Kernel(n)
		if err != nil {
			t.Fatalf("Kernel(%s): %v", n, err)
		}
		if k.Name() != n {
			t.Errorf("Kernel(%s).Name() = %s", n, k.Name())
		}
	}
	if _, err := Kernel("NOPE"); err == nil {
		t.Error("unknown kernel should error")
	}
}

func TestPaperConfigMatchesPaper(t *testing.T) {
	cfg := PaperConfig()
	if cfg.MaxLevels != 5 {
		t.Errorf("MaxLevels = %d, want 5 (paper: 5 levels)", cfg.MaxLevels)
	}
	if cfg.RefRatio != 2 {
		t.Errorf("RefRatio = %d, want 2 (factor 2 refinement)", cfg.RefRatio)
	}
	if cfg.RegridEvery != 4 {
		t.Errorf("RegridEvery = %d, want 4 (regrid every 4 steps)", cfg.RegridEvery)
	}
	if cfg.Cluster.MinWidth != 2 {
		t.Errorf("MinWidth = %d, want 2 (granularity 2)", cfg.Cluster.MinWidth)
	}
	if PaperSteps != 100 {
		t.Errorf("PaperSteps = %d, want 100", PaperSteps)
	}
}

func TestQuickTraceAllApps(t *testing.T) {
	for _, n := range Names {
		n := n
		t.Run(n, func(t *testing.T) {
			t.Parallel()
			tr, err := QuickTrace(context.Background(), n)
			if err != nil {
				t.Fatal(err)
			}
			if tr.Len() != 21 {
				t.Errorf("trace length = %d, want 21", tr.Len())
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			if tr.App != n {
				t.Errorf("App = %s", tr.App)
			}
		})
	}
}

func TestQuickTraceCached(t *testing.T) {
	a, err := QuickTrace(context.Background(), "TP2D")
	if err != nil {
		t.Fatal(err)
	}
	b, err := QuickTrace(context.Background(), "TP2D")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("QuickTrace should return the cached instance")
	}
}

func TestNormalize(t *testing.T) {
	for _, c := range []struct{ in, want string }{
		{"BL2D", "BL2D"}, {"bl2d", "BL2D"}, {"Tp2d", "TP2D"}, {" rm2d ", "RM2D"}, {"sc2d", "SC2D"},
	} {
		got, err := Normalize(c.in)
		if err != nil || got != c.want {
			t.Errorf("Normalize(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "XY2D", "BL3D"} {
		if _, err := Normalize(bad); err == nil {
			t.Errorf("Normalize(%q) should fail", bad)
		} else if !strings.Contains(err.Error(), "RM2D, BL2D, SC2D, TP2D") {
			t.Errorf("Normalize(%q) error %q does not list valid kernels", bad, err)
		}
	}
}
