package apps

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"samr/internal/amr"
	"samr/internal/trace"
)

// goldenTraceHashes are sha256 hex digests of the serialized trace
// (trace.Write bytes) of each application at the golden config — the
// quick scale: 16x16 base, 3 levels, 20 coarse steps, paper clustering.
// They were captured from the pre-row-streaming sequential substrate
// (PR 3) via `samrtrace -app <A> -base 16 -levels 3 -steps 20`, and
// pin the acceptance contract of the execution-substrate rewrite: the
// row-streamed kernels and the parallel driver must reproduce the
// reference hierarchy evolution bit for bit at any worker count.
var goldenTraceHashes = map[string]string{
	"TP2D": "50b8314f2c6750eb88b4d2a30f299f5d4b97076e58c015e4ff0613a2c557286a",
	"SC2D": "512704780a34fc64f6ca00c6fe59134a1bdce8e3768e08d3d0c36f5dafd5d0e5",
	"BL2D": "bbfb657df388a558f973fadf60b8d80a2aee9a6ce5176145816049369a3af8ed",
	"RM2D": "3d9f19c443268547d9857e9a4c0d1246a194b5bb78a62b308fb281d8c46f2a5b",
}

// goldenConfig is the fixed configuration the reference hashes were
// captured at.
func goldenConfig(workers int) amr.Config {
	cfg := PaperConfig()
	cfg.BaseSize = 16
	cfg.MaxLevels = 3
	cfg.Workers = workers
	return cfg
}

const goldenSteps = 20

// traceHash serializes tr and returns the hex sha256 of the bytes.
func traceHash(t *testing.T, tr *trace.Trace) string {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

// TestGoldenTraceEquivalence regenerates every application's golden
// trace with the row-streamed substrate at several worker counts and
// asserts the serialized bytes match the retained reference exactly.
// Run with -race to also certify the per-patch fan-out data-race free.
func TestGoldenTraceEquivalence(t *testing.T) {
	for _, app := range Names {
		want, ok := goldenTraceHashes[app]
		if !ok {
			t.Fatalf("no golden hash for %s", app)
		}
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", app, workers), func(t *testing.T) {
				tr, err := Generate(context.Background(), app, goldenConfig(workers), goldenSteps)
				if err != nil {
					t.Fatal(err)
				}
				if got := traceHash(t, tr); got != want {
					t.Errorf("%s at %d workers: trace hash %s, want reference %s",
						app, workers, got, want)
				}
			})
		}
	}
}

// TestGoldenTraceCancellation exercises the driver's cancellation
// contract at the golden config: a pre-cancelled context must abort
// generation with the context's error and no partial trace.
func TestGoldenTraceCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr, err := Generate(ctx, "TP2D", goldenConfig(2), goldenSteps)
	if err == nil {
		t.Fatal("cancelled generation returned nil error")
	}
	if tr != nil {
		t.Fatalf("cancelled generation returned a trace with %d snapshots", tr.Len())
	}
}
