// Package apps wires the four solver kernels to the AMR driver with the
// paper's experimental configuration (section 5.1.1): 5 levels of
// factor-2 refinement in space and time, regridding every 4 steps on
// each level, 100 coarse time steps, minimum block dimension
// (granularity) 2. It also caches generated traces per process so the
// experiment harness and benchmarks do not pay trace generation
// repeatedly.
package apps

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"samr/internal/amr"
	"samr/internal/solver"
	"samr/internal/trace"
)

// Names lists the four applications in the paper's presentation order
// of the result figures (Figures 4-7).
var Names = []string{"RM2D", "BL2D", "SC2D", "TP2D"}

// Normalize maps a case-insensitive application name to its canonical
// upper-case form, or reports an error naming the valid kernels. CLIs
// use it to validate -app flags up front instead of failing deep inside
// trace generation.
func Normalize(name string) (string, error) {
	up := strings.ToUpper(strings.TrimSpace(name))
	for _, n := range Names {
		if up == n {
			return n, nil
		}
	}
	return "", fmt.Errorf("apps: unknown application %q (valid kernels: %s)", name, strings.Join(Names, ", "))
}

// Kernel returns the named application kernel.
func Kernel(name string) (solver.Kernel, error) {
	switch name {
	case "TP2D":
		return solver.NewTransport(), nil
	case "SC2D":
		return solver.NewScalarWave(), nil
	case "BL2D":
		return solver.NewBuckleyLeverett(), nil
	case "RM2D":
		return solver.NewEuler(), nil
	}
	return nil, fmt.Errorf("apps: unknown application %q (have %v)", name, Names)
}

// PaperConfig is the driver configuration of the paper's validation
// runs.
func PaperConfig() amr.Config {
	cfg := amr.DefaultConfig()
	cfg.BaseSize = 32
	cfg.MaxLevels = 5
	cfg.RefRatio = 2
	cfg.RegridEvery = 4
	cfg.Cluster.MinWidth = 2
	return cfg
}

// PaperSteps is the number of coarse time steps of the paper's runs.
const PaperSteps = 100

// Generate runs the named application for steps coarse steps and
// returns its trace. The run is bounded by ctx: a cancelled generation
// aborts between patch work units and returns a nil trace with the
// context's error.
func Generate(ctx context.Context, name string, cfg amr.Config, steps int) (*trace.Trace, error) {
	k, err := Kernel(name)
	if err != nil {
		return nil, err
	}
	return amr.Run(ctx, k, cfg, steps)
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*trace.Trace{}
)

// PaperTrace returns the named application's paper-configuration trace,
// generating it on first use and caching it for the life of the
// process. The returned trace is shared: callers must not mutate it. A
// cancelled ctx aborts the caller's own generation (nothing is
// cached); note the cache lock is held across generation, so a caller
// that loses the race waits for the winner's run before its ctx is
// consulted — a cached hit is then returned regardless of ctx.
func PaperTrace(ctx context.Context, name string) (*trace.Trace, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if tr, ok := cache[name]; ok {
		return tr, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr, err := Generate(ctx, name, PaperConfig(), PaperSteps)
	if err != nil {
		return nil, err
	}
	cache[name] = tr
	return tr, nil
}

// QuickTrace returns a reduced-scale trace (16x16 base, 3 levels, 20
// steps) of the named application, cached like PaperTrace. Tests and
// examples use it to keep runtimes low.
func QuickTrace(ctx context.Context, name string) (*trace.Trace, error) {
	key := "quick/" + name
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if tr, ok := cache[key]; ok {
		return tr, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := PaperConfig()
	cfg.BaseSize = 16
	cfg.MaxLevels = 3
	tr, err := Generate(ctx, name, cfg, 20)
	if err != nil {
		return nil, err
	}
	cache[key] = tr
	return tr, nil
}
