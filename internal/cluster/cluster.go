// Package cluster implements the Berger–Rigoutsos point-clustering
// algorithm used during SAMR regridding: given the set of cells tagged
// for refinement on a level, produce a small set of rectangular patches
// that cover every tagged cell with at least a prescribed efficiency
// (fraction of patch cells that are tagged).
//
// The algorithm recursively bisects the tag bounding box, preferring
// splits at signature holes (rows/columns with no tags), then at the
// strongest inflection of the signature's discrete Laplacian, and
// falling back to the midpoint of the longest dimension.
package cluster

import (
	"samr/internal/geom"
)

// Options controls clustering behaviour.
type Options struct {
	// MinEfficiency is the minimum acceptable ratio of tagged cells to
	// patch volume before a patch is split further. The classic
	// Berger–Rigoutsos default is 0.7–0.8.
	MinEfficiency float64
	// MinWidth is the smallest allowed patch extent in any dimension
	// (the paper's "granularity (minimum block dimension) is 2").
	MinWidth int
	// MaxWidth, when positive, forces patches wider than this to split
	// even if efficient; it bounds per-patch work for load balancing.
	MaxWidth int
}

// DefaultOptions mirrors the paper's experimental setup: minimum block
// dimension 2 with the customary 0.7 efficiency threshold.
func DefaultOptions() Options {
	return Options{MinEfficiency: 0.7, MinWidth: 2, MaxWidth: 0}
}

// TagField is a set of tagged cells within a domain. The zero value is
// an empty field; add tags with Set.
type TagField struct {
	cells map[geom.IntVect]bool
}

// NewTagField returns an empty tag field.
func NewTagField() *TagField {
	return &TagField{cells: make(map[geom.IntVect]bool)}
}

// Set marks cell p as tagged.
func (t *TagField) Set(p geom.IntVect) { t.cells[p] = true }

// Has reports whether p is tagged.
func (t *TagField) Has(p geom.IntVect) bool { return t.cells[p] }

// Count returns the number of tagged cells.
func (t *TagField) Count() int { return len(t.cells) }

// Bounds returns the bounding box of the tags (Dim 2) or an empty box.
func (t *TagField) Bounds() geom.Box {
	first := true
	var lo, hi geom.IntVect
	for p := range t.cells {
		if first {
			lo, hi = p, p
			first = false
		} else {
			lo = lo.Min(p)
			hi = hi.Max(p)
		}
	}
	if first {
		return geom.Box{Dim: 2}
	}
	return geom.NewBox2(lo[0], lo[1], hi[0]+1, hi[1]+1)
}

// signature returns the per-plane histogram of the points along dim d
// relative to box b. Points must lie inside b.
func signature(pts []geom.IntVect, b geom.Box, d int) []int {
	sig := make([]int, b.Size(d))
	for _, p := range pts {
		sig[p[d]-b.Lo[d]]++
	}
	return sig
}

// Cluster covers all tagged cells with patches meeting opts. Every
// returned box is inside domain, has extents >= MinWidth (unless the
// domain itself is narrower), and the boxes are pairwise disjoint.
func Cluster(tags *TagField, domain geom.Box, opts Options) geom.BoxList {
	if tags.Count() == 0 {
		return nil
	}
	pts := make([]geom.IntVect, 0, len(tags.cells))
	for p := range tags.cells {
		pts = append(pts, p)
	}
	return ClusterPoints(pts, domain, opts)
}

// ClusterPoints is Cluster over a plain point list (duplicates
// allowed only if the caller accepts their double weight in the
// efficiency metric; the AMR driver's per-patch tag scan never
// produces any, since patch interiors are disjoint). The output is
// independent of the order of pts: every splitting decision is made on
// bounding boxes and per-plane histograms of the point set. Callers
// with tags already in slices — the parallel driver collects one list
// per patch — skip the TagField map entirely.
func ClusterPoints(pts []geom.IntVect, domain geom.Box, opts Options) geom.BoxList {
	in := pts[:0:0]
	for _, p := range pts {
		if domain.Contains(p) {
			in = append(in, p)
		}
	}
	if len(in) == 0 {
		return nil
	}
	var out geom.BoxList
	recurse(in, domain, opts, &out, 0)
	return out
}

// maxClusterDepth bounds recursion; at 64 the box would have been
// bisected far below any practical patch size.
const maxClusterDepth = 64

func recurse(pts []geom.IntVect, domain geom.Box, opts Options, out *geom.BoxList, depth int) {
	if len(pts) == 0 {
		return
	}
	// The working box is the exact bounding box of the points.
	b := boundsOf(pts)
	eff := float64(len(pts)) / float64(b.Volume())
	tooWide := opts.MaxWidth > 0 && (b.Size(0) > opts.MaxWidth || b.Size(1) > opts.MaxWidth)
	splittable := b.Size(0) >= 2*opts.MinWidth || b.Size(1) >= 2*opts.MinWidth
	if depth >= maxClusterDepth || (!tooWide && (eff >= opts.MinEfficiency || !splittable)) {
		*out = append(*out, enforceMinWidth(b, domain, opts.MinWidth))
		return
	}
	d, at, ok := split(pts, b, opts.MinWidth)
	if !ok {
		*out = append(*out, enforceMinWidth(b, domain, opts.MinWidth))
		return
	}
	// Partition the points in place around the cut plane.
	lo := pts[:0:len(pts)]
	var hi []geom.IntVect
	for _, p := range pts {
		if p[d] < at {
			lo = append(lo, p)
		} else {
			hi = append(hi, p)
		}
	}
	recurse(lo, domain, opts, out, depth+1)
	recurse(hi, domain, opts, out, depth+1)
}

// boundsOf returns the bounding box of a non-empty point set.
func boundsOf(pts []geom.IntVect) geom.Box {
	lo, hi := pts[0], pts[0]
	for _, p := range pts[1:] {
		lo = lo.Min(p)
		hi = hi.Max(p)
	}
	return geom.NewBox2(lo[0], lo[1], hi[0]+1, hi[1]+1)
}

// split chooses a bisection plane for the points in b: first a signature
// hole, then the strongest Laplacian inflection, then the
// longest-dimension midpoint. Both halves are kept at least minW wide.
// It returns the dimension and absolute cut coordinate.
func split(pts []geom.IntVect, b geom.Box, minW int) (dim, at int, ok bool) {
	type cut struct {
		d, at int
	}
	var holes []cut
	var bestInf cut
	bestInfMag := -1
	for d := 0; d < 2; d++ {
		if b.Size(d) < 2*minW {
			continue
		}
		sig := signature(pts, b, d)
		// Holes: zero planes strictly inside the feasible cut range.
		for i := minW; i <= len(sig)-minW; i++ {
			if i < len(sig) && sig[i] == 0 {
				holes = append(holes, cut{d, b.Lo[d] + i})
			}
		}
		// Laplacian inflections: sign change of the second difference.
		lap := make([]int, len(sig))
		for i := 1; i < len(sig)-1; i++ {
			lap[i] = sig[i-1] - 2*sig[i] + sig[i+1]
		}
		for i := minW; i <= len(sig)-minW && i < len(sig)-1; i++ {
			if lap[i-1]*lap[i] < 0 {
				mag := absInt(lap[i-1] - lap[i])
				if mag > bestInfMag {
					bestInfMag = mag
					bestInf = cut{d, b.Lo[d] + i}
				}
			}
		}
	}
	feasible := func(c cut) bool {
		return c.at-b.Lo[c.d] >= minW && b.Hi[c.d]-c.at >= minW
	}
	// Prefer the hole closest to the box centre (best balance).
	if len(holes) > 0 {
		best := holes[0]
		bestDist := 1 << 30
		for _, h := range holes {
			mid := (b.Lo[h.d] + b.Hi[h.d]) / 2
			if d := absInt(h.at - mid); d < bestDist {
				bestDist, best = d, h
			}
		}
		if feasible(best) {
			return best.d, best.at, true
		}
	}
	if bestInfMag >= 0 && feasible(bestInf) {
		return bestInf.d, bestInf.at, true
	}
	// Midpoint of the longest splittable dimension.
	d := b.LongestDim()
	if b.Size(d) < 2*minW {
		d = 1 - d
		if b.Size(d) < 2*minW {
			return 0, 0, false
		}
	}
	c := cut{d, (b.Lo[d] + b.Hi[d]) / 2}
	if !feasible(c) {
		return 0, 0, false
	}
	return c.d, c.at, true
}

// enforceMinWidth grows b to at least minW cells per dimension, staying
// inside domain where possible.
func enforceMinWidth(b, domain geom.Box, minW int) geom.Box {
	for d := 0; d < 2; d++ {
		for b.Size(d) < minW {
			if b.Hi[d] < domain.Hi[d] {
				b.Hi[d]++
			} else if b.Lo[d] > domain.Lo[d] {
				b.Lo[d]--
			} else {
				break
			}
		}
	}
	return b.Intersect(domain)
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// MakeDisjoint rewrites the list so no two boxes overlap, preserving the
// covered region. Berger–Rigoutsos recursion on disjoint halves already
// yields disjoint boxes, but enforceMinWidth growth can introduce small
// overlaps; regridding calls this to restore the level invariant.
func MakeDisjoint(bl geom.BoxList) geom.BoxList {
	var out geom.BoxList
	for _, b := range bl {
		frags := geom.BoxList{b}
		for _, done := range out {
			frags = frags.SubtractBox(done)
		}
		out = append(out, frags...)
	}
	// Drop empties.
	kept := out[:0]
	for _, b := range out {
		if !b.Empty() {
			kept = append(kept, b)
		}
	}
	return kept
}

// Efficiency returns the clustering efficiency: tagged cells divided by
// total covered volume of the (disjoint) patch list.
func Efficiency(tags *TagField, patches geom.BoxList) float64 {
	vol := patches.TotalVolume()
	if vol == 0 {
		return 0
	}
	covered := 0
	for p := range tags.cells {
		if patches.ContainsPoint(p) {
			covered++
		}
	}
	return float64(covered) / float64(vol)
}
