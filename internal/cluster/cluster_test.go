package cluster

import (
	"math/rand"
	"testing"

	"samr/internal/geom"
)

func domain() geom.Box { return geom.NewBox2(0, 0, 64, 64) }

// coverAll verifies every tagged cell is inside some patch.
func coverAll(t *testing.T, tags *TagField, patches geom.BoxList) {
	t.Helper()
	for p := range tags.cells {
		if !patches.ContainsPoint(p) {
			t.Fatalf("tagged cell %v not covered by %v", p, patches)
		}
	}
}

func TestClusterEmpty(t *testing.T) {
	if got := Cluster(NewTagField(), domain(), DefaultOptions()); got != nil {
		t.Errorf("empty tags should give nil, got %v", got)
	}
}

func TestClusterSingleBlock(t *testing.T) {
	tags := NewTagField()
	geom.NewBox2(10, 10, 14, 14).Cells(func(p geom.IntVect) { tags.Set(p) })
	patches := Cluster(tags, domain(), DefaultOptions())
	if len(patches) != 1 {
		t.Fatalf("dense block should cluster to one patch, got %v", patches)
	}
	if patches[0] != geom.NewBox2(10, 10, 14, 14) {
		t.Errorf("patch = %v, want exact bounding box", patches[0])
	}
	coverAll(t, tags, patches)
}

func TestClusterTwoSeparatedBlobs(t *testing.T) {
	tags := NewTagField()
	geom.NewBox2(2, 2, 6, 6).Cells(func(p geom.IntVect) { tags.Set(p) })
	geom.NewBox2(40, 40, 44, 45).Cells(func(p geom.IntVect) { tags.Set(p) })
	patches := Cluster(tags, domain(), DefaultOptions())
	if len(patches) != 2 {
		t.Fatalf("two blobs should give two patches, got %v", patches)
	}
	coverAll(t, tags, patches)
	if eff := Efficiency(tags, patches); eff < 0.99 {
		t.Errorf("separated dense blobs should cluster perfectly, eff=%f", eff)
	}
}

func TestClusterLShape(t *testing.T) {
	// An L of tags cannot be covered efficiently by one box; the
	// algorithm must split at the inner corner.
	tags := NewTagField()
	geom.NewBox2(0, 0, 20, 4).Cells(func(p geom.IntVect) { tags.Set(p) })
	geom.NewBox2(0, 4, 4, 20).Cells(func(p geom.IntVect) { tags.Set(p) })
	patches := Cluster(tags, domain(), DefaultOptions())
	coverAll(t, tags, patches)
	if eff := Efficiency(tags, MakeDisjoint(patches)); eff < 0.7 {
		t.Errorf("L-shape efficiency = %f, want >= 0.7", eff)
	}
	if len(patches) < 2 {
		t.Errorf("L-shape should split, got %d patches", len(patches))
	}
}

func TestClusterEfficiencyThreshold(t *testing.T) {
	// A sparse diagonal forces many splits to reach the threshold.
	tags := NewTagField()
	for i := 0; i < 32; i++ {
		tags.Set(geom.IV2(i, i))
	}
	opts := DefaultOptions()
	patches := MakeDisjoint(Cluster(tags, domain(), opts))
	coverAll(t, tags, patches)
	// Min width 2 caps achievable efficiency at 0.5 for single cells.
	if eff := Efficiency(tags, patches); eff < 0.2 {
		t.Errorf("diagonal efficiency = %f too low", eff)
	}
}

func TestClusterMinWidth(t *testing.T) {
	tags := NewTagField()
	tags.Set(geom.IV2(5, 5)) // single tag
	patches := Cluster(tags, domain(), DefaultOptions())
	if len(patches) != 1 {
		t.Fatalf("patches = %v", patches)
	}
	if patches[0].Size(0) < 2 || patches[0].Size(1) < 2 {
		t.Errorf("patch %v violates min width 2", patches[0])
	}
	coverAll(t, tags, patches)
}

func TestClusterMinWidthAtDomainCorner(t *testing.T) {
	tags := NewTagField()
	tags.Set(geom.IV2(63, 63)) // domain corner: growth must go inward
	patches := Cluster(tags, domain(), DefaultOptions())
	if len(patches) != 1 {
		t.Fatalf("patches = %v", patches)
	}
	p := patches[0]
	if !domain().ContainsBox(p) {
		t.Errorf("patch %v escapes domain", p)
	}
	if p.Size(0) < 2 || p.Size(1) < 2 {
		t.Errorf("patch %v violates min width", p)
	}
}

func TestClusterStaysInDomain(t *testing.T) {
	tags := NewTagField()
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		tags.Set(geom.IV2(r.Intn(64), r.Intn(64)))
	}
	patches := Cluster(tags, domain(), DefaultOptions())
	for _, p := range patches {
		if !domain().ContainsBox(p) {
			t.Errorf("patch %v escapes domain", p)
		}
	}
	coverAll(t, tags, patches)
}

func TestClusterMaxWidth(t *testing.T) {
	tags := NewTagField()
	geom.NewBox2(0, 0, 40, 40).Cells(func(p geom.IntVect) { tags.Set(p) })
	opts := DefaultOptions()
	opts.MaxWidth = 16
	patches := Cluster(tags, domain(), opts)
	for _, p := range patches {
		if p.Size(0) > 16+1 || p.Size(1) > 16+1 {
			t.Errorf("patch %v exceeds MaxWidth", p)
		}
	}
	coverAll(t, tags, patches)
}

func TestMakeDisjoint(t *testing.T) {
	bl := geom.BoxList{
		geom.NewBox2(0, 0, 4, 4),
		geom.NewBox2(2, 2, 6, 6),
		geom.NewBox2(2, 2, 6, 6), // duplicate
	}
	dj := MakeDisjoint(bl)
	if !dj.Disjoint() {
		t.Fatalf("MakeDisjoint produced overlaps: %v", dj)
	}
	// Covered region: union volume = 16 + 16 - 4 = 28.
	if dj.TotalVolume() != 28 {
		t.Errorf("disjoint volume = %d, want 28", dj.TotalVolume())
	}
}

func TestClusterDisjointOutputAfterMakeDisjoint(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		tags := NewTagField()
		// Random blobs.
		for blob := 0; blob < 4; blob++ {
			cx, cy := r.Intn(56), r.Intn(56)
			geom.NewBox2(cx, cy, cx+2+r.Intn(6), cy+2+r.Intn(6)).
				Cells(func(p geom.IntVect) { tags.Set(p) })
		}
		patches := MakeDisjoint(Cluster(tags, domain(), DefaultOptions()))
		if !patches.Disjoint() {
			t.Fatalf("trial %d: overlapping patches %v", trial, patches)
		}
		coverAll(t, tags, patches)
	}
}

func TestSignatureHoleSplitPreferred(t *testing.T) {
	// Two rows of tags separated by an empty band: the split must land
	// in the band, giving exactly two perfectly efficient patches.
	tags := NewTagField()
	geom.NewBox2(0, 0, 16, 3).Cells(func(p geom.IntVect) { tags.Set(p) })
	geom.NewBox2(0, 13, 16, 16).Cells(func(p geom.IntVect) { tags.Set(p) })
	patches := Cluster(tags, domain(), DefaultOptions())
	if len(patches) != 2 {
		t.Fatalf("want 2 patches, got %v", patches)
	}
	if eff := Efficiency(tags, patches); eff < 0.99 {
		t.Errorf("hole split should be perfect, eff=%f", eff)
	}
}

func BenchmarkClusterRandomTags(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	tags := NewTagField()
	for i := 0; i < 500; i++ {
		tags.Set(geom.IV2(r.Intn(128), r.Intn(128)))
	}
	dom := geom.NewBox2(0, 0, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cluster(tags, dom, DefaultOptions())
	}
}
