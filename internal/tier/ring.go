package tier

import (
	"hash/fnv"
	"sort"
	"strings"
)

// Ring assigns every tier key an owner from a static peer set by
// rendezvous (highest-random-weight) hashing: the owner of a key is
// the peer whose hash(peer, key) scores highest. Every fleet member
// configured with the same peer list — order-independent; the ring
// sorts and dedupes — computes the same owner for every key, with no
// coordination; and removing a peer reassigns only the keys that peer
// owned (≈ K/n of them), never shuffling keys between surviving peers.
// That minimal-disruption property is what makes a static fleet
// practical: a dead daemon degrades exactly its own shard to local
// computes.
//
// A Ring is immutable and safe for concurrent use.
type Ring struct {
	self  string
	peers []string
}

// NewRing builds a ring over the peer base URLs (trailing slashes
// trimmed, duplicates and empties dropped). self, when non-empty,
// names this process's own entry so callers can short-circuit
// ownership checks that would otherwise loop back over HTTP; it does
// not need to appear in peers (a store-through client that owns
// nothing lists only the others).
func NewRing(self string, peers []string) *Ring {
	seen := make(map[string]bool, len(peers))
	r := &Ring{self: canonPeer(self)}
	for _, p := range peers {
		p = canonPeer(p)
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		r.peers = append(r.peers, p)
	}
	sort.Strings(r.peers)
	return r
}

func canonPeer(p string) string { return strings.TrimRight(strings.TrimSpace(p), "/") }

// Peers returns the ring members (sorted, deduped).
func (r *Ring) Peers() []string { return r.peers }

// Self returns this process's own canonical entry ("" if unset).
func (r *Ring) Self() string { return r.self }

// Owner returns the peer owning key, or "" for an empty ring.
func (r *Ring) Owner(key string) string {
	var best string
	var bestScore uint64
	for _, p := range r.peers {
		h := fnv.New64a()
		h.Write([]byte(p))   //nolint:errcheck
		h.Write([]byte{0})   //nolint:errcheck
		h.Write([]byte(key)) //nolint:errcheck
		if s := h.Sum64(); s > bestScore || best == "" {
			best, bestScore = p, s
		}
	}
	return best
}

// Ranked returns every ring member ordered by descending rendezvous
// score for key — the owner first, then each successive failover
// candidate. Every member computes the identical order, so a failover
// read lands on the same stand-in fleet-wide. Ties (a 64-bit hash
// collision, effectively never) break by peer name for determinism.
func (r *Ring) Ranked(key string) []string {
	type scored struct {
		peer  string
		score uint64
	}
	ss := make([]scored, len(r.peers))
	for i, p := range r.peers {
		h := fnv.New64a()
		h.Write([]byte(p))   //nolint:errcheck
		h.Write([]byte{0})   //nolint:errcheck
		h.Write([]byte(key)) //nolint:errcheck
		ss[i] = scored{peer: p, score: h.Sum64()}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score > ss[j].score
		}
		return ss[i].peer < ss[j].peer
	})
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.peer
	}
	return out
}

// OwnedBySelf reports whether this process owns key (false when self
// is unset).
func (r *Ring) OwnedBySelf(key string) bool {
	return r.self != "" && r.Owner(key) == r.self
}
