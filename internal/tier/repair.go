package tier

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Anti-entropy repair: a rejoined or wiped fleet member pulls the keys
// it owns under rendezvous hashing back from its peers, so its shard
// warms from the fleet instead of from recomputes. Each round asks
// every available peer for its key manifest (GET /v1/tier/manifest),
// diffs the owned keys against the local disk store, and pulls the
// missing ones over the existing peer-GET protocol — verified against
// the sealed-envelope codec before landing on disk, bounded per round
// in both keys and bytes so a cold member never floods the fleet.
// Repair is pull-only and idempotent: running it on a warm member is a
// manifest exchange and nothing else.
//
// Manifests are fetched as deltas: the repairer remembers, per peer,
// the accumulated key set and the write-generation cursor the peer
// last advertised (ManifestGenHeader), so a steady-state round asks
// only for keys written since the previous round instead of the full
// list. The full list remains the fallback — first contact, a peer
// that does not advertise a generation, or a cursor the peer's
// restarted store no longer covers all reset to it. Deltas never
// report deletions, so a remembered key a peer has since evicted is
// discovered as a clean miss at pull time (ErrPeerMiss) and retired
// then; a transport failure retires nothing, because the peer may
// still hold the key.

// RepairConfig tunes a Repairer; zero values select the defaults.
type RepairConfig struct {
	// Interval is the period of Run's repair rounds (default 30s).
	Interval time.Duration
	// MaxKeysPerRound bounds keys pulled per round (default 256).
	MaxKeysPerRound int
	// MaxBytesPerRound bounds bytes pulled per round (default 64 MiB).
	MaxBytesPerRound int64
}

// RepairStats is the repair loop's cumulative accounting, shaped for
// /v1/stats.
type RepairStats struct {
	// Rounds counts completed repair rounds.
	Rounds uint64 `json:"rounds"`
	// KeysPulled/BytesPulled count entries backfilled from peers.
	KeysPulled  uint64 `json:"keys_pulled"`
	BytesPulled uint64 `json:"bytes_pulled"`
	// Failures counts manifest fetches, pulls, verifications, and
	// stores that did not complete (each retried next round).
	Failures uint64 `json:"failures"`
	// Missing is the last round's remaining owned-key deficit — keys
	// peers hold for this member that are not yet local. A converged
	// member reads 0; operators watch it fall after a rejoin.
	Missing int `json:"missing"`
}

// Repairer drives anti-entropy rounds for one Tier. Methods are safe
// for concurrent use; concurrent Round calls serialize on the view
// state (Run is the usual driver, tests call Round directly).
type Repairer struct {
	t   *Tier
	cfg RepairConfig

	// roundMu serializes rounds and guards views: the per-peer delta
	// cursors and accumulated manifest key sets.
	roundMu sync.Mutex
	views   map[string]*peerView

	rounds, keysPulled, bytesPulled, failures atomic.Uint64
	missing                                   atomic.Int64
}

// peerView is what the repairer remembers about one peer's manifest:
// the keys it has advertised (minus those retired as clean misses) and
// the generation cursor for the next delta fetch.
type peerView struct {
	cursor uint64
	keys   map[string]bool
}

// NewRepairer builds a repairer over t, which must have all three of a
// disk store, a peer ring with Self set, and a peer client — repair is
// meaningless without a place to land keys, an identity that owns
// them, and peers to pull from.
func NewRepairer(t *Tier, cfg RepairConfig) (*Repairer, error) {
	if t == nil || t.disk == nil || t.ring == nil || t.client == nil {
		return nil, fmt.Errorf("tier: repair needs a disk store and a peer ring")
	}
	if t.ring.Self() == "" {
		return nil, fmt.Errorf("tier: repair needs Self set (whose keys would it pull?)")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.MaxKeysPerRound <= 0 {
		cfg.MaxKeysPerRound = 256
	}
	if cfg.MaxBytesPerRound <= 0 {
		cfg.MaxBytesPerRound = 64 << 20
	}
	return &Repairer{t: t, cfg: cfg, views: make(map[string]*peerView)}, nil
}

// Interval returns the configured round period.
func (r *Repairer) Interval() time.Duration { return r.cfg.Interval }

// refreshView updates the remembered manifest view of peer with one
// delta (or, when the cursor cannot be trusted, full) fetch, reporting
// success. Called with roundMu held.
func (r *Repairer) refreshView(ctx context.Context, peer string) (*peerView, bool) {
	view := r.views[peer]
	if view == nil {
		view = &peerView{keys: make(map[string]bool)}
		r.views[peer] = view
	}
	keys, gen, ok := r.t.client.ManifestSince(ctx, peer, view.cursor)
	if !ok {
		return view, false
	}
	if gen < view.cursor {
		// The peer's store restarted (its generation counter regressed
		// below our cursor, which KeysSince answers with the full list)
		// or the peer stopped advertising generations: either way our
		// accumulated set may contain keys the new incarnation never
		// had. Rebuild the view from this reply, which was a full
		// listing by the cursor-regression fallback.
		view.keys = make(map[string]bool, len(keys))
	} else if view.cursor == 0 {
		// First contact (or a peer stuck on full listings): the reply
		// is the complete listing, so replace rather than accumulate.
		view.keys = make(map[string]bool, len(keys))
	}
	for _, key := range keys {
		view.keys[key] = true
	}
	view.cursor = gen
	return view, true
}

// Round performs one bounded repair pass and returns the number of
// keys pulled. Keys past the round's key/byte bounds (and failed
// pulls) are left for the next round and counted in the Missing gauge.
func (r *Repairer) Round(ctx context.Context) int {
	r.roundMu.Lock()
	defer r.roundMu.Unlock()
	pulled := 0
	var pulledBytes int64
	missing := 0
	seen := make(map[string]bool)
	self := r.t.ring.Self()
	for _, peer := range r.t.ring.Peers() {
		if peer == self || ctx.Err() != nil {
			continue
		}
		if !r.t.client.Available(peer) {
			continue
		}
		view, ok := r.refreshView(ctx, peer)
		if !ok {
			r.failures.Add(1)
			continue
		}
		keys := make([]string, 0, len(view.keys))
		for key := range view.keys {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			if seen[key] || !r.t.ring.OwnedBySelf(key) || r.t.disk.Has(key) {
				continue
			}
			seen[key] = true
			if pulled >= r.cfg.MaxKeysPerRound || pulledBytes >= r.cfg.MaxBytesPerRound || ctx.Err() != nil {
				missing++
				continue
			}
			blob, err := r.t.client.Fetch(ctx, peer, key)
			if err == ErrPeerMiss {
				// The peer provably no longer holds the key (evicted
				// since the view accumulated it): retire it so the delta
				// state converges instead of re-asking forever. Another
				// peer's view may still supply it this same round.
				delete(view.keys, key)
				delete(seen, key)
				continue
			}
			if err != nil {
				r.failures.Add(1)
				missing++
				continue
			}
			// The same envelope gate as ServePut: a damaged pull never
			// lands on disk (and is retried from the fleet next round).
			if _, _, err := Open(blob); err != nil {
				r.failures.Add(1)
				missing++
				continue
			}
			if err := r.t.disk.Put(key, blob); err != nil {
				r.failures.Add(1)
				missing++
				continue
			}
			pulled++
			pulledBytes += int64(len(blob))
		}
	}
	r.rounds.Add(1)
	r.keysPulled.Add(uint64(pulled))
	r.bytesPulled.Add(uint64(pulledBytes))
	r.missing.Store(int64(missing))
	return pulled
}

// Missing returns the current owned-key deficit — every key some
// available peer holds that this member owns but lacks locally —
// sorted and deduped. The chaos suite asserts it converges to empty;
// it never pulls anything.
func (r *Repairer) Missing(ctx context.Context) []string {
	seen := make(map[string]bool)
	self := r.t.ring.Self()
	for _, peer := range r.t.ring.Peers() {
		if peer == self || !r.t.client.Available(peer) {
			continue
		}
		keys, ok := r.t.client.Manifest(ctx, peer)
		if !ok {
			continue
		}
		for _, key := range keys {
			if !seen[key] && r.t.ring.OwnedBySelf(key) && !r.t.disk.Has(key) {
				seen[key] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for key := range seen {
		out = append(out, key)
	}
	sort.Strings(out)
	return out
}

// Run repairs every Interval until ctx is cancelled. The first round
// runs after one full interval — a daemon joining a fleet that is
// still starting up should not race its peers' listeners — so a
// rejoined member converges within Interval plus a bounded number of
// rounds.
func (r *Repairer) Run(ctx context.Context) {
	ticker := time.NewTicker(r.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			r.Round(ctx)
		}
	}
}

// Stats snapshots the repairer.
func (r *Repairer) Stats() RepairStats {
	return RepairStats{
		Rounds:      r.rounds.Load(),
		KeysPulled:  r.keysPulled.Load(),
		BytesPulled: r.bytesPulled.Load(),
		Failures:    r.failures.Load(),
		Missing:     int(r.missing.Load()),
	}
}
