package tier

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// Anti-entropy repair: a rejoined or wiped fleet member pulls the keys
// it owns under rendezvous hashing back from its peers, so its shard
// warms from the fleet instead of from recomputes. Each round asks
// every available peer for its key manifest (GET /v1/tier/manifest),
// diffs the owned keys against the local disk store, and pulls the
// missing ones over the existing peer-GET protocol — verified against
// the sealed-envelope codec before landing on disk, bounded per round
// in both keys and bytes so a cold member never floods the fleet.
// Repair is pull-only and idempotent: running it on a warm member is a
// manifest exchange and nothing else.

// RepairConfig tunes a Repairer; zero values select the defaults.
type RepairConfig struct {
	// Interval is the period of Run's repair rounds (default 30s).
	Interval time.Duration
	// MaxKeysPerRound bounds keys pulled per round (default 256).
	MaxKeysPerRound int
	// MaxBytesPerRound bounds bytes pulled per round (default 64 MiB).
	MaxBytesPerRound int64
}

// RepairStats is the repair loop's cumulative accounting, shaped for
// /v1/stats.
type RepairStats struct {
	// Rounds counts completed repair rounds.
	Rounds uint64 `json:"rounds"`
	// KeysPulled/BytesPulled count entries backfilled from peers.
	KeysPulled  uint64 `json:"keys_pulled"`
	BytesPulled uint64 `json:"bytes_pulled"`
	// Failures counts manifest fetches, pulls, verifications, and
	// stores that did not complete (each retried next round).
	Failures uint64 `json:"failures"`
	// Missing is the last round's remaining owned-key deficit — keys
	// peers hold for this member that are not yet local. A converged
	// member reads 0; operators watch it fall after a rejoin.
	Missing int `json:"missing"`
}

// Repairer drives anti-entropy rounds for one Tier. Methods are safe
// for concurrent use; rounds themselves run one at a time per caller
// (Run is the usual driver, tests call Round directly).
type Repairer struct {
	t   *Tier
	cfg RepairConfig

	rounds, keysPulled, bytesPulled, failures atomic.Uint64
	missing                                   atomic.Int64
}

// NewRepairer builds a repairer over t, which must have all three of a
// disk store, a peer ring with Self set, and a peer client — repair is
// meaningless without a place to land keys, an identity that owns
// them, and peers to pull from.
func NewRepairer(t *Tier, cfg RepairConfig) (*Repairer, error) {
	if t == nil || t.disk == nil || t.ring == nil || t.client == nil {
		return nil, fmt.Errorf("tier: repair needs a disk store and a peer ring")
	}
	if t.ring.Self() == "" {
		return nil, fmt.Errorf("tier: repair needs Self set (whose keys would it pull?)")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.MaxKeysPerRound <= 0 {
		cfg.MaxKeysPerRound = 256
	}
	if cfg.MaxBytesPerRound <= 0 {
		cfg.MaxBytesPerRound = 64 << 20
	}
	return &Repairer{t: t, cfg: cfg}, nil
}

// Interval returns the configured round period.
func (r *Repairer) Interval() time.Duration { return r.cfg.Interval }

// Round performs one bounded repair pass and returns the number of
// keys pulled. Keys past the round's key/byte bounds (and failed
// pulls) are left for the next round and counted in the Missing gauge.
func (r *Repairer) Round(ctx context.Context) int {
	pulled := 0
	var pulledBytes int64
	missing := 0
	seen := make(map[string]bool)
	self := r.t.ring.Self()
	for _, peer := range r.t.ring.Peers() {
		if peer == self || ctx.Err() != nil {
			continue
		}
		if !r.t.client.Available(peer) {
			continue
		}
		keys, ok := r.t.client.Manifest(ctx, peer)
		if !ok {
			r.failures.Add(1)
			continue
		}
		for _, key := range keys {
			if seen[key] || !r.t.ring.OwnedBySelf(key) || r.t.disk.Has(key) {
				continue
			}
			seen[key] = true
			if pulled >= r.cfg.MaxKeysPerRound || pulledBytes >= r.cfg.MaxBytesPerRound || ctx.Err() != nil {
				missing++
				continue
			}
			blob, ok := r.t.client.Get(ctx, peer, key)
			if !ok {
				r.failures.Add(1)
				missing++
				continue
			}
			// The same envelope gate as ServePut: a damaged pull never
			// lands on disk (and is retried from the fleet next round).
			if _, _, err := Open(blob); err != nil {
				r.failures.Add(1)
				missing++
				continue
			}
			if err := r.t.disk.Put(key, blob); err != nil {
				r.failures.Add(1)
				missing++
				continue
			}
			pulled++
			pulledBytes += int64(len(blob))
		}
	}
	r.rounds.Add(1)
	r.keysPulled.Add(uint64(pulled))
	r.bytesPulled.Add(uint64(pulledBytes))
	r.missing.Store(int64(missing))
	return pulled
}

// Missing returns the current owned-key deficit — every key some
// available peer holds that this member owns but lacks locally —
// sorted and deduped. The chaos suite asserts it converges to empty;
// it never pulls anything.
func (r *Repairer) Missing(ctx context.Context) []string {
	seen := make(map[string]bool)
	self := r.t.ring.Self()
	for _, peer := range r.t.ring.Peers() {
		if peer == self || !r.t.client.Available(peer) {
			continue
		}
		keys, ok := r.t.client.Manifest(ctx, peer)
		if !ok {
			continue
		}
		for _, key := range keys {
			if !seen[key] && r.t.ring.OwnedBySelf(key) && !r.t.disk.Has(key) {
				seen[key] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for key := range seen {
		out = append(out, key)
	}
	sort.Strings(out)
	return out
}

// Run repairs every Interval until ctx is cancelled. The first round
// runs after one full interval — a daemon joining a fleet that is
// still starting up should not race its peers' listeners — so a
// rejoined member converges within Interval plus a bounded number of
// rounds.
func (r *Repairer) Run(ctx context.Context) {
	ticker := time.NewTicker(r.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			r.Round(ctx)
		}
	}
}

// Stats snapshots the repairer.
func (r *Repairer) Stats() RepairStats {
	return RepairStats{
		Rounds:      r.rounds.Load(),
		KeysPulled:  r.keysPulled.Load(),
		BytesPulled: r.bytesPulled.Load(),
		Failures:    r.failures.Load(),
		Missing:     int(r.missing.Load()),
	}
}
