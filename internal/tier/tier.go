package tier

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"samr/internal/fault"
)

// keyLen is the length of every tier key: lowercase hex sha256.
const keyLen = 2 * sha256.Size

// Key derives the canonical tier key from the parts of a content
// address (e.g. hierarchy signature, canonical partitioner name,
// processor count). Parts are length-prefixed before hashing, so
// distinct part lists never collide by concatenation, and the result
// is fixed-length lowercase hex — safe as both a file name and a URL
// path segment.
func Key(parts ...string) string {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		n := len(p)
		for i := range lenBuf {
			lenBuf[i] = byte(n >> (8 * i))
		}
		h.Write(lenBuf[:]) //nolint:errcheck
		h.Write([]byte(p)) //nolint:errcheck
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ValidKey reports whether key has the canonical tier key shape.
func ValidKey(key string) bool { return validKey(key) }

// Config assembles a Tier; at least one of Dir and Peers must be set.
type Config struct {
	// Dir roots the disk store ("" disables the disk level — the tier
	// is then a pure peer client and cannot serve the peer protocol).
	Dir string
	// MaxBytes bounds the disk store (<= 0 selects 256 MiB).
	MaxBytes int64
	// Peers lists every fleet member's base URL, identically across
	// the fleet (the ring sorts and dedupes). Empty disables the peer
	// level.
	Peers []string
	// Self is this daemon's own base URL as it appears in Peers; keys
	// it owns are never fetched over HTTP (self-short-circuit: the
	// disk store was already consulted).
	Self string
	// Peer tunes the HTTP client, retry policy, and circuit breaker.
	Peer PeerConfig
	// StoreTimeout bounds the background peer offer of one stored
	// value (default 5s).
	StoreTimeout time.Duration
	// Faults arms the tier's injection points — disk store and peer
	// client — for chaos testing (nil in production: zero-cost).
	Faults *fault.Injector
}

// Tier is the composed second-level cache: a disk store consulted
// first, then the key's ring owner over HTTP. Store writes the disk
// level and offers the blob to the key's owner, so any fleet member
// can later find it in at most one hop. Every failure is a miss by
// contract; Lookup and Store never return errors.
type Tier struct {
	disk         *DiskStore // nil: no disk level
	ring         *Ring      // nil: no peer level
	client       *PeerClient
	storeTimeout time.Duration

	lookups, diskHits, peerHits, misses atomic.Uint64
	stores, storeErrors, corrupt        atomic.Uint64
	failoverReads, failoverStores       atomic.Uint64
}

// New assembles a tier from cfg.
func New(cfg Config) (*Tier, error) {
	t := &Tier{storeTimeout: cfg.StoreTimeout}
	if t.storeTimeout <= 0 {
		t.storeTimeout = 5 * time.Second
	}
	if cfg.Dir != "" {
		var err error
		if t.disk, err = OpenDiskStore(cfg.Dir, cfg.MaxBytes); err != nil {
			return nil, err
		}
		t.disk.SetFaults(cfg.Faults)
	}
	if len(cfg.Peers) > 0 {
		t.ring = NewRing(cfg.Self, cfg.Peers)
		pc := cfg.Peer
		if pc.Faults == nil {
			pc.Faults = cfg.Faults
		}
		t.client = NewPeerClient(pc)
	}
	return t, nil
}

// Disk returns the disk store (nil when the disk level is disabled);
// internal/server serves the peer protocol from it.
func (t *Tier) Disk() *DiskStore { return t.disk }

// Ring returns the peer ring (nil when the peer level is disabled).
func (t *Tier) Ring() *Ring { return t.ring }

// peerFor picks the single peer to consult for key: the ring owner
// while its breaker admits traffic, otherwise the next available peer
// in rendezvous order (the failover target — one hop, no cascading).
// Self never appears (its disk store is consulted directly), and ""
// means no peer is worth asking. Breaker state thus feeds the ring:
// an open owner degrades its shard to the fleet-wide stand-in that
// every member computes identically, and repair backfills the owner
// when it returns.
func (t *Tier) peerFor(key string) (peer string, failover bool) {
	self := t.ring.Self()
	owner := t.ring.Owner(key)
	if owner == "" || owner == self {
		return "", false
	}
	if t.client.Available(owner) {
		return owner, false
	}
	for _, p := range t.ring.Ranked(key)[1:] {
		if p == self || !t.client.Available(p) {
			continue
		}
		return p, true
	}
	return "", false
}

// Lookup returns the blob for key from the nearest level that has it:
// the local disk store, then the key's ring owner — or, when the
// owner's breaker is open, the next peer in rendezvous order (a
// failover read; still exactly one peer consultation). A peer-served
// blob is written through to the local disk so the next lookup stays
// local.
func (t *Tier) Lookup(ctx context.Context, key string) ([]byte, bool) {
	t.lookups.Add(1)
	if t.disk != nil {
		if blob, ok := t.disk.Get(key); ok {
			t.diskHits.Add(1)
			return blob, true
		}
	}
	if t.ring != nil && t.client != nil {
		if peer, failover := t.peerFor(key); peer != "" {
			if failover {
				t.failoverReads.Add(1)
			}
			if blob, ok := t.client.Get(ctx, peer, key); ok {
				t.peerHits.Add(1)
				if t.disk != nil {
					t.disk.Put(key, blob) //nolint:errcheck // write-through is best-effort
				}
				return blob, true
			}
		}
	}
	t.misses.Add(1)
	return nil, false
}

// Store persists key's blob locally and offers it to the key's ring
// owner, best-effort: a full disk, a dead owner, or an open breaker
// costs a counter, never the caller's request. The peer offer runs on
// its own deadline — the computing request already has its answer.
func (t *Tier) Store(key string, blob []byte) {
	t.stores.Add(1)
	ok := false
	if t.disk != nil {
		if err := t.disk.Put(key, blob); err == nil {
			ok = true
		}
	}
	// A self-owned key needs no offer: the local disk write above is
	// where the fleet will look for it. An open owner breaker diverts
	// the offer to the owner's rendezvous stand-in — the same peer
	// failover reads consult — so the result stays reachable until
	// repair backfills the owner.
	if t.ring != nil && t.client != nil {
		if peer, failover := t.peerFor(key); peer != "" {
			if failover {
				t.failoverStores.Add(1)
			}
			ctx, cancel := context.WithTimeout(context.Background(), t.storeTimeout)
			if t.client.Put(ctx, peer, key, blob) {
				ok = true
			}
			cancel()
		}
	}
	if !ok {
		t.storeErrors.Add(1)
	}
}

// ReportCorrupt records a blob that failed to decode and deletes its
// local disk entry so it is never served again.
func (t *Tier) ReportCorrupt(key string) {
	t.corrupt.Add(1)
	if t.disk != nil {
		t.disk.Delete(key)
	}
}

// Stats is the tier's cumulative accounting, shaped for /v1/stats.
type Stats struct {
	// Lookups counts Tier.Lookup calls (one per singleflight-leader
	// local miss); every lookup is exactly one of DiskHits, PeerHits,
	// or Misses.
	Lookups  uint64 `json:"lookups"`
	DiskHits uint64 `json:"disk_hits"`
	PeerHits uint64 `json:"peer_hits"`
	Misses   uint64 `json:"misses"`
	// Stores counts Tier.Store calls (one per successful local
	// compute); StoreErrors counts stores that landed nowhere.
	Stores      uint64 `json:"stores"`
	StoreErrors uint64 `json:"store_errors"`
	// Corrupt counts blobs that failed to decode (evicted on sight).
	Corrupt uint64 `json:"corrupt"`
	// Peer protocol accounting (absent peer level: zeros).
	PeerGets     uint64 `json:"peer_gets"`
	PeerPuts     uint64 `json:"peer_puts"`
	PeerFailures uint64 `json:"peer_failures"`
	// BreakerSkips counts exchanges suppressed by an open circuit
	// breaker (the peer was recently down; no request was sent).
	BreakerSkips uint64 `json:"breaker_skips"`
	Peers        int    `json:"peers"`
	// Disk store occupancy (absent disk level: zeros).
	DiskEntries   int    `json:"disk_entries"`
	DiskBytes     int64  `json:"disk_bytes"`
	DiskMaxBytes  int64  `json:"disk_max_bytes"`
	DiskEvictions uint64 `json:"disk_evictions"`
	// Self-healing accounting, all omitted while zero/absent so a
	// healthy fleet's stats body is byte-identical to a build without
	// the repair layer. FailoverReads/FailoverStores count exchanges
	// diverted past an open owner breaker to its rendezvous stand-in.
	FailoverReads  uint64 `json:"failover_reads,omitempty"`
	FailoverStores uint64 `json:"failover_stores,omitempty"`
	// Breakers lists only non-trivial peer breakers (open, half-open,
	// or accumulating failures); a healthy fleet exports none.
	Breakers []BreakerState `json:"breakers,omitempty"`
	// Repair is the anti-entropy loop's accounting (nil when repair is
	// disabled); internal/server fills it in.
	Repair *RepairStats `json:"repair,omitempty"`
}

// Stats snapshots the tier.
func (t *Tier) Stats() Stats {
	st := Stats{
		Lookups:     t.lookups.Load(),
		DiskHits:    t.diskHits.Load(),
		PeerHits:    t.peerHits.Load(),
		Misses:      t.misses.Load(),
		Stores:      t.stores.Load(),
		StoreErrors: t.storeErrors.Load(),
		Corrupt:     t.corrupt.Load(),
	}
	st.FailoverReads = t.failoverReads.Load()
	st.FailoverStores = t.failoverStores.Load()
	if t.client != nil {
		st.PeerGets = t.client.gets.Load()
		st.PeerPuts = t.client.puts.Load()
		st.PeerFailures = t.client.failures.Load()
		st.BreakerSkips = t.client.skips.Load()
		for _, b := range t.client.BreakerStates() {
			if b.State != BreakerClosed || b.Fails > 0 {
				st.Breakers = append(st.Breakers, b)
			}
		}
	}
	if t.ring != nil {
		st.Peers = len(t.ring.Peers())
	}
	if t.disk != nil {
		st.DiskEntries = t.disk.Len()
		st.DiskBytes = t.disk.Bytes()
		st.DiskMaxBytes = t.disk.MaxBytes()
		st.DiskEvictions = t.disk.evictions.Load()
	}
	return st
}

// ServeGet is the peer-protocol read handler body: it answers key from
// the disk store (200/404). internal/server routes GET /v1/tier/{key}
// here.
func (t *Tier) ServeGet(w http.ResponseWriter, key string) {
	if t.disk == nil || !validKey(key) {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	blob, ok := t.disk.Get(key)
	if !ok {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(blob) //nolint:errcheck
}

// ManifestGenHeader carries the store's write generation on manifest
// replies; a delta-manifest caller sends it back as the since cursor.
// Its absence marks a peer predating delta manifests, and the caller
// stays on full listings.
const ManifestGenHeader = "X-Samr-Manifest-Gen"

// ServeManifest is the anti-entropy read handler body: it answers the
// disk store's resident key list as text/plain, one key per line,
// sorted, with the store's write generation in ManifestGenHeader.
// since > 0 (a cursor from a previous manifest's generation header)
// narrows the listing to keys written after that generation; 0 — and
// any cursor the store's restarted counter no longer covers — answers
// the full list. internal/server routes GET /v1/tier/manifest here
// when repair is enabled.
func (t *Tier) ServeManifest(w http.ResponseWriter, since uint64) {
	if t.disk == nil {
		http.Error(w, "no disk store", http.StatusNotFound)
		return
	}
	keys, gen := t.disk.KeysSince(since)
	w.Header().Set(ManifestGenHeader, strconv.FormatUint(gen, 10))
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, key := range keys {
		io.WriteString(w, key)  //nolint:errcheck
		io.WriteString(w, "\n") //nolint:errcheck
	}
}

// Client returns the peer client (nil when the peer level is
// disabled); the repairer and tests reach breaker state through it.
func (t *Tier) Client() *PeerClient { return t.client }

// ServePut is the peer-protocol write handler body: it verifies the
// blob envelope (magic, version, checksum — garbage is rejected before
// it can reach disk) and stores it (204). internal/server routes
// PUT /v1/tier/{key} here.
func (t *Tier) ServePut(w http.ResponseWriter, key string, blob []byte) {
	if t.disk == nil {
		http.Error(w, "no disk store", http.StatusNotFound)
		return
	}
	if !validKey(key) {
		http.Error(w, "bad key", http.StatusBadRequest)
		return
	}
	if _, _, err := Open(blob); err != nil {
		http.Error(w, "bad blob", http.StatusBadRequest)
		return
	}
	if err := t.disk.Put(key, blob); err != nil {
		http.Error(w, "store failed", http.StatusInsufficientStorage)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
