package tier

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"samr/internal/backoff"
	"samr/internal/fault"
)

// member is one live fleet participant for repair tests: a Tier served
// over the real peer protocol (blobs and manifest) by an httptest
// server. The handler closes over the member so the server can start —
// and its URL enter the shared peer list — before the Tier exists.
// gets counts blob fetches served, so tests can assert what a peer was
// (or was not) asked for.
type member struct {
	tr   *Tier
	ts   *httptest.Server
	gets atomic.Int64
}

func newMembers(t *testing.T, n int) []*member {
	t.Helper()
	ms := make([]*member, n)
	urls := make([]string, n)
	for i := range ms {
		m := &member{}
		mux := http.NewServeMux()
		mux.HandleFunc("GET /v1/tier/manifest", func(w http.ResponseWriter, r *http.Request) {
			var since uint64
			if v := r.URL.Query().Get("since"); v != "" {
				since, _ = strconv.ParseUint(v, 10, 64)
			}
			m.tr.ServeManifest(w, since)
		})
		mux.HandleFunc("GET /v1/tier/{key}", func(w http.ResponseWriter, r *http.Request) {
			m.gets.Add(1)
			m.tr.ServeGet(w, r.PathValue("key"))
		})
		mux.HandleFunc("PUT /v1/tier/{key}", func(w http.ResponseWriter, r *http.Request) {
			blob, _ := io.ReadAll(r.Body)
			m.tr.ServePut(w, r.PathValue("key"), blob)
		})
		m.ts = httptest.NewServer(mux)
		t.Cleanup(m.ts.Close)
		urls[i] = m.ts.URL
		ms[i] = m
	}
	for _, m := range ms {
		tr, err := New(Config{
			Dir:   t.TempDir(),
			Peers: urls,
			Self:  m.ts.URL,
			Peer:  PeerConfig{Retry: backoff.Policy{Attempts: 2, Base: time.Millisecond}},
		})
		if err != nil {
			t.Fatal(err)
		}
		m.tr = tr
	}
	return ms
}

// keysOwnedBy generates n distinct keys owned by owner under the ring.
func keysOwnedBy(t *testing.T, r *Ring, owner string, n int) []string {
	t.Helper()
	var out []string
	for i := 0; len(out) < n; i++ {
		if i > 100000 {
			t.Fatal("could not find enough owned keys")
		}
		key := Key("owned", fmt.Sprint(i))
		if r.Owner(key) == owner {
			out = append(out, key)
		}
	}
	return out
}

func TestServeManifestAndFetch(t *testing.T) {
	ms := newMembers(t, 2)
	a, b := ms[0], ms[1]
	want := []string{Key("m", "1"), Key("m", "2"), Key("m", "3")}
	for _, key := range want {
		if err := b.tr.Disk().Put(key, smallBlob()); err != nil {
			t.Fatal(err)
		}
	}
	keys, ok := a.tr.Client().Manifest(bg, b.ts.URL)
	if !ok || len(keys) != len(want) {
		t.Fatalf("Manifest = (%v, %v), want %d keys", keys, ok, len(want))
	}
	seen := map[string]bool{}
	for _, key := range keys {
		seen[key] = true
	}
	for _, key := range want {
		if !seen[key] {
			t.Fatalf("manifest lacks stored key %s", key)
		}
	}

	// A peer without the manifest route — repair disabled there, or an
	// older build — reports an empty manifest and stays healthy.
	old := httptest.NewServer(tierHandler(map[string][]byte{}))
	defer old.Close()
	keys, ok = a.tr.Client().Manifest(bg, old.URL)
	if !ok || len(keys) != 0 {
		t.Fatalf("routeless peer Manifest = (%v, %v), want empty and ok", keys, ok)
	}
	if got := breakerStateOf(a.tr.Client(), old.URL); got != BreakerClosed {
		t.Fatalf("routeless peer breaker = %q, want closed", got)
	}
}

// TestRepairConvergence is the rejoin scenario: member A's disk is
// empty (wiped) while member B holds blobs for keys A owns. Bounded
// rounds pull them all back, after which Missing is empty and further
// rounds are pure manifest exchanges.
func TestRepairConvergence(t *testing.T) {
	ms := newMembers(t, 2)
	a, b := ms[0], ms[1]
	owned := keysOwnedBy(t, a.tr.Ring(), a.ts.URL, 5)
	for _, key := range owned {
		if err := b.tr.Disk().Put(key, smallBlob()); err != nil {
			t.Fatal(err)
		}
	}
	// A non-owned key on B must never be pulled.
	foreign := keysOwnedBy(t, a.tr.Ring(), b.ts.URL, 1)[0]
	if err := b.tr.Disk().Put(foreign, smallBlob()); err != nil {
		t.Fatal(err)
	}

	rep, err := NewRepairer(a.tr, RepairConfig{MaxKeysPerRound: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Missing(bg); len(got) != len(owned) {
		t.Fatalf("initial Missing = %d keys, want %d", len(got), len(owned))
	}

	// MaxKeysPerRound 2 over 5 keys: exactly ceil(5/2) = 3 rounds.
	pulls := []int{2, 2, 1}
	for i, want := range pulls {
		if got := rep.Round(bg); got != want {
			t.Fatalf("round %d pulled %d keys, want %d", i+1, got, want)
		}
	}
	if got := rep.Missing(bg); len(got) != 0 {
		t.Fatalf("Missing after convergence = %v, want empty", got)
	}
	for _, key := range owned {
		blob, ok := a.tr.Disk().Get(key)
		if !ok {
			t.Fatalf("repaired key %s absent from disk", key)
		}
		if _, _, err := Open(blob); err != nil {
			t.Fatalf("repaired key %s holds a bad envelope: %v", key, err)
		}
	}
	if a.tr.Disk().Has(foreign) {
		t.Fatal("repair pulled a key this member does not own")
	}

	// Idempotence: a warm member's round pulls nothing.
	if got := rep.Round(bg); got != 0 {
		t.Fatalf("converged round pulled %d keys, want 0", got)
	}
	st := rep.Stats()
	if st.Rounds != 4 || st.KeysPulled != 5 || st.Failures != 0 || st.Missing != 0 {
		t.Fatalf("repair stats = %+v", st)
	}
	if st.BytesPulled != uint64(5*len(smallBlob())) {
		t.Fatalf("bytes_pulled = %d, want %d", st.BytesPulled, 5*len(smallBlob()))
	}
}

// TestRepairRejectsCorruptPull pins the envelope gate: a damaged blob
// pulled from a peer never lands on disk; it stays in the deficit and
// counts as a failure.
func TestRepairRejectsCorruptPull(t *testing.T) {
	ms := newMembers(t, 2)
	a, b := ms[0], ms[1]
	key := keysOwnedBy(t, a.tr.Ring(), a.ts.URL, 1)[0]
	bad := fault.Damage(smallBlob())
	if err := b.tr.Disk().Put(key, bad); err != nil {
		t.Fatal(err)
	}

	rep, err := NewRepairer(a.tr, RepairConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Round(bg); got != 0 {
		t.Fatalf("round pulled %d keys, want 0 (corrupt source)", got)
	}
	if a.tr.Disk().Has(key) {
		t.Fatal("corrupt pull landed on disk")
	}
	st := rep.Stats()
	if st.Failures == 0 || st.Missing != 1 {
		t.Fatalf("repair stats = %+v, want a counted failure and 1 missing", st)
	}
}

// TestFailoverReadAndStore drives breaker state into the ring: with the
// owner's breaker open, a lookup consults the next peer in rendezvous
// order (one hop) and a store diverts its offer there, and both are
// counted.
func TestFailoverReadAndStore(t *testing.T) {
	ms := newMembers(t, 3)
	self := ms[2]
	byURL := map[string]*member{}
	for _, m := range ms {
		byURL[m.ts.URL] = m
	}
	// A key owned by another member, with its fleet-wide stand-in (the
	// first available non-self peer after the owner in rendezvous order).
	var key, owner, standIn string
	for i := 0; standIn == ""; i++ {
		k := Key("failover", fmt.Sprint(i))
		ranked := self.tr.Ring().Ranked(k)
		if ranked[0] == self.ts.URL {
			continue
		}
		for _, p := range ranked[1:] {
			if p != self.ts.URL {
				key, owner, standIn = k, ranked[0], p
				break
			}
		}
	}

	// Open the owner's breaker as self sees it (default FailLimit 3).
	c := self.tr.Client()
	for i := 0; i < 3; i++ {
		c.report(owner, false)
	}
	if c.Available(owner) {
		t.Fatal("owner breaker still admits traffic")
	}

	// Failover read: the blob lives only on the stand-in.
	if err := byURL[standIn].tr.Disk().Put(key, smallBlob()); err != nil {
		t.Fatal(err)
	}
	blob, ok := self.tr.Lookup(bg, key)
	if !ok || !bytes.Equal(blob, smallBlob()) {
		t.Fatal("failover read missed a blob the stand-in holds")
	}
	if _, ok := self.tr.Disk().Get(key); !ok {
		t.Fatal("failover read skipped the disk write-through")
	}

	// Failover store: the offer lands on the stand-in, not the owner.
	key2 := ""
	for i := 0; key2 == ""; i++ {
		k := Key("failover-store", fmt.Sprint(i))
		if self.tr.Ring().Owner(k) == owner {
			key2 = k
		}
	}
	self.tr.Store(key2, smallBlob())
	ranked2 := self.tr.Ring().Ranked(key2)
	var standIn2 string
	for _, p := range ranked2[1:] {
		if p != self.ts.URL {
			standIn2 = p
			break
		}
	}
	if !byURL[standIn2].tr.Disk().Has(key2) {
		t.Fatal("failover store never reached the stand-in")
	}
	if byURL[owner].tr.Disk().Has(key2) {
		t.Fatal("failover store reached the open owner")
	}

	st := self.tr.Stats()
	if st.FailoverReads != 1 || st.FailoverStores != 1 {
		t.Fatalf("failover counters = (%d, %d), want (1, 1)", st.FailoverReads, st.FailoverStores)
	}
	found := false
	for _, b := range st.Breakers {
		if b.Peer == owner && b.State == BreakerOpen {
			found = true
		}
	}
	if !found {
		t.Fatalf("stats breakers = %+v, want the owner open", st.Breakers)
	}
}

// TestPeerClientInjectedFaults pins the injection contract: an injected
// peer.get error feeds the breaker without sending any request, and an
// injected manifest error fails the fetch the same way.
func TestPeerClientInjectedFaults(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		http.Error(w, "not found", http.StatusNotFound)
	}))
	defer ts.Close()
	in, err := fault.New(7,
		fault.Plan{Point: FaultPeerGet, Mode: fault.Error},
		fault.Plan{Point: FaultPeerManifest, Mode: fault.Error},
	)
	if err != nil {
		t.Fatal(err)
	}
	c := NewPeerClient(PeerConfig{
		Retry:     backoff.Policy{Attempts: 2, Base: time.Millisecond},
		FailLimit: 1,
		Faults:    in,
	})
	if _, ok := c.Get(bg, ts.URL, Key("a")); ok {
		t.Fatal("injected transport failure reported a hit")
	}
	if calls != 0 {
		t.Fatal("injected failure still sent a request")
	}
	if got := breakerStateOf(c, ts.URL); got != BreakerOpen {
		t.Fatalf("breaker after injected failure = %q, want open (FailLimit 1)", got)
	}

	c2 := NewPeerClient(PeerConfig{
		Retry:  backoff.Policy{Attempts: 2, Base: time.Millisecond},
		Faults: in,
	})
	if _, ok := c2.Manifest(bg, ts.URL); ok {
		t.Fatal("injected manifest failure reported success")
	}
	if calls != 0 {
		t.Fatal("injected manifest failure still sent a request")
	}
}

// TestRepairDeltaCursorAndRetirement walks the steady-state delta
// protocol: after convergence a round is a pure cursor exchange, a key
// written past the cursor is the only thing the next delta advertises,
// and a remembered key the peer has since dropped is discovered as one
// clean miss (ErrPeerMiss), retired from the view, and never asked for
// again.
func TestRepairDeltaCursorAndRetirement(t *testing.T) {
	ms := newMembers(t, 2)
	a, b := ms[0], ms[1]
	owned := keysOwnedBy(t, a.tr.Ring(), a.ts.URL, 4)
	for _, key := range owned[:3] {
		if err := b.tr.Disk().Put(key, smallBlob()); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := NewRepairer(a.tr, RepairConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Round(bg); got != 3 {
		t.Fatalf("first round pulled %d keys, want 3", got)
	}
	// Converged: a delta round advertises nothing and fetches nothing.
	before := b.gets.Load()
	if got := rep.Round(bg); got != 0 {
		t.Fatalf("converged round pulled %d keys, want 0", got)
	}
	if b.gets.Load() != before {
		t.Fatal("converged round still fetched blobs")
	}

	// One key written after the cursor: the delta surfaces exactly it.
	if err := b.tr.Disk().Put(owned[3], smallBlob()); err != nil {
		t.Fatal(err)
	}
	if got := rep.Round(bg); got != 1 {
		t.Fatalf("delta round pulled %d keys, want 1", got)
	}
	if !a.tr.Disk().Has(owned[3]) {
		t.Fatal("delta round pulled the wrong key")
	}

	// Retirement: both sides drop a key the view remembers. The next
	// round discovers the clean miss (one fetch, no failure counted);
	// the round after never asks again.
	a.tr.Disk().Delete(owned[0])
	b.tr.Disk().Delete(owned[0])
	if got := rep.Round(bg); got != 0 {
		t.Fatalf("retirement round pulled %d keys, want 0", got)
	}
	if st := rep.Stats(); st.Failures != 0 {
		t.Fatalf("clean miss counted as a failure: %+v", st)
	}
	before = b.gets.Load()
	if got := rep.Round(bg); got != 0 {
		t.Fatalf("post-retirement round pulled %d keys, want 0", got)
	}
	if b.gets.Load() != before {
		t.Fatal("retired key was asked for again")
	}
}

// TestRepairFullListFallbackAfterPeerRestart pins the stale-cursor
// degradation: a peer whose store restarted (generation counter reset
// below the repairer's cursor) answers with the full listing, the view
// is rebuilt from it, and keys the new incarnation holds under old
// generations are still pulled — a stale cursor never silently hides
// keys.
func TestRepairFullListFallbackAfterPeerRestart(t *testing.T) {
	ms := newMembers(t, 2)
	a, b := ms[0], ms[1]
	urls := []string{ms[0].ts.URL, ms[1].ts.URL}
	owned := keysOwnedBy(t, a.tr.Ring(), a.ts.URL, 3)
	for _, key := range owned[:2] {
		if err := b.tr.Disk().Put(key, smallBlob()); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := NewRepairer(a.tr, RepairConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Round(bg); got != 2 {
		t.Fatalf("first round pulled %d keys, want 2 (the cursor must outrun the restart)", got)
	}

	// B restarts wiped: a fresh Tier on an empty dir behind the same
	// URL (the test mux closes over the member, so swapping tr is the
	// restart). Its first write lands at generation 1 — below A's
	// cursor of 2.
	fresh, err := New(Config{
		Dir:   t.TempDir(),
		Peers: urls,
		Self:  b.ts.URL,
		Peer:  PeerConfig{Retry: backoff.Policy{Attempts: 2, Base: time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	b.tr = fresh
	if err := b.tr.Disk().Put(owned[2], smallBlob()); err != nil {
		t.Fatal(err)
	}
	if got := rep.Round(bg); got != 1 {
		t.Fatalf("post-restart round pulled %d keys, want 1 via the full-list fallback", got)
	}
	if !a.tr.Disk().Has(owned[2]) {
		t.Fatal("full-list fallback missed the restarted peer's key")
	}
}
