package tier

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"samr/internal/backoff"
	"samr/internal/fault"
)

// Peer protocol: GET /v1/tier/{key} answers 200 with the blob or 404
// for a miss; PUT /v1/tier/{key} stores the body and answers 204.
// Overloaded or draining peers answer 429/503 with Retry-After, which
// the client honours through the shared backoff policy.

// maxPeerBlobBytes bounds a peer response read: far above any real
// assignment blob, far below a memory hazard.
const maxPeerBlobBytes = 64 << 20

// PeerClient fetches and offers tier blobs over HTTP, wrapping every
// exchange in the repository's shared retry policy and a per-peer
// circuit breaker: after FailLimit consecutive transport/5xx failures
// a peer is skipped entirely for Cooldown, so a dead daemon costs each
// request nothing instead of a connect timeout. Every failure mode
// reports a miss — the tier contract — and 404 is a clean miss that
// resets the breaker (the peer is healthy, it just lacks the key).
type PeerClient struct {
	hc        *http.Client
	policy    backoff.Policy
	failLimit int
	cooldown  time.Duration
	faults    *fault.Injector  // nil in production: zero-cost
	now       func() time.Time // breaker clock; tests inject a fake

	mu       sync.Mutex
	breakers map[string]*breaker

	gets, puts, misses, failures, skips atomic.Uint64
}

type breaker struct {
	fails     int
	openUntil time.Time
	// halfOpen marks an admitted probe whose outcome is pending; the
	// next report closes (success) or re-opens (failure) the breaker.
	halfOpen bool
}

// Breaker states as exported in /v1/stats.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// BreakerState is one peer breaker's exported state.
type BreakerState struct {
	Peer string `json:"peer"`
	// State is closed (healthy), open (skipping the peer), or
	// half-open (cooldown over: the next exchange is the probe).
	State string `json:"state"`
	// Fails is the consecutive-failure count feeding the breaker.
	Fails int `json:"fails"`
}

// PeerConfig tunes a PeerClient; zero values select defaults suited to
// a same-datacenter fleet (tight timeout, few retries: a slow tier
// lookup is worse than a local recompute).
type PeerConfig struct {
	// Client is the underlying HTTP client (default: 2s timeout).
	Client *http.Client
	// Retry shapes per-exchange retries (default: 2 attempts, 25ms base).
	Retry backoff.Policy
	// FailLimit opens a peer's breaker after this many consecutive
	// failures (default 3).
	FailLimit int
	// Cooldown is how long an open breaker skips its peer before
	// probing again (default 5s).
	Cooldown time.Duration
	// Faults arms the client's injection points (tests and the -faults
	// flag only; nil in production).
	Faults *fault.Injector
}

// NewPeerClient builds a client from cfg.
func NewPeerClient(cfg PeerConfig) *PeerClient {
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 2 * time.Second}
	}
	if cfg.Retry.Attempts <= 0 {
		cfg.Retry.Attempts = 2
	}
	if cfg.Retry.Base <= 0 {
		cfg.Retry.Base = 25 * time.Millisecond
	}
	if cfg.FailLimit <= 0 {
		cfg.FailLimit = 3
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	return &PeerClient{
		hc:        cfg.Client,
		policy:    cfg.Retry,
		failLimit: cfg.FailLimit,
		cooldown:  cfg.Cooldown,
		faults:    cfg.Faults,
		now:       time.Now,
		breakers:  make(map[string]*breaker),
	}
}

// allowed reports whether peer's breaker admits a request now.
func (c *PeerClient) allowed(peer string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakers[peer]
	if b == nil || b.fails < c.failLimit {
		return true
	}
	if c.now().After(b.openUntil) {
		// Half-open: let one probe through; a failure re-opens below.
		b.fails = c.failLimit - 1
		b.halfOpen = true
		return true
	}
	c.skips.Add(1)
	return false
}

// Available reports whether peer's breaker would admit a request now,
// without consuming the half-open probe or counting a skip. The tier's
// failover read consults it to route around an open breaker.
func (c *PeerClient) Available(peer string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakers[peer]
	return b == nil || b.fails < c.failLimit || c.now().After(b.openUntil)
}

// report records an exchange outcome for peer's breaker.
func (c *PeerClient) report(peer string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakers[peer]
	if b == nil {
		b = &breaker{}
		c.breakers[peer] = b
	}
	b.halfOpen = false
	if ok {
		b.fails = 0
		return
	}
	b.fails++
	if b.fails >= c.failLimit {
		b.openUntil = c.now().Add(c.cooldown)
		c.failures.Add(1)
	}
}

// BreakerStates snapshots every known peer breaker, sorted by peer.
func (c *PeerClient) BreakerStates() []BreakerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]BreakerState, 0, len(c.breakers))
	for peer, b := range c.breakers {
		state := BreakerClosed
		switch {
		case b.fails >= c.failLimit && c.now().Before(b.openUntil):
			state = BreakerOpen
		case b.fails >= c.failLimit || b.halfOpen:
			state = BreakerHalfOpen
		}
		out = append(out, BreakerState{Peer: peer, State: state, Fails: b.fails})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// retryAfter reads a response's Retry-After seconds (0 if absent).
func retryAfter(r *http.Response) time.Duration {
	if secs, err := strconv.Atoi(r.Header.Get("Retry-After")); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return 0
}

// Get fetches key from peer. ok is false for misses and every failure
// alike; the tier degrades to a local compute either way.
func (c *PeerClient) Get(ctx context.Context, peer, key string) ([]byte, bool) {
	blob, err := c.Fetch(ctx, peer, key)
	return blob, err == nil
}

// Fetch is Get distinguishing its misses: it returns the blob, or
// ErrPeerMiss when the peer is healthy but lacks the key (it answered
// 404 — the one outcome that proves absence), or another error for
// every failure where the peer's holdings stay unknown (breaker open,
// transport error, 5xx). The repairer's delta-manifest state needs the
// distinction — a clean miss retires a remembered key, a failure must
// not.
func (c *PeerClient) Fetch(ctx context.Context, peer, key string) ([]byte, error) {
	if !c.allowed(peer) {
		return nil, fmt.Errorf("tier: peer %s: breaker open", peer)
	}
	c.gets.Add(1)
	d := c.faults.Hit(FaultPeerGet)
	d.Sleep()
	if d.Err != nil {
		// An injected transport failure: no request is sent, the
		// breaker sees a failure, the caller sees a miss.
		c.report(peer, false)
		return nil, d.Err
	}
	var blob []byte
	err := backoff.Retry(ctx, c.policy, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/tier/"+key, nil)
		if err != nil {
			return err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return backoff.Retryable(err)
		}
		defer resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			blob, err = io.ReadAll(io.LimitReader(resp.Body, maxPeerBlobBytes))
			return err
		case resp.StatusCode == http.StatusNotFound:
			return ErrPeerMiss
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			return backoff.RetryableAfter(fmt.Errorf("tier: peer %s: %s", peer, resp.Status), retryAfter(resp))
		default:
			return fmt.Errorf("tier: peer %s: %s", peer, resp.Status)
		}
	})
	switch err {
	case nil:
		c.report(peer, true)
		if d.Corrupt {
			// The fetched blob is this call's private copy; damage
			// simulates on-the-wire corruption (the decoder quarantines).
			fault.Damage(blob)
		}
		return blob, nil
	case ErrPeerMiss:
		c.report(peer, true)
		c.misses.Add(1)
		return nil, ErrPeerMiss
	default:
		c.report(peer, false)
		return nil, err
	}
}

// ErrPeerMiss is Fetch's clean-miss sentinel: the peer answered and
// provably lacks the key.
var ErrPeerMiss = fmt.Errorf("tier: peer miss")

// Put offers key's blob to peer, best-effort: the return value is
// informational and no failure propagates to the caller's request.
func (c *PeerClient) Put(ctx context.Context, peer, key string, blob []byte) bool {
	if !c.allowed(peer) {
		return false
	}
	c.puts.Add(1)
	d := c.faults.Hit(FaultPeerPut)
	d.Sleep()
	if d.Err != nil {
		c.report(peer, false)
		return false
	}
	if d.Corrupt {
		// Damage a private copy: the caller's blob may also back the
		// local disk entry.
		blob = fault.Damage(append([]byte(nil), blob...))
	}
	err := backoff.Retry(ctx, c.policy, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, peer+"/v1/tier/"+key, bytes.NewReader(blob))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := c.hc.Do(req)
		if err != nil {
			return backoff.Retryable(err)
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck // drain for keep-alive
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusNoContent || resp.StatusCode == http.StatusOK:
			return nil
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			return backoff.RetryableAfter(fmt.Errorf("tier: peer %s: %s", peer, resp.Status), retryAfter(resp))
		default:
			return fmt.Errorf("tier: peer %s: %s", peer, resp.Status)
		}
	})
	c.report(peer, err == nil)
	return err == nil
}

// maxManifestBytes bounds a manifest read: 16 MiB holds ~250k keys,
// far beyond any bounded disk store.
const maxManifestBytes = 16 << 20

// Manifest fetches peer's resident key list (GET /v1/tier/manifest):
// one key per line, invalid lines dropped. A peer without the route —
// repair disabled there, or an older build — reports an empty manifest
// (the peer is healthy; it just shares nothing), like 404 on Get.
func (c *PeerClient) Manifest(ctx context.Context, peer string) ([]string, bool) {
	keys, _, ok := c.ManifestSince(ctx, peer, 0)
	return keys, ok
}

// ManifestSince is Manifest with a delta cursor: since > 0 asks peer
// for only the keys written after that generation (the value a prior
// manifest reply advertised in ManifestGenHeader), and gen returns the
// reply's generation for the next call. gen is 0 when the peer did not
// advertise one — an older build serving full lists — in which case
// the caller must keep its cursor at 0 and treat every manifest as the
// complete listing.
func (c *PeerClient) ManifestSince(ctx context.Context, peer string, since uint64) (keys []string, gen uint64, ok bool) {
	if !c.allowed(peer) {
		return nil, 0, false
	}
	d := c.faults.Hit(FaultPeerManifest)
	d.Sleep()
	if d.Err != nil {
		c.report(peer, false)
		return nil, 0, false
	}
	url := peer + "/v1/tier/manifest"
	if since > 0 {
		url += "?since=" + strconv.FormatUint(since, 10)
	}
	err := backoff.Retry(ctx, c.policy, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return backoff.Retryable(err)
		}
		defer resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			keys = keys[:0]
			gen = 0
			if g, perr := strconv.ParseUint(resp.Header.Get(ManifestGenHeader), 10, 64); perr == nil {
				gen = g
			}
			sc := bufio.NewScanner(io.LimitReader(resp.Body, maxManifestBytes))
			for sc.Scan() {
				if key := strings.TrimSpace(sc.Text()); validKey(key) {
					keys = append(keys, key)
				}
			}
			return sc.Err()
		case resp.StatusCode == http.StatusNotFound:
			keys, gen = keys[:0], 0
			return nil
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			return backoff.RetryableAfter(fmt.Errorf("tier: peer %s: %s", peer, resp.Status), retryAfter(resp))
		default:
			return fmt.Errorf("tier: peer %s: %s", peer, resp.Status)
		}
	})
	c.report(peer, err == nil)
	if err != nil {
		return nil, 0, false
	}
	return keys, gen, true
}
