package tier

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"

	"samr/internal/geom"
	"samr/internal/partition"
	"samr/internal/sim"
)

// randAssignment builds a structurally arbitrary assignment: the codec
// must round-trip anything, not just valid decompositions.
func randAssignment(rng *rand.Rand) *partition.Assignment {
	a := &partition.Assignment{NumProcs: 1 + rng.IntN(64)}
	n := rng.IntN(40)
	for i := 0; i < n; i++ {
		dim := 2 + rng.IntN(2)
		b := geom.Box{Dim: dim}
		for d := 0; d < geom.MaxDim; d++ {
			// Unused axes carry the 0/1 padding convention sometimes,
			// arbitrary values other times: both must survive.
			b.Lo[d] = rng.IntN(2048) - 1024
			b.Hi[d] = b.Lo[d] + rng.IntN(256)
		}
		a.Fragments = append(a.Fragments, partition.Fragment{
			Level: rng.IntN(6),
			Box:   b,
			Owner: rng.IntN(a.NumProcs),
		})
	}
	return a
}

func randStepMetrics(rng *rand.Rand) sim.StepMetrics {
	sm := sim.StepMetrics{
		Step:              rng.IntN(1000),
		Imbalance:         rng.Float64() * 100,
		IntraLevelComm:    rng.Int64N(1 << 40),
		InterLevelComm:    rng.Int64N(1 << 40),
		Messages:          rng.Int64N(1 << 30),
		RelativeComm:      rng.Float64(),
		Migration:         rng.Int64N(1 << 40),
		RelativeMigration: rng.Float64(),
		EstTime:           rng.Float64() * 10,
	}
	if n := rng.IntN(32); n > 0 {
		sm.Loads = make([]int64, n)
		for i := range sm.Loads {
			sm.Loads[i] = rng.Int64N(1 << 50)
		}
	}
	return sm
}

func TestAssignmentRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for i := 0; i < 200; i++ {
		a := randAssignment(rng)
		blob := EncodeAssignment(a)
		got, err := DecodeAssignment(blob)
		if err != nil {
			t.Fatalf("iteration %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(a, got) {
			t.Fatalf("iteration %d: round trip mismatch:\n in: %+v\nout: %+v", i, a, got)
		}
	}
}

func TestStepArtifactRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 17))
	for i := 0; i < 200; i++ {
		a := randAssignment(rng)
		sm := randStepMetrics(rng)
		blob := EncodeStepArtifact(a, sm)
		gotA, gotSM, err := DecodeStepArtifact(blob)
		if err != nil {
			t.Fatalf("iteration %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(a, gotA) || !reflect.DeepEqual(sm, gotSM) {
			t.Fatalf("iteration %d: round trip mismatch", i)
		}
	}
}

func TestFloatBitPatternsRoundTrip(t *testing.T) {
	for _, f := range []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(), 1e-300} {
		sm := sim.StepMetrics{EstTime: f}
		_, got, err := DecodeStepArtifact(EncodeStepArtifact(&partition.Assignment{NumProcs: 1}, sm))
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.EstTime) != math.Float64bits(f) {
			t.Fatalf("float %v: bits changed in round trip", f)
		}
	}
}

// TestEveryMutationDetected flips, truncates, and extends blobs: each
// damaged form must fail to decode (the checksum catches single-byte
// damage with certainty short of a sha256 collision).
func TestEveryMutationDetected(t *testing.T) {
	rng := rand.New(rand.NewPCG(19, 23))
	a := randAssignment(rng)
	blob := EncodeAssignment(a)

	for i := range blob {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x41
		if _, err := DecodeAssignment(mut); err == nil {
			t.Fatalf("flipped byte %d decoded cleanly", i)
		}
	}
	for cut := 1; cut <= len(blob); cut += 7 {
		if _, err := DecodeAssignment(blob[:len(blob)-cut]); err == nil {
			t.Fatalf("truncation by %d decoded cleanly", cut)
		}
	}
	if _, err := DecodeAssignment(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("extended blob decoded cleanly")
	}
	if _, err := DecodeAssignment(nil); err == nil {
		t.Fatal("nil blob decoded cleanly")
	}
	// Kind confusion: a step artifact is not an assignment.
	art := EncodeStepArtifact(a, randStepMetrics(rng))
	if _, err := DecodeAssignment(art); err == nil {
		t.Fatal("step artifact decoded as assignment")
	}
}

func TestOpenValidatesEnvelope(t *testing.T) {
	blob := EncodeAssignment(&partition.Assignment{NumProcs: 4})
	if _, kind, err := Open(blob); err != nil || kind != KindAssignment {
		t.Fatalf("Open(valid) = kind %d, err %v", kind, err)
	}
	if _, _, err := Open([]byte("not a tier blob at all, definitely too short? no")); err == nil {
		t.Fatal("Open accepted garbage")
	}
}

func FuzzDecodeAssignment(f *testing.F) {
	rng := rand.New(rand.NewPCG(29, 31))
	f.Add([]byte{})
	f.Add(EncodeAssignment(randAssignment(rng)))
	f.Add(EncodeStepArtifact(randAssignment(rng), randStepMetrics(rng)))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic or over-allocate; errors are expected.
		a, err := DecodeAssignment(data)
		if err == nil && a == nil {
			t.Fatal("nil assignment with nil error")
		}
		DecodeStepArtifact(data) //nolint:errcheck
	})
}
