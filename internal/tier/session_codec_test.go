package tier

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"samr/internal/geom"
	"samr/internal/grid"
	"samr/internal/partition"
)

// snapshotHierarchy builds a small two-level hierarchy whose finest
// patch is parameterized, tracked so a signature state can be exported.
func snapshotHierarchy(x int) *grid.Hierarchy {
	h := grid.NewHierarchy(geom.NewBox2(0, 0, 32, 32), 2)
	h.Levels = append(h.Levels, grid.Level{Boxes: geom.BoxList{geom.NewBox2(x, 8, x+16, 40)}})
	h.TrackSignature()
	return h
}

func snapshotVariants(t *testing.T) map[string]*SessionSnapshot {
	t.Helper()
	rng := rand.New(rand.NewPCG(41, 43))
	mk := func(x int, stateful bool) *SessionSnapshot {
		h := snapshotHierarchy(x)
		st, ok := h.ExportSignatureState()
		if !ok {
			t.Fatal("tracked hierarchy exported no signature state")
		}
		name := "domain"
		if stateful {
			name = "postmap(domain)"
		}
		return &SessionSnapshot{Name: name, NProcs: 8, Hierarchy: h, Sig: st, Stateful: stateful}
	}
	withHistory := mk(8, true)
	withHistory.PrevHierarchy = snapshotHierarchy(4)
	withHistory.PrevAssignment = randAssignment(rng)
	return map[string]*SessionSnapshot{
		"stateless":             mk(0, false),
		"stateful-no-history":   mk(4, true),
		"stateful-with-history": withHistory,
	}
}

// TestSessionSnapshotRoundTrip pins the codec across all three session
// shapes: everything a resuming daemon needs — geometry, signature
// state, spec, history — survives byte-exactly, and the decoded pair
// passes the signature import that gates a real resume.
func TestSessionSnapshotRoundTrip(t *testing.T) {
	for name, ss := range snapshotVariants(t) {
		t.Run(name, func(t *testing.T) {
			blob := EncodeSessionSnapshot(ss)
			if _, kind, err := Open(blob); err != nil || kind != KindSessionSnapshot {
				t.Fatalf("Open = kind %d, err %v", kind, err)
			}
			got, err := DecodeSessionSnapshot(blob)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if got.Name != ss.Name || got.NProcs != ss.NProcs || got.Stateful != ss.Stateful {
				t.Fatalf("scalar fields changed: %+v", got)
			}
			if got.Hierarchy.Signature() != ss.Hierarchy.Signature() {
				t.Fatal("hierarchy geometry changed in round trip")
			}
			if !reflect.DeepEqual(got.Sig, ss.Sig) {
				t.Fatal("signature state changed in round trip")
			}
			// The decoded pair must survive the resume gate: re-track the
			// geometry and match the recorded state byte-for-byte.
			if err := got.Hierarchy.ImportSignatureState(got.Sig); err != nil {
				t.Fatalf("decoded snapshot fails its own signature import: %v", err)
			}
			if ss.PrevHierarchy == nil {
				if got.PrevHierarchy != nil || got.PrevAssignment != nil {
					t.Fatal("history materialized from nowhere")
				}
				return
			}
			if got.PrevHierarchy == nil || got.PrevHierarchy.Signature() != ss.PrevHierarchy.Signature() {
				t.Fatal("history hierarchy changed in round trip")
			}
			if !reflect.DeepEqual(got.PrevAssignment, ss.PrevAssignment) {
				t.Fatal("history assignment changed in round trip")
			}
		})
	}
}

// TestSessionSnapshotMutationDetected: every single-byte flip,
// truncation, extension, and kind confusion fails to decode — the
// quarantine path's precondition.
func TestSessionSnapshotMutationDetected(t *testing.T) {
	ss := snapshotVariants(t)["stateful-with-history"]
	blob := EncodeSessionSnapshot(ss)
	for i := range blob {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x41
		if _, err := DecodeSessionSnapshot(mut); err == nil {
			t.Fatalf("flipped byte %d decoded cleanly", i)
		}
	}
	for cut := 1; cut <= len(blob); cut += 11 {
		if _, err := DecodeSessionSnapshot(blob[:len(blob)-cut]); err == nil {
			t.Fatalf("truncation by %d decoded cleanly", cut)
		}
	}
	if _, err := DecodeSessionSnapshot(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("extended blob decoded cleanly")
	}
	if _, err := DecodeSessionSnapshot(nil); err == nil {
		t.Fatal("nil blob decoded cleanly")
	}
	if _, err := DecodeSessionSnapshot(smallBlob()); err == nil {
		t.Fatal("assignment blob decoded as a session snapshot")
	}
	if _, err := DecodeAssignment(blob); err == nil {
		t.Fatal("session snapshot decoded as an assignment")
	}
}

func FuzzDecodeSessionSnapshot(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeSessionSnapshot(&SessionSnapshot{
		Name: "domain", NProcs: 1, Hierarchy: snapshotHierarchy(0),
	}))
	f.Add(EncodeAssignment(&partition.Assignment{NumProcs: 2}))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic or over-allocate; errors are expected.
		ss, err := DecodeSessionSnapshot(data)
		if err == nil && ss == nil {
			t.Fatal("nil snapshot with nil error")
		}
	})
}
