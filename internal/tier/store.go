package tier

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"samr/internal/fault"
)

// Injection points of the fleet tier, armed only by tests and the
// -faults flag (production runs carry a nil injector).
const (
	// FaultDiskGet covers DiskStore.Get: error (read failure) and
	// corrupt (a damaged resident blob) decisions apply.
	FaultDiskGet = "disk.get"
	// FaultDiskPut covers DiskStore.Put: an error decision (typically
	// enospc) fails the write before it starts.
	FaultDiskPut = "disk.put"
	// FaultPeerGet / FaultPeerPut / FaultPeerManifest cover the
	// corresponding PeerClient exchanges; an error decision counts as a
	// transport failure (feeding the breaker) without touching the
	// network, and a corrupt decision damages a fetched blob.
	FaultPeerGet      = "peer.get"
	FaultPeerPut      = "peer.put"
	FaultPeerManifest = "peer.manifest"
)

// suffix marks tier entries on disk; anything else in the directory is
// left alone.
const suffix = ".tier"

// DiskStore is the persistent level of the cache tier:
// content-addressed blobs as flat files under one directory. Writes
// are atomic (temp file + rename in the same directory), so a crashed
// or concurrent daemon never observes a torn entry, and reads touch
// the file's mtime, making modification time a usable LRU clock: when
// the store exceeds its byte bound, the oldest-mtime entries are
// evicted first.
//
// The store never interprets blob contents — corruption is the
// decoder's concern (and decode failures should be reported back via
// Delete so a bad entry is not served twice).
type DiskStore struct {
	dir      string
	maxBytes int64
	faults   *fault.Injector // nil in production: zero-cost

	mu    sync.Mutex
	bytes int64 // resident entry bytes, maintained incrementally
	// gen counts writes: every successful Put bumps it and records the
	// entry's generation in gens, giving the delta manifest its cursor.
	// Removals never bump it — a cursor only needs to order writes.
	gen  uint64
	gens map[string]uint64 // resident key -> generation of its last Put

	gets, hits, puts, evictions atomic.Uint64
	errors                      atomic.Uint64
}

// OpenDiskStore opens (creating if needed) a store under dir bounded
// to maxBytes of entry data (minimum one entry is always kept;
// maxBytes <= 0 selects 256 MiB). Entries already on disk — a previous
// daemon's cache — are kept, evicting oldest-first if they exceed the
// bound.
func OpenDiskStore(dir string, maxBytes int64) (*DiskStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("tier: empty disk store directory")
	}
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tier: %w", err)
	}
	s := &DiskStore{dir: dir, maxBytes: maxBytes, gens: make(map[string]uint64)}
	s.mu.Lock()
	defer s.mu.Unlock()
	// A leftover put-*.tmp is an interrupted write from a crashed
	// daemon. The rename is the commit point, so such a file was never
	// an entry — the warm-restart rescan deletes it and never decodes
	// it (entriesLocked already ignores anything without the entry
	// suffix).
	if des, err := os.ReadDir(dir); err == nil {
		for _, de := range des {
			name := de.Name()
			if !de.IsDir() && strings.HasPrefix(name, "put-") && strings.HasSuffix(name, ".tmp") {
				os.Remove(filepath.Join(dir, name)) //nolint:errcheck
			}
		}
	}
	entries := s.entriesLocked()
	// Seed the write-generation map for pre-existing entries (a previous
	// daemon's cache) in sorted-key order. The counter restarts at each
	// open; delta-manifest consumers detect the regression (their cursor
	// exceeds the advertised generation) and fall back to the full list.
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	for _, e := range entries {
		s.bytes += e.size
		s.gen++
		s.gens[e.key] = s.gen
	}
	s.evictLocked("")
	return s, nil
}

// SetFaults arms the store's injection points (tests and the -faults
// flag only); it must be called before the store sees concurrent use.
func (s *DiskStore) SetFaults(in *fault.Injector) { s.faults = in }

// Dir returns the store's directory.
func (s *DiskStore) Dir() string { return s.dir }

// validKey gates every path derived from a wire-supplied key: tier
// keys are fixed-length lowercase hex (a content hash), which is both
// filesystem- and URL-safe and cannot traverse out of the directory.
func validKey(key string) bool {
	if len(key) != keyLen {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *DiskStore) path(key string) string { return filepath.Join(s.dir, key+suffix) }

// Get returns the blob stored under key. A read marks the entry
// recently used (best-effort mtime touch).
func (s *DiskStore) Get(key string) ([]byte, bool) {
	s.gets.Add(1)
	if !validKey(key) {
		return nil, false
	}
	d := s.faults.Hit(FaultDiskGet)
	d.Sleep()
	if d.Err != nil {
		s.errors.Add(1)
		return nil, false
	}
	blob, err := os.ReadFile(s.path(key))
	if err != nil {
		if !os.IsNotExist(err) {
			s.errors.Add(1)
		}
		return nil, false
	}
	if d.Corrupt {
		// ReadFile returned a private copy; damaging it simulates a
		// torn or bit-rotted resident entry without touching the file.
		fault.Damage(blob)
	}
	now := time.Now()
	os.Chtimes(s.path(key), now, now) //nolint:errcheck // LRU hint only
	s.hits.Add(1)
	return blob, true
}

// Put stores blob under key atomically, then evicts oldest-mtime
// entries (never the one just written) until the store is back under
// its byte bound.
func (s *DiskStore) Put(key string, blob []byte) error {
	if !validKey(key) {
		return fmt.Errorf("tier: invalid key %q", key)
	}
	if d := s.faults.Hit(FaultDiskPut); d.Err != nil || d.Delay > 0 {
		d.Sleep()
		if d.Err != nil {
			s.errors.Add(1)
			return fmt.Errorf("tier: %w", d.Err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var replaced int64
	if fi, err := os.Stat(s.path(key)); err == nil {
		replaced = fi.Size()
	}
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		s.errors.Add(1)
		return fmt.Errorf("tier: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name()) //nolint:errcheck
		s.errors.Add(1)
		return fmt.Errorf("tier: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name()) //nolint:errcheck
		s.errors.Add(1)
		return fmt.Errorf("tier: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name()) //nolint:errcheck
		s.errors.Add(1)
		return fmt.Errorf("tier: %w", err)
	}
	s.puts.Add(1)
	s.bytes += int64(len(blob)) - replaced
	s.gen++
	s.gens[key] = s.gen
	s.evictLocked(key)
	return nil
}

// Delete removes the entry under key (a no-op if absent). Callers use
// it to drop entries whose blobs failed to decode.
func (s *DiskStore) Delete(key string) {
	if !validKey(key) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if fi, err := os.Stat(s.path(key)); err == nil {
		if os.Remove(s.path(key)) == nil {
			s.bytes -= fi.Size()
			delete(s.gens, key)
		}
	}
}

type diskEntry struct {
	key   string
	size  int64
	mtime time.Time
}

// entriesLocked lists the resident entries. Called with s.mu held.
func (s *DiskStore) entriesLocked() []diskEntry {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		s.errors.Add(1)
		return nil
	}
	var out []diskEntry
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, suffix) {
			continue
		}
		key := strings.TrimSuffix(name, suffix)
		if !validKey(key) {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			continue
		}
		out = append(out, diskEntry{key: key, size: fi.Size(), mtime: fi.ModTime()})
	}
	return out
}

// evictLocked removes oldest-mtime entries until the store fits its
// bound, sparing keep (the entry just written: even if it alone
// exceeds the bound, serving it beats thrashing). Called with s.mu
// held.
func (s *DiskStore) evictLocked(keep string) {
	if s.bytes <= s.maxBytes {
		return
	}
	entries := s.entriesLocked()
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })
	// Recompute from the listing: incremental accounting can drift if
	// another process shares the directory.
	s.bytes = 0
	for _, e := range entries {
		s.bytes += e.size
	}
	for _, e := range entries {
		if s.bytes <= s.maxBytes {
			break
		}
		if e.key == keep {
			continue
		}
		if os.Remove(s.path(e.key)) == nil {
			s.bytes -= e.size
			delete(s.gens, e.key)
			s.evictions.Add(1)
		}
	}
}

// Keys lists the resident entry keys, sorted; the anti-entropy
// manifest is served from it.
func (s *DiskStore) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := s.entriesLocked()
	keys := make([]string, 0, len(entries))
	for _, e := range entries {
		keys = append(keys, e.key)
	}
	sort.Strings(keys)
	return keys
}

// KeysSince returns the keys written after generation cursor since,
// sorted, plus the store's current generation (the caller's next
// cursor). since == 0 — or a cursor ahead of the current generation,
// which means it came from a previous incarnation of the store whose
// counter restarted — falls back to the full resident listing, so a
// stale cursor degrades to the PR 9 full manifest, never to silently
// missing keys. Deletions and evictions are not reported; delta
// consumers discover them as clean misses when they pull.
func (s *DiskStore) KeysSince(since uint64) ([]string, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if since == 0 || since > s.gen {
		entries := s.entriesLocked()
		keys := make([]string, 0, len(entries))
		for _, e := range entries {
			keys = append(keys, e.key)
		}
		sort.Strings(keys)
		return keys, s.gen
	}
	keys := make([]string, 0)
	for key, g := range s.gens {
		if g > since {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys, s.gen
}

// Gen returns the store's current write generation.
func (s *DiskStore) Gen() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Has reports whether key is resident, without reading the blob or
// touching its LRU clock (the repair loop's membership probe).
func (s *DiskStore) Has(key string) bool {
	if !validKey(key) {
		return false
	}
	_, err := os.Stat(s.path(key))
	return err == nil
}

// Len returns the number of resident entries.
func (s *DiskStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entriesLocked())
}

// Bytes returns the resident entry bytes as accounted.
func (s *DiskStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// MaxBytes returns the store's byte bound.
func (s *DiskStore) MaxBytes() int64 { return s.maxBytes }
