package tier

import (
	"fmt"
	"testing"
)

func peerSet(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8347", i+1)
	}
	return out
}

func TestRingDeterministicAndOrderIndependent(t *testing.T) {
	peers := peerSet(5)
	reversed := make([]string, len(peers))
	for i, p := range peers {
		reversed[len(peers)-1-i] = p
	}
	a := NewRing("", peers)
	b := NewRing("", append(reversed, peers...)) // duplicates too
	for i := 0; i < 500; i++ {
		key := Key(fmt.Sprint(i))
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %d: owner differs across peer-list orderings", i)
		}
	}
}

// TestRingDistribution checks rendezvous hashing spreads the keyspace:
// every peer owns a non-degenerate share.
func TestRingDistribution(t *testing.T) {
	const keys = 20000
	peers := peerSet(5)
	r := NewRing("", peers)
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		counts[r.Owner(Key(fmt.Sprint(i)))]++
	}
	want := keys / len(peers)
	for _, p := range peers {
		if c := counts[p]; c < want/2 || c > want*2 {
			t.Fatalf("peer %s owns %d of %d keys, want within [%d, %d]", p, c, keys, want/2, want*2)
		}
	}
}

// TestRingRebalanceProperty pins the minimal-disruption property:
// removing one peer moves only the keys that peer owned (≈ K/n), and
// no key moves between surviving peers.
func TestRingRebalanceProperty(t *testing.T) {
	const keys = 10000
	peers := peerSet(5)
	full := NewRing("", peers)
	removed := peers[2]
	reduced := NewRing("", append(append([]string{}, peers[:2]...), peers[3:]...))

	moved := 0
	for i := 0; i < keys; i++ {
		key := Key(fmt.Sprint(i))
		was, is := full.Owner(key), reduced.Owner(key)
		if was == removed {
			moved++
			continue
		}
		if was != is {
			t.Fatalf("key %d moved %s -> %s though its owner survived", i, was, is)
		}
	}
	// moved == keys owned by the removed peer; the distribution bound
	// keeps that within 2x of K/n.
	if bound := 2 * keys / len(peers); moved > bound {
		t.Fatalf("rebalance moved %d keys, want <= %d (≈K/n)", moved, bound)
	}
	if moved == 0 {
		t.Fatal("removed peer owned nothing: distribution is degenerate")
	}
}

func TestRingSelfShortCircuit(t *testing.T) {
	peers := peerSet(3)
	r := NewRing(peers[1]+"/", peers) // trailing slash canonicalized
	if r.Self() != peers[1] {
		t.Fatalf("Self = %q, want %q", r.Self(), peers[1])
	}
	sawSelf := false
	for i := 0; i < 200; i++ {
		key := Key(fmt.Sprint(i))
		if r.OwnedBySelf(key) {
			sawSelf = true
			if r.Owner(key) != peers[1] {
				t.Fatal("OwnedBySelf disagrees with Owner")
			}
		}
	}
	if !sawSelf {
		t.Fatal("self never owns a key")
	}
	if NewRing("", peers).OwnedBySelf(Key("x")) {
		t.Fatal("unset self owns a key")
	}
}

// TestRingRanked pins the failover order's contract: the owner leads,
// the order is a permutation of the peer set, and every member computes
// the identical order (it is a pure function of the key).
func TestRingRanked(t *testing.T) {
	peers := peerSet(5)
	r := NewRing("", peers)
	other := NewRing(peers[0], append([]string{}, peers...)) // different self, same set
	for i := 0; i < 300; i++ {
		key := Key(fmt.Sprint(i))
		ranked := r.Ranked(key)
		if len(ranked) != len(peers) {
			t.Fatalf("Ranked returned %d peers, want %d", len(ranked), len(peers))
		}
		if ranked[0] != r.Owner(key) {
			t.Fatalf("key %d: Ranked[0] = %s, Owner = %s", i, ranked[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, p := range ranked {
			if seen[p] {
				t.Fatalf("key %d: peer %s ranked twice", i, p)
			}
			seen[p] = true
		}
		for j, p := range other.Ranked(key) {
			if ranked[j] != p {
				t.Fatalf("key %d: rank %d differs across members", i, j)
			}
		}
	}
	if got := NewRing("", nil).Ranked(Key("x")); len(got) != 0 {
		t.Fatalf("empty ring Ranked = %v", got)
	}
}

func TestEmptyRing(t *testing.T) {
	r := NewRing("", nil)
	if r.Owner(Key("x")) != "" {
		t.Fatal("empty ring produced an owner")
	}
}

func TestKeyShape(t *testing.T) {
	a, b := Key("sig", "name", "8"), Key("sig", "name8", "")
	if a == b {
		t.Fatal("length-prefixing failed: distinct part lists collide")
	}
	if !ValidKey(a) || len(a) != keyLen {
		t.Fatalf("Key produced non-canonical key %q", a)
	}
}
