// Package tier is the fleet cache tier: a pluggable second-level cache
// behind the in-process memoization substrate (internal/memo), letting
// N samrd daemons act as one logical content-addressed cache. It has
// three parts, each usable alone:
//
//   - DiskStore: content-addressed blobs as files under a bounded
//     directory (atomic write-rename, LRU eviction by mtime), so a
//     restarted daemon comes back warm.
//   - Ring: a rendezvous-hash ring over a static peer set, assigning
//     every key an owner daemon consistently across the fleet.
//   - PeerClient: a retrying HTTP client for the GET/PUT /v1/tier/{key}
//     peer protocol served by internal/server, honouring Retry-After
//     and breaking the circuit on repeatedly failing peers.
//
// Tier composes them into the memo.Tier shape (Lookup consults disk
// then the key's owner peer; Store writes disk and offers the blob to
// the owner), and the codec gives partition assignments and simulator
// step artifacts a versioned, checksummed binary encoding, so a
// corrupt or truncated entry — disk bit-rot, a torn peer response —
// degrades to a cache miss, never a wrong answer.
//
// The tier is an optimization layer by contract: every failure path
// (peer down, circuit open, corrupt blob, disk error) reports a miss
// and the caller recomputes locally. Values crossing the tier must be
// pure functions of their key; the stateful (postmap) partitioners are
// never tiered.
package tier

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"

	"samr/internal/geom"
	"samr/internal/grid"
	"samr/internal/partition"
	"samr/internal/sim"
)

// Blob kinds carried by the codec (one byte on the wire).
const (
	// KindAssignment is a partition.Assignment blob.
	KindAssignment byte = 1
	// KindStepArtifact is a simulator step artifact: an assignment
	// plus its evaluated per-run-independent step metrics.
	KindStepArtifact byte = 2
	// KindSessionSnapshot is a streaming-session snapshot: everything a
	// peer needs to resume a session under the same token (see
	// SessionSnapshot).
	KindSessionSnapshot byte = 3
)

// codecVersion is bumped whenever the payload layout changes; a blob
// from a different version decodes as corrupt (a miss), never as a
// wrong value, so mixed-version fleets stay correct.
const codecVersion byte = 1

// magic brands every tier blob; len(header) = 4 magic + 1 version + 1 kind.
var magic = [4]byte{'s', 'm', 't', 'r'}

const headerLen = 6
const checksumLen = sha256.Size

// ErrCorrupt is returned by the decoders for any blob that is not a
// byte-exact encoding: wrong magic/version/kind, failed checksum,
// truncation, or trailing garbage. Callers treat it as a cache miss.
var ErrCorrupt = fmt.Errorf("tier: corrupt blob")

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// seal prepends the header and appends the sha256 checksum over
// header+payload.
func seal(kind byte, payload []byte) []byte {
	blob := make([]byte, 0, headerLen+len(payload)+checksumLen)
	blob = append(blob, magic[:]...)
	blob = append(blob, codecVersion, kind)
	blob = append(blob, payload...)
	sum := sha256.Sum256(blob)
	return append(blob, sum[:]...)
}

// open verifies the envelope and returns the payload.
func open(kind byte, blob []byte) ([]byte, error) {
	payload, gotKind, err := Open(blob)
	if err != nil {
		return nil, err
	}
	if gotKind != kind {
		return nil, corrupt("kind %d, want %d", gotKind, kind)
	}
	return payload, nil
}

// Open verifies a blob's envelope (magic, version, checksum) and
// returns its payload and kind. The server's PUT handler uses it to
// reject garbage before storing; the typed decoders build on it.
func Open(blob []byte) (payload []byte, kind byte, err error) {
	if len(blob) < headerLen+checksumLen {
		return nil, 0, corrupt("%d bytes, below minimum %d", len(blob), headerLen+checksumLen)
	}
	if [4]byte(blob[:4]) != magic {
		return nil, 0, corrupt("bad magic %q", blob[:4])
	}
	if blob[4] != codecVersion {
		return nil, 0, corrupt("version %d, want %d", blob[4], codecVersion)
	}
	body, sum := blob[:len(blob)-checksumLen], blob[len(blob)-checksumLen:]
	if sha256.Sum256(body) != [checksumLen]byte(sum) {
		return nil, 0, corrupt("checksum mismatch")
	}
	return body[headerLen:], blob[5], nil
}

// appendAssignment appends the canonical payload encoding of a:
// NumProcs, fragment count, then each fragment's level, owner, and box
// (dim plus every MaxDim lo/hi component, so padding conventions
// round-trip bit-exactly).
func appendAssignment(buf []byte, a *partition.Assignment) []byte {
	buf = binary.AppendUvarint(buf, uint64(a.NumProcs))
	buf = binary.AppendUvarint(buf, uint64(len(a.Fragments)))
	for _, f := range a.Fragments {
		buf = binary.AppendUvarint(buf, uint64(f.Level))
		buf = binary.AppendUvarint(buf, uint64(f.Owner))
		buf = binary.AppendUvarint(buf, uint64(f.Box.Dim))
		for d := 0; d < geom.MaxDim; d++ {
			buf = binary.AppendVarint(buf, int64(f.Box.Lo[d]))
		}
		for d := 0; d < geom.MaxDim; d++ {
			buf = binary.AppendVarint(buf, int64(f.Box.Hi[d]))
		}
	}
	return buf
}

// reader is a strict little decoder over a payload: any short read
// marks the payload corrupt.
type reader struct {
	buf []byte
	err error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = corrupt("bad uvarint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.err = corrupt("bad varint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) float() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.err = corrupt("short float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf))
	r.buf = r.buf[8:]
	return v
}

// count validates a declared element count against the bytes actually
// remaining (each element takes at least minBytes), bounding
// allocations on crafted or damaged payloads.
func (r *reader) count(n uint64, minBytes int) int {
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.buf)/minBytes) {
		r.err = corrupt("count %d exceeds remaining payload", n)
		return 0
	}
	return int(n)
}

func (r *reader) assignment() *partition.Assignment {
	a := &partition.Assignment{NumProcs: int(r.uvarint())}
	// A fragment is >= 3 + 2*MaxDim single-byte varints.
	n := r.count(r.uvarint(), 3+2*geom.MaxDim)
	if r.err != nil {
		return nil
	}
	if n > 0 {
		a.Fragments = make([]partition.Fragment, n)
	}
	for i := range a.Fragments {
		f := &a.Fragments[i]
		f.Level = int(r.uvarint())
		f.Owner = int(r.uvarint())
		f.Box.Dim = int(r.uvarint())
		for d := 0; d < geom.MaxDim; d++ {
			f.Box.Lo[d] = int(r.varint())
		}
		for d := 0; d < geom.MaxDim; d++ {
			f.Box.Hi[d] = int(r.varint())
		}
	}
	if r.err != nil {
		return nil
	}
	return a
}

// done flags trailing garbage after a complete decode.
func (r *reader) done() error {
	if r.err == nil && len(r.buf) != 0 {
		r.err = corrupt("%d trailing bytes", len(r.buf))
	}
	return r.err
}

// EncodeAssignment seals a into a versioned, checksummed blob.
func EncodeAssignment(a *partition.Assignment) []byte {
	return seal(KindAssignment, appendAssignment(nil, a))
}

// DecodeAssignment reverses EncodeAssignment. Any altered, truncated,
// or mis-kinded blob returns an error wrapping ErrCorrupt.
func DecodeAssignment(blob []byte) (*partition.Assignment, error) {
	payload, err := open(KindAssignment, blob)
	if err != nil {
		return nil, err
	}
	r := &reader{buf: payload}
	a := r.assignment()
	if err := r.done(); err != nil {
		return nil, err
	}
	return a, nil
}

// appendStepMetrics appends every StepMetrics field in declaration
// order; floats are fixed 8-byte little-endian bit patterns so the
// round trip is bit-exact (NaN payloads included).
func appendStepMetrics(buf []byte, sm *sim.StepMetrics) []byte {
	buf = binary.AppendVarint(buf, int64(sm.Step))
	buf = binary.AppendUvarint(buf, uint64(len(sm.Loads)))
	for _, l := range sm.Loads {
		buf = binary.AppendVarint(buf, l)
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(sm.Imbalance))
	buf = binary.AppendVarint(buf, sm.IntraLevelComm)
	buf = binary.AppendVarint(buf, sm.InterLevelComm)
	buf = binary.AppendVarint(buf, sm.Messages)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(sm.RelativeComm))
	buf = binary.AppendVarint(buf, sm.Migration)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(sm.RelativeMigration))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(sm.EstTime))
	return buf
}

func (r *reader) stepMetrics() sim.StepMetrics {
	var sm sim.StepMetrics
	sm.Step = int(r.varint())
	n := r.count(r.uvarint(), 1)
	if n > 0 {
		sm.Loads = make([]int64, n)
	}
	for i := range sm.Loads {
		sm.Loads[i] = r.varint()
	}
	sm.Imbalance = r.float()
	sm.IntraLevelComm = r.varint()
	sm.InterLevelComm = r.varint()
	sm.Messages = r.varint()
	sm.RelativeComm = r.float()
	sm.Migration = r.varint()
	sm.RelativeMigration = r.float()
	sm.EstTime = r.float()
	return sm
}

// EncodeStepArtifact seals a simulator step artifact — the assignment
// that partitioned a snapshot plus its evaluated metrics — into one
// blob, keyed fleet-wide by the same content addresses the in-process
// step cache uses.
func EncodeStepArtifact(a *partition.Assignment, sm sim.StepMetrics) []byte {
	payload := appendAssignment(nil, a)
	payload = appendStepMetrics(payload, &sm)
	return seal(KindStepArtifact, payload)
}

// DecodeStepArtifact reverses EncodeStepArtifact.
func DecodeStepArtifact(blob []byte) (*partition.Assignment, sim.StepMetrics, error) {
	payload, err := open(KindStepArtifact, blob)
	if err != nil {
		return nil, sim.StepMetrics{}, err
	}
	r := &reader{buf: payload}
	a := r.assignment()
	sm := r.stepMetrics()
	if err := r.done(); err != nil {
		return nil, sim.StepMetrics{}, err
	}
	return a, sm, nil
}

// SessionSnapshot is the durable form of one streaming session — the
// committed state a peer daemon needs to resume the session under the
// same token after its owner dies: the current hierarchy geometry, the
// tracked signature state binding that geometry to the signature the
// owner last served (a mismatch on rebuild means a damaged or stale
// snapshot and decodes into a resume miss), the canonical partitioner
// spec, and — for stateful postmap sessions — the carried mapping
// history. Snapshots are keyed per session token, so unlike the
// content-addressed result blobs a later snapshot for the same token
// legitimately overwrites an earlier one.
type SessionSnapshot struct {
	// Name is the canonical partitioner spec; NProcs the fixed count.
	Name   string
	NProcs int
	// Hierarchy is the session's committed regrid state; Sig is its
	// tracked signature state at snapshot time.
	Hierarchy *grid.Hierarchy
	Sig       grid.SignatureState
	// Stateful marks a postmap session; PrevHierarchy/PrevAssignment
	// carry its mapping history (both nil before the first completed
	// step remaps anything).
	Stateful       bool
	PrevHierarchy  *grid.Hierarchy
	PrevAssignment *partition.Assignment
}

// appendBox appends one box: dim plus every MaxDim lo/hi component, the
// same fragment convention appendAssignment uses, so padding
// round-trips bit-exactly.
func appendBox(buf []byte, b geom.Box) []byte {
	buf = binary.AppendUvarint(buf, uint64(b.Dim))
	for d := 0; d < geom.MaxDim; d++ {
		buf = binary.AppendVarint(buf, int64(b.Lo[d]))
	}
	for d := 0; d < geom.MaxDim; d++ {
		buf = binary.AppendVarint(buf, int64(b.Hi[d]))
	}
	return buf
}

func (r *reader) box() geom.Box {
	var b geom.Box
	b.Dim = int(r.uvarint())
	for d := 0; d < geom.MaxDim; d++ {
		b.Lo[d] = int(r.varint())
	}
	for d := 0; d < geom.MaxDim; d++ {
		b.Hi[d] = int(r.varint())
	}
	return b
}

// boxMinBytes is the least encoded size of one box: 1 + 2*MaxDim
// single-byte varints.
const boxMinBytes = 1 + 2*geom.MaxDim

// appendHierarchy appends h's geometry: domain, refinement ratio, and
// every level's box list.
func appendHierarchy(buf []byte, h *grid.Hierarchy) []byte {
	buf = appendBox(buf, h.Domain)
	buf = binary.AppendUvarint(buf, uint64(h.RefRatio))
	buf = binary.AppendUvarint(buf, uint64(len(h.Levels)))
	for _, lev := range h.Levels {
		buf = binary.AppendUvarint(buf, uint64(len(lev.Boxes)))
		for _, b := range lev.Boxes {
			buf = appendBox(buf, b)
		}
	}
	return buf
}

func (r *reader) hierarchy() *grid.Hierarchy {
	h := &grid.Hierarchy{Domain: r.box(), RefRatio: int(r.uvarint())}
	nLevels := r.count(r.uvarint(), 1)
	if r.err != nil {
		return nil
	}
	h.Levels = make([]grid.Level, nLevels)
	for l := range h.Levels {
		nBoxes := r.count(r.uvarint(), boxMinBytes)
		if r.err != nil {
			return nil
		}
		if nBoxes > 0 {
			h.Levels[l].Boxes = make(geom.BoxList, nBoxes)
		}
		for i := range h.Levels[l].Boxes {
			h.Levels[l].Boxes[i] = r.box()
		}
	}
	if r.err != nil {
		return nil
	}
	return h
}

// appendBytes appends a length-prefixed byte string.
func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func (r *reader) bytes() []byte {
	n := r.count(r.uvarint(), 1)
	if r.err != nil {
		return nil
	}
	b := make([]byte, n)
	copy(b, r.buf[:n])
	r.buf = r.buf[n:]
	return b
}

func (r *reader) signature() geom.Signature {
	var s geom.Signature
	if r.err != nil {
		return s
	}
	if len(r.buf) < len(s) {
		r.err = corrupt("short signature")
		return s
	}
	copy(s[:], r.buf)
	r.buf = r.buf[len(s):]
	return s
}

func (r *reader) bool() bool {
	if r.err != nil {
		return false
	}
	if len(r.buf) < 1 {
		r.err = corrupt("short bool")
		return false
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	if v > 1 {
		r.err = corrupt("bad bool %d", v)
		return false
	}
	return v == 1
}

func appendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// EncodeSessionSnapshot seals ss into a versioned, checksummed blob.
// The signature state must describe exactly ss.Hierarchy's levels.
func EncodeSessionSnapshot(ss *SessionSnapshot) []byte {
	payload := appendBytes(nil, []byte(ss.Name))
	payload = binary.AppendUvarint(payload, uint64(ss.NProcs))
	payload = appendHierarchy(payload, ss.Hierarchy)
	payload = append(payload, ss.Sig.Top[:]...)
	for l := range ss.Sig.Levels {
		payload = append(payload, ss.Sig.Levels[l][:]...)
		payload = appendBytes(payload, ss.Sig.Mid[l])
	}
	payload = appendBool(payload, ss.Stateful)
	if ss.Stateful {
		hasHistory := ss.PrevHierarchy != nil && ss.PrevAssignment != nil
		payload = appendBool(payload, hasHistory)
		if hasHistory {
			payload = appendHierarchy(payload, ss.PrevHierarchy)
			payload = appendAssignment(payload, ss.PrevAssignment)
		}
	}
	return seal(KindSessionSnapshot, payload)
}

// DecodeSessionSnapshot reverses EncodeSessionSnapshot. The signature
// state is decoded, not verified — the resuming server cross-checks it
// against the rebuilt hierarchy (grid.ImportSignatureState), so a
// snapshot that decodes cleanly can still be rejected as stale there.
func DecodeSessionSnapshot(blob []byte) (*SessionSnapshot, error) {
	payload, err := open(KindSessionSnapshot, blob)
	if err != nil {
		return nil, err
	}
	r := &reader{buf: payload}
	ss := &SessionSnapshot{}
	ss.Name = string(r.bytes())
	ss.NProcs = int(r.uvarint())
	ss.Hierarchy = r.hierarchy()
	ss.Sig.Top = r.signature()
	if r.err == nil {
		n := len(ss.Hierarchy.Levels)
		ss.Sig.Levels = make([]geom.Signature, n)
		ss.Sig.Mid = make([][]byte, n)
		for l := 0; l < n; l++ {
			ss.Sig.Levels[l] = r.signature()
			ss.Sig.Mid[l] = r.bytes()
		}
	}
	ss.Stateful = r.bool()
	if r.err == nil && ss.Stateful {
		if r.bool() {
			ss.PrevHierarchy = r.hierarchy()
			ss.PrevAssignment = r.assignment()
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return ss, nil
}
