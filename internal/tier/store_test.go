package tier

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// k returns a distinct valid tier key per index.
func k(i byte) string { return Key(string([]byte{i})) }

func TestDiskStorePutGetDelete(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("hello tier")
	if err := s.Put(k(1), blob); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k(1))
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("Get = (%q, %v), want the stored blob", got, ok)
	}
	if _, ok := s.Get(k(2)); ok {
		t.Fatal("absent key reported present")
	}
	if s.Len() != 1 || s.Bytes() != int64(len(blob)) {
		t.Fatalf("occupancy = (%d, %d), want (1, %d)", s.Len(), s.Bytes(), len(blob))
	}
	s.Delete(k(1))
	if _, ok := s.Get(k(1)); ok {
		t.Fatal("deleted key reported present")
	}
	if s.Bytes() != 0 {
		t.Fatalf("bytes = %d after delete, want 0", s.Bytes())
	}
}

func TestDiskStoreRejectsBadKeys(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "short", "../../../../etc/passwd", strings.Repeat("Z", keyLen), strings.Repeat("a", keyLen-1)} {
		if err := s.Put(bad, []byte("x")); err == nil {
			t.Fatalf("Put accepted invalid key %q", bad)
		}
		if _, ok := s.Get(bad); ok {
			t.Fatalf("Get answered invalid key %q", bad)
		}
	}
}

func TestDiskStoreReplaceAccountsBytes(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k(1), make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k(1), make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	if s.Bytes() != 40 || s.Len() != 1 {
		t.Fatalf("occupancy = (%d, %d bytes), want (1, 40)", s.Len(), s.Bytes())
	}
}

func TestDiskStoreEvictsOldestMtime(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir, 250)
	if err != nil {
		t.Fatal(err)
	}
	// Three 100-byte entries: the third Put must evict the coldest.
	for i := byte(1); i <= 3; i++ {
		if err := s.Put(k(i), make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
		// The mtime clock needs distinct stamps; coarse filesystems get
		// explicit ones.
		stamp := time.Now().Add(time.Duration(i) * time.Second)
		if err := os.Chtimes(filepath.Join(dir, k(i)+suffix), stamp, stamp); err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			// Touch 1 hotter than 2 so eviction order is 2 then 1.
			hot := time.Now().Add(10 * time.Second)
			if err := os.Chtimes(filepath.Join(dir, k(1)+suffix), hot, hot); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, ok := s.Get(k(2)); ok {
		t.Fatal("coldest entry survived eviction")
	}
	if _, ok := s.Get(k(1)); !ok {
		t.Fatal("hot entry was evicted")
	}
	if _, ok := s.Get(k(3)); !ok {
		t.Fatal("just-written entry was evicted")
	}
	if s.Bytes() > 250 {
		t.Fatalf("store over bound after eviction: %d bytes", s.Bytes())
	}
	if got := s.evictions.Load(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
}

func TestDiskStoreKeepsJustWrittenOversizedEntry(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k(1), make([]byte, 200)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k(1)); !ok {
		t.Fatal("oversized single entry was evicted instead of kept")
	}
}

func TestDiskStoreReopenKeepsEntries(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k(1), []byte("survives restarts")); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenDiskStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get(k(1)); !ok || string(got) != "survives restarts" {
		t.Fatalf("reopened store lost the entry: (%q, %v)", got, ok)
	}
	if s2.Bytes() != int64(len("survives restarts")) {
		t.Fatalf("reopened accounting = %d bytes", s2.Bytes())
	}
}

func TestDiskStoreReopenEnforcesBound(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := byte(1); i <= 4; i++ {
		if err := s.Put(k(i), make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
		stamp := time.Now().Add(time.Duration(i) * time.Second)
		os.Chtimes(filepath.Join(dir, k(i)+suffix), stamp, stamp) //nolint:errcheck
	}
	s2, err := OpenDiskStore(dir, 250)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Len(); got != 2 {
		t.Fatalf("reopened store holds %d entries, want 2 after bound enforcement", got)
	}
	if _, ok := s2.Get(k(4)); !ok {
		t.Fatal("newest entry evicted on reopen")
	}
}

func TestDiskStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte("not a tier entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenDiskStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("foreign file counted: (%d, %d)", s.Len(), s.Bytes())
	}
}
