package tier

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"samr/internal/fault"
)

// k returns a distinct valid tier key per index.
func k(i byte) string { return Key(string([]byte{i})) }

func TestDiskStorePutGetDelete(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("hello tier")
	if err := s.Put(k(1), blob); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k(1))
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("Get = (%q, %v), want the stored blob", got, ok)
	}
	if _, ok := s.Get(k(2)); ok {
		t.Fatal("absent key reported present")
	}
	if s.Len() != 1 || s.Bytes() != int64(len(blob)) {
		t.Fatalf("occupancy = (%d, %d), want (1, %d)", s.Len(), s.Bytes(), len(blob))
	}
	s.Delete(k(1))
	if _, ok := s.Get(k(1)); ok {
		t.Fatal("deleted key reported present")
	}
	if s.Bytes() != 0 {
		t.Fatalf("bytes = %d after delete, want 0", s.Bytes())
	}
}

func TestDiskStoreRejectsBadKeys(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "short", "../../../../etc/passwd", strings.Repeat("Z", keyLen), strings.Repeat("a", keyLen-1)} {
		if err := s.Put(bad, []byte("x")); err == nil {
			t.Fatalf("Put accepted invalid key %q", bad)
		}
		if _, ok := s.Get(bad); ok {
			t.Fatalf("Get answered invalid key %q", bad)
		}
	}
}

func TestDiskStoreReplaceAccountsBytes(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k(1), make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k(1), make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	if s.Bytes() != 40 || s.Len() != 1 {
		t.Fatalf("occupancy = (%d, %d bytes), want (1, 40)", s.Len(), s.Bytes())
	}
}

func TestDiskStoreEvictsOldestMtime(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir, 250)
	if err != nil {
		t.Fatal(err)
	}
	// Three 100-byte entries: the third Put must evict the coldest.
	for i := byte(1); i <= 3; i++ {
		if err := s.Put(k(i), make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
		// The mtime clock needs distinct stamps; coarse filesystems get
		// explicit ones.
		stamp := time.Now().Add(time.Duration(i) * time.Second)
		if err := os.Chtimes(filepath.Join(dir, k(i)+suffix), stamp, stamp); err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			// Touch 1 hotter than 2 so eviction order is 2 then 1.
			hot := time.Now().Add(10 * time.Second)
			if err := os.Chtimes(filepath.Join(dir, k(1)+suffix), hot, hot); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, ok := s.Get(k(2)); ok {
		t.Fatal("coldest entry survived eviction")
	}
	if _, ok := s.Get(k(1)); !ok {
		t.Fatal("hot entry was evicted")
	}
	if _, ok := s.Get(k(3)); !ok {
		t.Fatal("just-written entry was evicted")
	}
	if s.Bytes() > 250 {
		t.Fatalf("store over bound after eviction: %d bytes", s.Bytes())
	}
	if got := s.evictions.Load(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
}

func TestDiskStoreKeepsJustWrittenOversizedEntry(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k(1), make([]byte, 200)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k(1)); !ok {
		t.Fatal("oversized single entry was evicted instead of kept")
	}
}

func TestDiskStoreReopenKeepsEntries(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k(1), []byte("survives restarts")); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenDiskStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get(k(1)); !ok || string(got) != "survives restarts" {
		t.Fatalf("reopened store lost the entry: (%q, %v)", got, ok)
	}
	if s2.Bytes() != int64(len("survives restarts")) {
		t.Fatalf("reopened accounting = %d bytes", s2.Bytes())
	}
}

func TestDiskStoreReopenEnforcesBound(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := byte(1); i <= 4; i++ {
		if err := s.Put(k(i), make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
		stamp := time.Now().Add(time.Duration(i) * time.Second)
		os.Chtimes(filepath.Join(dir, k(i)+suffix), stamp, stamp) //nolint:errcheck
	}
	s2, err := OpenDiskStore(dir, 250)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Len(); got != 2 {
		t.Fatalf("reopened store holds %d entries, want 2 after bound enforcement", got)
	}
	if _, ok := s2.Get(k(4)); !ok {
		t.Fatal("newest entry evicted on reopen")
	}
}

// TestDiskStoreCleansCrashedPutTemp pins the crash-window contract: a
// put-*.tmp left by a daemon killed mid-Put (before the rename commit
// point) is never surfaced as an entry and is removed by the
// warm-restart rescan.
func TestDiskStoreCleansCrashedPutTemp(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, "put-1234567.tmp")
	if err := os.WriteFile(tmp, []byte("torn half-written blob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, k(1)+suffix), []byte("committed"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenDiskStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("crashed put temp file survived the warm-restart rescan")
	}
	if s.Len() != 1 || s.Bytes() != int64(len("committed")) {
		t.Fatalf("occupancy = (%d, %d), want only the committed entry", s.Len(), s.Bytes())
	}
	if keys := s.Keys(); len(keys) != 1 || keys[0] != k(1) {
		t.Fatalf("Keys = %v, want only %s", keys, k(1))
	}
}

func TestDiskStoreKeysAndHas(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := byte(3); i > 0; i-- { // insertion order != sorted order
		if err := s.Put(k(i), []byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	keys := s.Keys()
	if len(keys) != 3 || !sort.StringsAreSorted(keys) {
		t.Fatalf("Keys = %v, want 3 sorted keys", keys)
	}
	if !s.Has(k(1)) || s.Has(k(9)) || s.Has("not-a-key") {
		t.Fatal("Has disagrees with residency")
	}
}

func TestDiskStoreInjectedFaults(t *testing.T) {
	blob := []byte("resident blob bytes")

	t.Run("put enospc", func(t *testing.T) {
		in, err := fault.New(1, fault.Plan{Point: FaultDiskPut, Mode: fault.NoSpace})
		if err != nil {
			t.Fatal(err)
		}
		s, err := OpenDiskStore(t.TempDir(), 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		s.SetFaults(in)
		err = s.Put(k(1), blob)
		if !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("Put error = %v, want ENOSPC", err)
		}
		if s.Has(k(1)) || s.errors.Load() == 0 {
			t.Fatal("failed put landed an entry or went uncounted")
		}
	})

	t.Run("get error", func(t *testing.T) {
		in, err := fault.New(1, fault.Plan{Point: FaultDiskGet, Mode: fault.Error})
		if err != nil {
			t.Fatal(err)
		}
		s, err := OpenDiskStore(t.TempDir(), 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Put(k(1), blob); err != nil {
			t.Fatal(err)
		}
		s.SetFaults(in)
		if _, ok := s.Get(k(1)); ok {
			t.Fatal("injected read failure still reported a hit")
		}
		if s.errors.Load() == 0 {
			t.Fatal("injected read failure went uncounted")
		}
	})

	t.Run("get corrupt", func(t *testing.T) {
		in, err := fault.New(1, fault.Plan{Point: FaultDiskGet, Mode: fault.Corrupt})
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		s, err := OpenDiskStore(dir, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Put(k(1), blob); err != nil {
			t.Fatal(err)
		}
		s.SetFaults(in)
		got, ok := s.Get(k(1))
		if !ok || len(got) != len(blob) || bytes.Equal(got, blob) {
			t.Fatalf("corrupt Get = (%q, %v), want same-length damaged blob", got, ok)
		}
		// The damage is to the returned copy only: the resident file is
		// untouched (a fault-free reader still sees the good bytes).
		raw, err := os.ReadFile(filepath.Join(dir, k(1)+suffix))
		if err != nil || !bytes.Equal(raw, blob) {
			t.Fatalf("resident file changed: (%q, %v)", raw, err)
		}
	})
}

func TestDiskStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte("not a tier entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenDiskStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("foreign file counted: (%d, %d)", s.Len(), s.Bytes())
	}
}

// TestDiskStoreKeysSince pins the delta-manifest cursor semantics:
// every successful Put bumps the write generation, KeysSince(cursor)
// returns exactly the keys written after it, and the two stale-cursor
// forms — zero and ahead-of-generation (a restarted store) — fall back
// to the full resident listing rather than silently missing keys.
func TestDiskStoreKeysSince(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Gen(); got != 0 {
		t.Fatalf("fresh store generation = %d, want 0", got)
	}
	blob := []byte("generation fodder")
	for i := byte(1); i <= 3; i++ {
		if err := s.Put(k(i), blob); err != nil {
			t.Fatal(err)
		}
	}
	keys, gen := s.KeysSince(0)
	if len(keys) != 3 || gen != 3 {
		t.Fatalf("KeysSince(0) = (%v, %d), want all 3 keys at generation 3", keys, gen)
	}

	// Only keys written after the cursor appear in the delta.
	if err := s.Put(k(4), blob); err != nil {
		t.Fatal(err)
	}
	keys, gen = s.KeysSince(3)
	if len(keys) != 1 || keys[0] != k(4) || gen != 4 {
		t.Fatalf("KeysSince(3) = (%v, %d), want just %s at generation 4", keys, gen, k(4))
	}
	// A caught-up cursor yields an empty delta.
	if keys, _ = s.KeysSince(4); len(keys) != 0 {
		t.Fatalf("caught-up delta = %v, want empty", keys)
	}

	// Overwriting refreshes a key's generation: it reappears in deltas.
	if err := s.Put(k(1), blob); err != nil {
		t.Fatal(err)
	}
	keys, gen = s.KeysSince(4)
	if len(keys) != 1 || keys[0] != k(1) || gen != 5 {
		t.Fatalf("delta after overwrite = (%v, %d), want just %s at generation 5", keys, gen, k(1))
	}

	// Deletion does not bump the generation and is never advertised;
	// delta consumers discover it as a clean miss at pull time.
	s.Delete(k(2))
	if keys, gen = s.KeysSince(5); len(keys) != 0 || gen != 5 {
		t.Fatalf("delta after delete = (%v, %d), want empty at generation 5", keys, gen)
	}

	// A cursor from a previous incarnation (ahead of this store's
	// generation) degrades to the full listing.
	keys, gen = s.KeysSince(100)
	if len(keys) != 3 || gen != 5 {
		t.Fatalf("stale cursor = (%v, %d), want the full 3-key listing at generation 5", keys, gen)
	}
}
