package tier

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"samr/internal/backoff"
	"samr/internal/partition"
)

var bg = context.Background()

// fastPeer is a client whose retries and cooldowns keep tests quick.
func fastPeer() *PeerClient {
	return NewPeerClient(PeerConfig{
		Client:    &http.Client{Timeout: time.Second},
		Retry:     backoff.Policy{Attempts: 2, Base: time.Millisecond, Max: 2 * time.Millisecond},
		FailLimit: 2,
		Cooldown:  50 * time.Millisecond,
	})
}

// tierHandler is a minimal in-memory peer-protocol server.
func tierHandler(store map[string][]byte) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/tier/{key}", func(w http.ResponseWriter, r *http.Request) {
		blob, ok := store[r.PathValue("key")]
		if !ok {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		w.Write(blob) //nolint:errcheck
	})
	mux.HandleFunc("PUT /v1/tier/{key}", func(w http.ResponseWriter, r *http.Request) {
		blob, _ := io.ReadAll(r.Body)
		store[r.PathValue("key")] = blob
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

func TestPeerClientGetPut(t *testing.T) {
	store := map[string][]byte{}
	ts := httptest.NewServer(tierHandler(store))
	defer ts.Close()
	c := fastPeer()

	key := Key("a")
	if _, ok := c.Get(bg, ts.URL, key); ok {
		t.Fatal("absent key reported present")
	}
	if !c.Put(bg, ts.URL, key, []byte("blob")) {
		t.Fatal("Put failed against a healthy peer")
	}
	got, ok := c.Get(bg, ts.URL, key)
	if !ok || !bytes.Equal(got, []byte("blob")) {
		t.Fatalf("Get = (%q, %v)", got, ok)
	}
}

func TestPeerClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "busy", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte("late blob")) //nolint:errcheck
	}))
	defer ts.Close()
	c := fastPeer()

	start := time.Now()
	got, ok := c.Get(bg, ts.URL, Key("a"))
	if !ok || string(got) != "late blob" {
		t.Fatalf("Get = (%q, %v), want success on retry", got, ok)
	}
	if waited := time.Since(start); waited < time.Second {
		t.Fatalf("waited %v, want >= the 1s Retry-After floor", waited)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
}

// fakeClock is the injectable breaker clock: tests advance it instead
// of sleeping through cooldowns.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// breakerStateOf returns peer's exported breaker state string.
func breakerStateOf(c *PeerClient, peer string) string {
	for _, b := range c.BreakerStates() {
		if b.Peer == peer {
			return b.State
		}
	}
	return ""
}

func TestPeerClientBreakerOpensAndRecovers(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if fail.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("recovered")) //nolint:errcheck
	}))
	defer ts.Close()
	c := fastPeer() // FailLimit 2, Cooldown 50ms
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c.now = clk.Now

	// Two failing exchanges open the breaker (500 is terminal: one
	// request each).
	for i := 0; i < 2; i++ {
		if _, ok := c.Get(bg, ts.URL, Key("a")); ok {
			t.Fatal("failing peer reported a hit")
		}
	}
	if got := breakerStateOf(c, ts.URL); got != BreakerOpen {
		t.Fatalf("state after %d failures = %q, want open", 2, got)
	}
	seen := calls.Load()
	// Open breaker: no request reaches the peer.
	if _, ok := c.Get(bg, ts.URL, Key("a")); ok {
		t.Fatal("open breaker reported a hit")
	}
	if calls.Load() != seen {
		t.Fatal("open breaker let a request through")
	}
	if c.skips.Load() == 0 {
		t.Fatal("breaker skip not counted")
	}
	if c.Available(ts.URL) {
		t.Fatal("open breaker reported available")
	}

	// Cooldown elapses on the fake clock: the breaker is half-open (the
	// next exchange is the probe) and a healthy probe closes it.
	fail.Store(false)
	clk.Advance(60 * time.Millisecond)
	if got := breakerStateOf(c, ts.URL); got != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %q, want half-open", got)
	}
	if !c.Available(ts.URL) {
		t.Fatal("half-open breaker reported unavailable")
	}
	if got, ok := c.Get(bg, ts.URL, Key("a")); !ok || string(got) != "recovered" {
		t.Fatalf("post-cooldown probe = (%q, %v)", got, ok)
	}
	if got := breakerStateOf(c, ts.URL); got != BreakerClosed {
		t.Fatalf("state after successful probe = %q, want closed", got)
	}
	if got, ok := c.Get(bg, ts.URL, Key("a")); !ok || string(got) != "recovered" {
		t.Fatalf("closed breaker = (%q, %v)", got, ok)
	}
}

func TestPeerClientBreakerFailedProbeReopens(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	c := fastPeer() // FailLimit 2, Cooldown 50ms
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c.now = clk.Now

	for i := 0; i < 2; i++ {
		c.Get(bg, ts.URL, Key("a"))
	}
	if got := breakerStateOf(c, ts.URL); got != BreakerOpen {
		t.Fatalf("state = %q, want open", got)
	}

	// The cooldown elapses, the probe goes through — and fails, so the
	// breaker re-opens for a fresh cooldown without further traffic.
	clk.Advance(60 * time.Millisecond)
	seen := calls.Load()
	if _, ok := c.Get(bg, ts.URL, Key("a")); ok {
		t.Fatal("failing probe reported a hit")
	}
	if calls.Load() == seen {
		t.Fatal("probe never reached the peer")
	}
	if got := breakerStateOf(c, ts.URL); got != BreakerOpen {
		t.Fatalf("state after failed probe = %q, want open", got)
	}
	seen = calls.Load()
	if _, ok := c.Get(bg, ts.URL, Key("a")); ok || calls.Load() != seen {
		t.Fatal("re-opened breaker let a request through")
	}

	// Available is a read-only view: it neither consumes the probe nor
	// counts skips.
	clk.Advance(60 * time.Millisecond)
	skips := c.skips.Load()
	for i := 0; i < 3; i++ {
		if !c.Available(ts.URL) {
			t.Fatal("cooled-down breaker reported unavailable")
		}
	}
	if c.skips.Load() != skips {
		t.Fatal("Available counted a skip")
	}
	if got := breakerStateOf(c, ts.URL); got != BreakerHalfOpen {
		t.Fatalf("state after Available calls = %q, want half-open", got)
	}
}

func TestPeerClientDeadPeerIsMiss(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // nothing listens anymore
	c := fastPeer()
	if _, ok := c.Get(bg, ts.URL, Key("a")); ok {
		t.Fatal("dead peer reported a hit")
	}
	if c.Put(bg, ts.URL, Key("a"), []byte("x")) {
		t.Fatal("dead peer accepted a put")
	}
}

// TestTierComposite drives the assembled tier: disk first, then the
// key's owner peer, write-through on a peer hit, owner offer on store.
func TestTierComposite(t *testing.T) {
	ownerStore := map[string][]byte{}
	owner := httptest.NewServer(tierHandler(ownerStore))
	defer owner.Close()

	tr, err := New(Config{
		Dir:   t.TempDir(),
		Peers: []string{owner.URL},
		Peer:  PeerConfig{Retry: backoff.Policy{Attempts: 2, Base: time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}

	key := Key("x")
	if _, ok := tr.Lookup(bg, key); ok {
		t.Fatal("empty tier reported a hit")
	}

	// Store: lands on disk and is offered to the owner peer.
	tr.Store(key, smallBlob())
	if _, ok := tr.Disk().Get(key); !ok {
		t.Fatal("store skipped the disk level")
	}
	if _, ok := ownerStore[key]; !ok {
		t.Fatal("store never offered the blob to the key's owner")
	}

	// A peer-only key: lookup falls through disk to the owner and
	// writes through.
	key2 := Key("y")
	ownerStore[key2] = smallBlob()
	blob, ok := tr.Lookup(bg, key2)
	if !ok || !bytes.Equal(blob, ownerStore[key2]) {
		t.Fatal("peer-level lookup failed")
	}
	if _, ok := tr.Disk().Get(key2); !ok {
		t.Fatal("peer hit was not written through to disk")
	}
	st := tr.Stats()
	if st.DiskHits != 0 || st.PeerHits != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// ReportCorrupt drops the local entry.
	tr.ReportCorrupt(key)
	if _, ok := tr.Disk().Get(key); ok {
		t.Fatal("corrupt entry survived ReportCorrupt")
	}
}

func TestTierSelfOwnedKeySkipsHTTP(t *testing.T) {
	var calls atomic.Int32
	other := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "not found", http.StatusNotFound)
	}))
	defer other.Close()

	self := "http://self.invalid:1"
	tr, err := New(Config{Dir: t.TempDir(), Self: self, Peers: []string{self, other.URL}})
	if err != nil {
		t.Fatal(err)
	}
	// Find keys for both ownership cases.
	var selfKey, otherKey string
	for i := 0; selfKey == "" || otherKey == ""; i++ {
		key := Key("probe", string(rune(i)))
		if tr.Ring().Owner(key) == self {
			selfKey = key
		} else {
			otherKey = key
		}
	}
	// Self-owned: both lookup and store stay local — the other peer
	// sees no traffic.
	tr.Store(selfKey, smallBlob())
	if _, ok := tr.Lookup(bg, selfKey); !ok {
		t.Fatal("self-owned key not served from disk")
	}
	if calls.Load() != 0 {
		t.Fatal("self-owned key generated peer traffic")
	}
	// Other-owned: lookup consults the peer.
	tr.Lookup(bg, otherKey)
	if calls.Load() == 0 {
		t.Fatal("other-owned key never consulted its owner")
	}
}

// smallBlob is a valid sealed blob for tests that only need envelope
// validity, not interesting contents.
func smallBlob() []byte {
	return EncodeAssignment(&partition.Assignment{NumProcs: 4})
}
