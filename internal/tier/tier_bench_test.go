package tier

import (
	"context"
	"fmt"
	"testing"

	"samr/internal/geom"
	"samr/internal/grid"
	"samr/internal/partition"
)

// benchHierarchy builds a paper-shaped two-level hierarchy large enough
// that partitioning it does real work.
func benchHierarchy() *grid.Hierarchy {
	dom := geom.NewBox2(0, 0, 64, 64)
	h := grid.NewHierarchy(dom, 2)
	var fine geom.BoxList
	for i := 0; i < 8; i++ {
		x := 16 * (i % 4)
		y := 64 * (i / 4)
		fine = append(fine, geom.NewBox2(x, y+8, x+12, y+56))
	}
	h.Levels = append(h.Levels, grid.Level{Boxes: fine})
	return h
}

// BenchmarkTierHitVsCompute compares the two ways a singleflight leader
// can resolve a local cache miss: decoding a tier blob (disk read +
// checksum + decode) versus running the partitioner. The gap is the
// budget the fleet tier has for network hops before it stops paying.
func BenchmarkTierHitVsCompute(b *testing.B) {
	h := benchHierarchy()
	p := partition.NewDomainSFC()
	ctx := context.Background()
	const nprocs = 16

	a, err := p.Partition(ctx, h, nprocs)
	if err != nil {
		b.Fatal(err)
	}
	blob := EncodeAssignment(a)
	store, err := OpenDiskStore(b.TempDir(), 1<<30)
	if err != nil {
		b.Fatal(err)
	}
	key := Key(h.Signature().String(), p.Name(), fmt.Sprint(nprocs))
	if err := store.Put(key, blob); err != nil {
		b.Fatal(err)
	}

	b.Run("tier-hit", func(b *testing.B) {
		b.SetBytes(int64(len(blob)))
		for i := 0; i < b.N; i++ {
			raw, ok := store.Get(key)
			if !ok {
				b.Fatal("tier entry vanished")
			}
			got, err := DecodeAssignment(raw)
			if err != nil {
				b.Fatal(err)
			}
			if len(got.Fragments) != len(a.Fragments) {
				b.Fatal("decoded assignment lost fragments")
			}
		}
	})
	b.Run("compute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			got, err := p.Partition(ctx, h, nprocs)
			if err != nil {
				b.Fatal(err)
			}
			if len(got.Fragments) == 0 {
				b.Fatal("empty assignment")
			}
		}
	})
}
