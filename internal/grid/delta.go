package grid

import (
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"fmt"
	"hash"

	"samr/internal/geom"
)

// Incremental signature maintenance. A regrid sequence replaces a few
// levels per step and keeps the rest, yet Signature() re-encodes and
// re-hashes the whole hierarchy every time — the dominant per-request
// cost of a partitioning service whose compute side is memoized. A
// *tracked* hierarchy caches, per level, the canonical encoding, its
// sha256 sub-digest, and the sha256 midstate of the top-level hash just
// before that level's bytes. Applying a delta then re-encodes and
// re-digests only the replaced levels and resumes the top hash from the
// midstate of the first changed level, so a step that replaces the
// finest level re-hashes one level. The signature value itself is
// unchanged: it is still sha256 over the exact canonical encoding
// AppendEncoding produces, byte-identical to a cold full re-hash (the
// delta property suite pins this).
//
// Contract: once tracked, a hierarchy must be mutated only through
// ApplyDelta/WithDelta. Direct writes to Domain, RefRatio, or Levels
// leave the cached digests stale. Clone deliberately drops the cache
// (clones are routinely mutated directly, e.g. by tests and the
// post-mapping partitioner's history snapshot).

// LevelDelta describes one level of a regrid step: either the level
// survives unchanged from the previous state (Keep) or its patch set is
// replaced wholesale by Boxes. A step is a []LevelDelta whose length is
// the new level count, so levels are appended by extending the slice
// and dropped by shortening it.
type LevelDelta struct {
	// Keep marks the level as surviving unchanged; Boxes is ignored.
	Keep bool
	// Boxes is the replacement patch set when !Keep (may be empty).
	Boxes geom.BoxList
}

// Replace returns the delta replacing a level's patches with boxes.
func Replace(boxes geom.BoxList) LevelDelta { return LevelDelta{Boxes: boxes} }

// Keep returns the delta keeping a level unchanged.
func Keep() LevelDelta { return LevelDelta{Keep: true} }

// sigCache is the incrementally maintained signature state of a tracked
// hierarchy. Every byte slice it holds is immutable once stored:
// updates replace whole entries, so caches may share entries with the
// states they were derived from (WithDelta chains).
type sigCache struct {
	// header is the encoding prefix before any level: domain box,
	// refinement ratio, level count.
	header []byte
	// levelEnc[l] is level l's canonical encoding
	// (Levels[l].Boxes.AppendEncoding(nil)).
	levelEnc [][]byte
	// levelDig[l] is sha256 over levelEnc[l]: the per-level sub-digest
	// the session wire protocol exposes for delta validation.
	levelDig []geom.Signature
	// mid[l] is the marshaled sha256 state after header and levels < l
	// — the resume point when level l is the first change.
	mid [][]byte
	// top is the full-hierarchy signature, identical to sha256 over
	// AppendEncoding.
	top geom.Signature
}

// appendHeader appends the encoding prefix (domain, ref ratio, level
// count) that AppendEncoding writes before the levels.
func (h *Hierarchy) appendHeader(buf []byte) []byte {
	buf = geom.BoxList{h.Domain}.AppendEncoding(buf)
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], uint64(int64(h.RefRatio)))
	buf = append(buf, w[:]...)
	binary.LittleEndian.PutUint64(w[:], uint64(len(h.Levels)))
	return append(buf, w[:]...)
}

// TrackSignature builds (or rebuilds from scratch) the incremental
// signature cache: per-level encodings, sub-digests, and hash
// midstates. It is the O(hierarchy) entry fee paid once — per session,
// at create — after which every delta costs O(changed levels) in
// encoding and hashing. Calling it on an already-tracked hierarchy
// rebuilds the cache, which also re-syncs after a direct mutation.
func (h *Hierarchy) TrackSignature() {
	c := &sigCache{
		header:   h.appendHeader(nil),
		levelEnc: make([][]byte, len(h.Levels)),
		levelDig: make([]geom.Signature, len(h.Levels)),
		mid:      make([][]byte, len(h.Levels)),
	}
	for l, lev := range h.Levels {
		c.levelEnc[l] = lev.Boxes.AppendEncoding(nil)
		c.levelDig[l] = sha256.Sum256(c.levelEnc[l])
	}
	c.rehashFrom(0)
	h.sig = c
}

// Tracked reports whether the hierarchy carries the incremental
// signature cache.
func (h *Hierarchy) Tracked() bool { return h.sig != nil }

// LevelSignature returns the sub-digest of level l: sha256 over the
// level's canonical box-list encoding. Tracked hierarchies serve it
// from the cache; untracked ones compute it on the fly.
func (h *Hierarchy) LevelSignature(l int) geom.Signature {
	if h.sig != nil {
		return h.sig.levelDig[l]
	}
	return sha256.Sum256(h.Levels[l].Boxes.AppendEncoding(nil))
}

// rehashFrom resumes the top-level hash at level k (0 restarts at the
// header), refreshing mid[k:] and top. Midstates before k must be
// valid: the header and every level below k unchanged.
func (c *sigCache) rehashFrom(k int) {
	d := sha256.New()
	if k > 0 {
		if !restoreDigest(d, c.mid[k]) {
			k = 0 // defensive: unusable midstate, start over
		}
	}
	if k == 0 {
		d.Write(c.header) //nolint:errcheck // sha256 never fails
	}
	for l := k; l < len(c.levelEnc); l++ {
		c.mid[l] = marshalDigest(d)
		d.Write(c.levelEnc[l]) //nolint:errcheck
	}
	sum := d.Sum(nil)
	copy(c.top[:], sum)
}

// marshalDigest snapshots a sha256 midstate.
func marshalDigest(d hash.Hash) []byte {
	m, err := d.(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		return nil
	}
	return m
}

// restoreDigest resumes d from a snapshot, reporting success.
func restoreDigest(d hash.Hash, state []byte) bool {
	if state == nil {
		return false
	}
	return d.(encoding.BinaryUnmarshaler).UnmarshalBinary(state) == nil
}

// SignatureState is the portable form of a tracked hierarchy's
// incremental signature cache: the per-level sub-digests, the sha256
// midstates before each level, and the top signature. It is what a
// session snapshot carries through the fleet tier so a resuming daemon
// can cross-check that the hierarchy it rebuilt hashes to exactly the
// state the owner committed.
type SignatureState struct {
	// Levels[l] is level l's sub-digest (LevelSignature(l)).
	Levels []geom.Signature
	// Mid[l] is the marshaled sha256 midstate before level l's bytes.
	Mid [][]byte
	// Top is the full-hierarchy signature.
	Top geom.Signature
}

// ExportSignatureState snapshots the tracked signature cache, sharing
// the (immutable) midstate slices. It reports false for an untracked
// hierarchy.
func (h *Hierarchy) ExportSignatureState() (SignatureState, bool) {
	if h.sig == nil {
		return SignatureState{}, false
	}
	return SignatureState{
		Levels: append([]geom.Signature(nil), h.sig.levelDig...),
		Mid:    append([][]byte(nil), h.sig.mid...),
		Top:    h.sig.top,
	}, true
}

// ImportSignatureState tracks h and verifies the rebuilt cache matches
// st byte-for-byte: every per-level digest, every midstate, and the
// top signature. sha256 midstates are deterministic, so any mismatch
// means the geometry and the recorded signature state disagree — a
// damaged or stale snapshot — and the hierarchy is left untracked with
// an error so the caller treats it as a miss rather than resuming a
// session whose signature lies about its content.
func (h *Hierarchy) ImportSignatureState(st SignatureState) error {
	h.TrackSignature()
	c := h.sig
	if len(st.Levels) != len(c.levelDig) || len(st.Mid) != len(c.mid) {
		h.sig = nil
		return fmt.Errorf("grid: signature state has %d levels, hierarchy has %d", len(st.Levels), len(c.levelDig))
	}
	if st.Top != c.top {
		h.sig = nil
		return fmt.Errorf("grid: signature state top %x does not match rebuilt %x", st.Top[:4], c.top[:4])
	}
	for l := range c.levelDig {
		if st.Levels[l] != c.levelDig[l] {
			h.sig = nil
			return fmt.Errorf("grid: signature state level %d digest mismatch", l)
		}
		if string(st.Mid[l]) != string(c.mid[l]) {
			h.sig = nil
			return fmt.Errorf("grid: signature state level %d midstate mismatch", l)
		}
	}
	return nil
}

// WithDelta returns a new hierarchy: the regrid state reached by
// applying step to h, leaving h untouched. Entry l of step is level l
// of the new state — kept (shared with h, which both states treat as
// immutable from then on) or replaced. The new state has exactly
// len(step) levels, so appending a level is a step one entry longer
// and dropping one is a step one entry shorter.
//
// The delta is validated incrementally — only replaced levels and
// their immediate neighbors are checked for disjointness, domain
// containment, and nesting — and the signature cache is carried over:
// only replaced levels are re-encoded and re-digested, and the top
// signature resumes from the midstate of the first change (on a level
// count change the length header forces a re-hash of the cached level
// encodings, with no re-encoding). An error leaves every state, cache
// included, exactly as it was — the caller can retry or discard.
func (h *Hierarchy) WithDelta(step []LevelDelta) (*Hierarchy, error) {
	if len(step) == 0 {
		return nil, fmt.Errorf("grid: delta has no levels (level 0 is mandatory)")
	}
	old := len(h.Levels)
	levels := make([]Level, len(step))
	changed := make([]bool, len(step))
	first := len(step) // first changed level
	for l, d := range step {
		if d.Keep {
			if l >= old {
				return nil, fmt.Errorf("grid: delta keeps level %d, but the previous state has %d levels", l, old)
			}
			levels[l] = h.Levels[l]
			continue
		}
		levels[l] = Level{Boxes: d.Boxes}
		changed[l] = true
		if l < first {
			first = l
		}
	}
	out := &Hierarchy{Domain: h.Domain, RefRatio: h.RefRatio, Levels: levels}
	if err := out.validateDelta(changed); err != nil {
		return nil, err
	}

	if h.sig == nil {
		out.TrackSignature()
		return out, nil
	}
	c := &sigCache{
		levelEnc: make([][]byte, len(step)),
		levelDig: make([]geom.Signature, len(step)),
		mid:      make([][]byte, len(step)),
	}
	for l := range step {
		if !changed[l] {
			c.levelEnc[l] = h.sig.levelEnc[l]
			c.levelDig[l] = h.sig.levelDig[l]
			continue
		}
		c.levelEnc[l] = levels[l].Boxes.AppendEncoding(nil)
		c.levelDig[l] = sha256.Sum256(c.levelEnc[l])
	}
	if len(step) != old {
		// The level-count header changed, invalidating every midstate:
		// re-hash all (cached) level encodings from the new header.
		c.header = out.appendHeader(nil)
		c.rehashFrom(0)
	} else {
		c.header = h.sig.header
		if first == len(step) {
			// Pure-keep step: the state, and so the signature, is
			// unchanged.
			copy(c.levelEnc, h.sig.levelEnc)
			copy(c.levelDig, h.sig.levelDig)
			copy(c.mid, h.sig.mid)
			c.top = h.sig.top
		} else {
			copy(c.mid[:first+1], h.sig.mid[:first+1])
			c.rehashFrom(first)
		}
	}
	out.sig = c
	return out, nil
}

// ApplyDelta applies step to h in place (see WithDelta for the delta
// semantics and cost). An error leaves h untouched.
func (h *Hierarchy) ApplyDelta(step []LevelDelta) error {
	out, err := h.WithDelta(step)
	if err != nil {
		return err
	}
	*h = *out
	return nil
}

// validateDelta checks exactly the structural invariants a per-level
// replacement can break: each replaced level's boxes are disjoint and
// inside the level domain, level 0 (if replaced) still covers the
// domain, and nesting holds across every boundary touched by a change
// (a replaced level against its parent, and its child against it). The
// cost is proportional to the replaced levels and their immediate
// neighbors' box counts, never the whole hierarchy.
func (h *Hierarchy) validateDelta(changed []bool) error {
	if h.RefRatio < 2 {
		return fmt.Errorf("grid: refinement ratio %d < 2", h.RefRatio)
	}
	for l, lev := range h.Levels {
		if changed[l] {
			if !lev.Boxes.Disjoint() {
				return fmt.Errorf("grid: delta level %d has overlapping boxes", l)
			}
			ld := h.LevelDomain(l)
			for _, b := range lev.Boxes {
				if !ld.ContainsBox(b) {
					return fmt.Errorf("grid: delta level %d box %v outside level domain %v", l, b, ld)
				}
			}
			if l == 0 && !lev.Boxes.CoversBox(h.Domain) {
				return fmt.Errorf("grid: delta level 0 does not cover the domain %v", h.Domain)
			}
		}
		// Nesting can break when either side of the boundary moved —
		// including a kept level whose new parent shrank.
		if l > 0 && (changed[l] || changed[l-1]) {
			parent := h.Levels[l-1].Boxes.Refine(h.RefRatio)
			for _, b := range lev.Boxes {
				if !parent.CoversBox(b) {
					return fmt.Errorf("grid: delta level %d box %v not nested in level %d", l, b, l-1)
				}
			}
		}
	}
	return nil
}
