package grid

import (
	"math/rand"
	"testing"

	"samr/internal/geom"
)

func base() geom.Box { return geom.NewBox2(0, 0, 32, 32) }

// twoLevel returns a hierarchy with one refined patch.
func twoLevel() *Hierarchy {
	h := NewHierarchy(base(), 2)
	h.Levels = append(h.Levels, Level{Boxes: geom.BoxList{geom.NewBox2(8, 8, 24, 24)}})
	return h
}

func TestNewHierarchy(t *testing.T) {
	h := NewHierarchy(base(), 2)
	if h.NumLevels() != 1 {
		t.Fatalf("NumLevels = %d", h.NumLevels())
	}
	if h.NumPoints() != 32*32 {
		t.Errorf("NumPoints = %d", h.NumPoints())
	}
	if err := h.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNumPointsAndWorkload(t *testing.T) {
	h := twoLevel()
	wantPts := int64(32*32 + 16*16)
	if h.NumPoints() != wantPts {
		t.Errorf("NumPoints = %d, want %d", h.NumPoints(), wantPts)
	}
	// Level 1 does 2 local steps per coarse step.
	wantW := int64(32*32 + 2*16*16)
	if h.Workload() != wantW {
		t.Errorf("Workload = %d, want %d", h.Workload(), wantW)
	}
}

func TestStepFactor(t *testing.T) {
	h := NewHierarchy(base(), 2)
	for l, want := range []int64{1, 2, 4, 8, 16} {
		if got := h.StepFactor(l); got != want {
			t.Errorf("StepFactor(%d) = %d, want %d", l, got, want)
		}
	}
	h4 := NewHierarchy(base(), 4)
	if h4.StepFactor(2) != 16 {
		t.Errorf("ratio-4 StepFactor(2) = %d", h4.StepFactor(2))
	}
}

func TestLevelDomain(t *testing.T) {
	h := NewHierarchy(base(), 2)
	if got := h.LevelDomain(2); got != geom.NewBox2(0, 0, 128, 128) {
		t.Errorf("LevelDomain(2) = %v", got)
	}
}

func TestFootprint(t *testing.T) {
	h := twoLevel()
	fp := h.Footprint(1)
	if len(fp) != 1 || fp[0] != geom.NewBox2(4, 4, 12, 12) {
		t.Errorf("Footprint = %v", fp)
	}
	rf := h.RefinedFootprint()
	if rf.TotalVolume() != 64 {
		t.Errorf("RefinedFootprint volume = %d", rf.TotalVolume())
	}
}

func TestValidateCatchesBadNesting(t *testing.T) {
	h := NewHierarchy(base(), 2)
	// Level-1 box escaping the refined level-0 domain (level 0 covers
	// everything, so nesting within level 0 always holds; check domain).
	h.Levels = append(h.Levels, Level{Boxes: geom.BoxList{geom.NewBox2(60, 60, 70, 70)}})
	if err := h.Validate(); err == nil {
		t.Error("Validate should reject out-of-domain level-1 box")
	}

	h2 := twoLevel()
	// Level 2 not nested inside level 1's footprint.
	h2.Levels = append(h2.Levels, Level{Boxes: geom.BoxList{geom.NewBox2(0, 0, 8, 8)}})
	if err := h2.Validate(); err == nil {
		t.Error("Validate should reject non-nested level 2")
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	h := NewHierarchy(base(), 2)
	h.Levels = append(h.Levels, Level{Boxes: geom.BoxList{
		geom.NewBox2(0, 0, 10, 10), geom.NewBox2(5, 5, 15, 15),
	}})
	if err := h.Validate(); err == nil {
		t.Error("Validate should reject overlapping boxes in a level")
	}
}

func TestCloneIndependence(t *testing.T) {
	h := twoLevel()
	c := h.Clone()
	c.Levels[1].Boxes[0] = geom.NewBox2(0, 0, 2, 2)
	if h.Levels[1].Boxes[0] == c.Levels[1].Boxes[0] {
		t.Error("Clone shares box storage with original")
	}
}

func TestOverlapPointsIdentical(t *testing.T) {
	h := twoLevel()
	ov := OverlapPoints(h, h)
	if ov[0] != 32*32 || ov[1] != 16*16 {
		t.Errorf("self overlap = %v", ov)
	}
	if TotalOverlap(h, h) != h.NumPoints() {
		t.Errorf("TotalOverlap self = %d, want %d", TotalOverlap(h, h), h.NumPoints())
	}
}

func TestOverlapPointsShifted(t *testing.T) {
	a := twoLevel()
	b := twoLevel()
	// Shift level 1 by 8 fine cells: 16x16 overlapping region shrinks to 8x16.
	b.Levels[1].Boxes[0] = b.Levels[1].Boxes[0].Shift(geom.IV2(8, 0))
	ov := OverlapPoints(a, b)
	if ov[1] != 8*16 {
		t.Errorf("shifted overlap = %d, want %d", ov[1], 8*16)
	}
}

func TestOverlapPointsLevelCountMismatch(t *testing.T) {
	a := twoLevel()
	b := NewHierarchy(base(), 2)
	ov := OverlapPoints(a, b)
	if len(ov) != 2 {
		t.Fatalf("overlap length = %d", len(ov))
	}
	if ov[0] != 32*32 || ov[1] != 0 {
		t.Errorf("mismatched-levels overlap = %v", ov)
	}
}

func TestSurfacePoints(t *testing.T) {
	h := twoLevel()
	sp := h.SurfacePoints()
	if sp[0] != 4*32 || sp[1] != 4*16 {
		t.Errorf("SurfacePoints = %v", sp)
	}
}

func TestOverlapSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		a, b := randomHierarchy(r), randomHierarchy(r)
		if TotalOverlap(a, b) != TotalOverlap(b, a) {
			t.Fatalf("overlap not symmetric")
		}
		if TotalOverlap(a, b) > a.NumPoints() || TotalOverlap(a, b) > b.NumPoints() {
			t.Fatalf("overlap exceeds hierarchy size")
		}
	}
}

// randomHierarchy builds a valid two-to-three-level hierarchy with random
// nested refinement.
func randomHierarchy(r *rand.Rand) *Hierarchy {
	h := NewHierarchy(base(), 2)
	// One random level-1 patch (in level-1 index space: domain 64x64).
	x, y := r.Intn(40), r.Intn(40)
	w, hh := 8+r.Intn(16), 8+r.Intn(16)
	b1 := geom.NewBox2(x, y, minInt(x+w, 64), minInt(y+hh, 64))
	h.Levels = append(h.Levels, Level{Boxes: geom.BoxList{b1}})
	if r.Intn(2) == 0 {
		// Nested level-2 patch inside b1 refined.
		fine := b1.Refine(2)
		b2 := geom.NewBox2(fine.Lo[0]+2, fine.Lo[1]+2, fine.Lo[0]+2+8, fine.Lo[1]+2+8).Intersect(fine)
		if !b2.Empty() {
			h.Levels = append(h.Levels, Level{Boxes: geom.BoxList{b2}})
		}
	}
	return h
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRandomHierarchiesValidate(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		if err := randomHierarchy(r).Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
