// Package grid defines the SAMR grid hierarchy: a coarse base grid
// covering the whole domain, overlaid by successively finer levels of
// rectangular patches tracking solution features. The hierarchy is the
// "A" (application) state the paper's classification model consumes, and
// the object partitioners decompose.
package grid

import (
	"crypto/sha256"
	"fmt"

	"samr/internal/geom"
)

// Level is one refinement level of a hierarchy: a set of disjoint patch
// boxes in that level's index space.
type Level struct {
	// Boxes are the level's patches, pairwise disjoint.
	Boxes geom.BoxList
}

// NumPoints returns the number of grid points on the level.
func (l Level) NumPoints() int64 { return l.Boxes.TotalVolume() }

// Clone returns a deep copy.
func (l Level) Clone() Level { return Level{Boxes: l.Boxes.Clone()} }

// Hierarchy is a snapshot of an adaptive grid hierarchy: the base domain
// plus zero or more refined levels. Level 0 always covers the whole
// domain; level l+1 lives in an index space RefRatio times finer than
// level l and must nest inside level l's footprint.
type Hierarchy struct {
	// Domain is the base (level 0) index-space box.
	Domain geom.Box
	// RefRatio is the spatial (and temporal) refinement factor between
	// consecutive levels. The paper uses factor-2 refinement in space
	// and time.
	RefRatio int
	// Levels[0] is the base level; Levels[l] for l > 0 are refinements.
	Levels []Level

	// sig is the incremental signature cache of a tracked hierarchy
	// (see delta.go); nil for the common untracked case. Tracked
	// hierarchies must be mutated only through ApplyDelta/WithDelta.
	sig *sigCache
}

// NewHierarchy returns a hierarchy whose base level covers domain.
func NewHierarchy(domain geom.Box, refRatio int) *Hierarchy {
	return &Hierarchy{
		Domain:   domain,
		RefRatio: refRatio,
		Levels:   []Level{{Boxes: geom.BoxList{domain}}},
	}
}

// NumLevels returns the number of levels currently present.
func (h *Hierarchy) NumLevels() int { return len(h.Levels) }

// NumPoints returns |H|: the total number of grid points over all
// levels. This is the denominator of the paper's data-migration penalty.
func (h *Hierarchy) NumPoints() int64 {
	var n int64
	for _, l := range h.Levels {
		n += l.NumPoints()
	}
	return n
}

// StepFactor returns the number of local time steps level l performs per
// coarse (level 0) time step under subcycled factor-RefRatio time
// refinement: RefRatio^l.
func (h *Hierarchy) StepFactor(l int) int64 {
	f := int64(1)
	for i := 0; i < l; i++ {
		f *= int64(h.RefRatio)
	}
	return f
}

// Workload returns W = sum_l |level l| * RefRatio^l: the total number of
// cell updates per coarse time step. The paper normalizes communication
// by this quantity ("100-percent communication ... all points in the
// grid being involved in communications at all local time steps").
func (h *Hierarchy) Workload() int64 {
	var w int64
	for l, lev := range h.Levels {
		w += lev.NumPoints() * h.StepFactor(l)
	}
	return w
}

// LevelDomain returns the whole-domain box refined to level l's index
// space.
func (h *Hierarchy) LevelDomain(l int) geom.Box {
	b := h.Domain
	for i := 0; i < l; i++ {
		b = b.Refine(h.RefRatio)
	}
	return b
}

// Footprint returns the boxes of level l coarsened to level 0 index
// space. The footprint of levels >= 1 identifies the refined ("Core")
// portion of the domain.
func (h *Hierarchy) Footprint(l int) geom.BoxList {
	bl := h.Levels[l].Boxes.Clone()
	for i := 0; i < l; i++ {
		bl = bl.Coarsen(h.RefRatio)
	}
	return bl
}

// RefinedFootprint returns the union footprint (level 0 index space) of
// all levels >= 1: the Core region of the Nature+Fable decomposition.
// The result may contain overlapping boxes.
func (h *Hierarchy) RefinedFootprint() geom.BoxList {
	var out geom.BoxList
	for l := 1; l < len(h.Levels); l++ {
		out = append(out, h.Footprint(l)...)
	}
	return out
}

// AppendEncoding appends the canonical encoding of the hierarchy —
// domain, refinement ratio, and every level's box list in order — to
// buf and returns the extended slice. The header and per-level
// segments are exactly what the incremental signature cache (delta.go)
// maintains piecewise, so a tracked signature is always the hash of
// these bytes.
func (h *Hierarchy) AppendEncoding(buf []byte) []byte {
	buf = h.appendHeader(buf)
	for _, l := range h.Levels {
		buf = l.Boxes.AppendEncoding(buf)
	}
	return buf
}

// Signature returns a deterministic content hash of the hierarchy's
// canonical encoding. Equal signatures mean structurally identical
// hierarchies, which is what makes the hash usable as a content-
// addressed cache key — a partitioner's output is a pure function of
// (hierarchy structure, configuration, nprocs). A tracked hierarchy
// (TrackSignature/ApplyDelta, see delta.go) answers from its
// incrementally maintained cache — the same value, without re-encoding
// or re-hashing anything.
func (h *Hierarchy) Signature() geom.Signature {
	sig, _ := h.SignatureWith(nil)
	return sig
}

// SignatureWith is Signature with caller-owned encoding scratch:
// callers hashing many hierarchies (the memoization layers key
// everything by content) pass a retained buffer's buf[:0] and get the
// grown buffer back for the next call, hashing without per-call
// allocation.
func (h *Hierarchy) SignatureWith(buf []byte) (geom.Signature, []byte) {
	if h.sig != nil {
		return h.sig.top, buf
	}
	buf = h.AppendEncoding(buf)
	return geom.Signature(sha256.Sum256(buf)), buf
}

// Clone returns a deep copy of the hierarchy. The incremental
// signature cache of a tracked hierarchy is deliberately not carried
// over: clones are routinely mutated directly (the cache would go
// stale), and a clone that needs tracking calls TrackSignature itself.
func (h *Hierarchy) Clone() *Hierarchy {
	out := &Hierarchy{Domain: h.Domain, RefRatio: h.RefRatio}
	out.Levels = make([]Level, len(h.Levels))
	for i, l := range h.Levels {
		out.Levels[i] = l.Clone()
	}
	return out
}

// Validate checks the structural invariants of a hierarchy: level 0
// covers the domain, every level's boxes are disjoint and inside the
// level domain, and every level l >= 1 nests inside level l-1's
// footprint.
func (h *Hierarchy) Validate() error {
	if len(h.Levels) == 0 {
		return fmt.Errorf("grid: hierarchy has no levels")
	}
	if h.RefRatio < 2 {
		return fmt.Errorf("grid: refinement ratio %d < 2", h.RefRatio)
	}
	if !h.Levels[0].Boxes.CoversBox(h.Domain) {
		return fmt.Errorf("grid: level 0 does not cover the domain %v", h.Domain)
	}
	for l, lev := range h.Levels {
		if !lev.Boxes.Disjoint() {
			return fmt.Errorf("grid: level %d has overlapping boxes", l)
		}
		ld := h.LevelDomain(l)
		for _, b := range lev.Boxes {
			if !ld.ContainsBox(b) {
				return fmt.Errorf("grid: level %d box %v outside level domain %v", l, b, ld)
			}
		}
		if l > 0 {
			parent := h.Levels[l-1].Boxes.Refine(h.RefRatio)
			for _, b := range lev.Boxes {
				if !parent.CoversBox(b) {
					return fmt.Errorf("grid: level %d box %v not nested in level %d", l, b, l-1)
				}
			}
		}
	}
	return nil
}

// OverlapPoints returns, per level, the number of grid points shared by
// the two hierarchies' patch sets:
//
//	overlap[l] = sum_i sum_j |G_a^{l,i} x G_b^{l,j}|
//
// Levels present in only one hierarchy contribute zero. This is the
// numerator sum of the paper's data-migration penalty (section 4.4).
func OverlapPoints(a, b *Hierarchy) []int64 {
	n := len(a.Levels)
	if len(b.Levels) > n {
		n = len(b.Levels)
	}
	out := make([]int64, n)
	for l := 0; l < n; l++ {
		if l >= len(a.Levels) || l >= len(b.Levels) {
			continue
		}
		out[l] = geom.OverlapVolume(a.Levels[l].Boxes, b.Levels[l].Boxes)
	}
	return out
}

// TotalOverlap returns the sum of OverlapPoints over all levels.
func TotalOverlap(a, b *Hierarchy) int64 {
	var t int64
	for _, v := range OverlapPoints(a, b) {
		t += v
	}
	return t
}

// SurfacePoints returns, per level, the total patch boundary surface
// (count of boundary faces) — the raw material of the communication
// pressure penalty.
func (h *Hierarchy) SurfacePoints() []int64 {
	out := make([]int64, len(h.Levels))
	for l, lev := range h.Levels {
		out[l] = lev.Boxes.TotalSurface()
	}
	return out
}

func (h *Hierarchy) String() string {
	s := fmt.Sprintf("Hierarchy{domain=%v ref=%d levels=%d points=%d",
		h.Domain, h.RefRatio, len(h.Levels), h.NumPoints())
	for l, lev := range h.Levels {
		s += fmt.Sprintf(" L%d:%d boxes/%d pts", l, len(lev.Boxes), lev.NumPoints())
	}
	return s + "}"
}
