package grid

import (
	"crypto/sha256"
	"math/rand"
	"testing"

	"samr/internal/geom"
)

// coldSignature re-derives the signature the way an untracked
// hierarchy does: full canonical encoding, one sha256 pass. The
// incremental cache must always agree with this byte-for-byte.
func coldSignature(h *Hierarchy) geom.Signature {
	fresh := &Hierarchy{Domain: h.Domain, RefRatio: h.RefRatio, Levels: h.Levels}
	return geom.Signature(sha256.Sum256(fresh.AppendEncoding(nil)))
}

// randomLevelBoxes builds a random valid patch set for level l of h:
// disjoint boxes nested in level l-1's refined footprint. It carves
// axis-aligned tiles out of one parent box, which keeps disjointness
// and nesting by construction.
func randomLevelBoxes(r *rand.Rand, h *Hierarchy, l int) geom.BoxList {
	parent := h.Levels[l-1].Boxes[r.Intn(len(h.Levels[l-1].Boxes))].Refine(h.RefRatio)
	n := 1 + r.Intn(3)
	var out geom.BoxList
	w := (parent.Hi[0] - parent.Lo[0]) / n
	if w < 1 {
		w, n = 1, 1
	}
	for i := 0; i < n; i++ {
		b := parent
		b.Lo[0] = parent.Lo[0] + i*w
		b.Hi[0] = b.Lo[0] + w
		if r.Intn(2) == 0 && b.Hi[1]-b.Lo[1] > 2 {
			b.Hi[1] -= r.Intn(b.Hi[1] - b.Lo[1] - 1)
		}
		if !b.Empty() {
			out = append(out, b)
		}
	}
	return out
}

// randomDelta builds a random valid step for h: every level kept or
// replaced, with a coin-flip level append/drop at the tail.
func randomDelta(r *rand.Rand, h *Hierarchy) []LevelDelta {
	n := len(h.Levels)
	switch {
	case n < 4 && r.Intn(3) == 0:
		n++ // append a level
	case n > 1 && r.Intn(4) == 0:
		n-- // drop the finest level
	}
	step := make([]LevelDelta, n)
	step[0] = Keep() // level 0 is static in a regrid sequence
	cand := &Hierarchy{Domain: h.Domain, RefRatio: h.RefRatio, Levels: []Level{h.Levels[0]}}
	for l := 1; l < n; l++ {
		replace := l >= len(h.Levels) || r.Intn(2) == 0
		// A kept level must still nest in its (possibly replaced)
		// parent; keeping is only safe when the parent is kept too.
		if !step[l-1].Keep {
			replace = true
		}
		if replace {
			step[l] = Replace(randomLevelBoxes(r, cand, l))
		} else {
			step[l] = Keep()
		}
		var lev Level
		if step[l].Keep {
			lev = h.Levels[l]
		} else {
			lev = Level{Boxes: step[l].Boxes}
		}
		cand.Levels = append(cand.Levels, lev)
	}
	return step
}

// TestApplyDeltaSignatureMatchesColdRehash is the incremental-signature
// property suite: over random hierarchies and random per-level delta
// sequences, the incrementally maintained Signature() and every
// LevelSignature() are byte-identical to a cold full re-hash of the
// same state, and the structures themselves stay valid.
func TestApplyDeltaSignatureMatchesColdRehash(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 60; trial++ {
		h := randomHierarchy(r)
		h.TrackSignature()
		if got, want := h.Signature(), coldSignature(h); got != want {
			t.Fatalf("trial %d: tracked base signature %s != cold %s", trial, got, want)
		}
		for step := 0; step < 12; step++ {
			d := randomDelta(r, h)
			next, err := h.WithDelta(d)
			if err != nil {
				t.Fatalf("trial %d step %d: WithDelta: %v", trial, step, err)
			}
			if err := next.Validate(); err != nil {
				t.Fatalf("trial %d step %d: delta produced invalid hierarchy: %v", trial, step, err)
			}
			if got, want := next.Signature(), coldSignature(next); got != want {
				t.Fatalf("trial %d step %d: incremental signature %s != cold re-hash %s", trial, step, got, want)
			}
			for l := range next.Levels {
				cold := geom.Signature(sha256.Sum256(next.Levels[l].Boxes.AppendEncoding(nil)))
				if got := next.LevelSignature(l); got != cold {
					t.Fatalf("trial %d step %d: level %d sub-digest %s != cold %s", trial, step, l, got, cold)
				}
			}
			// The previous state must be untouched by deriving the next.
			if got, want := h.Signature(), coldSignature(h); got != want {
				t.Fatalf("trial %d step %d: WithDelta disturbed its input: %s != %s", trial, step, got, want)
			}
			h = next
		}
	}
}

// TestApplyDeltaInPlace covers the mutating form: same state and
// signature as WithDelta, and an invalid step leaves the hierarchy
// exactly as it was.
func TestApplyDeltaInPlace(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	h := randomHierarchy(r)
	h.TrackSignature()
	d := randomDelta(r, h)
	want, err := h.WithDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if h.Signature() != want.Signature() {
		t.Fatalf("ApplyDelta signature %s != WithDelta %s", h.Signature(), want.Signature())
	}

	before := h.Signature()
	bad := []LevelDelta{Keep(), Replace(geom.BoxList{geom.NewBox2(-100, -100, -90, -90)})}
	if err := h.ApplyDelta(bad); err == nil {
		t.Fatal("out-of-domain replacement accepted")
	}
	if h.Signature() != before || coldSignature(h) != before {
		t.Fatal("failed ApplyDelta disturbed the hierarchy")
	}
}

// TestDeltaValidation walks the rejection surface: empty steps, keeps
// of nonexistent levels, overlap, nesting breaks from either side of a
// level boundary, and level-0 domain coverage.
func TestDeltaValidation(t *testing.T) {
	base := func() *Hierarchy {
		h := NewHierarchy(geom.NewBox2(0, 0, 32, 32), 2)
		h.Levels = append(h.Levels, Level{Boxes: geom.BoxList{geom.NewBox2(8, 8, 40, 40)}})
		h.Levels = append(h.Levels, Level{Boxes: geom.BoxList{geom.NewBox2(20, 20, 60, 60)}})
		h.TrackSignature()
		return h
	}
	cases := []struct {
		name string
		step []LevelDelta
	}{
		{"empty step", nil},
		{"keep beyond levels", []LevelDelta{Keep(), Keep(), Keep(), Keep()}},
		{"overlapping boxes", []LevelDelta{Keep(), Replace(geom.BoxList{
			geom.NewBox2(8, 8, 24, 24), geom.NewBox2(16, 16, 40, 40)}), Keep()}},
		{"child no longer nested", []LevelDelta{Keep(), Replace(geom.BoxList{geom.NewBox2(0, 0, 8, 8)}), Keep()}},
		{"replacement outside parent", []LevelDelta{Keep(), Keep(), Replace(geom.BoxList{geom.NewBox2(100, 100, 110, 110)})}},
		{"level 0 uncovers domain", []LevelDelta{Replace(geom.BoxList{geom.NewBox2(0, 0, 16, 16)}), Keep(), Keep()}},
	}
	for _, tc := range cases {
		h := base()
		before := h.Signature()
		if err := h.ApplyDelta(tc.step); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
		if h.Signature() != before {
			t.Errorf("%s: failed delta disturbed the hierarchy", tc.name)
		}
	}

	// And the accepting cases around the same edges: append, drop, and
	// a pure-keep step (signature unchanged).
	h := base()
	sig := h.Signature()
	if err := h.ApplyDelta([]LevelDelta{Keep(), Keep(), Keep()}); err != nil {
		t.Fatalf("pure-keep step rejected: %v", err)
	}
	if h.Signature() != sig {
		t.Fatal("pure-keep step changed the signature")
	}
	if err := h.ApplyDelta([]LevelDelta{Keep(), Keep()}); err != nil {
		t.Fatalf("drop-level step rejected: %v", err)
	}
	if len(h.Levels) != 2 || h.Signature() == sig {
		t.Fatal("drop-level step did not take effect")
	}
	if err := h.ApplyDelta([]LevelDelta{Keep(), Keep(), Replace(geom.BoxList{geom.NewBox2(20, 20, 60, 60)})}); err != nil {
		t.Fatalf("append-level step rejected: %v", err)
	}
	if h.Signature() != sig || coldSignature(h) != sig {
		t.Fatal("round trip back to the base state changed the signature")
	}
}

// TestCloneDropsTracking pins the Clone contract: a clone of a tracked
// hierarchy is untracked (it may be mutated directly), and computes
// the identical signature from scratch.
func TestCloneDropsTracking(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	h := randomHierarchy(r)
	h.TrackSignature()
	c := h.Clone()
	if c.Tracked() {
		t.Fatal("clone carried the signature cache")
	}
	if c.Signature() != h.Signature() {
		t.Fatal("clone signature differs")
	}
}

// BenchmarkSignatureDeltaVsFull measures the tentpole's grid half: the
// cost of refreshing the signature after a finest-level replacement,
// incrementally vs a cold full re-hash, on a deep synthetic hierarchy.
func BenchmarkSignatureDeltaVsFull(b *testing.B) {
	build := func() *Hierarchy {
		h := NewHierarchy(geom.NewBox2(0, 0, 256, 256), 2)
		var l1 geom.BoxList
		for i := 0; i < 16; i++ {
			for j := 0; j < 16; j++ {
				l1 = append(l1, geom.NewBox2(i*32, j*32, i*32+32, j*32+32))
			}
		}
		h.Levels = append(h.Levels, Level{Boxes: l1})
		h.Levels = append(h.Levels, Level{Boxes: geom.BoxList{geom.NewBox2(100, 100, 400, 400)}})
		return h
	}
	finest := func(i int) geom.BoxList {
		x := (i % 64) * 4
		return geom.BoxList{geom.NewBox2(100+x, 100, 400+x, 400)}
	}
	b.Run("delta", func(b *testing.B) {
		h := build()
		h.TrackSignature()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := h.ApplyDelta([]LevelDelta{Keep(), Keep(), Replace(finest(i))}); err != nil {
				b.Fatal(err)
			}
			_ = h.Signature()
		}
	})
	// The cold path a full repost pays per step: full structural
	// validation plus a full re-encode and re-hash.
	b.Run("full-validate-rehash", func(b *testing.B) {
		h := build()
		var buf []byte
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Levels[2] = Level{Boxes: finest(i)}
			if err := h.Validate(); err != nil {
				b.Fatal(err)
			}
			_, buf = h.SignatureWith(buf[:0])
		}
	})
}

// TestSignatureStateExportImport pins the resume handshake the session
// snapshot rides on: exported state re-imports onto a bare-geometry
// rebuild (nil error, tracked, identical signature), the imported
// tracking keeps maintaining signatures incrementally, and any
// disagreement between state and geometry — wrong hierarchy, damaged
// midstate, wrong top — is rejected, leaving the hierarchy untracked.
func TestSignatureStateExportImport(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		h := randomHierarchy(r)
		h.TrackSignature()
		// A few deltas first, so the exported midstates are the
		// incrementally maintained ones, not a fresh full track.
		for s := 0; s < 3; s++ {
			next, err := h.WithDelta(randomDelta(r, h))
			if err != nil {
				t.Fatalf("trial %d: WithDelta: %v", trial, err)
			}
			h = next
		}
		st, ok := h.ExportSignatureState()
		if !ok {
			t.Fatalf("trial %d: tracked hierarchy exported nothing", trial)
		}
		// Clone drops tracking: exactly what a resuming daemon holds
		// after decoding the snapshot's bare geometry.
		fresh := h.Clone()
		if fresh.Tracked() {
			t.Fatal("clone carried tracking")
		}
		if err := fresh.ImportSignatureState(st); err != nil {
			t.Fatalf("trial %d: import onto identical geometry: %v", trial, err)
		}
		if !fresh.Tracked() || fresh.Signature() != h.Signature() {
			t.Fatalf("trial %d: import left a wrong state", trial)
		}
		// The imported cache keeps working incrementally and agrees
		// with a cold re-hash.
		d := randomDelta(r, fresh)
		a, err := fresh.WithDelta(d)
		if err != nil {
			t.Fatalf("trial %d: post-import WithDelta: %v", trial, err)
		}
		b, err := h.WithDelta(d)
		if err != nil {
			t.Fatal(err)
		}
		if a.Signature() != b.Signature() || a.Signature() != coldSignature(a) {
			t.Fatalf("trial %d: post-import signatures diverged", trial)
		}
	}

	// Untracked hierarchies export nothing.
	plain := NewHierarchy(geom.NewBox2(0, 0, 16, 16), 2)
	if _, ok := plain.ExportSignatureState(); ok {
		t.Fatal("untracked hierarchy exported a signature state")
	}

	// State from one hierarchy against another geometry: rejected, and
	// the rejected hierarchy is left untracked.
	r2 := rand.New(rand.NewSource(12))
	h1 := randomHierarchy(r2)
	h1.TrackSignature()
	st1, _ := h1.ExportSignatureState()
	var h2 *Hierarchy
	for h2 == nil || h2.Signature() == h1.Signature() {
		h2 = randomHierarchy(r2)
	}
	if err := h2.ImportSignatureState(st1); err == nil {
		t.Fatal("foreign signature state imported cleanly")
	}
	if h2.Tracked() {
		t.Fatal("failed import left the hierarchy tracked")
	}

	// Single-field damage: a flipped midstate byte and a flipped top
	// byte are both rejected even though the geometry matches.
	h3 := randomHierarchy(r2)
	h3.TrackSignature()
	st3, _ := h3.ExportSignatureState()
	if len(st3.Mid) > 0 && len(st3.Mid[len(st3.Mid)-1]) > 0 {
		damaged := st3
		damaged.Mid = append([][]byte(nil), st3.Mid...)
		last := append([]byte(nil), damaged.Mid[len(damaged.Mid)-1]...)
		last[0] ^= 1
		damaged.Mid[len(damaged.Mid)-1] = last
		if err := h3.Clone().ImportSignatureState(damaged); err == nil {
			t.Fatal("damaged midstate imported cleanly")
		}
	}
	damaged := st3
	damaged.Top[0] ^= 1
	if err := h3.Clone().ImportSignatureState(damaged); err == nil {
		t.Fatal("damaged top signature imported cleanly")
	}
	// Level-count mismatch is caught before any digest comparison.
	short := st3
	short.Levels = short.Levels[:len(short.Levels)-1]
	short.Mid = short.Mid[:len(short.Mid)-1]
	if err := h3.Clone().ImportSignatureState(short); err == nil {
		t.Fatal("truncated signature state imported cleanly")
	}
}
