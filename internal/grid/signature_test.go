package grid

import (
	"math/rand"
	"testing"

	"samr/internal/geom"
)

// randomHierarchy (from hierarchy_test.go) supplies valid nested
// hierarchies; the signature only needs structure, validity comes free.

func TestHierarchySignatureCloneInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		h := randomHierarchy(r)
		sig := h.Signature()
		if sig != h.Signature() {
			t.Fatal("signature not deterministic")
		}
		if got := h.Clone().Signature(); got != sig {
			t.Fatalf("trial %d: Clone() signature %s != %s", trial, got, sig)
		}
	}
}

func TestHierarchySignatureMutationSensitivity(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	mutations := []struct {
		name string
		f    func(h *Hierarchy, r *rand.Rand)
	}{
		{"box coordinate", func(h *Hierarchy, r *rand.Rand) {
			l := r.Intn(len(h.Levels))
			for len(h.Levels[l].Boxes) == 0 {
				l = r.Intn(len(h.Levels))
			}
			b := r.Intn(len(h.Levels[l].Boxes))
			h.Levels[l].Boxes[b].Hi[r.Intn(2)]++
		}},
		{"drop box", func(h *Hierarchy, r *rand.Rand) {
			l := r.Intn(len(h.Levels))
			for len(h.Levels[l].Boxes) == 0 {
				l = r.Intn(len(h.Levels))
			}
			h.Levels[l].Boxes = h.Levels[l].Boxes[:len(h.Levels[l].Boxes)-1]
		}},
		{"add box", func(h *Hierarchy, r *rand.Rand) {
			l := r.Intn(len(h.Levels))
			h.Levels[l].Boxes = append(h.Levels[l].Boxes, geom.NewBox2(0, 0, 1, 1))
		}},
		{"add level", func(h *Hierarchy, r *rand.Rand) {
			h.Levels = append(h.Levels, Level{})
		}},
		{"drop level", func(h *Hierarchy, r *rand.Rand) {
			h.Levels = h.Levels[:len(h.Levels)-1]
		}},
		{"refine ratio", func(h *Hierarchy, r *rand.Rand) {
			h.RefRatio = 4
		}},
		{"domain", func(h *Hierarchy, r *rand.Rand) {
			h.Domain.Hi[0]++
		}},
	}
	for trial := 0; trial < 40; trial++ {
		for _, m := range mutations {
			h := randomHierarchy(r)
			sig := h.Signature()
			mut := h.Clone()
			m.f(mut, r)
			if mut.Signature() == sig {
				t.Fatalf("trial %d: mutation %q kept signature %s (h=%v)", trial, m.name, sig, h)
			}
		}
	}
}

func TestHierarchySignatureLevelBoundariesMatter(t *testing.T) {
	// Moving a box between adjacent levels must change the signature even
	// though the flat box sequence is identical (the length headers in
	// the encoding prevent aliasing).
	a := NewHierarchy(geom.NewBox2(0, 0, 8, 8), 2)
	a.Levels = append(a.Levels, Level{Boxes: geom.BoxList{geom.NewBox2(0, 0, 4, 4)}}, Level{})
	b := a.Clone()
	b.Levels[1].Boxes = nil
	b.Levels[2].Boxes = geom.BoxList{geom.NewBox2(0, 0, 4, 4)}
	if a.Signature() == b.Signature() {
		t.Error("level placement should change the signature")
	}
}
