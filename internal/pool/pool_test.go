package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 500
		var hits [n]int32
		ForEach(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachNestedCoversAllIndices(t *testing.T) {
	// Nested pools must stay correct (and deadlock-free) even when the
	// outer level exhausts the process-wide helper budget and the inner
	// calls degrade to inline execution.
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	const outer, inner = 8, 50
	var hits [outer * inner]int32
	ForEach(Workers(), outer, func(i int) {
		ForEach(Workers(), inner, func(j int) {
			atomic.AddInt32(&hits[i*inner+j], 1)
		})
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("nested index %d ran %d times", i, h)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	ForEach(4, -3, func(int) { ran = true })
	if ran {
		t.Error("ForEach ran work for n <= 0")
	}
}

func TestRun(t *testing.T) {
	var total atomic.Int64
	Run(
		func() { total.Add(1) },
		func() { total.Add(10) },
		func() { total.Add(100) },
	)
	if total.Load() != 111 {
		t.Errorf("Run total = %d", total.Load())
	}
}
