package pool

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 500
		var hits [n]int32
		ForEach(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachNestedCoversAllIndices(t *testing.T) {
	// Nested pools must stay correct (and deadlock-free) even when the
	// outer level exhausts the process-wide helper budget and the inner
	// calls degrade to inline execution.
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	const outer, inner = 8, 50
	var hits [outer * inner]int32
	ForEach(Workers(), outer, func(i int) {
		ForEach(Workers(), inner, func(j int) {
			atomic.AddInt32(&hits[i*inner+j], 1)
		})
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("nested index %d ran %d times", i, h)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	ForEach(4, -3, func(int) { ran = true })
	if ran {
		t.Error("ForEach ran work for n <= 0")
	}
}

func TestRun(t *testing.T) {
	var total atomic.Int64
	Run(
		func() { total.Add(1) },
		func() { total.Add(10) },
		func() { total.Add(100) },
	)
	if total.Load() != 111 {
		t.Errorf("Run total = %d", total.Load())
	}
}

func TestMapCtxCoversAllIndices(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 500
		var hits [n]int32
		err := MapCtx(context.Background(), workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestMapCtxStopsDispatchOnCancel(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	ctx, cancel := context.WithCancel(context.Background())
	const n = 10000
	var ran atomic.Int64
	err := MapCtx(ctx, 4, n, func(i int) error {
		if ran.Add(1) == 8 {
			cancel()
		}
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Dispatch must stop well short of n: every worker stops within one
	// dispatch of observing the cancellation.
	if got := ran.Load(); got > 32 {
		t.Errorf("ran %d of %d indices after cancellation", got, n)
	}
}

func TestMapCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := MapCtx(ctx, 4, 100, func(i int) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("MapCtx dispatched work on a dead context")
	}
}

func TestMapCtxSequentialErrorShortCircuits(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	err := MapCtx(context.Background(), 1, 10, func(i int) error {
		ran = append(ran, i)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(ran) != 4 {
		t.Errorf("sequential path ran %v, want exactly [0 1 2 3]", ran)
	}
}

func TestMapCtxParallelReportsEarliestError(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	errA, errB := errors.New("a"), errors.New("b")
	// Indices 2 and 5 both fail; the reported error must be index 2's
	// whenever both ran, and one of the two regardless.
	err := MapCtx(context.Background(), 4, 6, func(i int) error {
		switch i {
		case 2:
			return errA
		case 5:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) && !errors.Is(err, errB) {
		t.Fatalf("err = %v, want a failing index's error", err)
	}
}

func TestRunCtx(t *testing.T) {
	var total atomic.Int64
	err := RunCtx(context.Background(),
		func() error { total.Add(1); return nil },
		func() error { total.Add(10); return nil },
		func() error { total.Add(100); return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != 111 {
		t.Errorf("RunCtx total = %d", total.Load())
	}
}

func TestRunCtxPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := RunCtx(context.Background(),
		func() error { return nil },
		func() error { return boom },
	)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestMapCtxEmpty(t *testing.T) {
	if err := MapCtx(context.Background(), 4, 0, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
