package pool

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"samr/internal/fault"
)

func TestForEachCoversAllIndices(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 500
		var hits [n]int32
		ForEach(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachNestedCoversAllIndices(t *testing.T) {
	// Nested pools must stay correct (and deadlock-free) even when the
	// outer level exhausts the process-wide helper budget and the inner
	// calls degrade to inline execution.
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	const outer, inner = 8, 50
	var hits [outer * inner]int32
	ForEach(Workers(), outer, func(i int) {
		ForEach(Workers(), inner, func(j int) {
			atomic.AddInt32(&hits[i*inner+j], 1)
		})
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("nested index %d ran %d times", i, h)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	ForEach(4, -3, func(int) { ran = true })
	if ran {
		t.Error("ForEach ran work for n <= 0")
	}
}

func TestRun(t *testing.T) {
	var total atomic.Int64
	Run(
		func() { total.Add(1) },
		func() { total.Add(10) },
		func() { total.Add(100) },
	)
	if total.Load() != 111 {
		t.Errorf("Run total = %d", total.Load())
	}
}

func TestMapCtxCoversAllIndices(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 500
		var hits [n]int32
		err := MapCtx(context.Background(), workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestMapCtxStopsDispatchOnCancel(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	ctx, cancel := context.WithCancel(context.Background())
	const n = 10000
	var ran atomic.Int64
	err := MapCtx(ctx, 4, n, func(i int) error {
		if ran.Add(1) == 8 {
			cancel()
		}
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Dispatch must stop well short of n: every worker stops within one
	// dispatch of observing the cancellation.
	if got := ran.Load(); got > 32 {
		t.Errorf("ran %d of %d indices after cancellation", got, n)
	}
}

func TestMapCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := MapCtx(ctx, 4, 100, func(i int) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("MapCtx dispatched work on a dead context")
	}
}

func TestMapCtxSequentialErrorShortCircuits(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	err := MapCtx(context.Background(), 1, 10, func(i int) error {
		ran = append(ran, i)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(ran) != 4 {
		t.Errorf("sequential path ran %v, want exactly [0 1 2 3]", ran)
	}
}

func TestMapCtxParallelReportsEarliestError(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	errA, errB := errors.New("a"), errors.New("b")
	// Indices 2 and 5 both fail; the reported error must be index 2's
	// whenever both ran, and one of the two regardless.
	err := MapCtx(context.Background(), 4, 6, func(i int) error {
		switch i {
		case 2:
			return errA
		case 5:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) && !errors.Is(err, errB) {
		t.Fatalf("err = %v, want a failing index's error", err)
	}
}

func TestRunCtx(t *testing.T) {
	var total atomic.Int64
	err := RunCtx(context.Background(),
		func() error { total.Add(1); return nil },
		func() error { total.Add(10); return nil },
		func() error { total.Add(100); return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != 111 {
		t.Errorf("RunCtx total = %d", total.Load())
	}
}

func TestRunCtxPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := RunCtx(context.Background(),
		func() error { return nil },
		func() error { return boom },
	)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestMapCtxEmpty(t *testing.T) {
	if err := MapCtx(context.Background(), 4, 0, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestClassOfDefaultsToInteractive(t *testing.T) {
	if got := ClassOf(context.Background()); got != Interactive {
		t.Fatalf("ClassOf(background) = %v, want Interactive", got)
	}
	ctx := WithClass(context.Background(), Batch)
	if got := ClassOf(ctx); got != Batch {
		t.Fatalf("ClassOf(WithClass(Batch)) = %v, want Batch", got)
	}
	// The class is inherited by derived contexts (how the simulator's
	// nested fan-outs pick up the request's class).
	ctx2, cancel := context.WithCancel(ctx)
	defer cancel()
	if got := ClassOf(ctx2); got != Batch {
		t.Fatalf("derived ctx lost the class: %v", got)
	}
}

// TestBatchCoverageIdenticalToForEach pins the satellite contract: a
// Batch-class MapCtx covers exactly the indices ForEach covers — every
// index once — on success, at every worker width, even while
// interactive fan-outs run concurrently and steal the helper budget.
func TestBatchCoverageIdenticalToForEach(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	batchCtx := WithClass(context.Background(), Batch)
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 500
		var hits [n]int32
		err := MapCtx(batchCtx, workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}

	// Same coverage with a concurrent interactive stream competing for
	// the helper budget.
	stopInteractive := make(chan struct{})
	interactiveDone := make(chan struct{})
	go func() {
		defer close(interactiveDone)
		for {
			select {
			case <-stopInteractive:
				return
			default:
			}
			MapCtx(context.Background(), Workers(), 32, func(int) error { return nil }) //nolint:errcheck
		}
	}()
	const n = 2000
	var hits [n]int32
	if err := MapCtx(batchCtx, Workers(), n, func(i int) error {
		atomic.AddInt32(&hits[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	close(stopInteractive)
	<-interactiveDone
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("contended batch: index %d ran %d times", i, h)
		}
	}
}

// TestBatchStarvationFreedom is the priority-mode property test: under
// a continuous stream of interactive fan-outs that permanently wants
// the whole helper budget, a Batch-class MapCtx must still complete
// (the calling goroutine never yields, so batch throughput degrades to
// at worst sequential — never to zero).
func TestBatchStarvationFreedom(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	stop := make(chan struct{})
	var interactiveRounds atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				MapCtx(context.Background(), Workers(), 64, func(int) error { //nolint:errcheck
					runtime.Gosched()
					return nil
				})
				interactiveRounds.Add(1)
			}
		}()
	}

	const n = 400
	var covered atomic.Int64
	done := make(chan error, 1)
	go func() {
		done <- MapCtx(WithClass(context.Background(), Batch), Workers(), n, func(i int) error {
			covered.Add(1)
			runtime.Gosched()
			return nil
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("batch fan-out failed under interactive load: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("batch fan-out starved: %d/%d indices ran under interactive load", covered.Load(), n)
	}
	close(stop)
	wg.Wait()
	if covered.Load() != n {
		t.Fatalf("batch covered %d/%d indices", covered.Load(), n)
	}
	if interactiveRounds.Load() == 0 {
		t.Log("warning: interactive stream completed no rounds (contention check weak on this machine)")
	}
}

// TestBatchHelpersYieldToInteractive observes the mechanism itself:
// while an interactive fan-out is dispatching, a long-running batch
// fan-out's helper goroutines retire (its observed concurrency drops
// toward 1), and after the interactive work drains the batch caller
// re-admits helpers (concurrency recovers).
func TestBatchHelpersYieldToInteractive(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	var batchConcurrent, batchMax atomic.Int64
	observe := func() {
		cur := batchConcurrent.Add(1)
		for {
			max := batchMax.Load()
			if cur <= max || batchMax.CompareAndSwap(max, cur) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		batchConcurrent.Add(-1)
	}

	// Phase 1: batch alone — helpers admitted, concurrency exceeds 1.
	if err := MapCtx(WithClass(context.Background(), Batch), Workers(), 200, func(int) error {
		observe()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if batchMax.Load() < 2 {
		t.Skipf("no helper parallelism observed even uncontended (budget exhausted by other tests); max=%d", batchMax.Load())
	}

	// Phase 2: batch with interactive permanently active — once the
	// pre-existing helpers retire, batch concurrency must fall to the
	// caller alone.
	interactiveCtxDone := make(chan struct{})
	interactiveUp := make(chan struct{})
	go func() {
		var once sync.Once
		MapCtx(context.Background(), 2, 1<<30, func(int) error { //nolint:errcheck
			once.Do(func() { close(interactiveUp) })
			select {
			case <-interactiveCtxDone:
				return context.Canceled
			default:
			}
			time.Sleep(100 * time.Microsecond)
			return nil
		})
	}()
	<-interactiveUp

	var lone atomic.Int64 // batch indices that ran with concurrency 1
	var during atomic.Int64
	if err := MapCtx(WithClass(context.Background(), Batch), Workers(), 300, func(int) error {
		if batchConcurrent.Add(1) == 1 {
			lone.Add(1)
		}
		during.Add(1)
		time.Sleep(100 * time.Microsecond)
		batchConcurrent.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	close(interactiveCtxDone)
	if lone.Load() == 0 {
		t.Errorf("batch never ran caller-alone while interactive was active (%d indices)", during.Load())
	}
}

// TestInjectedDispatchDegradesToSerial pins the pool.dispatch fault
// point: an injected dispatch error degrades the fan-out to a serial
// run — identical coverage and output slots, exact earliest-error
// semantics — because losing parallelism must only ever cost time.
func TestInjectedDispatchDegradesToSerial(t *testing.T) {
	in, err := fault.New(2, fault.Plan{Point: FaultDispatch, Mode: fault.Error})
	if err != nil {
		t.Fatal(err)
	}
	SetFaults(in)
	defer SetFaults(nil)

	const n = 64
	out := make([]int, n)
	var maxConcurrent, cur atomic.Int64
	if err := MapCtx(context.Background(), 8, n, func(i int) error {
		if c := cur.Add(1); c > maxConcurrent.Load() {
			maxConcurrent.Store(c)
		}
		defer cur.Add(-1)
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatalf("degraded MapCtx = %v, want nil", err)
	}
	for i := range out {
		if out[i] != i*i {
			t.Fatalf("index %d not covered under serial degrade", i)
		}
	}
	if got := maxConcurrent.Load(); got != 1 {
		t.Fatalf("observed concurrency %d under injected dispatch failure, want 1 (serial)", got)
	}

	// Earliest-error semantics survive the degrade: the serial run
	// stops at the first failing index, exactly like a healthy pool
	// reports the earliest error.
	boom := errors.New("boom")
	ran := 0
	err = MapCtx(context.Background(), 8, n, func(i int) error {
		ran++
		if i == 5 {
			return boom
		}
		return nil
	})
	if err != boom || ran != 6 {
		t.Fatalf("degraded error run = (%v, %d calls), want (boom, 6)", err, ran)
	}
	if st := in.Stats()[FaultDispatch]; st.Injected == 0 {
		t.Fatal("dispatch fault never fired")
	}
}

// TestInjectedDispatchLatencyOnly: a latency-only plan stalls the
// fan-out start but leaves parallel dispatch intact.
func TestInjectedDispatchLatencyOnly(t *testing.T) {
	in, err := fault.New(3, fault.Plan{Point: FaultDispatch, Mode: fault.Latency, Delay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	SetFaults(in)
	defer SetFaults(nil)

	const n = 16
	var covered atomic.Int64
	barrier := make(chan struct{})
	var once sync.Once
	if err := MapCtx(context.Background(), 4, n, func(i int) error {
		// Prove real parallelism survives: the first four calls must
		// be concurrent for the barrier to open. (A serial degrade
		// would deadlock here, so a generous timeout guards it.)
		once.Do(func() {
			select {
			case <-barrier:
			case <-time.After(5 * time.Second):
			}
		})
		if covered.Add(1) == 4 {
			close(barrier)
		}
		return nil
	}); err != nil {
		t.Fatalf("latency-stalled MapCtx = %v, want nil", err)
	}
	if covered.Load() != n {
		t.Fatalf("covered %d of %d indices", covered.Load(), n)
	}
}
