// Package pool provides the bounded worker pools the simulation and
// experiment pipelines fan out on. The helpers are deliberately tiny:
// callers express parallelism as "run f(i) for i in [0, n)" and write
// results into pre-sized slices by index, which keeps parallel output
// bit-identical to the sequential order regardless of scheduling.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"samr/internal/fault"
)

// Workers returns the default pool width: the process's GOMAXPROCS.
// On a single-core runner this is 1 and every ForEach degrades to a
// plain loop with zero goroutine overhead.
func Workers() int { return runtime.GOMAXPROCS(0) }

// FaultDispatch is the pool's chaos injection point, consulted once
// per MapCtx/RunCtx fan-out. Dispatch faults are performance
// perturbations by design — they never fail a request: a latency
// decision stalls the fan-out before dispatch, and an error decision
// degrades it to serial execution on the calling goroutine (a pool
// whose helpers are "lost"), exercising every code path above under
// pathological scheduling while output stays bit-identical.
const FaultDispatch = "pool.dispatch"

// dispatchFaults is the armed injector. Pools are package-level, so
// unlike the tier's per-instance injectors this is process-wide state.
var dispatchFaults atomic.Pointer[fault.Injector]

// SetFaults arms (or, with nil, disarms) the pool's injection points —
// tests and the -faults flag only; the last caller wins process-wide.
func SetFaults(in *fault.Injector) { dispatchFaults.Store(in) }

// active counts helper goroutines currently running across every pool
// in the process; it caps total pool width at GOMAXPROCS even when
// pools nest (an experiment fanning out per-partitioner runs whose
// inner SimulateTrace fans out per-snapshot work).
var active atomic.Int64

// Class is a fan-out's dispatch priority. It is carried on the context
// (WithClass), so a single annotation at the top of a request threads
// through every nested MapCtx/RunCtx below it — the samrd handlers tag
// /v1/select and /v1/partition Interactive and /v1/simulate Batch, and
// the simulator's internal fan-outs inherit the tag without signature
// changes.
//
// The priority is a helper-allocation policy, not a scheduler: the
// calling goroutine of every fan-out always participates regardless of
// class, so Batch work is never starved — it merely loses its extra
// helper goroutines to Interactive work while any is dispatching, and
// wins them back (the caller re-admits helpers between indices) once
// the interactive burst drains.
type Class int32

const (
	// Interactive is the default class: full helper admission.
	Interactive Class = iota
	// Batch yields helper goroutines to in-flight Interactive fan-outs.
	Batch
)

// classKey carries a Class on a context.
type classKey struct{}

// WithClass returns a context carrying the dispatch class for every
// pool fan-out below it.
func WithClass(ctx context.Context, c Class) context.Context {
	return context.WithValue(ctx, classKey{}, c)
}

// ClassOf returns the dispatch class carried by ctx (Interactive when
// none is set).
func ClassOf(ctx context.Context) Class {
	if c, ok := ctx.Value(classKey{}).(Class); ok {
		return c
	}
	return Interactive
}

// interactiveActive counts Interactive-class MapCtx fan-outs currently
// dispatching in the process; Batch-class helpers poll it and retire so
// the freed budget flows to the interactive work.
var interactiveActive atomic.Int64

// ForEach runs f(i) for every i in [0, n) on at most workers
// goroutines, distributing indices dynamically (atomic counter) so
// uneven step costs do not serialize on a static slicing. It returns
// when every call has finished.
//
// The calling goroutine always participates, and helpers beyond it are
// admitted only while the process-wide running-helper count stays under
// GOMAXPROCS-1. Nested pools therefore degrade gracefully: when the
// outer level already saturates the cores, inner ForEach calls run
// inline in their caller instead of oversubscribing the scheduler —
// and the never-blocking admission makes nesting deadlock-free.
//
// f must not panic; invocations are independent and must only write
// state owned by index i.
func ForEach(workers, n int, f func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			f(i)
		}
	}
	var wg sync.WaitGroup
	budget := int64(runtime.GOMAXPROCS(0) - 1)
	for w := 0; w < workers-1; w++ {
		if active.Add(1) > budget {
			active.Add(-1)
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer active.Add(-1)
			work()
		}()
	}
	work()
	wg.Wait()
}

// Run executes the given functions concurrently (each on its own
// goroutine, bounded by Workers) and returns when all are done. It is
// ForEach over a heterogeneous task list.
func Run(fns ...func()) {
	ForEach(Workers(), len(fns), func(i int) { fns[i]() })
}

// MapCtx is ForEach with cancellation and error propagation: it runs
// f(i) for every i in [0, n) on at most workers goroutines until every
// call has finished, a call returns a non-nil error, or ctx is
// cancelled. Once an error or cancellation is observed, no further
// indices are dispatched and the in-flight calls are drained before
// MapCtx returns — f is expected to watch ctx itself for prompt
// mid-call abort.
//
// The fan-out's dispatch class comes from the context (see Class /
// WithClass): a Batch-class fan-out's helper goroutines retire between
// indices while any Interactive-class fan-out is dispatching, and the
// Batch caller re-admits helpers once the interactive work drains. The
// calling goroutine itself never yields, so a Batch fan-out always
// makes progress (starvation freedom) — the class only shifts where
// the helper budget goes.
//
// On success (every index ran, all returned nil) the coverage guarantee
// is exactly ForEach's regardless of class, so index-slotted output
// stays bit-identical to a sequential run. On failure the return value
// is the error of the earliest index that reported one, or ctx.Err()
// when cancellation cut the dispatch short before an f failed.
func MapCtx(ctx context.Context, workers, n int, f func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if d := dispatchFaults.Load().Hit(FaultDispatch); d.Err != nil || d.Delay > 0 {
		d.Sleep()
		if d.Err != nil {
			workers = 1 // injected dispatch failure: degrade to serial
		}
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}

	class := ClassOf(ctx)
	if class == Interactive {
		interactiveActive.Add(1)
		defer interactiveActive.Add(-1)
	}

	var (
		next    atomic.Int64
		stop    atomic.Bool
		helpers atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
	)
	firstIdx := -1
	var firstErr error
	record := func(i int, err error) {
		mu.Lock()
		if firstIdx < 0 || i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	done := ctx.Done()
	budget := int64(runtime.GOMAXPROCS(0) - 1)
	var work func(helper bool)
	// trySpawn admits one more helper if the fan-out still wants one,
	// the process-wide budget has room, and — for Batch work — no
	// interactive fan-out is dispatching. The caller retries it between
	// indices, so budget yielded by retiring helpers (or freed by other
	// fan-outs finishing) is picked up without any blocking.
	trySpawn := func() {
		if helpers.Load() >= int64(workers-1) {
			return
		}
		if class == Batch && interactiveActive.Load() > 0 {
			return
		}
		if active.Add(1) > budget {
			active.Add(-1)
			return
		}
		helpers.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer active.Add(-1)
			defer helpers.Add(-1)
			work(true)
		}()
	}
	work = func(helper bool) {
		for !stop.Load() {
			select {
			case <-done:
				stop.Store(true)
				return
			default:
			}
			if helper && class == Batch && interactiveActive.Load() > 0 {
				return // yield the budget to the interactive fan-outs
			}
			if !helper {
				trySpawn()
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if err := f(i); err != nil {
				record(i, err)
				return
			}
		}
	}
	for w := 0; w < workers-1; w++ {
		trySpawn()
	}
	work(false)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if firstIdx >= 0 {
		return firstErr
	}
	if int(next.Load()) < n {
		// Cancellation stopped the dispatch before every index ran.
		return ctx.Err()
	}
	return nil
}

// RunCtx executes the given functions concurrently with the same
// cancellation contract as MapCtx: it stops dispatching once ctx is
// cancelled or a function fails, drains what is running, and returns
// the earliest error.
func RunCtx(ctx context.Context, fns ...func() error) error {
	return MapCtx(ctx, Workers(), len(fns), func(i int) error { return fns[i]() })
}
