// Package pool provides the bounded worker pools the simulation and
// experiment pipelines fan out on. The helpers are deliberately tiny:
// callers express parallelism as "run f(i) for i in [0, n)" and write
// results into pre-sized slices by index, which keeps parallel output
// bit-identical to the sequential order regardless of scheduling.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the default pool width: the process's GOMAXPROCS.
// On a single-core runner this is 1 and every ForEach degrades to a
// plain loop with zero goroutine overhead.
func Workers() int { return runtime.GOMAXPROCS(0) }

// active counts helper goroutines currently running across every pool
// in the process; it caps total pool width at GOMAXPROCS even when
// pools nest (an experiment fanning out per-partitioner runs whose
// inner SimulateTrace fans out per-snapshot work).
var active atomic.Int64

// ForEach runs f(i) for every i in [0, n) on at most workers
// goroutines, distributing indices dynamically (atomic counter) so
// uneven step costs do not serialize on a static slicing. It returns
// when every call has finished.
//
// The calling goroutine always participates, and helpers beyond it are
// admitted only while the process-wide running-helper count stays under
// GOMAXPROCS-1. Nested pools therefore degrade gracefully: when the
// outer level already saturates the cores, inner ForEach calls run
// inline in their caller instead of oversubscribing the scheduler —
// and the never-blocking admission makes nesting deadlock-free.
//
// f must not panic; invocations are independent and must only write
// state owned by index i.
func ForEach(workers, n int, f func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			f(i)
		}
	}
	var wg sync.WaitGroup
	budget := int64(runtime.GOMAXPROCS(0) - 1)
	for w := 0; w < workers-1; w++ {
		if active.Add(1) > budget {
			active.Add(-1)
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer active.Add(-1)
			work()
		}()
	}
	work()
	wg.Wait()
}

// Run executes the given functions concurrently (each on its own
// goroutine, bounded by Workers) and returns when all are done. It is
// ForEach over a heterogeneous task list.
func Run(fns ...func()) {
	ForEach(Workers(), len(fns), func(i int) { fns[i]() })
}

// MapCtx is ForEach with cancellation and error propagation: it runs
// f(i) for every i in [0, n) on at most workers goroutines until every
// call has finished, a call returns a non-nil error, or ctx is
// cancelled. Once an error or cancellation is observed, no further
// indices are dispatched and the in-flight calls are drained before
// MapCtx returns — f is expected to watch ctx itself for prompt
// mid-call abort.
//
// On success (every index ran, all returned nil) the coverage guarantee
// is exactly ForEach's, so index-slotted output stays bit-identical to
// a sequential run. On failure the return value is the error of the
// earliest index that reported one, or ctx.Err() when cancellation cut
// the dispatch short before an f failed.
func MapCtx(ctx context.Context, workers, n int, f func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next atomic.Int64
		stop atomic.Bool
		mu   sync.Mutex
	)
	firstIdx := -1
	var firstErr error
	record := func(i int, err error) {
		mu.Lock()
		if firstIdx < 0 || i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	done := ctx.Done()
	work := func() {
		for !stop.Load() {
			select {
			case <-done:
				stop.Store(true)
				return
			default:
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if err := f(i); err != nil {
				record(i, err)
				return
			}
		}
	}
	var wg sync.WaitGroup
	budget := int64(runtime.GOMAXPROCS(0) - 1)
	for w := 0; w < workers-1; w++ {
		if active.Add(1) > budget {
			active.Add(-1)
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer active.Add(-1)
			work()
		}()
	}
	work()
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if firstIdx >= 0 {
		return firstErr
	}
	if int(next.Load()) < n {
		// Cancellation stopped the dispatch before every index ran.
		return ctx.Err()
	}
	return nil
}

// RunCtx executes the given functions concurrently with the same
// cancellation contract as MapCtx: it stops dispatching once ctx is
// cancelled or a function fails, drains what is running, and returns
// the earliest error.
func RunCtx(ctx context.Context, fns ...func() error) error {
	return MapCtx(ctx, Workers(), len(fns), func(i int) error { return fns[i]() })
}
