package admit

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"samr/internal/fault"
)

func newTestController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	return New(cfg)
}

// mustAdmit admits with a background context and fails the test on any
// refusal.
func mustAdmit(t *testing.T, c *Controller, tenant string, pri Priority) func() {
	t.Helper()
	release, err := c.Admit(context.Background(), tenant, pri, 0)
	if err != nil {
		t.Fatalf("Admit(%q, %v) = %v, want admitted", tenant, pri, err)
	}
	return release
}

func TestAdmitGrantsUpToCap(t *testing.T) {
	c := newTestController(t, Config{MaxInFlight: 3})
	var releases []func()
	for i := 0; i < 3; i++ {
		releases = append(releases, mustAdmit(t, c, "", Interactive))
	}
	st := c.Stats()
	if st.InFlight != 3 || st.Admitted != 3 {
		t.Fatalf("stats = %+v, want 3 in flight / 3 admitted", st)
	}
	// The cap is reached and there is no queue: the next request sheds.
	_, err := c.Admit(context.Background(), "", Interactive, 0)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonQueueFull {
		t.Fatalf("over-cap Admit error = %v, want queue-full shed", err)
	}
	if shed.RetryAfter <= 0 {
		t.Errorf("shed RetryAfter = %v, want positive", shed.RetryAfter)
	}
	for _, r := range releases {
		r()
	}
	if st := c.Stats(); st.InFlight != 0 {
		t.Fatalf("in-flight after release = %d, want 0", st.InFlight)
	}
	// Released capacity admits again.
	mustAdmit(t, c, "", Interactive)()
}

func TestReleaseIsIdempotent(t *testing.T) {
	c := newTestController(t, Config{MaxInFlight: 1})
	release := mustAdmit(t, c, "", Interactive)
	release()
	release()
	release()
	if st := c.Stats(); st.InFlight != 0 {
		t.Fatalf("in-flight = %d after repeated release, want 0", st.InFlight)
	}
}

func TestQueueGrantsInOrderWhenSlotFrees(t *testing.T) {
	c := newTestController(t, Config{MaxInFlight: 1, QueueDepth: 4})
	holder := mustAdmit(t, c, "", Interactive)

	const waiters = 3
	order := make(chan int, waiters)
	var wg sync.WaitGroup
	enqueue := func(id int) {
		defer wg.Done()
		release, err := c.Admit(context.Background(), "", Interactive, 0)
		if err != nil {
			t.Errorf("waiter %d: %v", id, err)
			return
		}
		order <- id
		release()
	}
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go enqueue(i)
		// Deterministic queue order: wait until this waiter is queued.
		for {
			if c.Stats().Queued == i+1 {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	holder()
	wg.Wait()
	close(order)
	want := 0
	for id := range order {
		if id != want {
			t.Fatalf("grant order violated FIFO: got %d, want %d", id, want)
		}
		want++
	}
	if st := c.Stats(); st.QueuedTotal != waiters {
		t.Errorf("queued_total = %d, want %d", st.QueuedTotal, waiters)
	}
}

// TestWeightedPriorityPrefersInteractiveWithoutStarvingBatch pins the
// grant discipline: with both classes waiting, interactive waiters are
// granted first, but after interactiveWeight consecutive interactive
// grants a batch waiter gets the slot.
func TestWeightedPriorityPrefersInteractiveWithoutStarvingBatch(t *testing.T) {
	c := newTestController(t, Config{MaxInFlight: 1, QueueDepth: 16})
	holder := mustAdmit(t, c, "", Interactive)

	type grant struct {
		pri Priority
		id  int
	}
	grants := make(chan grant, 16)
	var wg sync.WaitGroup
	enqueue := func(pri Priority, id int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := c.Admit(context.Background(), "", pri, 0)
			if err != nil {
				t.Errorf("%v waiter %d: %v", pri, id, err)
				return
			}
			grants <- grant{pri, id}
			release()
		}()
		for want := id + 1; ; {
			if c.Stats().Queued == want {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	// One batch waiter first, then interactiveWeight+2 interactive
	// waiters behind it.
	enqueue(Batch, 0)
	for i := 0; i < interactiveWeight+2; i++ {
		enqueue(Interactive, i+1)
	}
	holder()
	wg.Wait()
	close(grants)

	var seq []Priority
	for g := range grants {
		seq = append(seq, g.pri)
	}
	if len(seq) != interactiveWeight+3 {
		t.Fatalf("granted %d waiters, want %d", len(seq), interactiveWeight+3)
	}
	// The first interactiveWeight grants go to interactive (preemption),
	// then the batch waiter must run (starvation freedom).
	for i := 0; i < interactiveWeight; i++ {
		if seq[i] != Interactive {
			t.Fatalf("grant %d = %v, want interactive (preemption)", i, seq[i])
		}
	}
	if seq[interactiveWeight] != Batch {
		t.Fatalf("grant %d = %v, want batch (anti-starvation after %d interactive grants)",
			interactiveWeight, seq[interactiveWeight], interactiveWeight)
	}
}

func TestQueueFullSheds(t *testing.T) {
	c := newTestController(t, Config{MaxInFlight: 1, QueueDepth: 1})
	holder := mustAdmit(t, c, "", Interactive)
	defer holder()

	// Fill the single queue slot.
	queued := make(chan struct{})
	go func() {
		release, err := c.Admit(context.Background(), "", Interactive, 0)
		if err == nil {
			defer release()
		}
		close(queued)
	}()
	for c.Stats().Queued != 1 {
		time.Sleep(100 * time.Microsecond)
	}

	_, err := c.Admit(context.Background(), "", Interactive, 0)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonQueueFull {
		t.Fatalf("err = %v, want queue-full shed", err)
	}
	if st := c.Stats(); st.ShedQueueFull != 1 || st.ShedTotal() != 1 {
		t.Errorf("stats = %+v, want exactly one queue-full shed", st)
	}
	holder()
	<-queued
}

// TestDeadlineAwareShed: a request whose declared budget (or ctx
// deadline) cannot survive the estimated queue wait is shed immediately
// instead of queued to fail late.
func TestDeadlineAwareShed(t *testing.T) {
	c := newTestController(t, Config{MaxInFlight: 1, QueueDepth: 8, DefaultServiceTime: 100 * time.Millisecond})
	holder := mustAdmit(t, c, "", Interactive)
	defer holder()

	// Declared budget below the 100ms default service estimate: shed.
	_, err := c.Admit(context.Background(), "", Interactive, 10*time.Millisecond)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonDeadline {
		t.Fatalf("short-budget err = %v, want deadline shed", err)
	}

	// Same via a ctx deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err = c.Admit(ctx, "", Interactive, 0)
	if !errors.As(err, &shed) || shed.Reason != ReasonDeadline {
		t.Fatalf("short-ctx err = %v, want deadline shed", err)
	}

	// A generous budget queues instead.
	done := make(chan error, 1)
	go func() {
		release, err := c.Admit(context.Background(), "", Interactive, 10*time.Second)
		if err == nil {
			release()
		}
		done <- err
	}()
	for c.Stats().Queued != 1 {
		time.Sleep(100 * time.Microsecond)
	}
	holder()
	if err := <-done; err != nil {
		t.Fatalf("generous-budget waiter failed: %v", err)
	}
	if st := c.Stats(); st.ShedDeadline != 2 {
		t.Errorf("shed_deadline = %d, want 2", st.ShedDeadline)
	}
}

// TestQueuedWaiterCancellation: a waiter whose ctx dies while queued
// returns the ctx error and never blocks a later grant.
func TestQueuedWaiterCancellation(t *testing.T) {
	c := newTestController(t, Config{MaxInFlight: 1, QueueDepth: 4})
	holder := mustAdmit(t, c, "", Interactive)

	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, 1)
	go func() {
		_, err := c.Admit(ctx, "", Interactive, 0)
		errs <- err
	}()
	for c.Stats().Queued != 1 {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v, want context.Canceled", err)
	}

	// A healthy waiter behind the abandoned slot still gets the grant.
	done := make(chan error, 1)
	go func() {
		release, err := c.Admit(context.Background(), "", Interactive, 0)
		if err == nil {
			release()
		}
		done <- err
	}()
	for c.Stats().Queued != 1 {
		time.Sleep(100 * time.Microsecond)
	}
	holder()
	if err := <-done; err != nil {
		t.Fatalf("waiter behind abandoned entry failed: %v", err)
	}
	if st := c.Stats(); st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("gauges after drain = %+v, want zero", st)
	}
}

func TestTenantTokenBucket(t *testing.T) {
	c := newTestController(t, Config{MaxInFlight: 16, TenantRate: 10, TenantBurst: 2})
	// The burst admits immediately.
	for i := 0; i < 2; i++ {
		mustAdmit(t, c, "alice", Interactive)()
	}
	// The bucket is empty: throttled with a positive retry hint.
	_, err := c.Admit(context.Background(), "alice", Interactive, 0)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonRateLimit {
		t.Fatalf("err = %v, want rate-limit shed", err)
	}
	if shed.RetryAfter <= 0 || shed.RetryAfter > 150*time.Millisecond {
		t.Errorf("RetryAfter = %v, want ~100ms (1 token at 10/s)", shed.RetryAfter)
	}
	// Tenants are isolated: bob is unaffected by alice's burst.
	mustAdmit(t, c, "bob", Interactive)()

	// Tokens accrue back over time.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := c.Admit(context.Background(), "alice", Interactive, 0); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("alice's bucket never refilled")
		}
		time.Sleep(10 * time.Millisecond)
	}

	st := c.Stats()
	if st.Tenants["alice"].Throttled == 0 {
		t.Errorf("alice stats = %+v, want throttles recorded", st.Tenants["alice"])
	}
	if st.Tenants["bob"].Admitted != 1 || st.Tenants["bob"].Throttled != 0 {
		t.Errorf("bob stats = %+v, want 1 admit / 0 throttles", st.Tenants["bob"])
	}
}

func TestOnAdmitHookInjectsShed(t *testing.T) {
	c := newTestController(t, Config{MaxInFlight: 16})
	forced := &ShedError{Reason: ReasonInjected, RetryAfter: 7 * time.Second}
	c.SetOnAdmit(func(ev Event) error {
		if ev.Tenant == "evil" {
			return forced
		}
		return nil
	})
	_, err := c.Admit(context.Background(), "evil", Interactive, 0)
	var shed *ShedError
	if !errors.As(err, &shed) || shed != forced {
		t.Fatalf("err = %v, want the injected shed", err)
	}
	mustAdmit(t, c, "good", Interactive)()
	st := c.Stats()
	if st.ShedInjected != 1 {
		t.Errorf("shed_injected = %d, want 1", st.ShedInjected)
	}
	if st.Tenants["evil"].Shed != 1 {
		t.Errorf("evil tenant stats = %+v, want 1 shed", st.Tenants["evil"])
	}
}

func TestSaturatedTracksCapacity(t *testing.T) {
	// With a queue: saturated only when the queue is full.
	c := newTestController(t, Config{MaxInFlight: 1, QueueDepth: 1})
	if c.Saturated() {
		t.Fatal("idle controller reports saturated")
	}
	holder := mustAdmit(t, c, "", Interactive)
	if c.Saturated() {
		t.Fatal("cap reached but queue empty: not saturated yet")
	}
	go func() {
		if release, err := c.Admit(context.Background(), "", Interactive, 0); err == nil {
			release()
		}
	}()
	for !c.Saturated() {
		time.Sleep(100 * time.Microsecond)
	}
	holder()

	// Without a queue: saturated as soon as the cap is reached.
	c2 := newTestController(t, Config{MaxInFlight: 1})
	release := mustAdmit(t, c2, "", Interactive)
	if !c2.Saturated() {
		t.Fatal("queueless controller at cap must report saturated")
	}
	release()
	if c2.Saturated() {
		t.Fatal("released controller still reports saturated")
	}
}

// TestConcurrentAdmissionAccounting hammers the controller from many
// goroutines and checks the books balance: every admit released, gauges
// back to zero, admitted+sheds == attempts.
func TestConcurrentAdmissionAccounting(t *testing.T) {
	c := newTestController(t, Config{MaxInFlight: 4, QueueDepth: 8})
	const goroutines, perG = 16, 50
	var admitted, shed atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := []string{"a", "b", "c"}[g%3]
			pri := Priority(g % 2)
			for i := 0; i < perG; i++ {
				release, err := c.Admit(context.Background(), tenant, pri, 0)
				if err != nil {
					var se *ShedError
					if !errors.As(err, &se) {
						t.Errorf("unexpected error: %v", err)
						return
					}
					shed.Add(1)
					continue
				}
				admitted.Add(1)
				release()
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("gauges = %d in flight, %d queued, want 0/0", st.InFlight, st.Queued)
	}
	if st.Admitted != admitted.Load() {
		t.Errorf("admitted counter = %d, callers saw %d", st.Admitted, admitted.Load())
	}
	if st.ShedTotal() != shed.Load() {
		t.Errorf("shed counters = %d, callers saw %d", st.ShedTotal(), shed.Load())
	}
	if got := admitted.Load() + shed.Load(); got != goroutines*perG {
		t.Errorf("outcomes = %d, want %d", got, goroutines*perG)
	}
	var tenantAdmits uint64
	for _, ts := range st.Tenants {
		tenantAdmits += ts.Admitted
		if ts.InFlight != 0 {
			t.Errorf("tenant gauge nonzero after drain: %+v", ts)
		}
	}
	if tenantAdmits != st.Admitted {
		t.Errorf("per-tenant admits sum %d != total %d", tenantAdmits, st.Admitted)
	}
}

// TestInjectedAcceptError pins the admit.accept fault point: an
// injected error surfaces as a well-formed injected-reason shed — the
// admission layer's only failure mode is refusal, never a malformed
// reply — counted like any other shed, while uninjected requests admit
// normally.
func TestInjectedAcceptError(t *testing.T) {
	in, err := fault.New(5, fault.Plan{Point: FaultAccept, Mode: fault.Error, Every: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := newTestController(t, Config{MaxInFlight: 8, Faults: in})
	admitted, shed := 0, 0
	for i := 0; i < 6; i++ {
		release, err := c.Admit(context.Background(), "tenant", Interactive, 0)
		if err == nil {
			admitted++
			release()
			continue
		}
		var se *ShedError
		if !errors.As(err, &se) || se.Reason != ReasonInjected {
			t.Fatalf("injected accept error = %v, want a ReasonInjected shed", err)
		}
		if se.RetryAfter <= 0 {
			t.Errorf("injected shed RetryAfter = %v, want positive", se.RetryAfter)
		}
		shed++
	}
	if admitted != 3 || shed != 3 {
		t.Fatalf("admitted %d / shed %d under Every:2, want 3 / 3", admitted, shed)
	}
	st := c.Stats()
	if st.ShedInjected != 3 || st.InFlight != 0 {
		t.Fatalf("stats = %+v, want 3 injected sheds and no leaked slots", st)
	}
}

// TestInjectedShedLatency pins the admit.shed fault point: injected
// latency stalls the refusal itself (slow rejection, the nastier
// overload shape) without changing its outcome or accounting.
func TestInjectedShedLatency(t *testing.T) {
	const delay = 30 * time.Millisecond
	in, err := fault.New(6, fault.Plan{Point: FaultShed, Mode: fault.Latency, Delay: delay})
	if err != nil {
		t.Fatal(err)
	}
	c := newTestController(t, Config{MaxInFlight: 1, Faults: in})
	release := mustAdmit(t, c, "", Interactive)
	defer release()

	start := time.Now()
	_, aerr := c.Admit(context.Background(), "", Interactive, 0)
	elapsed := time.Since(start)
	var se *ShedError
	if !errors.As(aerr, &se) || se.Reason != ReasonQueueFull {
		t.Fatalf("over-cap Admit error = %v, want queue-full shed", aerr)
	}
	if elapsed < delay/2 {
		t.Errorf("shed returned in %v, want the injected %v stall", elapsed, delay)
	}
}
